
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bianchi.cc" "src/CMakeFiles/greedy80211.dir/analysis/bianchi.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/analysis/bianchi.cc.o.d"
  "/root/repo/src/analysis/fer.cc" "src/CMakeFiles/greedy80211.dir/analysis/fer.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/analysis/fer.cc.o.d"
  "/root/repo/src/analysis/nav_model.cc" "src/CMakeFiles/greedy80211.dir/analysis/nav_model.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/analysis/nav_model.cc.o.d"
  "/root/repo/src/analysis/stats.cc" "src/CMakeFiles/greedy80211.dir/analysis/stats.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/analysis/stats.cc.o.d"
  "/root/repo/src/detect/backoff_monitor.cc" "src/CMakeFiles/greedy80211.dir/detect/backoff_monitor.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/detect/backoff_monitor.cc.o.d"
  "/root/repo/src/detect/cross_layer_detector.cc" "src/CMakeFiles/greedy80211.dir/detect/cross_layer_detector.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/detect/cross_layer_detector.cc.o.d"
  "/root/repo/src/detect/fake_ack_detector.cc" "src/CMakeFiles/greedy80211.dir/detect/fake_ack_detector.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/detect/fake_ack_detector.cc.o.d"
  "/root/repo/src/detect/locator.cc" "src/CMakeFiles/greedy80211.dir/detect/locator.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/detect/locator.cc.o.d"
  "/root/repo/src/detect/nav_validator.cc" "src/CMakeFiles/greedy80211.dir/detect/nav_validator.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/detect/nav_validator.cc.o.d"
  "/root/repo/src/detect/rssi_monitor.cc" "src/CMakeFiles/greedy80211.dir/detect/rssi_monitor.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/detect/rssi_monitor.cc.o.d"
  "/root/repo/src/detect/spoof_detector.cc" "src/CMakeFiles/greedy80211.dir/detect/spoof_detector.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/detect/spoof_detector.cc.o.d"
  "/root/repo/src/greedy/ack_spoofing.cc" "src/CMakeFiles/greedy80211.dir/greedy/ack_spoofing.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/greedy/ack_spoofing.cc.o.d"
  "/root/repo/src/greedy/cts_jammer.cc" "src/CMakeFiles/greedy80211.dir/greedy/cts_jammer.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/greedy/cts_jammer.cc.o.d"
  "/root/repo/src/greedy/fake_ack.cc" "src/CMakeFiles/greedy80211.dir/greedy/fake_ack.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/greedy/fake_ack.cc.o.d"
  "/root/repo/src/greedy/nav_inflation.cc" "src/CMakeFiles/greedy80211.dir/greedy/nav_inflation.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/greedy/nav_inflation.cc.o.d"
  "/root/repo/src/mac/backoff.cc" "src/CMakeFiles/greedy80211.dir/mac/backoff.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/mac/backoff.cc.o.d"
  "/root/repo/src/mac/dedup.cc" "src/CMakeFiles/greedy80211.dir/mac/dedup.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/mac/dedup.cc.o.d"
  "/root/repo/src/mac/durations.cc" "src/CMakeFiles/greedy80211.dir/mac/durations.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/mac/durations.cc.o.d"
  "/root/repo/src/mac/frame.cc" "src/CMakeFiles/greedy80211.dir/mac/frame.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/mac/frame.cc.o.d"
  "/root/repo/src/mac/mac.cc" "src/CMakeFiles/greedy80211.dir/mac/mac.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/mac/mac.cc.o.d"
  "/root/repo/src/mac/rate_control.cc" "src/CMakeFiles/greedy80211.dir/mac/rate_control.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/mac/rate_control.cc.o.d"
  "/root/repo/src/net/node.cc" "src/CMakeFiles/greedy80211.dir/net/node.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/net/node.cc.o.d"
  "/root/repo/src/net/queue.cc" "src/CMakeFiles/greedy80211.dir/net/queue.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/net/queue.cc.o.d"
  "/root/repo/src/net/wired_link.cc" "src/CMakeFiles/greedy80211.dir/net/wired_link.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/net/wired_link.cc.o.d"
  "/root/repo/src/phy/channel.cc" "src/CMakeFiles/greedy80211.dir/phy/channel.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/phy/channel.cc.o.d"
  "/root/repo/src/phy/error_model.cc" "src/CMakeFiles/greedy80211.dir/phy/error_model.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/phy/error_model.cc.o.d"
  "/root/repo/src/phy/phy.cc" "src/CMakeFiles/greedy80211.dir/phy/phy.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/phy/phy.cc.o.d"
  "/root/repo/src/phy/propagation.cc" "src/CMakeFiles/greedy80211.dir/phy/propagation.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/phy/propagation.cc.o.d"
  "/root/repo/src/phy/wifi_params.cc" "src/CMakeFiles/greedy80211.dir/phy/wifi_params.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/phy/wifi_params.cc.o.d"
  "/root/repo/src/rssi/rssi_trace.cc" "src/CMakeFiles/greedy80211.dir/rssi/rssi_trace.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/rssi/rssi_trace.cc.o.d"
  "/root/repo/src/scenario/experiment.cc" "src/CMakeFiles/greedy80211.dir/scenario/experiment.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/scenario/experiment.cc.o.d"
  "/root/repo/src/scenario/scenario.cc" "src/CMakeFiles/greedy80211.dir/scenario/scenario.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/scenario/scenario.cc.o.d"
  "/root/repo/src/scenario/topology.cc" "src/CMakeFiles/greedy80211.dir/scenario/topology.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/scenario/topology.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/CMakeFiles/greedy80211.dir/sim/rng.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/sim/rng.cc.o.d"
  "/root/repo/src/sim/scheduler.cc" "src/CMakeFiles/greedy80211.dir/sim/scheduler.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/sim/scheduler.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/CMakeFiles/greedy80211.dir/sim/trace.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/sim/trace.cc.o.d"
  "/root/repo/src/transport/cbr.cc" "src/CMakeFiles/greedy80211.dir/transport/cbr.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/transport/cbr.cc.o.d"
  "/root/repo/src/transport/tcp_sender.cc" "src/CMakeFiles/greedy80211.dir/transport/tcp_sender.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/transport/tcp_sender.cc.o.d"
  "/root/repo/src/transport/tcp_sink.cc" "src/CMakeFiles/greedy80211.dir/transport/tcp_sink.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/transport/tcp_sink.cc.o.d"
  "/root/repo/src/transport/udp_sink.cc" "src/CMakeFiles/greedy80211.dir/transport/udp_sink.cc.o" "gcc" "src/CMakeFiles/greedy80211.dir/transport/udp_sink.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
