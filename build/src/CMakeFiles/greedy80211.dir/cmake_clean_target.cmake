file(REMOVE_RECURSE
  "libgreedy80211.a"
)
