# Empty compiler generated dependencies file for greedy80211.
# This may be replaced when dependencies are built.
