file(REMOVE_RECURSE
  "CMakeFiles/test_broadcast_dos.dir/test_broadcast_dos.cc.o"
  "CMakeFiles/test_broadcast_dos.dir/test_broadcast_dos.cc.o.d"
  "test_broadcast_dos"
  "test_broadcast_dos.pdb"
  "test_broadcast_dos[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_broadcast_dos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
