# Empty compiler generated dependencies file for test_broadcast_dos.
# This may be replaced when dependencies are built.
