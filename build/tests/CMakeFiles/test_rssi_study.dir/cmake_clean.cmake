file(REMOVE_RECURSE
  "CMakeFiles/test_rssi_study.dir/test_rssi_study.cc.o"
  "CMakeFiles/test_rssi_study.dir/test_rssi_study.cc.o.d"
  "test_rssi_study"
  "test_rssi_study.pdb"
  "test_rssi_study[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rssi_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
