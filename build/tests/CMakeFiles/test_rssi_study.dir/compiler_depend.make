# Empty compiler generated dependencies file for test_rssi_study.
# This may be replaced when dependencies are built.
