file(REMOVE_RECURSE
  "CMakeFiles/test_fuzz_scenarios.dir/test_fuzz_scenarios.cc.o"
  "CMakeFiles/test_fuzz_scenarios.dir/test_fuzz_scenarios.cc.o.d"
  "test_fuzz_scenarios"
  "test_fuzz_scenarios.pdb"
  "test_fuzz_scenarios[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fuzz_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
