file(REMOVE_RECURSE
  "CMakeFiles/test_integration_misbehavior.dir/test_integration_misbehavior.cc.o"
  "CMakeFiles/test_integration_misbehavior.dir/test_integration_misbehavior.cc.o.d"
  "test_integration_misbehavior"
  "test_integration_misbehavior.pdb"
  "test_integration_misbehavior[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_misbehavior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
