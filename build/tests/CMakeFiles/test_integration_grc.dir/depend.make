# Empty dependencies file for test_integration_grc.
# This may be replaced when dependencies are built.
