file(REMOVE_RECURSE
  "CMakeFiles/test_integration_grc.dir/test_integration_grc.cc.o"
  "CMakeFiles/test_integration_grc.dir/test_integration_grc.cc.o.d"
  "test_integration_grc"
  "test_integration_grc.pdb"
  "test_integration_grc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_grc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
