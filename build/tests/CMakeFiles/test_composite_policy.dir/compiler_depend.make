# Empty compiler generated dependencies file for test_composite_policy.
# This may be replaced when dependencies are built.
