file(REMOVE_RECURSE
  "CMakeFiles/test_composite_policy.dir/test_composite_policy.cc.o"
  "CMakeFiles/test_composite_policy.dir/test_composite_policy.cc.o.d"
  "test_composite_policy"
  "test_composite_policy.pdb"
  "test_composite_policy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_composite_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
