# Empty dependencies file for test_nav_reset.
# This may be replaced when dependencies are built.
