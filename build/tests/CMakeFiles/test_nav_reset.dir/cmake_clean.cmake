file(REMOVE_RECURSE
  "CMakeFiles/test_nav_reset.dir/test_nav_reset.cc.o"
  "CMakeFiles/test_nav_reset.dir/test_nav_reset.cc.o.d"
  "test_nav_reset"
  "test_nav_reset.pdb"
  "test_nav_reset[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nav_reset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
