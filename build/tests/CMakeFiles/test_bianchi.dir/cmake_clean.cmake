file(REMOVE_RECURSE
  "CMakeFiles/test_bianchi.dir/test_bianchi.cc.o"
  "CMakeFiles/test_bianchi.dir/test_bianchi.cc.o.d"
  "test_bianchi"
  "test_bianchi.pdb"
  "test_bianchi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bianchi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
