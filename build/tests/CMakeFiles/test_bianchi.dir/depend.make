# Empty dependencies file for test_bianchi.
# This may be replaced when dependencies are built.
