file(REMOVE_RECURSE
  "CMakeFiles/test_mac_extra.dir/test_mac_extra.cc.o"
  "CMakeFiles/test_mac_extra.dir/test_mac_extra.cc.o.d"
  "test_mac_extra"
  "test_mac_extra.pdb"
  "test_mac_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mac_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
