# Empty compiler generated dependencies file for test_mac_extra.
# This may be replaced when dependencies are built.
