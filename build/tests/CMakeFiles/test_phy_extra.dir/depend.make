# Empty dependencies file for test_phy_extra.
# This may be replaced when dependencies are built.
