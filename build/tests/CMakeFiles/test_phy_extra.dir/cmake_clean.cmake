file(REMOVE_RECURSE
  "CMakeFiles/test_phy_extra.dir/test_phy_extra.cc.o"
  "CMakeFiles/test_phy_extra.dir/test_phy_extra.cc.o.d"
  "test_phy_extra"
  "test_phy_extra.pdb"
  "test_phy_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
