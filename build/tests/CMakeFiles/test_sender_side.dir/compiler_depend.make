# Empty compiler generated dependencies file for test_sender_side.
# This may be replaced when dependencies are built.
