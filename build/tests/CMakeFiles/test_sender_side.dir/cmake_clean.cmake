file(REMOVE_RECURSE
  "CMakeFiles/test_sender_side.dir/test_sender_side.cc.o"
  "CMakeFiles/test_sender_side.dir/test_sender_side.cc.o.d"
  "test_sender_side"
  "test_sender_side.pdb"
  "test_sender_side[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sender_side.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
