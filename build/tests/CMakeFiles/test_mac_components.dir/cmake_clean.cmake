file(REMOVE_RECURSE
  "CMakeFiles/test_mac_components.dir/test_mac_components.cc.o"
  "CMakeFiles/test_mac_components.dir/test_mac_components.cc.o.d"
  "test_mac_components"
  "test_mac_components.pdb"
  "test_mac_components[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mac_components.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
