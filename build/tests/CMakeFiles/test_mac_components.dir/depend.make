# Empty dependencies file for test_mac_components.
# This may be replaced when dependencies are built.
