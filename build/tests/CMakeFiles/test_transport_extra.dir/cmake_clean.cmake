file(REMOVE_RECURSE
  "CMakeFiles/test_transport_extra.dir/test_transport_extra.cc.o"
  "CMakeFiles/test_transport_extra.dir/test_transport_extra.cc.o.d"
  "test_transport_extra"
  "test_transport_extra.pdb"
  "test_transport_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transport_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
