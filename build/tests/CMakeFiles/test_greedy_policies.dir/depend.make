# Empty dependencies file for test_greedy_policies.
# This may be replaced when dependencies are built.
