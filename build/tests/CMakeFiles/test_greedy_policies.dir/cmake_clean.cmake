file(REMOVE_RECURSE
  "CMakeFiles/test_greedy_policies.dir/test_greedy_policies.cc.o"
  "CMakeFiles/test_greedy_policies.dir/test_greedy_policies.cc.o.d"
  "test_greedy_policies"
  "test_greedy_policies.pdb"
  "test_greedy_policies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greedy_policies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
