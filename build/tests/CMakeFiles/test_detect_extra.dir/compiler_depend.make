# Empty compiler generated dependencies file for test_detect_extra.
# This may be replaced when dependencies are built.
