file(REMOVE_RECURSE
  "CMakeFiles/test_detect_extra.dir/test_detect_extra.cc.o"
  "CMakeFiles/test_detect_extra.dir/test_detect_extra.cc.o.d"
  "test_detect_extra"
  "test_detect_extra.pdb"
  "test_detect_extra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detect_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
