file(REMOVE_RECURSE
  "CMakeFiles/test_wifi_params.dir/test_wifi_params.cc.o"
  "CMakeFiles/test_wifi_params.dir/test_wifi_params.cc.o.d"
  "test_wifi_params"
  "test_wifi_params.pdb"
  "test_wifi_params[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wifi_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
