# Empty dependencies file for test_phy_g.
# This may be replaced when dependencies are built.
