file(REMOVE_RECURSE
  "CMakeFiles/test_phy_g.dir/test_phy_g.cc.o"
  "CMakeFiles/test_phy_g.dir/test_phy_g.cc.o.d"
  "test_phy_g"
  "test_phy_g.pdb"
  "test_phy_g[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_phy_g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
