# Empty compiler generated dependencies file for test_tcp_model.
# This may be replaced when dependencies are built.
