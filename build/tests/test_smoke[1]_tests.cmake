add_test([=[Smoke.TwoHonestUdpPairsShareFairly]=]  /root/repo/build/tests/test_smoke [==[--gtest_filter=Smoke.TwoHonestUdpPairsShareFairly]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[Smoke.TwoHonestUdpPairsShareFairly]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==] ENVIRONMENT [==[G80211_QUICK=1]==])
set(  test_smoke_TESTS Smoke.TwoHonestUdpPairsShareFairly)
