file(REMOVE_RECURSE
  "CMakeFiles/campus_timeline.dir/campus_timeline.cpp.o"
  "CMakeFiles/campus_timeline.dir/campus_timeline.cpp.o.d"
  "campus_timeline"
  "campus_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
