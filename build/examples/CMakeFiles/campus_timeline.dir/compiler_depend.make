# Empty compiler generated dependencies file for campus_timeline.
# This may be replaced when dependencies are built.
