file(REMOVE_RECURSE
  "CMakeFiles/grc_defense.dir/grc_defense.cpp.o"
  "CMakeFiles/grc_defense.dir/grc_defense.cpp.o.d"
  "grc_defense"
  "grc_defense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grc_defense.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
