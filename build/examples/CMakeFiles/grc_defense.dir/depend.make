# Empty dependencies file for grc_defense.
# This may be replaced when dependencies are built.
