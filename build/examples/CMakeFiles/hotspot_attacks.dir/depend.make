# Empty dependencies file for hotspot_attacks.
# This may be replaced when dependencies are built.
