file(REMOVE_RECURSE
  "CMakeFiles/hotspot_attacks.dir/hotspot_attacks.cpp.o"
  "CMakeFiles/hotspot_attacks.dir/hotspot_attacks.cpp.o.d"
  "hotspot_attacks"
  "hotspot_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hotspot_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
