# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hotspot_attacks "/root/repo/build/examples/hotspot_attacks")
set_tests_properties(example_hotspot_attacks PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_grc_defense "/root/repo/build/examples/grc_defense")
set_tests_properties(example_grc_defense PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_extensions_tour "/root/repo/build/examples/extensions_tour")
set_tests_properties(example_extensions_tour PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_campus_timeline "/root/repo/build/examples/campus_timeline")
set_tests_properties(example_campus_timeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_simulate_cli "/root/repo/build/examples/simulate" "--attack" "nav" "--inflation-us" "600" "--seconds" "2")
set_tests_properties(example_simulate_cli PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
