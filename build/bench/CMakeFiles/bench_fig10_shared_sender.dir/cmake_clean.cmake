file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_shared_sender.dir/bench_fig10_shared_sender.cc.o"
  "CMakeFiles/bench_fig10_shared_sender.dir/bench_fig10_shared_sender.cc.o.d"
  "bench_fig10_shared_sender"
  "bench_fig10_shared_sender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_shared_sender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
