# Empty compiler generated dependencies file for bench_fig10_shared_sender.
# This may be replaced when dependencies are built.
