file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_eight_flow_greedy.dir/bench_fig9_eight_flow_greedy.cc.o"
  "CMakeFiles/bench_fig9_eight_flow_greedy.dir/bench_fig9_eight_flow_greedy.cc.o.d"
  "bench_fig9_eight_flow_greedy"
  "bench_fig9_eight_flow_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_eight_flow_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
