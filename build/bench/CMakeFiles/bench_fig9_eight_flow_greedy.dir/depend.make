# Empty dependencies file for bench_fig9_eight_flow_greedy.
# This may be replaced when dependencies are built.
