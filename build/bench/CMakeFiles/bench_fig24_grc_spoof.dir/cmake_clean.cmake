file(REMOVE_RECURSE
  "CMakeFiles/bench_fig24_grc_spoof.dir/bench_fig24_grc_spoof.cc.o"
  "CMakeFiles/bench_fig24_grc_spoof.dir/bench_fig24_grc_spoof.cc.o.d"
  "bench_fig24_grc_spoof"
  "bench_fig24_grc_spoof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig24_grc_spoof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
