# Empty compiler generated dependencies file for bench_fig24_grc_spoof.
# This may be replaced when dependencies are built.
