# Empty dependencies file for bench_ext_autorate.
# This may be replaced when dependencies are built.
