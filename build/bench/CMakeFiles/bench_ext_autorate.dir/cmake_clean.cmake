file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_autorate.dir/bench_ext_autorate.cc.o"
  "CMakeFiles/bench_ext_autorate.dir/bench_ext_autorate.cc.o.d"
  "bench_ext_autorate"
  "bench_ext_autorate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_autorate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
