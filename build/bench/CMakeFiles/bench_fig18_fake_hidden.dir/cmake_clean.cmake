file(REMOVE_RECURSE
  "CMakeFiles/bench_fig18_fake_hidden.dir/bench_fig18_fake_hidden.cc.o"
  "CMakeFiles/bench_fig18_fake_hidden.dir/bench_fig18_fake_hidden.cc.o.d"
  "bench_fig18_fake_hidden"
  "bench_fig18_fake_hidden.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig18_fake_hidden.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
