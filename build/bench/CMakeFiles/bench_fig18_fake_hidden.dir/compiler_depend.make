# Empty compiler generated dependencies file for bench_fig18_fake_hidden.
# This may be replaced when dependencies are built.
