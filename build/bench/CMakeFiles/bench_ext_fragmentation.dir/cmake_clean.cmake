file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_fragmentation.dir/bench_ext_fragmentation.cc.o"
  "CMakeFiles/bench_ext_fragmentation.dir/bench_ext_fragmentation.cc.o.d"
  "bench_ext_fragmentation"
  "bench_ext_fragmentation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_fragmentation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
