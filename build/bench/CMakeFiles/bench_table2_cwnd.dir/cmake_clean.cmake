file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cwnd.dir/bench_table2_cwnd.cc.o"
  "CMakeFiles/bench_table2_cwnd.dir/bench_table2_cwnd.cc.o.d"
  "bench_table2_cwnd"
  "bench_table2_cwnd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cwnd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
