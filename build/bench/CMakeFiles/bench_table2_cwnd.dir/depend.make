# Empty dependencies file for bench_table2_cwnd.
# This may be replaced when dependencies are built.
