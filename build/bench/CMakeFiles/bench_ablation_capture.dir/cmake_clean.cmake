file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_capture.dir/bench_ablation_capture.cc.o"
  "CMakeFiles/bench_ablation_capture.dir/bench_ablation_capture.cc.o.d"
  "bench_ablation_capture"
  "bench_ablation_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
