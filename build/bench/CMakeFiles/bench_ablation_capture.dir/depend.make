# Empty dependencies file for bench_ablation_capture.
# This may be replaced when dependencies are built.
