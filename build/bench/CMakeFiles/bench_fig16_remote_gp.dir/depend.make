# Empty dependencies file for bench_fig16_remote_gp.
# This may be replaced when dependencies are built.
