file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_remote_gp.dir/bench_fig16_remote_gp.cc.o"
  "CMakeFiles/bench_fig16_remote_gp.dir/bench_fig16_remote_gp.cc.o.d"
  "bench_fig16_remote_gp"
  "bench_fig16_remote_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_remote_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
