file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_remote_senders.dir/bench_fig15_remote_senders.cc.o"
  "CMakeFiles/bench_fig15_remote_senders.dir/bench_fig15_remote_senders.cc.o.d"
  "bench_fig15_remote_senders"
  "bench_fig15_remote_senders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_remote_senders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
