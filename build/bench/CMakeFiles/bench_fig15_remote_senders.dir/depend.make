# Empty dependencies file for bench_fig15_remote_senders.
# This may be replaced when dependencies are built.
