file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_eifs.dir/bench_ablation_eifs.cc.o"
  "CMakeFiles/bench_ablation_eifs.dir/bench_ablation_eifs.cc.o.d"
  "bench_ablation_eifs"
  "bench_ablation_eifs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_eifs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
