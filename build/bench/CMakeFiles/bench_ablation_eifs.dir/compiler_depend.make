# Empty compiler generated dependencies file for bench_ablation_eifs.
# This may be replaced when dependencies are built.
