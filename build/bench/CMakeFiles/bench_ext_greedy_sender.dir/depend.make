# Empty dependencies file for bench_ext_greedy_sender.
# This may be replaced when dependencies are built.
