file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_greedy_sender.dir/bench_ext_greedy_sender.cc.o"
  "CMakeFiles/bench_ext_greedy_sender.dir/bench_ext_greedy_sender.cc.o.d"
  "bench_ext_greedy_sender"
  "bench_ext_greedy_sender.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_greedy_sender.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
