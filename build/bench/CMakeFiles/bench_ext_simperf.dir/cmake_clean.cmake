file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_simperf.dir/bench_ext_simperf.cc.o"
  "CMakeFiles/bench_ext_simperf.dir/bench_ext_simperf.cc.o.d"
  "bench_ext_simperf"
  "bench_ext_simperf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_simperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
