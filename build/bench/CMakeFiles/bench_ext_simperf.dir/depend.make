# Empty dependencies file for bench_ext_simperf.
# This may be replaced when dependencies are built.
