# Empty compiler generated dependencies file for bench_fig11_spoof_ber.
# This may be replaced when dependencies are built.
