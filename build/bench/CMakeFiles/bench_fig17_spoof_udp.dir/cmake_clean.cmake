file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_spoof_udp.dir/bench_fig17_spoof_udp.cc.o"
  "CMakeFiles/bench_fig17_spoof_udp.dir/bench_fig17_spoof_udp.cc.o.d"
  "bench_fig17_spoof_udp"
  "bench_fig17_spoof_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_spoof_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
