# Empty dependencies file for bench_fig17_spoof_udp.
# This may be replaced when dependencies are built.
