file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_udp_cts_nav.dir/bench_fig1_udp_cts_nav.cc.o"
  "CMakeFiles/bench_fig1_udp_cts_nav.dir/bench_fig1_udp_cts_nav.cc.o.d"
  "bench_fig1_udp_cts_nav"
  "bench_fig1_udp_cts_nav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_udp_cts_nav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
