# Empty dependencies file for bench_fig1_udp_cts_nav.
# This may be replaced when dependencies are built.
