file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_testbed_nav_udp.dir/bench_table7_testbed_nav_udp.cc.o"
  "CMakeFiles/bench_table7_testbed_nav_udp.dir/bench_table7_testbed_nav_udp.cc.o.d"
  "bench_table7_testbed_nav_udp"
  "bench_table7_testbed_nav_udp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_testbed_nav_udp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
