# Empty compiler generated dependencies file for bench_table8_testbed_spoof.
# This may be replaced when dependencies are built.
