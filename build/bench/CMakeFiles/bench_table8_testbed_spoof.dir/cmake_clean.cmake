file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_testbed_spoof.dir/bench_table8_testbed_spoof.cc.o"
  "CMakeFiles/bench_table8_testbed_spoof.dir/bench_table8_testbed_spoof.cc.o.d"
  "bench_table8_testbed_spoof"
  "bench_table8_testbed_spoof.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_testbed_spoof.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
