file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_corruption.dir/bench_table1_corruption.cc.o"
  "CMakeFiles/bench_table1_corruption.dir/bench_table1_corruption.cc.o.d"
  "bench_table1_corruption"
  "bench_table1_corruption.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_corruption.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
