# Empty compiler generated dependencies file for bench_table1_corruption.
# This may be replaced when dependencies are built.
