# Empty dependencies file for bench_ablation_rtscts.
# This may be replaced when dependencies are built.
