file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rtscts.dir/bench_ablation_rtscts.cc.o"
  "CMakeFiles/bench_ablation_rtscts.dir/bench_ablation_rtscts.cc.o.d"
  "bench_ablation_rtscts"
  "bench_ablation_rtscts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rtscts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
