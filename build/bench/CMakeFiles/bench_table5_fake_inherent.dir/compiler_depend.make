# Empty compiler generated dependencies file for bench_table5_fake_inherent.
# This may be replaced when dependencies are built.
