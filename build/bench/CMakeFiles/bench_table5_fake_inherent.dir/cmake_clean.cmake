file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_fake_inherent.dir/bench_table5_fake_inherent.cc.o"
  "CMakeFiles/bench_table5_fake_inherent.dir/bench_table5_fake_inherent.cc.o.d"
  "bench_table5_fake_inherent"
  "bench_table5_fake_inherent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_fake_inherent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
