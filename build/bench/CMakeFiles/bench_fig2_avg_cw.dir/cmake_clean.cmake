file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_avg_cw.dir/bench_fig2_avg_cw.cc.o"
  "CMakeFiles/bench_fig2_avg_cw.dir/bench_fig2_avg_cw.cc.o.d"
  "bench_fig2_avg_cw"
  "bench_fig2_avg_cw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_avg_cw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
