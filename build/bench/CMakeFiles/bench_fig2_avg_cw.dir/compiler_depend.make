# Empty compiler generated dependencies file for bench_fig2_avg_cw.
# This may be replaced when dependencies are built.
