file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_eight_flows.dir/bench_fig6_eight_flows.cc.o"
  "CMakeFiles/bench_fig6_eight_flows.dir/bench_fig6_eight_flows.cc.o.d"
  "bench_fig6_eight_flows"
  "bench_fig6_eight_flows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_eight_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
