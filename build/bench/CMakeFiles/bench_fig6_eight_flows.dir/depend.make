# Empty dependencies file for bench_fig6_eight_flows.
# This may be replaced when dependencies are built.
