# Empty compiler generated dependencies file for bench_table6_testbed_nav_tcp.
# This may be replaced when dependencies are built.
