file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_testbed_nav_tcp.dir/bench_table6_testbed_nav_tcp.cc.o"
  "CMakeFiles/bench_table6_testbed_nav_tcp.dir/bench_table6_testbed_nav_tcp.cc.o.d"
  "bench_table6_testbed_nav_tcp"
  "bench_table6_testbed_nav_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_testbed_nav_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
