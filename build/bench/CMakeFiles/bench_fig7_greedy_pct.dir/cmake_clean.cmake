file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_greedy_pct.dir/bench_fig7_greedy_pct.cc.o"
  "CMakeFiles/bench_fig7_greedy_pct.dir/bench_fig7_greedy_pct.cc.o.d"
  "bench_fig7_greedy_pct"
  "bench_fig7_greedy_pct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_greedy_pct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
