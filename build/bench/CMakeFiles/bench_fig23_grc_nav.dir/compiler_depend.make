# Empty compiler generated dependencies file for bench_fig23_grc_nav.
# This may be replaced when dependencies are built.
