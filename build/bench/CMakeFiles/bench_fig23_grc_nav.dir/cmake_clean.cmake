file(REMOVE_RECURSE
  "CMakeFiles/bench_fig23_grc_nav.dir/bench_fig23_grc_nav.cc.o"
  "CMakeFiles/bench_fig23_grc_nav.dir/bench_fig23_grc_nav.cc.o.d"
  "bench_fig23_grc_nav"
  "bench_fig23_grc_nav.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig23_grc_nav.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
