# Empty dependencies file for bench_fig12_spoof_gp.
# This may be replaced when dependencies are built.
