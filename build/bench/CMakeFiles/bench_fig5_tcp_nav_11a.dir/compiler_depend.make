# Empty compiler generated dependencies file for bench_fig5_tcp_nav_11a.
# This may be replaced when dependencies are built.
