# Empty compiler generated dependencies file for bench_fig19_fake_pairs.
# This may be replaced when dependencies are built.
