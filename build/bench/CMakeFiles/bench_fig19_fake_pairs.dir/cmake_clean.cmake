file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_fake_pairs.dir/bench_fig19_fake_pairs.cc.o"
  "CMakeFiles/bench_fig19_fake_pairs.dir/bench_fig19_fake_pairs.cc.o.d"
  "bench_fig19_fake_pairs"
  "bench_fig19_fake_pairs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_fake_pairs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
