# Empty dependencies file for bench_fig4_tcp_nav_11b.
# This may be replaced when dependencies are built.
