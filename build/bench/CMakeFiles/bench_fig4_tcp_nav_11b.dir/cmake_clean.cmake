file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_tcp_nav_11b.dir/bench_fig4_tcp_nav_11b.cc.o"
  "CMakeFiles/bench_fig4_tcp_nav_11b.dir/bench_fig4_tcp_nav_11b.cc.o.d"
  "bench_fig4_tcp_nav_11b"
  "bench_fig4_tcp_nav_11b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_tcp_nav_11b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
