file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_fer.dir/bench_table3_fer.cc.o"
  "CMakeFiles/bench_table3_fer.dir/bench_table3_fer.cc.o.d"
  "bench_table3_fer"
  "bench_table3_fer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_fer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
