# Empty compiler generated dependencies file for bench_ext_bianchi.
# This may be replaced when dependencies are built.
