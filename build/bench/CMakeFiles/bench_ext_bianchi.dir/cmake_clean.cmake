file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bianchi.dir/bench_ext_bianchi.cc.o"
  "CMakeFiles/bench_ext_bianchi.dir/bench_ext_bianchi.cc.o.d"
  "bench_ext_bianchi"
  "bench_ext_bianchi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bianchi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
