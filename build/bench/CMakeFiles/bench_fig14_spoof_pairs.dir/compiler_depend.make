# Empty compiler generated dependencies file for bench_fig14_spoof_pairs.
# This may be replaced when dependencies are built.
