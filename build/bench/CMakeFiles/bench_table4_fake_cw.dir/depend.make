# Empty dependencies file for bench_table4_fake_cw.
# This may be replaced when dependencies are built.
