file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_fake_cw.dir/bench_table4_fake_cw.cc.o"
  "CMakeFiles/bench_table4_fake_cw.dir/bench_table4_fake_cw.cc.o.d"
  "bench_table4_fake_cw"
  "bench_table4_fake_cw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_fake_cw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
