file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_spoof_num_greedy.dir/bench_fig13_spoof_num_greedy.cc.o"
  "CMakeFiles/bench_fig13_spoof_num_greedy.dir/bench_fig13_spoof_num_greedy.cc.o.d"
  "bench_fig13_spoof_num_greedy"
  "bench_fig13_spoof_num_greedy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_spoof_num_greedy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
