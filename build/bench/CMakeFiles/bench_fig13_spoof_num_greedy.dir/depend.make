# Empty dependencies file for bench_fig13_spoof_num_greedy.
# This may be replaced when dependencies are built.
