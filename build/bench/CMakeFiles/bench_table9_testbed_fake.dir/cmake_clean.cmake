file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_testbed_fake.dir/bench_table9_testbed_fake.cc.o"
  "CMakeFiles/bench_table9_testbed_fake.dir/bench_table9_testbed_fake.cc.o.d"
  "bench_table9_testbed_fake"
  "bench_table9_testbed_fake.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_testbed_fake.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
