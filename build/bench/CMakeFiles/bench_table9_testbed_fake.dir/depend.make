# Empty dependencies file for bench_table9_testbed_fake.
# This may be replaced when dependencies are built.
