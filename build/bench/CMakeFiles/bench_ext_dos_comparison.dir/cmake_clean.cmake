file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dos_comparison.dir/bench_ext_dos_comparison.cc.o"
  "CMakeFiles/bench_ext_dos_comparison.dir/bench_ext_dos_comparison.cc.o.d"
  "bench_ext_dos_comparison"
  "bench_ext_dos_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dos_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
