# Empty compiler generated dependencies file for bench_ext_dos_comparison.
# This may be replaced when dependencies are built.
