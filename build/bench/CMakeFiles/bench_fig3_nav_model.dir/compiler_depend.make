# Empty compiler generated dependencies file for bench_fig3_nav_model.
# This may be replaced when dependencies are built.
