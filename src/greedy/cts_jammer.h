// Virtual-carrier-sense DoS attacker (Bellardo & Savage, USENIX Sec'03 —
// reference [2] of the paper): a station with no traffic of its own that
// periodically injects unsolicited CTS frames carrying a large Duration,
// addressed to a nonexistent station, so every honest NAV in range stays
// pinned.
//
// The paper contrasts this attacker with its greedy receiver: the DoS
// needs large NAV values injected continuously (and gains nothing), while
// a greedy receiver piggybacks small inflations on feedback frames it
// sends anyway — and profits. bench_ext_dos_comparison quantifies that.
#pragma once

#include <cstdint>

#include "src/net/node.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class CtsJammer {
 public:
  struct Config {
    Time period = milliseconds(30);        // injection interval
    Time nav = WifiParams::kMaxNav;        // Duration carried by each CTS
    int fake_ra = 9999;                    // nonexistent addressee
  };

  CtsJammer(Scheduler& sched, Node& node, Config cfg);
  CtsJammer(Scheduler& sched, Node& node)
      : CtsJammer(sched, node, Config{}) {}

  void start(Time at);
  void stop();

  std::int64_t cts_sent() const { return sent_; }
  // Fraction of wall-clock the attacker's own transmissions occupy.
  double airtime_fraction() const;

 private:
  void emit();

  Scheduler* sched_;
  Node* node_;
  Config cfg_;
  Timer timer_;
  bool running_ = false;
  std::int64_t sent_ = 0;
  Time started_at_ = 0;
  Time airtime_used_ = 0;
};

}  // namespace g80211
