// Composition of greedy behaviors. A determined attacker is not limited
// to one trick: it can inflate NAVs on the feedback frames it sends AND
// spoof competitors' ACKs AND fake-ACK its own corrupted traffic. The
// composite consults its children in order: duration adjustments chain
// (each child sees the previous child's output, the MAC clamps the final
// value), boolean hooks OR together.
#pragma once

#include <memory>
#include <vector>

#include "src/greedy/policy.h"

namespace g80211 {

class CompositePolicy : public GreedyPolicy {
 public:
  // Add a child policy (owned).
  void add(std::unique_ptr<GreedyPolicy> policy) {
    children_.push_back(std::move(policy));
  }
  // Convenience: construct a child in place and return a reference.
  template <typename P, typename... Args>
  P& emplace(Args&&... args) {
    auto p = std::make_unique<P>(std::forward<Args>(args)...);
    P& ref = *p;
    children_.push_back(std::move(p));
    return ref;
  }

  std::size_t size() const { return children_.size(); }

  Time adjust_duration(FrameType type, Time duration, Rng& rng) override {
    for (auto& c : children_) duration = c->adjust_duration(type, duration, rng);
    return duration;
  }
  bool spoof_ack_for(const Frame& data, const RxInfo& info, Rng& rng) override {
    for (auto& c : children_) {
      if (c->spoof_ack_for(data, info, rng)) return true;
    }
    return false;
  }
  bool fake_ack_for(const Frame& data, const RxInfo& info, Rng& rng) override {
    for (auto& c : children_) {
      if (c->fake_ack_for(data, info, rng)) return true;
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<GreedyPolicy>> children_;
};

}  // namespace g80211
