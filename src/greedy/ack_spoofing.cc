#include "src/greedy/ack_spoofing.h"

namespace g80211 {

bool AckSpoofingPolicy::spoof_ack_for(const Frame& data, const RxInfo& info,
                                      Rng& rng) {
  if (data.type != FrameType::kData) return false;
  if (info.corrupted && !spoof_on_corrupted) return false;
  if (!victims_.empty() && !victims_.count(data.ra)) return false;
  if (!rng.chance(gp_)) return false;
  ++decisions_;
  return true;
}

}  // namespace g80211
