#include "src/greedy/nav_inflation.h"

namespace g80211 {

bool NavInflationPolicy::selected(FrameType type) const {
  switch (type) {
    case FrameType::kCts:
      return frames_.cts;
    case FrameType::kAck:
      return frames_.ack;
    case FrameType::kRts:
      return frames_.rts;
    case FrameType::kData:
      return frames_.data;
  }
  return false;
}

Time NavInflationPolicy::adjust_duration(FrameType type, Time duration, Rng& rng) {
  if (!selected(type) || inflation_ <= 0) return duration;
  if (!rng.chance(gp_)) return duration;
  ++applied_;
  return duration + inflation_;  // MAC clamps to the 15-bit maximum
}

}  // namespace g80211
