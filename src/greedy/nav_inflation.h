// Misbehavior 1: NAV inflation (paper Section IV-A).
//
// The greedy receiver adds `inflation` to the Duration field of the frame
// types selected in `frames`, with probability `greedy_percentage` per
// frame (the paper's GP knob, Fig 7). Under UDP a receiver only transmits
// CTS and ACK; under TCP it also transmits RTS and DATA frames when
// sending TCP ACKs, so all four types can be inflated (Fig 4(d)).
// The MAC clamps the result to the 802.11 maximum of 32767 us.
#pragma once

#include "src/greedy/policy.h"

namespace g80211 {

struct NavFrameMask {
  bool cts = false;
  bool ack = false;
  bool rts = false;
  bool data = false;

  static NavFrameMask cts_only() { return {.cts = true}; }
  static NavFrameMask ack_only() { return {.ack = true}; }
  static NavFrameMask rts_and_cts() { return {.cts = true, .rts = true}; }
  static NavFrameMask all() { return {.cts = true, .ack = true, .rts = true, .data = true}; }
};

class NavInflationPolicy : public GreedyPolicy {
 public:
  NavInflationPolicy(NavFrameMask frames, Time inflation, double greedy_percentage = 1.0)
      : frames_(frames), inflation_(inflation), gp_(greedy_percentage) {}

  Time adjust_duration(FrameType type, Time duration, Rng& rng) override;

  std::int64_t inflations_applied() const { return applied_; }

 private:
  bool selected(FrameType type) const;

  NavFrameMask frames_;
  Time inflation_;
  double gp_;
  std::int64_t applied_ = 0;
};

}  // namespace g80211
