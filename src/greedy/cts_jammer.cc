#include "src/greedy/cts_jammer.h"

namespace g80211 {

CtsJammer::CtsJammer(Scheduler& sched, Node& node, Config cfg)
    : sched_(&sched), node_(&node), cfg_(cfg), timer_(sched, [this] { emit(); }) {}

void CtsJammer::start(Time at) {
  running_ = true;
  started_at_ = at;
  timer_.start_at(at);
}

void CtsJammer::stop() {
  running_ = false;
  timer_.cancel();
}

void CtsJammer::emit() {
  if (!running_) return;
  if (!node_->phy().transmitting()) {
    Frame cts;
    cts.type = FrameType::kCts;
    cts.ra = cfg_.fake_ra;
    cts.duration = std::min(cfg_.nav, WifiParams::kMaxNav);
    const Time airtime = node_->mac().params().cts_tx_time();
    node_->phy().transmit(cts, airtime);
    airtime_used_ += airtime;
    ++sent_;
  }
  timer_.start(cfg_.period);
}

double CtsJammer::airtime_fraction() const {
  const Time elapsed = sched_->now() - started_at_;
  if (elapsed <= 0) return 0.0;
  return static_cast<double>(airtime_used_) / static_cast<double>(elapsed);
}

}  // namespace g80211
