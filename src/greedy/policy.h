// Strategy interface through which a (mis)behaving receiver influences its
// MAC. The honest MAC contains no misbehavior logic: it consults the
// attached policy at exactly the three points the paper identifies —
// when emitting a frame (Duration field), when overhearing a DATA frame
// destined elsewhere (ACK spoofing), and when receiving a corrupted DATA
// frame addressed to itself (fake ACKs). A null policy means an honest
// station.
#pragma once

#include "src/mac/frame.h"
#include "src/phy/phy.h"
#include "src/sim/rng.h"

namespace g80211 {

class GreedyPolicy {
 public:
  virtual ~GreedyPolicy() = default;

  // Possibly rewrite the Duration field of an outgoing frame. The MAC
  // clamps the result to the 15-bit maximum (32767 us).
  virtual Time adjust_duration(FrameType /*type*/, Time duration, Rng& /*rng*/) {
    return duration;
  }

  // Overheard a DATA frame destined to another station (promiscuous mode;
  // also called for corrupted sniffs whose MAC addresses survived). Return
  // true to transmit a MAC ACK on behalf of that receiver after SIFS.
  virtual bool spoof_ack_for(const Frame& /*data*/, const RxInfo& /*info*/,
                             Rng& /*rng*/) {
    return false;
  }

  // Received a corrupted DATA frame addressed to this station with intact
  // addresses. Return true to ACK it anyway.
  virtual bool fake_ack_for(const Frame& /*data*/, const RxInfo& /*info*/,
                            Rng& /*rng*/) {
    return false;
  }
};

}  // namespace g80211
