// Misbehavior 3: sending fake ACKs for corrupted frames addressed to the
// greedy receiver itself (paper Section IV-C).
//
// The MAC only consults this policy when the corrupted frame's MAC
// addresses survived (the paper's Table I shows this is the common case),
// so the feasibility constraint is modelled physically rather than assumed.
// Faking an ACK prevents the sender from doubling its contention window,
// keeping its access rate high. With probability `greedy_percentage` per
// corrupted frame (the paper's GP knob, Fig 18).
#pragma once

#include "src/greedy/policy.h"

namespace g80211 {

class FakeAckPolicy : public GreedyPolicy {
 public:
  explicit FakeAckPolicy(double greedy_percentage = 1.0) : gp_(greedy_percentage) {}

  bool fake_ack_for(const Frame& data, const RxInfo& info, Rng& rng) override;

  std::int64_t fakes() const { return fakes_; }

 private:
  double gp_;
  std::int64_t fakes_ = 0;
};

}  // namespace g80211
