#include "src/greedy/fake_ack.h"

namespace g80211 {

bool FakeAckPolicy::fake_ack_for(const Frame& data, const RxInfo& info, Rng& rng) {
  if (data.type != FrameType::kData || !info.corrupted) return false;
  if (!rng.chance(gp_)) return false;
  ++fakes_;
  return true;
}

}  // namespace g80211
