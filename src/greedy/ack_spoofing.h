// Misbehavior 2: spoofing MAC ACKs on behalf of other receivers
// (paper Section IV-B).
//
// Running in promiscuous mode, the greedy receiver answers DATA frames
// destined to victim stations with a MAC ACK (possible because 802.11 ACKs
// carry no transmitter address). If the victim's copy was lost, the
// spoofed ACK suppresses the MAC retransmission and the loss is pushed up
// to TCP. When both the victim's real ACK and the spoof are transmitted,
// physical capture resolves them (the paper's evaluation setup).
//
// `victims` restricts spoofing to specific receiver addresses (empty =
// spoof for every foreign DATA frame). `spoof_on_corrupted` also answers
// sniffed frames that arrived corrupted at the greedy receiver but whose
// MAC addresses survived — the attacker cannot know whether the victim
// received them, which is exactly why the attack works.
#pragma once

#include <set>

#include "src/greedy/policy.h"

namespace g80211 {

class AckSpoofingPolicy : public GreedyPolicy {
 public:
  explicit AckSpoofingPolicy(double greedy_percentage = 1.0,
                             std::set<int> victims = {})
      : gp_(greedy_percentage), victims_(std::move(victims)) {}

  bool spoof_on_corrupted = true;

  bool spoof_ack_for(const Frame& data, const RxInfo& info, Rng& rng) override;

  std::int64_t spoof_decisions() const { return decisions_; }

 private:
  double gp_;
  std::set<int> victims_;
  std::int64_t decisions_ = 0;
};

}  // namespace g80211
