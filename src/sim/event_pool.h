// Chunked slab + LIFO free list of event records, addressed by
// {index, generation}.
//
// Replaces the scheduler's former per-event std::make_shared<State> +
// std::function pair (two heap allocations per scheduled event) with a
// reusable slot array: scheduling in steady state touches no allocator at
// all once the slab has reached the high-water mark of concurrently
// pending events.
//
// Slots live in fixed-size chunks that never move once created (growth
// appends a chunk instead of reallocating), so a slot's address is stable
// across alloc() calls. That is what lets fire() run a callback *in place*
// — no per-event move of the 64-byte inline capture out of the slab —
// even though the callback itself usually alloc()s follow-up events.
//
// Generations are per-slot counters with parity encoding liveness: a
// slot's generation is odd while it holds a live event and even while it
// sits on the free list. A handle captured at alloc() time stops matching
// the moment the slot is released, and a 64-bit counter cannot wrap within
// a simulation, so stale handles (cancel-after-fire, cancel-after-reuse)
// are rejected by a single array compare — no shared_ptr, no ABA.
#pragma once

#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/hot.h"
#include "src/sim/inplace_function.h"

namespace g80211 {

// Callback storage for one scheduled event. 64 bytes of inline capture is
// enough for every call site in the simulator (the largest is the wired
// link's {PacketPtr, std::function} pair at 48); bigger captures fail to
// compile rather than silently allocating.
using EventFn = InplaceFunction<64>;

class EventPool {
 public:
  // Store `fn` in a free slot (reusing one if available) and return its
  // index; read the matching generation with generation() immediately
  // after. The slot is live until take() or release(). The callable is
  // constructed directly in the slot's inline storage (no EventFn
  // temporary) when a raw lambda is passed.
  template <typename F>
  std::uint32_t alloc(F&& fn) {
    G80211_ALLOC_OK(
        "slab growth stops at the event high-water mark; steady state "
        "reuses slots through the free list");
    std::uint32_t idx;
    if (free_.empty()) {
      if (size_ == chunks_.size() * kChunkSize) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
        // Keep fire()/release() allocation-free: the free list can hold at
        // most one entry per slot, so reserving alongside chunk growth
        // means its push_back never reallocates mid-callback.
        free_.reserve(chunks_.size() * kChunkSize);
      }
      idx = static_cast<std::uint32_t>(size_++);
    } else {
      idx = free_.back();
      free_.pop_back();
    }
    Slot& s = slot(idx);
    ++s.generation;  // even -> odd: live
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      s.fn = std::forward<F>(fn);
    } else {
      s.fn.emplace(std::forward<F>(fn));
    }
    return idx;
  }

  // Generation assigned by the most recent alloc() of this slot.
  std::uint64_t generation(std::uint32_t idx) const {
    return slot(idx).generation;
  }

  // True while {idx, gen} names a live (scheduled, unfired, uncancelled)
  // event.
  bool live(std::uint32_t idx, std::uint64_t gen) const {
    return idx < size_ && slot(idx).generation == gen && (gen & 1) != 0;
  }

  // Fire path: run the callback in its slot, then free the slot. The
  // generation flips to even *before* the call so handles captured for
  // this event stop matching (a cancel issued from inside the callback is
  // a stale no-op, exactly as when the callback was moved out first), and
  // the slot joins the free list only *after* the call so it cannot be
  // reused by events the callback schedules. Chunk stability keeps the
  // slot's address valid across that scheduling.
  void fire(std::uint32_t idx) {
    Slot& s = slot(idx);
    G80211_DCHECK((s.generation & 1) != 0 && "fire() of a free slot");
    ++s.generation;  // odd -> even: live handles stop matching
    s.fn();
    s.fn.reset();
    // NOLINTNEXTLINE(hot-path-alloc): capacity reserved at chunk growth in
    // alloc() — one slot per possible entry, so this never reallocates.
    free_.push_back(idx);
  }

  // Cancel path: drop the callback and free the slot.
  void release(std::uint32_t idx) {
    Slot& s = slot(idx);
    G80211_DCHECK((s.generation & 1) != 0 && "double free of event slot");
    s.fn.reset();
    ++s.generation;  // odd -> even: free
    // NOLINTNEXTLINE(hot-path-alloc): capacity reserved at chunk growth in
    // alloc() — one slot per possible entry, so this never reallocates.
    free_.push_back(idx);
  }

  // Slab high-water mark: total slots ever created.
  std::size_t slots() const { return size_; }
  // Slots currently free (slots() - free_slots() events are live).
  std::size_t free_slots() const { return free_.size(); }

 private:
  struct Slot {
    std::uint64_t generation = 0;
    EventFn fn;
  };

  static constexpr std::uint32_t kChunkShift = 8;
  static constexpr std::uint32_t kChunkSize = 1u << kChunkShift;

  Slot& slot(std::uint32_t idx) {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }
  const Slot& slot(std::uint32_t idx) const {
    return chunks_[idx >> kChunkShift][idx & (kChunkSize - 1)];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t size_ = 0;  // slots ever created (high-water mark)
  std::vector<std::uint32_t> free_;
};

}  // namespace g80211
