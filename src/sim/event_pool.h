// Slab + LIFO free list of event records, addressed by {index, generation}.
//
// Replaces the scheduler's former per-event std::make_shared<State> +
// std::function pair (two heap allocations per scheduled event) with a
// reusable slot array: scheduling in steady state touches no allocator at
// all once the slab has reached the high-water mark of concurrently
// pending events.
//
// Generations are per-slot counters with parity encoding liveness: a
// slot's generation is odd while it holds a live event and even while it
// sits on the free list. A handle captured at alloc() time stops matching
// the moment the slot is released, and a 64-bit counter cannot wrap within
// a simulation, so stale handles (cancel-after-fire, cancel-after-reuse)
// are rejected by a single array compare — no shared_ptr, no ABA.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "src/sim/inplace_function.h"

namespace g80211 {

// Callback storage for one scheduled event. 64 bytes of inline capture is
// enough for every call site in the simulator (the largest is the wired
// link's {PacketPtr, std::function} pair at 48); bigger captures fail to
// compile rather than silently allocating.
using EventFn = InplaceFunction<64>;

class EventPool {
 public:
  // Store `fn` in a free slot (reusing one if available) and return its
  // index; read the matching generation with generation() immediately
  // after. The slot is live until take() or release().
  std::uint32_t alloc(EventFn fn) {
    std::uint32_t idx;
    if (free_.empty()) {
      idx = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    } else {
      idx = free_.back();
      free_.pop_back();
    }
    Slot& s = slots_[idx];
    ++s.generation;  // even -> odd: live
    s.fn = std::move(fn);
    return idx;
  }

  // Generation assigned by the most recent alloc() of this slot.
  std::uint64_t generation(std::uint32_t idx) const {
    return slots_[idx].generation;
  }

  // True while {idx, gen} names a live (scheduled, unfired, uncancelled)
  // event.
  bool live(std::uint32_t idx, std::uint64_t gen) const {
    return idx < slots_.size() && slots_[idx].generation == gen &&
           (gen & 1) != 0;
  }

  // Fire path: move the callback out and free the slot. The caller runs
  // the returned callback *after* this returns, so the callback may safely
  // alloc() new events (possibly reusing this very slot).
  EventFn take(std::uint32_t idx) {
    Slot& s = slots_[idx];
    assert((s.generation & 1) != 0 && "take() of a free slot");
    EventFn fn = std::move(s.fn);
    free_slot(idx);
    return fn;
  }

  // Cancel path: drop the callback and free the slot.
  void release(std::uint32_t idx) { free_slot(idx); }

  // Slab high-water mark: total slots ever created.
  std::size_t slots() const { return slots_.size(); }
  // Slots currently free (slots() - free_slots() events are live).
  std::size_t free_slots() const { return free_.size(); }

 private:
  struct Slot {
    std::uint64_t generation = 0;
    EventFn fn;
  };

  void free_slot(std::uint32_t idx) {
    Slot& s = slots_[idx];
    assert((s.generation & 1) != 0 && "double free of event slot");
    s.fn.reset();
    ++s.generation;  // odd -> even: free
    free_.push_back(idx);
  }

  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace g80211
