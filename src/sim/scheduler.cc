#include "src/sim/scheduler.h"

#include <utility>

#include "src/sim/check.h"

namespace g80211 {

// Discard cancelled entries at the queue head and return the earliest
// live one, or nullptr when the queue drains. The pointer stays valid
// until the next queue operation.
const Scheduler::Entry* Scheduler::peek_live() {
  while (!queue_empty()) {
    const Entry& top = queue_top();
    if (pool_.live(top.index, top.gen)) return &top;
    queue_pop();
  }
  return nullptr;
}

void Scheduler::fire(const Entry& e) {
  G80211_DCHECK(e.when >= now_);
  now_ = e.when;
  --live_;
  ++executed_;
  // Runs the callback in its (chunk-stable) slot: no per-event move of the
  // inline capture. The pool frees the slot only after the call returns.
  pool_.fire(e.index);
}

bool Scheduler::step() {
  const Entry* top = peek_live();
  if (top == nullptr) return false;
  const Entry e = *top;
  queue_pop();
  fire(e);
  return true;
}

void Scheduler::run_until(Time horizon) {
  // Exactly one peek per queue entry (live or tombstone) and one pop per
  // consumed entry: peek_live() skips tombstones as it scans, and the
  // surviving top is copied out before the pop instead of re-fetched.
  for (;;) {
    const Entry* top = peek_live();
    if (top == nullptr || top->when > horizon) break;
    const Entry e = *top;
    queue_pop();
    fire(e);
  }
  if (now_ < horizon) now_ = horizon;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace g80211
