#include "src/sim/scheduler.h"

#include <cassert>
#include <utility>

namespace g80211 {

EventId Scheduler::at(Time when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  auto state = std::make_shared<EventId::State>();
  queue_.push(Entry{when, next_seq_++, std::move(fn), state});
  return EventId(std::move(state));
}

void Scheduler::discard_cancelled_tops() {
  while (!queue_.empty() && queue_.top().state->cancelled) queue_.pop();
}

bool Scheduler::step() {
  discard_cancelled_tops();
  if (queue_.empty()) return false;
  // priority_queue::top is const; move out via const_cast, standard trick.
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  assert(e.when >= now_);
  now_ = e.when;
  e.state->fired = true;
  ++executed_;
  e.fn();
  return true;
}

void Scheduler::run_until(Time horizon) {
  for (;;) {
    discard_cancelled_tops();
    if (queue_.empty() || queue_.top().when > horizon) break;
    if (!step()) break;
  }
  if (now_ < horizon) now_ = horizon;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace g80211
