#include "src/sim/scheduler.h"

#include <cassert>
#include <utility>

namespace g80211 {

EventId Scheduler::at(Time when, EventFn fn) {
  assert(when >= now_ && "cannot schedule into the past");
  const std::uint32_t index = pool_.alloc(std::move(fn));
  const std::uint64_t gen = pool_.generation(index);
  queue_.push(Entry{when, next_seq_++, gen, index});
  ++live_;
  return EventId(this, index, gen);
}

void Scheduler::discard_cancelled_tops() {
  while (!queue_.empty() &&
         !pool_.live(queue_.top().index, queue_.top().gen)) {
    queue_.pop();
  }
}

void Scheduler::fire_top() {
  const Entry e = queue_.top();
  queue_.pop();
  assert(e.when >= now_);
  now_ = e.when;
  // Move the callback out before running it: the callback may schedule new
  // events, growing the slab and reusing this very slot.
  EventFn fn = pool_.take(e.index);
  --live_;
  ++executed_;
  fn();
}

bool Scheduler::step() {
  discard_cancelled_tops();
  if (queue_.empty()) return false;
  fire_top();
  return true;
}

void Scheduler::run_until(Time horizon) {
  // One tombstone scan per iteration: after discard_cancelled_tops() the
  // top is known live, so fire it directly instead of re-scanning in
  // step().
  for (;;) {
    discard_cancelled_tops();
    if (queue_.empty() || queue_.top().when > horizon) break;
    fire_top();
  }
  if (now_ < horizon) now_ = horizon;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace g80211
