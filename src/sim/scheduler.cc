#include "src/sim/scheduler.h"

#include <utility>

#include "src/sim/check.h"

namespace g80211 {

void Scheduler::discard_cancelled_tops() {
  while (!queue_.empty() &&
         !pool_.live(queue_.top().index, queue_.top().gen)) {
    queue_.pop();
  }
}

void Scheduler::fire_top() {
  const Entry e = queue_.top();
  queue_.pop();
  G80211_DCHECK(e.when >= now_);
  now_ = e.when;
  --live_;
  ++executed_;
  // Runs the callback in its (chunk-stable) slot: no per-event move of the
  // inline capture. The pool frees the slot only after the call returns.
  pool_.fire(e.index);
}

bool Scheduler::step() {
  discard_cancelled_tops();
  if (queue_.empty()) return false;
  fire_top();
  return true;
}

void Scheduler::run_until(Time horizon) {
  // One tombstone scan per iteration: after discard_cancelled_tops() the
  // top is known live, so fire it directly instead of re-scanning in
  // step().
  for (;;) {
    discard_cancelled_tops();
    if (queue_.empty() || queue_.top().when > horizon) break;
    fire_top();
  }
  if (now_ < horizon) now_ = horizon;
}

void Scheduler::run() {
  while (step()) {
  }
}

}  // namespace g80211
