#include "src/sim/rng.h"

#include <cmath>

#include "src/sim/check.h"

namespace g80211 {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork() { return Rng(next_u64()); }

std::int64_t Rng::uniform_int(std::int64_t n) {
  G80211_DCHECK(n >= 0);
  const auto un = static_cast<std::uint64_t>(n) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return static_cast<std::int64_t>(r % un);
}

std::int64_t Rng::uniform_between(std::int64_t lo, std::int64_t hi) {
  G80211_DCHECK(lo <= hi);
  return lo + uniform_int(hi - lo);
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

}  // namespace g80211
