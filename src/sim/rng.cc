#include "src/sim/rng.h"

#include <cassert>
#include <cmath>

namespace g80211 {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

Rng Rng::fork() { return Rng(next_u64()); }

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t n) {
  assert(n >= 0);
  const auto un = static_cast<std::uint64_t>(n) + 1;
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % un;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return static_cast<std::int64_t>(r % un);
}

std::int64_t Rng::uniform_between(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + uniform_int(hi - lo);
}

double Rng::uniform() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::normal(double mean, double stddev) {
  if (have_spare_) {
    have_spare_ = false;
    return mean + stddev * spare_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double m = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * m;
  have_spare_ = true;
  return mean + stddev * u * m;
}

double Rng::exponential(double mean) {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

}  // namespace g80211
