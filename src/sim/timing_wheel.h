// Hierarchical timing wheel — alternative ready-queue backend for the
// scheduler (selectable against the 4-ary heap, see scheduler.h).
//
// Layout: 4 levels of 256 slots over a tick of 2^10 ns (1.024 us). Level k
// spans 256^(k+1) ticks, so the wheel covers 2^42 ns (~73 simulated
// minutes) ahead of the cursor; anything further sits in a small overflow
// heap and is re-placed when the cursor approaches. Push is O(1): two
// shifts and a vector push_back into the destination slot. Pop drains the
// cursor's level-0 slot into a tiny "ready" heap that orders the (rarely
// more than a handful of) entries sharing one 1.024 us tick.
//
// Determinism: pop order is by the caller's strict total order (time,
// insertion-seq), identical to the d-ary heap backend. Slots partition time
// into disjoint tick ranges and are drained strictly in tick order (per-slot
// occupancy bitmaps make the in-order scan cheap); within a tick the ready
// heap applies the full comparator. The golden event-order trace test in
// tests/test_scheduler.cc pins the equivalence on both backends.
//
// Why a wheel can beat a heap here: push/pop on the heap are O(log n) with
// data-dependent branches; the wheel replaces them with O(1) stores and a
// bitmap scan whose cost is amortised over the events of a tick. The MAC's
// schedule-then-cancel churn (NAV, difs/backoff timers) also dies cheaply:
// tombstones are skipped only once, when their slot drains.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/dary_heap.h"
#include "src/sim/time.h"

namespace g80211 {

// T must expose a `when` (Time) member; Before must be the scheduler's
// strict total order over T. Interface mirrors DaryHeap except that top()
// is non-const (it may advance the cursor and cascade slots lazily).
template <typename T, typename Before>
class TimingWheel {
 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  void push(const T& x) {
    ++size_;
    const std::uint64_t tick = tick_of(x.when);
    if (tick < next_tick_) {  // cursor already passed this tick's slot
      ready_.push(x);
      return;
    }
    place(x, tick);
  }

  // top()/pop() fast path: ready_ already holds the minimum (true for
  // every peek after the first of an event, and for the pop that follows
  // a peek), so the cursor walk stays out of line and off the hot path.
  const T& top() {
    if (ready_.empty()) advance();
    return ready_.top();
  }

  void pop() {
    if (ready_.empty()) advance();
    ready_.pop();
    --size_;
  }

 private:
  static constexpr int kTickShift = 10;  // 1.024 us per tick
  static constexpr int kSlotBits = 8;
  static constexpr std::size_t kSlots = 1u << kSlotBits;  // 256 per level
  static constexpr int kLevels = 4;
  static constexpr std::uint64_t kSlotMask = kSlots - 1;

  static std::uint64_t tick_of(Time when) {
    G80211_DCHECK(when >= 0 && "wheel time must be non-negative");
    return static_cast<std::uint64_t>(when) >> kTickShift;
  }

  // 256-bit occupancy bitmap per level: the in-order slot scan is four
  // word reads plus a count-trailing-zeros.
  struct Bitmap {
    std::array<std::uint64_t, kSlots / 64> w{};
    void set(std::size_t i) { w[i >> 6] |= std::uint64_t{1} << (i & 63); }
    void clear(std::size_t i) { w[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
    // First set index >= from, or -1.
    int next(std::size_t from) const {
      std::size_t word = from >> 6;
      std::uint64_t bits = w[word] & (~std::uint64_t{0} << (from & 63));
      for (;;) {
        if (bits != 0) {
          return static_cast<int>((word << 6) + static_cast<std::size_t>(
                                                    std::countr_zero(bits)));
        }
        if (++word == w.size()) return -1;
        bits = w[word];
      }
    }
    bool any() const {
      return (w[0] | w[1] | w[2] | w[3]) != 0;
    }
    bool test(std::size_t i) const {
      return (w[i >> 6] >> (i & 63)) & 1;
    }
  };

  // Route `x` (tick >= next_tick_) to the first level whose window, at that
  // level's granularity, still contains the tick; beyond level 3 it
  // overflows to the heap. Coarse-delta (not raw-delta) comparison keeps
  // every slot holding exactly one coarse-tick value at a time, which is
  // what makes the in-order drain correct across window wrap.
  void place(const T& x, std::uint64_t tick) {
    for (int k = 0; k < kLevels; ++k) {
      const int shift = kSlotBits * k;
      if ((tick >> shift) - (next_tick_ >> shift) < kSlots) {
        const std::size_t idx = (tick >> shift) & kSlotMask;
        slots_[k][idx].push_back(x);
        bm_[k].set(idx);
        ++in_wheel_;
        return;
      }
    }
    overflow_.push(x);
  }

  // Re-place every entry of level-k slot `idx` now that the cursor entered
  // its coarse tick; entries land at a strictly lower level (or level 0).
  void cascade(int k, std::size_t idx) {
    std::vector<T>& slot = slots_[k][idx];
    bm_[k].clear(idx);
    // Swap out: place() touches other slots of the same level only at
    // different indices, but keep the loop safe against any reallocation.
    std::vector<T> moved;
    moved.swap(slot);
    in_wheel_ -= moved.size();
    for (const T& x : moved) place(x, tick_of(x.when));
    moved.clear();
    // Hand the (empty, capacity-bearing) buffer back to the slot so steady
    // state re-uses it instead of reallocating.
    slot.swap(moved);
  }

  // Pull overflow entries that now fit inside the wheel span. Called after
  // the cursor crosses (or jumps over) a full-span boundary.
  void refill_from_overflow() {
    while (!overflow_.empty()) {
      const T& t = overflow_.top();
      const std::uint64_t tick = tick_of(t.when);
      const int top_shift = kSlotBits * (kLevels - 1);
      if ((tick >> top_shift) - (next_tick_ >> top_shift) >= kSlots) break;
      T x = t;
      overflow_.pop();
      place(x, tick);
    }
  }

  // Jump the cursor forward to tick `t`, restoring the invariant that the
  // cursor's own coarse slot at every level has been cascaded. Only called
  // with jump targets that cannot overshoot queued work (see advance()).
  void jump_to(std::uint64_t t) {
    const std::uint64_t old = next_tick_;
    G80211_DCHECK(t >= old);
    next_tick_ = t;
    // Fast path: a move within one level-1 coarse tick crosses no slot
    // boundary at any level (equal >>8 implies equal >>16, >>24), so there
    // is nothing to cascade and no overflow refill trigger. This is every
    // tick-to-tick step inside a 256-tick window — the common case.
    if ((old >> kSlotBits) == (t >> kSlotBits)) return;
    jump_slow(old, t);
  }

  void jump_slow(std::uint64_t old, std::uint64_t t) {
    // Overflow entries become placeable whenever the cursor enters a new
    // *top-level* coarse tick (the same granularity place() overflows at),
    // so that crossing — not a full-span one — is the refill trigger.
    if ((old >> (kSlotBits * (kLevels - 1))) !=
        (t >> (kSlotBits * (kLevels - 1)))) {
      refill_from_overflow();
    }
    // Top-down: a higher-level cascade may deposit into a lower landed
    // slot, which the later (finer) iteration then cascades in turn.
    for (int m = kLevels - 1; m >= 1; --m) {
      const int shift = kSlotBits * m;
      if ((old >> shift) == (t >> shift)) continue;
      const std::size_t idx = (t >> shift) & kSlotMask;
      if (bm_[m].test(idx)) cascade(m, idx);
    }
  }

  // Move the cursor forward until ready_ holds the queue's minimum.
  // Invariants: every entry with tick < next_tick_ is in ready_; the
  // cursor's own slot at every level has already been cascaded/drained.
  void advance() {
    G80211_DCHECK(size_ > 0 && "top()/pop() of an empty wheel");
    while (ready_.empty()) {
      // Drain the next occupied level-0 slot of the current window.
      const std::size_t idx0 = next_tick_ & kSlotMask;
      if (const int s = bm_[0].next(idx0); s >= 0) {
        const std::uint64_t tick =
            (next_tick_ - idx0) + static_cast<std::uint64_t>(s);
        std::vector<T>& slot = slots_[0][static_cast<std::size_t>(s)];
        for (const T& x : slot) ready_.push(x);
        in_wheel_ -= slot.size();
        slot.clear();
        bm_[0].clear(static_cast<std::size_t>(s));
        // Through jump_to, not a bare increment: stepping off the last tick
        // of a coarse window must cascade the newly entered higher-level
        // slots, or an entry parked there (pushed when its delta was
        // exactly one window) is leapfrogged by later level-0 work.
        jump_to(tick + 1);
        return;
      }
      if (in_wheel_ == 0) {
        // Whole wheel empty: jump straight to the earliest overflow entry.
        G80211_DCHECK(!overflow_.empty());
        jump_to(tick_of(overflow_.top().when));
        continue;
      }
      // Level-0 window exhausted: climb. At each level k, entries still
      // sitting below level k are at wrapped indices only (behind the
      // cursor index — reached -1 on the scan), which means they belong to
      // the next level-k coarse tick: step to that boundary and rescan
      // rather than risk overshooting them via a farther level-k slot.
      // With everything below empty, jump straight to the nearest occupied
      // slot ahead in level k's window and cascade it.
      for (int k = 1; k <= kLevels; ++k) {
        if (bm_[k - 1].any()) {
          const int shift = kSlotBits * k;
          jump_to(((next_tick_ >> shift) + 1) << shift);
          break;
        }
        G80211_DCHECK(k < kLevels && "in_wheel_ > 0 but every bitmap empty");
        if (k == kLevels) break;  // unreachable; keeps bm_[k] in bounds
        const int shift = kSlotBits * k;
        const std::size_t ck = (next_tick_ >> shift) & kSlotMask;
        const int j = bm_[k].next(ck);
        if (j < 0) continue;  // nothing ahead in this window; climb
        const std::uint64_t coarse =
            (next_tick_ >> shift) + (static_cast<std::uint64_t>(j) - ck);
        // jump_to cascades slot j itself (the landing slot at level k) and
        // any coarser landing slots the move crossed, and refills overflow
        // on top-level crossings.
        jump_to(coarse << shift);
        break;
      }
    }
  }

  std::uint64_t next_tick_ = 0;  // level-0 cursor: all earlier ticks drained
  std::size_t size_ = 0;         // total entries (ready + wheel + overflow)
  std::size_t in_wheel_ = 0;     // entries currently in wheel slots
  std::array<std::array<std::vector<T>, kSlots>, kLevels> slots_;
  std::array<Bitmap, kLevels> bm_;
  DaryHeap<T, Before> ready_;     // drained ticks, full comparator order
  DaryHeap<T, Before> overflow_;  // beyond the wheel span
};

}  // namespace g80211
