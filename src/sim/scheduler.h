// Deterministic discrete-event scheduler.
//
// Events are closures ordered by (time, insertion sequence); ties break in
// insertion order so that a run is a pure function of (scenario, seed).
// Events can be cancelled through the EventId returned at scheduling time;
// cancellation is O(1) (a generation bump frees the slot immediately) and
// stale heap entries are skipped as tombstones when popped.
//
// Hot-path design: callbacks live in an EventPool slab (no shared_ptr, no
// std::function, no per-event heap allocation in steady state) and the
// priority queue holds plain {time, seq, generation, index} records. See
// docs/architecture.md, "Event engine".
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/dary_heap.h"
#include "src/sim/event_pool.h"
#include "src/sim/hot.h"
#include "src/sim/time.h"
#include "src/sim/timing_wheel.h"

namespace g80211 {

class Scheduler;

// Ready-queue implementation behind the scheduler. Both produce the exact
// same event execution order (the comparator is a strict total order; the
// golden event-order trace test pins the equivalence) — the choice is pure
// mechanics. The wheel wins on the saturated-hotspot benchmarks (O(1)
// push, tombstones skipped in bulk at slot drain), so it is the default;
// the heap remains selectable for verification and A/B measurement.
enum class SchedulerBackend {
  kDaryHeap,
  kTimingWheel,
};
inline constexpr SchedulerBackend kDefaultSchedulerBackend =
    SchedulerBackend::kTimingWheel;

// Handle to a scheduled event; cheap to copy, safe to outlive the event
// (but not the scheduler it came from).
class EventId {
 public:
  EventId() = default;
  // True if the event is still pending (not run, not cancelled).
  bool pending() const;
  void cancel();

 private:
  friend class Scheduler;
  EventId(Scheduler* sched, std::uint32_t index, std::uint64_t gen)
      : sched_(sched), index_(index), gen_(gen) {}
  Scheduler* sched_ = nullptr;
  std::uint32_t index_ = 0;
  std::uint64_t gen_ = 0;
};

class Scheduler {
 public:
  explicit Scheduler(SchedulerBackend backend = kDefaultSchedulerBackend)
      : backend_(backend) {}
  SchedulerBackend backend() const { return backend_; }

  Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (must be >= now()).
  // Templated so the callable is constructed directly in its pool slot —
  // the capture is written once at the call site instead of being moved
  // through an EventFn temporary (two 80-byte relocations per event).
  template <typename F>
  EventId at(Time when, F&& fn) {
    G80211_DCHECK(when >= now_ && "cannot schedule into the past");
    const std::uint32_t index = pool_.alloc(std::forward<F>(fn));
    const std::uint64_t gen = pool_.generation(index);
    const Entry e{when, next_seq_++, gen, index};
    if (backend_ == SchedulerBackend::kDaryHeap) {
      heap_.push(e);
    } else {
      wheel_.push(e);
    }
    ++live_;
    return EventId(this, index, gen);
  }
  // Schedule `fn` to run `delay` ns from now.
  template <typename F>
  EventId after(Time delay, F&& fn) {
    return at(now_ + delay, std::forward<F>(fn));
  }

  // Run every event with time <= horizon. The clock ends at `horizon`.
  // Hot root: the event drain is the simulator's main loop, and the AST
  // analyzer walks the packet path from here (src/sim/hot.h).
  G80211_HOT void run_until(Time horizon);
  // Run until no events remain.
  void run();

  // Number of events executed so far (diagnostics).
  std::uint64_t executed() const { return executed_; }
  // Number of events currently queued (including tombstones).
  std::size_t queued() const { return queue_size(); }
  // Live events currently queued (scheduled, unfired, uncancelled).
  std::size_t pending() const { return live_; }
  // Cancelled tombstones still sitting in the queue; they are discarded
  // lazily when they reach the top, so buildup here measures cancel churn.
  std::size_t cancelled_pending() const { return queue_size() - live_; }
  // Event-slab high-water mark: the most events that were ever pending at
  // once. Stays flat under schedule/cancel churn (slots are reused).
  std::size_t pool_slots() const { return pool_.slots(); }

 private:
  friend class EventId;

  struct Entry {
    Time when = 0;
    std::uint64_t seq = 0;
    std::uint64_t gen = 0;
    std::uint32_t index = 0;
  };
  // Strict total order (seq values are unique), so the heap's pop sequence
  // is the sorted order of its pushes regardless of internal layout — the
  // determinism contract DaryHeap relies on.
  struct Earlier {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when < b.when;
      return a.seq < b.seq;
    }
  };

  bool event_live(std::uint32_t index, std::uint64_t gen) const {
    return pool_.live(index, gen);
  }
  void cancel_event(std::uint32_t index, std::uint64_t gen) {
    if (!pool_.live(index, gen)) return;  // fired, cancelled, or reused slot
    pool_.release(index);
    --live_;
  }

  // Backend dispatch for the ready queue. One perfectly-predicted branch
  // per operation; both containers pop in the identical (when, seq) order.
  std::size_t queue_size() const {
    return backend_ == SchedulerBackend::kDaryHeap ? heap_.size()
                                                   : wheel_.size();
  }
  bool queue_empty() const { return queue_size() == 0; }
  // Non-const: the wheel advances its cursor lazily on top().
  const Entry& queue_top() {
    return backend_ == SchedulerBackend::kDaryHeap ? heap_.top()
                                                   : wheel_.top();
  }
  void queue_pop() {
    if (backend_ == SchedulerBackend::kDaryHeap) {
      heap_.pop();
    } else {
      wheel_.pop();
    }
  }

  bool step();                // pop+run one live event; false if queue empty
  const Entry* peek_live();   // drop cancelled tops; earliest live or null
  void fire(const Entry& e);  // run a just-popped live entry

  SchedulerBackend backend_ = kDefaultSchedulerBackend;
  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t live_ = 0;
  EventPool pool_;
  DaryHeap<Entry, Earlier> heap_;
  TimingWheel<Entry, Earlier> wheel_;
};

inline bool EventId::pending() const {
  return sched_ != nullptr && sched_->event_live(index_, gen_);
}
inline void EventId::cancel() {
  if (sched_ != nullptr) sched_->cancel_event(index_, gen_);
}

// A restartable one-shot timer bound to a scheduler; wraps the
// schedule/cancel pattern the MAC uses everywhere. The scheduled event
// captures only `this`, so restarts never copy the callback.
class Timer {
 public:
  Timer(Scheduler& sched, std::function<void()> fn)
      : sched_(&sched), fn_(std::move(fn)) {}
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;
  ~Timer() { cancel(); }

  void start(Time delay) {
    cancel();
    id_ = sched_->after(delay, [this] { fn_(); });
  }
  void start_at(Time when) {
    cancel();
    id_ = sched_->at(when, [this] { fn_(); });
  }
  void cancel() { id_.cancel(); }
  bool pending() const { return id_.pending(); }

 private:
  Scheduler* sched_;
  std::function<void()> fn_;
  EventId id_;
};

}  // namespace g80211
