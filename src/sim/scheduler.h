// Deterministic discrete-event scheduler.
//
// Events are closures ordered by (time, insertion sequence); ties break in
// insertion order so that a run is a pure function of (scenario, seed).
// Events can be cancelled through the EventId returned at scheduling time;
// cancellation is O(1) (a tombstone flag) and cancelled events are skipped
// when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "src/sim/time.h"

namespace g80211 {

class Scheduler;

// Handle to a scheduled event; cheap to copy, safe to outlive the event.
class EventId {
 public:
  EventId() = default;
  // True if the event is still pending (not run, not cancelled).
  bool pending() const { return state_ && !state_->cancelled && !state_->fired; }
  void cancel() {
    if (state_) state_->cancelled = true;
  }

 private:
  friend class Scheduler;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventId(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

class Scheduler {
 public:
  Time now() const { return now_; }

  // Schedule `fn` to run at absolute time `at` (must be >= now()).
  EventId at(Time when, std::function<void()> fn);
  // Schedule `fn` to run `delay` ns from now.
  EventId after(Time delay, std::function<void()> fn) {
    return at(now_ + delay, std::move(fn));
  }

  // Run every event with time <= horizon. The clock ends at `horizon`.
  void run_until(Time horizon);
  // Run until no events remain.
  void run();

  // Number of events executed so far (diagnostics).
  std::uint64_t executed() const { return executed_; }
  // Number of events currently queued (including tombstones).
  std::size_t queued() const { return queue_.size(); }

 private:
  struct Entry {
    Time when = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
    std::shared_ptr<EventId::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool step();  // pop+run one live event; false if queue empty
  void discard_cancelled_tops();

  Time now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
};

// A restartable one-shot timer bound to a scheduler; wraps the
// schedule/cancel pattern the MAC uses everywhere.
class Timer {
 public:
  Timer(Scheduler& sched, std::function<void()> fn)
      : sched_(&sched), fn_(std::move(fn)) {}

  void start(Time delay) {
    cancel();
    id_ = sched_->after(delay, fn_);
  }
  void start_at(Time when) {
    cancel();
    id_ = sched_->at(when, fn_);
  }
  void cancel() { id_.cancel(); }
  bool pending() const { return id_.pending(); }

 private:
  Scheduler* sched_;
  std::function<void()> fn_;
  EventId id_;
};

}  // namespace g80211
