// Deterministic random number generation.
//
// xoshiro256** seeded via splitmix64 — fast, high quality, and fully
// reproducible across platforms (unlike std::default_random_engine or the
// distribution objects in <random>, whose outputs are implementation
// defined). All distributions used by the simulator are implemented here so
// runs are bit-identical everywhere.
#pragma once

#include <cmath>
#include <cstdint>

namespace g80211 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derive an independent stream (for per-node RNGs) from this one.
  Rng fork();

  // The draw-per-reception paths (next_u64/uniform/chance/normal) are
  // defined inline: at tens of millions of draws per simulated second the
  // call overhead is measurable, and the math is identical to the former
  // out-of-line definitions (same operations, same order, same bits).
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform integer in [0, n] (inclusive). n >= 0.
  std::int64_t uniform_int(std::int64_t n);
  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_between(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double uniform() {
    // 53 random mantissa bits.
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  // Bernoulli trial.
  bool chance(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Standard normal via polar Box-Muller (deterministic).
  double normal(double mean = 0.0, double stddev = 1.0) {
    if (have_spare_) {
      have_spare_ = false;
      return mean + stddev * spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double m = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * m;
    have_spare_ = true;
    return mean + stddev * u * m;
  }

  // Exponential with given mean.
  double exponential(double mean);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace g80211
