// Deterministic random number generation.
//
// xoshiro256** seeded via splitmix64 — fast, high quality, and fully
// reproducible across platforms (unlike std::default_random_engine or the
// distribution objects in <random>, whose outputs are implementation
// defined). All distributions used by the simulator are implemented here so
// runs are bit-identical everywhere.
#pragma once

#include <cstdint>

namespace g80211 {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derive an independent stream (for per-node RNGs) from this one.
  Rng fork();

  std::uint64_t next_u64();

  // Uniform integer in [0, n] (inclusive). n >= 0.
  std::int64_t uniform_int(std::int64_t n);
  // Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_between(std::int64_t lo, std::int64_t hi);
  // Uniform double in [0, 1).
  double uniform();
  // Bernoulli trial.
  bool chance(double p);
  // Standard normal via polar Box-Muller (deterministic).
  double normal(double mean = 0.0, double stddev = 1.0);
  // Exponential with given mean.
  double exponential(double mean);

 private:
  std::uint64_t s_[4];
  bool have_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace g80211
