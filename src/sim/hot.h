// Hot-path annotation macros, consumed by tools/analyze/g80211_ast.py.
//
// The steady-state packet path must not touch the heap (PR 2 removed the
// per-event allocations, PR 8 the last per-packet one). That contract is
// enforced statically: the AST contract analyzer walks the call graph
// from every G80211_HOT-annotated root and flags `new`, the std
// allocator-function family, and allocating container methods anywhere
// reachable, unless the function is explicitly excused.
//
//   G80211_HOT            marks a function as a steady-state hot-path
//                         root (scheduler drain, channel fan-out, PHY
//                         delivery tail, MAC state machine). Expands to
//                         [[gnu::hot]] so the annotation doubles as a
//                         real optimizer hint (hot functions are placed
//                         and optimized more aggressively).
//
//   G80211_ALLOC_OK(why)  first statement of a function body: this
//                         function may allocate even though it is
//                         reachable from a hot root. The reason string
//                         is mandatory and should say *why* the
//                         allocation is steady-state-safe (amortized
//                         slab growth that stops at the high-water mark,
//                         first-contact-per-peer map inserts, a cold
//                         error path). Expands to nothing at runtime.
//
// Line-granular escapes use the shared NOLINT policy instead:
// `// NOLINT(hot-path-alloc): <reason>`. See docs/static-analysis.md.
#pragma once

#define G80211_HOT [[gnu::hot]]
#define G80211_ALLOC_OK(why) ((void)0)
