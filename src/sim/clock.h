// A read-only clock the detectors tell time by — the seam that lets one
// detector implementation serve two front-ends.
//
// Live, a detector follows the Scheduler that drives the simulation; the
// hooks it chains onto fire with that clock already advanced. Offline
// (capture replay, the streaming monitor) there is no simulation: the
// replay walk owns a ManualClock and advances it to each journalled
// event's live callback time before re-issuing the call. Either way the
// detector just calls Clock::now() — it cannot tell which front-end it is
// behind, which is exactly the guarantee the live-vs-replay equivalence
// suite leans on.
//
// Clock is a non-owning view (two words): every detector bound to the
// same source reads the same time, so a replay engine advancing its one
// ManualClock moves all of its detectors at once. The source must outlive
// the detectors bound to it, the same lifetime rule the Scheduler already
// imposes live.
#pragma once

#include "src/sim/check.h"
#include "src/sim/scheduler.h"
#include "src/sim/time.h"

namespace g80211 {

// An advanceable time source for clock owners outside a simulation
// (capture replay, the streaming monitor). Never rewinds; a stale
// advance_to() is a no-op so callers can pass every event time without
// de-duplicating ties first.
class ManualClock {
 public:
  Time now() const { return now_; }
  void advance_to(Time at) {
    if (at > now_) now_ = at;
  }

 private:
  Time now_ = 0;
};

class Clock {
 public:
  explicit Clock(const Scheduler& sched) : sched_(&sched) {}
  explicit Clock(const ManualClock& manual) : manual_(&manual) {}

  Time now() const {
    return sched_ != nullptr ? sched_->now() : manual_->now();
  }

 private:
  const Scheduler* sched_ = nullptr;
  const ManualClock* manual_ = nullptr;
};

}  // namespace g80211
