// Four-ary min-heap for the scheduler's ready queue.
//
// Replaces std::priority_queue's binary heap on the event hot path: with
// 32-byte entries, a node's four children share one or two cache lines, so
// a sift-down touches half as many levels and the level it does touch is a
// single contiguous read. On the saturated-hotspot benchmarks pop/push is
// ~a third of total simulation cost, which makes heap layout worth caring
// about.
//
// Determinism: the scheduler's comparator is a *strict total order*
// ((time, insertion-seq), no equal elements), so the sequence of pop()
// results is the sorted order of whatever was pushed — unique and
// independent of the heap's internal layout or arity. Swapping the binary
// heap for this one therefore cannot change event execution order; the
// golden event-order trace test in tests/test_scheduler.cc pins this.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/hot.h"

namespace g80211 {

// Before(a, b) returns true when `a` must pop before `b`; it must be a
// strict total order for pop order to be unique (see header comment).
template <typename T, typename Before, std::size_t Arity = 4>
class DaryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  const T& top() const {
    G80211_DCHECK(!v_.empty() && "top() of an empty heap");
    return v_.front();
  }

  void push(const T& x) {
    G80211_ALLOC_OK(
        "heap storage is amortized: capacity stops at the pending-event "
        "high-water mark and is reused for the rest of the run");
    v_.push_back(x);
    sift_up(v_.size() - 1);
  }

  void pop() {
    G80211_DCHECK(!v_.empty() && "pop() of an empty heap");
    if (v_.size() > 1) {
      T tail = std::move(v_.back());
      v_.pop_back();
      sift_down(std::move(tail));
    } else {
      v_.pop_back();
    }
  }

 private:
  void sift_up(std::size_t i) {
    T x = std::move(v_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!before_(x, v_[parent])) break;
      v_[i] = std::move(v_[parent]);
      i = parent;
    }
    v_[i] = std::move(x);
  }

  // Place `x` (the displaced tail) as if at the root, walking a hole down
  // to its final position — one move per level instead of a swap.
  void sift_down(T x) {
    const std::size_t n = v_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = i * Arity + 1;
      if (first >= n) break;
      const std::size_t last = first + Arity < n ? first + Arity : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before_(v_[c], v_[best])) best = c;
      }
      if (!before_(v_[best], x)) break;
      v_[i] = std::move(v_[best]);
      i = best;
    }
    v_[i] = std::move(x);
  }

  Before before_;
  std::vector<T> v_;
};

}  // namespace g80211
