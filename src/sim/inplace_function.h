// Small-buffer-optimized, move-only callable — the event hot path's
// replacement for std::function.
//
// std::function heap-allocates any capture larger than its tiny internal
// buffer and drags in RTTI-based type erasure; at millions of scheduled
// events per simulated second that allocation dominates the scheduler's
// cost. InplaceFunction stores the callable inline in a fixed-size buffer
// and *rejects oversized captures at compile time*, so a fat capture shows
// up as a build error at the call site instead of a silent heap hit.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace g80211 {

template <std::size_t Capacity, std::size_t Align = alignof(std::max_align_t)>
class InplaceFunction {
 public:
  InplaceFunction() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  InplaceFunction(F&& f) {  // NOLINT: implicit by design, mirrors std::function
    emplace(std::forward<F>(f));
  }

  // Destroy the current callable (if any) and construct `f` directly in the
  // inline storage — the in-slot construction path the event pool uses to
  // avoid routing every capture through a temporary.
  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InplaceFunction> &&
                                        std::is_invocable_r_v<void, D&>>>
  void emplace(F&& f) {
    static_assert(sizeof(D) <= Capacity,
                  "callback capture too large for InplaceFunction — shrink "
                  "the capture (capture pointers, not objects) or raise the "
                  "scheduler's event capacity");
    static_assert(alignof(D) <= Align, "over-aligned callback capture");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "callback capture must be nothrow-movable");
    reset();
    ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
    invoke_ = [](void* s) { (*static_cast<D*>(s))(); };
    relocate_ = [](void* dst, void* src) {
      D* from = static_cast<D*>(src);
      ::new (dst) D(std::move(*from));
      from->~D();
    };
    destroy_ = [](void* s) { static_cast<D*>(s)->~D(); };
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }
  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;
  ~InplaceFunction() { reset(); }

  // Destroy the held callable (if any); leaves *this empty.
  void reset() {
    if (destroy_) destroy_(storage_);
    invoke_ = nullptr;
    relocate_ = nullptr;
    destroy_ = nullptr;
  }

  explicit operator bool() const { return invoke_ != nullptr; }
  void operator()() { invoke_(storage_); }

 private:
  void move_from(InplaceFunction& other) noexcept {
    if (other.relocate_) {
      other.relocate_(storage_, other.storage_);
      invoke_ = other.invoke_;
      relocate_ = other.relocate_;
      destroy_ = other.destroy_;
      other.invoke_ = nullptr;
      other.relocate_ = nullptr;
      other.destroy_ = nullptr;
    }
  }

  alignas(Align) unsigned char storage_[Capacity];
  void (*invoke_)(void*) = nullptr;
  void (*relocate_)(void*, void*) = nullptr;
  void (*destroy_)(void*) = nullptr;
};

}  // namespace g80211
