// Simulation clock: signed 64-bit nanoseconds.
//
// 802.11 timing is built from microsecond-scale constants (slot, SIFS,
// preamble) plus frame airtimes that are not integral microseconds at
// 11 Mbps / 6 Mbps, so we keep the clock in integer nanoseconds: exact
// arithmetic, no floating-point drift at slot boundaries.
#pragma once

#include <cstdint>

namespace g80211 {

using Time = std::int64_t;  // nanoseconds since simulation start

constexpr Time kNever = INT64_MAX;

constexpr Time nanoseconds(std::int64_t n) { return n; }
constexpr Time microseconds(std::int64_t us) { return us * 1000; }
constexpr Time milliseconds(std::int64_t ms) { return ms * 1000 * 1000; }
constexpr Time seconds(std::int64_t s) { return s * 1000 * 1000 * 1000; }

constexpr double to_seconds(Time t) { return static_cast<double>(t) * 1e-9; }
constexpr double to_micros(Time t) { return static_cast<double>(t) * 1e-3; }
constexpr double to_millis(Time t) { return static_cast<double>(t) * 1e-6; }

// Airtime of `bits` at `mbps` megabits/s, rounded up to whole nanoseconds.
constexpr Time tx_time(std::int64_t bits, double mbps) {
  // bits / (mbps * 1e6) seconds = bits * 1000 / mbps ns
  const double ns = static_cast<double>(bits) * 1000.0 / mbps;
  const auto whole = static_cast<Time>(ns);
  return (static_cast<double>(whole) < ns) ? whole + 1 : whole;
}

}  // namespace g80211
