// Checked-invariant macros — the project's replacement for bare assert().
//
// assert() compiles out under NDEBUG, which is exactly the build
// (RelWithDebInfo/Release) every benchmark, campaign, and golden guard
// runs in. An invariant that silently stops being checked in the builds
// that matter is worse than none: a corrupted event slot or a NAV bound
// violation then surfaces as a wrong *result* — a mutated golden hash,
// a bogus detector verdict — instead of a diagnosable failure. These
// macros throw instead of compiling out, so a violated invariant aborts
// the run loudly and carries file/line/expression in the exception.
//
// Two tiers:
//
//   G80211_CHECK(cond)   — always on, in every build type. Use for cold
//                          or configuration-time invariants (parameter
//                          validation, API misuse) where the predicate
//                          cost is irrelevant.
//   G80211_DCHECK(cond)  — on when G80211_CHECKED is defined or NDEBUG
//                          is not (i.e. Debug builds and the
//                          -DG80211_CHECKED=ON CMake preset). Compiles
//                          to nothing otherwise. Use on hot paths
//                          (per-event slab bookkeeping, heap sifts,
//                          per-frame NAV updates) where an always-on
//                          branch would tax the engine.
//
// Both evaluate the condition exactly once when enabled; a disabled
// DCHECK does not evaluate its argument at all (the operand sits inside
// sizeof, which also keeps variables referenced only by checks "used"
// under -Werror=unused-variable).
//
// Failures throw g80211::CheckFailure (a std::logic_error), so tests can
// EXPECT_THROW on them and the campaign runner's exception propagation
// reports them like any other job failure.
#pragma once

#include <stdexcept>
#include <string>

namespace g80211 {

class CheckFailure : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  throw CheckFailure(std::string(file) + ":" + std::to_string(line) +
                     ": G80211_CHECK failed: " + expr);
}

}  // namespace detail
}  // namespace g80211

#define G80211_CHECK(cond)                                        \
  do {                                                            \
    if (!(cond)) {                                                \
      ::g80211::detail::check_failed(#cond, __FILE__, __LINE__);  \
    }                                                             \
  } while (false)

#if defined(G80211_CHECKED) || !defined(NDEBUG)
#define G80211_DCHECK(cond) G80211_CHECK(cond)
#else
// Unevaluated operand: no runtime cost, but the condition still names its
// variables (keeps them "used") and still has to parse and type-check.
#define G80211_DCHECK(cond) ((void)sizeof((cond) ? 1 : 0))
#endif
