// Frame-level tracing — the simulator's equivalent of ns-2's trace files /
// tcpdump. A FrameTracer attaches to any station's MAC (promiscuous, so
// one well-placed observer sees a whole hotspot) and records every frame
// with timing, addressing, Duration, and corruption state. Useful for
// debugging protocol behaviour and for the examples' annotated output.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>
#include <string>

#include "src/mac/mac.h"
#include "src/sim/scheduler.h"

namespace g80211 {

struct TraceRecord {
  Time start = 0;
  Time end = 0;
  FrameType type = FrameType::kData;
  int ta = kNoAddr;
  int ra = kNoAddr;
  Time duration = 0;        // NAV field
  bool corrupted = false;
  bool collided = false;
  int seq = 0;
  int frag = 0;
  bool more_frags = false;
  bool retry = false;       // MAC Retry bit
  int bytes = 0;            // on-air MAC length incl. FCS
  double rssi_dbm = 0.0;

  std::string to_string() const;
};

class FrameTracer {
 public:
  // Keep at most `capacity` most-recent records (0 = unbounded).
  explicit FrameTracer(std::size_t capacity = 0) : capacity_(capacity) {}

  // Chain onto a MAC's sniffer.
  void attach(Mac& mac);

  const std::deque<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  // Optional live sink: called for every record as it is captured.
  std::function<void(const TraceRecord&)> on_record;

  // Dump all records, one per line.
  void dump(std::ostream& os) const;

  // Count records matching a predicate.
  std::int64_t count(const std::function<bool(const TraceRecord&)>& pred) const;

 private:
  std::size_t capacity_;
  std::deque<TraceRecord> records_;
};

}  // namespace g80211
