// Layer-neutral tracing core: an observer interface plus a bounded
// in-memory log, both generic over the record type.
//
// sim/ owns the *mechanism* (who stores records, capacity trimming, live
// callbacks, dump/count helpers) but knows nothing about what a record
// is. Producers live in higher layers and depend downward: src/mac/
// defines TraceRecord (frame timing, addressing, Duration, corruption
// state) and FrameTracer, which chains onto a MAC sniffer and feeds a
// TraceSink. That direction matters — it is enforced by the g80211_lint
// layering check (tools/lint/deps.toml): sim/ may include only sim/, so
// a trace consumer living here must not name MAC types.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <ostream>

namespace g80211 {

// Anything that consumes a stream of trace records. Higher layers hand
// records down through this interface; sim/ (and tests) provide sinks.
template <typename Record>
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  // Called once per captured record, in capture order.
  virtual void record(const Record& r) = 0;
};

// A TraceSink that keeps the most recent records in memory — the
// simulator's equivalent of ns-2's trace files / tcpdump, minus any
// knowledge of what is being traced.
template <typename Record>
class TraceLog : public TraceSink<Record> {
 public:
  // Keep at most `capacity` most-recent records (0 = unbounded).
  explicit TraceLog(std::size_t capacity = 0) : capacity_(capacity) {}

  void record(const Record& r) override {
    if (on_record) on_record(r);
    records_.push_back(r);
    if (capacity_ > 0 && records_.size() > capacity_) records_.pop_front();
  }

  const std::deque<Record>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void clear() { records_.clear(); }

  // Optional live sink: called for every record as it is captured.
  std::function<void(const Record&)> on_record;

  // Dump all records, one per line (requires Record::to_string).
  void dump(std::ostream& os) const {
    for (const auto& r : records_) os << r.to_string() << "\n";
  }

  // Count records matching a predicate.
  std::int64_t count(const std::function<bool(const Record&)>& pred) const {
    std::int64_t n = 0;
    for (const auto& r : records_) {
      if (pred(r)) ++n;
    }
    return n;
  }

 private:
  std::size_t capacity_;
  std::deque<Record> records_;
};

}  // namespace g80211
