// Epoch-synchronized SPSC mailbox for the conservative parallel engine.
//
// One mailbox carries boundary events for one directed cross-shard link:
// exactly one producer (the source shard's worker thread, during an epoch)
// appends, and exactly one consumer (the epoch coordinator, at the barrier
// while every worker is idle) drains. There is deliberately no internal
// locking: the conservative synchronization protocol itself provides the
// exclusion — production happens strictly inside an epoch, consumption
// strictly at the barrier between epochs, and the barrier (ThreadPool
// wait()/submit_to() mutex handoff) publishes the producer's writes to the
// consumer with a happens-before edge. The TSan preset runs the sharded
// tests to hold this contract.
//
// Ordering: push order is preserved, and each item is stamped with a
// per-mailbox sequence number so the coordinator can merge several
// mailboxes into one deterministic delivery order (sort by the caller's
// time key, then mailbox id, then sequence) regardless of which shard ran
// first on the wall clock.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace g80211 {

template <typename T>
class EpochMailbox {
 public:
  struct Stamped {
    std::uint64_t seq = 0;  // per-mailbox, monotonic from 0
    T item;
  };

  // Producer side (source shard's thread, inside an epoch).
  void push(T item) {
    items_.push_back(Stamped{next_seq_++, std::move(item)});
  }

  // Consumer side (coordinator, at the barrier). Leaves the mailbox empty
  // but keeps the sequence counter running so stamps stay unique across
  // epochs.
  std::vector<Stamped> drain() { return std::exchange(items_, {}); }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  // Total items ever pushed (diagnostics; equals the next stamp).
  std::uint64_t total_pushed() const { return next_seq_; }

 private:
  std::vector<Stamped> items_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace g80211
