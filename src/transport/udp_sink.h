// UDP sink: accounts goodput as the paper defines it — the rate of
// correctly received, non-duplicate application payload. MAC-level
// duplicate filtering already removes link-layer retransmission dups;
// the sink additionally guards on the transport sequence number.
//
// The transport guard is a single highest-seq watermark, not a seen-set:
// every delivery path to a sink is FIFO and single-path (a stop-and-wait
// MAC queue, optionally behind an in-order lossless wire), so a datagram
// can only arrive with seq above the watermark (new) or equal/below it
// (a retransmission duplicate that slipped past MAC dedup) — never as a
// late first arrival below it. The watermark makes receive() free of
// heap allocation, which was the last steady-state allocation on the
// packet path (the golden fig1 hash pins that the accounting is
// unchanged).
#pragma once

#include <cstdint>

#include "src/net/node.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class UdpSink : public PacketSink {
 public:
  UdpSink(Scheduler& sched, int payload_bytes)
      : sched_(&sched), payload_bytes_(payload_bytes) {}

  void receive(const PacketPtr& packet) override;

  // Discard statistics gathered so far (warm-up trimming); goodput is then
  // measured from this instant.
  void reset();

  std::int64_t packets() const { return packets_; }
  std::int64_t payload_bytes_received() const { return packets_ * payload_bytes_; }
  std::int64_t duplicates() const { return duplicates_; }
  std::int64_t highest_seq() const { return highest_seq_; }

  // Goodput in Mbps over [measure_start, now].
  double goodput_mbps() const;

 private:
  Scheduler* sched_;
  int payload_bytes_;
  Time measure_start_ = 0;
  std::int64_t packets_ = 0;
  std::int64_t duplicates_ = 0;
  std::int64_t highest_seq_ = -1;  // doubles as the dedup watermark
};

}  // namespace g80211
