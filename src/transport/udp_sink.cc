#include "src/transport/udp_sink.h"

namespace g80211 {

void UdpSink::receive(const PacketPtr& packet) {
  // FIFO single-path delivery (see header): at or below the watermark
  // means duplicate, above means new. No allocation, no set.
  if (packet->seq <= highest_seq_) {
    ++duplicates_;
    return;
  }
  ++packets_;
  highest_seq_ = packet->seq;
}

void UdpSink::reset() {
  packets_ = 0;
  duplicates_ = 0;
  measure_start_ = sched_->now();
}

double UdpSink::goodput_mbps() const {
  const double elapsed = to_seconds(sched_->now() - measure_start_);
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(payload_bytes_received()) * 8.0 / elapsed / 1e6;
}

}  // namespace g80211
