// TCP sink: cumulative-ACK receiver (no delayed ACKs, as in the paper's
// ns-2 setup). Every arriving data segment triggers an ACK carrying the
// next expected segment number; out-of-order segments are buffered.
// Goodput counts correctly received, non-duplicate payload.
//
// Duplicate detection is watermark-based, like UdpSink's: a segment is a
// duplicate iff it is below next_expected_ (cumulatively delivered) or
// still buffered in out_of_order_. The set of ever-received segments is
// exactly [0, next_expected_) ∪ out_of_order_, so no separate seen-set is
// needed and sink memory is bounded by the reorder window instead of
// growing with the transfer length.
#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "src/net/node.h"
#include "src/net/packet.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class TcpSink : public PacketSink {
 public:
  TcpSink(Scheduler& sched, int flow_id, int sink_node, int sender_node,
          int mss_bytes, int header_bytes = 40)
      : sched_(&sched),
        flow_id_(flow_id),
        sink_node_(sink_node),
        sender_node_(sender_node),
        mss_bytes_(mss_bytes),
        header_bytes_(header_bytes) {}

  std::function<void(PacketPtr)> output;  // ACK packets toward the sender

  void receive(const PacketPtr& packet) override;

  void reset();
  std::int64_t segments() const { return segments_; }
  std::int64_t duplicates() const { return duplicates_; }
  std::int64_t next_expected() const { return next_expected_; }
  double goodput_mbps() const;

 private:
  Scheduler* sched_;
  int flow_id_;
  int sink_node_;
  int sender_node_;
  int mss_bytes_;
  int header_bytes_;

  std::int64_t next_expected_ = 0;
  std::set<std::int64_t> out_of_order_;
  std::int64_t segments_ = 0;   // unique segments since last reset
  std::int64_t duplicates_ = 0;
  Time measure_start_ = 0;
  std::uint64_t next_uid_ = 1;
};

}  // namespace g80211
