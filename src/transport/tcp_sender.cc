#include "src/transport/tcp_sender.h"

#include <algorithm>
#include <cmath>

namespace g80211 {

TcpSender::TcpSender(Scheduler& sched, Config cfg, int flow_id, int src_node,
                     int dst_node)
    : sched_(&sched),
      cfg_(cfg),
      flow_id_(flow_id),
      src_node_(src_node),
      dst_node_(dst_node),
      cwnd_(cfg.initial_cwnd),
      base_rto_(cfg.initial_rto),
      rtx_timer_(sched, [this] { on_rto(); }) {}

Time TcpSender::rto() const {
  const Time backed_off = base_rto_ << std::min(rto_backoff_, 8);
  return std::min(backed_off, cfg_.max_rto);
}

void TcpSender::start(Time at) {
  sched_->at(at, [this] {
    started_ = true;
    cwnd_epoch_ = sched_->now();
    stats_start_ = sched_->now();
    try_send();
  });
}

double TcpSender::window() const {
  return std::min(cwnd_, static_cast<double>(cfg_.max_window));
}

void TcpSender::set_cwnd(double cwnd) {
  const Time now = sched_->now();
  cwnd_integral_ += cwnd_ * to_seconds(now - cwnd_epoch_);
  cwnd_epoch_ = now;
  cwnd_ = std::max(1.0, std::min(cwnd, static_cast<double>(cfg_.max_window)));
}

double TcpSender::avg_cwnd() const {
  const Time now = sched_->now();
  const double total = cwnd_integral_ + cwnd_ * to_seconds(now - cwnd_epoch_);
  const double span = to_seconds(now - stats_start_);
  return span <= 0.0 ? cwnd_ : total / span;
}

void TcpSender::reset_stats() {
  stats_start_ = sched_->now();
  cwnd_epoch_ = sched_->now();
  cwnd_integral_ = 0.0;
  segments_sent_ = 0;
  retransmissions_ = 0;
  timeouts_ = 0;
}

void TcpSender::try_send() {
  if (!started_) return;
  const auto wnd = static_cast<std::int64_t>(window());
  while (next_to_send_ < highest_ack_ + wnd) {
    send_segment(next_to_send_, /*is_retx=*/false);
    ++next_to_send_;
  }
}

void TcpSender::send_segment(std::int64_t seq, bool is_retx) {
  auto p = make_packet();
  p->flow_id = flow_id_;
  p->uid = next_uid_++;
  p->seq = seq;
  p->size_bytes = cfg_.mss_bytes + cfg_.header_bytes;
  p->src_node = src_node_;
  p->dst_node = dst_node_;
  p->created = sched_->now();
  p->tcp.seq = seq;
  p->tcp.is_ack = false;
  ++segments_sent_;
  if (is_retx) {
    ++retransmissions_;
    retransmitted_.insert(seq);
    if (on_retransmit) on_retransmit(seq);
    if (rtt_timing_ && rtt_seq_ == seq) rtt_timing_ = false;  // Karn
  } else if (!rtt_timing_) {
    rtt_timing_ = true;
    rtt_seq_ = seq;
    rtt_start_ = sched_->now();
  }
  if (!rtx_timer_.pending()) restart_rtx_timer();
  if (output) output(std::move(p));
}

void TcpSender::restart_rtx_timer() { rtx_timer_.start(rto()); }

void TcpSender::receive(const PacketPtr& packet) {
  if (!packet->tcp.is_ack) return;
  const std::int64_t ack = packet->tcp.ack;
  if (ack > highest_ack_) {
    on_new_ack(ack);
  } else if (ack == highest_ack_ && next_to_send_ > highest_ack_) {
    on_dup_ack();
  }
}

void TcpSender::on_new_ack(std::int64_t ack) {
  // RTT sampling with Karn's rule: only segments never retransmitted.
  if (rtt_timing_ && ack > rtt_seq_) {
    rtt_timing_ = false;
    if (!retransmitted_.count(rtt_seq_)) {
      const double m = to_seconds(sched_->now() - rtt_start_);
      if (!have_rtt_) {
        srtt_s_ = m;
        rttvar_s_ = m / 2.0;
        have_rtt_ = true;
      } else {
        rttvar_s_ = 0.75 * rttvar_s_ + 0.25 * std::abs(srtt_s_ - m);
        srtt_s_ = 0.875 * srtt_s_ + 0.125 * m;
      }
      const double rto_s = srtt_s_ + 4.0 * rttvar_s_;
      base_rto_ = std::clamp<Time>(static_cast<Time>(rto_s * 1e9), cfg_.min_rto,
                                   cfg_.max_rto);
    }
  }

  const std::int64_t newly = ack - highest_ack_;
  highest_ack_ = ack;
  retransmitted_.erase(retransmitted_.begin(),
                       retransmitted_.lower_bound(highest_ack_));
  dupacks_ = 0;
  rto_backoff_ = 0;  // progress: collapse the Karn backoff

  if (in_recovery_) {
    if (ack >= recover_) {
      // Full acknowledgement: recovery done, deflate to ssthresh.
      in_recovery_ = false;
      set_cwnd(ssthresh_);
    } else {
      // NewReno partial ACK: the next hole is lost too — retransmit it
      // immediately and deflate by the amount acknowledged.
      send_segment(ack, /*is_retx=*/true);
      set_cwnd(std::max(ssthresh_, cwnd_ - static_cast<double>(newly) + 1.0));
      restart_rtx_timer();
      try_send();
      return;
    }
  } else if (cwnd_ < ssthresh_) {
    set_cwnd(cwnd_ + static_cast<double>(newly));  // slow start
  } else {
    set_cwnd(cwnd_ + static_cast<double>(newly) / cwnd_);  // congestion avoidance
  }

  if (highest_ack_ >= next_to_send_) {
    rtx_timer_.cancel();  // everything acknowledged
  } else {
    restart_rtx_timer();
  }
  try_send();
}

void TcpSender::on_dup_ack() {
  ++dupacks_;
  if (in_recovery_) {
    set_cwnd(cwnd_ + 1.0);  // window inflation per extra dupack
    try_send();
    return;
  }
  if (dupacks_ == 3) {
    const double flight = static_cast<double>(next_to_send_ - highest_ack_);
    ssthresh_ = std::max(flight / 2.0, 2.0);
    in_recovery_ = true;
    recover_ = next_to_send_;
    send_segment(highest_ack_, /*is_retx=*/true);
    set_cwnd(ssthresh_ + 3.0);
    restart_rtx_timer();
  }
}

void TcpSender::on_rto() {
  if (highest_ack_ >= next_to_send_) return;  // nothing outstanding
  ++timeouts_;
  const double flight = static_cast<double>(next_to_send_ - highest_ack_);
  ssthresh_ = std::max(flight / 2.0, 2.0);
  set_cwnd(1.0);
  dupacks_ = 0;
  in_recovery_ = false;
  rtt_timing_ = false;
  ++rto_backoff_;  // Karn exponential backoff until new data is acked
  send_segment(highest_ack_, /*is_retx=*/true);
  restart_rtx_timer();
}

}  // namespace g80211
