#include "src/transport/cbr.h"

#include "src/sim/check.h"


namespace g80211 {

CbrSource::CbrSource(Scheduler& sched, Config cfg, int flow_id, int src_node,
                     int dst_node, Rng rng)
    : sched_(&sched),
      cfg_(cfg),
      flow_id_(flow_id),
      src_node_(src_node),
      dst_node_(dst_node),
      rng_(rng),
      timer_(sched, [this] { emit(); }) {
  G80211_CHECK(cfg_.rate_mbps > 0.0);
  interval_ = tx_time(8 * static_cast<std::int64_t>(cfg_.payload_bytes),
                      cfg_.rate_mbps);
}

void CbrSource::start(Time at) {
  // Restartable: on/off session controllers (web bursts, churn) stop and
  // later restart one source, so a start clears any previous stop mark.
  stop_at_ = kNever;
  timer_.start_at(at);
}

void CbrSource::stop(Time at) { stop_at_ = at; }

void CbrSource::emit() {
  if (sched_->now() >= stop_at_) return;
  auto p = make_packet();
  p->flow_id = flow_id_;
  p->uid = next_uid_++;
  p->seq = generated_++;
  p->size_bytes = cfg_.payload_bytes + cfg_.header_bytes;
  p->src_node = src_node_;
  p->dst_node = dst_node_;
  p->created = sched_->now();
  if (output) output(std::move(p));
  Time gap = interval_;
  if (cfg_.jitter > 0.0) {
    const double factor = 1.0 + cfg_.jitter * (2.0 * rng_.uniform() - 1.0);
    gap = static_cast<Time>(static_cast<double>(interval_) * factor);
  }
  timer_.start(gap);
}

}  // namespace g80211
