// TCP Reno/NewReno sender (ns-2 Agent/TCP equivalent) with an infinite
// (FTP) source: slow start, congestion avoidance, 3-dupack fast retransmit
// with NewReno fast recovery (partial ACKs retransmit the next hole, so a
// burst of interface-queue drops recovers at one hole per RTT instead of
// one RTO per hole), Jacobson/Karn RTO estimation with exponential backoff
// that resets when new data is acknowledged. Sequence numbers are in
// MSS-sized segments, as in ns-2.
//
// Misbehavior 2 (ACK spoofing) operates entirely through this layer's
// congestion control: when MAC retransmission is suppressed, the loss
// surfaces here as dupacks/RTO and the window collapses.
#pragma once

#include <cstdint>
#include <functional>
#include <set>

#include "src/net/node.h"
#include "src/net/packet.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class TcpSender : public PacketSink {
 public:
  struct Config {
    int mss_bytes = 1024;       // application payload per segment
    int header_bytes = 40;      // IP + TCP headers
    int max_window = 128;       // receiver window, segments
    double initial_cwnd = 2.0;  // segments
    Time min_rto = milliseconds(200);
    Time initial_rto = seconds(1);
    Time max_rto = seconds(64);
  };

  TcpSender(Scheduler& sched, Config cfg, int flow_id, int src_node, int dst_node);

  std::function<void(PacketPtr)> output;   // toward the network
  // Cross-layer detection tap: fired whenever a segment is retransmitted
  // (TCP-level loss recovery), with the segment number.
  std::function<void(std::int64_t seq)> on_retransmit;

  void start(Time at);

  // PacketSink: TCP ACKs coming back.
  void receive(const PacketPtr& packet) override;

  // --- statistics ---------------------------------------------------------
  double cwnd() const { return cwnd_; }
  // Time-averaged congestion window (paper Table II metric).
  double avg_cwnd() const;
  void reset_stats();
  std::int64_t segments_sent() const { return segments_sent_; }
  std::int64_t retransmissions() const { return retransmissions_; }
  std::int64_t timeouts() const { return timeouts_; }
  Time rto() const;
  int flow_id() const { return flow_id_; }

 private:
  void try_send();
  void send_segment(std::int64_t seq, bool is_retx);
  void on_new_ack(std::int64_t ack);
  void on_dup_ack();
  void on_rto();
  void set_cwnd(double cwnd);
  void restart_rtx_timer();
  double window() const;

  Scheduler* sched_;
  Config cfg_;
  int flow_id_;
  int src_node_;
  int dst_node_;

  bool started_ = false;
  std::int64_t next_to_send_ = 0;  // next new segment number
  std::int64_t highest_ack_ = 0;   // next segment expected by the receiver
  double cwnd_ = 1.0;
  double ssthresh_ = 64.0;
  int dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;  // highest segment outstanding when recovery began
  std::set<std::int64_t> retransmitted_;  // Karn's rule bookkeeping

  // RTT estimation (seconds).
  bool rtt_timing_ = false;
  std::int64_t rtt_seq_ = 0;
  Time rtt_start_ = 0;
  double srtt_s_ = 0.0;
  double rttvar_s_ = 0.0;
  bool have_rtt_ = false;
  Time base_rto_;        // from the RTT estimator
  int rto_backoff_ = 0;  // consecutive-timeout exponent (Karn backoff)
  Timer rtx_timer_;

  // cwnd time-average accounting.
  Time cwnd_epoch_ = 0;
  Time stats_start_ = 0;
  double cwnd_integral_ = 0.0;

  std::int64_t segments_sent_ = 0;
  std::int64_t retransmissions_ = 0;
  std::int64_t timeouts_ = 0;
  std::uint64_t next_uid_ = 1;
};

}  // namespace g80211
