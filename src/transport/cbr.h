// Constant-bit-rate source over UDP (ns-2's CBR/UDP agent pair).
//
// The paper's UDP experiments generate CBR traffic "high enough to saturate
// the medium", with identical rates across flows so goodput differences are
// purely MAC effects. `saturating()` picks a rate comfortably above the
// 802.11b/a channel capacity.
#pragma once

#include <cstdint>
#include <functional>

#include "src/net/packet.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class CbrSource {
 public:
  struct Config {
    int payload_bytes = 1024;   // application payload (paper default)
    int header_bytes = 40;      // IP + UDP/TCP headers
    double rate_mbps = 12.0;    // application-payload rate
    // Multiplicative jitter on the inter-packet gap (mean-preserving,
    // uniform in [1-j, 1+j]). Identical-rate CBR flows sharing a drop-tail
    // queue otherwise phase-lock and split the freed slots by the
    // inspection paradox instead of evenly; ns-2's CBR `random_` knob
    // exists for the same reason. Set 0 for strictly periodic traffic.
    double jitter = 0.5;
  };

  CbrSource(Scheduler& sched, Config cfg, int flow_id, int src_node, int dst_node,
            Rng rng = Rng(0x9e3779b9));

  // Where generated packets go (node or wired-host send_packet).
  std::function<void(PacketPtr)> output;

  // start() clears any earlier stop(), so a source can be stopped and
  // restarted repeatedly (on/off web bursts, station churn sessions).
  void start(Time at);
  void stop(Time at);

  std::int64_t generated() const { return generated_; }
  Time interval() const { return interval_; }

 private:
  void emit();

  Scheduler* sched_;
  Config cfg_;
  int flow_id_;
  int src_node_;
  int dst_node_;
  Time interval_;
  Time stop_at_ = kNever;
  std::int64_t generated_ = 0;
  std::uint64_t next_uid_ = 1;
  Rng rng_;
  Timer timer_;
};

}  // namespace g80211
