#include "src/transport/tcp_sink.h"

namespace g80211 {

void TcpSink::receive(const PacketPtr& packet) {
  if (packet->tcp.is_ack) return;
  const std::int64_t seq = packet->tcp.seq;

  // Watermark duplicate test (see header): previously received iff already
  // cumulatively delivered or still waiting in the reorder buffer.
  if (seq < next_expected_ || out_of_order_.count(seq) != 0) {
    ++duplicates_;
  } else {
    ++segments_;
  }

  if (seq == next_expected_) {
    ++next_expected_;
    while (!out_of_order_.empty() && *out_of_order_.begin() == next_expected_) {
      out_of_order_.erase(out_of_order_.begin());
      ++next_expected_;
    }
  } else if (seq > next_expected_) {
    out_of_order_.insert(seq);
  }

  auto ack = make_packet();
  ack->flow_id = flow_id_;
  ack->uid = next_uid_++;
  ack->seq = next_expected_;
  ack->size_bytes = header_bytes_;  // pure ACK: headers only
  ack->src_node = sink_node_;
  ack->dst_node = sender_node_;
  ack->created = sched_->now();
  ack->tcp.ack = next_expected_;
  ack->tcp.is_ack = true;
  if (output) output(std::move(ack));
}

void TcpSink::reset() {
  segments_ = 0;
  duplicates_ = 0;
  measure_start_ = sched_->now();
}

double TcpSink::goodput_mbps() const {
  const double elapsed = to_seconds(sched_->now() - measure_start_);
  if (elapsed <= 0.0) return 0.0;
  return static_cast<double>(segments_ * mss_bytes_) * 8.0 / elapsed / 1e6;
}

}  // namespace g80211
