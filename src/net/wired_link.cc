#include "src/net/wired_link.h"

// Header-only module; translation unit kept for target symmetry.
