// Wireline substrate for the remote-TCP-sender experiments (paper Fig 15,
// Fig 16): a fixed-latency, in-order, lossless pipe between a wired host
// and an access point. The paper varies the one-way wired latency from
// 2 ms to 400 ms; wireline loss is negligible relative to wireless loss.
#pragma once

#include <functional>
#include <map>

#include "src/net/node.h"
#include "src/net/packet.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class WiredLink {
 public:
  WiredLink(Scheduler& sched, Time one_way_latency)
      : sched_(&sched), latency_(one_way_latency) {}

  Time latency() const { return latency_; }

  // Deliver `p` to `to` after the link latency.
  void transfer(PacketPtr p, std::function<void(PacketPtr)> to) {
    sched_->after(latency_, [p = std::move(p), to = std::move(to)] { to(p); });
  }

 private:
  Scheduler* sched_;
  Time latency_;
};

// A host on the wired side (e.g. a web server). Owns no radio; talks to the
// wireless world through an AP node over a WiredLink.
class WiredHost {
 public:
  WiredHost(int id, WiredLink& link, Node& ap) : id_(id), link_(&link), ap_(&ap) {
    // Packets arriving at the AP for this host cross the wire back to us.
    ap.set_forwarder(id, [this](PacketPtr p) {
      link_->transfer(std::move(p), [this](PacketPtr q) { deliver(std::move(q)); });
    });
  }

  int id() const { return id_; }

  void register_sink(int flow_id, PacketSink* sink) { sinks_[flow_id] = sink; }

  // Transport-facing: push a packet across the wire; the AP relays it over
  // the air to its wireless destination.
  void send_packet(PacketPtr p) {
    link_->transfer(std::move(p), [ap = ap_](PacketPtr q) { ap->send_packet(q); });
  }

 private:
  void deliver(PacketPtr p) {
    const auto it = sinks_.find(p->flow_id);
    if (it != sinks_.end()) it->second->receive(p);
  }

  int id_;
  WiredLink* link_;
  Node* ap_;
  std::map<int, PacketSink*> sinks_;
};

}  // namespace g80211
