// Drop-tail interface queue between the network layer and the MAC
// (ns-2's Queue/DropTail, default limit 50 packets).
#pragma once

#include <cstdint>
#include <deque>
#include <utility>

#include "src/net/packet.h"

namespace g80211 {

class DropTailQueue {
 public:
  explicit DropTailQueue(std::size_t limit = 50) : limit_(limit) {}

  // Returns false (and drops) if the queue is full.
  bool push(PacketPtr p, int dest_mac);
  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }
  std::size_t limit() const { return limit_; }
  std::int64_t drops() const { return drops_; }

  // Precondition: !empty().
  std::pair<PacketPtr, int> pop();

  // Remove every queued packet addressed to `dest_mac` (association
  // handoff: the old AP stops delivering to a departed station). Returns
  // the number of packets removed; they are not counted as drops() —
  // that counter means congestion.
  std::size_t erase_dest(int dest_mac);

 private:
  std::size_t limit_;
  std::int64_t drops_ = 0;
  std::deque<std::pair<PacketPtr, int>> q_;
};

}  // namespace g80211
