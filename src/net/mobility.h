// Node mobility. The paper's RSSI-based spoofed-ACK detector assumes a
// stable per-peer RSSI profile; Section VII-B notes that "highly mobile
// clients, which experience large variation in RSSI", need the
// cross-layer detector instead. This module supplies the moving clients
// that make that trade-off observable.
//
// LinearMobility moves a PHY at a constant velocity, re-evaluating the
// position on a fixed tick (propagation is sampled per frame, so the tick
// only bounds position staleness). WaypointMobility walks a list of
// waypoints at a given speed.
#pragma once

#include <cmath>
#include <vector>

#include "src/phy/phy.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class LinearMobility {
 public:
  LinearMobility(Scheduler& sched, Phy& phy, double vx_mps, double vy_mps,
                 Time tick = milliseconds(50))
      : sched_(&sched),
        phy_(&phy),
        vx_(vx_mps),
        vy_(vy_mps),
        tick_(tick),
        timer_(sched, [this] { step(); }) {}

  void start(Time at) {
    running_ = true;
    last_ = at;
    timer_.start_at(at + tick_);
  }
  void stop() {
    running_ = false;
    timer_.cancel();
  }

 private:
  void step() {
    if (!running_) return;
    const double dt = to_seconds(sched_->now() - last_);
    last_ = sched_->now();
    Position p = phy_->position();
    p.x += vx_ * dt;
    p.y += vy_ * dt;
    phy_->set_position(p);
    timer_.start(tick_);
  }

  Scheduler* sched_;
  Phy* phy_;
  double vx_, vy_;
  Time tick_;
  Timer timer_;
  bool running_ = false;
  Time last_ = 0;
};

class WaypointMobility {
 public:
  WaypointMobility(Scheduler& sched, Phy& phy, std::vector<Position> waypoints,
                   double speed_mps, Time tick = milliseconds(50))
      : sched_(&sched),
        phy_(&phy),
        waypoints_(std::move(waypoints)),
        speed_(speed_mps),
        tick_(tick),
        timer_(sched, [this] { step(); }) {}

  void start(Time at) {
    running_ = true;
    last_ = at;
    timer_.start_at(at + tick_);
  }
  void stop() {
    running_ = false;
    timer_.cancel();
  }
  // Index of the waypoint currently being approached.
  std::size_t current_target() const { return target_; }
  bool finished() const { return target_ >= waypoints_.size(); }

 private:
  void step() {
    if (!running_ || finished()) return;
    double budget = speed_ * to_seconds(sched_->now() - last_);
    last_ = sched_->now();
    Position p = phy_->position();
    while (budget > 0 && !finished()) {
      const Position& tgt = waypoints_[target_];
      const double d = distance(p, tgt);
      if (d <= budget) {
        p = tgt;
        budget -= d;
        ++target_;
      } else {
        p.x += (tgt.x - p.x) / d * budget;
        p.y += (tgt.y - p.y) / d * budget;
        budget = 0;
      }
    }
    phy_->set_position(p);
    if (!finished()) timer_.start(tick_);
  }

  Scheduler* sched_;
  Phy* phy_;
  std::vector<Position> waypoints_;
  double speed_;
  Time tick_;
  Timer timer_;
  bool running_ = false;
  std::size_t target_ = 0;
  Time last_ = 0;
};

}  // namespace g80211
