// Network-layer packet: what a transport agent hands to the MAC.
//
// `size_bytes` includes transport payload plus IP/transport headers
// (the simulator's transports add 40 bytes, as in ns-2), but NOT the MAC
// overhead — the MAC/PHY account for that when computing airtime and frame
// error length.
//
// Allocation: packets are arena-allocated. PacketPtr is an intrusive
// refcounted handle into a chunked slab (PacketArena, in the spirit of the
// scheduler's EventPool): creating a packet in steady state pops a free
// slot instead of touching the heap, and every handle copy is a plain
// non-atomic counter bump instead of std::shared_ptr's atomic RMW. The
// refcount may be non-atomic because packets are confined to the thread
// that created them — one Sim runs on exactly one thread. Both execution
// models keep that contract: the campaign runner gives each Sim to one
// pool worker for its whole job, and the sharded engine pins each shard's
// Sim to one worker for build, every epoch and teardown
// (ThreadPool::submit_to). A packet never crosses shards as a handle:
// cross-shard mailboxes carry the Packet BY VALUE (the copy ctor below
// copies payload fields only) and the destination shard re-allocates it
// from its own thread's arena. The TSan preset guards the contract.
//
// Create packets with make_packet() (or make_packet(proto) to clone a
// payload); direct `new Packet` / make_shared<Packet> is banned in src/ by
// g80211_lint's packet-arena rule so the steady state stays allocation-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/sim/check.h"
#include "src/sim/time.h"

namespace g80211 {

struct TcpHeader {
  std::int64_t seq = 0;  // first payload byte (data segments)
  std::int64_t ack = 0;  // cumulative ack (ack segments)
  bool is_ack = false;
};

class PacketArena;

struct Packet {
  int flow_id = 0;
  std::uint64_t uid = 0;   // unique per packet instance
  std::int64_t seq = 0;    // transport-level sequence (UDP: datagram index)
  int size_bytes = 0;      // payload + IP/transport headers
  int src_node = -1;       // end-to-end source
  int dst_node = -1;       // end-to-end destination
  Time created = 0;
  TcpHeader tcp;           // valid when the owning flow is TCP
  bool is_probe = false;   // ping probe used by the fake-ACK detector
  bool probe_reply = false;

  Packet() = default;
  // Copies transfer the payload fields only: the refcount and owning
  // arena always describe *this* slot, never the source's. (Add new
  // payload fields to both members below.)
  Packet(const Packet& o)
      : flow_id(o.flow_id), uid(o.uid), seq(o.seq), size_bytes(o.size_bytes),
        src_node(o.src_node), dst_node(o.dst_node), created(o.created),
        tcp(o.tcp), is_probe(o.is_probe), probe_reply(o.probe_reply) {}
  Packet& operator=(const Packet& o) {
    flow_id = o.flow_id;
    uid = o.uid;
    seq = o.seq;
    size_bytes = o.size_bytes;
    src_node = o.src_node;
    dst_node = o.dst_node;
    created = o.created;
    tcp = o.tcp;
    is_probe = o.is_probe;
    probe_reply = o.probe_reply;
    return *this;
  }

 private:
  friend class PacketArena;
  friend class PacketPtr;
  std::uint32_t refs_ = 0;        // intrusive count, managed by PacketPtr
  PacketArena* arena_ = nullptr;  // owning slab (set once at first alloc)
};

// Chunked slab + LIFO free list of Packet slots. Chunks never move once
// created (growth appends a chunk), so a live Packet's address is stable
// for the lifetime of the arena. One arena per thread (see packet_arena());
// packets release back to the arena that allocated them.
class PacketArena {
 public:
  // Pop a slot (reusing a free one if available) with all payload fields
  // reset to their defaults and the refcount at 1. The caller adopts the
  // reference; pair with PacketPtr's adopt constructor via make_packet().
  Packet* alloc() {
    Packet* p;
    if (free_.empty()) {
      if (size_ == chunks_.size() * kChunkSize) {
        chunks_.push_back(std::make_unique<Packet[]>(kChunkSize));
      }
      p = &chunks_[size_ >> kChunkShift][size_ & (kChunkSize - 1)];
      ++size_;
    } else {
      p = free_.back();
      free_.pop_back();
      *p = Packet();  // payload-only assign: refs_/arena_ untouched
    }
    G80211_DCHECK(p->refs_ == 0 && "allocating a live packet slot");
    p->refs_ = 1;
    p->arena_ = this;
    ++total_allocs_;
    return p;
  }

  // Return a slot whose refcount has dropped to zero.
  void release(Packet* p) {
    G80211_DCHECK(p->refs_ == 0 && "releasing a live packet");
    G80211_DCHECK(p->arena_ == this && "packet released to a foreign arena");
    free_.push_back(p);
  }

  // Slab high-water mark: the most packets that were ever live at once.
  std::size_t slots() const { return size_; }
  // Slots currently on the free list (slots() - free_slots() are live).
  std::size_t free_slots() const { return free_.size(); }
  // Packets ever allocated; with a flat slots() curve this counts reuse.
  std::uint64_t total_allocs() const { return total_allocs_; }

 private:
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkShift;

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::size_t size_ = 0;  // slots ever created (high-water mark)
  std::vector<Packet*> free_;
  std::uint64_t total_allocs_ = 0;
};

// The calling thread's packet arena. Thread-local so parallel campaign
// workers never contend; a Sim must allocate and drop all its packets on
// one thread (the runner's job model already guarantees this).
inline PacketArena& packet_arena() {
  thread_local PacketArena arena;
  return arena;
}

// Intrusive refcounted handle to an arena slot. Same shape as the
// std::shared_ptr<Packet> it replaced (copy shares, last owner frees) but
// one pointer wide, with non-atomic counts and pool-backed storage.
class PacketPtr {
 public:
  PacketPtr() = default;
  PacketPtr(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  PacketPtr(const PacketPtr& o) : p_(o.p_) {
    if (p_ != nullptr) ++p_->refs_;
  }
  PacketPtr(PacketPtr&& o) noexcept : p_(o.p_) { o.p_ = nullptr; }
  PacketPtr& operator=(const PacketPtr& o) {
    if (o.p_ != nullptr) ++o.p_->refs_;  // ref first: self-assignment safe
    drop();
    p_ = o.p_;
    return *this;
  }
  PacketPtr& operator=(PacketPtr&& o) noexcept {
    if (this != &o) {
      drop();
      p_ = o.p_;
      o.p_ = nullptr;
    }
    return *this;
  }
  ~PacketPtr() { drop(); }

  Packet* get() const { return p_; }
  Packet& operator*() const { return *p_; }
  Packet* operator->() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }
  void reset() {
    drop();
    p_ = nullptr;
  }
  // Owners of the slot (0 for an empty handle); tests use this to pin the
  // share/release behaviour.
  std::uint32_t use_count() const { return p_ != nullptr ? p_->refs_ : 0; }

  friend bool operator==(const PacketPtr& a, const PacketPtr& b) {
    return a.p_ == b.p_;
  }
  friend bool operator!=(const PacketPtr& a, const PacketPtr& b) {
    return a.p_ != b.p_;
  }

 private:
  friend PacketPtr make_packet();
  friend PacketPtr make_packet(const Packet& proto);
  struct Adopt {};
  PacketPtr(Packet* p, Adopt) : p_(p) {}  // adopts the alloc()'s reference

  void drop() {
    if (p_ != nullptr && --p_->refs_ == 0) p_->arena_->release(p_);
  }

  Packet* p_ = nullptr;
};

// Fresh default-initialised packet from the calling thread's arena.
inline PacketPtr make_packet() {
  return PacketPtr(packet_arena().alloc(), PacketPtr::Adopt{});
}

// Clone: a fresh packet carrying `proto`'s payload fields (refcount and
// arena slot are its own) — the reply/forwarding pattern.
inline PacketPtr make_packet(const Packet& proto) {
  PacketPtr p(packet_arena().alloc(), PacketPtr::Adopt{});
  *p = proto;
  return p;
}

}  // namespace g80211
