// Network-layer packet: what a transport agent hands to the MAC.
//
// `size_bytes` includes transport payload plus IP/transport headers
// (the simulator's transports add 40 bytes, as in ns-2), but NOT the MAC
// overhead — the MAC/PHY account for that when computing airtime and frame
// error length.
#pragma once

#include <cstdint>
#include <memory>

#include "src/sim/time.h"

namespace g80211 {

struct TcpHeader {
  std::int64_t seq = 0;  // first payload byte (data segments)
  std::int64_t ack = 0;  // cumulative ack (ack segments)
  bool is_ack = false;
};

struct Packet {
  int flow_id = 0;
  std::uint64_t uid = 0;   // unique per packet instance
  std::int64_t seq = 0;    // transport-level sequence (UDP: datagram index)
  int size_bytes = 0;      // payload + IP/transport headers
  int src_node = -1;       // end-to-end source
  int dst_node = -1;       // end-to-end destination
  Time created = 0;
  TcpHeader tcp;           // valid when the owning flow is TCP
  bool is_probe = false;   // ping probe used by the fake-ACK detector
  bool probe_reply = false;
};

using PacketPtr = std::shared_ptr<Packet>;

}  // namespace g80211
