#include "src/net/node.h"

namespace g80211 {

Node::Node(Scheduler& sched, Channel& channel, int id, Position pos, Rng rng)
    : sched_(&sched), id_(id) {
  Rng phy_rng = rng.fork();
  phy_ = std::make_unique<Phy>(channel, id, pos, phy_rng);
  mac_ = std::make_unique<Mac>(sched, *phy_, channel.params(), rng.fork());
  mac_->set_upper(this);
}

void Node::send_packet(PacketPtr p) {
  const auto it = routes_.find(p->dst_node);
  const int next_hop = it != routes_.end() ? it->second : p->dst_node;
  mac_->send(std::move(p), next_hop);
}

void Node::on_packet(const PacketPtr& packet, const RxInfo& /*info*/) {
  if (packet->dst_node != id_ && packet->dst_node != kBroadcast) {
    const auto fw = forwarders_.find(packet->dst_node);
    if (fw != forwarders_.end()) fw->second(packet);
    return;
  }
  if (packet->is_probe && !packet->probe_reply) {
    // Application-layer echo: only reachable for uncorrupted deliveries.
    auto reply = make_packet(*packet);
    reply->uid = next_uid_++;
    reply->probe_reply = true;
    reply->src_node = id_;
    reply->dst_node = packet->src_node;
    reply->created = sched_->now();
    ++probes_echoed_;
    send_packet(std::move(reply));
    return;
  }
  const auto it = sinks_.find(packet->flow_id);
  if (it != sinks_.end() && it->second != nullptr) it->second->receive(packet);
}

}  // namespace g80211
