// A wireless station: PHY + MAC + packet demultiplexing.
//
// All wireless traffic is single-hop (hotspot), so the MAC destination of a
// packet is its end-to-end destination unless a route entry says otherwise
// (used when a station talks to a remote wired host through the AP).
// Nodes also implement the application-layer echo used by the fake-ACK
// detector's ping probing: an uncorrupted probe packet is answered; a
// corrupted one cannot be (which is precisely what exposes fake MAC ACKs).
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "src/mac/mac.h"
#include "src/net/packet.h"
#include "src/phy/phy.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void receive(const PacketPtr& packet) = 0;
};

class Node : public MacUpper {
 public:
  Node(Scheduler& sched, Channel& channel, int id, Position pos, Rng rng);

  int id() const { return id_; }
  Phy& phy() { return *phy_; }
  Mac& mac() { return *mac_; }
  Scheduler& scheduler() { return *sched_; }

  // Dispatch received packets of `flow_id` to `sink`.
  void register_sink(int flow_id, PacketSink* sink) { sinks_[flow_id] = sink; }

  // Next-hop MAC for packets whose end-to-end destination is `dst_node`
  // (e.g. route a mobile's TCP ACKs for a remote server via the AP).
  void set_route(int dst_node, int next_hop_mac) { routes_[dst_node] = next_hop_mac; }

  // Forward packets addressed to other nodes here (AP bridging to wired
  // hosts): dst_node -> handler.
  void set_forwarder(int dst_node, std::function<void(PacketPtr)> fn) {
    forwarders_[dst_node] = std::move(fn);
  }

  // Transport-facing: send a packet toward its dst_node over the air.
  void send_packet(PacketPtr p);

  // MacUpper:
  void on_packet(const PacketPtr& packet, const RxInfo& info) override;

  std::int64_t probes_echoed() const { return probes_echoed_; }

 private:
  Scheduler* sched_;
  int id_;
  std::unique_ptr<Phy> phy_;
  std::unique_ptr<Mac> mac_;
  std::map<int, PacketSink*> sinks_;
  std::map<int, int> routes_;
  std::map<int, std::function<void(PacketPtr)>> forwarders_;
  std::int64_t probes_echoed_ = 0;
  std::uint64_t next_uid_ = 1;
};

}  // namespace g80211
