#include "src/net/queue.h"

#include "src/sim/check.h"


namespace g80211 {

bool DropTailQueue::push(PacketPtr p, int dest_mac) {
  if (q_.size() >= limit_) {
    ++drops_;
    return false;
  }
  q_.emplace_back(std::move(p), dest_mac);
  return true;
}

std::pair<PacketPtr, int> DropTailQueue::pop() {
  G80211_DCHECK(!q_.empty());
  auto front = std::move(q_.front());
  q_.pop_front();
  return front;
}

std::size_t DropTailQueue::erase_dest(int dest_mac) {
  const std::size_t before = q_.size();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < q_.size(); ++i) {
    if (q_[i].second != dest_mac) {
      if (kept != i) q_[kept] = std::move(q_[i]);
      ++kept;
    }
  }
  q_.resize(kept);
  return before - kept;
}

}  // namespace g80211
