#include "src/net/queue.h"

#include "src/sim/check.h"


namespace g80211 {

bool DropTailQueue::push(PacketPtr p, int dest_mac) {
  if (q_.size() >= limit_) {
    ++drops_;
    return false;
  }
  q_.emplace_back(std::move(p), dest_mac);
  return true;
}

std::pair<PacketPtr, int> DropTailQueue::pop() {
  G80211_DCHECK(!q_.empty());
  auto front = std::move(q_.front());
  q_.pop_front();
  return front;
}

}  // namespace g80211
