#include "src/runner/metric_sink.h"

#include <cinttypes>
#include <cstdlib>
#include <filesystem>
#include <thread>

namespace g80211 {
namespace {

// Escape for JSON strings (labels are plain sweep-axis values; this just
// keeps odd characters from corrupting rows).
std::string escaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Quote a CSV cell per RFC 4180: wrap in double quotes, double any
// embedded quote. Applied to every string column uniformly, so a label
// like `rate="5,5"` survives a round trip through any CSV reader.
std::string csv_quoted(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string metrics_dir() {
  const char* v = std::getenv("G80211_METRICS_DIR");
  return (v != nullptr) ? std::string(v) : std::string();
}

unsigned job_count() {
  if (const char* v = std::getenv("G80211_JOBS"); v != nullptr && v[0] != '\0') {
    const long n = std::strtol(v, nullptr, 10);
    if (n >= 1) return static_cast<unsigned>(n);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

MetricSink::MetricSink(const std::string& figure) {
  const std::string dir = metrics_dir();
  if (dir.empty() || figure.empty()) return;
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return;
  const std::string stem = dir + "/" + figure;
  jsonl_ = std::fopen((stem + ".jsonl").c_str(), "w");
  if (jsonl_ == nullptr) return;
  csv_ = std::fopen((stem + ".csv").c_str(), "w");
  if (csv_ == nullptr) {
    std::fclose(jsonl_);
    jsonl_ = nullptr;
    return;
  }
  std::fprintf(csv_, "figure,label,metric,median,p25,p75,n_runs,seed,wall_ms\n");
  window_stem_ = stem + ".windows";
}

MetricSink::~MetricSink() {
  if (jsonl_ != nullptr) std::fclose(jsonl_);
  if (csv_ != nullptr) std::fclose(csv_);
  if (win_jsonl_ != nullptr) std::fclose(win_jsonl_);
  if (win_csv_ != nullptr) std::fclose(win_csv_);
}

void MetricSink::write(const MetricRow& row) {
  if (!enabled()) return;
  // %.17g round-trips doubles exactly, so equal values always serialize to
  // equal bytes (the determinism contract benches are checked against).
  std::fprintf(jsonl_,
               "{\"figure\":\"%s\",\"label\":\"%s\",\"metric\":\"%s\","
               "\"median\":%.17g,\"p25\":%.17g,\"p75\":%.17g,"
               "\"n_runs\":%d,\"seed\":%" PRIu64 ",\"wall_ms\":%.3f}\n",
               escaped(row.figure).c_str(), escaped(row.label).c_str(),
               escaped(row.metric).c_str(), row.median, row.p25, row.p75,
               row.n_runs, row.seed, row.wall_ms);
  std::fprintf(csv_, "%s,%s,%s,%.17g,%.17g,%.17g,%d,%" PRIu64 ",%.3f\n",
               csv_quoted(row.figure).c_str(), csv_quoted(row.label).c_str(),
               csv_quoted(row.metric).c_str(), row.median, row.p25, row.p75,
               row.n_runs, row.seed, row.wall_ms);
}

void MetricSink::write(const WindowRow& row) {
  if (window_stem_.empty()) return;
  if (win_jsonl_ == nullptr) {
    win_jsonl_ = std::fopen((window_stem_ + ".jsonl").c_str(), "w");
    if (win_jsonl_ == nullptr) {
      window_stem_.clear();
      return;
    }
    win_csv_ = std::fopen((window_stem_ + ".csv").c_str(), "w");
    if (win_csv_ == nullptr) {
      std::fclose(win_jsonl_);
      win_jsonl_ = nullptr;
      window_stem_.clear();
      return;
    }
    std::fprintf(win_csv_,
                 "figure,label,metric,t_start_s,t_end_s,count,mean,p25,p50,"
                 "p75\n");
  }
  std::fprintf(win_jsonl_,
               "{\"figure\":\"%s\",\"label\":\"%s\",\"metric\":\"%s\","
               "\"t_start_s\":%.17g,\"t_end_s\":%.17g,\"count\":%" PRId64
               ",\"mean\":%.17g,\"p25\":%.17g,\"p50\":%.17g,\"p75\":%.17g}\n",
               escaped(row.figure).c_str(), escaped(row.label).c_str(),
               escaped(row.metric).c_str(), row.t_start_s, row.t_end_s,
               row.count, row.mean, row.p25, row.p50, row.p75);
  std::fprintf(win_csv_,
               "%s,%s,%s,%.17g,%.17g,%" PRId64 ",%.17g,%.17g,%.17g,%.17g\n",
               csv_quoted(row.figure).c_str(), csv_quoted(row.label).c_str(),
               csv_quoted(row.metric).c_str(), row.t_start_s, row.t_end_s,
               row.count, row.mean, row.p25, row.p50, row.p75);
}

}  // namespace g80211
