// Constant-memory streaming statistics for windowed metric aggregation.
//
// City-scale campaigns run for arbitrary simulated durations, so metric
// aggregation must not store per-sample history: peak memory has to be a
// function of the world size, never of how long the world runs. Two
// primitives carry that contract:
//
//  * P2Quantile — the P-squared (piecewise-parabolic) single-quantile
//    estimator of Jain & Chlamtac (CACM 1985): five markers whose heights
//    approximate the quantile by fitting a parabola through neighbouring
//    markers as observations stream in. Exact for the first five samples,
//    O(1) memory and O(1) per sample forever after.
//  * StreamingStat — count, Welford mean, min/max, and P² estimates of the
//    25th/50th/75th percentiles. The same five-number summary the campaign
//    runner reports per point, computed without a sample buffer.
//
// Like every aggregation path in the repo, results are a pure function of
// the sample sequence: no wall clock, no randomness, no iteration over
// unordered containers.
#pragma once

#include <cstdint>

namespace g80211 {

class P2Quantile {
 public:
  // `p` in (0, 1): the quantile to track (0.5 = median).
  explicit P2Quantile(double p);

  void add(double x);

  // Current estimate; exact while count() <= 5, P² approximation after.
  // 0 when no samples have been added.
  double value() const;

  std::int64_t count() const { return n_; }

 private:
  double p_;
  std::int64_t n_ = 0;
  double q_[5];    // marker heights (sorted first five samples initially)
  double pos_[5];  // actual marker positions (1-based sample ranks)
  double des_[5];  // desired marker positions
  double inc_[5];  // desired-position increment per sample
};

class StreamingStat {
 public:
  StreamingStat();

  void add(double x);
  // Forget everything (window reset). Cheaper than re-constructing and
  // allocation-free, so per-window aggregates can reuse one instance.
  void reset();

  std::int64_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }
  double p25() const { return q25_.value(); }
  double p50() const { return q50_.value(); }
  double p75() const { return q75_.value(); }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  P2Quantile q25_;
  P2Quantile q50_;
  P2Quantile q75_;
};

}  // namespace g80211
