// Structured metric export for campaign results.
//
// Alongside the human-readable TableWriter tables on stdout, every named
// campaign can emit machine-readable results: one JSON-lines file and one
// CSV file per figure, written to the directory named by the
// G80211_METRICS_DIR environment variable (created if missing). When the
// variable is unset the sink is disabled and writes are no-ops, so benches
// pay nothing by default.
//
// Row schema (one row per aggregated point per metric):
//   figure   campaign name, also the file stem ("fig1_udp_cts_nav")
//   label    point label on the sweep axis ("0.6")
//   metric   metric name ("greedy_mbps")
//   median   median over the point's seeded runs
//   p25/p75  25th/75th percentile over the runs
//   n_runs   number of seeded runs aggregated
//   seed     base seed of the point (runs use seed, seed+1, ...)
//   wall_ms  summed wall-clock of the point's runs (the only field that is
//            not bit-identical across repeats/thread counts)
//
// Streaming campaigns (the city-scale scenario runner) additionally emit
// per-window rows: fixed simulated-time windows, each carrying the
// count/mean/p25/p50/p75 of the samples that fell inside it, aggregated
// by constant-memory estimators (src/runner/stream_stats.h) and written
// the moment the window closes. Window rows go to <figure>.windows.jsonl
// and <figure>.windows.csv, opened lazily on the first window write, so
// figures that never stream pay nothing. Peak sink memory is therefore
// independent of how long the simulation runs — nothing is stored and
// aggregated after the fact.
//
// All writes happen on the campaign's aggregation thread, in job order;
// the sink itself is not thread-safe and does not need to be.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace g80211 {

// Directory named by G80211_METRICS_DIR, or empty if unset/empty.
std::string metrics_dir();

// Worker count for campaigns: G80211_JOBS if set (>= 1), otherwise
// std::thread::hardware_concurrency().
unsigned job_count();

struct MetricRow {
  std::string figure;
  std::string label;
  std::string metric;
  double median = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  int n_runs = 0;
  std::uint64_t seed = 0;
  double wall_ms = 0.0;
};

// One closed aggregation window: samples observed in simulated-time
// [t_start_s, t_end_s), summarized by the streaming estimators.
struct WindowRow {
  std::string figure;
  std::string label;   // stream label within the figure ("ring0")
  std::string metric;  // sampled quantity ("station_goodput_mbps")
  double t_start_s = 0.0;
  double t_end_s = 0.0;
  std::int64_t count = 0;  // samples in the window
  double mean = 0.0;
  double p25 = 0.0;
  double p50 = 0.0;
  double p75 = 0.0;
};

class MetricSink {
 public:
  // Opens <dir>/<figure>.jsonl and <dir>/<figure>.csv (truncating) when
  // G80211_METRICS_DIR is set; otherwise returns a disabled sink.
  explicit MetricSink(const std::string& figure);
  ~MetricSink();

  MetricSink(const MetricSink&) = delete;
  MetricSink& operator=(const MetricSink&) = delete;

  bool enabled() const { return jsonl_ != nullptr; }
  void write(const MetricRow& row);
  // Streaming path: appends to <figure>.windows.{jsonl,csv}, opened on the
  // first call. No-op on a disabled sink.
  void write(const WindowRow& row);

 private:
  std::string window_stem_;  // <dir>/<figure>.windows, empty when disabled
  std::FILE* jsonl_ = nullptr;
  std::FILE* csv_ = nullptr;
  std::FILE* win_jsonl_ = nullptr;
  std::FILE* win_csv_ = nullptr;
};

}  // namespace g80211
