#include "src/runner/thread_pool.h"

#include <stdexcept>
#include <utility>

namespace g80211 {

ThreadPool::ThreadPool(unsigned threads) : pinned_(threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this, i](std::stop_token stop) { worker_loop(i, stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [this] { return queues_drained() && active_ == 0; });
  }
  for (auto& w : workers_) w.request_stop();
  work_cv_.notify_all();
  // jthread destructors join.
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    Task t{next_seq_++, std::move(task)};
    run_task(t);
    return;
  }
  {
    std::lock_guard lock(mu_);
    queue_.push_back(Task{next_seq_++, std::move(task)});
  }
  work_cv_.notify_one();
}

void ThreadPool::submit_to(unsigned worker, std::function<void()> task) {
  if (workers_.empty()) {
    // Inline mode: pinning is trivially satisfied — everything runs on the
    // calling thread, in submission order.
    Task t{next_seq_++, std::move(task)};
    run_task(t);
    return;
  }
  if (worker >= workers_.size()) {
    throw std::out_of_range("ThreadPool::submit_to: no such worker");
  }
  {
    std::lock_guard lock(mu_);
    pinned_[worker].push_back(Task{next_seq_++, std::move(task)});
  }
  work_cv_.notify_all();  // only one worker may take it; wake everyone
}

void ThreadPool::run_task(const Task& task) {
  try {
    task.fn();
  } catch (...) {
    std::lock_guard lock(mu_);
    if (!first_error_ || task.seq < first_error_seq_) {
      first_error_ = std::current_exception();
      first_error_seq_ = task.seq;
    }
  }
}

void ThreadPool::worker_loop(unsigned index, std::stop_token stop) {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] {
        return !pinned_[index].empty() || !queue_.empty() ||
               stop.stop_requested();
      });
      // Pinned work first: an epoch task must not sit behind shared-queue
      // campaign jobs grabbed by other workers.
      if (!pinned_[index].empty()) {
        task = std::move(pinned_[index].front());
        pinned_[index].pop_front();
      } else if (!queue_.empty()) {
        task = std::move(queue_.front());
        queue_.pop_front();
      } else {
        return;  // stop requested and nothing left for this worker
      }
      ++active_;
    }
    run_task(task);
    {
      std::lock_guard lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queues_drained() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    first_error_seq_ = 0;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace g80211
