#include "src/runner/thread_pool.h"

#include <utility>

namespace g80211 {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this](std::stop_token stop) { worker_loop(stop); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }
  for (auto& w : workers_) w.request_stop();
  work_cv_.notify_all();
  // jthread destructors join.
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    Task t{next_seq_++, std::move(task)};
    run_task(t);
    return;
  }
  {
    std::lock_guard lock(mu_);
    queue_.push_back(Task{next_seq_++, std::move(task)});
  }
  work_cv_.notify_one();
}

void ThreadPool::run_task(const Task& task) {
  try {
    task.fn();
  } catch (...) {
    std::lock_guard lock(mu_);
    if (!first_error_ || task.seq < first_error_seq_) {
      first_error_ = std::current_exception();
      first_error_seq_ = task.seq;
    }
  }
}

void ThreadPool::worker_loop(std::stop_token stop) {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [&] { return !queue_.empty() || stop.stop_requested(); });
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    run_task(task);
    {
      std::lock_guard lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

void ThreadPool::wait() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  if (first_error_) {
    std::exception_ptr e = std::exchange(first_error_, nullptr);
    first_error_seq_ = 0;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

}  // namespace g80211
