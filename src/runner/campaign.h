// Parallel campaign runner.
//
// Every paper figure is a parameter sweep of independent (scenario, seed)
// simulations, and a run is a pure function of (scenario, seed) (see
// src/sim/scheduler.h). A Campaign exploits that: it takes a grid of jobs
// — each a (label, x, base_seed, runs) point with a body mapping a seed to
// a metric vector — executes all grid_points × runs simulations
// concurrently on a fixed-size ThreadPool, and aggregates per-point
// medians and quartiles **ordered by job index, never by completion
// order**. N-thread output is therefore bit-identical to 1-thread output;
// G80211_JOBS=1 is the determinism reference.
//
// Thread count: explicit `thread_override` argument, else G80211_JOBS,
// else hardware_concurrency. Named campaigns additionally export
// structured results through MetricSink (G80211_METRICS_DIR) and print a
// wall-clock summary line to stderr; campaigns with an empty figure name
// are silent (the median_over_seeds compatibility path).
//
// Job bodies run on worker threads: they must be self-contained pure
// functions of the seed (build their own Sim, no shared mutable state) and
// must not print. All aggregation, table printing and metric export happen
// on the calling thread after every run completes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace g80211 {

struct CampaignJob {
  std::string label;       // point label on the sweep axis ("0.6")
  double x = 0.0;          // numeric sweep value (first table column)
  std::uint64_t base_seed = 0;  // runs use base_seed, base_seed+1, ...
  int runs = 1;            // seeded repetitions (median-of-5 in the paper)
  std::function<std::vector<double>(std::uint64_t seed)> body;
};

// Aggregated result for one grid point, in job-insertion order.
struct CampaignPoint {
  std::string label;
  double x = 0.0;
  std::uint64_t base_seed = 0;
  int n_runs = 0;
  std::vector<double> median;  // per metric
  std::vector<double> p25;
  std::vector<double> p75;
  double wall_ms = 0.0;  // summed wall-clock of this point's runs
};

class Campaign {
 public:
  // `figure` names the campaign for metric export and the summary line
  // (empty = quiet). `metric_names` label exported metrics; when empty,
  // metrics are exported as m0, m1, ... When non-empty, every job body
  // must return exactly metric_names.size() values.
  Campaign(std::string figure, std::vector<std::string> metric_names);

  // Throws std::invalid_argument on runs <= 0 or a missing body. Real
  // error handling, not assert: a Release build must fail loudly rather
  // than silently mis-aggregate.
  void add(CampaignJob job);
  void add(std::string label, double x, std::uint64_t base_seed, int runs,
           std::function<std::vector<double>(std::uint64_t)> body);

  std::size_t size() const { return jobs_.size(); }
  const std::string& figure() const { return figure_; }

  // Execute all jobs × runs and aggregate. `thread_override` picks the
  // worker count (0 = G80211_JOBS, else hardware_concurrency; 1 runs
  // everything inline on the calling thread). Rethrows the exception of
  // the earliest-submitted failing run, if any; throws std::runtime_error
  // when a job's runs disagree on the metric-vector size (or disagree with
  // metric_names). Results are ordered by job index regardless of
  // completion order.
  std::vector<CampaignPoint> run(unsigned thread_override = 0);

 private:
  std::string figure_;
  std::vector<std::string> metric_names_;
  std::vector<CampaignJob> jobs_;
};

}  // namespace g80211
