#include "src/runner/stream_stats.h"

#include <algorithm>

#include "src/sim/check.h"

namespace g80211 {

P2Quantile::P2Quantile(double p) : p_(p) {
  G80211_CHECK(p > 0.0 && p < 1.0 && "quantile must be in (0, 1)");
  for (int i = 0; i < 5; ++i) {
    q_[i] = 0.0;
    pos_[i] = static_cast<double>(i + 1);
  }
  // Desired positions start at the canonical marker spread for quantile p
  // and advance by inc_ per observation (Jain & Chlamtac, Box 1).
  des_[0] = 1.0;
  des_[1] = 1.0 + 2.0 * p;
  des_[2] = 1.0 + 4.0 * p;
  des_[3] = 3.0 + 2.0 * p;
  des_[4] = 5.0;
  inc_[0] = 0.0;
  inc_[1] = p / 2.0;
  inc_[2] = p;
  inc_[3] = (1.0 + p) / 2.0;
  inc_[4] = 1.0;
}

void P2Quantile::add(double x) {
  ++n_;
  if (n_ <= 5) {
    // Collect-and-sort phase: the first five markers are the first five
    // samples in order; estimates are exact here.
    q_[n_ - 1] = x;
    std::sort(q_, q_ + n_);
    return;
  }

  // Locate the cell k with q_[k] <= x < q_[k+1], extending the extremes.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) des_[i] += inc_[i];

  // Adjust the three interior markers toward their desired positions with
  // the piecewise-parabolic (P²) update, falling back to linear when the
  // parabola would break marker monotonicity.
  for (int i = 1; i <= 3; ++i) {
    const double d = des_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      const double qp =
          q_[i] + s / (pos_[i + 1] - pos_[i - 1]) *
                      ((pos_[i] - pos_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                           (pos_[i + 1] - pos_[i]) +
                       (pos_[i + 1] - pos_[i] - s) * (q_[i] - q_[i - 1]) /
                           (pos_[i] - pos_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {
        const int j = i + static_cast<int>(s);
        q_[i] += s * (q_[j] - q_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] += s;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ <= 5) {
    // Exact quantile of the sorted prefix, nearest-rank with interpolation
    // matching the runner's aggregate() convention (linear between ranks).
    const double rank = p_ * static_cast<double>(n_ - 1);
    const int lo = static_cast<int>(rank);
    const int hi = std::min<int>(lo + 1, static_cast<int>(n_) - 1);
    const double frac = rank - static_cast<double>(lo);
    return q_[lo] + frac * (q_[hi] - q_[lo]);
  }
  return q_[2];
}

StreamingStat::StreamingStat() : q25_(0.25), q50_(0.5), q75_(0.75) {}

void StreamingStat::add(double x) {
  ++n_;
  // Welford's running mean: numerically stable for long windows.
  mean_ += (x - mean_) / static_cast<double>(n_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  q25_.add(x);
  q50_.add(x);
  q75_.add(x);
}

void StreamingStat::reset() {
  n_ = 0;
  mean_ = min_ = max_ = 0.0;
  q25_ = P2Quantile(0.25);
  q50_ = P2Quantile(0.5);
  q75_ = P2Quantile(0.75);
}

}  // namespace g80211
