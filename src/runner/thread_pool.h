// Fixed-size worker pool for the campaign runner.
//
// Deliberately minimal: a single FIFO queue, a fixed number of
// std::jthread workers, no work stealing — simulation jobs are seconds of
// simulated traffic each, so queue contention is irrelevant and a simple
// pool keeps the execution model easy to reason about. Exceptions thrown
// by tasks are captured and rethrown from wait(): when several tasks fail,
// the one that was *submitted* earliest wins, so error reporting does not
// depend on scheduling order.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace g80211 {

class ThreadPool {
 public:
  // `threads` workers; 0 runs every task inline in submit() on the calling
  // thread (the single-threaded determinism reference — no worker threads
  // are created at all).
  explicit ThreadPool(unsigned threads);
  // Joins workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueue a task (runs it immediately when size() == 0). Tasks must not
  // call submit() or wait() on their own pool.
  void submit(std::function<void()> task);

  // Block until the queue is empty and all workers are idle. If any task
  // threw since the last wait(), rethrows the exception of the
  // earliest-submitted failing task (remaining captures are dropped).
  void wait();

 private:
  struct Task {
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  void worker_loop(std::stop_token stop);
  void run_task(const Task& task);  // executes + captures exceptions

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: queue non-empty or stop
  std::condition_variable idle_cv_;   // wait(): queue empty && none active
  std::deque<Task> queue_;
  unsigned active_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t first_error_seq_ = 0;
  std::exception_ptr first_error_;
  std::vector<std::jthread> workers_;
};

}  // namespace g80211
