// Fixed-size worker pool for the campaign runner and the sharded engine.
//
// Deliberately minimal: a shared FIFO queue plus one pinned FIFO per
// worker, a fixed number of std::jthread workers, no work stealing —
// simulation jobs are seconds of simulated traffic each, so queue
// contention is irrelevant and a simple pool keeps the execution model
// easy to reason about. Exceptions thrown by tasks are captured and
// rethrown from wait(): when several tasks fail, the one that was
// *submitted* earliest wins, so error reporting does not depend on
// scheduling order.
//
// Pinning (submit_to) exists for state that is confined to one thread by
// contract: a sharded simulation runs each shard's scheduler, PHY state
// and thread-local packet arena on one worker for the shard's whole
// lifetime (build, every epoch, teardown). A pinned task runs on exactly
// the named worker, in submission order relative to other tasks pinned
// there; wait() is the epoch barrier — it returns only when the shared
// queue and every pinned queue are drained and all workers are idle, and
// the mutex handoff gives the caller a happens-before edge over
// everything those tasks wrote.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace g80211 {

class ThreadPool {
 public:
  // `threads` workers; 0 runs every task inline in submit() on the calling
  // thread (the single-threaded determinism reference — no worker threads
  // are created at all).
  explicit ThreadPool(unsigned threads);
  // Joins workers; pending tasks are still drained first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Enqueue a task (runs it immediately when size() == 0). Tasks must not
  // call submit() or wait() on their own pool.
  void submit(std::function<void()> task);

  // Enqueue a task pinned to worker `worker` (must be < size() when the
  // pool has workers; with size() == 0 it runs inline like submit(), which
  // is the single-threaded determinism reference). Tasks pinned to one
  // worker run on that worker's thread in submission order, so state they
  // touch — including the thread-local packet arena — stays confined to
  // that thread across calls.
  void submit_to(unsigned worker, std::function<void()> task);

  // Block until the queue is empty and all workers are idle. If any task
  // threw since the last wait(), rethrows the exception of the
  // earliest-submitted failing task (remaining captures are dropped).
  void wait();

 private:
  struct Task {
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };

  void worker_loop(unsigned index, std::stop_token stop);
  void run_task(const Task& task);  // executes + captures exceptions
  bool queues_drained() const {     // callers hold mu_
    if (!queue_.empty()) return false;
    for (const auto& q : pinned_) {
      if (!q.empty()) return false;
    }
    return true;
  }

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers: any queue non-empty or stop
  std::condition_variable idle_cv_;   // wait(): queues empty && none active
  std::deque<Task> queue_;
  std::vector<std::deque<Task>> pinned_;  // one FIFO per worker
  unsigned active_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t first_error_seq_ = 0;
  std::exception_ptr first_error_;
  std::vector<std::jthread> workers_;
};

}  // namespace g80211
