#include "src/runner/campaign.h"

#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "src/analysis/stats.h"
#include "src/runner/metric_sink.h"
#include "src/runner/thread_pool.h"

namespace g80211 {
namespace {

double elapsed_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Campaign::Campaign(std::string figure, std::vector<std::string> metric_names)
    : figure_(std::move(figure)), metric_names_(std::move(metric_names)) {}

void Campaign::add(CampaignJob job) {
  if (job.runs <= 0) {
    throw std::invalid_argument("Campaign '" + figure_ + "' point '" +
                                job.label + "': runs must be > 0, got " +
                                std::to_string(job.runs));
  }
  if (!job.body) {
    throw std::invalid_argument("Campaign '" + figure_ + "' point '" +
                                job.label + "': missing job body");
  }
  jobs_.push_back(std::move(job));
}

void Campaign::add(std::string label, double x, std::uint64_t base_seed,
                   int runs,
                   std::function<std::vector<double>(std::uint64_t)> body) {
  add(CampaignJob{std::move(label), x, base_seed, runs, std::move(body)});
}

std::vector<CampaignPoint> Campaign::run(unsigned thread_override) {
  const auto t0 = std::chrono::steady_clock::now();
  const unsigned requested = thread_override > 0 ? thread_override : job_count();

  // Per-(job, run) result slots, pre-sized so workers never touch shared
  // structure — each run writes only its own slot.
  std::vector<std::vector<std::vector<double>>> raw(jobs_.size());
  std::vector<std::vector<double>> run_ms(jobs_.size());
  std::size_t total_runs = 0;
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    raw[j].resize(static_cast<std::size_t>(jobs_[j].runs));
    run_ms[j].resize(static_cast<std::size_t>(jobs_[j].runs));
    total_runs += static_cast<std::size_t>(jobs_[j].runs);
  }

  {
    // 1 requested worker = run inline on the calling thread (the
    // determinism reference spawns no threads at all).
    ThreadPool pool(requested <= 1 ? 0 : requested);
    for (std::size_t j = 0; j < jobs_.size(); ++j) {
      const CampaignJob& job = jobs_[j];
      for (int r = 0; r < job.runs; ++r) {
        // pool.wait() below fences every job before job/raw/run_ms leave
        // scope — the block owns the pool, so the by-ref captures are safe.
        // NOLINTNEXTLINE(callback-capture): frame outlives the pool
        pool.submit([&job, &raw, &run_ms, j, r] {
          const auto rt0 = std::chrono::steady_clock::now();
          raw[j][static_cast<std::size_t>(r)] =
              job.body(job.base_seed + static_cast<std::uint64_t>(r));
          run_ms[j][static_cast<std::size_t>(r)] = elapsed_ms(rt0);
        });
      }
    }
    pool.wait();  // rethrows the earliest-submitted failure
  }

  // Aggregate strictly in job order on this thread.
  MetricSink sink(figure_);
  std::vector<CampaignPoint> points;
  points.reserve(jobs_.size());
  for (std::size_t j = 0; j < jobs_.size(); ++j) {
    const CampaignJob& job = jobs_[j];
    const std::size_t n_metrics =
        !metric_names_.empty() ? metric_names_.size() : raw[j][0].size();
    for (int r = 0; r < job.runs; ++r) {
      if (raw[j][static_cast<std::size_t>(r)].size() != n_metrics) {
        throw std::runtime_error(
            "Campaign '" + figure_ + "' point '" + job.label + "': run " +
            std::to_string(r) + " returned " +
            std::to_string(raw[j][static_cast<std::size_t>(r)].size()) +
            " metrics, expected " + std::to_string(n_metrics));
      }
    }

    CampaignPoint pt;
    pt.label = job.label;
    pt.x = job.x;
    pt.base_seed = job.base_seed;
    pt.n_runs = job.runs;
    for (const double ms : run_ms[j]) pt.wall_ms += ms;
    for (std::size_t m = 0; m < n_metrics; ++m) {
      std::vector<double> samples;
      samples.reserve(static_cast<std::size_t>(job.runs));
      for (int r = 0; r < job.runs; ++r) {
        samples.push_back(raw[j][static_cast<std::size_t>(r)][m]);
      }
      pt.median.push_back(median(samples));
      pt.p25.push_back(percentile(samples, 25.0));
      pt.p75.push_back(percentile(samples, 75.0));
    }

    if (sink.enabled()) {
      for (std::size_t m = 0; m < n_metrics; ++m) {
        MetricRow row;
        row.figure = figure_;
        row.label = pt.label;
        // The fallback name is formatted into a stack buffer: building it
        // with string operator+/append on a std::to_string temporary trips
        // GCC 12's bogus -Wrestrict at -O3 (GCC PR 105651), and CI builds
        // with -Werror.
        if (m < metric_names_.size()) {
          row.metric = metric_names_[m];
        } else {
          char fallback[24];
          std::snprintf(fallback, sizeof(fallback), "m%zu", m);
          row.metric = fallback;
        }
        row.median = pt.median[m];
        row.p25 = pt.p25[m];
        row.p75 = pt.p75[m];
        row.n_runs = pt.n_runs;
        row.seed = pt.base_seed;
        row.wall_ms = pt.wall_ms;
        sink.write(row);
      }
    }
    points.push_back(std::move(pt));
  }

  if (!figure_.empty()) {
    // Summary goes to stderr so stdout stays byte-stable table output.
    std::fprintf(stderr,
                 "[campaign] %s: %zu points, %zu runs, %u worker(s), %.1f ms\n",
                 figure_.c_str(), jobs_.size(), total_runs, requested,
                 elapsed_ms(t0));
  }
  return points;
}

}  // namespace g80211
