// Incremental capture reader: the tail(1) counterpart of capture_reader.
//
// Opens a pcap or JSONL capture file and parses it record-by-record as the
// bytes arrive, tolerating a file that is still being written (a live
// CaptureWriter journal). Each poll() reads whatever has been appended
// since the last call and emits every *complete* record; a record split by
// the current end of file stays buffered until a later poll completes it.
// Records are therefore delivered exactly once, in journal order, with the
// same parsing code — and the same validation and error messages — as the
// one-shot readers (src/capture/format_detail.h is shared by both).
//
// Format is sniffed from the first bytes (pcap magic vs. '{'). For JSONL
// the stream knows when it is complete (the footer line); pcap has no
// footer, so finished() stays false and the caller decides when to stop
// polling. pending_bytes() exposes whether the buffer holds a partial
// record — nonzero after the producer has finished means a truncated file.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/capture/capture.h"

namespace g80211 {

class CaptureStreamReader {
 public:
  // Opens the file; throws std::runtime_error when it cannot be opened.
  // The file may be empty or partially written at this point.
  explicit CaptureStreamReader(const std::string& path);
  ~CaptureStreamReader();
  CaptureStreamReader(const CaptureStreamReader&) = delete;
  CaptureStreamReader& operator=(const CaptureStreamReader&) = delete;

  // Read newly appended bytes and append every newly completed record to
  // `out`. Returns the number of records appended. Throws on bytes that
  // can never become a valid capture (same conditions as read_capture).
  std::size_t poll(std::vector<CapturedFrame>& out);

  // True once the format sniff saw the pcap magic — available as soon as
  // the first 4 bytes arrive, long before a full pcap file header. Callers
  // that only accept JSONL journals (the monitor, whose detectors need the
  // exact ticks and ground truth pcap drops) use this to fail fast instead
  // of tailing a file that can never produce a record for them.
  bool pcap_detected() const { return format_ == Format::kPcap; }

  // File-level metadata, valid once header_ready().
  bool header_ready() const { return header_ready_; }
  bool has_params() const { return has_params_; }       // JSONL only
  const WifiParams& params() const { return params_; }
  int owner() const { return owner_; }                  // kNoAddr for pcap

  // JSONL footer seen: the capture is complete and end_time() is the
  // recorded horizon. pcap never finishes from the reader's viewpoint;
  // end_time() then tracks the latest frame end seen.
  bool finished() const { return finished_; }
  Time end_time() const { return end_time_; }

  // Skip-and-count statistics for unrecognised pcap records; the offset is
  // the first skipped record's absolute byte position in the file.
  std::int64_t skipped_unknown() const { return skipped_unknown_; }
  std::int64_t first_skipped_offset() const { return first_skipped_offset_; }

  // Buffered bytes not yet parsed into a record. Nonzero once the producer
  // has stopped writing means the file ends mid-record (truncated).
  std::size_t pending_bytes() const { return buf_.size(); }

  const std::string& path() const { return path_; }

 private:
  enum class Format { kUndetected, kPcap, kJsonl };

  std::size_t read_appended();
  std::size_t drain_pcap(std::vector<CapturedFrame>& out);
  std::size_t drain_jsonl(std::vector<CapturedFrame>& out);
  void compact(std::size_t consumed);

  std::string path_;
  std::FILE* file_ = nullptr;

  std::vector<std::uint8_t> buf_;   // unparsed bytes
  std::int64_t buf_offset_ = 0;     // absolute file offset of buf_[0]

  Format format_ = Format::kUndetected;
  bool header_ready_ = false;
  bool has_params_ = false;
  WifiParams params_;
  int owner_ = kNoAddr;
  bool finished_ = false;
  Time end_time_ = 0;
  Time last_event_ = 0;  // journal-order enforcement, as the one-shot reader
  std::int64_t skipped_unknown_ = 0;
  std::int64_t first_skipped_offset_ = -1;
};

}  // namespace g80211
