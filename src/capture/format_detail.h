// Record-level parsing internals shared by the one-shot readers
// (capture_reader.cc) and the incremental tail reader (capture_stream.cc).
//
// Not part of the public capture API: everything here lives in
// g80211::capture_detail and may change shape freely. The split exists so
// the two front-ends parse a record through literally the same code — the
// byte-exact round-trip guarantee and the monitor's tail mode cannot
// drift apart.
//
// The incremental contract: header/record readers return false when the
// buffered bytes end before the record does ("wait for more input"), and
// throw std::runtime_error only for bytes that can never become valid
// (bad magic, bad radiotap version, foreign MAC address, malformed JSON).
// A one-shot parser turns a trailing false into a "truncated" error; a
// tail reader turns it into a poll-again.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/capture/capture.h"

namespace g80211 {
namespace capture_detail {

[[noreturn]] void fail(const std::string& what);

// --- little-endian cursor with bounds checks ---------------------------------

struct ByteCursor {
  const std::vector<std::uint8_t>* bytes;
  std::size_t pos = 0;

  std::size_t remaining() const { return bytes->size() - pos; }
  void need(std::size_t n, const char* what) const {
    if (remaining() < n) fail(std::string("truncated ") + what);
  }
  std::uint8_t u8(const char* what);
  std::uint16_t u16(const char* what);
  std::uint32_t u32(const char* what);
};

// --- pcap --------------------------------------------------------------------

// Global pcap file header (magic/version/linktype). False: fewer than 24
// bytes available. Throws on anything that is not our pcap flavour.
bool parse_pcap_file_header(ByteCursor& c);

struct PcapRecordHeader {
  Time start = 0;           // nanosecond timestamp
  std::uint32_t incl = 0;   // captured bytes following the record header
  std::uint32_t orig = 0;   // original on-air length
};

// Record header + completeness check: false when the 16-byte header or the
// `incl` bytes after it are not fully buffered yet (cursor unmoved).
bool read_pcap_record(ByteCursor& c, PcapRecordHeader& h);

// Parse one record's radiotap + 802.11 bytes; the cursor sits right after
// the record header and is left at the record's end regardless of outcome.
// Returns false for an unrecognised record (unknown radiotap layout or
// frame type/subtype): skip-and-count, not an error.
bool parse_pcap_record_body(ByteCursor& c, const PcapRecordHeader& h,
                            CapturedFrame& f);

// --- jsonl -------------------------------------------------------------------

// Header line: validates the format marker/version and fills
// cap.owner/cap.params. Throws when the line is not a capture header.
void parse_jsonl_header(const std::string& line, Capture& cap);

enum class JsonlLine { kFrame, kFooter };

// One post-header journal line: a frame record (fills `f`) or the footer
// (fills `end_time`).
JsonlLine parse_jsonl_record(const std::string& line, CapturedFrame& f,
                             Time& end_time);

}  // namespace capture_detail
}  // namespace g80211
