// Offline GRC detection over a recorded capture (deterministic replay).
//
// Feeds a parsed JSONL capture through the same detector code a live run
// uses — NavValidator for inflated NAVs, SpoofDetector/RssiMonitor for
// spoofed ACKs, and a reconstruction of the fake-ACK probe bookkeeping —
// without instantiating a simulation. The capture is a journal of the MAC
// events at the vantage station in the order the live MAC saw them (own
// transmissions as they start, receptions as they end), so replay is a
// single in-order walk that advances a private Scheduler clock to each
// event and re-issues exactly the calls the live hooks made:
//
//   * sniffer chain  -> NavValidator::observe + RSSI profile learning,
//     for every reception (corrupted included, as live);
//   * nav_filter     -> NavValidator::validate, for every uncorrupted
//     reception not addressed to the vantage;
//   * ack_filter     -> SpoofDetector::should_ignore, for every
//     uncorrupted ACK addressed to the vantage that lands inside a
//     WaitAck window. Windows are reconstructed from the vantage's own
//     DATA transmissions: [tx end, tx end + ack_timeout), closed by the
//     first accepted ACK. The bound is strict (<) because at equal
//     timestamps the live ACK-timeout event fires before the ACK's
//     reception event (scheduler FIFO tie-break: the timeout was
//     scheduled first).
//
// The fake-ACK verdict re-derives the live detector's counters from the
// journal: a probe matures when `created + grace <= capture end`, a reply
// counts only when it lands strictly before maturity (same tie-break
// argument), and MAC loss is the retry fraction over the vantage's own
// DATA transmissions toward the destination — the identical estimator
// Mac::dest_counters feeds live.
//
// Guarantee (capture_test's equivalence suite): for a capture recorded at
// the station that ran the live detectors, replay reproduces the live
// detection counts exactly — same flagged stations, same counts. Known
// limitation: probes that were queued but never transmitted before the
// capture horizon are invisible to the journal, so the probes-seen count
// can trail the live probes-sent count at saturation (matured/replied
// bookkeeping, which drives the verdict, is unaffected for every probe
// that did reach the air).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/capture/capture.h"
#include "src/detect/backoff_monitor.h"
#include "src/sim/time.h"

namespace g80211 {

struct ReplayOptions {
  // NAV validation (paper Section VII-A).
  bool nav = true;
  Time nav_tolerance = microseconds(2);
  bool assume_fragmentation = false;

  // Spoofed-ACK detection (Section VII-B).
  bool spoof = true;
  double spoof_threshold_db = 1.0;
  // Mirrors SpoofDetector::recovery_enabled: when true an ignored ACK
  // leaves the WaitAck window open (the live MAC kept waiting and
  // retransmitted); when false a flagged ACK still closes the exchange.
  bool spoof_recovery = true;

  // Fake-ACK detection (Section VII-C).
  bool fake_ack = true;
  double fake_ack_threshold = 0.05;
  Time fake_ack_grace = seconds(1);

  // DOMINO-style backoff monitoring (the sender-side baseline). The medium
  // busy/idle edges the live channel_observer fed are reconstructed as the
  // union of the journalled frame spans; this is exact whenever colliding
  // frames share start and length (capture-invisible losers), the regime
  // the equivalence tests pin down.
  bool backoff = true;
  BackoffMonitor::Config backoff_cfg;

  // Cross-layer TCP/MAC correlation (Section VII-B, last paragraph). A TCP
  // retransmission shows up in the journal as a second DATA transmission
  // with the same (flow, pkt_seq) but a fresh pkt_uid (MAC retries keep the
  // uid); a MAC-acknowledged segment is one whose WaitAck window closed on
  // an accepted ACK.
  bool cross_layer = true;
  std::int64_t cross_layer_threshold = 5;
};

// Offline analog of FakeAckDetector's verdict toward one destination.
struct FakeAckVerdict {
  int dest = kNoAddr;
  std::int64_t probes_seen = 0;      // distinct probes that reached the air
  std::int64_t matured = 0;          // past the reply grace at capture end
  std::int64_t matured_replied = 0;  // replied strictly before maturing
  double mac_loss = 0.0;             // retry fraction toward dest
  double application_loss = 0.0;     // 1 - matured_replied/matured
  double expected_app_loss = 0.0;    // mac_loss^(long_retry_limit+1)
  bool detected = false;             // matured >= 20 and app > expected + thr

  bool operator==(const FakeAckVerdict&) const = default;
};

// Offline analog of BackoffMonitor's per-station judgement.
struct BackoffVerdict {
  int station = kNoAddr;
  double ewma_slots = -1.0;   // smoothed observed backoff, in slots
  std::int64_t samples = 0;   // attributed transmissions
  double tx_share = 0.0;      // fraction of all attributed transmissions
  bool flagged = false;

  bool operator==(const BackoffVerdict&) const = default;
};

// Offline analog of RssiMonitor's learned per-peer profile.
struct RssiProfile {
  int peer = kNoAddr;
  std::int64_t samples = 0;
  double median_dbm = 0.0;

  bool operator==(const RssiProfile&) const = default;
};

// Offline analog of CrossLayerDetector's per-flow verdict.
struct CrossLayerVerdict {
  int flow_id = 0;
  std::int64_t mac_acked = 0;   // distinct segments the MAC saw ACKed
  std::int64_t suspicious = 0;  // TCP retransmissions of MAC-acked segments
  bool detected = false;

  bool operator==(const CrossLayerVerdict&) const = default;
};

struct ReplayResult {
  // NAV validation at the vantage.
  std::int64_t nav_validated = 0;
  std::int64_t nav_detections = 0;
  std::map<int, std::int64_t> nav_detections_by_node;  // ground truth

  // Spoofed-ACK classification at the vantage.
  std::int64_t acks_checked = 0;
  std::int64_t acks_ignored = 0;
  std::int64_t spoof_tp = 0, spoof_fp = 0, spoof_tn = 0, spoof_fn = 0;
  std::int64_t spoof_flagged() const { return spoof_tp + spoof_fp; }

  std::vector<FakeAckVerdict> fake_ack;       // one per probed destination
  std::vector<BackoffVerdict> backoff;        // one per attributed station
  std::vector<RssiProfile> rssi;              // one per profiled peer
  std::vector<CrossLayerVerdict> cross_layer; // one per observed DATA flow

  bool operator==(const ReplayResult&) const = default;
};

// Replay `cap` through the offline detectors. Requires a JSONL-parsed
// capture (cap.has_params): the pcap format deliberately drops the exact
// ticks and ground truth the detectors' evaluation needs. Throws
// std::runtime_error otherwise.
ReplayResult replay_capture(const Capture& cap, const ReplayOptions& opts = {});

}  // namespace g80211
