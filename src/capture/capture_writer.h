// Streaming capture writers — see capture.h for the format contract.
//
// PcapWriter and JsonlWriter are pure serialisers over CapturedFrame;
// CaptureWriter is the live front end that taps a station's MAC (rx
// sniffer + tx sniffer) and streams every frame to both files as it
// happens, so a crashed run still leaves a usable capture up to the last
// frame.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "src/capture/capture.h"
#include "src/mac/mac.h"
#include "src/sim/scheduler.h"

namespace g80211 {

// --- pcap -------------------------------------------------------------------

class PcapWriter {
 public:
  PcapWriter() = default;
  ~PcapWriter() { close(); }
  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  // Opens `path` (truncating) and writes the global header. Throws
  // std::runtime_error when the file cannot be opened.
  void open(const std::string& path);
  bool is_open() const { return file_ != nullptr; }
  void write(const CapturedFrame& f);
  void close();

  // Serialisation primitives (also what the byte-exact round-trip test
  // exercises): the writer is exactly header + concat(records).
  static std::vector<std::uint8_t> serialize_header();
  static std::vector<std::uint8_t> serialize_record(const CapturedFrame& f);

 private:
  std::FILE* file_ = nullptr;
};

// --- jsonl ------------------------------------------------------------------

class JsonlWriter {
 public:
  JsonlWriter() = default;
  ~JsonlWriter() { close(); }
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  // Opens `path` and writes the header line. Throws on open failure.
  void open(const std::string& path, int owner, const WifiParams& params);
  bool is_open() const { return file_ != nullptr; }
  void write(const CapturedFrame& f);
  // Writes the footer line (capture horizon) and closes. A file without a
  // footer is treated as truncated by the reader.
  void close(Time end_time);
  void close() { close(0); }

  // Line-level serialisation primitives (shared with the round-trip test).
  static std::string header_line(int owner, const WifiParams& params);
  static std::string frame_line(const CapturedFrame& f);
  static std::string footer_line(Time end_time);

 private:
  std::FILE* file_ = nullptr;
};

// --- live front end ----------------------------------------------------------

// Records `<stem>.pcap` and `<stem>.jsonl` from one vantage station.
// attach() must be called exactly once, before the run; close() (or
// destruction) finalises both files at the scheduler's current time.
// Attaching chains onto the MAC's rx/tx sniffers and draws no randomness,
// so enabling a capture never perturbs the simulated run.
class CaptureWriter {
 public:
  CaptureWriter(Scheduler& sched, std::string stem)
      : sched_(&sched), stem_(std::move(stem)) {}
  ~CaptureWriter() { close(); }
  CaptureWriter(const CaptureWriter&) = delete;
  CaptureWriter& operator=(const CaptureWriter&) = delete;

  void attach(Mac& mac);
  void close();

  const std::string& stem() const { return stem_; }
  std::string pcap_path() const { return stem_ + ".pcap"; }
  std::string jsonl_path() const { return stem_ + ".jsonl"; }
  std::int64_t frames_written() const { return frames_; }

 private:
  void record(const CapturedFrame& f);

  Scheduler* sched_;
  std::string stem_;
  PcapWriter pcap_;
  JsonlWriter jsonl_;
  std::int64_t frames_ = 0;
  bool closed_ = false;
};

// Capture gate for campaigns: when G80211_CAPTURE=1 and G80211_METRICS_DIR
// is set, returns "<metrics_dir>/<figure>_<label>" with `label` sanitised
// for filesystem use; otherwise returns "" (capture disabled — benches pay
// nothing and their output stays bit-identical).
std::string run_capture_stem(const std::string& figure, const std::string& label);

}  // namespace g80211
