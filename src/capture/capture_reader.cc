#include "src/capture/capture_reader.h"

#include <cstdio>
#include <stdexcept>
#include <string>

#include "src/capture/format_detail.h"

namespace g80211 {

namespace {

using capture_detail::ByteCursor;
using capture_detail::fail;

std::vector<std::uint8_t> slurp_bytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) fail("cannot open " + path);
  std::vector<std::uint8_t> bytes;
  std::uint8_t buf[65536];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  std::fclose(f);
  return bytes;
}

}  // namespace

// --- pcap --------------------------------------------------------------------

Capture parse_pcap(const std::vector<std::uint8_t>& bytes) {
  ByteCursor c{&bytes};
  if (!capture_detail::parse_pcap_file_header(c)) {
    // Short file: re-run the checked field reads so the error names the
    // exact field the bytes ran out in (or the bad value before that).
    if (c.u32("pcap magic") != kPcapMagicNs) {
      fail("bad pcap magic (expected nanosecond-resolution little-endian pcap)");
    }
    const std::uint16_t vmaj = c.u16("pcap version");
    const std::uint16_t vmin = c.u16("pcap version");
    if (vmaj != kPcapVersionMajor || vmin != kPcapVersionMinor) {
      fail("unsupported pcap version");
    }
    c.u32("pcap header");
    c.u32("pcap header");
    c.u32("pcap header");
    c.u32("pcap linktype");
  }

  Capture cap;
  while (c.remaining() > 0) {
    capture_detail::PcapRecordHeader h;
    if (!capture_detail::read_pcap_record(c, h)) {
      // One-shot parse: an incomplete trailing record is a truncated file.
      if (c.remaining() < 16) fail("truncated pcap record header");
      fail("truncated pcap record data");
    }
    const std::size_t record_offset = c.pos - 16;
    CapturedFrame f;
    if (capture_detail::parse_pcap_record_body(c, h, f)) {
      if (f.end > cap.end_time) cap.end_time = f.end;
      cap.frames.push_back(f);
    } else {
      if (cap.skipped_unknown == 0) {
        cap.first_skipped_offset = static_cast<std::int64_t>(record_offset);
      }
      ++cap.skipped_unknown;
    }
  }
  return cap;
}

// --- jsonl -------------------------------------------------------------------

Capture parse_jsonl(const std::string& text) {
  Capture cap;
  cap.has_params = true;
  bool saw_header = false;
  bool saw_footer = false;
  Time last_event = 0;

  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string::npos) nl = text.size();
    const std::string line = text.substr(pos, nl - pos);
    pos = nl + 1;
    if (line.empty()) continue;
    if (saw_footer) fail("JSONL: content after footer");

    if (!saw_header) {
      capture_detail::parse_jsonl_header(line, cap);
      saw_header = true;
      continue;
    }

    CapturedFrame f;
    Time end_time = 0;
    if (capture_detail::parse_jsonl_record(line, f, end_time) ==
        capture_detail::JsonlLine::kFooter) {
      cap.end_time = end_time;
      saw_footer = true;
      continue;
    }
    // Records are journalled in MAC event order (tx at start, rx at end);
    // a regression means the file was corrupted or hand-reordered.
    if (f.event_time() < last_event) fail("JSONL: records out of order");
    last_event = f.event_time();
    cap.frames.push_back(f);
  }
  if (!saw_header) fail("JSONL: empty capture file");
  if (!saw_footer) fail("JSONL: truncated capture (missing footer)");
  return cap;
}

// --- file entry points --------------------------------------------------------

Capture read_pcap(const std::string& path) { return parse_pcap(slurp_bytes(path)); }

Capture read_jsonl(const std::string& path) {
  const std::vector<std::uint8_t> bytes = slurp_bytes(path);
  return parse_jsonl(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

Capture read_capture(const std::string& path) {
  const std::vector<std::uint8_t> bytes = slurp_bytes(path);
  if (bytes.size() >= 4) {
    const std::uint32_t magic =
        static_cast<std::uint32_t>(bytes[0]) |
        (static_cast<std::uint32_t>(bytes[1]) << 8) |
        (static_cast<std::uint32_t>(bytes[2]) << 16) |
        (static_cast<std::uint32_t>(bytes[3]) << 24);
    if (magic == kPcapMagicNs) return parse_pcap(bytes);
  }
  if (!bytes.empty() && bytes[0] == '{') {
    return parse_jsonl(
        std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
  }
  fail("unrecognised capture file " + path);
}

}  // namespace g80211
