// Capture parsing — the inverse of capture_writer.h.
//
// Strict by design: a malformed file (bad magic, truncated record, missing
// JSONL footer, foreign MAC address, out-of-order records) throws
// std::runtime_error with a message naming the defect. The one tolerated
// irregularity is an unrecognised pcap record (unknown radiotap layout or
// 802.11 type/subtype — e.g. a beacon from a real capture): such records
// are skipped and counted in Capture::skipped_unknown, so a reader can
// distinguish "clean" from "partially understood".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/capture/capture.h"

namespace g80211 {

// Parse a pcap byte stream / JSONL text (in-memory; the file readers and
// the round-trip tests share these).
Capture parse_pcap(const std::vector<std::uint8_t>& bytes);
Capture parse_jsonl(const std::string& text);

// Read and parse a capture file. read_capture() dispatches on content: the
// pcap magic selects the pcap parser, a leading '{' the JSONL parser.
Capture read_pcap(const std::string& path);
Capture read_jsonl(const std::string& path);
Capture read_capture(const std::string& path);

}  // namespace g80211
