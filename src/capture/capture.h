// Frame captures: the simulator's tcpdump.
//
// A capture is the complete frame stream at one vantage station — every
// frame its radio decoded (including corrupted ones, FCS-bad) plus every
// frame it keyed onto the air itself — recorded in two formats at once:
//
//  * `<stem>.pcap` — a standard pcap file (nanosecond timestamps, linktype
//    IEEE802_11_RADIOTAP) with a minimal radiotap header (flags, rate,
//    dBm antenna signal) and real 802.11 MAC headers, so Wireshark/tshark
//    open it directly. Node ids map to locally-administered MAC addresses
//    02:80:02:11:hh:ll. The pcap is faithful to what a monitor-mode NIC
//    would log, which also means it is lossy exactly where real captures
//    are: CTS/ACK frames carry no transmitter address, Duration is
//    quantised to microseconds, RSSI to whole dBm, and reception end times
//    and simulator ground truth are absent.
//
//  * `<stem>.jsonl` — a lossless frame journal: one JSON object per frame
//    with exact nanosecond ticks, node ids, the ground-truth transmitter,
//    collision flags and DATA payload identity, bracketed by a header line
//    carrying the capture owner and full WifiParams (so a reader needs
//    nothing but the file) and a footer carrying the capture horizon.
//    This is the format the offline replay pipeline (replay.h) consumes.
//
// CaptureWriter streams both; CaptureReader parses either back into the
// same CapturedFrame structs. Round-trip guarantee: serialising a parsed
// capture again reproduces the input byte-for-byte (each format is a pure,
// idempotent function of the fields it preserves).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/mac/frame.h"
#include "src/phy/wifi_params.h"
#include "src/sim/time.h"

namespace g80211 {

// --- pcap / radiotap format constants --------------------------------------

// Nanosecond-resolution pcap magic (host-endian write; readers of either
// endianness recognise it byte-swapped — ours requires the LE layout we
// write).
inline constexpr std::uint32_t kPcapMagicNs = 0xa1b23c4d;
inline constexpr std::uint16_t kPcapVersionMajor = 2;
inline constexpr std::uint16_t kPcapVersionMinor = 4;
inline constexpr std::uint32_t kPcapSnapLen = 65535;
inline constexpr std::uint32_t kLinktypeRadiotap = 127;  // LINKTYPE_IEEE802_11_RADIOTAP

// Minimal radiotap header: version(1) pad(1) len(2) present(4) +
// flags(1) rate(1) antsignal(1) = 11 bytes.
inline constexpr std::size_t kRadiotapLen = 11;
inline constexpr std::uint32_t kRadiotapPresent =
    (1u << 1) | (1u << 2) | (1u << 5);  // Flags | Rate | dBm antenna signal
inline constexpr std::uint8_t kRadiotapFlagBadFcs = 0x40;

// 802.11 Frame Control bytes (protocol version 0).
inline constexpr std::uint8_t kFcRts = 0xB4;
inline constexpr std::uint8_t kFcCts = 0xC4;
inline constexpr std::uint8_t kFcAck = 0xD4;
inline constexpr std::uint8_t kFcData = 0x08;
// Frame Control flags byte (second byte).
inline constexpr std::uint8_t kFcFlagMoreFrags = 0x04;
inline constexpr std::uint8_t kFcFlagRetry = 0x08;

// MAC header lengths we serialise (no payload bytes are captured; the
// original on-air length lives in the pcap record's orig_len).
inline constexpr std::size_t kHdrLenRts = 16;   // FC dur RA TA
inline constexpr std::size_t kHdrLenCtsAck = 10;  // FC dur RA
inline constexpr std::size_t kHdrLenData = 24;  // FC dur A1 A2 A3 seqctl

// Node-id <-> MAC address mapping: 02:80:02:11:hh:ll (locally
// administered), ff:ff:ff:ff:ff:ff for kBroadcast.
inline constexpr std::uint8_t kMacOui[4] = {0x02, 0x80, 0x02, 0x11};

// --- JSONL format constants -------------------------------------------------

inline constexpr int kJsonlFormatVersion = 1;
inline constexpr const char* kJsonlHeaderKey = "g80211_capture";
inline constexpr const char* kJsonlFooterKey = "g80211_capture_end";

// --- parsed representation ---------------------------------------------------

// One frame as seen at the vantage station. `tx` records are the station's
// own transmissions (tapped at the radio, so timing is exact); everything
// else arrived over the air. Fields the pcap format cannot represent are
// documented inline; they survive only through the JSONL journal.
struct CapturedFrame {
  Time start = 0;  // first bit on air
  Time end = 0;    // last bit on air (jsonl only; == start from pcap)
  FrameType type = FrameType::kData;
  int ta = kNoAddr;       // kNoAddr on CTS/ACK, as on air
  int ra = kNoAddr;
  int true_tx = kNoAddr;  // ground truth (jsonl only)
  Time duration = 0;      // NAV field (pcap quantises to whole us)
  int seq = 0;            // DATA only in pcap (control frames carry none)
  int frag = 0;
  bool more_frags = false;
  bool retry = false;
  bool corrupted = false;  // FCS-bad in pcap
  bool collided = false;   // corruption cause was overlap (jsonl only)
  bool tx = false;         // own transmission (jsonl only)
  double rssi_dbm = 0.0;   // 0 on tx records; pcap quantises to whole dBm
  int bytes = 0;           // on-air MAC length incl. FCS
  double rate_mbps = 0.0;  // PHY rate (pcap quantises to 0.5 Mbps)

  // DATA payload identity (jsonl only; pcap carries no payload bytes).
  int flow_id = 0;
  std::int64_t pkt_seq = 0;
  std::uint64_t pkt_uid = 0;
  int src_node = -1;
  int dst_node = -1;
  Time pkt_created = 0;
  bool probe = false;
  bool probe_reply = false;

  // When this frame's record was emitted at the vantage: transmissions are
  // tapped as they start, receptions delivered when they end. Replay walks
  // records in this order — it is the order the live MAC saw events.
  Time event_time() const { return tx ? start : end; }

  bool operator==(const CapturedFrame&) const = default;
};

// A parsed capture file.
struct Capture {
  int owner = kNoAddr;       // vantage station MAC id (jsonl only)
  WifiParams params;         // from the jsonl header
  bool has_params = false;   // false for pcap (pcap carries no params)
  Time end_time = 0;         // capture horizon (jsonl footer; last frame end
                             // for pcap)
  std::vector<CapturedFrame> frames;
  // Skip-and-count statistics for unrecognised pcap records (unknown
  // radiotap layout or 802.11 type/subtype — e.g. beacons from a real
  // capture). The first offending record's byte offset in the file lets a
  // user jump straight to it in a hex dump / Wireshark.
  std::int64_t skipped_unknown = 0;
  std::int64_t first_skipped_offset = -1;  // -1: nothing was skipped
};

}  // namespace g80211
