#include "src/capture/replay.h"

#include <cmath>
#include <stdexcept>

#include "src/detect/nav_validator.h"
#include "src/detect/spoof_detector.h"
#include "src/sim/scheduler.h"

namespace g80211 {

namespace {

// Rebuild the Frame/RxInfo pair the live hooks were handed. `frag_bytes`
// carries the payload share so Frame::air_bytes() reports the journalled
// on-air length (NavValidator sizes fragment bounds from it).
Frame to_frame(const CapturedFrame& r, const WifiParams& p) {
  Frame f;
  f.type = r.type;
  f.duration = r.duration;
  f.ra = r.ra;
  f.ta = r.ta;
  f.true_tx = r.true_tx;
  f.retry = r.retry;
  f.seq = r.seq;
  f.frag_index = r.frag;
  f.more_frags = r.more_frags;
  if (r.type == FrameType::kData && r.bytes > p.data_mac_overhead_bytes) {
    f.frag_bytes = r.bytes - p.data_mac_overhead_bytes;
  }
  return f;
}

RxInfo to_info(const CapturedFrame& r) {
  RxInfo i;
  i.rssi_dbm = r.rssi_dbm;
  i.corrupted = r.corrupted;
  i.collided = r.collided;
  i.start = r.start;
  i.end = r.end;
  return i;
}

// Fake-ACK probe bookkeeping, reconstructed per probed destination.
struct ProbeLedger {
  std::map<std::int64_t, Time> created;    // probe seq -> emission time
  std::map<std::int64_t, Time> reply_end;  // probe seq -> earliest reply rx end
};

}  // namespace

ReplayResult replay_capture(const Capture& cap, const ReplayOptions& opts) {
  if (!cap.has_params) {
    throw std::runtime_error(
        "replay: capture lacks simulation parameters (replay needs the JSONL "
        "journal; pcap drops exact ticks and ground truth)");
  }
  const WifiParams& params = cap.params;
  const int owner = cap.owner;

  // A private clock the detectors read through Scheduler::now(): advanced
  // (never rewound) to each record's live callback time.
  Scheduler sched;
  NavValidator nav(sched, params);
  nav.tolerance = opts.nav_tolerance;
  nav.assume_fragmentation = opts.assume_fragmentation;
  SpoofDetector spoof(opts.spoof_threshold_db);

  ReplayResult res;

  // WaitAck window reconstructed from the vantage's own DATA transmissions.
  Time wait_deadline = kNever;
  bool waiting = false;
  int wait_dest = kNoAddr;

  // Per-destination DATA transmission counters (Mac::DestCounters analog).
  std::map<int, std::int64_t> tx_attempts, tx_retries;
  std::map<int, ProbeLedger> probes;

  for (const CapturedFrame& r : cap.frames) {
    if (r.event_time() > sched.now()) sched.run_until(r.event_time());

    if (r.tx) {
      if (r.type != FrameType::kData) continue;
      ++tx_attempts[r.ra];
      if (r.retry) ++tx_retries[r.ra];
      if (r.ra != kBroadcast) {
        // The live MAC enters WaitAck when the DATA transmission ends and
        // arms ack_timeout() from there.
        waiting = true;
        wait_dest = r.ra;
        wait_deadline = r.end + params.ack_timeout();
      }
      if (opts.fake_ack && r.probe && !r.probe_reply) {
        // Retransmissions share the packet's creation time; record once.
        probes[r.dst_node].created.emplace(r.pkt_seq, r.pkt_created);
      }
      continue;
    }

    // --- reception: replay the live hook sequence ---------------------------

    const Frame frame = to_frame(r, params);
    const RxInfo info = to_info(r);

    // 1. Sniffer chain: NAV exchange context + RSSI profile learning. Both
    //    see every reception; each applies its own corruption filter.
    if (opts.nav) nav.observe(frame, info);
    if (opts.spoof && !r.corrupted && r.ta != kNoAddr &&
        (r.type == FrameType::kRts || r.type == FrameType::kData)) {
      spoof.monitor().add_sample(r.ta, r.rssi_dbm);
    }

    if (r.corrupted) continue;  // the live MAC stops at EIFS deference here

    // 2. nav_filter: frames not addressed to the vantage update its NAV.
    if (opts.nav && r.ra != owner) nav.validate(frame, info);

    // 3. ack_filter: ACKs addressed to the vantage inside the WaitAck
    //    window. Strict bound: an ACK landing exactly at the deadline lost
    //    the live tie-break to the timeout event.
    if (r.type == FrameType::kAck && r.ra == owner && waiting &&
        r.end < wait_deadline) {
      ++res.acks_checked;
      const bool ignore = opts.spoof && spoof.should_ignore(wait_dest, r.rssi_dbm);
      const bool actually_spoofed = r.true_tx != wait_dest;  // ground truth
      if (ignore) {
        ++(actually_spoofed ? res.spoof_tp : res.spoof_fp);
      } else {
        ++(actually_spoofed ? res.spoof_fn : res.spoof_tn);
      }
      if (ignore && opts.spoof_recovery) {
        ++res.acks_ignored;  // window stays open; the live MAC retransmitted
      } else {
        waiting = false;  // exchange completed
      }
    }

    // 4. Upper-layer delivery: probe replies reaching the vantage. The
    //    earliest uncorrupted copy is the one MAC dedup let through.
    if (opts.fake_ack && r.type == FrameType::kData && r.ra == owner &&
        r.probe && r.probe_reply) {
      auto& ledger = probes[r.src_node];
      const auto it = ledger.reply_end.find(r.pkt_seq);
      if (it == ledger.reply_end.end() || r.end < it->second) {
        ledger.reply_end[r.pkt_seq] = r.end;
      }
    }
  }

  res.nav_validated = nav.frames_validated();
  res.nav_detections = nav.detections();
  res.nav_detections_by_node = nav.detections_by_node();

  if (opts.fake_ack) {
    for (const auto& [dest, ledger] : probes) {
      FakeAckVerdict v;
      v.dest = dest;
      v.probes_seen = static_cast<std::int64_t>(ledger.created.size());
      for (const auto& [seq, created] : ledger.created) {
        // Maturity fires when created + grace <= capture horizon (the
        // maturity event runs before run_until() stops at the horizon);
        // the reply must land strictly earlier (it was scheduled later,
        // so it loses the equal-timestamp tie-break).
        if (created + opts.fake_ack_grace > cap.end_time) continue;
        ++v.matured;
        const auto it = ledger.reply_end.find(seq);
        if (it != ledger.reply_end.end() &&
            it->second < created + opts.fake_ack_grace) {
          ++v.matured_replied;
        }
      }
      const auto at = tx_attempts.find(dest);
      const std::int64_t attempts = at != tx_attempts.end() ? at->second : 0;
      const auto rt = tx_retries.find(dest);
      const std::int64_t retries = rt != tx_retries.end() ? rt->second : 0;
      v.mac_loss = attempts == 0 ? 0.0
                                 : static_cast<double>(retries) /
                                       static_cast<double>(attempts);
      v.application_loss =
          v.matured == 0 ? 0.0
                         : 1.0 - static_cast<double>(v.matured_replied) /
                                     static_cast<double>(v.matured);
      v.expected_app_loss =
          std::pow(v.mac_loss, params.long_retry_limit + 1);
      v.detected = v.matured >= 20 &&
                   v.application_loss >
                       v.expected_app_loss + opts.fake_ack_threshold;
      res.fake_ack.push_back(v);
    }
  }

  return res;
}

}  // namespace g80211
