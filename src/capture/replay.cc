#include "src/capture/replay.h"

#include <stdexcept>

#include "src/capture/replay_engine.h"

namespace g80211 {

ReplayResult replay_capture(const Capture& cap, const ReplayOptions& opts) {
  if (!cap.has_params) {
    throw std::runtime_error(
        "replay: capture lacks simulation parameters (replay needs the JSONL "
        "journal; pcap drops exact ticks and ground truth)");
  }
  ReplayEngine engine(cap.params, cap.owner, opts);
  for (const CapturedFrame& r : cap.frames) engine.step(r);
  return engine.result(cap.end_time);
}

}  // namespace g80211
