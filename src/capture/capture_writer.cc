#include "src/capture/capture_writer.h"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "src/mac/durations.h"
#include "src/runner/metric_sink.h"

namespace g80211 {

namespace {

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 24) & 0xff));
}

// Node id -> 802.11 address bytes (see capture.h for the mapping).
void put_addr(std::vector<std::uint8_t>& out, int id) {
  if (id == kBroadcast) {
    for (int i = 0; i < 6; ++i) out.push_back(0xff);
    return;
  }
  const auto u = static_cast<std::uint16_t>(id);
  out.push_back(kMacOui[0]);
  out.push_back(kMacOui[1]);
  out.push_back(kMacOui[2]);
  out.push_back(kMacOui[3]);
  out.push_back(static_cast<std::uint8_t>(u >> 8));
  out.push_back(static_cast<std::uint8_t>(u & 0xff));
}

std::uint16_t duration_us(Time d) {
  if (d <= 0) return 0;
  const Time us = (d + 500) / 1000;  // round to the nearest microsecond
  return us > 0xffff ? 0xffff : static_cast<std::uint16_t>(us);
}

std::uint8_t rate_half_mbps(double mbps) {
  const double v = std::lround(mbps * 2.0);
  if (v < 0) return 0;
  if (v > 255) return 255;
  return static_cast<std::uint8_t>(v);
}

std::int8_t rssi_s8(double dbm) {
  const long v = std::lround(dbm);
  if (v < -128) return -128;
  if (v > 127) return 127;
  return static_cast<std::int8_t>(v);
}

std::size_t mac_header_len(FrameType t) {
  switch (t) {
    case FrameType::kRts: return kHdrLenRts;
    case FrameType::kCts:
    case FrameType::kAck: return kHdrLenCtsAck;
    case FrameType::kData: return kHdrLenData;
  }
  return 0;
}

void fwrite_all(std::FILE* f, const std::vector<std::uint8_t>& bytes) {
  if (!bytes.empty()) std::fwrite(bytes.data(), 1, bytes.size(), f);
}

}  // namespace

// --- PcapWriter --------------------------------------------------------------

std::vector<std::uint8_t> PcapWriter::serialize_header() {
  std::vector<std::uint8_t> out;
  out.reserve(24);
  put_u32(out, kPcapMagicNs);
  put_u16(out, kPcapVersionMajor);
  put_u16(out, kPcapVersionMinor);
  put_u32(out, 0);  // thiszone
  put_u32(out, 0);  // sigfigs
  put_u32(out, kPcapSnapLen);
  put_u32(out, kLinktypeRadiotap);
  return out;
}

std::vector<std::uint8_t> PcapWriter::serialize_record(const CapturedFrame& f) {
  std::vector<std::uint8_t> out;
  const std::size_t hdr_len = mac_header_len(f.type);
  const std::uint32_t incl = static_cast<std::uint32_t>(kRadiotapLen + hdr_len);
  // orig_len: radiotap pseudo-header plus the full on-air MAC length (we
  // capture headers only, like `tcpdump -s <hdr>`).
  const std::uint32_t orig =
      static_cast<std::uint32_t>(kRadiotapLen) +
      static_cast<std::uint32_t>(f.bytes > 0 ? f.bytes : 0);
  out.reserve(16 + incl);

  // Record header. Timestamps are the frame's first bit on air.
  put_u32(out, static_cast<std::uint32_t>(f.start / 1000000000));
  put_u32(out, static_cast<std::uint32_t>(f.start % 1000000000));
  put_u32(out, incl);
  put_u32(out, orig < incl ? incl : orig);

  // Radiotap.
  out.push_back(0);  // version
  out.push_back(0);  // pad
  put_u16(out, static_cast<std::uint16_t>(kRadiotapLen));
  put_u32(out, kRadiotapPresent);
  out.push_back(f.corrupted ? kRadiotapFlagBadFcs : 0);  // Flags
  out.push_back(rate_half_mbps(f.rate_mbps));            // Rate
  out.push_back(static_cast<std::uint8_t>(rssi_s8(f.rssi_dbm)));  // dBm signal

  // 802.11 MAC header.
  const std::uint8_t fc_flags =
      static_cast<std::uint8_t>((f.retry ? kFcFlagRetry : 0) |
                                (f.more_frags ? kFcFlagMoreFrags : 0));
  switch (f.type) {
    case FrameType::kRts:
      out.push_back(kFcRts);
      out.push_back(fc_flags);
      put_u16(out, duration_us(f.duration));
      put_addr(out, f.ra);
      put_addr(out, f.ta);
      break;
    case FrameType::kCts:
    case FrameType::kAck:
      out.push_back(f.type == FrameType::kCts ? kFcCts : kFcAck);
      out.push_back(fc_flags);
      put_u16(out, duration_us(f.duration));
      put_addr(out, f.ra);
      break;
    case FrameType::kData: {
      out.push_back(kFcData);
      out.push_back(fc_flags);
      put_u16(out, duration_us(f.duration));
      put_addr(out, f.ra);  // addr1 = RA
      put_addr(out, f.ta);  // addr2 = TA
      put_addr(out, f.ta);  // addr3 = BSSID stand-in
      const std::uint16_t seqctl = static_cast<std::uint16_t>(
          ((static_cast<unsigned>(f.seq) & 0xfff) << 4) |
          (static_cast<unsigned>(f.frag) & 0xf));
      put_u16(out, seqctl);
      break;
    }
  }
  return out;
}

void PcapWriter::open(const std::string& path) {
  close();
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) throw std::runtime_error("PcapWriter: cannot open " + path);
  fwrite_all(file_, serialize_header());
}

void PcapWriter::write(const CapturedFrame& f) {
  if (!file_) return;
  fwrite_all(file_, serialize_record(f));
}

void PcapWriter::close() {
  if (file_) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

// --- JsonlWriter -------------------------------------------------------------

std::string JsonlWriter::header_line(int owner, const WifiParams& p) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"%s\":%d,\"owner\":%d,\"standard\":%d,\"slot\":%lld,\"sifs\":%lld,"
      "\"difs\":%lld,\"plcp\":%lld,\"data_rate_mbps\":%.17g,"
      "\"basic_rate_mbps\":%.17g,\"cw_min\":%d,\"cw_max\":%d,"
      "\"short_retry_limit\":%d,\"long_retry_limit\":%d,\"rts_bytes\":%d,"
      "\"cts_bytes\":%d,\"ack_bytes\":%d,\"data_mac_overhead_bytes\":%d}",
      kJsonlHeaderKey, kJsonlFormatVersion, owner, static_cast<int>(p.standard),
      static_cast<long long>(p.slot), static_cast<long long>(p.sifs),
      static_cast<long long>(p.difs), static_cast<long long>(p.plcp),
      p.data_rate_mbps, p.basic_rate_mbps, p.cw_min, p.cw_max,
      p.short_retry_limit, p.long_retry_limit, p.rts_bytes, p.cts_bytes,
      p.ack_bytes, p.data_mac_overhead_bytes);
  return buf;
}

std::string JsonlWriter::frame_line(const CapturedFrame& f) {
  char buf[768];
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"t\":\"%s\",\"s\":%lld,\"e\":%lld,\"d\":%lld,\"ta\":%d,\"ra\":%d,"
      "\"tt\":%d,\"sq\":%d,\"fg\":%d,\"mf\":%d,\"r\":%d,\"c\":%d,\"cl\":%d,"
      "\"tx\":%d,\"rssi\":%.17g,\"len\":%d,\"rate\":%.17g",
      frame_type_name(f.type), static_cast<long long>(f.start),
      static_cast<long long>(f.end), static_cast<long long>(f.duration), f.ta,
      f.ra, f.true_tx, f.seq, f.frag, f.more_frags ? 1 : 0, f.retry ? 1 : 0,
      f.corrupted ? 1 : 0, f.collided ? 1 : 0, f.tx ? 1 : 0, f.rssi_dbm,
      f.bytes, f.rate_mbps);
  std::string line(buf, static_cast<std::size_t>(n));
  if (f.type == FrameType::kData) {
    n = std::snprintf(
        buf, sizeof(buf),
        ",\"fl\":%d,\"ps\":%lld,\"pu\":%llu,\"sn\":%d,\"dn\":%d,\"cr\":%lld,"
        "\"pr\":%d",
        f.flow_id, static_cast<long long>(f.pkt_seq),
        static_cast<unsigned long long>(f.pkt_uid), f.src_node, f.dst_node,
        static_cast<long long>(f.pkt_created),
        f.probe ? (f.probe_reply ? 2 : 1) : 0);
    line.append(buf, static_cast<std::size_t>(n));
  }
  line += '}';
  return line;
}

std::string JsonlWriter::footer_line(Time end_time) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "{\"%s\":%lld}", kJsonlFooterKey,
                static_cast<long long>(end_time));
  return buf;
}

void JsonlWriter::open(const std::string& path, int owner,
                       const WifiParams& params) {
  close();
  file_ = std::fopen(path.c_str(), "wb");
  if (!file_) throw std::runtime_error("JsonlWriter: cannot open " + path);
  const std::string hdr = header_line(owner, params);
  std::fprintf(file_, "%s\n", hdr.c_str());
}

void JsonlWriter::write(const CapturedFrame& f) {
  if (!file_) return;
  const std::string line = frame_line(f);
  std::fprintf(file_, "%s\n", line.c_str());
}

void JsonlWriter::close(Time end_time) {
  if (!file_) return;
  const std::string ftr = footer_line(end_time);
  std::fprintf(file_, "%s\n", ftr.c_str());
  std::fclose(file_);
  file_ = nullptr;
}

// --- CaptureWriter -----------------------------------------------------------

void CaptureWriter::attach(Mac& mac) {
  const WifiParams params = mac.params();
  pcap_.open(pcap_path());
  jsonl_.open(jsonl_path(), mac.id(), params);

  // Receive side: everything the radio decoded, corrupted frames included.
  auto prev_rx = std::move(mac.sniffer);
  mac.sniffer = [this, params, prev = std::move(prev_rx)](const Frame& f,
                                                          const RxInfo& i) {
    if (prev) prev(f, i);
    CapturedFrame r;
    r.start = i.start;
    r.end = i.end;
    r.type = f.type;
    r.ta = f.ta;
    r.ra = f.ra;
    r.true_tx = f.true_tx;
    r.duration = f.duration;
    r.seq = f.seq;
    r.frag = f.frag_index;
    r.more_frags = f.more_frags;
    r.retry = f.retry;
    r.corrupted = i.corrupted;
    r.collided = i.collided;
    r.rssi_dbm = i.rssi_dbm;
    r.bytes = on_air_bytes(params, f);
    r.rate_mbps = f.type == FrameType::kData
                      ? (f.rate_mbps > 0 ? f.rate_mbps : params.data_rate_mbps)
                      : params.basic_rate_mbps;
    if (f.type == FrameType::kData && f.packet) {
      r.flow_id = f.packet->flow_id;
      r.pkt_seq = f.packet->seq;
      r.pkt_uid = f.packet->uid;
      r.src_node = f.packet->src_node;
      r.dst_node = f.packet->dst_node;
      r.pkt_created = f.packet->created;
      r.probe = f.packet->is_probe;
      r.probe_reply = f.packet->probe_reply;
    }
    record(r);
  };

  // Transmit side: everything this station keys onto the air. `true_tx` is
  // the station itself; there is no received signal, so RSSI stays 0.
  auto prev_tx = std::move(mac.tx_sniffer);
  const int self = mac.id();
  mac.tx_sniffer = [this, params, self, prev = std::move(prev_tx)](
                       const Frame& f, Time start, Time end) {
    if (prev) prev(f, start, end);
    CapturedFrame r;
    r.start = start;
    r.end = end;
    r.type = f.type;
    r.ta = f.ta;
    r.ra = f.ra;
    r.true_tx = self;
    r.duration = f.duration;
    r.seq = f.seq;
    r.frag = f.frag_index;
    r.more_frags = f.more_frags;
    r.retry = f.retry;
    r.tx = true;
    r.bytes = on_air_bytes(params, f);
    r.rate_mbps = f.type == FrameType::kData
                      ? (f.rate_mbps > 0 ? f.rate_mbps : params.data_rate_mbps)
                      : params.basic_rate_mbps;
    if (f.type == FrameType::kData && f.packet) {
      r.flow_id = f.packet->flow_id;
      r.pkt_seq = f.packet->seq;
      r.pkt_uid = f.packet->uid;
      r.src_node = f.packet->src_node;
      r.dst_node = f.packet->dst_node;
      r.pkt_created = f.packet->created;
      r.probe = f.packet->is_probe;
      r.probe_reply = f.packet->probe_reply;
    }
    record(r);
  };
}

void CaptureWriter::record(const CapturedFrame& f) {
  pcap_.write(f);
  jsonl_.write(f);
  ++frames_;
}

void CaptureWriter::close() {
  if (closed_) return;
  closed_ = true;
  pcap_.close();
  jsonl_.close(sched_->now());
}

// --- campaign gate -----------------------------------------------------------

std::string run_capture_stem(const std::string& figure,
                             const std::string& label) {
  const char* enabled = std::getenv("G80211_CAPTURE");
  if (!enabled || std::string(enabled) != "1") return "";
  const std::string dir = metrics_dir();
  if (dir.empty()) return "";
  // Campaign jobs open captures before MetricSink (created at aggregation
  // time) makes the export directory; failure falls through to the
  // writer's own cannot-open error.
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  std::string stem = dir + "/" + figure + "_";
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_';
    stem += ok ? c : '_';
  }
  return stem;
}

}  // namespace g80211
