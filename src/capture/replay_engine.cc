#include "src/capture/replay_engine.h"

#include <cmath>

namespace g80211 {

namespace {

// Rebuild the Frame/RxInfo pair the live hooks were handed. `frag_bytes`
// carries the payload share so Frame::air_bytes() reports the journalled
// on-air length (NavValidator sizes fragment bounds from it).
Frame to_frame(const CapturedFrame& r, const WifiParams& p) {
  Frame f;
  f.type = r.type;
  f.duration = r.duration;
  f.ra = r.ra;
  f.ta = r.ta;
  f.true_tx = r.true_tx;
  f.retry = r.retry;
  f.seq = r.seq;
  f.frag_index = r.frag;
  f.more_frags = r.more_frags;
  if (r.type == FrameType::kData && r.bytes > p.data_mac_overhead_bytes) {
    f.frag_bytes = r.bytes - p.data_mac_overhead_bytes;
  }
  return f;
}

RxInfo to_info(const CapturedFrame& r) {
  RxInfo i;
  i.rssi_dbm = r.rssi_dbm;
  i.corrupted = r.corrupted;
  i.collided = r.collided;
  i.start = r.start;
  i.end = r.end;
  return i;
}

}  // namespace

ReplayEngine::ReplayEngine(const WifiParams& params, int owner,
                           ReplayOptions opts)
    : params_(params),
      owner_(owner),
      opts_(opts),
      nav_(Clock(clock_src_), params_),
      spoof_(opts_.spoof_threshold_db),
      backoff_(Clock(clock_src_), params_, opts_.backoff_cfg) {
  nav_.tolerance = opts_.nav_tolerance;
  nav_.assume_fragmentation = opts_.assume_fragmentation;
}

ReplayEngine::FlowXLayer& ReplayEngine::xlayer(int flow_id) {
  auto it = xlayer_.find(flow_id);
  if (it == xlayer_.end()) {
    it = xlayer_.try_emplace(flow_id, opts_.cross_layer_threshold).first;
  }
  return it->second;
}

void ReplayEngine::step(const CapturedFrame& r) {
  // Medium reconstruction: the union of journalled frame spans. A record
  // starting strictly after everything heard so far means the medium went
  // idle at busy_until_ — replay that edge at its own time, before this
  // record's event advances the clock past it.
  if (opts_.backoff) {
    if (have_busy_ && r.start > busy_until_) {
      clock_src_.advance_to(busy_until_);
      backoff_.on_edge(false);
    }
    if (!have_busy_ || r.end > busy_until_) busy_until_ = r.end;
    have_busy_ = true;
  }

  // The detectors' clock: advanced (never rewound) to each record's live
  // callback time.
  clock_src_.advance_to(r.event_time());

  if (r.tx) {
    if (r.type != FrameType::kData) return;
    ++tx_attempts_[r.ra];
    if (r.retry) ++tx_retries_[r.ra];
    if (r.ra != kBroadcast) {
      // The live MAC enters WaitAck when the DATA transmission ends and
      // arms ack_timeout() from there.
      waiting_ = true;
      wait_dest_ = r.ra;
      wait_deadline_ = r.end + params_.ack_timeout();
      wait_flow_ = r.flow_id;
      wait_seq_ = r.pkt_seq;
      wait_probe_ = r.probe;
    }
    if (opts_.fake_ack && r.probe && !r.probe_reply) {
      // Retransmissions share the packet's creation time; record once.
      probes_[r.dst_node].created.emplace(r.pkt_seq, r.pkt_created);
    }
    if (opts_.cross_layer && !r.probe && r.flow_id > 0) {
      // A second transmission of the same segment under a fresh pkt_uid is
      // a TCP-level retransmission (MAC retries keep the uid). The journal
      // shows it at air time, after the original's MAC outcome — the same
      // order the live RTO fires in.
      FlowXLayer& fx = xlayer(r.flow_id);
      const auto [it, inserted] = fx.first_uid.emplace(r.pkt_seq, r.pkt_uid);
      if (!inserted && it->second != r.pkt_uid &&
          fx.counted_uids.insert(r.pkt_uid).second) {
        fx.det.on_tcp_retransmit(r.pkt_seq);
      }
    }
    return;
  }

  // --- reception: replay the live hook sequence ---------------------------

  const Frame frame = to_frame(r, params_);
  const RxInfo info = to_info(r);

  // 1. Sniffer chain: NAV exchange context, RSSI profile learning, backoff
  //    attribution. All see every reception; each applies its own
  //    corruption filter.
  if (opts_.nav) nav_.observe(frame, info);
  if (opts_.spoof && !r.corrupted && r.ta != kNoAddr &&
      (r.type == FrameType::kRts || r.type == FrameType::kData)) {
    spoof_.monitor().add_sample(r.ta, r.rssi_dbm);
  }
  if (opts_.backoff) backoff_.on_frame(frame, info);

  if (r.corrupted) return;  // the live MAC stops at EIFS deference here

  // 2. nav_filter: frames not addressed to the vantage update its NAV.
  if (opts_.nav && r.ra != owner_) nav_.validate(frame, info);

  // 3. ack_filter: ACKs addressed to the vantage inside the WaitAck
  //    window. Strict bound: an ACK landing exactly at the deadline lost
  //    the live tie-break to the timeout event.
  if (r.type == FrameType::kAck && r.ra == owner_ && waiting_ &&
      r.end < wait_deadline_) {
    ++acks_checked_;
    const bool ignore =
        opts_.spoof && spoof_.should_ignore(wait_dest_, r.rssi_dbm);
    const bool actually_spoofed = r.true_tx != wait_dest_;  // ground truth
    if (ignore) {
      ++(actually_spoofed ? spoof_tp_ : spoof_fp_);
    } else {
      ++(actually_spoofed ? spoof_fn_ : spoof_tn_);
    }
    if (ignore && opts_.spoof_recovery) {
      ++acks_ignored_;  // window stays open; the live MAC retransmitted
    } else {
      waiting_ = false;  // exchange completed
      // The live tx_done_cb fires with acked=true here: the segment that
      // opened this window was delivered at the MAC.
      if (opts_.cross_layer && wait_flow_ > 0 && !wait_probe_) {
        xlayer(wait_flow_).det.on_mac_acked(wait_seq_);
      }
    }
  }

  // 4. Upper-layer delivery: probe replies reaching the vantage. The
  //    earliest uncorrupted copy is the one MAC dedup let through.
  if (opts_.fake_ack && r.type == FrameType::kData && r.ra == owner_ &&
      r.probe && r.probe_reply) {
    auto& ledger = probes_[r.src_node];
    const auto it = ledger.reply_end.find(r.pkt_seq);
    if (it == ledger.reply_end.end() || r.end < it->second) {
      ledger.reply_end[r.pkt_seq] = r.end;
    }
  }
}

ReplayResult ReplayEngine::result(Time end_time) const {
  ReplayResult res;
  res.nav_validated = nav_.frames_validated();
  res.nav_detections = nav_.detections();
  res.nav_detections_by_node = nav_.detections_by_node();

  res.acks_checked = acks_checked_;
  res.acks_ignored = acks_ignored_;
  res.spoof_tp = spoof_tp_;
  res.spoof_fp = spoof_fp_;
  res.spoof_tn = spoof_tn_;
  res.spoof_fn = spoof_fn_;

  if (opts_.fake_ack) {
    for (const auto& [dest, ledger] : probes_) {
      FakeAckVerdict v;
      v.dest = dest;
      v.probes_seen = static_cast<std::int64_t>(ledger.created.size());
      for (const auto& [seq, created] : ledger.created) {
        // Maturity fires when created + grace <= the horizon (the maturity
        // event runs before run_until() stops there); the reply must land
        // strictly earlier (it was scheduled later, so it loses the
        // equal-timestamp tie-break).
        if (created + opts_.fake_ack_grace > end_time) continue;
        ++v.matured;
        const auto it = ledger.reply_end.find(seq);
        if (it != ledger.reply_end.end() &&
            it->second < created + opts_.fake_ack_grace) {
          ++v.matured_replied;
        }
      }
      const auto at = tx_attempts_.find(dest);
      const std::int64_t attempts = at != tx_attempts_.end() ? at->second : 0;
      const auto rt = tx_retries_.find(dest);
      const std::int64_t retries = rt != tx_retries_.end() ? rt->second : 0;
      v.mac_loss = attempts == 0 ? 0.0
                                 : static_cast<double>(retries) /
                                       static_cast<double>(attempts);
      v.application_loss =
          v.matured == 0 ? 0.0
                         : 1.0 - static_cast<double>(v.matured_replied) /
                                     static_cast<double>(v.matured);
      v.expected_app_loss = std::pow(v.mac_loss, params_.long_retry_limit + 1);
      v.detected = v.matured >= 20 &&
                   v.application_loss >
                       v.expected_app_loss + opts_.fake_ack_threshold;
      res.fake_ack.push_back(v);
    }
  }

  if (opts_.backoff) {
    for (const int s : backoff_.stations()) {
      BackoffVerdict v;
      v.station = s;
      v.ewma_slots = backoff_.observed_backoff(s);
      v.samples = backoff_.samples(s);
      v.tx_share = backoff_.tx_share(s);
      v.flagged = backoff_.flagged(s);
      res.backoff.push_back(v);
    }
  }

  if (opts_.spoof) {
    const RssiMonitor& mon = spoof_.monitor();
    for (const int peer : mon.peers()) {
      RssiProfile pr;
      pr.peer = peer;
      pr.samples = static_cast<std::int64_t>(mon.samples(peer));
      pr.median_dbm = mon.median(peer).value_or(0.0);
      res.rssi.push_back(pr);
    }
  }

  if (opts_.cross_layer) {
    for (const auto& [flow, fx] : xlayer_) {
      CrossLayerVerdict v;
      v.flow_id = flow;
      v.mac_acked = fx.det.mac_acked_segments();
      v.suspicious = fx.det.suspicious_retransmissions();
      v.detected = fx.det.detected();
      res.cross_layer.push_back(v);
    }
  }

  return res;
}

}  // namespace g80211
