// The incremental core behind replay_capture() and the streaming monitor.
//
// One engine holds the full offline detector suite for one vantage station
// (NavValidator, SpoofDetector/RssiMonitor, BackoffMonitor, per-flow
// CrossLayerDetector, fake-ACK probe ledger) bound to a private
// ManualClock. step() consumes one journalled record exactly as
// replay.h documents — the engine *is* the replay loop, factored out so
// the monitor can feed it record-by-record from a growing file and
// snapshot verdicts mid-stream. result() is a pure read: it may be called
// repeatedly at successive horizons (every sliding window plus the final
// one) and the stream may keep stepping afterwards.
//
// Detectors hold a Clock view onto the engine's ManualClock, so the engine
// is pinned in memory: non-copyable, non-movable.
#pragma once

#include <cstdint>
#include <map>
#include <set>

#include "src/capture/capture.h"
#include "src/capture/replay.h"
#include "src/detect/backoff_monitor.h"
#include "src/detect/cross_layer_detector.h"
#include "src/detect/nav_validator.h"
#include "src/detect/spoof_detector.h"
#include "src/sim/clock.h"

namespace g80211 {

class ReplayEngine {
 public:
  ReplayEngine(const WifiParams& params, int owner, ReplayOptions opts = {});
  ReplayEngine(const ReplayEngine&) = delete;
  ReplayEngine& operator=(const ReplayEngine&) = delete;

  // Consume one record. Records must arrive in journal (event-time) order;
  // the capture readers enforce that order per file.
  void step(const CapturedFrame& r);

  // Verdicts as of `end_time` (the capture horizon, or a window edge for
  // the streaming monitor). Repeatable and non-destructive.
  ReplayResult result(Time end_time) const;

  // Event time of the last record consumed (0 before the first).
  Time now() const { return clock_src_.now(); }
  int owner() const { return owner_; }
  const ReplayOptions& options() const { return opts_; }

  // Read-only access to the underlying detectors, for equality tests and
  // reporting that wants more than the ReplayResult snapshot.
  const NavValidator& nav() const { return nav_; }
  const SpoofDetector& spoof() const { return spoof_; }
  const BackoffMonitor& backoff() const { return backoff_; }

 private:
  // Fake-ACK probe bookkeeping, reconstructed per probed destination.
  struct ProbeLedger {
    std::map<std::int64_t, Time> created;    // probe seq -> emission time
    std::map<std::int64_t, Time> reply_end;  // probe seq -> earliest reply end
  };

  // Cross-layer correlation state for one DATA flow.
  struct FlowXLayer {
    explicit FlowXLayer(std::int64_t threshold) : det(threshold) {}
    CrossLayerDetector det;
    // First pkt_uid seen per pkt_seq: a later, different uid for the same
    // seq is a TCP retransmission (MAC retries reuse the uid).
    std::map<std::int64_t, std::uint64_t> first_uid;
    std::set<std::uint64_t> counted_uids;  // retransmitted uids, counted once
  };

  FlowXLayer& xlayer(int flow_id);

  const WifiParams params_;
  const int owner_;
  const ReplayOptions opts_;

  // Detectors read time through Clock views of this; declared first so the
  // views bind to a constructed object.
  ManualClock clock_src_;
  NavValidator nav_;
  SpoofDetector spoof_;
  BackoffMonitor backoff_;

  // WaitAck window reconstructed from the vantage's own DATA transmissions,
  // plus the payload identity of the frame that opened it (cross-layer
  // attribution when an accepted ACK closes it).
  Time wait_deadline_ = kNever;
  bool waiting_ = false;
  int wait_dest_ = kNoAddr;
  int wait_flow_ = 0;
  std::int64_t wait_seq_ = 0;
  bool wait_probe_ = false;

  // Busy-union medium reconstruction for backoff idle edges.
  bool have_busy_ = false;
  Time busy_until_ = 0;

  // Per-destination DATA transmission counters (Mac::DestCounters analog).
  std::map<int, std::int64_t> tx_attempts_, tx_retries_;
  std::map<int, ProbeLedger> probes_;
  std::map<int, FlowXLayer> xlayer_;

  // Spoofed-ACK classification counters.
  std::int64_t acks_checked_ = 0;
  std::int64_t acks_ignored_ = 0;
  std::int64_t spoof_tp_ = 0, spoof_fp_ = 0, spoof_tn_ = 0, spoof_fn_ = 0;
};

}  // namespace g80211
