#include "src/capture/capture_stream.h"

#include "src/capture/format_detail.h"

namespace g80211 {

using capture_detail::ByteCursor;
using capture_detail::fail;

CaptureStreamReader::CaptureStreamReader(const std::string& path)
    : path_(path) {
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) fail("cannot open " + path);
}

CaptureStreamReader::~CaptureStreamReader() {
  if (file_ != nullptr) std::fclose(file_);
}

std::size_t CaptureStreamReader::read_appended() {
  // A previous read hit EOF; the file may have grown since. Clearing the
  // EOF flag makes stdio look again.
  std::clearerr(file_);
  std::size_t total = 0;
  std::uint8_t chunk[65536];
  std::size_t n;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file_)) > 0) {
    buf_.insert(buf_.end(), chunk, chunk + n);
    total += n;
  }
  return total;
}

void CaptureStreamReader::compact(std::size_t consumed) {
  if (consumed == 0) return;
  buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(consumed));
  buf_offset_ += static_cast<std::int64_t>(consumed);
}

std::size_t CaptureStreamReader::poll(std::vector<CapturedFrame>& out) {
  read_appended();
  if (format_ == Format::kUndetected) {
    if (buf_.empty()) return 0;
    if (buf_[0] == '{') {
      format_ = Format::kJsonl;
      has_params_ = true;
    } else {
      if (buf_.size() < 4) return 0;  // could still be a pcap magic prefix
      const std::uint32_t magic = static_cast<std::uint32_t>(buf_[0]) |
                                  (static_cast<std::uint32_t>(buf_[1]) << 8) |
                                  (static_cast<std::uint32_t>(buf_[2]) << 16) |
                                  (static_cast<std::uint32_t>(buf_[3]) << 24);
      if (magic != kPcapMagicNs) fail("unrecognised capture file " + path_);
      format_ = Format::kPcap;
    }
  }
  return format_ == Format::kPcap ? drain_pcap(out) : drain_jsonl(out);
}

std::size_t CaptureStreamReader::drain_pcap(std::vector<CapturedFrame>& out) {
  ByteCursor c{&buf_};
  if (!header_ready_) {
    if (!capture_detail::parse_pcap_file_header(c)) return 0;
    header_ready_ = true;
  }

  std::size_t emitted = 0;
  for (;;) {
    capture_detail::PcapRecordHeader h;
    const std::size_t record_offset = c.pos;
    if (!capture_detail::read_pcap_record(c, h)) break;
    CapturedFrame f;
    if (capture_detail::parse_pcap_record_body(c, h, f)) {
      if (f.end > end_time_) end_time_ = f.end;
      out.push_back(f);
      ++emitted;
    } else {
      if (skipped_unknown_ == 0) {
        first_skipped_offset_ =
            buf_offset_ + static_cast<std::int64_t>(record_offset);
      }
      ++skipped_unknown_;
    }
  }
  compact(c.pos);
  return emitted;
}

std::size_t CaptureStreamReader::drain_jsonl(std::vector<CapturedFrame>& out) {
  std::size_t emitted = 0;
  std::size_t consumed = 0;
  for (;;) {
    // A line is parseable only once its newline has been written; the
    // producer writes whole lines, but the filesystem shows us prefixes.
    std::size_t nl = consumed;
    while (nl < buf_.size() && buf_[nl] != '\n') ++nl;
    if (nl == buf_.size()) break;
    const std::string line(reinterpret_cast<const char*>(buf_.data()) + consumed,
                           nl - consumed);
    consumed = nl + 1;
    if (line.empty()) continue;
    if (finished_) fail("JSONL: content after footer");

    if (!header_ready_) {
      Capture header;
      capture_detail::parse_jsonl_header(line, header);
      owner_ = header.owner;
      params_ = header.params;
      header_ready_ = true;
      continue;
    }

    CapturedFrame f;
    Time horizon = 0;
    if (capture_detail::parse_jsonl_record(line, f, horizon) ==
        capture_detail::JsonlLine::kFooter) {
      end_time_ = horizon;
      finished_ = true;
      continue;
    }
    if (f.event_time() < last_event_) fail("JSONL: records out of order");
    last_event_ = f.event_time();
    if (f.end > end_time_ && !finished_) end_time_ = f.end;
    out.push_back(f);
    ++emitted;
  }
  compact(consumed);
  return emitted;
}

}  // namespace g80211
