#include "src/capture/format_detail.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <stdexcept>

namespace g80211 {
namespace capture_detail {

void fail(const std::string& what) {
  throw std::runtime_error("capture: " + what);
}

std::uint8_t ByteCursor::u8(const char* what) {
  need(1, what);
  return (*bytes)[pos++];
}

std::uint16_t ByteCursor::u16(const char* what) {
  need(2, what);
  const std::uint16_t v =
      static_cast<std::uint16_t>((*bytes)[pos] | ((*bytes)[pos + 1] << 8));
  pos += 2;
  return v;
}

std::uint32_t ByteCursor::u32(const char* what) {
  need(4, what);
  const std::uint32_t v = static_cast<std::uint32_t>((*bytes)[pos]) |
                          (static_cast<std::uint32_t>((*bytes)[pos + 1]) << 8) |
                          (static_cast<std::uint32_t>((*bytes)[pos + 2]) << 16) |
                          (static_cast<std::uint32_t>((*bytes)[pos + 3]) << 24);
  pos += 4;
  return v;
}

namespace {

// 6 address bytes -> node id; throws on an address outside our OUI scheme.
int parse_addr(ByteCursor& c) {
  c.need(6, "802.11 address");
  const std::uint8_t* a = c.bytes->data() + c.pos;
  c.pos += 6;
  bool bcast = true;
  for (int i = 0; i < 6; ++i) bcast = bcast && a[i] == 0xff;
  if (bcast) return kBroadcast;
  if (a[0] != kMacOui[0] || a[1] != kMacOui[1] || a[2] != kMacOui[2] ||
      a[3] != kMacOui[3]) {
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  "foreign MAC address %02x:%02x:%02x:%02x:%02x:%02x", a[0],
                  a[1], a[2], a[3], a[4], a[5]);
    fail(buf);
  }
  return (a[4] << 8) | a[5];
}

// --- minimal strict JSON (flat objects of numbers and plain strings) ---------

struct JsonField {
  std::string raw;  // decoded string, or number token text
  bool is_string = false;
};

using JsonObject = std::map<std::string, JsonField>;

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
}

std::string parse_json_string(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') fail("JSONL: expected string");
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size()) fail("JSONL: unterminated escape");
      switch (s[i]) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        default: fail("JSONL: unsupported escape");
      }
      ++i;
    } else {
      out += s[i++];
    }
  }
  if (i >= s.size()) fail("JSONL: unterminated string");
  ++i;  // closing quote
  return out;
}

JsonObject parse_json_object(const std::string& line) {
  JsonObject obj;
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') fail("JSONL: expected '{'");
  ++i;
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws(line, i);
      const std::string key = parse_json_string(line, i);
      skip_ws(line, i);
      if (i >= line.size() || line[i] != ':') fail("JSONL: expected ':'");
      ++i;
      skip_ws(line, i);
      JsonField field;
      if (i < line.size() && line[i] == '"') {
        field.raw = parse_json_string(line, i);
        field.is_string = true;
      } else {
        const std::size_t start = i;
        while (i < line.size() &&
               (std::isdigit(static_cast<unsigned char>(line[i])) ||
                line[i] == '-' || line[i] == '+' || line[i] == '.' ||
                line[i] == 'e' || line[i] == 'E' || line[i] == 'n' ||
                line[i] == 'a' || line[i] == 'i' || line[i] == 'f')) {
          ++i;
        }
        if (i == start) fail("JSONL: expected value");
        field.raw = line.substr(start, i - start);
      }
      if (!obj.emplace(key, std::move(field)).second) {
        fail("JSONL: duplicate key \"" + key + "\"");
      }
      skip_ws(line, i);
      if (i >= line.size()) fail("JSONL: unterminated object");
      if (line[i] == ',') {
        ++i;
        continue;
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      fail("JSONL: expected ',' or '}'");
    }
  }
  skip_ws(line, i);
  if (i != line.size()) fail("JSONL: trailing content after object");
  return obj;
}

const JsonField& json_get(const JsonObject& obj, const char* key) {
  const auto it = obj.find(key);
  if (it == obj.end()) fail(std::string("JSONL: missing key \"") + key + "\"");
  return it->second;
}

std::int64_t json_i64(const JsonObject& obj, const char* key) {
  const JsonField& f = json_get(obj, key);
  if (f.is_string) fail(std::string("JSONL: key \"") + key + "\" not a number");
  char* endp = nullptr;
  const long long v = std::strtoll(f.raw.c_str(), &endp, 10);
  if (endp == f.raw.c_str() || *endp != '\0') {
    fail(std::string("JSONL: key \"") + key + "\" not an integer");
  }
  return v;
}

std::uint64_t json_u64(const JsonObject& obj, const char* key) {
  const JsonField& f = json_get(obj, key);
  if (f.is_string) fail(std::string("JSONL: key \"") + key + "\" not a number");
  char* endp = nullptr;
  const unsigned long long v = std::strtoull(f.raw.c_str(), &endp, 10);
  if (endp == f.raw.c_str() || *endp != '\0') {
    fail(std::string("JSONL: key \"") + key + "\" not an integer");
  }
  return v;
}

double json_dbl(const JsonObject& obj, const char* key) {
  const JsonField& f = json_get(obj, key);
  if (f.is_string) fail(std::string("JSONL: key \"") + key + "\" not a number");
  char* endp = nullptr;
  const double v = std::strtod(f.raw.c_str(), &endp);
  if (endp == f.raw.c_str() || *endp != '\0') {
    fail(std::string("JSONL: key \"") + key + "\" not a number");
  }
  return v;
}

int json_int(const JsonObject& obj, const char* key) {
  return static_cast<int>(json_i64(obj, key));
}

FrameType frame_type_from_name(const std::string& name) {
  if (name == "RTS") return FrameType::kRts;
  if (name == "CTS") return FrameType::kCts;
  if (name == "DATA") return FrameType::kData;
  if (name == "ACK") return FrameType::kAck;
  fail("JSONL: unknown frame type \"" + name + "\"");
}

}  // namespace

// --- pcap --------------------------------------------------------------------

bool parse_pcap_file_header(ByteCursor& c) {
  if (c.remaining() < 24) return false;
  if (c.u32("pcap magic") != kPcapMagicNs) {
    fail("bad pcap magic (expected nanosecond-resolution little-endian pcap)");
  }
  const std::uint16_t vmaj = c.u16("pcap version");
  const std::uint16_t vmin = c.u16("pcap version");
  if (vmaj != kPcapVersionMajor || vmin != kPcapVersionMinor) {
    fail("unsupported pcap version");
  }
  c.u32("pcap header");  // thiszone
  c.u32("pcap header");  // sigfigs
  c.u32("pcap header");  // snaplen
  if (c.u32("pcap linktype") != kLinktypeRadiotap) {
    fail("unsupported linktype (want IEEE802_11_RADIOTAP)");
  }
  return true;
}

bool read_pcap_record(ByteCursor& c, PcapRecordHeader& h) {
  if (c.remaining() < 16) return false;
  const std::size_t mark = c.pos;
  const std::uint32_t ts_sec = c.u32("pcap record header");
  const std::uint32_t ts_nsec = c.u32("pcap record header");
  h.incl = c.u32("pcap record header");
  h.orig = c.u32("pcap record header");
  if (c.remaining() < h.incl) {
    c.pos = mark;  // incomplete record: rewind so the caller can retry
    return false;
  }
  h.start = static_cast<Time>(ts_sec) * 1000000000 + ts_nsec;
  return true;
}

bool parse_pcap_record_body(ByteCursor& c, const PcapRecordHeader& h,
                            CapturedFrame& f) {
  const std::size_t record_end = c.pos + h.incl;
  f = CapturedFrame{};
  f.start = h.start;
  f.end = f.start;  // reception end times are not representable in pcap
  f.bytes =
      h.orig >= kRadiotapLen ? static_cast<int>(h.orig - kRadiotapLen) : 0;

  // Radiotap. Version 0 is the only version that exists; anything else is
  // file corruption, not an unknown capture flavour.
  if (c.u8("radiotap header") != 0) fail("bad radiotap version");
  c.u8("radiotap header");  // pad
  const std::uint16_t rt_len = c.u16("radiotap header");
  const std::uint32_t present = c.u32("radiotap header");
  if (rt_len < 8 || rt_len > h.incl) fail("bad radiotap length");
  bool known = rt_len == kRadiotapLen && present == kRadiotapPresent;
  if (known) {
    const std::uint8_t flags = c.u8("radiotap fields");
    f.corrupted = (flags & kRadiotapFlagBadFcs) != 0;
    f.rate_mbps = c.u8("radiotap fields") / 2.0;
    f.rssi_dbm =
        static_cast<double>(static_cast<std::int8_t>(c.u8("radiotap fields")));

    // 802.11 MAC header.
    const std::uint8_t fc = c.u8("frame control");
    const std::uint8_t fc_flags = c.u8("frame control");
    f.retry = (fc_flags & kFcFlagRetry) != 0;
    f.more_frags = (fc_flags & kFcFlagMoreFrags) != 0;
    switch (fc) {
      case kFcRts:
        f.type = FrameType::kRts;
        f.duration = static_cast<Time>(c.u16("duration")) * 1000;
        f.ra = parse_addr(c);
        f.ta = parse_addr(c);
        break;
      case kFcCts:
      case kFcAck:
        f.type = fc == kFcCts ? FrameType::kCts : FrameType::kAck;
        f.duration = static_cast<Time>(c.u16("duration")) * 1000;
        f.ra = parse_addr(c);
        f.ta = kNoAddr;  // CTS/ACK carry no transmitter address on air
        break;
      case kFcData: {
        f.type = FrameType::kData;
        f.duration = static_cast<Time>(c.u16("duration")) * 1000;
        f.ra = parse_addr(c);
        f.ta = parse_addr(c);
        parse_addr(c);  // addr3 duplicates the TA
        const std::uint16_t seqctl = c.u16("sequence control");
        f.seq = seqctl >> 4;
        f.frag = seqctl & 0xf;
        break;
      }
      default:
        known = false;  // unknown type/subtype (e.g. beacons): skip
        break;
    }
  }
  if (known && c.pos != record_end) fail("pcap record length mismatch");
  c.pos = record_end;
  return known;
}

// --- jsonl -------------------------------------------------------------------

void parse_jsonl_header(const std::string& line, Capture& cap) {
  const JsonObject obj = parse_json_object(line);
  if (obj.find(kJsonlHeaderKey) == obj.end()) {
    fail("JSONL: not a g80211 capture (missing header line)");
  }
  if (json_i64(obj, kJsonlHeaderKey) != kJsonlFormatVersion) {
    fail("JSONL: unsupported capture format version");
  }
  cap.owner = json_int(obj, "owner");
  WifiParams& p = cap.params;
  const int standard = json_int(obj, "standard");
  if (standard < 0 || standard > 2) fail("JSONL: bad standard");
  p.standard = static_cast<Standard>(standard);
  p.slot = json_i64(obj, "slot");
  p.sifs = json_i64(obj, "sifs");
  p.difs = json_i64(obj, "difs");
  p.plcp = json_i64(obj, "plcp");
  p.data_rate_mbps = json_dbl(obj, "data_rate_mbps");
  p.basic_rate_mbps = json_dbl(obj, "basic_rate_mbps");
  p.cw_min = json_int(obj, "cw_min");
  p.cw_max = json_int(obj, "cw_max");
  p.short_retry_limit = json_int(obj, "short_retry_limit");
  p.long_retry_limit = json_int(obj, "long_retry_limit");
  p.rts_bytes = json_int(obj, "rts_bytes");
  p.cts_bytes = json_int(obj, "cts_bytes");
  p.ack_bytes = json_int(obj, "ack_bytes");
  p.data_mac_overhead_bytes = json_int(obj, "data_mac_overhead_bytes");
}

JsonlLine parse_jsonl_record(const std::string& line, CapturedFrame& f,
                             Time& end_time) {
  const JsonObject obj = parse_json_object(line);
  if (obj.find(kJsonlFooterKey) != obj.end()) {
    end_time = json_i64(obj, kJsonlFooterKey);
    return JsonlLine::kFooter;
  }

  f = CapturedFrame{};
  f.type = frame_type_from_name(json_get(obj, "t").raw);
  f.start = json_i64(obj, "s");
  f.end = json_i64(obj, "e");
  f.duration = json_i64(obj, "d");
  f.ta = json_int(obj, "ta");
  f.ra = json_int(obj, "ra");
  f.true_tx = json_int(obj, "tt");
  f.seq = json_int(obj, "sq");
  f.frag = json_int(obj, "fg");
  f.more_frags = json_i64(obj, "mf") != 0;
  f.retry = json_i64(obj, "r") != 0;
  f.corrupted = json_i64(obj, "c") != 0;
  f.collided = json_i64(obj, "cl") != 0;
  f.tx = json_i64(obj, "tx") != 0;
  f.rssi_dbm = json_dbl(obj, "rssi");
  f.bytes = json_int(obj, "len");
  f.rate_mbps = json_dbl(obj, "rate");
  if (f.type == FrameType::kData) {
    f.flow_id = json_int(obj, "fl");
    f.pkt_seq = json_i64(obj, "ps");
    f.pkt_uid = json_u64(obj, "pu");
    f.src_node = json_int(obj, "sn");
    f.dst_node = json_int(obj, "dn");
    f.pkt_created = json_i64(obj, "cr");
    const int probe = json_int(obj, "pr");
    if (probe < 0 || probe > 2) fail("JSONL: bad probe marker");
    f.probe = probe != 0;
    f.probe_reply = probe == 2;
  }
  if (f.end < f.start) fail("JSONL: frame ends before it starts");
  return JsonlLine::kFrame;
}

}  // namespace capture_detail
}  // namespace g80211
