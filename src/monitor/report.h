// Shared human- and machine-readable reporting for the capture CLIs.
//
// g80211_capture and g80211_monitor present the same things — per-station
// airtime tables, the NAV histogram, skip-and-count statistics, the
// offline GRC verdict table — so the formatting lives here once, next to
// the verdict types it renders. Everything writes to a caller-supplied
// FILE* (the CLIs choose stdout/stderr); nothing here reads the clock or
// blocks.
//
// The JSONL emitters render one WindowRecord or Alert per line for the
// monitor's streaming output. Keys are stable: they are the tool's wire
// format, consumed by tests and downstream scripts.
#pragma once

#include <cstdio>
#include <string>

#include "src/capture/capture.h"
#include "src/capture/replay.h"
#include "src/monitor/engine.h"

namespace g80211 {

// Attributed transmitter of a frame: TA when the frame carries one, the
// journal's ground truth otherwise (pcap CTS/ACK stay unattributed).
int attributed_tx(const CapturedFrame& f);

// On-air time of one frame. The journal records exact edges; a pcap only
// has the start timestamp, so fall back to payload bits / rate (the PLCP
// preamble is not recoverable from a pcap and is excluded there).
Time frame_airtime(const CapturedFrame& f);

// Per-station airtime table, corruption counts, NAV histogram, and the
// skip-and-count statistics when any record was skipped.
void print_capture_summary(std::FILE* out, const Capture& cap,
                           const std::string& path);

// The full offline GRC verdict table (NAV, ACK spoofing, fake-ACK,
// backoff, RSSI profiles, cross-layer) as replayed at `owner`.
void print_replay_result(std::FILE* out, int owner, const ReplayResult& res);

// "skipped N unrecognised record(s) (first at byte offset X)" — shared by
// both CLIs so the skip statistics read identically everywhere.
void print_skip_stats(std::FILE* out, std::int64_t skipped,
                      std::int64_t first_offset);

// One-line JSONL records for the monitor's streaming output.
std::string window_jsonl(const std::string& stream, const WindowRecord& w);
std::string alert_jsonl(const std::string& stream, const Alert& a);

}  // namespace g80211
