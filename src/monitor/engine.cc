#include "src/monitor/engine.h"

#include "src/sim/check.h"

namespace g80211 {

const char* alert_kind_name(Alert::Kind kind) {
  switch (kind) {
    case Alert::Kind::kNavInflation: return "nav-inflation";
    case Alert::Kind::kAckSpoof: return "ack-spoof";
    case Alert::Kind::kBackoffCheat: return "backoff-cheat";
    case Alert::Kind::kFakeAck: return "fake-ack";
    case Alert::Kind::kCrossLayer: return "cross-layer";
  }
  return "unknown";
}

StreamMonitor::StreamMonitor(const WifiParams& params, int owner,
                             MonitorConfig cfg)
    : cfg_(cfg), engine_(params, owner, cfg.replay) {
  G80211_CHECK(cfg_.window > 0);
}

void StreamMonitor::step(const CapturedFrame& r) {
  G80211_DCHECK(!finalized_);
  const Time et = r.event_time();
  if (window_start_ == kNever) {
    window_start_ = (et / cfg_.window) * cfg_.window;
  }
  while (et >= window_start_ + cfg_.window) {
    if (window_frames_ > 0) {
      close_window(window_start_ + cfg_.window);
      window_start_ += cfg_.window;
    } else {
      // Quiet gap: skip straight to the window containing this record
      // instead of closing empty windows one by one.
      window_start_ = (et / cfg_.window) * cfg_.window;
    }
  }
  engine_.step(r);
  ++frames_;
  ++window_frames_;
}

void StreamMonitor::process(const FrameBatch& batch) {
  for (std::size_t i = 0; i < batch.size(); ++i) step(batch.row(i));
}

void StreamMonitor::finalize(Time end_time) {
  if (finalized_) return;
  finalized_ = true;
  if (window_frames_ > 0) {
    close_window(end_time);
  } else {
    // No trailing partial window, but the horizon itself can flip verdicts
    // (fake-ACK probes mature against it) — run the final alert scan.
    scan_alerts(end_time, engine_.result(end_time));
  }
}

void StreamMonitor::close_window(Time edge) {
  const ReplayResult res = engine_.result(edge);

  WindowRecord w;
  w.start = window_start_;
  w.end = edge;
  w.frames = window_frames_;
  w.nav_detections = res.nav_detections;
  w.spoof_flagged = res.spoof_flagged();
  w.acks_ignored = res.acks_ignored;
  for (const BackoffVerdict& v : res.backoff) {
    if (v.flagged) w.backoff_cheaters.push_back(v.station);
  }
  for (const FakeAckVerdict& v : res.fake_ack) {
    if (v.detected) w.fake_ack_detected.push_back(v.dest);
  }
  for (const CrossLayerVerdict& v : res.cross_layer) {
    if (v.detected) w.cross_layer_detected.push_back(v.flow_id);
  }
  windows_.push_back(std::move(w));
  window_frames_ = 0;

  scan_alerts(edge, res);
}

void StreamMonitor::scan_alerts(Time at, const ReplayResult& res) {
  for (const auto& [node, n] : res.nav_detections_by_node) {
    if (n > 0 && alerted_nav_.insert(node).second) {
      alerts_.push_back({Alert::Kind::kNavInflation, at, node, n});
    }
  }
  if (!alerted_spoof_ && res.spoof_flagged() > 0) {
    alerted_spoof_ = true;
    alerts_.push_back(
        {Alert::Kind::kAckSpoof, at, engine_.owner(), res.spoof_flagged()});
  }
  for (const BackoffVerdict& v : res.backoff) {
    if (v.flagged && alerted_backoff_.insert(v.station).second) {
      alerts_.push_back({Alert::Kind::kBackoffCheat, at, v.station, v.samples});
    }
  }
  for (const FakeAckVerdict& v : res.fake_ack) {
    if (v.detected && alerted_fake_.insert(v.dest).second) {
      alerts_.push_back({Alert::Kind::kFakeAck, at, v.dest, v.matured});
    }
  }
  for (const CrossLayerVerdict& v : res.cross_layer) {
    if (v.detected && alerted_xlayer_.insert(v.flow_id).second) {
      alerts_.push_back({Alert::Kind::kCrossLayer, at, v.flow_id, v.suspicious});
    }
  }
}

std::vector<WindowRecord> StreamMonitor::drain_windows() {
  std::vector<WindowRecord> out;
  out.swap(windows_);
  return out;
}

std::vector<Alert> StreamMonitor::drain_alerts() {
  std::vector<Alert> out;
  out.swap(alerts_);
  return out;
}

}  // namespace g80211
