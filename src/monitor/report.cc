#include "src/monitor/report.h"

#include <map>

namespace g80211 {

int attributed_tx(const CapturedFrame& f) {
  if (f.ta != kNoAddr) return f.ta;
  return f.true_tx;
}

Time frame_airtime(const CapturedFrame& f) {
  if (f.end > f.start) return f.end - f.start;
  if (f.rate_mbps > 0) {
    return tx_time(static_cast<std::int64_t>(f.bytes) * 8, f.rate_mbps);
  }
  return 0;
}

void print_skip_stats(std::FILE* out, std::int64_t skipped,
                      std::int64_t first_offset) {
  if (skipped <= 0) return;
  std::fprintf(out,
               "  skipped %lld unrecognised record(s) (first at byte offset "
               "%lld)\n",
               static_cast<long long>(skipped),
               static_cast<long long>(first_offset));
}

void print_capture_summary(std::FILE* out, const Capture& cap,
                           const std::string& path) {
  std::fprintf(out, "capture %s\n", path.c_str());
  if (cap.has_params) {
    std::fprintf(out, "  vantage station: %d   horizon: %.6f s   frames: %zu\n",
                 cap.owner, to_seconds(cap.end_time), cap.frames.size());
  } else {
    std::fprintf(out, "  frames: %zu (pcap: no vantage/params metadata)\n",
                 cap.frames.size());
  }
  print_skip_stats(out, cap.skipped_unknown, cap.first_skipped_offset);

  // Per-station airtime and frame counts.
  struct Station {
    std::int64_t frames = 0;
    Time airtime = 0;
  };
  std::map<int, Station> stations;
  std::int64_t unattributed = 0;
  std::int64_t corrupted = 0, collided = 0, retries = 0;
  for (const CapturedFrame& f : cap.frames) {
    if (f.corrupted) ++corrupted;
    if (f.collided) ++collided;
    if (f.retry) ++retries;
    const int tx = attributed_tx(f);
    if (tx == kNoAddr) {
      ++unattributed;
      continue;
    }
    auto& s = stations[tx];
    ++s.frames;
    s.airtime += frame_airtime(f);
  }

  std::fprintf(out, "\n  %-10s %10s %14s\n", "station", "frames", "airtime_ms");
  for (const auto& [id, s] : stations) {
    std::fprintf(out, "  %-10d %10lld %14.3f\n", id,
                 static_cast<long long>(s.frames), to_millis(s.airtime));
  }
  if (unattributed > 0) {
    std::fprintf(out, "  %-10s %10lld %14s\n", "(CTS/ACK)",
                 static_cast<long long>(unattributed), "-");
  }
  std::fprintf(out, "\n  corrupted: %lld   collisions: %lld   retries: %lld\n",
               static_cast<long long>(corrupted),
               static_cast<long long>(collided),
               static_cast<long long>(retries));

  // Duration/NAV histogram: exponential microsecond buckets — inflated
  // NAVs (the paper's 30 ms CTS attack) land in the top buckets.
  static constexpr double kEdgesUs[] = {0.0,    100.0,   300.0,  1000.0,
                                        3000.0, 10000.0, 32767.0};
  constexpr int kBuckets =
      static_cast<int>(sizeof(kEdgesUs) / sizeof(kEdgesUs[0]));
  std::int64_t hist[kBuckets] = {};
  for (const CapturedFrame& f : cap.frames) {
    const double us = to_micros(f.duration);
    int b = 0;
    while (b + 1 < kBuckets && us > kEdgesUs[b]) ++b;
    ++hist[b];
  }
  std::fprintf(out, "\n  NAV histogram (Duration field, us):\n");
  const char* labels[kBuckets] = {"0",          "(0,100]",   "(100,300]",
                                  "(300,1e3]",  "(1e3,3e3]", "(3e3,1e4]",
                                  "(1e4,32767]"};
  for (int b = 0; b < kBuckets; ++b) {
    if (hist[b] == 0) continue;
    std::fprintf(out, "  %-14s %10lld\n", labels[b],
                 static_cast<long long>(hist[b]));
  }
}

void print_replay_result(std::FILE* out, int owner, const ReplayResult& res) {
  std::fprintf(out, "\n  offline GRC verdicts (replayed at station %d):\n",
               owner);
  std::fprintf(out, "  NAV validation: %lld frames validated, %lld inflated\n",
               static_cast<long long>(res.nav_validated),
               static_cast<long long>(res.nav_detections));
  for (const auto& [node, n] : res.nav_detections_by_node) {
    std::fprintf(out, "    station %-4d flagged %lld time(s)\n", node,
                 static_cast<long long>(n));
  }
  if (res.acks_checked > 0) {
    std::fprintf(
        out,
        "  ACK spoofing: %lld ACKs checked, %lld flagged "
        "(tp=%lld fp=%lld tn=%lld fn=%lld)\n",
        static_cast<long long>(res.acks_checked),
        static_cast<long long>(res.spoof_flagged()),
        static_cast<long long>(res.spoof_tp),
        static_cast<long long>(res.spoof_fp),
        static_cast<long long>(res.spoof_tn),
        static_cast<long long>(res.spoof_fn));
  }
  for (const FakeAckVerdict& v : res.fake_ack) {
    std::fprintf(
        out,
        "  fake-ACK probe toward %d: %lld probes, app loss %.3f vs expected "
        "%.3f (MAC loss %.3f) -> %s\n",
        v.dest, static_cast<long long>(v.probes_seen), v.application_loss,
        v.expected_app_loss, v.mac_loss,
        v.detected ? "GREEDY RECEIVER DETECTED" : "honest");
  }
  for (const BackoffVerdict& v : res.backoff) {
    std::fprintf(out,
                 "  backoff station %-4d ewma %.2f slots over %lld samples, "
                 "tx share %.3f -> %s\n",
                 v.station, v.ewma_slots, static_cast<long long>(v.samples),
                 v.tx_share, v.flagged ? "CHEATER" : "honest");
  }
  for (const RssiProfile& p : res.rssi) {
    std::fprintf(out, "  rssi profile peer %-4d median %.2f dBm (%lld samples)\n",
                 p.peer, p.median_dbm, static_cast<long long>(p.samples));
  }
  for (const CrossLayerVerdict& v : res.cross_layer) {
    std::fprintf(out,
                 "  cross-layer flow %-4d %lld MAC-acked segments, %lld "
                 "suspicious retransmissions -> %s\n",
                 v.flow_id, static_cast<long long>(v.mac_acked),
                 static_cast<long long>(v.suspicious),
                 v.detected ? "SPOOFED-ACK FLOW" : "honest");
  }
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    if (ch == '"' || ch == '\\') {
      out += '\\';
      out += ch;
    } else if (ch == '\n') {
      out += "\\n";
    } else if (ch == '\t') {
      out += "\\t";
    } else {
      out += ch;
    }
  }
  out += '"';
}

void append_int_array(std::string& out, const std::vector<int>& v) {
  out += '[';
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(v[i]);
  }
  out += ']';
}

}  // namespace

std::string window_jsonl(const std::string& stream, const WindowRecord& w) {
  std::string out = "{\"monitor_window\":{\"stream\":";
  append_json_string(out, stream);
  out += ",\"start\":" + std::to_string(w.start);
  out += ",\"end\":" + std::to_string(w.end);
  out += ",\"frames\":" + std::to_string(w.frames);
  out += ",\"nav_detections\":" + std::to_string(w.nav_detections);
  out += ",\"spoof_flagged\":" + std::to_string(w.spoof_flagged);
  out += ",\"acks_ignored\":" + std::to_string(w.acks_ignored);
  out += ",\"backoff_cheaters\":";
  append_int_array(out, w.backoff_cheaters);
  out += ",\"fake_ack_detected\":";
  append_int_array(out, w.fake_ack_detected);
  out += ",\"cross_layer_detected\":";
  append_int_array(out, w.cross_layer_detected);
  out += "}}";
  return out;
}

std::string alert_jsonl(const std::string& stream, const Alert& a) {
  std::string out = "{\"monitor_alert\":{\"stream\":";
  append_json_string(out, stream);
  out += ",\"kind\":";
  append_json_string(out, alert_kind_name(a.kind));
  out += ",\"at\":" + std::to_string(a.at);
  out += ",\"subject\":" + std::to_string(a.subject);
  out += ",\"evidence\":" + std::to_string(a.evidence);
  out += "}}";
  return out;
}

}  // namespace g80211
