// Multi-stream monitor driver: shards capture streams across a worker
// pool and runs the poll -> batch -> detect loop for each.
//
// Each stream (one capture journal = one vantage station's BSS view) is
// pinned to shard `index % shards` for its whole life, and a shard is
// processed by exactly one pool task per pass — streams never migrate and
// no stream's state is ever touched by two threads, so no per-stream
// locking exists and results are bit-identical for any shard count.
// Cross-stream merge (drain_windows/drain_alerts) happens between passes
// on the caller's thread, after ThreadPool::wait().
//
// Two consumption modes, same loop:
//  * file mode — drain() passes until no stream yields a record, then
//    finalizes: every JSONL stream must have reached its footer, anything
//    else is a truncated capture.
//  * follow mode — the caller owns the loop: pass() returns the number of
//    records consumed; on 0 the caller sleeps (the sleep lives in the
//    CLI, src/ stays free of wall-clock waits) and polls again, until
//    finished() reports every journal's footer has arrived.
//
// The driver only accepts JSONL journals: the detectors need the exact
// ticks, parameters and ground truth that pcap drops (same rule as
// replay_capture). A pcap input is rejected on its magic bytes, at the
// first pass — before the full pcap file header has even been written —
// so follow mode fails loudly instead of tailing it forever.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/capture/capture_stream.h"
#include "src/monitor/engine.h"
#include "src/runner/thread_pool.h"

namespace g80211 {

struct MonitorOptions {
  MonitorConfig config;
  int shards = 1;  // worker shards (also the thread-pool size)
};

// A window/alert tagged with the stream it came from.
struct StreamWindow {
  int stream = 0;
  WindowRecord window;
};
struct StreamAlert {
  int stream = 0;
  Alert alert;
};

// Per-stream progress snapshot for reporting.
struct StreamStatus {
  std::string path;
  int owner = kNoAddr;
  bool header_ready = false;
  bool finished = false;       // JSONL footer seen
  std::int64_t frames = 0;
  Time end_time = 0;           // footer horizon, or latest frame end so far
  std::int64_t skipped_unknown = 0;
  std::int64_t first_skipped_offset = -1;
};

class MonitorDriver {
 public:
  // Opens every path (throws when one cannot be opened). `opts.shards` is
  // clamped to [1, streams].
  MonitorDriver(MonitorOptions opts, const std::vector<std::string>& paths);

  // One poll-and-process pass over every stream, sharded across the pool.
  // Returns the number of records consumed; rethrows the first stream
  // error (malformed journal, pcap input, out-of-order records).
  std::size_t pass();

  // Every stream has seen its footer.
  bool finished() const;

  // File mode: pass() until a pass consumes nothing, then finalize each
  // stream (throws if a journal ends without its footer or mid-record).
  void drain();

  // Close trailing windows at each stream's horizon. Called by drain();
  // follow-mode callers invoke it once finished() turns true.
  void finalize();

  std::size_t num_streams() const { return streams_.size(); }
  int shards() const { return shards_; }
  StreamStatus status(std::size_t i) const;
  // Final (or current-horizon) verdict snapshot for stream i.
  ReplayResult verdicts(std::size_t i) const;

  // Windows/alerts emitted since the last drain, merged across streams in
  // (time, stream) order. Deterministic for any shard count.
  std::vector<StreamWindow> drain_windows();
  std::vector<StreamAlert> drain_alerts();

 private:
  struct Stream {
    explicit Stream(const std::string& path) : reader(path) {}
    CaptureStreamReader reader;
    std::unique_ptr<StreamMonitor> monitor;  // created once the header is in
    FrameBatch batch;
    std::size_t consumed_last_pass = 0;
  };

  void pump(Stream& s);  // poll + process one stream (worker thread)

  MonitorOptions opts_;
  int shards_ = 1;
  std::vector<std::unique_ptr<Stream>> streams_;
  ThreadPool pool_;
  bool finalized_ = false;
};

}  // namespace g80211
