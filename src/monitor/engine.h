// Per-stream core of the streaming GRC monitor.
//
// A StreamMonitor wraps one ReplayEngine (the full offline detector suite
// bound to a ManualClock, src/capture/replay_engine.h) and adds the
// streaming semantics the batch replay does not need:
//
//  * Sliding verdict windows: event time is divided into fixed windows
//    aligned to multiples of the window length. When a record's event time
//    reaches a window's end the window closes — a WindowRecord with the
//    record count and the cumulative headline verdicts as of that edge is
//    emitted. Empty windows close silently (a quiet channel produces no
//    records). Because verdict snapshots are pure reads on the engine,
//    windows are exactly the values replay_capture() would have reported
//    had the capture ended at the window edge.
//
//  * Alerts: the first time a detector implicates a subject (a station's
//    NAV inflations, a flagged ACK, a backoff cheater, a fake-ACK or
//    cross-layer verdict turning positive) an Alert is raised at the
//    closing window's edge. One alert per (kind, subject) for the life of
//    the stream: alerts are edge-triggered, windows are level-triggered.
//
// The same engine instance produces the final verdicts, so a monitor run
// over a complete capture ends byte-identical to replay_capture() on the
// parsed file — one detector implementation, two front-ends, checked by
// tests/test_monitor.cc.
//
// StreamMonitor does no I/O and never blocks; feeding it (from a file, a
// tailed journal, or a synthetic batch in the benches) is the driver's
// job. It is single-threaded by design — the driver shards streams across
// workers, never one stream across two.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include "src/capture/replay_engine.h"
#include "src/monitor/frame_batch.h"

namespace g80211 {

struct MonitorConfig {
  ReplayOptions replay;
  Time window = seconds(1);  // verdict window length (event time)
};

// One closed verdict window. Counters are cumulative since stream start
// (the paper's detectors are cumulative estimators; a window reports the
// state of the evidence at its closing edge, not a per-window diff —
// except `frames`, which is this window's record count).
struct WindowRecord {
  Time start = 0;
  Time end = 0;
  std::int64_t frames = 0;
  std::int64_t nav_detections = 0;
  std::int64_t spoof_flagged = 0;
  std::int64_t acks_ignored = 0;
  std::vector<int> backoff_cheaters;
  std::vector<int> fake_ack_detected;     // probed destinations
  std::vector<int> cross_layer_detected;  // flow ids

  bool operator==(const WindowRecord&) const = default;
};

struct Alert {
  enum class Kind {
    kNavInflation,  // subject: inflating station (ground-truth attribution)
    kAckSpoof,      // subject: the vantage station whose ACKs were spoofed
    kBackoffCheat,  // subject: flagged station
    kFakeAck,       // subject: probed destination
    kCrossLayer,    // subject: TCP flow id
  };
  Kind kind = Kind::kNavInflation;
  Time at = 0;       // window edge that raised the alert
  int subject = -1;
  std::int64_t evidence = 0;  // detections/flags/suspicious count behind it

  bool operator==(const Alert&) const = default;
};

const char* alert_kind_name(Alert::Kind kind);

class StreamMonitor {
 public:
  StreamMonitor(const WifiParams& params, int owner, MonitorConfig cfg);

  // Consume a whole batch in order. Steady-state allocation-free apart
  // from window/alert emission and first-sight-of-a-node detector growth.
  void process(const FrameBatch& batch);
  void step(const CapturedFrame& r);

  // Close the trailing partial window at the capture horizon and run a
  // final alert scan. Idempotent for a fixed horizon; the stream must not
  // be stepped afterwards.
  void finalize(Time end_time);

  std::int64_t frames() const { return frames_; }
  Time last_event() const { return engine_.now(); }
  const ReplayEngine& engine() const { return engine_; }

  // Full verdict snapshot at a horizon (what replay_capture would return
  // for a capture ending there).
  ReplayResult verdicts(Time at) const { return engine_.result(at); }

  // Emitted-and-not-yet-collected windows/alerts, in emission order. The
  // driver drains these after each pass; a drain hands off the backlog so
  // follow mode holds O(backlog), not O(stream).
  std::vector<WindowRecord> drain_windows();
  std::vector<Alert> drain_alerts();

 private:
  void close_window(Time edge);
  void scan_alerts(Time at, const ReplayResult& res);

  MonitorConfig cfg_;
  ReplayEngine engine_;
  std::int64_t frames_ = 0;
  Time window_start_ = kNever;      // kNever until the first record
  std::int64_t window_frames_ = 0;  // records in the currently open window
  bool finalized_ = false;

  std::vector<WindowRecord> windows_;
  std::vector<Alert> alerts_;

  // Alert edge-trigger state: subjects already reported, per kind.
  std::set<int> alerted_nav_, alerted_backoff_, alerted_fake_, alerted_xlayer_;
  bool alerted_spoof_ = false;
};

}  // namespace g80211
