#include "src/monitor/driver.h"

#include <algorithm>
#include <stdexcept>

namespace g80211 {

MonitorDriver::MonitorDriver(MonitorOptions opts,
                             const std::vector<std::string>& paths)
    : opts_(opts),
      shards_(std::max(1, std::min<int>(opts.shards,
                                        static_cast<int>(std::max<std::size_t>(
                                            paths.size(), 1))))),
      pool_(static_cast<unsigned>(shards_)) {
  streams_.reserve(paths.size());
  for (const std::string& p : paths) {
    streams_.push_back(std::make_unique<Stream>(p));
  }
}

void MonitorDriver::pump(Stream& s) {
  s.batch.clear();
  std::vector<CapturedFrame> polled;
  s.reader.poll(polled);
  // Reject pcap on the magic bytes, before a full file header exists:
  // a tailed pcap would otherwise never produce a monitor record (and
  // never finish), so follow mode would poll it silently forever.
  if (s.reader.pcap_detected()) {
    throw std::runtime_error(
        "monitor: " + s.reader.path() +
        ": pcap capture detected — the monitor (and --follow tail mode) "
        "requires JSONL journals: pcap drops the exact ticks, parameters "
        "and ground truth the detectors need");
  }
  if (s.monitor == nullptr && s.reader.header_ready()) {
    s.monitor = std::make_unique<StreamMonitor>(
        s.reader.params(), s.reader.owner(), opts_.config);
  }
  for (const CapturedFrame& f : polled) s.batch.push(f);
  if (s.monitor != nullptr) s.monitor->process(s.batch);
  s.consumed_last_pass = s.batch.size();
}

std::size_t MonitorDriver::pass() {
  for (int shard = 0; shard < shards_; ++shard) {
    pool_.submit([this, shard] {
      for (std::size_t i = static_cast<std::size_t>(shard);
           i < streams_.size(); i += static_cast<std::size_t>(shards_)) {
        pump(*streams_[i]);
      }
    });
  }
  pool_.wait();
  std::size_t total = 0;
  for (const auto& s : streams_) total += s->consumed_last_pass;
  return total;
}

bool MonitorDriver::finished() const {
  for (const auto& s : streams_) {
    if (!s->reader.finished()) return false;
  }
  return true;
}

void MonitorDriver::drain() {
  while (pass() > 0) {
  }
  finalize();
}

void MonitorDriver::finalize() {
  if (finalized_) return;
  for (const auto& s : streams_) {
    if (!s->reader.finished()) {
      throw std::runtime_error("monitor: " + s->reader.path() +
                               ": truncated capture (missing footer)");
    }
    if (s->reader.pending_bytes() > 0) {
      throw std::runtime_error("monitor: " + s->reader.path() +
                               ": trailing bytes after the last record");
    }
  }
  finalized_ = true;
  for (const auto& s : streams_) {
    if (s->monitor != nullptr) s->monitor->finalize(s->reader.end_time());
  }
}

StreamStatus MonitorDriver::status(std::size_t i) const {
  const Stream& s = *streams_.at(i);
  StreamStatus st;
  st.path = s.reader.path();
  st.owner = s.reader.owner();
  st.header_ready = s.reader.header_ready();
  st.finished = s.reader.finished();
  st.frames = s.monitor != nullptr ? s.monitor->frames() : 0;
  st.end_time = s.reader.end_time();
  st.skipped_unknown = s.reader.skipped_unknown();
  st.first_skipped_offset = s.reader.first_skipped_offset();
  return st;
}

ReplayResult MonitorDriver::verdicts(std::size_t i) const {
  const Stream& s = *streams_.at(i);
  if (s.monitor == nullptr) return ReplayResult{};
  return s.monitor->verdicts(s.reader.end_time());
}

std::vector<StreamWindow> MonitorDriver::drain_windows() {
  std::vector<StreamWindow> out;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i]->monitor == nullptr) continue;
    for (WindowRecord& w : streams_[i]->monitor->drain_windows()) {
      out.push_back({static_cast<int>(i), std::move(w)});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const StreamWindow& a, const StreamWindow& b) {
                     return a.window.end < b.window.end;
                   });
  return out;
}

std::vector<StreamAlert> MonitorDriver::drain_alerts() {
  std::vector<StreamAlert> out;
  for (std::size_t i = 0; i < streams_.size(); ++i) {
    if (streams_[i]->monitor == nullptr) continue;
    for (const Alert& a : streams_[i]->monitor->drain_alerts()) {
      out.push_back({static_cast<int>(i), a});
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const StreamAlert& a, const StreamAlert& b) {
                     return a.alert.at < b.alert.at;
                   });
  return out;
}

}  // namespace g80211
