// Flat structure-of-arrays ingest buffer for the streaming monitor.
//
// One poll's worth of capture records, stored as parallel field arrays
// instead of a vector of CapturedFrame structs. Two properties matter for
// the steady-state ingest path:
//
//  * No per-frame heap traffic: clear() keeps every array's capacity, so
//    after the first few batches a push() is a handful of appends into
//    already-reserved storage and the poll -> process loop allocates
//    nothing.
//  * The window-rolling scan touches only the three arrays it needs
//    (tx flag + start/end for event times) instead of striding over
//    ~130-byte records, which is what keeps batch ingest memory-bound on
//    the fields actually read.
//
// row(i) materialises a CapturedFrame on the caller's stack for the
// detector engine, which takes frames one at a time (ReplayEngine::step).
// The eight per-frame booleans are bit-packed into one byte.
#pragma once

#include <cstdint>
#include <vector>

#include "src/capture/capture.h"

namespace g80211 {

class FrameBatch {
 public:
  std::size_t size() const { return start_.size(); }
  bool empty() const { return start_.empty(); }

  // Drop all rows, retaining capacity.
  void clear() {
    start_.clear(); end_.clear(); duration_.clear(); pkt_created_.clear();
    type_.clear(); ta_.clear(); ra_.clear(); true_tx_.clear();
    seq_.clear(); frag_.clear(); bytes_.clear(); flow_id_.clear();
    src_node_.clear(); dst_node_.clear(); pkt_seq_.clear(); pkt_uid_.clear();
    rssi_dbm_.clear(); rate_mbps_.clear(); flags_.clear();
  }

  void push(const CapturedFrame& f) {
    start_.push_back(f.start);
    end_.push_back(f.end);
    duration_.push_back(f.duration);
    pkt_created_.push_back(f.pkt_created);
    type_.push_back(f.type);
    ta_.push_back(f.ta);
    ra_.push_back(f.ra);
    true_tx_.push_back(f.true_tx);
    seq_.push_back(f.seq);
    frag_.push_back(f.frag);
    bytes_.push_back(f.bytes);
    flow_id_.push_back(f.flow_id);
    src_node_.push_back(f.src_node);
    dst_node_.push_back(f.dst_node);
    pkt_seq_.push_back(f.pkt_seq);
    pkt_uid_.push_back(f.pkt_uid);
    rssi_dbm_.push_back(f.rssi_dbm);
    rate_mbps_.push_back(f.rate_mbps);
    flags_.push_back(pack_flags(f));
  }

  // Event time in journal order (tx records at start, rx at end) without
  // materialising the row.
  Time event_time(std::size_t i) const {
    return (flags_[i] & kTx) != 0 ? start_[i] : end_[i];
  }

  CapturedFrame row(std::size_t i) const {
    CapturedFrame f;
    f.start = start_[i];
    f.end = end_[i];
    f.type = type_[i];
    f.ta = ta_[i];
    f.ra = ra_[i];
    f.true_tx = true_tx_[i];
    f.duration = duration_[i];
    f.seq = seq_[i];
    f.frag = frag_[i];
    const std::uint8_t fl = flags_[i];
    f.more_frags = (fl & kMoreFrags) != 0;
    f.retry = (fl & kRetry) != 0;
    f.corrupted = (fl & kCorrupted) != 0;
    f.collided = (fl & kCollided) != 0;
    f.tx = (fl & kTx) != 0;
    f.rssi_dbm = rssi_dbm_[i];
    f.bytes = bytes_[i];
    f.rate_mbps = rate_mbps_[i];
    f.flow_id = flow_id_[i];
    f.pkt_seq = pkt_seq_[i];
    f.pkt_uid = pkt_uid_[i];
    f.src_node = src_node_[i];
    f.dst_node = dst_node_[i];
    f.pkt_created = pkt_created_[i];
    f.probe = (fl & kProbe) != 0;
    f.probe_reply = (fl & kProbeReply) != 0;
    return f;
  }

 private:
  static constexpr std::uint8_t kMoreFrags = 1 << 0;
  static constexpr std::uint8_t kRetry = 1 << 1;
  static constexpr std::uint8_t kCorrupted = 1 << 2;
  static constexpr std::uint8_t kCollided = 1 << 3;
  static constexpr std::uint8_t kTx = 1 << 4;
  static constexpr std::uint8_t kProbe = 1 << 5;
  static constexpr std::uint8_t kProbeReply = 1 << 6;

  static std::uint8_t pack_flags(const CapturedFrame& f) {
    return static_cast<std::uint8_t>(
        (f.more_frags ? kMoreFrags : 0) | (f.retry ? kRetry : 0) |
        (f.corrupted ? kCorrupted : 0) | (f.collided ? kCollided : 0) |
        (f.tx ? kTx : 0) | (f.probe ? kProbe : 0) |
        (f.probe_reply ? kProbeReply : 0));
  }

  std::vector<Time> start_, end_, duration_, pkt_created_;
  std::vector<FrameType> type_;
  std::vector<int> ta_, ra_, true_tx_, seq_, frag_, bytes_, flow_id_;
  std::vector<int> src_node_, dst_node_;
  std::vector<std::int64_t> pkt_seq_;
  std::vector<std::uint64_t> pkt_uid_;
  std::vector<double> rssi_dbm_, rate_mbps_;
  std::vector<std::uint8_t> flags_;
};

}  // namespace g80211
