#include "src/phy/wifi_params.h"

namespace g80211 {

Time WifiParams::payload_tx_time(int bytes, double rate_mbps) const {
  if (standard == Standard::A80211 || standard == Standard::G80211) {
    // OFDM: 16-bit SERVICE + payload + 6 tail bits, rounded up to 4 us
    // symbols of N_DBPS bits. N_DBPS = 4 * rate_mbps at 802.11a rates
    // (24 bits/symbol at 6 Mbps).
    const auto ndbps = static_cast<std::int64_t>(4.0 * rate_mbps);
    const std::int64_t bits = 16 + 8 * static_cast<std::int64_t>(bytes) + 6;
    const std::int64_t symbols = (bits + ndbps - 1) / ndbps;
    return microseconds(4 * symbols);
  }
  return tx_time(8 * static_cast<std::int64_t>(bytes), rate_mbps);
}

Time WifiParams::control_tx_time(int mac_bytes) const {
  return plcp + payload_tx_time(mac_bytes, basic_rate_mbps);
}

Time WifiParams::data_tx_time(int packet_bytes) const {
  return data_tx_time_at(packet_bytes, data_rate_mbps);
}

Time WifiParams::data_tx_time_at(int packet_bytes, double rate_mbps) const {
  return plcp +
         payload_tx_time(packet_bytes + data_mac_overhead_bytes, rate_mbps);
}

std::vector<double> WifiParams::rate_ladder() const {
  if (standard == Standard::A80211 || standard == Standard::G80211) {
    return {6.0, 9.0, 12.0, 18.0, 24.0, 36.0, 48.0, 54.0};
  }
  return {1.0, 2.0, 5.5, 11.0};
}

WifiParams WifiParams::b11() {
  WifiParams p;
  p.standard = Standard::B80211;
  p.slot = microseconds(20);
  p.sifs = microseconds(10);
  p.difs = p.sifs + 2 * p.slot;  // 50 us
  p.plcp = microseconds(192);    // long preamble at 1 Mbps
  p.data_rate_mbps = 11.0;
  p.basic_rate_mbps = 1.0;
  p.cw_min = 31;
  p.cw_max = 1023;
  return p;
}

WifiParams WifiParams::b11_short_preamble() {
  WifiParams p = b11();
  p.plcp = microseconds(96);  // short preamble: 72 us sync + 24 us header@2M
  return p;
}

WifiParams WifiParams::g54() {
  WifiParams p;
  p.standard = Standard::G80211;
  p.slot = microseconds(20);  // long slot (802.11b coexistence default)
  p.sifs = microseconds(10);
  p.difs = p.sifs + 2 * p.slot;  // 50 us
  p.plcp = microseconds(20);     // ERP-OFDM preamble + SIGNAL
  p.data_rate_mbps = 54.0;
  p.basic_rate_mbps = 6.0;
  p.cw_min = 15;
  p.cw_max = 1023;
  return p;
}

WifiParams WifiParams::a6() {
  WifiParams p;
  p.standard = Standard::A80211;
  p.slot = microseconds(9);
  p.sifs = microseconds(16);
  p.difs = p.sifs + 2 * p.slot;  // 34 us
  p.plcp = microseconds(20);     // 16 us preamble + 4 us SIGNAL
  p.data_rate_mbps = 6.0;
  p.basic_rate_mbps = 6.0;
  p.cw_min = 15;
  p.cw_max = 1023;
  return p;
}

}  // namespace g80211
