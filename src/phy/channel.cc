#include "src/phy/channel.h"

#include "src/phy/phy.h"

namespace g80211 {

TxRecord* Channel::acquire_record() {
  if (free_records_.empty()) {
    records_.push_back(std::make_unique<TxRecord>());
    return records_.back().get();
  }
  TxRecord* rec = free_records_.back();
  free_records_.pop_back();
  return rec;
}

void Channel::release_record(TxRecord* rec) {
  rec->frame.packet.reset();  // drop the payload ref until the next reuse
  rec->sensed.clear();
  free_records_.push_back(rec);
}

void Channel::transmit(Phy* sender, const Frame& frame, Time airtime) {
  const Time end = sched_->now() + airtime;
  TxRecord* rec = acquire_record();
  rec->frame = frame;
  rec->end = end;
  rec->tx_id = next_tx_id_++;
  for (Phy* rx : phys_) {
    if (rx == sender) continue;
    const double d = distance(sender->position(), rx->position());
    if (!sensed_at(d)) continue;
    rec->sensed.push_back(rx);
    rx->incoming_start(*rec, propagation_.rx_power_w(d), decodable_at(d));
  }
  if (rec->sensed.empty()) {
    release_record(rec);
    return;
  }
  sched_->at(end, [this, rec] { finish(rec); });
}

void Channel::finish(TxRecord* rec) {
  // Attach order is insertion order of the old per-receiver end-events, so
  // receivers observe the end of the frame in exactly the same sequence.
  for (Phy* rx : rec->sensed) rx->incoming_end(rec->tx_id);
  release_record(rec);
}

}  // namespace g80211
