#include "src/phy/channel.h"

#include "src/phy/phy.h"

namespace g80211 {

void Channel::attach(Phy* phy) {
  phy->channel_index_ = phys_.size();
  phys_.push_back(phy);
  tables_.emplace_back();
  invalidate_topology();  // every sender's sensed set may now include `phy`
}

const NeighborSoA& Channel::neighbors_of(Phy* sender) {
  NeighborTable& t = tables_[sender->channel_index_];
  const std::uint64_t prop_gen = propagation_.generation();
  if (t.topo_gen != topology_gen_ || t.prop_gen != prop_gen) {
    t.soa.clear();
    // Same walk, same skip rules, same double math as the pre-cache
    // per-frame scan — entries land in attach order, so the fan-out (and
    // with it every event ordering and RNG draw) is bit-identical.
    for (Phy* rx : phys_) {
      if (rx == sender) continue;
      const double d = distance(sender->position(), rx->position());
      if (!sensed_at(d)) continue;
      const double p = propagation_.rx_power_w(d);
      t.soa.add(rx, p, watts_to_dbm(p), decodable_at(d));
    }
    t.topo_gen = topology_gen_;
    t.prop_gen = prop_gen;
    ++tables_rebuilt_;
  }
  return t.soa;
}

bool Channel::may_interact(const Channel& other) const {
  for (const Phy* a : phys_) {
    for (const Phy* b : other.phys_) {
      const double d = distance(a->position(), b->position());
      // Check both channels' range semantics: a transmission from `a`
      // reaches `b` under *this* channel's ranges, and vice versa. Either
      // direction crossing the boundary invalidates the partition.
      if (sensed_at(d) || other.sensed_at(d)) return true;
    }
  }
  return false;
}

TxRecord* Channel::acquire_record() {
  G80211_ALLOC_OK(
      "pool growth stops at the high-water mark of concurrent "
      "transmissions; steady state reuses the free list");
  if (free_records_.empty()) {
    records_.push_back(std::make_unique<TxRecord>());
    return records_.back().get();
  }
  TxRecord* rec = free_records_.back();
  free_records_.pop_back();
  return rec;
}

void Channel::release_record(TxRecord* rec) {
  rec->frame.packet.reset();  // drop the payload ref until the next reuse
  rec->sensed.clear();
  // NOLINTNEXTLINE(hot-path-alloc): holds at most records_.size() entries,
  // so capacity stops at the record-pool high-water mark.
  free_records_.push_back(rec);
}

// Reference fan-out: the pre-cache per-frame walk, all radio math redone
// from positions for every frame. Kept for the SoA/scalar bit-identity
// test; not the hot path.
void Channel::transmit_scalar(TxRecord* rec, Phy* sender) {
  G80211_ALLOC_OK(
      "reference fan-out kept for the SoA/scalar bit-identity test; the "
      "production sweep is the link-table path in transmit()");
  const Time now = sched_->now();
  for (Phy* rx : phys_) {
    if (rx == sender) continue;
    const double d = distance(sender->position(), rx->position());
    if (!sensed_at(d)) continue;
    const double p = propagation_.rx_power_w(d);
    rec->sensed.push_back(rx);
    rx->incoming_start(*rec, p, watts_to_dbm(p), decodable_at(d), now);
  }
}

void Channel::transmit(Phy* sender, const Frame& frame, Time airtime) {
  const Time now = sched_->now();
  const Time end = now + airtime;
  // tx_id advances even for transmissions nobody senses (as it always
  // has), so id sequences are independent of topology.
  const std::uint64_t tx_id = next_tx_id_++;

  if (use_scalar_fanout) {
    TxRecord* rec = acquire_record();
    rec->frame = frame;
    rec->frame.true_tx = sender->id();
    rec->end = end;
    rec->tx_id = tx_id;
    rec->sender = sender;
    transmit_scalar(rec, sender);
    if (rec->sensed.empty()) {
      release_record(rec);
      sched_->at(end, [sender] { sender->tx_done(); });
      return;
    }
    sched_->at(end, [this, rec] { finish(rec); });
    return;
  }

  const NeighborSoA& t = neighbors_of(sender);
  if (t.empty()) {
    // Nobody in range: no record, but the sender still needs its tx-done
    // edge at the end of the airtime.
    sched_->at(end, [sender] { sender->tx_done(); });
    return;
  }
  TxRecord* rec = acquire_record();
  rec->frame = frame;
  rec->frame.true_tx = sender->id();
  rec->end = end;
  rec->tx_id = tx_id;
  rec->sender = sender;
  // One sweep over the sender's SoA arrays: the receiver set lands in
  // rec->sensed in a single bulk copy, then each receiver's interference
  // sum and rx-start state are posted from the index-aligned arrays. The
  // per-receiver body (Phy::incoming_start) is header-inline, so this loop
  // compiles to one tight pass with no out-of-line call per receiver.
  const std::size_t n = t.rx.size();
  Phy* const* rxs = t.rx.data();
  const double* pw = t.power_w.data();
  const double* pdbm = t.power_dbm.data();
  const std::uint8_t* dec = t.decodable.data();
  // NOLINTNEXTLINE(hot-path-alloc): the pooled record's vector reuses its
  // capacity; it grows only until the fan-out high-water mark.
  rec->sensed.assign(rxs, rxs + n);
  for (std::size_t i = 0; i < n; ++i) {
    rxs[i]->incoming_start(*rec, pw[i], pdbm[i], dec[i] != 0, now);
  }
  sched_->at(end, [this, rec] { finish(rec); });
}

void Channel::finish(TxRecord* rec) {
  // Attach order is insertion order of the old per-receiver end-events, so
  // receivers observe the end of the frame in exactly the same sequence.
  for (Phy* rx : rec->sensed) rx->incoming_end(rec->tx_id);
  // The sender's tx-done used to be its own event scheduled immediately
  // after this one (same timestamp, next sequence number): nothing could
  // ever run between them, so folding it in here drops one scheduler
  // event per frame without reordering anything observable.
  rec->sender->tx_done();
  release_record(rec);
}

}  // namespace g80211
