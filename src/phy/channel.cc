#include "src/phy/channel.h"

#include "src/phy/phy.h"

namespace g80211 {

void Channel::transmit(Phy* sender, const Frame& frame, Time airtime) {
  const Time end = sched_->now() + airtime;
  const std::uint64_t tx_id = next_tx_id_++;
  for (Phy* rx : phys_) {
    if (rx == sender) continue;
    const double d = distance(sender->position(), rx->position());
    if (!sensed_at(d)) continue;
    const double rss = propagation_.rx_power_w(d);
    const bool decodable = decodable_at(d);
    rx->incoming_start(tx_id, frame, rss, end, decodable);
    sched_->at(end, [rx, tx_id] { rx->incoming_end(tx_id); });
  }
}

}  // namespace g80211
