#include "src/phy/channel.h"

#include "src/phy/phy.h"

namespace g80211 {

void Channel::attach(Phy* phy) {
  phy->channel_index_ = phys_.size();
  phys_.push_back(phy);
  tables_.emplace_back();
  invalidate_topology();  // every sender's sensed set may now include `phy`
}

const std::vector<LinkState>& Channel::neighbors_of(Phy* sender) {
  NeighborTable& t = tables_[sender->channel_index_];
  const std::uint64_t prop_gen = propagation_.generation();
  if (t.topo_gen != topology_gen_ || t.prop_gen != prop_gen) {
    t.neighbors.clear();
    // Same walk, same skip rules, same double math as the pre-cache
    // per-frame scan — entries land in attach order, so the fan-out (and
    // with it every event ordering and RNG draw) is bit-identical.
    for (Phy* rx : phys_) {
      if (rx == sender) continue;
      const double d = distance(sender->position(), rx->position());
      if (!sensed_at(d)) continue;
      const double p = propagation_.rx_power_w(d);
      t.neighbors.push_back(LinkState{rx, p, watts_to_dbm(p), decodable_at(d)});
    }
    t.topo_gen = topology_gen_;
    t.prop_gen = prop_gen;
    ++tables_rebuilt_;
  }
  return t.neighbors;
}

TxRecord* Channel::acquire_record() {
  if (free_records_.empty()) {
    records_.push_back(std::make_unique<TxRecord>());
    return records_.back().get();
  }
  TxRecord* rec = free_records_.back();
  free_records_.pop_back();
  return rec;
}

void Channel::release_record(TxRecord* rec) {
  rec->frame.packet.reset();  // drop the payload ref until the next reuse
  rec->sensed.clear();
  free_records_.push_back(rec);
}

void Channel::transmit(Phy* sender, const Frame& frame, Time airtime) {
  const Time end = sched_->now() + airtime;
  // tx_id advances even for transmissions nobody senses (as it always
  // has), so id sequences are independent of topology.
  const std::uint64_t tx_id = next_tx_id_++;
  const std::vector<LinkState>& neighbors = neighbors_of(sender);
  if (neighbors.empty()) return;
  TxRecord* rec = acquire_record();
  rec->frame = frame;
  rec->end = end;
  rec->tx_id = tx_id;
  for (const LinkState& link : neighbors) {
    rec->sensed.push_back(link.rx);
    link.rx->incoming_start(*rec, link.rx_power_w, link.rx_power_dbm,
                            link.decodable);
  }
  sched_->at(end, [this, rec] { finish(rec); });
}

void Channel::finish(TxRecord* rec) {
  // Attach order is insertion order of the old per-receiver end-events, so
  // receivers observe the end of the frame in exactly the same sequence.
  for (Phy* rx : rec->sensed) rx->incoming_end(rec->tx_id);
  release_record(rec);
}

}  // namespace g80211
