// Per-node half-duplex transceiver.
//
// Tracks every transmission currently in the air at this node, implements
// physical carrier sensing, reception with a symmetric capture rule, and
// BER-driven frame corruption. The capture rule follows the paper's
// Section IV-B setup: of two overlapping frames, the one whose received
// signal strength exceeds the other's by the capture threshold is
// demodulated; otherwise both are lost (collision).
//
// RSSI: every delivered frame carries a measured RSSI (dBm) = true received
// power + Gaussian measurement noise + a rare heavy-tail outlier, matching
// the paper's testbed observation that ~95% of samples fall within 1 dB of
// the link median (Fig 21). Detection code sees only this measured value.
//
// Hot-path layout: incoming_start/incoming_end are header-inline so the
// channel's SoA fan-out sweep compiles into one tight loop per frame; only
// the per-delivery tail (error model, RSSI draw, listener dispatch) stays
// out of line in finish_reception().
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/mac/frame.h"
#include "src/phy/channel.h"
#include "src/phy/propagation.h"
#include "src/sim/check.h"
#include "src/sim/hot.h"
#include "src/sim/rng.h"
#include "src/sim/scheduler.h"

namespace g80211 {

struct RxInfo {
  double rss_w = 0.0;        // true received power (watts)
  double rssi_dbm = 0.0;     // measured RSSI (noisy, what detectors see)
  bool corrupted = false;    // bit errors or collision
  bool collided = false;     // corruption was due to overlap
  bool addresses_intact = true;  // meaningful when corrupted
  Time start = 0;
  Time end = 0;
};

class PhyListener {
 public:
  virtual ~PhyListener() = default;
  // A frame finished arriving (possibly corrupted). Promiscuous: called for
  // every decodable frame regardless of addressing.
  virtual void on_rx_end(const Frame& frame, const RxInfo& info) = 0;
  virtual void on_channel_busy() = 0;
  virtual void on_channel_idle() = 0;
  virtual void on_tx_end() = 0;
};

class Phy {
 public:
  Phy(Channel& channel, int node_id, Position pos, Rng rng)
      : channel_(&channel), id_(node_id), pos_(pos), rng_(rng) {
    ongoing_.reserve(8);  // overlap depth rarely exceeds a few frames
    channel.attach(this);
  }

  void set_listener(PhyListener* l) { listener_ = l; }
  int id() const { return id_; }
  const Position& position() const { return pos_; }
  // Moving a node marks every link table in the channel stale (they are
  // rebuilt lazily on the next transmit). A no-op move — a mobility tick
  // with zero velocity — keeps the caches warm.
  void set_position(Position p) {
    if (p.x == pos_.x && p.y == pos_.y) return;
    pos_ = p;
    channel_->invalidate_topology();
  }

  // Physical carrier sense (includes own transmission).
  bool carrier_busy() const { return transmitting_ || !ongoing_.empty(); }
  bool transmitting() const { return transmitting_; }

  // Standard deviation of RSSI measurement noise in dB, plus a small
  // probability of a multipath outlier drawn with a wider deviation.
  double rssi_noise_db = 0.4;
  double rssi_outlier_prob = 0.02;
  double rssi_outlier_db = 2.5;

  // Begin transmitting; the PHY must not already be transmitting. Any
  // in-progress reception is aborted (half duplex). Hot root
  // (src/sim/hot.h): every frame passes through here.
  G80211_HOT void transmit(const Frame& frame, Time airtime);

  // Channel-facing reception path. `rec` stays valid until this PHY's
  // incoming_end(rec.tx_id) returns (the channel releases the record after
  // fanning the end out to every sensed PHY). `rss_dbm` must equal
  // watts_to_dbm(rss_w); the channel's link table precomputes it so the
  // RSSI path pays no log10 per frame. Inline: this is the body of the
  // channel's per-frame fan-out sweep.
  // `now` is the scheduler clock, hoisted out of the channel's fan-out
  // loop so the sweep pays the load once per frame, not per receiver.
  G80211_HOT void incoming_start(const TxRecord& rec, double rss_w,
                                 double rss_dbm, bool decodable, Time now) {
    const bool was_busy = carrier_busy();

    if (!transmitting_) {
      const double cap = channel_->capture_threshold;
      if (current_rx_ == 0) {
        if (decodable) {
          // Interference from transmissions already in the air: the running
          // sum over ongoing_, maintained instead of rescanned.
          const double interference = ongoing_power_w_;
          current_rx_ = rec.tx_id;
          current_collided_ =
              interference > 0.0 && (cap <= 0.0 || rss_w < cap * interference);
        }
      } else {
        const Ongoing* cur = find_ongoing(current_rx_);
        G80211_DCHECK(cur != nullptr);
        if (cap > 0.0 && cur->rss_w >= cap * rss_w) {
          // Current frame powers through; newcomer is just interference.
        } else if (cap > 0.0 && decodable && rss_w >= cap * cur->rss_w) {
          // Newcomer captures the receiver; the old frame is lost.
          current_rx_ = rec.tx_id;
          current_collided_ = false;
        } else {
          current_collided_ = true;
        }
      }
    }
    // NOLINTNEXTLINE(hot-path-alloc): reserve(8) in the ctor; grows only
    // past 8 concurrent receptions and then holds the high-water capacity.
    ongoing_.push_back(
        Ongoing{rec.tx_id, &rec.frame, rss_w, rss_dbm, now, rec.end, decodable});
    ongoing_power_w_ += rss_w;
    notify_edges(was_busy);
  }

  G80211_HOT void incoming_end(std::uint64_t tx_id) {
    std::size_t i = 0;
    while (i < ongoing_.size() && ongoing_[i].tx_id != tx_id) ++i;
    G80211_DCHECK(i < ongoing_.size());
    const Ongoing o = ongoing_[i];
    // Stable erase keeps ongoing_ in ascending-tx_id order.
    ongoing_.erase(ongoing_.begin() + static_cast<std::ptrdiff_t>(i));
    ongoing_power_w_ -= o.rss_w;
    // Exact reset: an empty channel must read exactly zero interference,
    // not an accumulated floating-point residue.
    if (ongoing_.empty()) ongoing_power_w_ = 0.0;

    if (tx_id == current_rx_) {
      const bool collided = current_collided_;
      current_rx_ = 0;
      current_collided_ = false;
      if (!transmitting_) finish_reception(o, collided);
    }
    notify_edges(/*was_busy=*/true);
  }

 private:
  void tx_done();
  void notify_edges(bool was_busy) {
    const bool busy = carrier_busy();
    if (!listener_) return;
    if (!was_busy && busy) listener_->on_channel_busy();
    if (was_busy && !busy) listener_->on_channel_idle();
  }
  double measured_rssi(double rss_dbm);

  struct Ongoing {
    std::uint64_t tx_id = 0;
    const Frame* frame = nullptr;  // into the channel's shared TxRecord
    double rss_w = 0.0;
    double rss_dbm = 0.0;  // watts_to_dbm(rss_w), precomputed by the channel
    Time start = 0;
    Time end = 0;
    bool decodable = false;
  };
  const Ongoing* find_ongoing(std::uint64_t tx_id) const {
    for (const Ongoing& o : ongoing_) {
      if (o.tx_id == tx_id) return &o;
    }
    return nullptr;
  }
  // Delivery tail for the frame this PHY was demodulating: frame error
  // model, RSSI measurement, listener dispatch. Out of line — it runs once
  // per addressed frame, not once per (frame, receiver). Hot root
  // (src/sim/hot.h).
  G80211_HOT void finish_reception(const Ongoing& o, bool collided);

  Channel* channel_;
  int id_;
  std::size_t channel_index_ = 0;  // attach index; set by Channel::attach
  Position pos_;
  Rng rng_;
  PhyListener* listener_ = nullptr;

  // Everything sensed in the air. Transmissions overlap a handful at a
  // time, so a flat vector beats the old std::map; erases are stable so
  // iteration order stays ascending-tx_id, exactly as the map's was.
  std::vector<Ongoing> ongoing_;
  double ongoing_power_w_ = 0.0;  // running sum of ongoing rss (interference)
  std::uint64_t current_rx_ = 0;  // tx_id being demodulated (0 = none)
  bool current_collided_ = false;
  bool transmitting_ = false;

  friend class Channel;
};

}  // namespace g80211
