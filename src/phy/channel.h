// The shared wireless medium.
//
// Transmissions propagate (with zero propagation delay — at hotspot scales
// the <1 us flight time is far below a slot) to every PHY whose distance is
// within the carrier-sense range; frames are decodable within the (smaller
// or equal) communication range. Range semantics:
//   comm_range_m <= 0 : every node decodes every frame (the paper's default
//                       "all nodes are within communication range").
//   cs_range_m   <= 0 : carrier-sense range equals communication range.
// Setting cs_range_m > comm_range_m creates an interference-only band
// (Fig 23's 55 m / 99 m setup); placing senders outside each other's CS
// range while receivers hear both creates hidden terminals (Fig 18).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/mac/frame.h"
#include "src/phy/error_model.h"
#include "src/phy/propagation.h"
#include "src/phy/wifi_params.h"
#include "src/sim/hot.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class Phy;

// One transmission in flight, shared by every PHY that sensed it. The
// channel used to hand each receiver its own Frame copy plus its own
// end-event; now all sensed PHYs reference one record and a single
// end-event fans the finish out in attach order (identical to the old
// per-receiver insertion-sequence order, so event ordering is unchanged).
// Records are pooled by the channel: the Frame assignment reuses the
// record's storage and only bumps the payload refcount.
struct TxRecord {
  Frame frame;
  Time end = 0;
  std::uint64_t tx_id = 0;
  Phy* sender = nullptr;  // keyed radio; told tx-done when the frame ends
  std::vector<Phy*> sensed;  // receivers, in channel attach order
};

// A sender's link table in structure-of-arrays form: index-aligned
// contiguous arrays over every receiver within sensing range, in channel
// attach order (the fan-out order contract). Strangers outside
// carrier-sense range never appear, so the transmit fan-out pays zero
// distance/propagation math per frame — it is one sweep over these arrays
// posting interference deltas and rx-start state into each receiver. The
// dBm conversion (a log10 formerly paid per delivered frame in the RSSI
// path) is precomputed here too and threaded through reception.
struct NeighborSoA {
  std::vector<Phy*> rx;
  std::vector<double> power_w;
  std::vector<double> power_dbm;     // watts_to_dbm(power_w), cached
  std::vector<std::uint8_t> decodable;

  std::size_t size() const { return rx.size(); }
  bool empty() const { return rx.empty(); }
  void clear() {
    rx.clear();
    power_w.clear();
    power_dbm.clear();
    decodable.clear();
  }
  void add(Phy* receiver, double p_w, double p_dbm, bool dec) {
    G80211_ALLOC_OK(
        "link-table rebuild runs on topology/propagation change, not per "
        "frame; the arrays re-reach their high-water capacity and stay");
    rx.push_back(receiver);
    power_w.push_back(p_w);
    power_dbm.push_back(p_dbm);
    decodable.push_back(dec ? 1 : 0);
  }
};

class Channel {
 public:
  Channel(Scheduler& sched, WifiParams params) : sched_(&sched), params_(params) {}

  void set_ranges(double comm_range_m, double cs_range_m) {
    comm_range_m_ = comm_range_m;
    cs_range_m_ = cs_range_m;
    invalidate_topology();
  }
  double comm_range_m() const { return comm_range_m_; }
  double cs_range_m() const { return cs_range_m_ > 0 ? cs_range_m_ : comm_range_m_; }

  ErrorModel& error_model() { return error_model_; }
  const ErrorModel& error_model() const { return error_model_; }
  Propagation& propagation() { return propagation_; }
  const WifiParams& params() const { return params_; }
  Scheduler& scheduler() { return *sched_; }

  // Power ratio above which the stronger of two overlapping frames is
  // captured (ns-2 CPThresh_ = 10). Set <= 0 to disable capture entirely
  // (ablation: every overlap is a collision).
  double capture_threshold = 10.0;

  // Reference mode for tests: route transmit() through the pre-cache
  // scalar walk (distance + propagation math per receiver per frame, no
  // link tables). Bit-identical to the SoA sweep by construction; the
  // mixed-topology identity test in tests/test_phy_channel.cc pins it.
  bool use_scalar_fanout = false;

  void attach(Phy* phy);
  const std::vector<Phy*>& phys() const { return phys_; }

  // Broadcast `frame` from `sender` for `airtime`. Hot root: the
  // per-frame fan-out sweep (src/sim/hot.h).
  G80211_HOT void transmit(Phy* sender, const Frame& frame, Time airtime);

  // Sender's link table (see NeighborSoA). Rebuilt lazily when the
  // topology generation moved (attach, set_position, set_ranges) or
  // propagation parameters changed.
  const NeighborSoA& neighbors_of(Phy* sender);

  // Marks every link table stale. Cheap (one counter bump): callers may
  // invoke it per mobility tick; tables rebuild lazily on the next
  // transmit, amortised over the frames between moves.
  void invalidate_topology() { ++topology_gen_; }
  std::uint64_t topology_generation() const { return topology_gen_; }
  // Total table rebuilds, for tests/benchmarks asserting cache behaviour.
  std::uint64_t link_tables_rebuilt() const { return tables_rebuilt_; }

  bool decodable_at(double dist_m) const {
    return comm_range_m_ <= 0 || dist_m <= comm_range_m_;
  }
  bool sensed_at(double dist_m) const {
    return decodable_at(dist_m) || (cs_range_m_ > 0 && dist_m <= cs_range_m_);
  }

  // Partition validator primitive for the sharded engine: true when any
  // node attached to this channel could sense — or be sensed by — any node
  // attached to `other`, were they on one shared medium. Splitting two
  // channels for which this returns true would *change the physics* (a
  // transmission that should defer or collide simply vanishes at the shard
  // boundary), so ShardedSim refuses such partitions. Unlimited ranges
  // (comm_range_m <= 0) on either side make every cross pair interacting.
  // O(|this| * |other|): a build-time check, never on the event path.
  bool may_interact(const Channel& other) const;

 private:
  TxRecord* acquire_record();
  void release_record(TxRecord* rec);
  void finish(TxRecord* rec);
  void transmit_scalar(TxRecord* rec, Phy* sender);

  Scheduler* sched_;
  WifiParams params_;
  ErrorModel error_model_;
  Propagation propagation_;
  std::vector<Phy*> phys_;
  double comm_range_m_ = 0;  // <= 0: unlimited
  double cs_range_m_ = 0;    // <= 0: same as comm range
  std::uint64_t next_tx_id_ = 1;
  // Per-sender link tables, indexed by the sender's attach index. A table
  // is valid while both generation stamps match; topology_gen_ starts at 1
  // so a freshly attached (zero-stamped) table is always stale.
  struct NeighborTable {
    std::uint64_t topo_gen = 0;
    std::uint64_t prop_gen = 0;
    NeighborSoA soa;
  };
  std::vector<NeighborTable> tables_;
  std::uint64_t topology_gen_ = 1;
  std::uint64_t tables_rebuilt_ = 0;
  // Record pool: records_ owns every record ever created (so teardown with
  // transmissions still in flight leaks nothing); free_records_ lists the
  // idle ones. Steady state allocates no new records.
  std::vector<std::unique_ptr<TxRecord>> records_;
  std::vector<TxRecord*> free_records_;
};

}  // namespace g80211
