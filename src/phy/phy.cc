#include "src/phy/phy.h"

#include "src/sim/check.h"


namespace g80211 {

// `rss_dbm` is the precomputed watts_to_dbm of the true received power;
// the sum below is the same operation (same bits) as converting here, the
// log10 has just been hoisted into the channel's link table.
double Phy::measured_rssi(double rss_dbm) {
  double noise = rng_.normal(0.0, rssi_noise_db);
  if (rng_.chance(rssi_outlier_prob)) {
    noise += rng_.normal(0.0, rssi_outlier_db);
  }
  return rss_dbm + noise;
}

void Phy::notify_edges(bool was_busy) {
  const bool busy = carrier_busy();
  if (!listener_) return;
  if (!was_busy && busy) listener_->on_channel_busy();
  if (was_busy && !busy) listener_->on_channel_idle();
}

void Phy::transmit(const Frame& frame, Time airtime) {
  G80211_DCHECK(!transmitting_ && "half-duplex PHY already transmitting");
  const bool was_busy = carrier_busy();
  // Half duplex: transmitting stomps any in-progress reception.
  current_rx_ = 0;
  current_collided_ = false;
  transmitting_ = true;
  Frame f = frame;
  f.true_tx = id_;
  channel_->transmit(this, f, airtime);
  channel_->scheduler().after(airtime, [this] { tx_done(); });
  notify_edges(was_busy);
}

void Phy::tx_done() {
  transmitting_ = false;
  if (listener_) listener_->on_tx_end();
  // If nothing else is in the air, the medium just went idle for us.
  notify_edges(/*was_busy=*/true);
}

const Phy::Ongoing* Phy::find_ongoing(std::uint64_t tx_id) const {
  for (const Ongoing& o : ongoing_) {
    if (o.tx_id == tx_id) return &o;
  }
  return nullptr;
}

void Phy::incoming_start(const TxRecord& rec, double rss_w, double rss_dbm,
                         bool decodable) {
  const bool was_busy = carrier_busy();
  const Time now = channel_->scheduler().now();

  if (!transmitting_) {
    const double cap = channel_->capture_threshold;
    if (current_rx_ == 0) {
      if (decodable) {
        // Interference from transmissions already in the air: the running
        // sum over ongoing_, maintained instead of rescanned.
        const double interference = ongoing_power_w_;
        current_rx_ = rec.tx_id;
        current_collided_ =
            interference > 0.0 && (cap <= 0.0 || rss_w < cap * interference);
      }
    } else {
      const Ongoing* cur = find_ongoing(current_rx_);
      G80211_DCHECK(cur != nullptr);
      if (cap > 0.0 && cur->rss_w >= cap * rss_w) {
        // Current frame powers through; newcomer is just interference.
      } else if (cap > 0.0 && decodable && rss_w >= cap * cur->rss_w) {
        // Newcomer captures the receiver; the old frame is lost.
        current_rx_ = rec.tx_id;
        current_collided_ = false;
      } else {
        current_collided_ = true;
      }
    }
  }
  ongoing_.push_back(
      Ongoing{rec.tx_id, &rec.frame, rss_w, rss_dbm, now, rec.end, decodable});
  ongoing_power_w_ += rss_w;
  notify_edges(was_busy);
}

void Phy::incoming_end(std::uint64_t tx_id) {
  std::size_t i = 0;
  while (i < ongoing_.size() && ongoing_[i].tx_id != tx_id) ++i;
  G80211_DCHECK(i < ongoing_.size());
  const Ongoing o = ongoing_[i];
  // Stable erase keeps ongoing_ in ascending-tx_id order.
  ongoing_.erase(ongoing_.begin() + static_cast<std::ptrdiff_t>(i));
  ongoing_power_w_ -= o.rss_w;
  // Exact reset: an empty channel must read exactly zero interference, not
  // an accumulated floating-point residue.
  if (ongoing_.empty()) ongoing_power_w_ = 0.0;

  if (tx_id == current_rx_ && !transmitting_) {
    const bool collided = current_collided_;
    current_rx_ = 0;
    current_collided_ = false;

    const Frame& frame = *o.frame;
    const ErrorModel& em = channel_->error_model();
    const double ber = em.ber(frame.true_tx, id_);
    // A fragment is only exposed for its own airtime, not the full MSDU's.
    const int pkt_bytes = frame.air_bytes();
    const int len = ErrorModel::error_len(frame.type, pkt_bytes);
    const bool bit_errors = rng_.chance(em.frame_error_prob(
        frame.true_tx, id_, frame.type, pkt_bytes, frame.rate_mbps));

    RxInfo info;
    info.rss_w = o.rss_w;
    info.rssi_dbm = measured_rssi(o.rss_dbm);
    info.start = o.start;
    info.end = o.end;
    info.collided = collided;
    info.corrupted = collided || bit_errors;
    if (!info.corrupted) {
      info.addresses_intact = true;
    } else if (collided || ber <= 0.0) {
      // Collision- or rate-cliff-induced corruption: header survival is
      // governed by the overlap/fade geometry, not per-bit independence.
      info.addresses_intact = rng_.chance(em.collision_addr_intact_prob);
    } else {
      info.addresses_intact =
          rng_.chance(ErrorModel::addr_intact_given_corrupt(ber, len));
    }
    if (listener_) listener_->on_rx_end(frame, info);
  } else if (tx_id == current_rx_) {
    current_rx_ = 0;
    current_collided_ = false;
  }
  notify_edges(/*was_busy=*/true);
}

}  // namespace g80211
