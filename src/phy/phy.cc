#include "src/phy/phy.h"

namespace g80211 {

// `rss_dbm` is the precomputed watts_to_dbm of the true received power;
// the sum below is the same operation (same bits) as converting here, the
// log10 has just been hoisted into the channel's link table.
double Phy::measured_rssi(double rss_dbm) {
  double noise = rng_.normal(0.0, rssi_noise_db);
  if (rng_.chance(rssi_outlier_prob)) {
    noise += rng_.normal(0.0, rssi_outlier_db);
  }
  return rss_dbm + noise;
}

void Phy::transmit(const Frame& frame, Time airtime) {
  G80211_DCHECK(!transmitting_ && "half-duplex PHY already transmitting");
  const bool was_busy = carrier_busy();
  // Half duplex: transmitting stomps any in-progress reception.
  current_rx_ = 0;
  current_collided_ = false;
  transmitting_ = true;
  // No local Frame copy: the channel copies the frame into its TxRecord
  // anyway and stamps true_tx there, so copying here (plus the packet
  // refcount round-trip it implies) would be pure overhead.
  // The channel delivers tx_done() at the end of the airtime — folded into
  // its frame-end event (or a dedicated one when nobody is in range), so a
  // transmission costs one scheduler event, not two.
  channel_->transmit(this, frame, airtime);
  notify_edges(was_busy);
}

void Phy::tx_done() {
  transmitting_ = false;
  if (listener_) listener_->on_tx_end();
  // If nothing else is in the air, the medium just went idle for us.
  notify_edges(/*was_busy=*/true);
}

void Phy::finish_reception(const Ongoing& o, bool collided) {
  const Frame& frame = *o.frame;
  const ErrorModel& em = channel_->error_model();
  // A fragment is only exposed for its own airtime, not the full MSDU's.
  const int pkt_bytes = frame.air_bytes();
  const bool bit_errors = rng_.chance(em.frame_error_prob(
      frame.true_tx, id_, frame.type, pkt_bytes, frame.rate_mbps));

  RxInfo info;
  info.rss_w = o.rss_w;
  info.rssi_dbm = measured_rssi(o.rss_dbm);
  info.start = o.start;
  info.end = o.end;
  info.collided = collided;
  info.corrupted = collided || bit_errors;
  if (!info.corrupted) {
    info.addresses_intact = true;
  } else {
    // ber/len are only needed on this (rare) corrupted path; both are pure
    // lookups, so deferring them here changes no RNG draw.
    const double ber = em.ber(frame.true_tx, id_);
    if (collided || ber <= 0.0) {
      // Collision- or rate-cliff-induced corruption: header survival is
      // governed by the overlap/fade geometry, not per-bit independence.
      info.addresses_intact = rng_.chance(em.collision_addr_intact_prob);
    } else {
      const int len = ErrorModel::error_len(frame.type, pkt_bytes);
      info.addresses_intact =
          rng_.chance(ErrorModel::addr_intact_given_corrupt(ber, len));
    }
  }
  if (listener_) listener_->on_rx_end(frame, info);
}

}  // namespace g80211
