#include "src/phy/error_model.h"

#include <cmath>
#include <limits>

#include "src/sim/check.h"

namespace g80211 {

int ErrorModel::error_len(FrameType type, int packet_bytes) {
  switch (type) {
    case FrameType::kRts:
      return 44;
    case FrameType::kCts:
    case FrameType::kAck:
      return 38;
    case FrameType::kData:
      return packet_bytes + 72;
  }
  return 0;
}

double ErrorModel::fer(double ber, int len) {
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - ber, len);
}

double ErrorModel::ber_for_fer(double target_fer, int len) {
  G80211_CHECK(target_fer >= 0.0 && target_fer < 1.0 && len > 0);
  if (target_fer <= 0.0) return 0.0;
  return 1.0 - std::pow(1.0 - target_fer, 1.0 / len);
}

void ErrorModel::ensure_dense(int id) {
  if (in_dense(id) || id < 0 || id >= kMaxDenseId) return;
  int new_stride = stride_ == 0 ? 8 : stride_;
  while (new_stride <= id) new_stride *= 2;
  if (new_stride > kMaxDenseId) new_stride = kMaxDenseId;
  std::vector<double> ber(
      static_cast<std::size_t>(new_stride) * static_cast<std::size_t>(new_stride),
      std::numeric_limits<double>::quiet_NaN());
  std::vector<RateLimit> rate(ber.size());
  for (int t = 0; t < stride_; ++t) {
    for (int r = 0; r < stride_; ++r) {
      const std::size_t old_i = dense_index(t, r);
      const std::size_t new_i = static_cast<std::size_t>(t) *
                                    static_cast<std::size_t>(new_stride) +
                                static_cast<std::size_t>(r);
      ber[new_i] = link_ber_[old_i];
      rate[new_i] = rate_limit_[old_i];
    }
  }
  link_ber_ = std::move(ber);
  rate_limit_ = std::move(rate);
  stride_ = new_stride;
  fer_memo_.assign(link_ber_.size(), FerMemo{});
}

void ErrorModel::invalidate_memos() {
  for (FerMemo& m : fer_memo_) m.by_len.clear();
  default_memo_.by_len.clear();
}

void ErrorModel::set_default_ber(double ber) {
  default_ber_ = ber;
  if (ber != 0.0) trivial_ = false;
  invalidate_memos();
}

void ErrorModel::set_link_ber(int tx, int rx, double ber) {
  if (ber != 0.0) trivial_ = false;
  ensure_dense(tx);
  ensure_dense(rx);
  if (in_dense(tx) && in_dense(rx)) {
    link_ber_[dense_index(tx, rx)] = ber;
  } else {
    overflow_ber_[{tx, rx}] = ber;
    has_overflow_ = true;
  }
  invalidate_memos();
}

void ErrorModel::set_link_rate_limit(int tx, int rx, double max_good_rate_mbps,
                                     double excess_fer) {
  ensure_dense(tx);
  ensure_dense(rx);
  if (in_dense(tx) && in_dense(rx)) {
    rate_limit_[dense_index(tx, rx)] = RateLimit{max_good_rate_mbps, excess_fer};
  } else {
    overflow_rate_[{tx, rx}] = RateLimit{max_good_rate_mbps, excess_fer};
    has_overflow_ = true;
  }
  has_rate_limit_ = true;
  trivial_ = false;
  invalidate_memos();
}

double ErrorModel::cached_fer(int tx, int rx, int len) const {
  FerMemo* memo = nullptr;
  if (in_dense(tx) && in_dense(rx)) {
    memo = &fer_memo_[dense_index(tx, rx)];
  } else if (!has_overflow_) {
    // Every link outside the dense block shares the default BER, so one
    // shared memo is exact.
    memo = &default_memo_;
  }
  if (memo != nullptr) {
    for (const auto& [l, f] : memo->by_len) {
      if (l == len) return f;
    }
  }
  const double f = fer(ber(tx, rx), len);
  // NOLINTNEXTLINE(hot-path-alloc): first contact per (link, frame length);
  // every later frame on the link hits the memo scan above.
  if (memo != nullptr) memo->by_len.emplace_back(len, f);
  return f;
}

double ErrorModel::frame_error_prob_slow(int tx, int rx, FrameType type,
                                         int packet_bytes,
                                         double rate_mbps) const {
  const double base = cached_fer(tx, rx, error_len(type, packet_bytes));
  if (type != FrameType::kData) return base;
  const double excess = rate_excess_fer(tx, rx, rate_mbps);
  // Independent corruption sources compose. Kept as one expression even
  // when excess is zero: 1 - (1 - base) is not bit-identical to base for
  // tiny base, and this exact formula is what every figure was frozen on.
  return 1.0 - (1.0 - base) * (1.0 - excess);
}

double ErrorModel::addr_intact_given_corrupt(double ber, int len) {
  if (ber <= 0.0) return 1.0;
  const double p_frame_ok = std::pow(1.0 - ber, len);
  if (p_frame_ok >= 1.0) return 1.0;
  const double p_addr_ok = std::pow(1.0 - ber, 12);
  // P(addr ok AND frame corrupted) = P(addr ok) - P(frame ok), since a
  // fully intact frame implies intact addresses.
  return (p_addr_ok - p_frame_ok) / (1.0 - p_frame_ok);
}

ErrorModel::CorruptionBreakdown ErrorModel::corruption_study(
    Rng& rng, double bit_ber, int frame_bytes, std::int64_t n_frames) {
  CorruptionBreakdown out;
  out.received = n_frames;
  // 802.11 data frame layout: Address1 (destination) at byte offsets 4-9,
  // Address2 (source) at 10-15.
  const int addr_bits = 6 * 8;
  const int other_bits = frame_bytes * 8 - 2 * addr_bits;
  G80211_DCHECK(other_bits > 0);
  const double p_dest_ok = std::pow(1.0 - bit_ber, addr_bits);
  const double p_src_ok = p_dest_ok;
  const double p_rest_ok = std::pow(1.0 - bit_ber, other_bits);
  for (std::int64_t i = 0; i < n_frames; ++i) {
    const bool dest_ok = rng.chance(p_dest_ok);
    const bool src_ok = rng.chance(p_src_ok);
    const bool rest_ok = rng.chance(p_rest_ok);
    const bool corrupted = !(dest_ok && src_ok && rest_ok);
    if (!corrupted) continue;
    ++out.corrupted;
    if (dest_ok) {
      ++out.corrupted_correct_dest;
      if (src_ok) ++out.corrupted_correct_src_dest;
    }
  }
  return out;
}

}  // namespace g80211
