#include "src/phy/error_model.h"

#include <cassert>
#include <cmath>

namespace g80211 {

int ErrorModel::error_len(FrameType type, int packet_bytes) {
  switch (type) {
    case FrameType::kRts:
      return 44;
    case FrameType::kCts:
    case FrameType::kAck:
      return 38;
    case FrameType::kData:
      return packet_bytes + 72;
  }
  return 0;
}

double ErrorModel::fer(double ber, int len) {
  if (ber <= 0.0) return 0.0;
  if (ber >= 1.0) return 1.0;
  return 1.0 - std::pow(1.0 - ber, len);
}

double ErrorModel::ber_for_fer(double target_fer, int len) {
  assert(target_fer >= 0.0 && target_fer < 1.0 && len > 0);
  if (target_fer <= 0.0) return 0.0;
  return 1.0 - std::pow(1.0 - target_fer, 1.0 / len);
}

void ErrorModel::set_link_ber(int tx, int rx, double ber) {
  link_ber_[{tx, rx}] = ber;
}

double ErrorModel::ber(int tx, int rx) const {
  const auto it = link_ber_.find({tx, rx});
  return it != link_ber_.end() ? it->second : default_ber_;
}

void ErrorModel::set_link_rate_limit(int tx, int rx, double max_good_rate_mbps,
                                     double excess_fer) {
  rate_limit_[{tx, rx}] = RateLimit{max_good_rate_mbps, excess_fer};
}

double ErrorModel::rate_excess_fer(int tx, int rx, double rate_mbps) const {
  if (rate_mbps <= 0.0) return 0.0;
  const auto it = rate_limit_.find({tx, rx});
  if (it == rate_limit_.end()) return 0.0;
  return rate_mbps > it->second.max_good_rate_mbps ? it->second.excess_fer : 0.0;
}

double ErrorModel::frame_error_prob(int tx, int rx, FrameType type,
                                    int packet_bytes, double rate_mbps) const {
  const double base = fer(ber(tx, rx), error_len(type, packet_bytes));
  if (type != FrameType::kData) return base;
  const double excess = rate_excess_fer(tx, rx, rate_mbps);
  // Independent corruption sources compose.
  return 1.0 - (1.0 - base) * (1.0 - excess);
}

double ErrorModel::addr_intact_given_corrupt(double ber, int len) {
  if (ber <= 0.0) return 1.0;
  const double p_frame_ok = std::pow(1.0 - ber, len);
  if (p_frame_ok >= 1.0) return 1.0;
  const double p_addr_ok = std::pow(1.0 - ber, 12);
  // P(addr ok AND frame corrupted) = P(addr ok) - P(frame ok), since a
  // fully intact frame implies intact addresses.
  return (p_addr_ok - p_frame_ok) / (1.0 - p_frame_ok);
}

ErrorModel::CorruptionBreakdown ErrorModel::corruption_study(
    Rng& rng, double bit_ber, int frame_bytes, std::int64_t n_frames) {
  CorruptionBreakdown out;
  out.received = n_frames;
  // 802.11 data frame layout: Address1 (destination) at byte offsets 4-9,
  // Address2 (source) at 10-15.
  const int addr_bits = 6 * 8;
  const int other_bits = frame_bytes * 8 - 2 * addr_bits;
  assert(other_bits > 0);
  const double p_dest_ok = std::pow(1.0 - bit_ber, addr_bits);
  const double p_src_ok = p_dest_ok;
  const double p_rest_ok = std::pow(1.0 - bit_ber, other_bits);
  for (std::int64_t i = 0; i < n_frames; ++i) {
    const bool dest_ok = rng.chance(p_dest_ok);
    const bool src_ok = rng.chance(p_src_ok);
    const bool rest_ok = rng.chance(p_rest_ok);
    const bool corrupted = !(dest_ok && src_ok && rest_ok);
    if (!corrupted) continue;
    ++out.corrupted;
    if (dest_ok) {
      ++out.corrupted_correct_dest;
      if (src_ok) ++out.corrupted_correct_src_dest;
    }
  }
  return out;
}

}  // namespace g80211
