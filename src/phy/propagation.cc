#include "src/phy/propagation.h"

#include <algorithm>

namespace g80211 {

double distance(const Position& a, const Position& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return std::sqrt(dx * dx + dy * dy);
}

void Propagation::recompute() {
  constexpr double kPi = 3.14159265358979323846;
  crossover_m_ = 4.0 * kPi * antenna_height_m_ * antenna_height_m_ / wavelength_m_;
  ++generation_;
}

double Propagation::rx_power_w(double d) const {
  constexpr double kPi = 3.14159265358979323846;
  d = std::max(d, 0.1);  // avoid the singularity at zero distance
  if (d <= crossover_m_) {
    const double denom = 4.0 * kPi * d / wavelength_m_;
    return tx_power_w_ * gain_tx_ * gain_rx_ / (denom * denom);
  }
  const double h2 = antenna_height_m_ * antenna_height_m_;
  return tx_power_w_ * gain_tx_ * gain_rx_ * h2 * h2 / (d * d * d * d);
}

}  // namespace g80211
