// IEEE 802.11 PHY/MAC timing and rate parameters.
//
// Two standards are modelled, matching the paper's evaluation:
//   * 802.11b DSSS, 11 Mbps data / 1 Mbps basic (control) rate,
//     long PLCP preamble (192 us).
//   * 802.11a OFDM, 6 Mbps data and basic rate, 20 us preamble+SIGNAL,
//     4 us symbols.
//
// Frame sizes: the airtime of a frame uses the on-air MAC length
// (RTS 20 B, CTS/ACK 14 B, data = packet + 28 B MAC overhead) plus the PLCP
// time. The *error-model* length is calibrated to the paper's Table III
// (see error_model.h): 44 B for RTS, 38 B for CTS/ACK, packet + 72 B for
// data frames.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/time.h"

namespace g80211 {

enum class Standard { B80211, A80211, G80211 };

struct WifiParams {
  Standard standard = Standard::B80211;

  // Timing.
  Time slot = 0;
  Time sifs = 0;
  Time difs = 0;      // sifs + 2*slot
  Time plcp = 0;      // preamble + PLCP header (+SIGNAL for OFDM)
  // Rates in Mbps.
  double data_rate_mbps = 0;
  double basic_rate_mbps = 0;  // control frames (RTS/CTS/ACK)

  // Contention window bounds (number of slots; window is [0, cw]).
  int cw_min = 0;
  int cw_max = 0;

  // Retry limits (IEEE 802.11 dot11ShortRetryLimit / dot11LongRetryLimit).
  int short_retry_limit = 7;
  int long_retry_limit = 4;

  // On-air MAC sizes in bytes.
  int rts_bytes = 20;
  int cts_bytes = 14;
  int ack_bytes = 14;
  int data_mac_overhead_bytes = 28;  // MAC header + FCS + LLC

  // Maximum value of the Duration/NAV field (15 bits, microseconds).
  static constexpr Time kMaxNav = microseconds(32767);

  // Airtime of a control frame of `mac_bytes` at the basic rate.
  Time control_tx_time(int mac_bytes) const;
  // Airtime of a data frame carrying a network packet of `packet_bytes`
  // (transport payload + IP/transport headers) at the default data rate.
  Time data_tx_time(int packet_bytes) const;
  // Same, at an explicit PHY rate (auto-rate adaptation).
  Time data_tx_time_at(int packet_bytes, double rate_mbps) const;

  // The standard's mandatory rate set, ascending (ARF ladder).
  std::vector<double> rate_ladder() const;

  Time rts_tx_time() const { return control_tx_time(rts_bytes); }
  Time cts_tx_time() const { return control_tx_time(cts_bytes); }
  Time ack_tx_time() const { return control_tx_time(ack_bytes); }

  // EIFS = SIFS + ACK airtime at basic rate + DIFS (IEEE 802.11 9.2.3.4).
  Time eifs() const { return sifs + ack_tx_time() + difs; }

  // Response timeouts: SIFS + response airtime + one slot of slack.
  Time cts_timeout() const { return sifs + cts_tx_time() + 2 * slot; }
  Time ack_timeout() const { return sifs + ack_tx_time() + 2 * slot; }

  static WifiParams b11();  // 802.11b, 11 Mbps, long preamble
  static WifiParams b11_short_preamble();  // 802.11b with 96 us PLCP
  static WifiParams a6();   // 802.11a, 6 Mbps
  // 802.11g (ERP-OFDM) at 54 Mbps data / 6 Mbps basic rate, long slot
  // (20 us, the b-compatible default) — the third mode of the paper's
  // testbed NICs.
  static WifiParams g54();

 private:
  Time payload_tx_time(int bytes, double rate_mbps) const;
};

}  // namespace g80211
