// Radio propagation: two-ray ground reflection with a Friis near field,
// as in ns-2. Produces received signal strength (watts) used for capture
// decisions and RSSI-based detection.
//
// Parameters are set through the setters so the Friis/two-ray crossover
// distance — formerly recomputed from scratch on every rx_power_w call —
// can live in a cached member refreshed only on parameter change. Each
// change also bumps a generation counter, which the channel's link-state
// cache (see channel.h) watches to invalidate precomputed rx powers.
#pragma once

#include <cmath>
#include <cstdint>

namespace g80211 {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Position& a, const Position& b);

class Propagation {
 public:
  // ns-2 defaults for a 914 MHz WaveLAN-like radio.
  Propagation() { recompute(); }

  double tx_power_w() const { return tx_power_w_; }
  double gain_tx() const { return gain_tx_; }
  double gain_rx() const { return gain_rx_; }
  double antenna_height_m() const { return antenna_height_m_; }
  double wavelength_m() const { return wavelength_m_; }

  void set_tx_power_w(double w) { tx_power_w_ = w; recompute(); }
  void set_gains(double tx, double rx) { gain_tx_ = tx; gain_rx_ = rx; recompute(); }
  void set_antenna_height_m(double h) { antenna_height_m_ = h; recompute(); }
  void set_wavelength_m(double l) { wavelength_m_ = l; recompute(); }

  // Bumped on every parameter change; cached derived quantities elsewhere
  // (the channel's link tables) compare against it.
  std::uint64_t generation() const { return generation_; }

  // Received power in watts at distance d (meters).
  // Friis below the crossover distance, two-ray ground beyond it.
  double rx_power_w(double d) const;
  // Crossover distance between the Friis and two-ray regimes (cached).
  double crossover_m() const { return crossover_m_; }

 private:
  void recompute();

  double tx_power_w_ = 0.28183815;
  double gain_tx_ = 1.0;
  double gain_rx_ = 1.0;
  double antenna_height_m_ = 1.5;
  double wavelength_m_ = 0.328227;  // c / 914 MHz
  double crossover_m_ = 0.0;
  std::uint64_t generation_ = 0;
};

inline double watts_to_dbm(double w) { return 10.0 * std::log10(w * 1000.0); }
inline double dbm_to_watts(double dbm) { return std::pow(10.0, dbm / 10.0) / 1000.0; }
inline double ratio_to_db(double r) { return 10.0 * std::log10(r); }

}  // namespace g80211
