// Radio propagation: two-ray ground reflection with a Friis near field,
// as in ns-2. Produces received signal strength (watts) used for capture
// decisions and RSSI-based detection.
#pragma once

#include <cmath>

namespace g80211 {

struct Position {
  double x = 0.0;
  double y = 0.0;
};

double distance(const Position& a, const Position& b);

struct Propagation {
  // ns-2 defaults for a 914 MHz WaveLAN-like radio.
  double tx_power_w = 0.28183815;
  double gain_tx = 1.0;
  double gain_rx = 1.0;
  double antenna_height_m = 1.5;
  double wavelength_m = 0.328227;  // c / 914 MHz

  // Received power in watts at distance d (meters).
  // Friis below the crossover distance, two-ray ground beyond it.
  double rx_power_w(double d) const;
  // Crossover distance between the Friis and two-ray regimes.
  double crossover_m() const;
};

inline double watts_to_dbm(double w) { return 10.0 * std::log10(w * 1000.0); }
inline double dbm_to_watts(double dbm) { return std::pow(10.0, dbm / 10.0) / 1000.0; }
inline double ratio_to_db(double r) { return 10.0 * std::log10(r); }

}  // namespace g80211
