// Frame error model.
//
// The paper injects "random loss of bit-error-rate (BER)" in ns-2, and its
// Table III lists the resulting frame error rates. Those FERs fit
// FER = 1 - (1 - BER)^L exactly with effective error lengths
//   L(ACK/CTS) = 38, L(RTS) = 44, L(data frame) = packet + 72
// (packet = payload + 40 B IP/transport headers; e.g. TCP DATA = 1136,
// TCP ACK = 112). We adopt those constants so Table III — and every
// BER-parameterised experiment — reproduces on the paper's own scale.
//
// Per-link overrides support the paper's asymmetric-loss experiments
// ("inject random loss to only one flow").
//
// The header-corruption study (Table I) is separate: it uses a true
// per-bit model over the 802.11 frame layout to show that corrupted frames
// usually preserve src/dst MAC addresses.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "src/mac/frame.h"
#include "src/sim/rng.h"

namespace g80211 {

class ErrorModel {
 public:
  // Effective error length (see header comment).
  static int error_len(FrameType type, int packet_bytes);
  // FER = 1 - (1-ber)^len.
  static double fer(double ber, int len);
  // BER required for a target FER at length `len` (inverse of fer()).
  static double ber_for_fer(double target_fer, int len);

  void set_default_ber(double ber) { default_ber_ = ber; }
  // Loss on the directed link tx -> rx only.
  void set_link_ber(int tx, int rx, double ber);
  double ber(int tx, int rx) const;

  // Rate-dependent channel quality (auto-rate substrate): DATA frames sent
  // above the link's highest "good" PHY rate are corrupted with
  // `excess_fer` instead of the BER-derived probability — the cliff a rate
  // controller must find. Unset links support every rate.
  void set_link_rate_limit(int tx, int rx, double max_good_rate_mbps,
                           double excess_fer = 0.9);
  // FER contribution of sending at `rate_mbps` on this link (0 if allowed).
  double rate_excess_fer(int tx, int rx, double rate_mbps) const;

  // Probability that a frame on link tx->rx with packet payload
  // `packet_bytes` arrives corrupted. `rate_mbps` only matters for DATA
  // frames on rate-limited links (0 = default rate, always allowed).
  double frame_error_prob(int tx, int rx, FrameType type, int packet_bytes,
                          double rate_mbps = 0.0) const;

  // Given that a frame was corrupted by bit errors, the probability its
  // 12 address bytes are all intact:
  //   P(addr ok | >=1 error) = ((1-ber)^12 - (1-ber)^L) / (1 - (1-ber)^L).
  static double addr_intact_given_corrupt(double ber, int len);

  // Corrupted-by-collision frames: fraction with decodable addresses
  // (header often precedes the interferer's arrival). Default matches the
  // paper's measured 84-95% range.
  double collision_addr_intact_prob = 0.9;

  // --- Table I: Monte-Carlo header corruption study -----------------------
  struct CorruptionBreakdown {
    std::int64_t received = 0;
    std::int64_t corrupted = 0;
    std::int64_t corrupted_correct_dest = 0;
    std::int64_t corrupted_correct_src_dest = 0;
  };
  // Transmit `n_frames` frames of `frame_bytes` through a true per-bit BER
  // channel; classify corrupted frames by whether the destination bytes
  // (offsets 4-9) and source bytes (offsets 10-15) survived.
  static CorruptionBreakdown corruption_study(Rng& rng, double bit_ber,
                                              int frame_bytes,
                                              std::int64_t n_frames);

 private:
  struct RateLimit {
    double max_good_rate_mbps = 0.0;
    double excess_fer = 0.9;
  };
  double default_ber_ = 0.0;
  std::map<std::pair<int, int>, double> link_ber_;
  std::map<std::pair<int, int>, RateLimit> rate_limit_;
};

}  // namespace g80211
