// Frame error model.
//
// The paper injects "random loss of bit-error-rate (BER)" in ns-2, and its
// Table III lists the resulting frame error rates. Those FERs fit
// FER = 1 - (1 - BER)^L exactly with effective error lengths
//   L(ACK/CTS) = 38, L(RTS) = 44, L(data frame) = packet + 72
// (packet = payload + 40 B IP/transport headers; e.g. TCP DATA = 1136,
// TCP ACK = 112). We adopt those constants so Table III — and every
// BER-parameterised experiment — reproduces on the paper's own scale.
//
// Per-link overrides support the paper's asymmetric-loss experiments
// ("inject random loss to only one flow").
//
// Storage is built for the per-reception hot path: link overrides live in
// dense node-indexed matrices (node ids are small sequential integers), so
// ber() and rate_excess_fer() are one array read instead of a std::map
// find, and frame_error_prob() memoises fer(ber, len) per link and frame
// length, so the std::pow is paid once per (link, length) instead of once
// per reception. Ids outside the dense block (>= kMaxDenseId, or negative)
// fall back to an overflow map — correct, just not O(1). All caches are
// invalidated by the BER/rate-limit setters; there is no staleness window.
//
// The header-corruption study (Table I) is separate: it uses a true
// per-bit model over the 802.11 frame layout to show that corrupted frames
// usually preserve src/dst MAC addresses.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "src/mac/frame.h"
#include "src/sim/rng.h"

namespace g80211 {

class ErrorModel {
 public:
  // Effective error length (see header comment).
  static int error_len(FrameType type, int packet_bytes);
  // FER = 1 - (1-ber)^len.
  static double fer(double ber, int len);
  // BER required for a target FER at length `len` (inverse of fer()).
  static double ber_for_fer(double target_fer, int len);

  void set_default_ber(double ber);
  // Loss on the directed link tx -> rx only.
  void set_link_ber(int tx, int rx, double ber);
  double ber(int tx, int rx) const {
    if (in_dense(tx) && in_dense(rx)) {
      const double v = link_ber_[dense_index(tx, rx)];
      if (!std::isnan(v)) return v;
    } else if (has_overflow_) {
      const auto it = overflow_ber_.find({tx, rx});
      if (it != overflow_ber_.end()) return it->second;
    }
    return default_ber_;
  }

  // Rate-dependent channel quality (auto-rate substrate): DATA frames sent
  // above the link's highest "good" PHY rate are corrupted with
  // `excess_fer` instead of the BER-derived probability — the cliff a rate
  // controller must find. Unset links support every rate.
  void set_link_rate_limit(int tx, int rx, double max_good_rate_mbps,
                           double excess_fer = 0.9);
  // FER contribution of sending at `rate_mbps` on this link (0 if allowed).
  double rate_excess_fer(int tx, int rx, double rate_mbps) const {
    if (rate_mbps <= 0.0 || !has_rate_limit_) return 0.0;
    if (in_dense(tx) && in_dense(rx)) {
      // Unset links hold the +infinity sentinel: no rate exceeds them.
      const RateLimit& rl = rate_limit_[dense_index(tx, rx)];
      return rate_mbps > rl.max_good_rate_mbps ? rl.excess_fer : 0.0;
    }
    if (has_overflow_) {
      const auto it = overflow_rate_.find({tx, rx});
      if (it != overflow_rate_.end()) {
        return rate_mbps > it->second.max_good_rate_mbps ? it->second.excess_fer
                                                         : 0.0;
      }
    }
    return 0.0;
  }

  // Probability that a frame on link tx->rx with packet payload
  // `packet_bytes` arrives corrupted. `rate_mbps` only matters for DATA
  // frames on rate-limited links (0 = default rate, always allowed).
  double frame_error_prob(int tx, int rx, FrameType type, int packet_bytes,
                          double rate_mbps = 0.0) const {
    // All-zero fast path: with every BER at 0 and no rate limits the full
    // computation is exactly fer(0, len) = 1 - pow(1, len) = 0.0 and the
    // compose step 1 - (1-0)(1-0) = 0.0 — bit-identical to returning 0.0.
    // This is the loss-free configuration most scenarios (and the hotspot
    // benchmarks) run in, so it skips the memo scan per reception.
    if (trivial_) return 0.0;
    return frame_error_prob_slow(tx, rx, type, packet_bytes, rate_mbps);
  }

  // Given that a frame was corrupted by bit errors, the probability its
  // 12 address bytes are all intact:
  //   P(addr ok | >=1 error) = ((1-ber)^12 - (1-ber)^L) / (1 - (1-ber)^L).
  static double addr_intact_given_corrupt(double ber, int len);

  // Corrupted-by-collision frames: fraction with decodable addresses
  // (header often precedes the interferer's arrival). Default matches the
  // paper's measured 84-95% range.
  double collision_addr_intact_prob = 0.9;

  // --- Table I: Monte-Carlo header corruption study -----------------------
  struct CorruptionBreakdown {
    std::int64_t received = 0;
    std::int64_t corrupted = 0;
    std::int64_t corrupted_correct_dest = 0;
    std::int64_t corrupted_correct_src_dest = 0;
  };
  // Transmit `n_frames` frames of `frame_bytes` through a true per-bit BER
  // channel; classify corrupted frames by whether the destination bytes
  // (offsets 4-9) and source bytes (offsets 10-15) survived.
  static CorruptionBreakdown corruption_study(Rng& rng, double bit_ber,
                                              int frame_bytes,
                                              std::int64_t n_frames);

  // Node ids at or above this (or negative) take the overflow-map path.
  // Sim assigns sequential ids from 0, so in practice everything is dense.
  static constexpr int kMaxDenseId = 1024;

 private:
  struct RateLimit {
    // +infinity = no limit configured (so an explicit limit of 0 — "every
    // rate is bad" — stays representable, exactly as with the old map).
    double max_good_rate_mbps = std::numeric_limits<double>::infinity();
    double excess_fer = 0.9;
  };
  // Per-link memo of fer(ber(link), len): a handful of frame lengths per
  // link (RTS, CTS/ACK, the flow's DATA sizes), scanned linearly.
  struct FerMemo {
    std::vector<std::pair<int, double>> by_len;
  };

  bool in_dense(int id) const {
    return static_cast<unsigned>(id) < static_cast<unsigned>(stride_);
  }
  std::size_t dense_index(int tx, int rx) const {
    return static_cast<std::size_t>(tx) * static_cast<std::size_t>(stride_) +
           static_cast<std::size_t>(rx);
  }
  // Grow the dense matrices to cover node id `id` (re-striding preserves
  // existing entries). No-op for overflow ids.
  void ensure_dense(int id);
  // Drop every memoised FER (BER landscape changed).
  void invalidate_memos();
  double cached_fer(int tx, int rx, int len) const;
  double frame_error_prob_slow(int tx, int rx, FrameType type,
                               int packet_bytes, double rate_mbps) const;

  double default_ber_ = 0.0;
  int stride_ = 0;  // dense matrices are stride_ x stride_
  std::vector<double> link_ber_;      // NaN = no override on that link
  std::vector<RateLimit> rate_limit_;
  mutable std::vector<FerMemo> fer_memo_;  // per dense link
  mutable FerMemo default_memo_;  // shared by links outside the dense block
  bool has_rate_limit_ = false;
  bool has_overflow_ = false;
  // True while no setter has ever introduced a nonzero BER or any rate
  // limit, i.e. frame_error_prob is identically 0.0. Conservative: once
  // cleared it stays cleared (re-zeroing a BER keeps the slow path, which
  // computes the same 0.0 — correctness never depends on re-arming it).
  bool trivial_ = true;
  std::map<std::pair<int, int>, double> overflow_ber_;
  std::map<std::pair<int, int>, RateLimit> overflow_rate_;
};

}  // namespace g80211
