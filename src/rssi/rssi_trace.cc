#include "src/rssi/rssi_trace.h"

#include <algorithm>
#include <cmath>

#include "src/analysis/stats.h"

namespace g80211 {

RssiStudy::RssiStudy(RssiStudyConfig cfg, Rng rng)
    : cfg_(cfg), attack_rng_(rng.fork()) {
  // Scatter nodes with a minimum separation (rejection sampling).
  while (static_cast<int>(positions_.size()) < cfg_.nodes) {
    const Position cand{rng.uniform() * cfg_.area_m, rng.uniform() * cfg_.area_m};
    bool ok = true;
    for (const auto& p : positions_) {
      if (distance(p, cand) < cfg_.min_separation_m) {
        ok = false;
        break;
      }
    }
    if (ok) positions_.push_back(cand);
  }

  Propagation prop;
  for (int tx = 0; tx < cfg_.nodes; ++tx) {
    for (int rx = 0; rx < cfg_.nodes; ++rx) {
      if (tx == rx) continue;
      link_.push_back({tx, rx});
      link_median_.push_back(
          watts_to_dbm(prop.rx_power_w(distance(positions_[tx], positions_[rx]))));
    }
  }

  // Per-link measured samples and their deviation from the *measured*
  // median (what a real detector has access to).
  link_samples_.resize(link_.size());
  for (std::size_t l = 0; l < link_.size(); ++l) {
    auto& samples = link_samples_[l];
    samples.reserve(cfg_.samples_per_link);
    for (int i = 0; i < cfg_.samples_per_link; ++i) {
      samples.push_back(sample_link(static_cast<int>(l), rng));
    }
    const double med = median(samples);
    for (const double s : samples) deviations_.push_back(std::abs(s - med));
  }
}

double RssiStudy::sample_link(int link, Rng& rng) const {
  double noise = rng.normal(0.0, cfg_.noise_db);
  if (rng.chance(cfg_.outlier_prob)) noise += rng.normal(0.0, cfg_.outlier_db);
  return link_median_[link] + noise;
}

RssiStudy::Rates RssiStudy::rates_at(double threshold_db) const {
  Rates r;
  // False positives: honest samples farther than the threshold from their
  // own link median.
  std::int64_t fp = 0;
  for (const double d : deviations_) {
    if (d > threshold_db) ++fp;
  }
  r.false_positive =
      deviations_.empty()
          ? 0.0
          : static_cast<double>(fp) / static_cast<double>(deviations_.size());

  // False negatives: for every receiver, every (victim, attacker) pair —
  // samples from the attacker's link judged against the victim's median.
  // A fixed per-call RNG keeps the sweep deterministic and monotone.
  Rng rng = attack_rng_;
  std::int64_t fn = 0, total = 0;
  const int n = cfg_.nodes;
  auto link_index = [n](int tx, int rx) {
    // Directed links enumerated tx-major, skipping tx == rx.
    return tx * (n - 1) + rx - (rx > tx ? 1 : 0);
  };
  constexpr int kAttackSamplesPerPair = 4;
  for (int rx = 0; rx < n; ++rx) {
    for (int v = 0; v < n; ++v) {
      if (v == rx) continue;
      const double victim_median = median(link_samples_[link_index(v, rx)]);
      for (int a = 0; a < n; ++a) {
        if (a == rx || a == v) continue;
        const int al = link_index(a, rx);
        for (int k = 0; k < kAttackSamplesPerPair; ++k) {
          const double s = sample_link(al, rng);
          ++total;
          if (std::abs(s - victim_median) <= threshold_db) ++fn;
        }
      }
    }
  }
  r.false_negative =
      total == 0 ? 0.0 : static_cast<double>(fn) / static_cast<double>(total);
  return r;
}

}  // namespace g80211
