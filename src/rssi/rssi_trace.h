// Synthetic replacement for the paper's testbed RSSI measurement study
// (Section VII-B, Figs 21 and 22): 16 nodes spread over an office floor,
// one sender broadcasting while all others record per-packet RSSI.
//
// The generator places nodes uniformly at random in a square, derives each
// directed link's true median RSSI from two-ray-ground propagation, and
// draws per-packet samples as median + Gaussian measurement noise + a rare
// heavy-tailed multipath outlier. The noise magnitudes are calibrated to
// the paper's observation that ~95% of samples fall within 1 dB of the
// link median.
//
// Fig 22's detector sweep: for every (victim link, attacker link) pair
// sharing a receiver, a spoofed ACK is an RSSI sample drawn from the
// attacker's link compared against the victim link's median. False
// positive = honest sample flagged; false negative = attacker sample
// accepted. Attacker/victim pairs whose medians coincide by geometry are
// genuinely hard — the residual false negatives the paper's Fig 22 shows.
#pragma once

#include <cstdint>
#include <vector>

#include "src/phy/propagation.h"
#include "src/sim/rng.h"

namespace g80211 {

struct RssiStudyConfig {
  int nodes = 16;
  int samples_per_link = 200;
  double area_m = 40.0;         // square side of the office floor
  double min_separation_m = 2.0;
  double noise_db = 0.4;
  double outlier_prob = 0.02;
  double outlier_db = 2.5;
};

class RssiStudy {
 public:
  RssiStudy(RssiStudyConfig cfg, Rng rng);

  // |RSSI - median(link)| for every sample on every link (Fig 21 input).
  const std::vector<double>& deviations() const { return deviations_; }

  struct Rates {
    double false_positive = 0.0;
    double false_negative = 0.0;
  };
  // Detection error rates at a given threshold (one point of Fig 22).
  Rates rates_at(double threshold_db) const;

  int links() const { return static_cast<int>(link_median_.size()); }

 private:
  double sample_link(int link, Rng& rng) const;

  RssiStudyConfig cfg_;
  std::vector<Position> positions_;
  // Directed links (tx -> rx), tx != rx, with their true median RSSI.
  struct Link {
    int tx = 0;
    int rx = 0;
  };
  std::vector<Link> link_;
  std::vector<double> link_median_;
  std::vector<std::vector<double>> link_samples_;  // per link
  std::vector<double> deviations_;
  mutable Rng attack_rng_;
};

}  // namespace g80211
