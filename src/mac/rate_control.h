// Auto Rate Fallback (ARF, Kamerman & Monteban 1997) — the classic 802.11
// rate-adaptation loop the paper's future-work section reasons about:
// step the PHY rate up after `up_threshold` consecutive MAC successes (or
// a probation timer), step down after `down_threshold` consecutive
// failures, and fall straight back down if the first frame after a
// step-up (the probe) fails.
//
// ARF trusts MAC-layer ACKs as its feedback signal, which is exactly what
// makes it attackable: fake ACKs hold the rate above the channel's cliff;
// spoofed ACKs hide the victim's losses from its sender's controller.
#pragma once

#include <cstdint>
#include <vector>

namespace g80211 {

class ArfRateController {
 public:
  // `adaptive` enables AARF (Lacage et al. 2004): every failed probe
  // doubles the success streak required before the next probe (capped at
  // 50), halving the rate of wasted probe frames on a stable channel.
  // Note the security angle: AARF's extra smarts change nothing against
  // fake ACKs — a receiver that acknowledges corrupted probes makes every
  // probe "succeed", so both controllers are equally blind.
  ArfRateController(std::vector<double> ladder_mbps, int start_index,
                    int up_threshold = 10, int down_threshold = 2,
                    bool adaptive = false);

  double rate_mbps() const { return ladder_[static_cast<std::size_t>(index_)]; }
  int index() const { return index_; }

  void on_success();
  void on_failure();

  std::int64_t ups() const { return ups_; }
  std::int64_t downs() const { return downs_; }
  int current_up_threshold() const { return current_up_threshold_; }

 private:
  std::vector<double> ladder_;
  int index_;
  int up_threshold_;
  int down_threshold_;
  bool adaptive_;
  int current_up_threshold_;
  int success_streak_ = 0;
  int failure_streak_ = 0;
  bool probing_ = false;  // first frame after a step-up
  std::int64_t ups_ = 0;
  std::int64_t downs_ = 0;
};

}  // namespace g80211
