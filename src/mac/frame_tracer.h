// Frame-level tracing — the simulator's equivalent of ns-2's trace files /
// tcpdump. A FrameTracer attaches to any station's MAC (promiscuous, so
// one well-placed observer sees a whole hotspot) and records every frame
// with timing, addressing, Duration, and corruption state. Useful for
// debugging protocol behaviour and for the examples' annotated output.
//
// The storage/observer mechanism (TraceLog/TraceSink) lives in
// src/sim/trace.h and is layer-neutral; this header supplies the
// MAC-specific record type and the sniffer glue, keeping the dependency
// pointing downward (mac/ -> sim/, never the reverse).
#pragma once

#include <string>

#include "src/mac/mac.h"
#include "src/sim/trace.h"

namespace g80211 {

struct TraceRecord {
  Time start = 0;
  Time end = 0;
  FrameType type = FrameType::kData;
  int ta = kNoAddr;
  int ra = kNoAddr;
  Time duration = 0;        // NAV field
  bool corrupted = false;
  bool collided = false;
  int seq = 0;
  int frag = 0;
  bool more_frags = false;
  bool retry = false;       // MAC Retry bit
  int bytes = 0;            // on-air MAC length incl. FCS
  double rssi_dbm = 0.0;

  std::string to_string() const;
};

class FrameTracer : public TraceLog<TraceRecord> {
 public:
  using TraceLog<TraceRecord>::TraceLog;

  // Chain onto a MAC's sniffer.
  void attach(Mac& mac);
};

}  // namespace g80211
