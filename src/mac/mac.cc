#include "src/mac/mac.h"

#include <algorithm>

namespace g80211 {

Mac::Mac(Scheduler& sched, Phy& phy, const WifiParams& params, Rng rng)
    : sched_(&sched),
      phy_(&phy),
      params_(params),
      rng_(rng),
      backoff_(params.cw_min, params.cw_max),
      defer_timer_(sched, [this] { on_defer_done(); }),
      backoff_timer_(sched, [this] { on_backoff_expired(); }),
      nav_timer_(sched, [this] { reevaluate(); }),
      nav_reset_timer_(sched,
                       [this] {
                         // 9.2.5.4: the RTS-reserved exchange never
                         // happened; release the NAV.
                         if (!phy_->carrier_busy()) {
                           nav_.reset();
                           reevaluate();
                         }
                       }),
      timeout_timer_(sched, [this] {
        if (tx_state_ == TxState::kWaitCts) {
          on_cts_timeout();
        } else if (tx_state_ == TxState::kWaitAck) {
          on_ack_timeout();
        }
      }),
      response_timer_(sched, [this] { fire_response(); }) {
  phy.set_listener(this);
}

bool Mac::medium_busy() const {
  return phy_->carrier_busy() || nav_.busy(sched_->now());
}

Time Mac::adjusted_duration(FrameType type, Time duration) {
  if (greedy_) duration = greedy_->adjust_duration(type, duration, rng_);
  return std::clamp<Time>(duration, 0, WifiParams::kMaxNav);
}

bool Mac::clamp_cw_for_current() const {
  const auto it = overrides_.find(current_dest_);
  return it != overrides_.end() && it->second.clamp_cw;
}

int Mac::draw_backoff() {
  const int slots = backoff_.draw(rng_);
  if (backoff_cheat_ < 1.0 && backoff_cheat_ >= 0.0) {
    return static_cast<int>(static_cast<double>(slots) * backoff_cheat_);
  }
  return slots;
}

const Mac::DestCounters& Mac::dest_counters(int dest) const {
  static const DestCounters kEmpty;
  const auto it = dest_counters_.find(dest);
  return it != dest_counters_.end() ? it->second : kEmpty;
}

void Mac::enable_auto_rate(double start_rate_mbps, bool adaptive) {
  auto_rate_ = true;
  auto_rate_adaptive_ = adaptive;
  const auto ladder = params_.rate_ladder();
  const double target =
      start_rate_mbps > 0 ? start_rate_mbps : params_.data_rate_mbps;
  auto_rate_start_index_ = 0;
  for (std::size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i] <= target) auto_rate_start_index_ = static_cast<int>(i);
  }
}

ArfRateController& Mac::controller_for(int dest) {
  auto it = rate_ctrl_.find(dest);
  if (it == rate_ctrl_.end()) {
    it = rate_ctrl_
             // NOLINTNEXTLINE(hot-path-alloc): first contact per peer; the
             // steady state takes the find() above.
             .emplace(dest,
                      ArfRateController(params_.rate_ladder(),
                                        auto_rate_start_index_,
                                        /*up_threshold=*/10,
                                        /*down_threshold=*/2,
                                        auto_rate_adaptive_))
             .first;
  }
  return it->second;
}

double Mac::data_rate_to(int dest) const {
  if (!auto_rate_) return params_.data_rate_mbps;
  const auto it = rate_ctrl_.find(dest);
  return it != rate_ctrl_.end()
             ? it->second.rate_mbps()
             : params_.rate_ladder()[static_cast<std::size_t>(
                   auto_rate_start_index_)];
}

const ArfRateController* Mac::rate_controller(int dest) const {
  const auto it = rate_ctrl_.find(dest);
  return it != rate_ctrl_.end() ? &it->second : nullptr;
}

// ---------------------------------------------------------------------------
// Channel access
// ---------------------------------------------------------------------------

void Mac::send(PacketPtr packet, int dest_mac) {
  if (!queue_.push(std::move(packet), dest_mac)) {
    ++stats_.queue_drops;
    return;
  }
  if (!current_) {
    start_service();
    reevaluate();
  }
}

void Mac::start_service() {
  current_.reset();
  current_dest_ = kNoAddr;
  short_retries_ = 0;
  long_retries_ = 0;
  current_is_retry_ = false;
  frag_sizes_.clear();
  frag_idx_ = 0;
  if (queue_.empty()) return;
  auto [pkt, dest] = queue_.pop();
  current_ = std::move(pkt);
  current_dest_ = dest;
  ++mac_seq_;
  if (frag_threshold_ > 0 && current_->size_bytes > frag_threshold_ &&
      current_dest_ != kBroadcast) {
    int remaining = current_->size_bytes;
    while (remaining > 0) {
      const int chunk = std::min(remaining, frag_threshold_);
      // NOLINTNEXTLINE(hot-path-alloc): cleared per service, so capacity
      // stops at the per-packet fragment high-water mark.
      frag_sizes_.push_back(chunk);
      remaining -= chunk;
    }
  } else {
    // NOLINTNEXTLINE(hot-path-alloc): capacity >= 1 after the first service
    frag_sizes_.push_back(current_->size_bytes);
  }
  backoff_slots_ = draw_backoff();
}

// DATA frame for the fragment currently being served.
Frame Mac::build_data_frame() const {
  Frame f;
  f.type = FrameType::kData;
  f.ra = current_dest_;
  f.ta = id();
  f.seq = mac_seq_;
  f.retry = current_is_retry_;
  f.frag_index = frag_idx_;
  f.more_frags = frag_idx_ + 1 < static_cast<int>(frag_sizes_.size());
  f.frag_bytes = frag_sizes_[static_cast<std::size_t>(frag_idx_)];
  f.packet = current_;
  f.rate_mbps = data_rate_to(current_dest_);
  return f;
}

// Duration field of the current fragment: a final fragment reserves only
// its ACK; a non-final one reserves through the next fragment's ACK.
Time Mac::current_data_duration() const {
  if (current_dest_ == kBroadcast) return 0;  // nothing follows a broadcast
  const bool more = frag_idx_ + 1 < static_cast<int>(frag_sizes_.size());
  if (!more) return Durations::data(params_);
  const int next_bytes = frag_sizes_[static_cast<std::size_t>(frag_idx_) + 1];
  const Time next_air =
      params_.data_tx_time_at(next_bytes, data_rate_to(current_dest_));
  return 3 * params_.sifs + 2 * params_.ack_tx_time() + next_air;
}

void Mac::reevaluate() {
  // Nothing to serve: every branch below is a no-op (the busy branch's
  // cancel/pause act on timers that only run while current_ is set — see
  // on_channel_busy — and the idle branch starts contention only for a
  // queued frame). Returning before medium_busy() skips a NAV probe per
  // idle edge on every bystander of a hotspot exchange.
  if (current_ == nullptr) return;
  if (medium_busy() || on_air_ != TxKind::kNone) {
    defer_timer_.cancel();
    pause_backoff();
    // A station that acquired work after its NAV was set skipped the
    // expiry wakeup at update time (sinks don't arm it — see on_rx_end).
    // Arm it now so contention resumes at exactly the expiry the eager
    // arm would have used. Carrier-busy periods need no wakeup: the idle
    // edge re-enters reevaluate() and arms it then if the NAV still runs.
    // Active stations keep their timer restarted at every NAV extension,
    // so a pending wakeup is never earlier than the work requires.
    if (current_ != nullptr && !phy_->carrier_busy() &&
        nav_.busy(sched_->now()) && !nav_timer_.pending()) {
      nav_timer_.start_at(nav_.expiry());
    }
    return;
  }
  if (!current_ || tx_state_ != TxState::kIdle || pending_response_.has_value() ||
      backoff_running_ || defer_timer_.pending()) {
    return;
  }
  defer_timer_.start(use_eifs_ ? params_.eifs() : params_.difs);
}

void Mac::on_defer_done() {
  use_eifs_ = false;
  if (medium_busy() || tx_state_ != TxState::kIdle || !current_) return;
  if (backoff_slots_ <= 0) {
    transmit_current();
    return;
  }
  backoff_running_ = true;
  backoff_started_ = sched_->now();
  backoff_timer_.start(static_cast<Time>(backoff_slots_) * params_.slot);
}

void Mac::pause_backoff() {
  if (!backoff_running_) return;
  const Time elapsed = sched_->now() - backoff_started_;
  const int consumed = static_cast<int>(elapsed / params_.slot);
  const int remaining = backoff_slots_ - consumed;
  backoff_running_ = false;
  if (remaining <= 0) {
    // The countdown completed in this very instant; the decision to
    // transmit was already made (stations need a slot to sense a carrier),
    // so let the pending timer fire and collide if it must.
    backoff_slots_ = 0;
    return;
  }
  backoff_slots_ = remaining;
  backoff_timer_.cancel();
}

void Mac::on_backoff_expired() {
  backoff_running_ = false;
  backoff_slots_ = 0;
  transmit_current();
}

// Single exit onto the air: notify the transmit tap, then key the PHY.
// Every transmission (initial access and SIFS responses alike) goes
// through here so a capture sees exactly what the radio emitted.
void Mac::transmit_frame(const Frame& frame, Time airtime) {
  if (tx_sniffer) tx_sniffer(frame, sched_->now(), sched_->now() + airtime);
  phy_->transmit(frame, airtime);
}

void Mac::transmit_current() {
  if (!current_ || phy_->transmitting()) return;
  // Broadcast frames use basic access: no RTS/CTS, no ACK.
  if (use_rts_cts_ && current_dest_ != kBroadcast) {
    send_rts();
  } else {
    send_data();
  }
}

void Mac::send_rts() {
  Frame f;
  f.type = FrameType::kRts;
  f.ra = current_dest_;
  f.ta = id();
  // An RTS reserves through the first (or current) fragment's ACK only;
  // fragment Durations chain the reservation onward.
  const int bytes = frag_sizes_.empty()
                        ? current_->size_bytes
                        : frag_sizes_[static_cast<std::size_t>(frag_idx_)];
  f.duration = adjusted_duration(
      FrameType::kRts,
      Durations::rts(params_, bytes,
                     auto_rate_ ? data_rate_to(current_dest_) : 0.0));
  f.uid = next_frame_uid_++;
  ++stats_.rts_sent;
  on_air_ = TxKind::kRts;
  transmit_frame(f, params_.rts_tx_time());
}

void Mac::send_data() {
  Frame f = build_data_frame();
  f.duration = adjusted_duration(FrameType::kData, current_data_duration());
  f.uid = next_frame_uid_++;
  ++stats_.data_sent;
  // NOLINTNEXTLINE(hot-path-alloc): first contact per destination
  auto& dc = dest_counters_[current_dest_];
  ++dc.attempts;
  if (f.retry) {
    ++stats_.data_retries;
    ++dc.retries;
  }
  on_air_ = TxKind::kData;
  transmit_frame(f, params_.data_tx_time_at(f.air_bytes(), f.rate_mbps));
}

void Mac::on_tx_end() {
  const TxKind kind = on_air_;
  on_air_ = TxKind::kNone;
  switch (kind) {
    case TxKind::kRts:
      tx_state_ = TxState::kWaitCts;
      timeout_timer_.start(params_.cts_timeout());
      break;
    case TxKind::kData:
      if (current_ && current_dest_ == kBroadcast) {
        // Broadcasts are unacknowledged: done as soon as they are sent.
        finish_success();
        break;
      }
      tx_state_ = TxState::kWaitAck;
      timeout_timer_.start(params_.ack_timeout());
      break;
    default:
      break;  // responses need no follow-up
  }
  // The idle-edge notification that follows (if the medium is now free)
  // drives reevaluate().
}

// ---------------------------------------------------------------------------
// Responses (SIFS-spaced; per the standard these do not carrier-sense)
// ---------------------------------------------------------------------------

void Mac::schedule_response(Frame response, TxKind kind) {
  if (pending_response_.has_value()) return;  // one response in flight at a time
  pending_response_ = std::move(response);
  pending_response_kind_ = kind;
  response_timer_.start(params_.sifs);
}

void Mac::fire_response() {
  if (!pending_response_.has_value()) return;
  Frame f = *pending_response_;
  const TxKind kind = pending_response_kind_;
  pending_response_.reset();
  pending_response_kind_ = TxKind::kNone;
  if (phy_->transmitting()) return;  // pathological overlap; drop the response

  f.uid = next_frame_uid_++;
  Time airtime = 0;
  switch (f.type) {
    case FrameType::kCts:
      airtime = params_.cts_tx_time();
      ++stats_.cts_sent;
      break;
    case FrameType::kAck:
      airtime = params_.ack_tx_time();
      if (kind == TxKind::kSpoofAck) {
        ++stats_.spoofed_acks_sent;
      } else if (kind == TxKind::kFakeAck) {
        ++stats_.fake_acks_sent;
      } else {
        ++stats_.acks_sent;
      }
      break;
    case FrameType::kData: {
      const int bytes = f.air_bytes();
      airtime = f.rate_mbps > 0 ? params_.data_tx_time_at(bytes, f.rate_mbps)
                                : params_.data_tx_time(bytes);
      ++stats_.data_sent;
      // NOLINTNEXTLINE(hot-path-alloc): first contact per destination
      auto& dc = dest_counters_[f.ra];
      ++dc.attempts;
      if (f.retry) {
        ++stats_.data_retries;
        ++dc.retries;
      }
      break;
    }
    case FrameType::kRts:
      airtime = params_.rts_tx_time();
      break;
  }
  on_air_ = kind;
  transmit_frame(f, airtime);
}

// ---------------------------------------------------------------------------
// Timeouts and completion
// ---------------------------------------------------------------------------

void Mac::on_cts_timeout() {
  tx_state_ = TxState::kIdle;
  ++stats_.cts_timeouts;
  ++short_retries_;
  if (short_retries_ > params_.short_retry_limit) {
    finish_drop();
    return;
  }
  backoff_.fail(clamp_cw_for_current());
  backoff_slots_ = draw_backoff();
  reevaluate();
}

void Mac::on_ack_timeout() {
  tx_state_ = TxState::kIdle;
  ++stats_.ack_timeouts;
  if (auto_rate_) controller_for(current_dest_).on_failure();
  const auto it = overrides_.find(current_dest_);
  if (it != overrides_.end() && it->second.disable_retx) {
    // Testbed emulation of a spoofed ACK (paper Table VIII): the sender
    // believes the frame was delivered and moves on without backing off.
    const PacketPtr pkt = current_;
    backoff_.reset();
    if (tx_done_cb) tx_done_cb(pkt, false);
    start_service();
    reevaluate();
    return;
  }
  ++long_retries_;
  if (long_retries_ > params_.long_retry_limit) {
    finish_drop();
    return;
  }
  backoff_.fail(clamp_cw_for_current());
  current_is_retry_ = true;
  backoff_slots_ = draw_backoff();
  reevaluate();
}

void Mac::finish_success() {
  ++stats_.data_success;
  // NOLINTNEXTLINE(hot-path-alloc): first contact per destination
  ++dest_counters_[current_dest_].successes;
  if (auto_rate_) controller_for(current_dest_).on_success();
  const PacketPtr pkt = current_;
  backoff_.reset();
  if (tx_done_cb) tx_done_cb(pkt, true);
  start_service();
  reevaluate();
}

void Mac::finish_drop() {
  ++stats_.data_dropped;
  // NOLINTNEXTLINE(hot-path-alloc): first contact per destination
  ++dest_counters_[current_dest_].drops;
  const PacketPtr pkt = current_;
  backoff_.reset();
  if (tx_done_cb) tx_done_cb(pkt, false);
  start_service();
  reevaluate();
}

// ---------------------------------------------------------------------------
// Reception
// ---------------------------------------------------------------------------

void Mac::on_rx_end(const Frame& frame, const RxInfo& info) {
  if (sniffer) sniffer(frame, info);

  if (info.corrupted) {
    ++stats_.rx_corrupted;
    use_eifs_ = eifs_enabled_;  // EIFS deference after an unintelligible frame
    if (frame.type == FrameType::kData && info.addresses_intact && greedy_) {
      if (frame.ra == id() && greedy_->fake_ack_for(frame, info, rng_)) {
        Frame ack;
        ack.type = FrameType::kAck;
        ack.ra = frame.ta;
        ack.duration = adjusted_duration(FrameType::kAck, Durations::ack());
        schedule_response(ack, TxKind::kFakeAck);
      } else if (frame.ra != id() && greedy_->spoof_ack_for(frame, info, rng_)) {
        Frame ack;
        ack.type = FrameType::kAck;
        ack.ra = frame.ta;
        ack.duration = adjusted_duration(FrameType::kAck, Durations::ack());
        schedule_response(ack, TxKind::kSpoofAck);
      }
    }
  // No reevaluate() here: on_rx_end runs inside Phy::incoming_end, after
  // the frame left the air and before the PHY's edge notification. If the
  // medium is now idle, the idle edge that immediately follows re-enters
  // reevaluate() with no scheduler activity in between (any defer it
  // starts gets the very seq a call here would have produced); if it is
  // still busy, the busy branch's work was already done on the busy edge.
    return;
  }

  use_eifs_ = false;

  // Virtual carrier sense: frames not addressed to this station update the
  // NAV (possibly through the GRC validator).
  if (frame.ra != id()) {
    const Time dur = nav_filter ? nav_filter(frame, info) : frame.duration;
    if (nav_.update(sched_->now(), dur)) {
      ++stats_.nav_updates;
      // The expiry wakeup exists so a station with a frame to contend for
      // re-enters reevaluate() the instant virtual carrier sense releases.
      // A pure sink (nothing queued — the common case for every bystander
      // of a hotspot exchange) would wake up only to return immediately,
      // so skip the timer churn entirely; if it acquires work while the
      // NAV runs, reevaluate()'s busy branch arms the same wakeup at the
      // same expiry (see below), keeping the defer timing bit-identical.
      if (current_ != nullptr) {
        nav_timer_.start_at(nav_.expiry());
      }
      if (nav_rts_reset_ && frame.type == FrameType::kRts) {
        nav_reset_timer_.start(2 * params_.sifs + params_.cts_tx_time() +
                               2 * params_.slot);
      } else {
        nav_reset_timer_.cancel();  // a live exchange continued
      }
    } else if (nav_rts_reset_) {
      nav_reset_timer_.cancel();
    }
  }

  switch (frame.type) {
    case FrameType::kRts:
      handle_rx_rts(frame);
      break;
    case FrameType::kCts:
      handle_rx_cts(frame);
      break;
    case FrameType::kData:
      handle_rx_data(frame, info);
      break;
    case FrameType::kAck:
      handle_rx_ack(frame, info);
      break;
  }
  // No reevaluate() here: on_rx_end runs inside Phy::incoming_end, after
  // the frame left the air and before the PHY's edge notification. If the
  // medium is now idle, the idle edge that immediately follows re-enters
  // reevaluate() with no scheduler activity in between (any defer it
  // starts gets the very seq a call here would have produced); if it is
  // still busy, the busy branch's work was already done on the busy edge.
}

void Mac::handle_rx_rts(const Frame& frame) {
  if (frame.ra != id()) return;
  // Per the standard a station responds to an RTS only if its NAV is idle —
  // the rule an inflated NAV exploits to mute receivers (paper Fig 10).
  if (nav_.busy(sched_->now())) {
    ++stats_.cts_suppressed_by_nav;
    return;
  }
  Frame cts;
  cts.type = FrameType::kCts;
  cts.ra = frame.ta;
  cts.duration = adjusted_duration(FrameType::kCts,
                                   Durations::cts_from_rts(params_, frame.duration));
  schedule_response(cts, TxKind::kCts);
}

void Mac::handle_rx_cts(const Frame& frame) {
  if (frame.ra != id() || tx_state_ != TxState::kWaitCts) return;
  timeout_timer_.cancel();
  tx_state_ = TxState::kIdle;
  short_retries_ = 0;
  // DATA follows SIFS after the CTS.
  Frame data = build_data_frame();
  data.duration = adjusted_duration(FrameType::kData, current_data_duration());
  schedule_response(data, TxKind::kData);
}

void Mac::handle_rx_data(const Frame& frame, const RxInfo& info) {
  if (frame.ra == kBroadcast) {
    // Broadcast reception: no ACK, dedup by (ta, seq) as usual.
    if (dedup_.is_duplicate(frame.ta, frame.seq, frame.retry)) {
      ++stats_.rx_data_dup;
      return;
    }
    ++stats_.rx_data_ok;
    if (upper_ && frame.packet) upper_->on_packet(frame.packet, info);
    return;
  }
  if (frame.ra == id()) {
    Frame ack;
    ack.type = FrameType::kAck;
    ack.ra = frame.ta;
    // A non-final fragment's ACK carries the reservation onward (the data
    // Duration minus this ACK and its SIFS); final ACKs carry 0.
    const Time ack_dur =
        frame.more_frags
            ? std::max<Time>(frame.duration - params_.sifs - params_.ack_tx_time(), 0)
            : Durations::ack();
    ack.duration = adjusted_duration(FrameType::kAck, ack_dur);
    schedule_response(ack, TxKind::kAck);
    if (dedup_.is_duplicate(frame.ta, frame.seq, frame.retry, frame.frag_index)) {
      ++stats_.rx_data_dup;
      return;
    }
    ++stats_.rx_data_ok;
    if (!frame.more_frags && frame.frag_index == 0) {
      // Unfragmented MSDU: deliver immediately.
      if (upper_ && frame.packet) upper_->on_packet(frame.packet, info);
      return;
    }
    // Fragment: reassemble per (ta, seq); one MSDU in flight per sender.
    const auto key = std::make_pair(frame.ta, frame.seq);
    for (auto it = reassembly_.begin(); it != reassembly_.end();) {
      if (it->first.first == frame.ta && it->first != key) {
        it = reassembly_.erase(it);  // stale, superseded burst
      } else {
        ++it;
      }
    }
    // NOLINTNEXTLINE(hot-path-alloc): fragmentation path only — node churn
    // is bounded by concurrently active reassemblies, and the paper's
    // scenarios run with fragmentation off (frag_threshold == 0).
    auto& r = reassembly_[key];
    r.got.insert(frame.frag_index);
    if (!frame.more_frags) r.total = frame.frag_index + 1;
    if (r.total > 0 && static_cast<int>(r.got.size()) == r.total) {
      reassembly_.erase(key);
      if (upper_ && frame.packet) upper_->on_packet(frame.packet, info);
    }
    return;
  }
  // Promiscuous sniff of someone else's DATA: the ACK-spoofing hook.
  if (greedy_ && greedy_->spoof_ack_for(frame, info, rng_)) {
    Frame ack;
    ack.type = FrameType::kAck;
    ack.ra = frame.ta;
    ack.duration = adjusted_duration(FrameType::kAck, Durations::ack());
    schedule_response(ack, TxKind::kSpoofAck);
  }
}

void Mac::handle_rx_ack(const Frame& frame, const RxInfo& info) {
  if (frame.ra != id() || tx_state_ != TxState::kWaitAck) return;
  if (ack_filter && ack_filter(frame, info, current_dest_)) {
    ++stats_.acks_ignored;
    return;  // the pending timeout will trigger the retransmission
  }
  timeout_timer_.cancel();
  tx_state_ = TxState::kIdle;
  if (frag_idx_ + 1 < static_cast<int>(frag_sizes_.size())) {
    // Fragment acknowledged: continue the burst SIFS later. Retry state is
    // per fragment.
    if (auto_rate_) controller_for(current_dest_).on_success();
    ++frag_idx_;
    long_retries_ = 0;
    current_is_retry_ = false;
    Frame next = build_data_frame();
    next.duration = adjusted_duration(FrameType::kData, current_data_duration());
    schedule_response(next, TxKind::kData);
    return;
  }
  finish_success();
}

void Mac::on_channel_busy() {
  if (channel_observer) channel_observer(true);
  // Invariant: the defer timer and backoff only ever run on behalf of a
  // frame being served (both start sites are guarded by current_, and
  // current_ is never cleared while either is pending — contention stops
  // before tx_state_ leaves kIdle). A station with nothing to send
  // therefore has nothing to cancel or pause; skip the dead-handle checks
  // that would otherwise run per busy edge on every bystander.
  if (current_ == nullptr) return;
  defer_timer_.cancel();
  pause_backoff();
}

void Mac::on_channel_idle() {
  if (channel_observer) channel_observer(false);
  reevaluate();
}

}  // namespace g80211
