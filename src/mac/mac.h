// IEEE 802.11 DCF MAC.
//
// Implements, at the same abstraction level as ns-2's mac-802_11:
//   * physical + virtual (NAV) carrier sensing,
//   * DIFS/EIFS deference and slot-granular binary-exponential backoff with
//     freeze/resume (a fresh backoff is drawn for every packet service and
//     after every failed attempt, matching the paper's analytical model of
//     saturated senders),
//   * optional RTS/CTS with CTS/ACK timeouts and per-exchange Duration
//     fields,
//   * retransmission with short/long retry limits and receiver-side
//     duplicate detection,
//   * SIFS responses (CTS only when the NAV is idle — the rule NAV
//     inflation exploits in the shared-sender scenarios; ACK always),
//   * promiscuous delivery of every decodable frame to the greedy-policy
//     and detection hooks.
//
// Misbehavior is injected exclusively through a GreedyPolicy (see
// src/greedy/policy.h). Detection/mitigation attaches through two hooks:
// `nav_filter` may rewrite the Duration used for a NAV update (GRC NAV
// validation) and `ack_filter` may reject a received ACK (GRC spoofed-ACK
// recovery). Two per-destination emulation knobs mirror the paper's
// testbed emulations: disable_retransmissions_to() (Table VIII) and
// clamp_cw_to() (Table IX).
//
// Collision fidelity: backoff countdowns are slot-aligned, and a countdown
// that reaches zero in the same instant another station starts transmitting
// still fires (stations need a slot to sense a transmission), so two
// stations whose counters expire together collide — the behaviour the
// paper's Eq. (1)/(2) model assumes.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "src/greedy/policy.h"
#include "src/mac/backoff.h"
#include "src/mac/dedup.h"
#include "src/mac/durations.h"
#include "src/mac/frame.h"
#include "src/mac/mac_stats.h"
#include "src/mac/nav.h"
#include "src/mac/rate_control.h"
#include "src/net/queue.h"
#include "src/phy/phy.h"
#include "src/sim/hot.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class MacUpper {
 public:
  virtual ~MacUpper() = default;
  // A non-duplicate, uncorrupted DATA packet addressed to this station.
  virtual void on_packet(const PacketPtr& packet, const RxInfo& info) = 0;
};

class Mac : public PhyListener {
 public:
  Mac(Scheduler& sched, Phy& phy, const WifiParams& params, Rng rng);

  int id() const { return phy_->id(); }
  const WifiParams& params() const { return params_; }

  // --- configuration ------------------------------------------------------
  void set_upper(MacUpper* upper) { upper_ = upper; }
  void set_greedy_policy(GreedyPolicy* policy) { greedy_ = policy; }
  void set_rts_cts(bool enabled) { use_rts_cts_ = enabled; }
  bool rts_cts() const { return use_rts_cts_; }
  // Ablation knob: disable the EIFS deference after corrupted receptions
  // (stations then use plain DIFS, as if unable to tell garbage from noise).
  void set_eifs_enabled(bool enabled) { eifs_enabled_ = enabled; }

  // IEEE 802.11 9.2.5.4 NAV-reset rule: a station that set its NAV from an
  // RTS may reset it if no PHY activity follows within
  // 2*SIFS + T_CTS + 2*slot (the reserved exchange evidently died).
  // Off by default: ns-2's MAC — the paper's substrate — does not
  // implement it, and the calibration follows ns-2.
  void set_nav_rts_reset(bool enabled) { nav_rts_reset_ = enabled; }

  // Fragmentation: MSDUs larger than the threshold are transmitted as a
  // burst of SIFS-separated, individually acknowledged fragments. The
  // Duration of a non-final fragment (and of its ACK) reserves the medium
  // through the next fragment — the one case where a legitimate ACK
  // carries a nonzero NAV (see NavValidator::assume_fragmentation).
  // 0 disables fragmentation (the paper's configuration).
  void set_fragmentation_threshold(int bytes) { frag_threshold_ = bytes; }
  int fragmentation_threshold() const { return frag_threshold_; }

  // Sender-side misbehavior (Kyasanur & Vaidya; the DOMINO family's
  // target): draw backoff from [0, cw * fraction] instead of [0, cw].
  // 1.0 = honest. Used as the baseline greedy-sender attack the DOMINO
  // detector in src/detect/backoff_monitor.h catches.
  void set_backoff_cheat(double fraction) { backoff_cheat_ = fraction; }
  double backoff_cheat() const { return backoff_cheat_; }

  // Observation tap for channel busy/idle edges (true = became busy);
  // chained like `sniffer`. Backoff monitoring (DOMINO) uses it to measure
  // how long stations actually waited before transmitting.
  std::function<void(bool)> channel_observer;

  // Auto-rate adaptation (ARF, or AARF when `adaptive`) on DATA frames,
  // per destination. Without it every DATA frame uses the standard's fixed
  // default rate (the paper's main configuration). `start_rate_mbps` <= 0
  // starts at the ladder rung closest to the default rate.
  void enable_auto_rate(double start_rate_mbps = 0.0, bool adaptive = false);
  bool auto_rate() const { return auto_rate_; }
  // Current DATA rate toward `dest` (default rate when auto-rate is off).
  double data_rate_to(int dest) const;
  // Controller stats for a destination (nullptr if none exists yet).
  const ArfRateController* rate_controller(int dest) const;

  // GRC hooks. nav_filter: given an overheard frame, return the Duration to
  // use for the NAV update (identity when detection is off). ack_filter:
  // return true to IGNORE the ACK (treat as not received -> retransmit).
  std::function<Time(const Frame&, const RxInfo&)> nav_filter;
  std::function<bool(const Frame&, const RxInfo&, int expected_peer)> ack_filter;
  // Observation tap: every decodable frame this station hears (including
  // its own ACKs' triggers); used by detectors that learn RSSI profiles.
  std::function<void(const Frame&, const RxInfo&)> sniffer;
  // Transmit-side tap: every frame this station keys onto the air, with its
  // transmission start/end times. Chained like `sniffer`. Together the two
  // taps give a capture the complete frame stream at this vantage point
  // (the capture subsystem records both; see src/capture/).
  std::function<void(const Frame&, Time start, Time end)> tx_sniffer;
  // Sender-side completion tap: (packet, mac_acked).
  std::function<void(const PacketPtr&, bool)> tx_done_cb;

  // Testbed-emulation knobs (paper Section VI).
  void disable_retransmissions_to(int dest) { overrides_[dest].disable_retx = true; }
  void clamp_cw_to(int dest) { overrides_[dest].clamp_cw = true; }

  // --- upper-layer API ----------------------------------------------------
  // Enqueue a packet for transmission to MAC address `dest_mac`.
  void send(PacketPtr packet, int dest_mac);
  std::size_t queue_size() const { return queue_.size(); }

  // Association handoff support: drop every queued (not yet serviced)
  // packet addressed to `dest_mac`. A frame already under service —
  // mid-backoff or awaiting its ACK — completes or exhausts its retries
  // normally; aborting a live exchange would strand the peers' NAV and
  // timeout bookkeeping mid-protocol. Returns the number of packets
  // dropped (not counted in queue drop stats, which mean congestion).
  std::size_t abort_queued_to(int dest_mac) {
    return queue_.erase_dest(dest_mac);
  }

  // --- stats --------------------------------------------------------------
  const MacStats& stats() const { return stats_; }
  const Backoff& backoff() const { return backoff_; }
  const Nav& nav() const { return nav_; }

  // Per-destination transmission accounting (the fake-ACK detector compares
  // per-receiver MAC loss against probed application loss).
  struct DestCounters {
    std::int64_t attempts = 0;  // DATA transmissions incl. retries
    std::int64_t retries = 0;
    std::int64_t successes = 0;
    std::int64_t drops = 0;
    double retry_fraction() const {
      return attempts == 0 ? 0.0
                           : static_cast<double>(retries) / static_cast<double>(attempts);
    }
  };
  const DestCounters& dest_counters(int dest) const;

  // --- PhyListener --------------------------------------------------------
  // Hot roots (src/sim/hot.h): the MAC state machine's entry points fire
  // once per frame edge on the steady-state packet path.
  G80211_HOT void on_rx_end(const Frame& frame, const RxInfo& info) override;
  G80211_HOT void on_channel_busy() override;
  G80211_HOT void on_channel_idle() override;
  G80211_HOT void on_tx_end() override;

 private:
  enum class TxState { kIdle, kWaitCts, kWaitAck };
  enum class TxKind { kNone, kRts, kData, kCts, kAck, kSpoofAck, kFakeAck };

  struct DestOverride {
    bool disable_retx = false;
    bool clamp_cw = false;
  };

  bool medium_busy() const;
  // Hot roots (src/sim/hot.h): timer-slab callbacks enter here.
  G80211_HOT void reevaluate();  // (re)start deference if access is wanted
  G80211_HOT void on_defer_done();
  void pause_backoff();
  G80211_HOT void on_backoff_expired();
  void start_service();        // dequeue next packet, draw backoff
  void transmit_frame(const Frame& frame, Time airtime);  // tx tap + PHY
  void transmit_current();
  void send_rts();
  void send_data();
  void schedule_response(Frame response, TxKind kind);
  G80211_HOT void fire_response();
  G80211_HOT void on_cts_timeout();
  G80211_HOT void on_ack_timeout();
  void finish_success();
  void finish_drop();
  void handle_rx_rts(const Frame& frame);
  void handle_rx_cts(const Frame& frame);
  void handle_rx_data(const Frame& frame, const RxInfo& info);
  void handle_rx_ack(const Frame& frame, const RxInfo& info);
  Time adjusted_duration(FrameType type, Time duration);
  bool clamp_cw_for_current() const;
  int draw_backoff();

  Scheduler* sched_;
  Phy* phy_;
  WifiParams params_;
  Rng rng_;
  MacUpper* upper_ = nullptr;
  GreedyPolicy* greedy_ = nullptr;

  bool use_rts_cts_ = true;
  DropTailQueue queue_;
  std::map<int, DestOverride> overrides_;
  bool auto_rate_ = false;
  bool auto_rate_adaptive_ = false;
  int auto_rate_start_index_ = 0;
  std::map<int, ArfRateController> rate_ctrl_;
  ArfRateController& controller_for(int dest);
  double backoff_cheat_ = 1.0;

  // Current packet under service.
  PacketPtr current_;
  int current_dest_ = kNoAddr;
  int short_retries_ = 0;
  int long_retries_ = 0;
  int mac_seq_ = 0;          // sequence number of the current DATA frame
  bool current_is_retry_ = false;
  // Fragmentation state for the packet under service.
  int frag_threshold_ = 0;          // 0: fragmentation off
  std::vector<int> frag_sizes_;     // byte share of each fragment
  int frag_idx_ = 0;
  Frame build_data_frame() const;   // DATA frame for the current fragment
  Time current_data_duration() const;
  // Receiver-side reassembly: (ta, seq) -> fragments received.
  struct Reassembly {
    std::set<int> got;
    int total = -1;  // known once the final fragment arrives
  };
  std::map<std::pair<int, int>, Reassembly> reassembly_;

  // Channel access state.
  Backoff backoff_;
  int backoff_slots_ = 0;      // remaining slots (valid when !backoff_running_)
  bool backoff_running_ = false;
  Time backoff_started_ = 0;   // when the running countdown began
  bool use_eifs_ = false;
  bool eifs_enabled_ = true;
  Nav nav_;
  bool nav_rts_reset_ = false;
  Timer defer_timer_;
  Timer backoff_timer_;
  Timer nav_timer_;
  Timer nav_reset_timer_;

  // Exchange state.
  TxState tx_state_ = TxState::kIdle;
  TxKind on_air_ = TxKind::kNone;
  Timer timeout_timer_;
  Timer response_timer_;
  std::optional<Frame> pending_response_;
  TxKind pending_response_kind_ = TxKind::kNone;

  DedupCache dedup_;
  MacStats stats_;
  std::map<int, DestCounters> dest_counters_;
  std::uint64_t next_frame_uid_ = 1;
};

}  // namespace g80211
