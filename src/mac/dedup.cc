#include "src/mac/dedup.h"

namespace g80211 {

bool DedupCache::is_duplicate(int ta, int seq, bool retry, int frag) {
  const auto it = last_.find(ta);
  const bool dup = retry && it != last_.end() && it->second.first == seq &&
                   it->second.second == frag;
  // NOLINTNEXTLINE(hot-path-alloc): inserts on first contact per
  // transmitter; steady state overwrites the existing entry in place.
  last_[ta] = {seq, frag};
  return dup;
}

}  // namespace g80211
