#include "src/mac/frame.h"

#include <sstream>

namespace g80211 {

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kRts:
      return "RTS";
    case FrameType::kCts:
      return "CTS";
    case FrameType::kData:
      return "DATA";
    case FrameType::kAck:
      return "ACK";
  }
  return "?";
}

std::string Frame::describe() const {
  std::ostringstream os;
  os << frame_type_name(type) << " ra=" << ra;
  if (ta != kNoAddr) os << " ta=" << ta;
  os << " dur=" << to_micros(duration) << "us";
  if (packet) os << " pkt(flow=" << packet->flow_id << " seq=" << packet->seq << ")";
  if (retry) os << " retry";
  return os.str();
}

}  // namespace g80211
