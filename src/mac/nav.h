// Network Allocation Vector — virtual carrier sense.
//
// IEEE 802.11 update rule (faithfully implemented, since it is what NAV
// inflation exploits): on receiving a valid frame NOT addressed to this
// station, set NAV to the frame's Duration value iff the new expiry is
// later than the current one.
#pragma once

#include <algorithm>

#include "src/sim/time.h"

namespace g80211 {

class Nav {
 public:
  // Returns true if the NAV expiry moved (i.e. the update was applied).
  // Duration-0 frames (e.g. final ACKs) never set the NAV.
  bool update(Time now, Time duration) {
    if (duration <= 0) return false;
    const Time end = now + duration;
    if (end > expiry_) {
      expiry_ = end;
      return true;
    }
    return false;
  }

  bool busy(Time now) const { return expiry_ > now; }
  Time expiry() const { return expiry_; }
  void reset() { expiry_ = 0; }

 private:
  Time expiry_ = 0;
};

}  // namespace g80211
