#include "src/mac/frame_tracer.h"

#include <cstdio>
#include <utility>

#include "src/mac/durations.h"

namespace g80211 {

std::string TraceRecord::to_string() const {
  // Layout is stable for downstream greps; new flags append after seq.
  char buf[176];
  std::snprintf(buf, sizeof(buf),
                "%12.6fs %-4s ta=%-3d ra=%-3d dur=%8.1fus seq=%-5d%s%s%s%s",
                to_seconds(start), frame_type_name(type), ta, ra,
                to_micros(duration), seq, retry ? " retry" : "",
                more_frags ? " frag+" : (frag > 0 ? " frag." : ""),
                corrupted ? " CORRUPT" : "", collided ? " COLLISION" : "");
  return buf;
}

void FrameTracer::attach(Mac& mac) {
  auto prev = std::move(mac.sniffer);
  mac.sniffer = [this, params = mac.params(), prev = std::move(prev)](
                    const Frame& f, const RxInfo& i) {
    if (prev) prev(f, i);
    TraceRecord r;
    r.start = i.start;
    r.end = i.end;
    r.type = f.type;
    r.ta = f.ta;
    r.ra = f.ra;
    r.duration = f.duration;
    r.corrupted = i.corrupted;
    r.collided = i.collided;
    r.seq = f.seq;
    r.frag = f.frag_index;
    r.more_frags = f.more_frags;
    r.retry = f.retry;
    r.bytes = on_air_bytes(params, f);
    r.rssi_dbm = i.rssi_dbm;
    record(r);
  };
}

}  // namespace g80211
