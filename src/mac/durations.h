// Duration/NAV field arithmetic for the DCF frame exchanges
// (IEEE 802.11-1999 section 7.2):
//   RTS.Duration  = 3*SIFS + T_CTS + T_DATA + T_ACK
//   CTS.Duration  = RTS.Duration - SIFS - T_CTS
//   DATA.Duration = SIFS + T_ACK
//   ACK.Duration  = 0 (no fragmentation)
// These are both what honest stations transmit and what the GRC NAV
// validator uses as the expected values.
#pragma once

#include "src/mac/frame.h"
#include "src/phy/wifi_params.h"
#include "src/sim/time.h"

namespace g80211 {

struct Durations {
  // `rate_mbps` = 0 uses the standard's default data rate; auto-rate MACs
  // pass their per-destination rate so the reservation matches the actual
  // DATA airtime.
  static Time rts(const WifiParams& p, int packet_bytes, double rate_mbps = 0) {
    const Time data_t = rate_mbps > 0 ? p.data_tx_time_at(packet_bytes, rate_mbps)
                                      : p.data_tx_time(packet_bytes);
    return 3 * p.sifs + p.cts_tx_time() + data_t + p.ack_tx_time();
  }
  static Time cts_from_rts(const WifiParams& p, Time rts_duration) {
    const Time d = rts_duration - p.sifs - p.cts_tx_time();
    return d > 0 ? d : 0;
  }
  static Time cts(const WifiParams& p, int packet_bytes) {
    return 2 * p.sifs + p.data_tx_time(packet_bytes) + p.ack_tx_time();
  }
  static Time data(const WifiParams& p) { return p.sifs + p.ack_tx_time(); }
  static Time ack() { return 0; }

  // Upper bounds used by the GRC validator for observers that did not hear
  // the eliciting frame: assume the largest Internet MTU payload (1500 B)
  // plus IP/transport headers.
  static constexpr int kMaxMtuPacket = 1500 + 40;
  static Time max_cts(const WifiParams& p) { return cts(p, kMaxMtuPacket); }
  static Time max_rts(const WifiParams& p) { return rts(p, kMaxMtuPacket); }
};

// On-air MAC length of a frame in bytes (header + payload + FCS) — what a
// sniffer would report as the frame length.
inline int on_air_bytes(const WifiParams& p, const Frame& f) {
  switch (f.type) {
    case FrameType::kRts: return p.rts_bytes;
    case FrameType::kCts: return p.cts_bytes;
    case FrameType::kAck: return p.ack_bytes;
    case FrameType::kData: return p.data_mac_overhead_bytes + f.air_bytes();
  }
  return 0;
}

}  // namespace g80211
