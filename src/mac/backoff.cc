#include "src/mac/backoff.h"

// Header-only; this translation unit exists so the target has a stable
// object for the module and to catch ODR issues early.
