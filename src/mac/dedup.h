// Receiver-side duplicate detection, per IEEE 802.11: a <TA, sequence,
// fragment> cache; a frame with the Retry bit set whose tuple matches the
// cache entry is a duplicate (ACKed at the MAC but not delivered upward).
#pragma once

#include <map>
#include <utility>

namespace g80211 {

class DedupCache {
 public:
  // Returns true if the frame is a duplicate. Always records the tuple.
  bool is_duplicate(int ta, int seq, bool retry, int frag = 0);

 private:
  std::map<int, std::pair<int, int>> last_;  // ta -> (seq, frag)
};

}  // namespace g80211
