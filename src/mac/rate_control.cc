#include "src/mac/rate_control.h"

#include <algorithm>

#include "src/sim/check.h"

namespace g80211 {

ArfRateController::ArfRateController(std::vector<double> ladder_mbps,
                                     int start_index, int up_threshold,
                                     int down_threshold, bool adaptive)
    : ladder_(std::move(ladder_mbps)),
      index_(start_index),
      up_threshold_(up_threshold),
      down_threshold_(down_threshold),
      adaptive_(adaptive),
      current_up_threshold_(up_threshold) {
  G80211_CHECK(!ladder_.empty());
  index_ = std::clamp(index_, 0, static_cast<int>(ladder_.size()) - 1);
}

void ArfRateController::on_success() {
  probing_ = false;
  failure_streak_ = 0;
  if (++success_streak_ >= current_up_threshold_ &&
      index_ + 1 < static_cast<int>(ladder_.size())) {
    ++index_;
    ++ups_;
    success_streak_ = 0;
    probing_ = true;  // the next frame validates the new rate
  }
}

void ArfRateController::on_failure() {
  success_streak_ = 0;
  const bool probe_failed = probing_;
  probing_ = false;
  if (probe_failed || ++failure_streak_ >= down_threshold_) {
    if (index_ > 0) {
      --index_;
      ++downs_;
    }
    failure_streak_ = 0;
    if (adaptive_) {
      // AARF: a failed probe doubles the patience before the next one; a
      // genuine (non-probe) drop resets it.
      current_up_threshold_ = probe_failed
                                  ? std::min(2 * current_up_threshold_, 50)
                                  : up_threshold_;
    }
  }
}

}  // namespace g80211
