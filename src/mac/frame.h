// 802.11 MAC frames as exchanged over the simulated channel.
//
// Field note: real CTS and ACK frames carry only a Receiver Address — no
// transmitter address. That asymmetry is exactly what makes ACK spoofing
// possible (the sender cannot tell who transmitted an ACK except through
// physical-layer hints such as RSSI), so we model it faithfully: `ta` is
// kNoAddr for CTS/ACK, and `true_tx` records the actual transmitter for
// bookkeeping/PHY purposes only. MAC logic must never branch on `true_tx`
// of a CTS/ACK; detection code may only use it via the PHY's RSSI.
#pragma once

#include <cstdint>
#include <string>

#include "src/net/packet.h"
#include "src/sim/time.h"

namespace g80211 {

inline constexpr int kBroadcast = -1;
inline constexpr int kNoAddr = -2;

enum class FrameType : std::uint8_t { kRts, kCts, kData, kAck };

const char* frame_type_name(FrameType t);

struct Frame {
  FrameType type = FrameType::kData;
  Time duration = 0;   // Duration/NAV field (ns; <= WifiParams::kMaxNav)
  int ra = kNoAddr;    // receiver address
  int ta = kNoAddr;    // transmitter address (kNoAddr on CTS/ACK)
  int true_tx = kNoAddr;  // who actually keyed the radio (PHY bookkeeping)
  bool retry = false;
  int seq = 0;            // MAC sequence number (DATA dedup)
  int frag_index = 0;     // fragment number within the MSDU
  bool more_frags = false;  // More Fragments bit
  int frag_bytes = 0;     // this fragment's share of the packet (0: whole)
  PacketPtr packet;       // payload, DATA frames only
  double rate_mbps = 0;   // PHY rate of DATA frames (0: standard default)
  std::uint64_t uid = 0;  // unique per emission

  // Bytes this DATA frame actually carries on air.
  int air_bytes() const {
    if (frag_bytes > 0) return frag_bytes;
    return packet ? packet->size_bytes : 0;
  }

  bool is_control() const { return type != FrameType::kData; }
  std::string describe() const;
};

}  // namespace g80211
