// Per-MAC counters used throughout the evaluation (RTS send ratios for
// Fig 3, retransmission/drop counts for detection, ACK bookkeeping).
// Contention-window statistics live in Backoff; transport goodput lives in
// the transport sinks.
#pragma once

#include <cstdint>

namespace g80211 {

struct MacStats {
  // Sender side.
  std::int64_t rts_sent = 0;
  std::int64_t data_sent = 0;        // DATA transmissions incl. retries
  std::int64_t data_retries = 0;
  std::int64_t data_success = 0;     // MAC-level ACK received (or retx disabled)
  std::int64_t data_dropped = 0;     // retry limit exceeded
  std::int64_t cts_timeouts = 0;
  std::int64_t ack_timeouts = 0;
  std::int64_t queue_drops = 0;
  std::int64_t acks_ignored = 0;     // spoof-detector told us to discard

  // Receiver side.
  std::int64_t cts_sent = 0;
  std::int64_t acks_sent = 0;
  std::int64_t spoofed_acks_sent = 0;
  std::int64_t fake_acks_sent = 0;
  std::int64_t cts_suppressed_by_nav = 0;
  std::int64_t rx_data_ok = 0;
  std::int64_t rx_data_dup = 0;
  std::int64_t rx_corrupted = 0;
  std::int64_t nav_updates = 0;

  // Fraction of DATA transmissions that were retries (the sender's
  // MAC-layer loss estimate used by the fake-ACK detector).
  double mac_loss_rate() const {
    return data_sent == 0
               ? 0.0
               : static_cast<double>(data_retries) / static_cast<double>(data_sent);
  }
};

}  // namespace g80211
