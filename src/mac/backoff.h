// Binary exponential backoff state: contention window management and the
// slot-countdown bookkeeping. Timer driving lives in the Mac; this class is
// pure logic so the doubling/reset/draw rules are unit-testable in
// isolation.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>

#include "src/sim/rng.h"

namespace g80211 {

class Backoff {
 public:
  Backoff(int cw_min, int cw_max) : cw_min_(cw_min), cw_max_(cw_max), cw_(cw_min) {}

  int cw() const { return cw_; }
  // Double the window after a failed transmission (up to cw_max). When
  // `clamped` (the fake-ACK testbed-emulation knob) the window never grows.
  void fail(bool clamped = false) {
    if (clamped) return;
    cw_ = std::min(2 * cw_ + 1, cw_max_);
  }
  void reset() { cw_ = cw_min_; }

  // Draw a fresh backoff in [0, cw] and record it for statistics.
  int draw(Rng& rng) {
    const int slots = static_cast<int>(rng.uniform_int(cw_));
    cw_sum_ += cw_;
    ++cw_draws_;
    ++cw_hist_[cw_];  // NOLINT(hot-path-alloc): first contact per CW rung only
    return slots;
  }

  // Mean contention window over all draws (paper Fig 2 / Table IV metric).
  double average_cw() const {
    return cw_draws_ == 0 ? static_cast<double>(cw_min_)
                          : static_cast<double>(cw_sum_) / static_cast<double>(cw_draws_);
  }
  std::int64_t draws() const { return cw_draws_; }

  // Empirical distribution of the contention-window value at each draw —
  // the Pr[CW = m] input to the paper's Eq. (1)/(2) model (Fig 3).
  const std::map<int, std::int64_t>& cw_histogram() const { return cw_hist_; }

 private:
  int cw_min_;
  int cw_max_;
  int cw_;
  std::int64_t cw_sum_ = 0;
  std::int64_t cw_draws_ = 0;
  std::map<int, std::int64_t> cw_hist_;
};

}  // namespace g80211
