#include "src/mac/durations.h"

// Header-only module; translation unit kept for target symmetry.
