#include "src/analysis/nav_model.h"

#include <algorithm>

namespace g80211 {
namespace {

// Pr[A <= B + offset] with A ~ U{0..ma}, B ~ U{0..mb} independent.
double pr_le_uniform(int ma, int mb, int offset) {
  double favourable = 0.0;
  for (int b = 0; b <= mb; ++b) {
    const int bound = b + offset;  // A must be <= bound
    if (bound < 0) continue;
    favourable += static_cast<double>(std::min(ma, bound) + 1);
  }
  return favourable /
         (static_cast<double>(ma + 1) * static_cast<double>(mb + 1));
}

// Pr[A <= B + offset] marginalised over both CW distributions.
double pr_le(const CwDistribution& a, const CwDistribution& b, int offset) {
  double total = 0.0;
  for (const auto& [ma, pa] : a) {
    for (const auto& [mb, pb] : b) {
      total += pa * pb * pr_le_uniform(ma, mb, offset);
    }
  }
  return total;
}

}  // namespace

CwDistribution normalize_histogram(const std::map<int, std::int64_t>& hist) {
  std::int64_t total = 0;
  for (const auto& [cw, n] : hist) total += n;
  CwDistribution dist;
  if (total == 0) return dist;
  dist.reserve(hist.size());
  for (const auto& [cw, n] : hist) {
    dist.emplace_back(cw, static_cast<double>(n) / static_cast<double>(total));
  }
  return dist;
}

SendProbabilities nav_inflation_send_prob(const CwDistribution& gs_cw,
                                          const CwDistribution& ns_cw,
                                          int v_slots) {
  SendProbabilities out;
  if (gs_cw.empty() || ns_cw.empty()) return out;
  out.gs = pr_le(gs_cw, ns_cw, v_slots + 1);   // B_GS <= B_NS + v + 1
  out.ns = pr_le(ns_cw, gs_cw, -v_slots + 1);  // B_NS <= B_GS - v + 1
  return out;
}

}  // namespace g80211
