#include "src/analysis/fer.h"

namespace g80211 {

FerRow table3_row(double ber) {
  FerRow row;
  row.ber = ber;
  row.ack_cts = ErrorModel::fer(ber, ErrorModel::error_len(FrameType::kAck, 0));
  row.rts = ErrorModel::fer(ber, ErrorModel::error_len(FrameType::kRts, 0));
  // TCP ACK packet: 40 bytes of headers; TCP DATA: 1024 + 40.
  row.tcp_ack = ErrorModel::fer(ber, ErrorModel::error_len(FrameType::kData, 40));
  row.tcp_data =
      ErrorModel::fer(ber, ErrorModel::error_len(FrameType::kData, 1064));
  return row;
}

std::vector<FerRow> table3() {
  std::vector<FerRow> rows;
  rows.reserve(kTable3Bers.size());
  for (const double ber : kTable3Bers) rows.push_back(table3_row(ber));
  return rows;
}

}  // namespace g80211
