// Small statistics toolkit used by the experiment harness: medians
// (the paper reports the median of 5 runs), means, percentiles, and
// empirical CDFs (Fig 21).
#pragma once

#include <cstddef>
#include <vector>

namespace g80211 {

double mean(const std::vector<double>& v);
double median(std::vector<double> v);  // by value: needs to reorder
double percentile(std::vector<double> v, double p);  // p in [0, 100]
double stddev(const std::vector<double>& v);

struct CdfPoint {
  double x = 0.0;
  double fraction = 0.0;  // P(X <= x)
};

// Empirical CDF sampled at each distinct data point.
std::vector<CdfPoint> empirical_cdf(std::vector<double> samples);

// Fraction of samples <= x.
double cdf_at(const std::vector<CdfPoint>& cdf, double x);

// Jain's fairness index: (sum x)^2 / (n * sum x^2). 1 = perfectly fair,
// 1/n = one flow has everything. The canonical summary of how badly a
// greedy receiver skews the allocation.
double jain_fairness(const std::vector<double>& allocations);

}  // namespace g80211
