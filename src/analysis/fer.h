// Analytic BER -> FER mapping for the paper's frame types (Table III).
#pragma once

#include <array>
#include <vector>

#include "src/phy/error_model.h"

namespace g80211 {

struct FerRow {
  double ber = 0.0;
  double ack_cts = 0.0;
  double rts = 0.0;
  double tcp_ack = 0.0;
  double tcp_data = 0.0;
};

// One row of Table III (1024-byte payload, 40-byte IP/transport headers).
FerRow table3_row(double ber);

// The BER values the paper tabulates.
inline constexpr std::array<double, 5> kTable3Bers = {1e-5, 2e-4, 3.2e-4, 4.4e-4,
                                                      8e-4};

std::vector<FerRow> table3();

}  // namespace g80211
