#include "src/analysis/stats.h"

#include <algorithm>
#include <cmath>

#include "src/sim/check.h"

namespace g80211 {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(), v.begin() + mid - 1, v.begin() + mid);
    m = (m + v[mid - 1]) / 2.0;
  }
  return m;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  G80211_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(v.begin(), v.end());
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (const double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

std::vector<CdfPoint> empirical_cdf(std::vector<double> samples) {
  std::vector<CdfPoint> cdf;
  if (samples.empty()) return cdf;
  std::sort(samples.begin(), samples.end());
  const double n = static_cast<double>(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i + 1 < samples.size() && samples[i + 1] == samples[i]) continue;
    cdf.push_back({samples[i], static_cast<double>(i + 1) / n});
  }
  return cdf;
}

double cdf_at(const std::vector<CdfPoint>& cdf, double x) {
  double frac = 0.0;
  for (const auto& p : cdf) {
    if (p.x > x) break;
    frac = p.fraction;
  }
  return frac;
}

double jain_fairness(const std::vector<double>& allocations) {
  if (allocations.empty()) return 0.0;
  double sum = 0.0, sum_sq = 0.0;
  for (const double x : allocations) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq <= 0.0) return 1.0;  // everyone has zero: trivially fair
  return sum * sum / (static_cast<double>(allocations.size()) * sum_sq);
}

}  // namespace g80211
