// Bianchi's saturation-throughput model of 802.11 DCF (G. Bianchi,
// "Performance Analysis of the IEEE 802.11 Distributed Coordination
// Function", IEEE JSAC 2000) — the canonical analytical companion to any
// DCF simulator, used here to validate the honest baseline the paper's
// attacks perturb.
//
// The model solves the fixed point between a station's per-slot
// transmission probability tau and its conditional collision probability
// p, then converts slot-level statistics into throughput:
//   tau = 2(1-2p) / ((1-2p)(W+1) + pW(1-(2p)^m))
//   p   = 1 - (1-tau)^(n-1)
// with W = CWmin+1 and m retry stages. Throughput uses the standard
// renewal argument over idle slots, successful exchanges and collisions.
#pragma once

#include "src/phy/wifi_params.h"

namespace g80211 {

struct BianchiResult {
  double tau = 0.0;   // per-slot transmission probability
  double p = 0.0;     // conditional collision probability
  double throughput_mbps = 0.0;  // aggregate payload throughput
};

struct BianchiConfig {
  int n_stations = 2;
  int payload_bytes = 1024;  // application payload per frame
  int header_bytes = 40;     // IP/transport headers
  bool rts_cts = true;
  int backoff_stages = 5;    // CWmax = 2^m (CWmin+1) - 1
};

// Solve the (tau, p) fixed point and evaluate aggregate throughput.
BianchiResult bianchi_saturation(const WifiParams& params,
                                 const BianchiConfig& cfg);

}  // namespace g80211
