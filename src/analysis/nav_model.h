// Analytical model of NAV inflation under saturated UDP (paper Section V-A,
// Equations (1) and (2), evaluated in Fig 3).
//
// Setup: GS (the greedy receiver's sender) and NS (a normal sender) are both
// saturated. GR inflates NAV by v timeslots, so GS starts its countdown v
// slots earlier than NS each round. With backoff B uniform on [0, CW] and a
// one-slot carrier-sensing granularity:
//   Pr[GS sends] = Pr[B_GS <= B_NS + v + 1]
//   Pr[NS sends] = Pr[B_NS <= B_GS - v + 1]
// marginalised over the empirical contention-window distributions of the
// two senders (collected from Backoff::cw_histogram()).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/phy/wifi_params.h"

namespace g80211 {

// Pr[CW = m] as (m, probability) pairs.
using CwDistribution = std::vector<std::pair<int, double>>;

CwDistribution normalize_histogram(const std::map<int, std::int64_t>& hist);

struct SendProbabilities {
  double gs = 0.0;  // Pr[GS transmits in a round]
  double ns = 0.0;  // Pr[NS transmits in a round]

  // Fraction of rounds in which the transmitting station is GS, given at
  // least one transmits — the "sending ratio" of Fig 3.
  double gs_ratio() const {
    const double total = gs + ns;
    return total <= 0.0 ? 0.0 : gs / total;
  }
};

SendProbabilities nav_inflation_send_prob(const CwDistribution& gs_cw,
                                          const CwDistribution& ns_cw,
                                          int v_slots);

// Closed-form starvation threshold: once the inflation reaches CWmin
// slots, B_GS <= CWmin <= B_NS + v holds for every draw, so GS wins every
// round and NS starves completely. In time units that is CWmin slots —
// 620 us on 802.11b, matching Fig 1's observation that +0.6 ms suffices.
inline Time nav_starvation_threshold(const WifiParams& params) {
  return static_cast<Time>(params.cw_min) * params.slot;
}

}  // namespace g80211
