// PFTK steady-state TCP throughput model (Padhye, Firoiu, Towsley,
// Kurose, SIGCOMM'98) — the analytical companion to the ACK-spoofing
// results. A spoofed MAC ACK converts every wireless frame loss into a
// TCP segment loss, so the victim's throughput is TCP-over-loss-rate-p
// with p = the data frame error rate; PFTK turns that into numbers:
//
//   B(p) = MSS / (RTT*sqrt(2bp/3) + t_RTO*min(1, 3*sqrt(3bp/8))*p*(1+32p^2))
//
// (b = segments per ACK; 1 here, no delayed ACKs). The same formula with
// p = FER^(maxRetries+1) describes the honest flow, whose MAC hides all
// but consecutive-loss events — the contrast IS the attack.
#pragma once

#include <algorithm>
#include <cmath>

#include "src/sim/time.h"

namespace g80211 {

struct PftkConfig {
  int mss_bytes = 1024;
  Time rtt = milliseconds(6);       // measured round trip incl. MAC service
  Time rto = milliseconds(200);     // the sender's minimum RTO in practice
  double segments_per_ack = 1.0;    // no delayed ACKs (ns-2 setup)
  double max_window = 128.0;        // receiver window cap, segments
};

// Steady-state throughput in Mbps at segment loss probability p.
inline double pftk_throughput_mbps(const PftkConfig& cfg, double p) {
  const double mss_bits = 8.0 * static_cast<double>(cfg.mss_bytes);
  const double rtt_s = to_seconds(cfg.rtt);
  if (p <= 0.0) {
    // Loss-free: window-limited.
    return cfg.max_window * mss_bits / rtt_s / 1e6;
  }
  p = std::min(p, 0.999);
  const double b = cfg.segments_per_ack;
  const double rto_s = to_seconds(cfg.rto);
  const double fast = rtt_s * std::sqrt(2.0 * b * p / 3.0);
  const double slow = rto_s * std::min(1.0, 3.0 * std::sqrt(3.0 * b * p / 8.0)) *
                      p * (1.0 + 32.0 * p * p);
  const double bps = mss_bits / (fast + slow);
  // Window cap still applies.
  return std::min(bps, cfg.max_window * mss_bits / rtt_s) / 1e6;
}

}  // namespace g80211
