// Per-interval goodput time series: samples a monotone byte counter every
// `interval` and records Mbps per interval. Used to watch an attack bite
// and a countermeasure recover over time, rather than only in aggregate.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/scheduler.h"

namespace g80211 {

class GoodputSampler {
 public:
  GoodputSampler(Scheduler& sched, Time interval,
                 std::function<std::int64_t()> byte_counter)
      : interval_(interval),
        counter_(std::move(byte_counter)),
        timer_(sched, [this] { sample(); }) {}

  void start(Time at) {
    last_bytes_ = counter_();
    timer_.start_at(at + interval_);
  }

  // One entry per elapsed interval, in Mbps.
  const std::vector<double>& series_mbps() const { return series_; }

 private:
  void sample() {
    const std::int64_t now_bytes = counter_();
    const double mbps = static_cast<double>(now_bytes - last_bytes_) * 8.0 /
                        to_seconds(interval_) / 1e6;
    series_.push_back(mbps);
    last_bytes_ = now_bytes;
    timer_.start(interval_);
  }

  Time interval_;
  std::function<std::int64_t()> counter_;
  std::int64_t last_bytes_ = 0;
  std::vector<double> series_;
  Timer timer_;
};

}  // namespace g80211
