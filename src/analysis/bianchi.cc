#include "src/analysis/bianchi.h"

#include <cmath>

#include "src/sim/check.h"

namespace g80211 {
namespace {

// Per-slot transmission probability for a given collision probability.
double tau_of_p(double p, int w, int m) {
  const double num = 2.0 * (1.0 - 2.0 * p);
  const double den = (1.0 - 2.0 * p) * (w + 1) +
                     p * w * (1.0 - std::pow(2.0 * p, m));
  return num / den;
}

}  // namespace

BianchiResult bianchi_saturation(const WifiParams& params,
                                 const BianchiConfig& cfg) {
  G80211_CHECK(cfg.n_stations >= 1);
  const int w = params.cw_min + 1;
  const int n = cfg.n_stations;

  // Fixed point by bisection on p: f(p) = p - (1 - (1 - tau(p))^(n-1)) is
  // increasing from negative at p=0 (for n >= 2).
  double lo = 0.0, hi = 0.999999;
  double p = 0.0, tau = tau_of_p(0.0, w, cfg.backoff_stages);
  if (n > 1) {
    for (int it = 0; it < 200; ++it) {
      p = 0.5 * (lo + hi);
      tau = tau_of_p(p, w, cfg.backoff_stages);
      const double implied = 1.0 - std::pow(1.0 - tau, n - 1);
      if (p < implied) {
        lo = p;
      } else {
        hi = p;
      }
    }
  } else {
    p = 0.0;
  }

  BianchiResult out;
  out.tau = tau;
  out.p = p;

  const double ptr = 1.0 - std::pow(1.0 - tau, n);
  const double ps =
      ptr > 0 ? n * tau * std::pow(1.0 - tau, n - 1) / ptr : 0.0;

  const int packet = cfg.payload_bytes + cfg.header_bytes;
  const double sifs = static_cast<double>(params.sifs);
  const double difs = static_cast<double>(params.difs);
  const double slot = static_cast<double>(params.slot);
  const double data_t = static_cast<double>(params.data_tx_time(packet));
  const double ack_t = static_cast<double>(params.ack_tx_time());
  const double rts_t = static_cast<double>(params.rts_tx_time());
  const double cts_t = static_cast<double>(params.cts_tx_time());

  // Success/collision durations matched to this MAC's timing: a failed
  // RTS (or DATA) is followed by the responder timeout before the channel
  // is contended again.
  double ts = 0.0, tc = 0.0;
  if (cfg.rts_cts) {
    ts = rts_t + sifs + cts_t + sifs + data_t + sifs + ack_t + difs;
    tc = rts_t + static_cast<double>(params.cts_timeout()) + difs;
  } else {
    ts = data_t + sifs + ack_t + difs;
    tc = data_t + static_cast<double>(params.ack_timeout()) + difs;
  }

  const double payload_bits = 8.0 * static_cast<double>(cfg.payload_bytes);
  const double denom_ns =
      (1.0 - ptr) * slot + ptr * ps * ts + ptr * (1.0 - ps) * tc;
  if (denom_ns > 0.0) {
    // bits per nanosecond -> Mbps (x1000).
    out.throughput_mbps = ps * ptr * payload_bits / denom_ns * 1000.0;
  }
  return out;
}

}  // namespace g80211
