#include "src/detect/rssi_monitor.h"

#include <algorithm>

#include "src/sim/check.h"

namespace g80211 {

void RssiMonitor::add_sample(int peer, double rssi_dbm) {
  G80211_DCHECK(peer >= 0 && "RSSI profiles are keyed by station id");
  if (peer < 0) return;
  if (static_cast<std::size_t>(peer) >= history_.size()) {
    history_.resize(static_cast<std::size_t>(peer) + 1);
  }
  Ring& r = history_[static_cast<std::size_t>(peer)];
  if (r.buf.empty()) r.buf.resize(window_);
  r.buf[r.next] = rssi_dbm;
  r.next = (r.next + 1) % window_;
  if (r.count < window_) ++r.count;
}

std::optional<double> RssiMonitor::median(int peer) const {
  if (peer < 0 || static_cast<std::size_t>(peer) >= history_.size()) {
    return std::nullopt;
  }
  const Ring& r = history_[static_cast<std::size_t>(peer)];
  if (r.count == 0) return std::nullopt;
  scratch_.assign(r.buf.begin(),
                  r.buf.begin() + static_cast<std::ptrdiff_t>(r.count));
  const std::size_t mid = r.count / 2;
  std::nth_element(scratch_.begin(),
                   scratch_.begin() + static_cast<std::ptrdiff_t>(mid),
                   scratch_.end());
  return scratch_[mid];
}

std::size_t RssiMonitor::samples(int peer) const {
  if (peer < 0 || static_cast<std::size_t>(peer) >= history_.size()) return 0;
  return history_[static_cast<std::size_t>(peer)].count;
}

std::vector<int> RssiMonitor::peers() const {
  std::vector<int> out;
  for (std::size_t p = 0; p < history_.size(); ++p) {
    if (history_[p].count > 0) out.push_back(static_cast<int>(p));
  }
  return out;
}

}  // namespace g80211
