#include "src/detect/rssi_monitor.h"

#include <algorithm>
#include <vector>

namespace g80211 {

void RssiMonitor::add_sample(int peer, double rssi_dbm) {
  auto& h = history_[peer];
  h.push_back(rssi_dbm);
  if (h.size() > window_) h.pop_front();
}

std::optional<double> RssiMonitor::median(int peer) const {
  const auto it = history_.find(peer);
  if (it == history_.end() || it->second.empty()) return std::nullopt;
  std::vector<double> v(it->second.begin(), it->second.end());
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  return v[mid];
}

std::size_t RssiMonitor::samples(int peer) const {
  const auto it = history_.find(peer);
  return it == history_.end() ? 0 : it->second.size();
}

}  // namespace g80211
