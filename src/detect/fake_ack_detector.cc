#include "src/detect/fake_ack_detector.h"

#include <algorithm>
#include <cmath>

namespace g80211 {

FakeAckDetector::FakeAckDetector(Scheduler& sched, Node& sender, int dest_node,
                                 int flow_id, Config cfg)
    : sched_(&sched),
      sender_(&sender),
      dest_node_(dest_node),
      flow_id_(flow_id),
      cfg_(cfg),
      timer_(sched, [this] { emit_probe(); }) {
  sender.register_sink(flow_id, this);
}

void FakeAckDetector::start(Time at) {
  running_ = true;
  timer_.start_at(at);
}

void FakeAckDetector::stop() {
  running_ = false;
  timer_.cancel();
}

void FakeAckDetector::emit_probe() {
  if (!running_) return;
  auto p = make_packet();
  p->flow_id = flow_id_;
  p->uid = next_uid_++;
  p->seq = sent_;
  p->size_bytes = cfg_.probe_payload_bytes + 40;
  p->src_node = sender_->id();
  p->dst_node = dest_node_;
  p->created = sched_->now();
  p->is_probe = true;
  const std::int64_t seq = sent_++;
  // A probe only counts toward the loss estimate once its reply has had a
  // fair chance to come back.
  sched_->after(cfg_.reply_grace, [this, seq] {
    ++matured_;
    if (replied_.count(seq)) {
      ++matured_replied_;
      replied_.erase(seq);
    }
  });
  sender_->send_packet(std::move(p));
  timer_.start(cfg_.probe_interval);
}

void FakeAckDetector::receive(const PacketPtr& packet) {
  if (packet->is_probe && packet->probe_reply) {
    ++replies_;
    replied_.insert(packet->seq);
  }
}

double FakeAckDetector::application_loss() const {
  if (matured_ == 0) return 0.0;
  return 1.0 - static_cast<double>(matured_replied_) / static_cast<double>(matured_);
}

double FakeAckDetector::mac_loss() const {
  // The retry fraction among DATA attempts toward the destination is a
  // consistent estimator of the per-attempt loss probability.
  return sender_->mac().dest_counters(dest_node_).retry_fraction();
}

double FakeAckDetector::expected_app_loss() const {
  const int max_retries = sender_->mac().params().long_retry_limit;
  return std::pow(mac_loss(), max_retries + 1);
}

bool FakeAckDetector::detected() const {
  if (matured_ < 20) return false;  // not enough evidence yet
  return application_loss() > expected_app_loss() + cfg_.threshold;
}

}  // namespace g80211
