#include "src/detect/locator.h"

#include <cmath>
#include <utility>

namespace g80211 {

void GreedyLocator::attach(Mac& mac) {
  auto prev = std::move(mac.sniffer);
  mac.sniffer = [this, prev = std::move(prev)](const Frame& f, const RxInfo& info) {
    if (prev) prev(f, info);
    if (!info.corrupted && f.ta != kNoAddr &&
        (f.type == FrameType::kRts || f.type == FrameType::kData)) {
      monitor_.add_sample(f.ta, info.rssi_dbm);
      known_[f.ta] = true;
    }
  };
}

std::optional<int> GreedyLocator::locate(double rssi_dbm) const {
  std::optional<int> best;
  double best_dist = 0.0, second_dist = 0.0;
  bool have_second = false;
  for (const auto& [station, seen] : known_) {
    (void)seen;
    const auto med = monitor_.median(station);
    if (!med.has_value()) continue;
    const double dist = std::abs(rssi_dbm - *med);
    if (!best.has_value() || dist < best_dist) {
      if (best.has_value()) {
        second_dist = best_dist;
        have_second = true;
      }
      best = station;
      best_dist = dist;
    } else if (!have_second || dist < second_dist) {
      second_dist = dist;
      have_second = true;
    }
  }
  if (!best.has_value()) return std::nullopt;
  if (have_second && second_dist - best_dist < margin_db_) {
    return std::nullopt;  // ambiguous: two stations equally plausible
  }
  return best;
}

void GreedyLocator::accuse(double rssi_dbm) {
  const auto who = locate(rssi_dbm);
  if (who.has_value()) ++accusations_[*who];
}

std::optional<int> GreedyLocator::prime_suspect() const {
  std::optional<int> best;
  std::int64_t most = 0;
  for (const auto& [station, n] : accusations_) {
    if (n > most) {
      most = n;
      best = station;
    }
  }
  return best;
}

}  // namespace g80211
