#include "src/detect/nav_validator.h"

#include <algorithm>
#include <utility>

#include "src/mac/durations.h"
#include "src/sim/check.h"

namespace g80211 {

NavValidator::NavValidator(Clock clock, const WifiParams& params)
    : clock_(clock), params_(params) {
  max_rts_ = Durations::max_rts(params_);
  max_cts_ = Durations::max_cts(params_);
  data_nav_ = Durations::data(params_);
  cts_ctx_window_ = params_.sifs + params_.cts_tx_time() + 2 * params_.slot;
  ack_ctx_window_ = params_.sifs + params_.ack_tx_time() + 2 * params_.slot;
}

void NavValidator::observe(const Frame& frame, const RxInfo& info) {
  if (info.corrupted) return;
  if (frame.type == FrameType::kRts && frame.ta >= 0) {
    // Remember the exchange context. Bound the stored duration so an
    // inflated RTS cannot launder inflation into the expected CTS.
    if (static_cast<std::size_t>(frame.ta) >= rts_by_ta_.size()) {
      rts_by_ta_.resize(static_cast<std::size_t>(frame.ta) + 1);
    }
    const Time bounded = std::min(frame.duration, max_rts_);
    rts_by_ta_[static_cast<std::size_t>(frame.ta)] =
        RtsSeen{bounded, clock_.now()};
  }
  if (frame.type == FrameType::kData) {
    last_data_more_ = frame.more_frags;
    last_data_bytes_ = frame.air_bytes();
    last_data_end_ = info.end;
  }
}

Time NavValidator::expected_duration(const Frame& frame) const {
  switch (frame.type) {
    case FrameType::kRts:
      return std::min(frame.duration, max_rts_);
    case FrameType::kCts: {
      // The CTS's RA is the RTS transmitter; if we heard that RTS recently
      // we know the exact remaining exchange time.
      if (frame.ra >= 0 &&
          static_cast<std::size_t>(frame.ra) < rts_by_ta_.size()) {
        const RtsSeen& seen = rts_by_ta_[static_cast<std::size_t>(frame.ra)];
        if (seen.heard_at != kNever &&
            clock_.now() - seen.heard_at <= cts_ctx_window_) {
          return std::min(frame.duration,
                          Durations::cts_from_rts(params_, seen.duration));
        }
      }
      return std::min(frame.duration, max_cts_);
    }
    case FrameType::kData: {
      if (assume_fragmentation && frame.more_frags) {
        // A non-final fragment reserves through the next fragment's ACK;
        // fragments are threshold-sized, so the next one is no larger.
        const Time bound = 3 * params_.sifs + 2 * params_.ack_tx_time() +
                           params_.data_tx_time(frame.air_bytes());
        return std::min(frame.duration, bound);
      }
      // A (final or unfragmented) data frame's NAV only covers SIFS + ACK.
      return std::min(frame.duration, data_nav_);
    }
    case FrameType::kAck: {
      if (!assume_fragmentation) {
        // Without fragmentation the NAV in an ACK is always 0.
        return 0;
      }
      // Fragment-burst ACK: if we overheard the eliciting fragment we know
      // whether more are coming and how big they can be (fragments are
      // threshold-sized, so the next is no larger than the last).
      if (last_data_end_ != kNever &&
          clock_.now() - last_data_end_ <= ack_ctx_window_) {
        if (!last_data_more_) return 0;
        const Time bound = 2 * params_.sifs + params_.ack_tx_time() +
                           params_.data_tx_time(last_data_bytes_);
        return std::min(frame.duration, bound);
      }
      // Out of range of the data: bound by the largest legal fragment.
      return std::min(frame.duration, max_cts_);
    }
  }
  return frame.duration;
}

Time NavValidator::validate(const Frame& frame, const RxInfo& /*info*/) {
  ++validated_;
  const Time expected = expected_duration(frame);
  // The validator may only ever *clamp* the advertised Duration; handing
  // the MAC a value above the frame's own field (or a negative one) would
  // itself corrupt the NAV it is defending.
  G80211_DCHECK(expected >= 0 && expected <= frame.duration);
  if (frame.duration > expected + tolerance) {
    ++detections_;
    ++detections_by_node_[frame.true_tx];  // ground-truth attribution
  }
  return expected;
}

void NavValidator::attach(Mac& mac) {
  auto prev_sniffer = std::move(mac.sniffer);
  mac.sniffer = [this, prev = std::move(prev_sniffer)](const Frame& f,
                                                       const RxInfo& info) {
    if (prev) prev(f, info);
    observe(f, info);
  };
  mac.nav_filter = [this](const Frame& f, const RxInfo& info) {
    return validate(f, info);
  };
}

}  // namespace g80211
