#include "src/detect/nav_validator.h"

#include <algorithm>
#include <utility>

#include "src/mac/durations.h"
#include "src/sim/check.h"

namespace g80211 {

void NavValidator::observe(const Frame& frame, const RxInfo& info) {
  if (info.corrupted) return;
  if (frame.type == FrameType::kRts && frame.ta != kNoAddr) {
    // Remember the exchange context. Bound the stored duration so an
    // inflated RTS cannot launder inflation into the expected CTS.
    const Time bounded = std::min(frame.duration, Durations::max_rts(params_));
    rts_by_ta_[frame.ta] = RtsSeen{bounded, sched_->now()};
  }
  if (frame.type == FrameType::kData) {
    last_data_more_ = frame.more_frags;
    last_data_bytes_ = frame.air_bytes();
    last_data_end_ = info.end;
  }
}

Time NavValidator::expected_duration(const Frame& frame) const {
  switch (frame.type) {
    case FrameType::kRts:
      return std::min(frame.duration, Durations::max_rts(params_));
    case FrameType::kCts: {
      // The CTS's RA is the RTS transmitter; if we heard that RTS recently
      // we know the exact remaining exchange time.
      const auto it = rts_by_ta_.find(frame.ra);
      const Time window = params_.sifs + params_.cts_tx_time() + 2 * params_.slot;
      if (it != rts_by_ta_.end() && sched_->now() - it->second.heard_at <= window) {
        return std::min(frame.duration,
                        Durations::cts_from_rts(params_, it->second.duration));
      }
      return std::min(frame.duration, Durations::max_cts(params_));
    }
    case FrameType::kData: {
      if (assume_fragmentation && frame.more_frags) {
        // A non-final fragment reserves through the next fragment's ACK;
        // fragments are threshold-sized, so the next one is no larger.
        const Time bound = 3 * params_.sifs + 2 * params_.ack_tx_time() +
                           params_.data_tx_time(frame.air_bytes());
        return std::min(frame.duration, bound);
      }
      // A (final or unfragmented) data frame's NAV only covers SIFS + ACK.
      return std::min(frame.duration, Durations::data(params_));
    }
    case FrameType::kAck: {
      if (!assume_fragmentation) {
        // Without fragmentation the NAV in an ACK is always 0.
        return 0;
      }
      // Fragment-burst ACK: if we overheard the eliciting fragment we know
      // whether more are coming and how big they can be (fragments are
      // threshold-sized, so the next is no larger than the last).
      const Time window = params_.sifs + params_.ack_tx_time() + 2 * params_.slot;
      if (last_data_end_ != kNever && sched_->now() - last_data_end_ <= window) {
        if (!last_data_more_) return 0;
        const Time bound = 2 * params_.sifs + params_.ack_tx_time() +
                           params_.data_tx_time(last_data_bytes_);
        return std::min(frame.duration, bound);
      }
      // Out of range of the data: bound by the largest legal fragment.
      return std::min(frame.duration, Durations::max_cts(params_));
    }
  }
  return frame.duration;
}

Time NavValidator::validate(const Frame& frame, const RxInfo& /*info*/) {
  ++validated_;
  const Time expected = expected_duration(frame);
  // The validator may only ever *clamp* the advertised Duration; handing
  // the MAC a value above the frame's own field (or a negative one) would
  // itself corrupt the NAV it is defending.
  G80211_DCHECK(expected >= 0 && expected <= frame.duration);
  if (frame.duration > expected + tolerance) {
    ++detections_;
    ++detections_by_node_[frame.true_tx];  // ground-truth attribution
  }
  return expected;
}

void NavValidator::attach(Mac& mac) {
  auto prev_sniffer = std::move(mac.sniffer);
  mac.sniffer = [this, prev = std::move(prev_sniffer)](const Frame& f,
                                                       const RxInfo& info) {
    if (prev) prev(f, info);
    observe(f, info);
  };
  mac.nav_filter = [this](const Frame& f, const RxInfo& info) {
    return validate(f, info);
  };
}

}  // namespace g80211
