// GRC spoofed-ACK detection and recovery (paper Section VII-B).
//
// Attached at a *sender*: learns the RSSI profile of each peer from frames
// carrying that peer's transmitter address, and flags a received MAC ACK
// as spoofed when |RSSI - median(peer)| > threshold (the paper finds 1 dB
// gives both low false positives and low false negatives, Fig 22).
// Recovery: a flagged ACK is ignored, so the MAC retransmits as it should
// have.
//
// For evaluation the detector also keeps a ground-truth confusion matrix
// using the frame's bookkeeping-only true transmitter; detection decisions
// themselves never use it.
#pragma once

#include <cstdint>

#include "src/detect/rssi_monitor.h"
#include "src/mac/mac.h"

namespace g80211 {

class SpoofDetector {
 public:
  explicit SpoofDetector(double threshold_db = 1.0) : threshold_db_(threshold_db) {}

  // Install on a sender MAC: chains onto the sniffer (profile learning) and
  // takes over the ack_filter (decision + recovery).
  void attach(Mac& mac);

  // When false, the detector only classifies and keeps statistics; flagged
  // ACKs are still accepted (no forced retransmission). Used to evaluate
  // detectors side by side without them masking each other's evidence.
  bool recovery_enabled = true;

  // Decision primitive (also used standalone in tests/benches): should this
  // ACK, expected from `peer` with measured `rssi_dbm`, be ignored?
  bool should_ignore(int peer, double rssi_dbm) const;

  RssiMonitor& monitor() { return monitor_; }
  const RssiMonitor& monitor() const { return monitor_; }
  double threshold_db() const { return threshold_db_; }

  // Ground-truth evaluation counters.
  std::int64_t true_positives() const { return tp_; }
  std::int64_t false_positives() const { return fp_; }
  std::int64_t true_negatives() const { return tn_; }
  std::int64_t false_negatives() const { return fn_; }
  std::int64_t flagged() const { return tp_ + fp_; }

 private:
  double threshold_db_;
  RssiMonitor monitor_;
  std::int64_t tp_ = 0, fp_ = 0, tn_ = 0, fn_ = 0;
};

}  // namespace g80211
