// GRC fake-ACK detection (paper Section VII-C).
//
// A sender compares the MAC-layer loss it observes toward a receiver with
// the application-layer loss measured by active probing (ping). With
// independent losses and an honest receiver,
//     applicationLoss ~= MACLoss^(maxRetries+1),
// because a packet only fails end-to-end if every MAC attempt fails. A
// receiver that fakes ACKs drives the observed MAC loss toward zero while
// probes keep failing (a corrupted probe cannot be echoed), so
//     applicationLoss > MACLoss^(maxRetries+1) + threshold
// exposes the misbehavior. The threshold absorbs wireline loss when the
// path leaves the WLAN.
#pragma once

#include <cstdint>
#include <set>

#include "src/net/node.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class FakeAckDetector : public PacketSink {
 public:
  struct Config {
    Time probe_interval = milliseconds(20);
    int probe_payload_bytes = 64;
    double threshold = 0.05;       // tolerance for wireline loss
    Time reply_grace = seconds(1); // probes younger than this aren't counted lost
  };

  // `flow_id` must be unique to this detector's probe stream.
  FakeAckDetector(Scheduler& sched, Node& sender, int dest_node, int flow_id,
                  Config cfg);
  FakeAckDetector(Scheduler& sched, Node& sender, int dest_node, int flow_id)
      : FakeAckDetector(sched, sender, dest_node, flow_id, Config{}) {}

  void start(Time at);
  void stop();

  // PacketSink: probe replies.
  void receive(const PacketPtr& packet) override;

  double application_loss() const;
  double mac_loss() const;  // per-attempt loss estimate toward dest
  double expected_app_loss() const;  // MACLoss^(maxRetries+1)
  bool detected() const;

  std::int64_t probes_sent() const { return sent_; }
  std::int64_t replies() const { return replies_; }

 private:
  void emit_probe();

  Scheduler* sched_;
  Node* sender_;
  int dest_node_;
  int flow_id_;
  Config cfg_;
  Timer timer_;
  bool running_ = false;
  std::int64_t sent_ = 0;
  std::int64_t matured_ = 0;       // probes past the reply grace period
  std::int64_t matured_replied_ = 0;
  std::int64_t replies_ = 0;
  std::set<std::int64_t> replied_;  // probe seqs answered so far
  std::uint64_t next_uid_ = 1;
};

}  // namespace g80211
