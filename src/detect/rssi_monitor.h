// Per-peer RSSI history with sliding-window median — the physical-layer
// profile the GRC spoofed-ACK detector compares incoming ACKs against
// (paper Section VII-B, Fig 21).
//
// Samples come only from frames that carry an authenticated transmitter
// address (RTS/DATA — e.g. the victim's TCP ACK data frames); CTS/ACK
// frames are never used to learn a profile, since they are the very frames
// an attacker can forge.
//
// Storage is a dense node-id-indexed table of fixed-capacity ring buffers:
// recording a sample is O(1) and allocation-free once a peer's ring exists
// (one allocation per peer, at first sight), which keeps the monitor on
// the streaming engine's steady-state no-heap path.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace g80211 {

class RssiMonitor {
 public:
  explicit RssiMonitor(std::size_t window = 64) : window_(window) {}

  void add_sample(int peer, double rssi_dbm);
  std::optional<double> median(int peer) const;
  std::size_t samples(int peer) const;
  // Every peer with at least one recorded sample, ascending id.
  std::vector<int> peers() const;

 private:
  // Last `window_` samples for one peer, oldest overwritten first.
  struct Ring {
    std::vector<double> buf;  // capacity window_, sized lazily
    std::size_t next = 0;     // write position
    std::size_t count = 0;    // samples currently held (<= window_)
  };

  std::size_t window_;
  std::vector<Ring> history_;  // node-id-indexed
  mutable std::vector<double> scratch_;  // median workspace, reused
};

}  // namespace g80211
