// Per-peer RSSI history with sliding-window median — the physical-layer
// profile the GRC spoofed-ACK detector compares incoming ACKs against
// (paper Section VII-B, Fig 21).
//
// Samples come only from frames that carry an authenticated transmitter
// address (RTS/DATA — e.g. the victim's TCP ACK data frames); CTS/ACK
// frames are never used to learn a profile, since they are the very frames
// an attacker can forge.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

namespace g80211 {

class RssiMonitor {
 public:
  explicit RssiMonitor(std::size_t window = 64) : window_(window) {}

  void add_sample(int peer, double rssi_dbm);
  std::optional<double> median(int peer) const;
  std::size_t samples(int peer) const;

 private:
  std::size_t window_;
  std::map<int, std::deque<double>> history_;
};

}  // namespace g80211
