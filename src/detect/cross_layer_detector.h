// GRC cross-layer spoofed-ACK detection for mobile clients
// (paper Section VII-B, last paragraph).
//
// When a client's RSSI varies too much for the physical-layer profile, the
// sender can instead correlate layers: it records which TCP segments were
// acknowledged at the MAC, and counts TCP-level retransmissions of
// segments the MAC claims were delivered. Assuming wireline loss is much
// smaller than wireless loss, such events indicate a spoofed MAC ACK.
#pragma once

#include <cstdint>
#include <set>

#include "src/mac/mac.h"
#include "src/transport/tcp_sender.h"

namespace g80211 {

class CrossLayerDetector {
 public:
  // Flag the flow as under attack after this many suspicious events.
  explicit CrossLayerDetector(std::int64_t detection_threshold = 5)
      : threshold_(detection_threshold) {}

  // Wire to the sender MAC and the TCP sender of one flow.
  void attach(Mac& mac, TcpSender& tcp);

  std::int64_t suspicious_retransmissions() const { return suspicious_; }
  std::int64_t mac_acked_segments() const { return static_cast<std::int64_t>(mac_acked_.size()); }
  bool detected() const { return suspicious_ >= threshold_; }

 private:
  std::int64_t threshold_;
  int flow_id_ = -1;
  std::set<std::int64_t> mac_acked_;  // TCP segments the MAC saw ACKed
  std::int64_t suspicious_ = 0;
};

}  // namespace g80211
