// GRC cross-layer spoofed-ACK detection for mobile clients
// (paper Section VII-B, last paragraph).
//
// When a client's RSSI varies too much for the physical-layer profile, the
// sender can instead correlate layers: it records which TCP segments were
// acknowledged at the MAC, and counts TCP-level retransmissions of
// segments the MAC claims were delivered. Assuming wireline loss is much
// smaller than wireless loss, such events indicate a spoofed MAC ACK.
//
// The detection core is two events — "the MAC acknowledged TCP segment s"
// and "TCP retransmitted segment s" — exposed directly as on_mac_acked /
// on_tcp_retransmit, so the offline replay/monitor front-end can re-issue
// them from a capture journal. attach() wires the same two calls to the
// live MAC completion tap and the TCP sender's retransmit hook.
#pragma once

#include <cstdint>
#include <set>

#include "src/mac/mac.h"
#include "src/transport/tcp_sender.h"

namespace g80211 {

class CrossLayerDetector {
 public:
  // Flag the flow as under attack after this many suspicious events.
  explicit CrossLayerDetector(std::int64_t detection_threshold = 5)
      : threshold_(detection_threshold) {}

  // Wire to the sender MAC and the TCP sender of one flow.
  void attach(Mac& mac, TcpSender& tcp);

  // Batch entry points — the calls attach() wires live. The caller is
  // responsible for the flow filter (attach() only forwards this flow's
  // non-TCP-ACK segments to on_mac_acked).
  void on_mac_acked(std::int64_t tcp_seq) { mac_acked_.insert(tcp_seq); }
  void on_tcp_retransmit(std::int64_t tcp_seq) {
    if (mac_acked_.count(tcp_seq)) ++suspicious_;
  }

  std::int64_t suspicious_retransmissions() const { return suspicious_; }
  std::int64_t mac_acked_segments() const { return static_cast<std::int64_t>(mac_acked_.size()); }
  bool detected() const { return suspicious_ >= threshold_; }

 private:
  std::int64_t threshold_;
  int flow_id_ = -1;
  std::set<std::int64_t> mac_acked_;  // TCP segments the MAC saw ACKed
  std::int64_t suspicious_ = 0;
};

}  // namespace g80211
