// Greedy-receiver localisation (paper Section VII-A: "We can further
// locate the greedy receiver using received signal strength measurement
// from it").
//
// Inflated CTS/ACK frames carry no transmitter address, so detection alone
// cannot name the culprit. The locator keeps per-station RSSI profiles
// (learned from frames that do carry a TA) and attributes an offending
// frame to the station whose profile median is nearest its measured RSSI —
// provided the match is unambiguous (the runner-up is at least
// `margin_db` farther).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "src/detect/rssi_monitor.h"
#include "src/mac/mac.h"

namespace g80211 {

class GreedyLocator {
 public:
  explicit GreedyLocator(double margin_db = 1.0) : margin_db_(margin_db) {}

  // Install on an observer MAC: learns RSSI profiles from addressed frames.
  void attach(Mac& mac);

  // Best-effort attribution of a frame with measured RSSI `rssi_dbm`;
  // nullopt when no profile matches unambiguously.
  std::optional<int> locate(double rssi_dbm) const;

  // Record an offending frame (called by the experiment harness whenever a
  // NAV validator fires); tallies per-station accusations.
  void accuse(double rssi_dbm);
  const std::map<int, std::int64_t>& accusations() const { return accusations_; }
  // The station accused most often (nullopt if none).
  std::optional<int> prime_suspect() const;

  RssiMonitor& monitor() { return monitor_; }

 private:
  double margin_db_;
  RssiMonitor monitor_;
  std::map<int, std::int64_t> accusations_;
  std::map<int, bool> known_;  // stations with profiles
};

}  // namespace g80211
