#include "src/detect/backoff_monitor.h"

#include <utility>

namespace g80211 {

void BackoffMonitor::attach(Mac& mac) {
  auto prev_edge = std::move(mac.channel_observer);
  mac.channel_observer = [this, prev = std::move(prev_edge)](bool busy) {
    if (prev) prev(busy);
    on_edge(busy);
  };
  auto prev_sniffer = std::move(mac.sniffer);
  mac.sniffer = [this, prev = std::move(prev_sniffer)](const Frame& f,
                                                       const RxInfo& info) {
    if (prev) prev(f, info);
    on_frame(f, info);
  };
}

void BackoffMonitor::on_edge(bool busy) {
  if (!busy) {
    idle_since_ = sched_->now();
  }
}

void BackoffMonitor::on_frame(const Frame& frame, const RxInfo& info) {
  if (info.corrupted || frame.ta == kNoAddr) return;
  if (frame.type != FrameType::kRts && frame.type != FrameType::kData) return;
  if (idle_since_ == kNever || info.start < idle_since_) return;

  // Idle gap preceding this transmission. SIFS responses (gap < DIFS) and
  // stale bookkeeping are ignored.
  const Time gap = info.start - idle_since_ - params_.difs;
  if (gap < 0) return;
  const double slots = static_cast<double>(gap) / static_cast<double>(params_.slot);
  if (slots > static_cast<double>(params_.cw_max)) return;

  auto& p = profiles_[frame.ta];
  if (p.ewma_slots < 0) {
    p.ewma_slots = slots;
  } else {
    p.ewma_slots += cfg_.ewma_alpha * (slots - p.ewma_slots);
  }
  ++p.n;
}

double BackoffMonitor::observed_backoff(int station) const {
  const auto it = profiles_.find(station);
  return it == profiles_.end() ? -1.0 : it->second.ewma_slots;
}

std::int64_t BackoffMonitor::samples(int station) const {
  const auto it = profiles_.find(station);
  return it == profiles_.end() ? 0 : it->second.n;
}

double BackoffMonitor::tx_share(int station) const {
  std::int64_t total = 0;
  for (const auto& [s, p] : profiles_) {
    (void)s;
    total += p.n;
  }
  if (total == 0) return 0.0;
  return static_cast<double>(samples(station)) / static_cast<double>(total);
}

bool BackoffMonitor::flagged(int station) const {
  const auto it = profiles_.find(station);
  if (it == profiles_.end() || it->second.n < cfg_.min_samples) return false;
  const double nominal = static_cast<double>(params_.cw_min) / 2.0;
  if (it->second.ewma_slots >= cfg_.threshold_fraction * nominal) return false;
  const double fair = 1.0 / static_cast<double>(profiles_.size());
  return tx_share(station) > cfg_.share_factor * fair;
}

std::vector<int> BackoffMonitor::cheaters() const {
  std::vector<int> out;
  for (const auto& [station, p] : profiles_) {
    (void)p;
    if (flagged(station)) out.push_back(station);
  }
  return out;
}

}  // namespace g80211
