#include "src/detect/backoff_monitor.h"

#include <utility>

namespace g80211 {

void BackoffMonitor::attach(Mac& mac) {
  auto prev_edge = std::move(mac.channel_observer);
  mac.channel_observer = [this, prev = std::move(prev_edge)](bool busy) {
    if (prev) prev(busy);
    on_edge(busy);
  };
  auto prev_sniffer = std::move(mac.sniffer);
  mac.sniffer = [this, prev = std::move(prev_sniffer)](const Frame& f,
                                                       const RxInfo& info) {
    if (prev) prev(f, info);
    on_frame(f, info);
  };
}

void BackoffMonitor::on_edge(bool busy) {
  if (!busy) {
    idle_since_ = clock_.now();
  }
}

void BackoffMonitor::on_frame(const Frame& frame, const RxInfo& info) {
  if (info.corrupted || frame.ta < 0) return;
  if (frame.type != FrameType::kRts && frame.type != FrameType::kData) return;
  if (idle_since_ == kNever || info.start < idle_since_) return;

  // Idle gap preceding this transmission. SIFS responses (gap < DIFS) and
  // stale bookkeeping are ignored.
  const Time gap = info.start - idle_since_ - params_.difs;
  if (gap < 0) return;
  const double slots = static_cast<double>(gap) / static_cast<double>(params_.slot);
  if (slots > static_cast<double>(params_.cw_max)) return;

  if (static_cast<std::size_t>(frame.ta) >= profiles_.size()) {
    profiles_.resize(static_cast<std::size_t>(frame.ta) + 1);
  }
  auto& p = profiles_[static_cast<std::size_t>(frame.ta)];
  if (p.ewma_slots < 0) {
    p.ewma_slots = slots;
  } else {
    p.ewma_slots += cfg_.ewma_alpha * (slots - p.ewma_slots);
  }
  if (p.n == 0) ++num_stations_;
  ++p.n;
  ++total_samples_;
}

const BackoffMonitor::Profile* BackoffMonitor::profile(int station) const {
  if (station < 0 || static_cast<std::size_t>(station) >= profiles_.size()) {
    return nullptr;
  }
  const Profile& p = profiles_[static_cast<std::size_t>(station)];
  return p.n > 0 ? &p : nullptr;
}

double BackoffMonitor::observed_backoff(int station) const {
  const Profile* p = profile(station);
  return p == nullptr ? -1.0 : p->ewma_slots;
}

std::int64_t BackoffMonitor::samples(int station) const {
  const Profile* p = profile(station);
  return p == nullptr ? 0 : p->n;
}

double BackoffMonitor::tx_share(int station) const {
  if (total_samples_ == 0) return 0.0;
  return static_cast<double>(samples(station)) /
         static_cast<double>(total_samples_);
}

bool BackoffMonitor::flagged(int station) const {
  const Profile* p = profile(station);
  if (p == nullptr || p->n < cfg_.min_samples) return false;
  const double nominal = static_cast<double>(params_.cw_min) / 2.0;
  if (p->ewma_slots >= cfg_.threshold_fraction * nominal) return false;
  const double fair = 1.0 / static_cast<double>(num_stations_);
  return tx_share(station) > cfg_.share_factor * fair;
}

std::vector<int> BackoffMonitor::cheaters() const {
  std::vector<int> out;
  for (std::size_t s = 0; s < profiles_.size(); ++s) {
    if (profiles_[s].n > 0 && flagged(static_cast<int>(s))) {
      out.push_back(static_cast<int>(s));
    }
  }
  return out;
}

std::vector<int> BackoffMonitor::stations() const {
  std::vector<int> out;
  for (std::size_t s = 0; s < profiles_.size(); ++s) {
    if (profiles_[s].n > 0) out.push_back(static_cast<int>(s));
  }
  return out;
}

}  // namespace g80211
