// GRC inflated-NAV detection and mitigation (paper Section VII-A).
//
// Two observer classes, both handled here:
//  (1) Nodes that overheard the eliciting frame know the correct response
//      NAV exactly: a CTS answering an RTS must carry
//      RTS.Duration - SIFS - T_CTS; a DATA frame's NAV only covers its
//      ACK (SIFS + T_ACK); an ACK's NAV is 0 without fragmentation.
//  (2) Nodes outside the sender's range bound the NAV by the largest legal
//      exchange, assuming the 1500-byte Internet MTU.
// Recovery: the validator returns the expected/bounded duration, which the
// MAC uses for its NAV instead of the inflated value.
//
// The validator reads time through a Clock (src/sim/clock.h): live it
// follows the simulation Scheduler; offline the replay/monitor front-end
// binds it to a ManualClock advanced to each journalled event. Per-station
// exchange context lives in a dense node-id-indexed table, so observing a
// frame is O(1) with no allocation once every transmitter has been seen.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/mac/mac.h"
#include "src/sim/clock.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class NavValidator {
 public:
  NavValidator(Clock clock, const WifiParams& params);
  NavValidator(Scheduler& sched, const WifiParams& params)
      : NavValidator(Clock(sched), params) {}

  // Install on any station: chains onto the sniffer (to learn exchange
  // context from overheard RTS frames) and takes over the nav_filter.
  // At most one validator per MAC (the nav_filter is owned, not chained).
  void attach(Mac& mac);

  // Core rule: the Duration this observer should actually honour.
  Time expected_duration(const Frame& frame) const;

  // Tolerance before a frame is counted as a detection (absorbs rounding).
  Time tolerance = microseconds(2);

  // The paper assumes no fragmentation, so "NAV in ACK should always be
  // 0". When the network uses fragmentation, a non-final fragment's ACK
  // legitimately reserves through the next fragment; enabling this bounds
  // such ACKs instead of zeroing them (exactly: when the eliciting
  // fragment was overheard; by the MTU exchange otherwise).
  bool assume_fragmentation = false;

  std::int64_t detections() const { return detections_; }
  // Ground-truth attribution (true transmitter -> count), evaluation only.
  const std::map<int, std::int64_t>& detections_by_node() const {
    return detections_by_node_;
  }
  std::int64_t frames_validated() const { return validated_; }

  // Batch entry points (offline capture pipeline, src/capture/replay.h,
  // and the streaming monitor): exactly the two calls attach() wires live
  // — observe() is the sniffer chain (exchange-context learning, every
  // overheard frame), validate() is the nav_filter (counts a detection and
  // returns the corrected Duration). The clock bound at construction must
  // be advanced to each frame's reception time before calling, so the
  // RTS/fragment context windows see the same time as a live run.
  void observe(const Frame& frame, const RxInfo& info);
  Time validate(const Frame& frame, const RxInfo& info);

 private:
  struct RtsSeen {
    Time duration = 0;      // already bounded by the max-MTU RTS rule
    Time heard_at = kNever; // kNever: no RTS from this station yet
  };

  Clock clock_;
  WifiParams params_;
  // Bounds and context windows are pure functions of the params; computed
  // once so the per-frame path does no duration arithmetic.
  Time max_rts_ = 0;
  Time max_cts_ = 0;
  Time data_nav_ = 0;         // SIFS + T_ACK
  Time cts_ctx_window_ = 0;   // how long an overheard RTS stays relevant
  Time ack_ctx_window_ = 0;   // how long an overheard DATA stays relevant
  std::vector<RtsSeen> rts_by_ta_;  // node-id-indexed exchange context
  // Most recent overheard DATA frame (fragment-burst context for ACKs).
  bool last_data_more_ = false;
  int last_data_bytes_ = 0;
  Time last_data_end_ = kNever;
  std::int64_t detections_ = 0;
  std::int64_t validated_ = 0;
  std::map<int, std::int64_t> detections_by_node_;
};

}  // namespace g80211
