#include "src/detect/spoof_detector.h"

#include <cmath>
#include <utility>

namespace g80211 {

bool SpoofDetector::should_ignore(int peer, double rssi_dbm) const {
  const auto med = monitor_.median(peer);
  if (!med.has_value()) return false;  // no profile yet: accept
  return std::abs(rssi_dbm - *med) > threshold_db_;
}

void SpoofDetector::attach(Mac& mac) {
  auto prev_sniffer = std::move(mac.sniffer);
  mac.sniffer = [this, prev = std::move(prev_sniffer)](const Frame& f,
                                                       const RxInfo& info) {
    if (prev) prev(f, info);
    // Learn RSSI profiles only from frames with an authenticated TA.
    if (!info.corrupted && f.ta != kNoAddr &&
        (f.type == FrameType::kRts || f.type == FrameType::kData)) {
      monitor_.add_sample(f.ta, info.rssi_dbm);
    }
  };
  mac.ack_filter = [this](const Frame& ack, const RxInfo& info, int peer) {
    const bool ignore = should_ignore(peer, info.rssi_dbm);
    const bool actually_spoofed = ack.true_tx != peer;  // ground truth only
    if (ignore) {
      (actually_spoofed ? tp_ : fp_)++;
    } else {
      (actually_spoofed ? fn_ : tn_)++;
    }
    return recovery_enabled && ignore;
  };
}

}  // namespace g80211
