// Greedy Receiver Countermeasure (GRC) — convenience bundle that attaches
// the paper's detection/mitigation pipeline (Fig 20) to a station:
//   * NAV validation (Section VII-A) on every station that overhears,
//   * RSSI-based spoofed-ACK detection with recovery (Section VII-B) on
//     senders.
// The cross-layer and fake-ACK detectors have their own wiring needs
// (a TCP flow, a probe stream) and are attached separately.
#pragma once

#include <memory>
#include <vector>

#include "src/detect/nav_validator.h"
#include "src/detect/spoof_detector.h"
#include "src/mac/mac.h"
#include "src/sim/scheduler.h"

namespace g80211 {

struct GrcConfig {
  bool nav_validation = true;
  bool spoof_detection = true;
  double rssi_threshold_db = 1.0;
};

class Grc {
 public:
  Grc(Scheduler& sched, const WifiParams& params, GrcConfig cfg = {})
      : sched_(&sched), params_(params), cfg_(cfg) {}

  // Attach the configured detectors to a station's MAC. Can be called for
  // any number of stations ("the more nodes implementing the detection
  // scheme, the higher likelihood of detection").
  void protect(Mac& mac) {
    if (cfg_.nav_validation) {
      nav_validators_.push_back(std::make_unique<NavValidator>(*sched_, params_));
      nav_validators_.back()->attach(mac);
    }
    if (cfg_.spoof_detection) {
      spoof_detectors_.push_back(
          std::make_unique<SpoofDetector>(cfg_.rssi_threshold_db));
      spoof_detectors_.back()->attach(mac);
    }
  }

  std::int64_t nav_detections() const {
    std::int64_t n = 0;
    for (const auto& v : nav_validators_) n += v->detections();
    return n;
  }
  std::int64_t spoof_detections() const {
    std::int64_t n = 0;
    for (const auto& d : spoof_detectors_) n += d->flagged();
    return n;
  }

  const std::vector<std::unique_ptr<NavValidator>>& nav_validators() const {
    return nav_validators_;
  }
  const std::vector<std::unique_ptr<SpoofDetector>>& spoof_detectors() const {
    return spoof_detectors_;
  }

 private:
  Scheduler* sched_;
  WifiParams params_;
  GrcConfig cfg_;
  std::vector<std::unique_ptr<NavValidator>> nav_validators_;
  std::vector<std::unique_ptr<SpoofDetector>> spoof_detectors_;
};

}  // namespace g80211
