#include "src/detect/cross_layer_detector.h"

#include <utility>

namespace g80211 {

void CrossLayerDetector::attach(Mac& mac, TcpSender& tcp) {
  flow_id_ = tcp.flow_id();
  auto prev_done = std::move(mac.tx_done_cb);
  mac.tx_done_cb = [this, prev = std::move(prev_done)](const PacketPtr& p,
                                                       bool acked) {
    if (prev) prev(p, acked);
    if (acked && p && p->flow_id == flow_id_ && !p->tcp.is_ack) {
      on_mac_acked(p->tcp.seq);
    }
  };
  tcp.on_retransmit = [this](std::int64_t seq) { on_tcp_retransmit(seq); };
}

}  // namespace g80211
