// DOMINO-style greedy-*sender* detection (Raya, Hubaux & Aad, MobiSys'04 —
// the sender-side counterpart the paper positions itself against, included
// here as the baseline detector).
//
// An observer (typically the AP) measures the "actual backoff" of each
// contending station: the idle time between the medium going idle and that
// station's next transmission start, minus DIFS, in slots. A station is
// flagged as a backoff cheater when BOTH hold:
//   * its smoothed actual backoff falls below `threshold_fraction` of the
//     nominal expectation (CWmin/2), and
//   * it claims more than `share_factor / num_stations` of the observed
//     transmissions.
// The share condition handles the freeze/resume sampling bias DOMINO's
// authors also had to engineer around: a station starved by a cheater only
// gets to transmit when its *residual* counter happens to be tiny, so its
// per-access gaps look just as small as the cheater's — but its share of
// the channel is tiny while the cheater's is dominant.
//
// The observer only attributes frames that carry a transmitter address
// (RTS/DATA), and only counts gaps that plausibly contain a full
// deference (ignoring SIFS responses).
//
// Like NavValidator, the monitor reads time through a Clock and exposes
// its two event handlers (on_edge for busy/idle transitions, on_frame for
// attributable transmissions) publicly, so the offline replay/monitor
// front-end can re-issue exactly the calls the live hooks make. Per-station
// profiles live in a dense node-id-indexed table with the attributed-
// transmission total maintained incrementally: the per-frame path is O(1)
// and allocation-free once every station has been seen.
#pragma once

#include <cstdint>
#include <vector>

#include "src/mac/mac.h"
#include "src/sim/clock.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class BackoffMonitor {
 public:
  struct Config {
    double threshold_fraction = 0.5;  // flag below this fraction of CWmin/2
    int min_samples = 20;             // per station, before judging
    double ewma_alpha = 0.05;
    double share_factor = 1.3;        // x the fair share of transmissions
  };

  BackoffMonitor(Clock clock, const WifiParams& params, Config cfg)
      : clock_(clock), params_(params), cfg_(cfg) {}
  BackoffMonitor(Clock clock, const WifiParams& params)
      : BackoffMonitor(clock, params, Config{}) {}
  BackoffMonitor(Scheduler& sched, const WifiParams& params, Config cfg)
      : BackoffMonitor(Clock(sched), params, cfg) {}
  BackoffMonitor(Scheduler& sched, const WifiParams& params)
      : BackoffMonitor(Clock(sched), params, Config{}) {}

  // Install on the observer's MAC (chains sniffer and channel_observer).
  void attach(Mac& mac);

  // Batch entry points — the calls attach() wires live. on_edge must be
  // invoked with the bound clock advanced to the edge's time (only the
  // busy -> idle transition matters; busy edges are accepted and ignored).
  void on_edge(bool busy);
  void on_frame(const Frame& frame, const RxInfo& info);

  // Smoothed observed backoff (slots) for a station; negative if unknown.
  double observed_backoff(int station) const;
  std::int64_t samples(int station) const;
  // Fraction of all attributed transmissions that came from this station.
  double tx_share(int station) const;
  bool flagged(int station) const;
  // Every station currently flagged.
  std::vector<int> cheaters() const;
  // Every station with at least one attributed transmission, ascending id.
  std::vector<int> stations() const;

 private:
  struct Profile {
    double ewma_slots = -1.0;
    std::int64_t n = 0;
  };

  const Profile* profile(int station) const;

  Clock clock_;
  WifiParams params_;
  Config cfg_;
  Time idle_since_ = kNever;  // when the medium last went idle
  std::vector<Profile> profiles_;   // node-id-indexed
  std::int64_t total_samples_ = 0;  // sum of profiles_[i].n
  std::int64_t num_stations_ = 0;   // profiles with n > 0
};

}  // namespace g80211
