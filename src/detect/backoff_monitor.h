// DOMINO-style greedy-*sender* detection (Raya, Hubaux & Aad, MobiSys'04 —
// the sender-side counterpart the paper positions itself against, included
// here as the baseline detector).
//
// An observer (typically the AP) measures the "actual backoff" of each
// contending station: the idle time between the medium going idle and that
// station's next transmission start, minus DIFS, in slots. A station is
// flagged as a backoff cheater when BOTH hold:
//   * its smoothed actual backoff falls below `threshold_fraction` of the
//     nominal expectation (CWmin/2), and
//   * it claims more than `share_factor / num_stations` of the observed
//     transmissions.
// The share condition handles the freeze/resume sampling bias DOMINO's
// authors also had to engineer around: a station starved by a cheater only
// gets to transmit when its *residual* counter happens to be tiny, so its
// per-access gaps look just as small as the cheater's — but its share of
// the channel is tiny while the cheater's is dominant.
//
// The observer only attributes frames that carry a transmitter address
// (RTS/DATA), and only counts gaps that plausibly contain a full
// deference (ignoring SIFS responses).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "src/mac/mac.h"
#include "src/sim/scheduler.h"

namespace g80211 {

class BackoffMonitor {
 public:
  struct Config {
    double threshold_fraction = 0.5;  // flag below this fraction of CWmin/2
    int min_samples = 20;             // per station, before judging
    double ewma_alpha = 0.05;
    double share_factor = 1.3;        // x the fair share of transmissions
  };

  BackoffMonitor(Scheduler& sched, const WifiParams& params, Config cfg)
      : sched_(&sched), params_(params), cfg_(cfg) {}
  BackoffMonitor(Scheduler& sched, const WifiParams& params)
      : BackoffMonitor(sched, params, Config{}) {}

  // Install on the observer's MAC (chains sniffer and channel_observer).
  void attach(Mac& mac);

  // Smoothed observed backoff (slots) for a station; negative if unknown.
  double observed_backoff(int station) const;
  std::int64_t samples(int station) const;
  // Fraction of all attributed transmissions that came from this station.
  double tx_share(int station) const;
  bool flagged(int station) const;
  // Every station currently flagged.
  std::vector<int> cheaters() const;

 private:
  void on_edge(bool busy);
  void on_frame(const Frame& frame, const RxInfo& info);

  struct Profile {
    double ewma_slots = -1.0;
    std::int64_t n = 0;
  };

  Scheduler* sched_;
  WifiParams params_;
  Config cfg_;
  Time idle_since_ = kNever;  // when the medium last went idle
  std::map<int, Profile> profiles_;
};

}  // namespace g80211
