// WorldSpec — the validated schema of a city-scale scenario description.
//
// A spec file (TOML subset or JSON, see parser.h) describes a hotspot
// deployment declaratively:
//
//   [world]     radio standard, ranges, seed, warmup/measure durations
//   [aps]       AP placement — a cols x rows floor-plan grid with a fixed
//               pitch, or explicit positions — plus the fraction of APs
//               running the GRC detection/mitigation bundle
//   [stations]  population per AP: on the canonical 2 m arc (radius_m = 0,
//               the sharded-engine-compatible layout) or scattered on a
//               disc of the given radius
//   [churn]     arrival/departure sessions: a fraction of stations whose
//               traffic alternates exponential on/off periods
//   [roaming]   a fraction of stations that walk between their home AP
//               and its nearest neighbour, re-associating with hysteresis
//   [[traffic]] weighted traffic classes: "cbr" (fixed-rate downlink),
//               "web" (bursty on/off downlink), "tcp" (long download)
//   [greedy]    fraction of stations that are greedy receivers, with a
//               weighted mix over the paper's misbehaviors
//   [metrics]   streaming aggregation window and damage-radius ring width
//
// Every per-station and per-AP role (class, greedy, roaming, churn, GRC)
// is assigned by deterministic hashing of (seed, entity index) — never by
// drawing from a shared RNG sequence — so the world is a pure function of
// the spec and is identical however it is compiled (one Sim, N shards).
//
// parse_world_spec rejects invalid documents with SpecErrors anchored to
// the offending line. describe() serializes back to canonical TOML with
// every default resolved; parse(describe(spec)) == spec (round-trip
// losslessness is a tested invariant).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/phy/propagation.h"
#include "src/scenario/scenario.h"
#include "src/scenario/spec/value.h"

namespace g80211::spec {

enum class TrafficClass { kCbr, kWeb, kTcp };

struct TrafficSpec {
  TrafficClass cls = TrafficClass::kCbr;
  double weight = 1.0;
  double rate_mbps = 12.0;  // payload rate (cbr and web ON periods)
  int payload_bytes = 1024;
  double burst_s = 1.0;  // web: mean ON burst duration
  double idle_s = 1.0;   // web: mean OFF gap duration
};

struct WorldSpec {
  // [world]
  std::string name = "city";
  Standard standard = Standard::B80211;
  bool rts_cts = true;
  std::uint64_t seed = 1;
  double warmup_s = 1.0;
  double measure_s = 10.0;
  double comm_range_m = 55.0;
  double cs_range_m = 99.0;
  double ber = 0.0;

  // [aps] — grid mode (cols > 0) XOR explicit positions.
  int grid_cols = 0;
  int grid_rows = 0;
  double pitch_m = 0.0;
  std::vector<Position> positions;
  double grc_coverage = 0.0;

  // [stations]
  int per_ap = 4;
  double radius_m = 0.0;  // 0 = canonical 2 m arc (sharded-compatible)

  // [churn]
  double churn_fraction = 0.0;
  double mean_on_s = 5.0;
  double mean_off_s = 5.0;

  // [roaming]
  double roam_fraction = 0.0;
  double speed_mps = 1.5;
  double hysteresis_m = 5.0;

  // [[traffic]]
  std::vector<TrafficSpec> traffic;

  // [greedy]
  double greedy_fraction = 0.0;
  double mix_nav = 1.0;    // NAV inflation weight
  double mix_spoof = 0.0;  // ACK spoofing weight
  double mix_fake = 0.0;   // fake-ACK weight
  double nav_inflation_ms = 31.0;
  double gp = 1.0;  // greedy percentage (fraction of opportunities taken)

  // [metrics]
  double window_s = 1.0;
  double ring_m = 25.0;

  // Resolved AP placement: explicit positions, or the grid row-major.
  std::vector<Position> ap_positions() const;
  int num_aps() const;
  int num_stations() const { return num_aps() * per_ap; }
};

bool operator==(const TrafficSpec& a, const TrafficSpec& b);
bool operator==(const WorldSpec& a, const WorldSpec& b);

// Validate a parsed document against the schema. `source` names the file
// in error messages.
WorldSpec parse_world_spec(const Value& doc, const std::string& source);
// Convenience: parse text/file (format-sniffed) and validate.
WorldSpec parse_world_spec_text(const std::string& text,
                                const std::string& source);
WorldSpec load_world_spec(const std::string& path);

// Canonical TOML with every default resolved. Lossless:
// parse_world_spec_text(describe(s)) == s.
std::string describe(const WorldSpec& spec);

}  // namespace g80211::spec
