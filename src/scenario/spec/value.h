// Document value model for world-description files.
//
// Both spec front-ends (the TOML subset and JSON — see parser.h) parse
// into this one tree, so schema validation (world_spec.h) is written once
// and error messages are identical whichever syntax the spec was written
// in. Every node remembers the 1-based source line it started on; all
// validation errors are SpecErrors anchored as "<source>:<line>: <what>",
// the compiler-style format editors and CI logs understand.
//
// Tables use std::map (ordered by key): spec handling iterates tables for
// canonical serialization and unknown-key reporting, and the repo-wide
// determinism rules ban iteration order that depends on a hash function.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace g80211::spec {

class SpecError : public std::runtime_error {
 public:
  SpecError(const std::string& source, int line, const std::string& what)
      : std::runtime_error(source + ":" + std::to_string(line) + ": " + what),
        line_(line) {}

  int line() const { return line_; }

 private:
  int line_;
};

struct Value {
  enum class Kind { kBool, kInt, kFloat, kString, kArray, kTable };

  Kind kind = Kind::kTable;
  int line = 1;  // 1-based line where this value starts in the source

  bool b = false;
  std::int64_t i = 0;
  double f = 0.0;
  std::string s;
  std::vector<Value> array;
  std::map<std::string, Value> table;

  bool is_table() const { return kind == Kind::kTable; }
  bool is_array() const { return kind == Kind::kArray; }
  // Numeric accessor: integers promote to double (TOML "1" and JSON "1.0"
  // mean the same rate); everything else is a caller-side type error.
  bool is_number() const { return kind == Kind::kInt || kind == Kind::kFloat; }
  double as_number() const {
    return kind == Kind::kInt ? static_cast<double>(i) : f;
  }

  static const char* kind_name(Kind k) {
    switch (k) {
      case Kind::kBool: return "bool";
      case Kind::kInt: return "integer";
      case Kind::kFloat: return "float";
      case Kind::kString: return "string";
      case Kind::kArray: return "array";
      case Kind::kTable: return "table";
    }
    return "value";
  }
};

}  // namespace g80211::spec
