#include "src/scenario/spec/world_spec.h"

#include <cinttypes>
#include <cstdio>

#include "src/scenario/spec/parser.h"

namespace g80211::spec {
namespace {

// Typed, consumed-key-tracking view of one table. Every getter removes
// the key from the pending set; finish() rejects leftovers, so a typo
// like `warmupt_s` fails with its own line number instead of silently
// keeping the default.
class TableReader {
 public:
  TableReader(const Value& table, const std::string& source,
              const std::string& section)
      : table_(table), source_(source), section_(section) {
    for (const auto& [key, value] : table_.table) {
      (void)value;
      pending_.push_back(key);
    }
  }

  [[noreturn]] void fail(const Value& v, const std::string& what) const {
    throw SpecError(source_, v.line, section_ + what);
  }

  const Value* find(const std::string& key) {
    const auto it = table_.table.find(key);
    if (it == table_.table.end()) return nullptr;
    for (auto p = pending_.begin(); p != pending_.end(); ++p) {
      if (*p == key) {
        pending_.erase(p);
        break;
      }
    }
    return &it->second;
  }

  double number(const std::string& key, double def) {
    const Value* v = find(key);
    if (v == nullptr) return def;
    if (!v->is_number()) fail(*v, key + " must be a number");
    return v->as_number();
  }

  std::int64_t integer(const std::string& key, std::int64_t def) {
    const Value* v = find(key);
    if (v == nullptr) return def;
    if (v->kind != Value::Kind::kInt) fail(*v, key + " must be an integer");
    return v->i;
  }

  bool boolean(const std::string& key, bool def) {
    const Value* v = find(key);
    if (v == nullptr) return def;
    if (v->kind != Value::Kind::kBool) fail(*v, key + " must be a bool");
    return v->b;
  }

  std::string string(const std::string& key, const std::string& def) {
    const Value* v = find(key);
    if (v == nullptr) return def;
    if (v->kind != Value::Kind::kString) fail(*v, key + " must be a string");
    return v->s;
  }

  double fraction(const std::string& key, double def) {
    const Value* v = find(key);
    if (v == nullptr) return def;
    if (!v->is_number() || v->as_number() < 0.0 || v->as_number() > 1.0) {
      fail(*v, key + " must be a number in [0, 1]");
    }
    return v->as_number();
  }

  double positive(const std::string& key, double def) {
    const Value* v = find(key);
    if (v == nullptr) return def;
    if (!v->is_number() || v->as_number() <= 0.0) {
      fail(*v, key + " must be a positive number");
    }
    return v->as_number();
  }

  void finish() const {
    if (pending_.empty()) return;
    const Value& v = table_.table.at(pending_.front());
    throw SpecError(source_, v.line,
                    section_ + "unknown key '" + pending_.front() + "'");
  }

  const Value& raw() const { return table_; }

 private:
  const Value& table_;
  std::string source_;
  std::string section_;  // "[world] " prefix for messages
  std::vector<std::string> pending_;
};

TableReader section(const Value& doc, const std::string& source,
                    const std::string& name, const Value& empty) {
  const auto it = doc.table.find(name);
  const Value& v = it == doc.table.end() ? empty : it->second;
  if (!v.is_table()) {
    throw SpecError(source, v.line, "[" + name + "] must be a table");
  }
  return TableReader(v, source, "[" + name + "] ");
}

const char* standard_name(Standard s) {
  switch (s) {
    case Standard::A80211: return "a";
    case Standard::G80211: return "g";
    case Standard::B80211: break;
  }
  return "b";
}

const char* class_name(TrafficClass c) {
  switch (c) {
    case TrafficClass::kWeb: return "web";
    case TrafficClass::kTcp: return "tcp";
    case TrafficClass::kCbr: break;
  }
  return "cbr";
}

std::string fmt(double x) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", x);
  std::string s(buf);
  // A bare integer would re-parse as kInt; canonical TOML keeps floats
  // recognizable so describe() -> parse round trips exactly.
  if (s.find_first_of(".eEn") == std::string::npos) s += ".0";
  return s;
}

}  // namespace

std::vector<Position> WorldSpec::ap_positions() const {
  if (!positions.empty()) return positions;
  std::vector<Position> out;
  out.reserve(static_cast<std::size_t>(grid_cols) *
              static_cast<std::size_t>(grid_rows));
  for (int r = 0; r < grid_rows; ++r) {
    for (int c = 0; c < grid_cols; ++c) {
      out.push_back(Position{static_cast<double>(c) * pitch_m,
                             static_cast<double>(r) * pitch_m});
    }
  }
  return out;
}

int WorldSpec::num_aps() const {
  return positions.empty() ? grid_cols * grid_rows
                           : static_cast<int>(positions.size());
}

bool operator==(const TrafficSpec& a, const TrafficSpec& b) {
  return a.cls == b.cls && a.weight == b.weight &&
         a.rate_mbps == b.rate_mbps && a.payload_bytes == b.payload_bytes &&
         a.burst_s == b.burst_s && a.idle_s == b.idle_s;
}

bool operator==(const WorldSpec& a, const WorldSpec& b) {
  if (!(a.name == b.name && a.standard == b.standard &&
        a.rts_cts == b.rts_cts && a.seed == b.seed &&
        a.warmup_s == b.warmup_s && a.measure_s == b.measure_s &&
        a.comm_range_m == b.comm_range_m && a.cs_range_m == b.cs_range_m &&
        a.ber == b.ber && a.grid_cols == b.grid_cols &&
        a.grid_rows == b.grid_rows && a.pitch_m == b.pitch_m &&
        a.grc_coverage == b.grc_coverage && a.per_ap == b.per_ap &&
        a.radius_m == b.radius_m && a.churn_fraction == b.churn_fraction &&
        a.mean_on_s == b.mean_on_s && a.mean_off_s == b.mean_off_s &&
        a.roam_fraction == b.roam_fraction && a.speed_mps == b.speed_mps &&
        a.hysteresis_m == b.hysteresis_m &&
        a.greedy_fraction == b.greedy_fraction && a.mix_nav == b.mix_nav &&
        a.mix_spoof == b.mix_spoof && a.mix_fake == b.mix_fake &&
        a.nav_inflation_ms == b.nav_inflation_ms && a.gp == b.gp &&
        a.window_s == b.window_s && a.ring_m == b.ring_m)) {
    return false;
  }
  if (a.positions.size() != b.positions.size()) return false;
  for (std::size_t i = 0; i < a.positions.size(); ++i) {
    if (a.positions[i].x != b.positions[i].x ||
        a.positions[i].y != b.positions[i].y) {
      return false;
    }
  }
  if (a.traffic.size() != b.traffic.size()) return false;
  for (std::size_t i = 0; i < a.traffic.size(); ++i) {
    if (!(a.traffic[i] == b.traffic[i])) return false;
  }
  return true;
}

WorldSpec parse_world_spec(const Value& doc, const std::string& source) {
  if (!doc.is_table()) {
    throw SpecError(source, doc.line, "spec must be a table of sections");
  }
  // Reject unknown sections first so the message names the actual typo.
  for (const auto& [key, value] : doc.table) {
    if (key != "world" && key != "aps" && key != "stations" &&
        key != "churn" && key != "roaming" && key != "traffic" &&
        key != "greedy" && key != "metrics") {
      throw SpecError(source, value.line, "unknown section [" + key + "]");
    }
  }
  Value empty;  // shared default for absent optional sections

  WorldSpec out;

  {
    TableReader r = section(doc, source, "world", empty);
    out.name = r.string("name", out.name);
    const std::string std_name = r.string("standard", "b");
    if (std_name == "b") {
      out.standard = Standard::B80211;
    } else if (std_name == "a") {
      out.standard = Standard::A80211;
    } else if (std_name == "g") {
      out.standard = Standard::G80211;
    } else {
      r.fail(r.raw().table.at("standard"),
             "standard must be \"b\", \"a\" or \"g\"");
    }
    out.rts_cts = r.boolean("rts_cts", out.rts_cts);
    const std::int64_t seed = r.integer("seed", 1);
    if (seed < 0) r.fail(r.raw().table.at("seed"), "seed must be >= 0");
    out.seed = static_cast<std::uint64_t>(seed);
    out.warmup_s = r.positive("warmup_s", out.warmup_s);
    out.measure_s = r.positive("measure_s", out.measure_s);
    out.comm_range_m = r.positive("comm_range_m", out.comm_range_m);
    out.cs_range_m = r.positive("cs_range_m", out.cs_range_m);
    if (out.cs_range_m < out.comm_range_m) {
      r.fail(r.raw(), "cs_range_m must be >= comm_range_m");
    }
    out.ber = r.fraction("ber", out.ber);
    r.finish();
  }

  {
    TableReader r = section(doc, source, "aps", empty);
    const Value* positions = r.find("positions");
    out.grid_cols = static_cast<int>(r.integer("cols", 0));
    out.grid_rows = static_cast<int>(r.integer("rows", 0));
    out.pitch_m = r.number("pitch_m", 0.0);
    if (positions != nullptr) {
      if (out.grid_cols != 0 || out.grid_rows != 0 || out.pitch_m != 0.0) {
        r.fail(*positions, "positions excludes cols/rows/pitch_m");
      }
      if (!positions->is_array() || positions->array.empty()) {
        r.fail(*positions, "positions must be a non-empty array of [x, y]");
      }
      for (const Value& p : positions->array) {
        if (!p.is_array() || p.array.size() != 2 || !p.array[0].is_number() ||
            !p.array[1].is_number()) {
          r.fail(p, "each position must be [x, y]");
        }
        out.positions.push_back(
            Position{p.array[0].as_number(), p.array[1].as_number()});
      }
    } else {
      if (out.grid_cols <= 0 || out.grid_rows <= 0) {
        r.fail(r.raw(), "needs cols > 0 and rows > 0 (or positions)");
      }
      if (out.pitch_m <= 0.0) {
        r.fail(r.raw(), "grid needs pitch_m > 0");
      }
    }
    out.grc_coverage = r.fraction("grc_coverage", out.grc_coverage);
    r.finish();
  }

  {
    TableReader r = section(doc, source, "stations", empty);
    const std::int64_t per_ap = r.integer("per_ap", out.per_ap);
    if (per_ap < 1) r.fail(r.raw(), "per_ap must be >= 1");
    out.per_ap = static_cast<int>(per_ap);
    out.radius_m = r.number("radius_m", out.radius_m);
    if (out.radius_m < 0.0) r.fail(r.raw(), "radius_m must be >= 0");
    r.finish();
  }

  {
    TableReader r = section(doc, source, "churn", empty);
    out.churn_fraction = r.fraction("fraction", out.churn_fraction);
    out.mean_on_s = r.positive("mean_on_s", out.mean_on_s);
    out.mean_off_s = r.positive("mean_off_s", out.mean_off_s);
    r.finish();
  }

  {
    TableReader r = section(doc, source, "roaming", empty);
    out.roam_fraction = r.fraction("fraction", out.roam_fraction);
    out.speed_mps = r.positive("speed_mps", out.speed_mps);
    out.hysteresis_m = r.number("hysteresis_m", out.hysteresis_m);
    if (out.hysteresis_m < 0.0) r.fail(r.raw(), "hysteresis_m must be >= 0");
    r.finish();
  }

  {
    const auto it = doc.table.find("traffic");
    if (it == doc.table.end()) {
      throw SpecError(source, doc.line,
                      "spec needs at least one [[traffic]] class");
    }
    if (!it->second.is_array() || it->second.array.empty()) {
      throw SpecError(source, it->second.line,
                      "[[traffic]] must be an array of tables");
    }
    for (const Value& entry : it->second.array) {
      if (!entry.is_table()) {
        throw SpecError(source, entry.line, "[[traffic]] must be tables");
      }
      TableReader r(entry, source, "[[traffic]] ");
      TrafficSpec t;
      const std::string cls = r.string("class", "cbr");
      if (cls == "cbr") {
        t.cls = TrafficClass::kCbr;
      } else if (cls == "web") {
        t.cls = TrafficClass::kWeb;
      } else if (cls == "tcp") {
        t.cls = TrafficClass::kTcp;
      } else {
        r.fail(entry, "class must be \"cbr\", \"web\" or \"tcp\"");
      }
      t.weight = r.positive("weight", t.weight);
      t.rate_mbps = r.positive("rate_mbps", t.rate_mbps);
      const std::int64_t payload = r.integer("payload_bytes", t.payload_bytes);
      if (payload < 1) r.fail(entry, "payload_bytes must be >= 1");
      t.payload_bytes = static_cast<int>(payload);
      t.burst_s = r.positive("burst_s", t.burst_s);
      t.idle_s = r.positive("idle_s", t.idle_s);
      r.finish();
      out.traffic.push_back(t);
    }
  }

  {
    TableReader r = section(doc, source, "greedy", empty);
    out.greedy_fraction = r.fraction("fraction", out.greedy_fraction);
    out.mix_nav = r.number("nav_inflation", out.mix_nav);
    out.mix_spoof = r.number("ack_spoofing", out.mix_spoof);
    out.mix_fake = r.number("fake_ack", out.mix_fake);
    if (out.mix_nav < 0.0 || out.mix_spoof < 0.0 || out.mix_fake < 0.0) {
      r.fail(r.raw(), "misbehavior weights must be >= 0");
    }
    if (out.greedy_fraction > 0.0 &&
        out.mix_nav + out.mix_spoof + out.mix_fake <= 0.0) {
      r.fail(r.raw(), "misbehavior mix must have positive total weight");
    }
    out.nav_inflation_ms = r.positive("nav_inflation_ms", out.nav_inflation_ms);
    out.gp = r.positive("gp", out.gp);
    if (out.gp > 1.0) r.fail(r.raw(), "gp must be in (0, 1]");
    r.finish();
  }

  {
    TableReader r = section(doc, source, "metrics", empty);
    out.window_s = r.positive("window_s", out.window_s);
    out.ring_m = r.positive("ring_m", out.ring_m);
    r.finish();
  }

  return out;
}

WorldSpec parse_world_spec_text(const std::string& text,
                                const std::string& source) {
  return parse_world_spec(parse_text(text, source), source);
}

WorldSpec load_world_spec(const std::string& path) {
  return parse_world_spec(parse_file(path), path);
}

std::string describe(const WorldSpec& spec) {
  std::string out;
  char buf[256];
  auto line = [&out, &buf](const char* k, const std::string& v) {
    out += k;
    out += " = ";
    out += v;
    out += "\n";
    (void)buf;
  };

  out += "[world]\n";
  line("name", "\"" + spec.name + "\"");
  line("standard", std::string("\"") + standard_name(spec.standard) + "\"");
  line("rts_cts", spec.rts_cts ? "true" : "false");
  std::snprintf(buf, sizeof(buf), "%" PRIu64, spec.seed);
  line("seed", buf);
  line("warmup_s", fmt(spec.warmup_s));
  line("measure_s", fmt(spec.measure_s));
  line("comm_range_m", fmt(spec.comm_range_m));
  line("cs_range_m", fmt(spec.cs_range_m));
  line("ber", fmt(spec.ber));

  out += "\n[aps]\n";
  if (!spec.positions.empty()) {
    std::string arr = "[";
    for (std::size_t i = 0; i < spec.positions.size(); ++i) {
      if (i > 0) arr += ", ";
      arr += "[" + fmt(spec.positions[i].x) + ", " + fmt(spec.positions[i].y) +
             "]";
    }
    arr += "]";
    line("positions", arr);
  } else {
    std::snprintf(buf, sizeof(buf), "%d", spec.grid_cols);
    line("cols", buf);
    std::snprintf(buf, sizeof(buf), "%d", spec.grid_rows);
    line("rows", buf);
    line("pitch_m", fmt(spec.pitch_m));
  }
  line("grc_coverage", fmt(spec.grc_coverage));

  out += "\n[stations]\n";
  std::snprintf(buf, sizeof(buf), "%d", spec.per_ap);
  line("per_ap", buf);
  line("radius_m", fmt(spec.radius_m));

  out += "\n[churn]\n";
  line("fraction", fmt(spec.churn_fraction));
  line("mean_on_s", fmt(spec.mean_on_s));
  line("mean_off_s", fmt(spec.mean_off_s));

  out += "\n[roaming]\n";
  line("fraction", fmt(spec.roam_fraction));
  line("speed_mps", fmt(spec.speed_mps));
  line("hysteresis_m", fmt(spec.hysteresis_m));

  for (const TrafficSpec& t : spec.traffic) {
    out += "\n[[traffic]]\n";
    line("class", std::string("\"") + class_name(t.cls) + "\"");
    line("weight", fmt(t.weight));
    line("rate_mbps", fmt(t.rate_mbps));
    std::snprintf(buf, sizeof(buf), "%d", t.payload_bytes);
    line("payload_bytes", buf);
    line("burst_s", fmt(t.burst_s));
    line("idle_s", fmt(t.idle_s));
  }

  out += "\n[greedy]\n";
  line("fraction", fmt(spec.greedy_fraction));
  line("nav_inflation", fmt(spec.mix_nav));
  line("ack_spoofing", fmt(spec.mix_spoof));
  line("fake_ack", fmt(spec.mix_fake));
  line("nav_inflation_ms", fmt(spec.nav_inflation_ms));
  line("gp", fmt(spec.gp));

  out += "\n[metrics]\n";
  line("window_s", fmt(spec.window_s));
  line("ring_m", fmt(spec.ring_m));

  return out;
}

}  // namespace g80211::spec
