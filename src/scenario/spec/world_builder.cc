#include "src/scenario/spec/world_builder.h"

#include <algorithm>
#include <cmath>

#include "src/scenario/topology.h"
#include "src/sim/check.h"

namespace g80211::spec {
namespace {

// Role-assignment streams: the same splitmix64 mixing family as the
// sharded engine's stream_seed, finalized so the low bits are usable as a
// uniform threshold test. Kinds are disjoint from sharded.cc's node/flow
// stream kinds by construction (different call sites, same principle:
// every role is a pure function of (seed, kind, entity index)).
constexpr std::uint64_t kGrcRole = 10;
constexpr std::uint64_t kClassRole = 11;
constexpr std::uint64_t kGreedyRole = 12;
constexpr std::uint64_t kMisbehaviorRole = 13;
constexpr std::uint64_t kRoamRole = 14;
constexpr std::uint64_t kChurnRole = 15;
constexpr std::uint64_t kScatterRole = 16;

std::uint64_t role_hash(std::uint64_t seed, std::uint64_t kind,
                        std::uint64_t index) {
  std::uint64_t h = seed * 0x9e3779b97f4a7c15ULL + 0x517cc1b727220a95ULL;
  h ^= kind * 0xbf58476d1ce4e5b9ULL;
  h ^= index * 0x94d049bb133111ebULL;
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ULL;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebULL;
  h ^= h >> 31;
  return h;
}

// Uniform double in [0, 1) from a role hash (53 mantissa bits, like Rng).
double role_unit(std::uint64_t seed, std::uint64_t kind, std::uint64_t index) {
  return static_cast<double>(role_hash(seed, kind, index) >> 11) * 0x1.0p-53;
}

Time to_time(double s) { return static_cast<Time>(s * 1e9); }

// Damage-radius rings are capped so a sparse-greedy world still yields a
// readable handful of bands; everything farther lands in the last ring.
constexpr int kMaxRings = 8;

constexpr Time kRoamTick = milliseconds(200);

}  // namespace

WorldPlan plan_world(const WorldSpec& spec) {
  WorldPlan plan;
  plan.aps = spec.ap_positions();
  const int num_aps = static_cast<int>(plan.aps.size());
  const std::uint64_t seed = spec.seed;

  plan.grc.resize(static_cast<std::size_t>(num_aps));
  for (int a = 0; a < num_aps; ++a) {
    plan.grc[static_cast<std::size_t>(a)] =
        role_unit(seed, kGrcRole, static_cast<std::uint64_t>(a)) <
        spec.grc_coverage;
  }

  // Nearest other AP, the roaming target (O(A^2); fine at city scale).
  std::vector<int> nearest(static_cast<std::size_t>(num_aps), -1);
  for (int a = 0; a < num_aps; ++a) {
    double best = 0.0;
    for (int b = 0; b < num_aps; ++b) {
      if (b == a) continue;
      const double d = distance(plan.aps[static_cast<std::size_t>(a)],
                                plan.aps[static_cast<std::size_t>(b)]);
      if (nearest[static_cast<std::size_t>(a)] < 0 || d < best) {
        nearest[static_cast<std::size_t>(a)] = b;
        best = d;
      }
    }
  }

  double total_weight = 0.0;
  for (const TrafficSpec& t : spec.traffic) total_weight += t.weight;

  const SharedApLayout arc = shared_ap(spec.per_ap);
  for (int a = 0; a < num_aps; ++a) {
    const Position& ap = plan.aps[static_cast<std::size_t>(a)];
    for (int j = 0; j < spec.per_ap; ++j) {
      const std::uint64_t s =
          static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(spec.per_ap) +
          static_cast<std::uint64_t>(j);
      StationPlan st;
      st.ap = a;
      if (spec.radius_m <= 0.0) {
        st.pos = Position{ap.x + arc.clients[static_cast<std::size_t>(j)].x,
                          ap.y + arc.clients[static_cast<std::size_t>(j)].y};
      } else {
        // Disc scatter, held >= 1 m off the AP so propagation never sees a
        // zero distance. Area-uniform via sqrt.
        const std::uint64_t h = role_hash(seed, kScatterRole, s);
        const double u_r =
            static_cast<double>(h >> 11) * 0x1.0p-53;  // radius share
        const double u_t = static_cast<double>(
                               role_hash(seed, kScatterRole, s ^ 0x5bf03635ULL) >>
                               11) *
                           0x1.0p-53;  // angle share
        const double r =
            1.0 + (std::max(spec.radius_m, 1.0) - 1.0) * std::sqrt(u_r);
        const double theta = 2.0 * 3.14159265358979323846 * u_t;
        st.pos = Position{ap.x + r * std::cos(theta), ap.y + r * std::sin(theta)};
      }

      // Weighted traffic-class pick.
      double pick = role_unit(seed, kClassRole, s) * total_weight;
      st.traffic = 0;
      for (std::size_t t = 0; t < spec.traffic.size(); ++t) {
        pick -= spec.traffic[t].weight;
        if (pick < 0.0) {
          st.traffic = static_cast<int>(t);
          break;
        }
      }
      const bool tcp = spec.traffic[static_cast<std::size_t>(st.traffic)].cls ==
                       TrafficClass::kTcp;

      st.greedy = role_unit(seed, kGreedyRole, s) < spec.greedy_fraction;
      if (st.greedy) {
        const double mix_total = spec.mix_nav + spec.mix_spoof + spec.mix_fake;
        double m = role_unit(seed, kMisbehaviorRole, s) * mix_total;
        if ((m -= spec.mix_nav) < 0.0) {
          st.misbehavior = 0;
        } else if ((m -= spec.mix_spoof) < 0.0) {
          st.misbehavior = 1;
        } else {
          st.misbehavior = 2;
        }
      }
      // Role precedence (see world_builder.h): greedy stations camp; TCP
      // stations anchor; only the rest roam or churn.
      st.roams = !st.greedy && !tcp && num_aps > 1 &&
                 role_unit(seed, kRoamRole, s) < spec.roam_fraction;
      if (st.roams) st.roam_target_ap = nearest[static_cast<std::size_t>(a)];
      st.churns = !st.greedy && !tcp && !st.roams &&
                  role_unit(seed, kChurnRole, s) < spec.churn_fraction;
      plan.stations.push_back(st);
    }
  }

  // Damage-radius rings: honest stations banded by distance (of their home
  // position) to the nearest greedy receiver's home position.
  std::vector<Position> greedy_pos;
  for (const StationPlan& st : plan.stations) {
    if (st.greedy) greedy_pos.push_back(st.pos);
  }
  if (!greedy_pos.empty()) {
    int max_ring = 0;
    for (StationPlan& st : plan.stations) {
      if (st.greedy) continue;
      double d = distance(st.pos, greedy_pos.front());
      for (const Position& g : greedy_pos) {
        d = std::min(d, distance(st.pos, g));
      }
      st.ring = std::min(static_cast<int>(d / spec.ring_m), kMaxRings - 1);
      max_ring = std::max(max_ring, st.ring);
    }
    plan.num_rings = max_ring + 1;
  }
  return plan;
}

SimConfig to_sim_config(const WorldSpec& spec) {
  SimConfig cfg;
  cfg.standard = spec.standard;
  cfg.rts_cts = spec.rts_cts;
  cfg.default_ber = spec.ber;
  cfg.comm_range_m = spec.comm_range_m;
  cfg.cs_range_m = spec.cs_range_m;
  cfg.warmup = to_time(spec.warmup_s);
  cfg.measure = to_time(spec.measure_s);
  cfg.seed = spec.seed;
  return cfg;
}

ShardedWorldSpec to_sharded(const WorldSpec& spec) {
  const auto reject = [&spec](const std::string& what) {
    throw SpecError(spec.name, 0, "not sharded-representable: " + what);
  };
  if (spec.churn_fraction > 0.0) reject("[churn] fraction must be 0");
  if (spec.roam_fraction > 0.0) reject("[roaming] fraction must be 0");
  if (spec.greedy_fraction > 0.0) reject("[greedy] fraction must be 0");
  if (spec.grc_coverage > 0.0) reject("[aps] grc_coverage must be 0");
  if (spec.radius_m != 0.0) {
    reject("[stations] radius_m must be 0 (canonical arc layout)");
  }
  if (spec.traffic.size() != 1 ||
      spec.traffic[0].cls != TrafficClass::kCbr) {
    reject("traffic must be a single cbr class");
  }
  ShardedWorldSpec out;
  out.base = to_sim_config(spec);
  for (const Position& pos : spec.ap_positions()) {
    HotspotBssSpec bss;
    bss.ap = pos;
    bss.n_stations = spec.per_ap;
    bss.rate_mbps = spec.traffic[0].rate_mbps;
    bss.payload_bytes = spec.traffic[0].payload_bytes;
    out.bsss.push_back(bss);
  }
  return out;
}

BuiltWorld::BuiltWorld(const WorldSpec& spec)
    : spec_(spec),
      plan_(plan_world(spec)),
      sim_(std::make_unique<Sim>(to_sim_config(spec))) {
  ap_nodes_.reserve(plan_.aps.size());
  for (const Position& pos : plan_.aps) {
    ap_nodes_.push_back(&sim_->add_node(pos));
  }
  station_nodes_.reserve(plan_.stations.size());
  for (const StationPlan& st : plan_.stations) {
    station_nodes_.push_back(&sim_->add_node(st.pos));
  }

  // Flows, AP-major station order (the same order the ids were assigned).
  flows_.resize(plan_.stations.size());
  delivery_ap_.resize(plan_.stations.size());
  sessions_by_station_.assign(plan_.stations.size(), nullptr);
  roamers_by_station_.assign(plan_.stations.size(), nullptr);
  for (std::size_t s = 0; s < plan_.stations.size(); ++s) {
    const StationPlan& st = plan_.stations[s];
    delivery_ap_[s] = st.ap;
    const TrafficSpec& t = spec_.traffic[static_cast<std::size_t>(st.traffic)];
    Node& ap = *ap_nodes_[static_cast<std::size_t>(st.ap)];
    Node& stn = *station_nodes_[s];
    FlowRef& f = flows_[s];
    if (t.cls == TrafficClass::kTcp) {
      const TcpSender::Config tcp_cfg;
      Sim::TcpFlow flow = sim_->add_tcp_flow(ap, stn, tcp_cfg);
      f.tcp = flow.sink;
      f.unit_bytes = tcp_cfg.mss_bytes;
    } else {
      Sim::UdpFlow flow =
          sim_->add_udp_flow(ap, stn, t.rate_mbps, t.payload_bytes);
      f.udp = flow.sink;
      f.source = flow.source;
      f.unit_bytes = t.payload_bytes;
      if (st.roams) {
        // Deliver through whichever AP the station is associated with;
        // handoffs re-point delivery_ap_ and flush the old AP's queue.
        f.source->output = [this, s](PacketPtr p) {
          ap_nodes_[static_cast<std::size_t>(delivery_ap_[s])]->send_packet(
              std::move(p));
        };
      }
    }
  }

  // Greedy receivers.
  for (std::size_t s = 0; s < plan_.stations.size(); ++s) {
    const StationPlan& st = plan_.stations[s];
    if (!st.greedy) continue;
    Node& stn = *station_nodes_[s];
    switch (st.misbehavior) {
      case 0:
        sim_->make_nav_inflator(stn, NavFrameMask::cts_only(),
                                to_time(spec_.nav_inflation_ms * 1e-3),
                                spec_.gp);
        break;
      case 1:
        sim_->make_ack_spoofer(stn, spec_.gp);
        break;
      default:
        sim_->make_fake_acker(stn, spec_.gp);
        break;
    }
  }

  // GRC-protected APs.
  for (std::size_t a = 0; a < plan_.grc.size(); ++a) {
    if (!plan_.grc[a]) continue;
    grcs_.push_back(std::make_unique<Grc>(sim_->scheduler(), sim_->params()));
    grcs_.back()->protect(ap_nodes_[a]->mac());
  }

  // On/off sessions: churned stations use the churn timescale, bursty web
  // stations their class's burst/idle timescale (a churned web station
  // churns — the coarser process dominates).
  for (std::size_t s = 0; s < plan_.stations.size(); ++s) {
    const StationPlan& st = plan_.stations[s];
    const TrafficSpec& t = spec_.traffic[static_cast<std::size_t>(st.traffic)];
    const bool web = t.cls == TrafficClass::kWeb;
    if (!st.churns && !web) continue;
    auto session = std::make_unique<OnOffSession>(
        sim_->scheduler(), [this, s] { toggle_session(*sessions_by_station_[s]); },
        sim_->fork_rng());
    session->source = flows_[s].source;
    session->mean_on_s = st.churns ? spec_.mean_on_s : t.burst_s;
    session->mean_off_s = st.churns ? spec_.mean_off_s : t.idle_s;
    // The flow starts ON (Sim staggered its start); first toggle after an
    // exponential ON period.
    session->timer.start_at(to_time(session->rng.exponential(session->mean_on_s)));
    sessions_by_station_[s] = session.get();
    sessions_.push_back(std::move(session));
  }

  // Roamers: walk between the home anchor and the mirrored anchor at the
  // nearest other AP, re-associating with hysteresis every kRoamTick.
  for (std::size_t s = 0; s < plan_.stations.size(); ++s) {
    const StationPlan& st = plan_.stations[s];
    if (!st.roams) continue;
    auto roamer = std::make_unique<Roamer>(sim_->scheduler(), [this, s] {
      roam_step(*roamers_by_station_[s]);
    });
    roamer->station = static_cast<int>(s);
    roamer->node = station_nodes_[s];
    roamer->aps[0] = st.ap;
    roamer->aps[1] = st.roam_target_ap;
    const Position& home_ap = plan_.aps[static_cast<std::size_t>(st.ap)];
    const Position& target_ap =
        plan_.aps[static_cast<std::size_t>(st.roam_target_ap)];
    roamer->anchors[0] = st.pos;
    roamer->anchors[1] = Position{target_ap.x + (st.pos.x - home_ap.x),
                                  target_ap.y + (st.pos.y - home_ap.y)};
    roamer->walk = std::make_unique<WaypointMobility>(
        sim_->scheduler(), roamer->node->phy(),
        std::vector<Position>{roamer->anchors[1]}, spec_.speed_mps);
    roamer->walk->start(0);
    roamer->timer.start_at(kRoamTick);
    roamers_by_station_[s] = roamer.get();
    roamers_.push_back(std::move(roamer));
  }
}

void BuiltWorld::toggle_session(OnOffSession& s) {
  const Time now = sim_->scheduler().now();
  double next_s = 0.0;
  if (s.on) {
    s.source->stop(now);
    s.on = false;
    next_s = s.rng.exponential(s.mean_off_s);
  } else {
    s.source->start(now);
    s.on = true;
    next_s = s.rng.exponential(s.mean_on_s);
  }
  s.timer.start(std::max<Time>(to_time(next_s), milliseconds(1)));
}

void BuiltWorld::roam_step(Roamer& r) {
  const Time now = sim_->scheduler().now();
  if (r.walk->finished()) {
    // Next leg: ping-pong between the two anchors, one fresh
    // WaypointMobility per leg so memory never grows with duration.
    r.leg ^= 1;
    r.walk = std::make_unique<WaypointMobility>(
        sim_->scheduler(), r.node->phy(),
        std::vector<Position>{r.anchors[r.leg]}, spec_.speed_mps);
    r.walk->start(now);
  }
  const Position p = r.node->phy().position();
  const double d_cur =
      distance(p, plan_.aps[static_cast<std::size_t>(r.aps[r.associated])]);
  const double d_other =
      distance(p, plan_.aps[static_cast<std::size_t>(r.aps[1 - r.associated])]);
  if (d_other + spec_.hysteresis_m < d_cur) {
    const int from = r.aps[r.associated];
    r.associated = 1 - r.associated;
    const int to = r.aps[r.associated];
    // The old AP stops delivering: flush its queued frames for this
    // station and re-point generation at the new AP.
    ap_nodes_[static_cast<std::size_t>(from)]->mac().abort_queued_to(
        r.node->id());
    delivery_ap_[static_cast<std::size_t>(r.station)] = to;
    ++summary_.handoffs;
    if (on_handoff) on_handoff(r.station, from, to, now);
  }
  r.timer.start(kRoamTick);
}

void BuiltWorld::run(const std::function<void(const WindowReport&)>& on_window) {
  G80211_CHECK(!ran_ && "BuiltWorld::run is single-shot");
  ran_ = true;
  sim_->begin_run();
  const Time warmup = sim_->config().warmup;
  const Time end = sim_->end_time();
  const Time window = to_time(spec_.window_s);

  sim_->advance_to(warmup);
  prev_units_.resize(flows_.size());
  for (std::size_t s = 0; s < flows_.size(); ++s) {
    prev_units_[s] = flows_[s].units();
  }

  const int rings = plan_.num_rings;
  summary_.ring_mbps.assign(static_cast<std::size_t>(rings), StreamingStat{});
  summary_.ring_stations.assign(static_cast<std::size_t>(rings), 0);
  for (const StationPlan& st : plan_.stations) {
    if (st.ring >= 0) ++summary_.ring_stations[static_cast<std::size_t>(st.ring)];
  }

  // Per-window scratch, reused: run() memory does not grow with duration.
  std::vector<StreamingStat> ring_window(static_cast<std::size_t>(rings));
  std::vector<double> ring_total(static_cast<std::size_t>(rings));
  WindowReport rep;
  rep.rings.resize(static_cast<std::size_t>(rings));

  Time t = warmup;
  int index = 0;
  while (t < end) {
    const Time next = std::min(t + window, end);
    sim_->advance_to(next);
    const double dt = to_seconds(next - t);

    rep.index = index;
    rep.t_start_s = to_seconds(t);
    rep.t_end_s = to_seconds(next);
    rep.honest_mbps = 0.0;
    rep.greedy_mbps = 0.0;
    std::fill(ring_total.begin(), ring_total.end(), 0.0);
    for (std::size_t s = 0; s < flows_.size(); ++s) {
      const std::int64_t units = flows_[s].units();
      const std::int64_t delta = units - prev_units_[s];
      prev_units_[s] = units;
      const double mbps = static_cast<double>(delta) *
                          static_cast<double>(flows_[s].unit_bytes) * 8.0 /
                          dt / 1e6;
      const StationPlan& st = plan_.stations[s];
      if (st.greedy) {
        rep.greedy_mbps += mbps;
      } else {
        rep.honest_mbps += mbps;
        if (st.ring >= 0) {
          ring_window[static_cast<std::size_t>(st.ring)].add(mbps);
          ring_total[static_cast<std::size_t>(st.ring)] += mbps;
        }
      }
    }
    for (int r = 0; r < rings; ++r) {
      const std::size_t ri = static_cast<std::size_t>(r);
      rep.rings[ri].stations = ring_window[ri].count();
      rep.rings[ri].total_mbps = ring_total[ri];
      rep.rings[ri].mean_mbps = ring_window[ri].mean();
      rep.rings[ri].p25 = ring_window[ri].p25();
      rep.rings[ri].p50 = ring_window[ri].p50();
      rep.rings[ri].p75 = ring_window[ri].p75();
      summary_.ring_mbps[ri].add(ring_total[ri]);
      ring_window[ri].reset();
    }
    summary_.honest_mbps.add(rep.honest_mbps);
    summary_.greedy_mbps.add(rep.greedy_mbps);
    ++summary_.windows;
    if (on_window) on_window(rep);
    t = next;
    ++index;
  }

  for (const auto& grc : grcs_) {
    summary_.nav_detections += grc->nav_detections();
    summary_.spoof_detections += grc->spoof_detections();
  }
}

}  // namespace g80211::spec
