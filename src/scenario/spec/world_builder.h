// WorldBuilder — compiles a WorldSpec into a runnable world.
//
// Two back-ends share one deterministic placement/role plan:
//
//  * BuiltWorld — a single Sim carrying every spec feature: per-class
//    traffic (CBR, bursty web, TCP downloads), arrival/departure churn
//    sessions, roaming stations with association handoff (via
//    net/mobility.h WaypointMobility legs), greedy receivers with the
//    configured misbehavior mix, and GRC-protected APs. run() advances
//    the simulation in fixed metric windows and reports each window's
//    per-ring honest goodput ("damage radius": rings are distance bands
//    around the nearest greedy receiver) through constant-memory
//    streaming aggregation — peak RSS is a function of the world size,
//    never of the simulated duration.
//
//  * to_sharded() — compiles the sharded-representable subset (static
//    saturated-CBR hotspots: no churn, no roaming, no greedy stations,
//    no GRC, arc placement, a single cbr traffic class) into the PR 8
//    ShardedWorldSpec, inheriting its byte-identical-at-any-shard-count
//    contract. Specs outside the subset are rejected with a SpecError
//    naming the first unsupported feature.
//
// The plan (plan_world) assigns every role by splitmix64-style hashing of
// (seed, entity index): station i's traffic class, greedy/roaming/churn
// flags and AP i's GRC flag are pure functions of the spec, independent
// of build order and shard count. Role precedence: greedy stations
// neither roam nor churn (they camp and misbehave); roaming stations are
// exempt from churn (their session is the walk); TCP stations are exempt
// from churn and roaming (they are the long-download anchor population —
// mid-flight sender migration is out of scope).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/detect/grc.h"
#include "src/net/mobility.h"
#include "src/runner/stream_stats.h"
#include "src/scenario/scenario.h"
#include "src/scenario/sharded.h"
#include "src/scenario/spec/world_spec.h"

namespace g80211::spec {

struct StationPlan {
  int ap = 0;             // home AP index
  Position pos;           // home position
  int traffic = 0;        // index into spec.traffic
  bool greedy = false;
  int misbehavior = 0;    // 0 = NAV inflation, 1 = ACK spoofing, 2 = fake ACK
  bool roams = false;
  int roam_target_ap = -1;  // nearest other AP
  bool churns = false;
  int ring = -1;  // damage-radius ring for honest stations; -1 when greedy
                  // or when the world has no greedy stations
};

struct WorldPlan {
  std::vector<Position> aps;
  std::vector<bool> grc;               // per AP
  std::vector<StationPlan> stations;   // AP-major order
  int num_rings = 0;                   // 0 when no greedy stations exist
};

// Pure function of the spec; see header comment for the hashing scheme.
WorldPlan plan_world(const WorldSpec& spec);

SimConfig to_sim_config(const WorldSpec& spec);

// Sharded-subset compile; throws SpecError naming the first unsupported
// feature (anchored to line 0 of the spec's name, not a source line — the
// restriction is semantic, not syntactic).
ShardedWorldSpec to_sharded(const WorldSpec& spec);

class BuiltWorld {
 public:
  explicit BuiltWorld(const WorldSpec& spec);

  BuiltWorld(const BuiltWorld&) = delete;
  BuiltWorld& operator=(const BuiltWorld&) = delete;

  Sim& sim() { return *sim_; }
  const WorldPlan& plan() const { return plan_; }
  Node& ap_node(int ap) { return *ap_nodes_.at(static_cast<std::size_t>(ap)); }
  Node& station_node(int station) {
    return *station_nodes_.at(static_cast<std::size_t>(station));
  }
  int num_rings() const { return plan_.num_rings; }

  // Observation hook, fired at each association handoff. Handoffs are
  // otherwise only counted (never logged) so memory stays duration-free.
  std::function<void(int station, int from_ap, int to_ap, Time at)> on_handoff;

  // One closed metric window (simulated [t_start_s, t_end_s)).
  struct RingWindow {
    std::int64_t stations = 0;  // honest stations in the ring
    double total_mbps = 0.0;    // summed honest goodput of the ring
    double mean_mbps = 0.0;     // per-station distribution within the window
    double p25 = 0.0;
    double p50 = 0.0;
    double p75 = 0.0;
  };
  struct WindowReport {
    int index = 0;
    double t_start_s = 0.0;
    double t_end_s = 0.0;
    double honest_mbps = 0.0;  // all honest stations
    double greedy_mbps = 0.0;  // all greedy stations
    std::vector<RingWindow> rings;  // ring 0 = closest to a greedy receiver
  };

  // Warmup, then measure in window_s slices; `on_window` (optional) fires
  // as each window closes. Call once.
  void run(const std::function<void(const WindowReport&)>& on_window = {});

  // Whole-run streams over the per-window values (constant memory).
  struct Summary {
    int windows = 0;
    StreamingStat honest_mbps;
    StreamingStat greedy_mbps;
    std::vector<StreamingStat> ring_mbps;  // per-ring window totals
    std::vector<std::int64_t> ring_stations;
    std::int64_t handoffs = 0;
    std::int64_t nav_detections = 0;
    std::int64_t spoof_detections = 0;
  };
  const Summary& summary() const { return summary_; }

 private:
  // A station whose CbrSource alternates exponential on/off periods (web
  // bursts or churn sessions).
  struct OnOffSession {
    Timer timer;
    CbrSource* source = nullptr;
    Rng rng;
    double mean_on_s = 1.0;
    double mean_off_s = 1.0;
    bool on = true;
    OnOffSession(Scheduler& sched, std::function<void()> cb, Rng r)
        : timer(sched, std::move(cb)), rng(r) {}
  };

  // A station walking between its home arc position and the mirrored
  // position at the nearest other AP, re-associating with hysteresis.
  struct Roamer {
    Timer timer;
    int station = 0;      // global station index
    Node* node = nullptr;
    int aps[2] = {0, 0};           // [0] = home, [1] = target (AP indices)
    Position anchors[2];           // walk endpoints
    int associated = 0;            // index into aps[]
    int leg = 1;                   // anchor currently walked toward
    std::unique_ptr<WaypointMobility> walk;
    Roamer(Scheduler& sched, std::function<void()> cb)
        : timer(sched, std::move(cb)) {}
  };

  struct FlowRef {
    UdpSink* udp = nullptr;
    TcpSink* tcp = nullptr;
    CbrSource* source = nullptr;
    int unit_bytes = 0;  // payload (udp) or mss (tcp) per counted unit
    std::int64_t units() const {
      return udp != nullptr ? udp->packets() : tcp->segments();
    }
  };

  void toggle_session(OnOffSession& s);
  void roam_step(Roamer& r);

  WorldSpec spec_;
  WorldPlan plan_;
  std::unique_ptr<Sim> sim_;
  std::vector<Node*> ap_nodes_;
  std::vector<Node*> station_nodes_;
  std::vector<FlowRef> flows_;       // per station
  std::vector<int> delivery_ap_;     // per station: AP currently delivering
  std::vector<OnOffSession*> sessions_by_station_;  // nullptr when always-on
  std::vector<Roamer*> roamers_by_station_;         // nullptr when anchored
  std::vector<std::unique_ptr<Grc>> grcs_;
  std::vector<std::unique_ptr<OnOffSession>> sessions_;
  std::vector<std::unique_ptr<Roamer>> roamers_;
  std::vector<std::int64_t> prev_units_;  // window delta baseline
  Summary summary_;
  bool ran_ = false;
};

}  // namespace g80211::spec
