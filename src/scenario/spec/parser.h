// Dependency-free parsers for world-description files.
//
// Two front-ends, one Value tree (value.h):
//
//  * parse_toml — the TOML subset the specs actually need: `# comments`,
//    `[table]` headers, `[[table]]` array-of-tables headers, and
//    `key = value` pairs whose values are strings ("..." with \" \\ \n \t
//    escapes), booleans, integers, floats, and (possibly nested,
//    possibly multi-line) arrays. Table names are flat — no dotted keys —
//    and redefining a key or a `[table]` is an error, so a spec means one
//    thing only.
//  * parse_json — standard JSON (objects, arrays, strings, numbers,
//    booleans, null is rejected: a spec key is either present or absent).
//
// parse_text sniffs the format from the first non-whitespace byte ('{' =
// JSON, anything else = TOML); parse_file reads a file and uses its path
// as the error-message source name. All errors are SpecErrors anchored to
// the offending source line ("city.toml:12: ...").
#pragma once

#include <string>

#include "src/scenario/spec/value.h"

namespace g80211::spec {

Value parse_toml(const std::string& text, const std::string& source);
Value parse_json(const std::string& text, const std::string& source);

// Format-sniffing entry points.
Value parse_text(const std::string& text, const std::string& source);
Value parse_file(const std::string& path);

}  // namespace g80211::spec
