#include "src/scenario/spec/parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace g80211::spec {
namespace {

// Character cursor with line tracking, shared by both front-ends. The
// front-ends differ only in grammar: TOML is statement-oriented (a value
// must be followed by end-of-line), JSON is free-form.
class Scanner {
 public:
  Scanner(const std::string& text, const std::string& source)
      : text_(text), source_(source) {}

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return eof() ? '\0' : text_[pos_]; }
  char get() {
    const char c = text_[pos_++];
    if (c == '\n') ++line_;
    return c;
  }
  int line() const { return line_; }
  const std::string& source() const { return source_; }

  [[noreturn]] void fail(const std::string& what, int at_line = 0) const {
    throw SpecError(source_, at_line > 0 ? at_line : line_, what);
  }

  // Skip spaces and tabs (not newlines) and a trailing '#' comment.
  void skip_inline() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\r')) get();
    if (!eof() && peek() == '#') {
      while (!eof() && peek() != '\n') get();
    }
  }

  // Skip all whitespace, newlines and '#' comments.
  void skip_all(bool hash_comments) {
    for (;;) {
      while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\r' ||
                        peek() == '\n')) {
        get();
      }
      if (hash_comments && !eof() && peek() == '#') {
        while (!eof() && peek() != '\n') get();
        continue;
      }
      return;
    }
  }

  std::string parse_quoted_string() {
    const int at = line_;
    get();  // opening quote
    std::string out;
    for (;;) {
      if (eof()) fail("unterminated string", at);
      const char c = get();
      if (c == '"') return out;
      if (c == '\n') fail("unterminated string", at);
      if (c == '\\') {
        if (eof()) fail("unterminated string", at);
        const char e = get();
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case '/': out += '/'; break;
          default:
            fail(std::string("unsupported escape '\\") + e + "' in string");
        }
      } else {
        out += c;
      }
    }
  }

  // Integer or float. `token` must look like a number (leading digit,
  // '+', '-' or '.').
  Value parse_number() {
    const int at = line_;
    std::string tok;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) != 0 ||
                      peek() == '+' || peek() == '-' || peek() == '.' ||
                      peek() == 'e' || peek() == 'E' || peek() == '_')) {
      const char c = get();
      if (c != '_') tok += c;  // TOML allows 1_000 separators
    }
    Value v;
    v.line = at;
    const bool floaty = tok.find_first_of(".eE") != std::string::npos;
    const char* begin = tok.c_str();
    char* end = nullptr;
    if (floaty) {
      v.kind = Value::Kind::kFloat;
      v.f = std::strtod(begin, &end);
    } else {
      v.kind = Value::Kind::kInt;
      v.i = std::strtoll(begin, &end, 10);
    }
    if (tok.empty() || end != begin + tok.size()) {
      fail("malformed number '" + tok + "'", at);
    }
    return v;
  }

 private:
  const std::string& text_;
  std::string source_;
  std::size_t pos_ = 0;
  int line_ = 1;
};

bool is_bare_key_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' ||
         c == '-';
}

// ---------------------------------------------------------------------------
// TOML subset
// ---------------------------------------------------------------------------

class TomlParser {
 public:
  TomlParser(const std::string& text, const std::string& source)
      : sc_(text, source) {}

  Value parse() {
    Value root;
    root.kind = Value::Kind::kTable;
    Value* current = &root;
    for (;;) {
      sc_.skip_all(/*hash_comments=*/true);
      if (sc_.eof()) return root;
      if (sc_.peek() == '[') {
        current = parse_header(root);
      } else {
        parse_pair(*current);
      }
    }
  }

 private:
  // `[name]` or `[[name]]`; returns the table statements now target.
  Value* parse_header(Value& root) {
    const int at = sc_.line();
    sc_.get();  // '['
    const bool array_of_tables = sc_.peek() == '[';
    if (array_of_tables) sc_.get();
    const std::string name = bare_key(at);
    if (sc_.peek() != ']') sc_.fail("expected ']' after table name", at);
    sc_.get();
    if (array_of_tables) {
      if (sc_.peek() != ']') sc_.fail("expected ']]' after table name", at);
      sc_.get();
    }
    end_of_statement(at);

    auto it = root.table.find(name);
    if (array_of_tables) {
      if (it == root.table.end()) {
        Value arr;
        arr.kind = Value::Kind::kArray;
        arr.line = at;
        it = root.table.emplace(name, std::move(arr)).first;
      } else if (!it->second.is_array()) {
        sc_.fail("'" + name + "' is already defined as a value", at);
      }
      Value entry;
      entry.kind = Value::Kind::kTable;
      entry.line = at;
      it->second.array.push_back(std::move(entry));
      return &it->second.array.back();
    }
    if (it != root.table.end()) {
      sc_.fail("table '" + name + "' defined twice", at);
    }
    Value tbl;
    tbl.kind = Value::Kind::kTable;
    tbl.line = at;
    return &root.table.emplace(name, std::move(tbl)).first->second;
  }

  void parse_pair(Value& table) {
    const int at = sc_.line();
    const std::string key = bare_key(at);
    sc_.skip_inline();
    if (sc_.peek() != '=') sc_.fail("expected '=' after key '" + key + "'", at);
    sc_.get();
    sc_.skip_inline();
    Value v = parse_value();
    end_of_statement(at);
    if (table.table.count(key) != 0) {
      sc_.fail("key '" + key + "' defined twice", at);
    }
    table.table.emplace(key, std::move(v));
  }

  Value parse_value() {
    // Inside arrays newlines are allowed (multi-line arrays); skip_all is
    // only reached from there — scalars use the statement-level skips.
    const char c = sc_.peek();
    const int at = sc_.line();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.line = at;
      v.s = sc_.parse_quoted_string();
      return v;
    }
    if (c == '[') {
      sc_.get();
      Value v;
      v.kind = Value::Kind::kArray;
      v.line = at;
      for (;;) {
        sc_.skip_all(/*hash_comments=*/true);
        if (sc_.eof()) sc_.fail("unterminated array", at);
        if (sc_.peek() == ']') {
          sc_.get();
          return v;
        }
        v.array.push_back(parse_value());
        sc_.skip_all(/*hash_comments=*/true);
        if (sc_.peek() == ',') {
          sc_.get();
        } else if (sc_.peek() != ']') {
          sc_.fail("expected ',' or ']' in array", at);
        }
      }
    }
    if (c == 't' || c == 'f') {
      const std::string word = bare_key(at);
      Value v;
      v.line = at;
      v.kind = Value::Kind::kBool;
      if (word == "true") {
        v.b = true;
      } else if (word == "false") {
        v.b = false;
      } else {
        sc_.fail("unknown value '" + word + "'", at);
      }
      return v;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '+' ||
        c == '-' || c == '.') {
      return sc_.parse_number();
    }
    sc_.fail("expected a value");
  }

  std::string bare_key(int at) {
    std::string key;
    while (!sc_.eof() && is_bare_key_char(sc_.peek())) key += sc_.get();
    if (key.empty()) sc_.fail("expected a name", at);
    return key;
  }

  // After a statement only a comment may follow on the line.
  void end_of_statement(int at) {
    sc_.skip_inline();
    if (!sc_.eof() && sc_.peek() != '\n') {
      sc_.fail("unexpected text after statement", at);
    }
  }

  Scanner sc_;
};

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

class JsonParser {
 public:
  JsonParser(const std::string& text, const std::string& source)
      : sc_(text, source) {}

  Value parse() {
    sc_.skip_all(/*hash_comments=*/false);
    Value v = parse_value();
    sc_.skip_all(/*hash_comments=*/false);
    if (!sc_.eof()) sc_.fail("trailing text after document");
    return v;
  }

 private:
  Value parse_value() {
    const char c = sc_.peek();
    const int at = sc_.line();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::kString;
      v.line = at;
      v.s = sc_.parse_quoted_string();
      return v;
    }
    if (c == 't' || c == 'f') return parse_bool();
    if (c == 'n') sc_.fail("null is not a valid spec value");
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '-' ||
        c == '+') {
      return sc_.parse_number();
    }
    sc_.fail("expected a value");
  }

  Value parse_object() {
    const int at = sc_.line();
    sc_.get();  // '{'
    Value v;
    v.kind = Value::Kind::kTable;
    v.line = at;
    sc_.skip_all(false);
    if (sc_.peek() == '}') {
      sc_.get();
      return v;
    }
    for (;;) {
      sc_.skip_all(false);
      if (sc_.peek() != '"') sc_.fail("expected a quoted object key");
      const int key_line = sc_.line();
      const std::string key = sc_.parse_quoted_string();
      sc_.skip_all(false);
      if (sc_.peek() != ':') sc_.fail("expected ':' after key '" + key + "'");
      sc_.get();
      sc_.skip_all(false);
      if (v.table.count(key) != 0) {
        sc_.fail("key '" + key + "' defined twice", key_line);
      }
      v.table.emplace(key, parse_value());
      sc_.skip_all(false);
      const char c = sc_.peek();
      if (c == ',') {
        sc_.get();
      } else if (c == '}') {
        sc_.get();
        return v;
      } else {
        sc_.fail("expected ',' or '}' in object", at);
      }
    }
  }

  Value parse_array() {
    const int at = sc_.line();
    sc_.get();  // '['
    Value v;
    v.kind = Value::Kind::kArray;
    v.line = at;
    sc_.skip_all(false);
    if (sc_.peek() == ']') {
      sc_.get();
      return v;
    }
    for (;;) {
      sc_.skip_all(false);
      v.array.push_back(parse_value());
      sc_.skip_all(false);
      const char c = sc_.peek();
      if (c == ',') {
        sc_.get();
      } else if (c == ']') {
        sc_.get();
        return v;
      } else {
        sc_.fail("expected ',' or ']' in array", at);
      }
    }
  }

  Value parse_bool() {
    const int at = sc_.line();
    std::string word;
    while (!sc_.eof() && std::isalpha(static_cast<unsigned char>(sc_.peek()))) {
      word += sc_.get();
    }
    Value v;
    v.kind = Value::Kind::kBool;
    v.line = at;
    if (word == "true") {
      v.b = true;
    } else if (word == "false") {
      v.b = false;
    } else {
      sc_.fail("unknown value '" + word + "'", at);
    }
    return v;
  }

  Scanner sc_;
};

}  // namespace

Value parse_toml(const std::string& text, const std::string& source) {
  return TomlParser(text, source).parse();
}

Value parse_json(const std::string& text, const std::string& source) {
  return JsonParser(text, source).parse();
}

Value parse_text(const std::string& text, const std::string& source) {
  for (const char c : text) {
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') continue;
    if (c == '{') return parse_json(text, source);
    break;
  }
  return parse_toml(text, source);
}

Value parse_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("spec: cannot open " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    text.append(buf, n);
  }
  std::fclose(f);
  return parse_text(text, path);
}

}  // namespace g80211::spec
