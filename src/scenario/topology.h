// Canonical node layouts for the paper's experiments.
//
// Distances are chosen so the physics does what each experiment needs:
//  * pairs_in_range: everybody decodes everybody (the paper's default);
//    receivers sit closer to their own senders than any foreign receiver
//    does, so a victim's real MAC ACK captures a spoofed one whenever both
//    are transmitted (the paper's Section IV-B evaluation setup; with
//    two-ray/Friis propagation and a 10 dB capture threshold the distance
//    ratio must exceed ~sqrt(10)).
//  * shared_ap: one sender (AP) with several clients.
//  * hidden_pairs: two sender->receiver pairs whose senders cannot sense
//    each other while both receivers hear both senders (Fig 18): requires
//    finite ranges, returned in the struct.
//  * distance_sweep: Fig 23's two pairs separated by a variable distance
//    with 55 m communication and 99 m interference ranges.
#pragma once

#include <vector>

#include "src/phy/propagation.h"

namespace g80211 {

struct PairLayout {
  std::vector<Position> senders;
  std::vector<Position> receivers;
};

// n sender->receiver pairs, all mutually in range. Sender i sits 2 m from
// its receiver; foreign stations are >= 3.2x farther (capture-safe).
PairLayout pairs_in_range(int n_pairs);

// One AP at the origin with n clients on a 2 m-radius arc (equidistant, so
// no client is capture-privileged at the AP).
struct SharedApLayout {
  Position ap;
  std::vector<Position> clients;
};
SharedApLayout shared_ap(int n_clients);

// Shared-AP layout for the ACK-spoofing scenarios (paper Section IV-B):
// the prospective greedy receiver (the LAST client) sits 4x farther from
// the AP than the victims, so a victim's real MAC ACK always captures a
// simultaneous spoof at the AP — isolating retransmission suppression
// from the jamming side effect, as the paper's evaluation does.
SharedApLayout spoof_shared_ap(int n_clients);

struct HiddenPairsLayout {
  std::vector<Position> senders;    // 2 senders, mutually out of CS range
  std::vector<Position> receivers;  // 2 receivers, hearing both senders
  double comm_range_m = 0;
  double cs_range_m = 0;
};
HiddenPairsLayout hidden_pairs();

// Fig 23: pair 1 fixed, pair 2 at `separation_m`; 55/99 m ranges.
struct DistanceSweepLayout {
  Position s1, r1, s2, r2;
  double comm_range_m = 55.0;
  double cs_range_m = 99.0;
};
DistanceSweepLayout distance_sweep(double separation_m);

}  // namespace g80211
