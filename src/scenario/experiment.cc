#include "src/scenario/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "src/runner/campaign.h"

namespace g80211 {

bool quick_mode() {
  const char* v = std::getenv("G80211_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

int default_runs() { return quick_mode() ? 2 : 5; }

Time default_measure() { return quick_mode() ? seconds(2) : seconds(10); }

std::vector<double> median_over_seeds(
    int runs, std::uint64_t base_seed,
    const std::function<std::vector<double>(std::uint64_t)>& fn) {
  if (runs <= 0) {
    throw std::invalid_argument("median_over_seeds: runs must be > 0, got " +
                                std::to_string(runs));
  }
  // One anonymous single-point campaign: seeds fan out across the worker
  // pool (G80211_JOBS), aggregation stays in seed order. Metric-size
  // mismatches between runs throw from Campaign::run, in Release builds
  // too.
  Campaign campaign("", {});
  campaign.add("", 0.0, base_seed, runs, fn);
  return campaign.run().at(0).median;
}

TableWriter::TableWriter(std::vector<std::string> columns, int width)
    : columns_(std::move(columns)), width_(width) {}

void TableWriter::print_header() const {
  for (const auto& c : columns_) std::printf("%*s", width_, c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    for (int j = 0; j < width_; ++j) std::printf("-");
  }
  std::printf("\n");
}

void TableWriter::print_row(const std::vector<double>& values,
                            const std::string& label) const {
  if (!label.empty()) std::printf("%*s", width_, label.c_str());
  for (const double v : values) std::printf("%*.4g", width_, v);
  std::printf("\n");
}

void TableWriter::print_text_row(const std::vector<std::string>& cells) const {
  for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
  std::printf("\n");
}

}  // namespace g80211
