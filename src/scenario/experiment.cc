#include "src/scenario/experiment.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "src/analysis/stats.h"

namespace g80211 {

bool quick_mode() {
  const char* v = std::getenv("G80211_QUICK");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

int default_runs() { return quick_mode() ? 2 : 5; }

Time default_measure() { return quick_mode() ? seconds(2) : seconds(10); }

std::vector<double> median_over_seeds(
    int runs, std::uint64_t base_seed,
    const std::function<std::vector<double>(std::uint64_t)>& fn) {
  assert(runs > 0);
  std::vector<std::vector<double>> per_metric;
  for (int r = 0; r < runs; ++r) {
    const std::vector<double> metrics = fn(base_seed + static_cast<std::uint64_t>(r));
    if (per_metric.empty()) per_metric.resize(metrics.size());
    assert(metrics.size() == per_metric.size());
    for (std::size_t i = 0; i < metrics.size(); ++i) {
      per_metric[i].push_back(metrics[i]);
    }
  }
  std::vector<double> medians;
  medians.reserve(per_metric.size());
  for (auto& samples : per_metric) medians.push_back(median(samples));
  return medians;
}

TableWriter::TableWriter(std::vector<std::string> columns, int width)
    : columns_(std::move(columns)), width_(width) {}

void TableWriter::print_header() const {
  for (const auto& c : columns_) std::printf("%*s", width_, c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    for (int j = 0; j < width_; ++j) std::printf("-");
  }
  std::printf("\n");
}

void TableWriter::print_row(const std::vector<double>& values,
                            const std::string& label) const {
  std::size_t col = 0;
  if (!label.empty()) {
    std::printf("%*s", width_, label.c_str());
    ++col;
  }
  for (const double v : values) {
    std::printf("%*.4g", width_, v);
    ++col;
  }
  (void)col;
  std::printf("\n");
}

void TableWriter::print_text_row(const std::vector<std::string>& cells) const {
  for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
  std::printf("\n");
}

}  // namespace g80211
