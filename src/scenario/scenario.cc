#include "src/scenario/scenario.h"

#include "src/sim/check.h"

namespace g80211 {
namespace {

WifiParams params_for(Standard s) {
  switch (s) {
    case Standard::A80211:
      return WifiParams::a6();
    case Standard::G80211:
      return WifiParams::g54();
    case Standard::B80211:
      break;
  }
  return WifiParams::b11();
}

}  // namespace

Sim::Sim(const SimConfig& cfg)
    : cfg_(cfg),
      params_(params_for(cfg.standard)),
      sched_(cfg.scheduler_backend),
      rng_(cfg.seed * 0x9e3779b97f4a7c15ULL + 0x517cc1b727220a95ULL),
      channel_(sched_, params_) {
  channel_.set_ranges(cfg.comm_range_m, cfg.cs_range_m);
  channel_.capture_threshold = cfg.capture_threshold;
  channel_.error_model().set_default_ber(cfg.default_ber);
}

Node& Sim::add_node(Position pos) { return add_node(pos, rng_.fork()); }

Node& Sim::add_node(Position pos, Rng rng) {
  const int id = next_node_id_++;
  nodes_.push_back(std::make_unique<Node>(sched_, channel_, id, pos, rng));
  nodes_.back()->mac().set_rts_cts(cfg_.rts_cts);
  return *nodes_.back();
}

void Sim::set_build_counters(int next_node_id, int next_flow_id,
                             int flows_started) {
  G80211_CHECK(next_node_id >= next_node_id_ && next_flow_id >= next_flow_id_ &&
               "build counters only move forward");
  next_node_id_ = next_node_id;
  next_flow_id_ = next_flow_id;
  flows_started_ = flows_started;
}

Sim::UdpFlow Sim::add_udp_flow(Node& src, Node& dst, double rate_mbps,
                               int payload_bytes) {
  return add_udp_flow(src, dst, rate_mbps, payload_bytes, rng_.fork());
}

Sim::UdpFlow Sim::add_udp_flow(Node& src, Node& dst, double rate_mbps,
                               int payload_bytes, Rng rng) {
  UdpFlow flow;
  flow.flow_id = next_flow_id_++;
  // Stagger flow starts by 1 ms to avoid pathological synchronisation.
  flow.source = &add_cbr_source(src, flow.flow_id, dst.id(), rate_mbps,
                                payload_bytes, rng,
                                milliseconds(flows_started_++));
  flow.sink = &add_udp_sink(dst, flow.flow_id, payload_bytes);
  return flow;
}

CbrSource& Sim::add_cbr_source(Node& src, int flow_id, int dst_node,
                               double rate_mbps, int payload_bytes, Rng rng,
                               Time start_at) {
  CbrSource::Config cc;
  cc.payload_bytes = payload_bytes;
  cc.rate_mbps = rate_mbps;
  cbr_sources_.push_back(std::make_unique<CbrSource>(sched_, cc, flow_id,
                                                     src.id(), dst_node, rng));
  CbrSource& source = *cbr_sources_.back();
  source.output = [&src](PacketPtr p) { src.send_packet(std::move(p)); };
  source.start(start_at);
  return source;
}

UdpSink& Sim::add_udp_sink(Node& dst, int flow_id, int payload_bytes) {
  udp_sinks_.push_back(std::make_unique<UdpSink>(sched_, payload_bytes));
  dst.register_sink(flow_id, udp_sinks_.back().get());
  return *udp_sinks_.back();
}

Sim::TcpFlow Sim::add_tcp_flow(Node& src, Node& dst, TcpSender::Config cfg) {
  TcpFlow flow;
  flow.flow_id = next_flow_id_++;
  tcp_senders_.push_back(std::make_unique<TcpSender>(sched_, cfg, flow.flow_id,
                                                     src.id(), dst.id()));
  flow.sender = tcp_senders_.back().get();
  flow.sender->output = [&src](PacketPtr p) { src.send_packet(std::move(p)); };
  src.register_sink(flow.flow_id, flow.sender);  // TCP ACKs come back here

  tcp_sinks_.push_back(std::make_unique<TcpSink>(sched_, flow.flow_id, dst.id(),
                                                 src.id(), cfg.mss_bytes,
                                                 cfg.header_bytes));
  flow.sink = tcp_sinks_.back().get();
  flow.sink->output = [&dst](PacketPtr p) { dst.send_packet(std::move(p)); };
  dst.register_sink(flow.flow_id, flow.sink);

  flow.sender->start(milliseconds(flows_started_++));
  return flow;
}

WiredHost& Sim::add_wired_host(Node& ap, Time one_way_latency) {
  wired_links_.push_back(std::make_unique<WiredLink>(sched_, one_way_latency));
  const int id = next_node_id_++;  // host ids share the node id space
  wired_hosts_.push_back(
      std::make_unique<WiredHost>(id, *wired_links_.back(), ap));
  return *wired_hosts_.back();
}

Sim::TcpFlow Sim::add_remote_tcp_flow(WiredHost& host, Node& ap, Node& dst,
                                      TcpSender::Config cfg) {
  TcpFlow flow;
  flow.flow_id = next_flow_id_++;
  tcp_senders_.push_back(std::make_unique<TcpSender>(sched_, cfg, flow.flow_id,
                                                     host.id(), dst.id()));
  flow.sender = tcp_senders_.back().get();
  flow.sender->output = [&host](PacketPtr p) { host.send_packet(std::move(p)); };
  host.register_sink(flow.flow_id, flow.sender);

  tcp_sinks_.push_back(std::make_unique<TcpSink>(sched_, flow.flow_id, dst.id(),
                                                 host.id(), cfg.mss_bytes,
                                                 cfg.header_bytes));
  flow.sink = tcp_sinks_.back().get();
  flow.sink->output = [&dst](PacketPtr p) { dst.send_packet(std::move(p)); };
  dst.register_sink(flow.flow_id, flow.sink);
  // The station reaches the remote host through the AP.
  dst.set_route(host.id(), ap.id());

  flow.sender->start(milliseconds(flows_started_++));
  return flow;
}

NavInflationPolicy& Sim::make_nav_inflator(Node& receiver, NavFrameMask mask,
                                           Time inflation, double gp) {
  auto policy = std::make_unique<NavInflationPolicy>(mask, inflation, gp);
  auto& ref = *policy;
  policies_.push_back(std::move(policy));
  receiver.mac().set_greedy_policy(&ref);
  return ref;
}

AckSpoofingPolicy& Sim::make_ack_spoofer(Node& receiver, double gp,
                                         std::set<int> victims) {
  auto policy = std::make_unique<AckSpoofingPolicy>(gp, std::move(victims));
  auto& ref = *policy;
  policies_.push_back(std::move(policy));
  receiver.mac().set_greedy_policy(&ref);
  return ref;
}

FakeAckPolicy& Sim::make_fake_acker(Node& receiver, double gp) {
  auto policy = std::make_unique<FakeAckPolicy>(gp);
  auto& ref = *policy;
  policies_.push_back(std::move(policy));
  receiver.mac().set_greedy_policy(&ref);
  return ref;
}

void Sim::run() {
  begin_run();
  advance_to(end_time());
}

void Sim::begin_run() {
  G80211_CHECK(!ran_ && "Sim::run() may only be called once; use run_more()");
  ran_ = true;
  sched_.at(cfg_.warmup, [this] {
    for (auto& s : udp_sinks_) s->reset();
    for (auto& s : tcp_sinks_) s->reset();
    for (auto& s : tcp_senders_) s->reset_stats();
  });
}

void Sim::advance_to(Time t) { sched_.run_until(t); }

void Sim::run_more(Time extra) {
  G80211_CHECK(ran_);
  sched_.run_until(sched_.now() + extra);
}

}  // namespace g80211
