// Experiment harness utilities: median-of-seeds runs (the paper reports
// the median of 5 runs per scenario), quick-mode scaling for CI, and a
// small fixed-width table printer for the paper-style output every bench
// emits.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace g80211 {

// Environment variable G80211_QUICK=1 shrinks runs/durations (used by the
// test suite so integration tests stay fast; benches run full-size).
bool quick_mode();

// Number of seeded repetitions per data point: 5 (paper) or 2 in quick mode.
int default_runs();

// Measurement window per run: 10 s, or 2 s in quick mode.
Time default_measure();

// Run `fn` for `runs` seeds derived from `base_seed`; return the
// element-wise median of the returned metric vectors. Backed by the
// campaign runner (src/runner/campaign.h): the seeds execute concurrently
// on the G80211_JOBS worker pool, and the aggregate is seed-ordered so the
// result is identical at any thread count. `fn` must be a pure function
// of the seed (it runs on worker threads). Throws std::invalid_argument
// on runs <= 0 and std::runtime_error when the per-seed metric vectors
// disagree in size — Release builds fail loudly instead of silently
// mis-aggregating.
std::vector<double> median_over_seeds(
    int runs, std::uint64_t base_seed,
    const std::function<std::vector<double>(std::uint64_t)>& fn);

// Fixed-width paper-style table printer. NOT thread-safe: like all stdout
// output in the harness it must only be used from the aggregation (main)
// thread, after Campaign::run has returned — never from job bodies.
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> columns, int width = 12);

  void print_header() const;
  void print_row(const std::vector<double>& values,
                 const std::string& label = "") const;
  void print_text_row(const std::vector<std::string>& cells) const;

 private:
  std::vector<std::string> columns_;
  int width_;
};

}  // namespace g80211
