#include "src/scenario/sharded.h"

#include <algorithm>
#include <numeric>

#include "src/scenario/topology.h"
#include "src/sim/check.h"

namespace g80211 {
namespace {

// Shard-count-invariant RNG streams: every node and every flow seeds from
// (global seed, kind, global id) so its whole random future is independent
// of which shard builds it and of how many streams other shards forked
// first. The mixing constants are splitmix64's, like Sim's own root seed.
constexpr std::uint64_t kNodeStream = 1;
constexpr std::uint64_t kFlowStream = 2;

std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t kind,
                          std::uint64_t index) {
  std::uint64_t h = seed * 0x9e3779b97f4a7c15ULL + 0x517cc1b727220a95ULL;
  h ^= kind * 0xbf58476d1ce4e5b9ULL;
  h ^= index * 0x94d049bb133111ebULL;
  return h;
}

// Global build bases: cell b's node ids, flow ids and start-stagger slots
// are functions of the spec alone, never of the partition.
struct BssBases {
  int node = 0;     // AP id; stations follow
  int flow = 0;     // first downlink flow id
  int stagger = 0;  // first start-stagger slot (flow starts at ms(slot))
};

std::vector<BssBases> compute_bases(const ShardedWorldSpec& spec) {
  std::vector<BssBases> bases(spec.bsss.size());
  int node = 0, flow = 1, stagger = 0;
  for (std::size_t b = 0; b < spec.bsss.size(); ++b) {
    bases[b] = BssBases{node, flow, stagger};
    node += 1 + spec.bsss[b].n_stations;
    flow += spec.bsss[b].n_stations;
    stagger += spec.bsss[b].n_stations;
  }
  return bases;
}

}  // namespace

std::vector<std::vector<int>> partition_bsss(const ShardedWorldSpec& spec,
                                             int num_shards) {
  const int n = static_cast<int>(spec.bsss.size());
  G80211_CHECK(num_shards >= 1 && num_shards <= n &&
               "shard count must be in [1, #BSS]");
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&spec](int a, int b) {
    const Position& pa = spec.bsss[static_cast<std::size_t>(a)].ap;
    const Position& pb = spec.bsss[static_cast<std::size_t>(b)].ap;
    if (pa.x != pb.x) return pa.x < pb.x;
    if (pa.y != pb.y) return pa.y < pb.y;
    return a < b;
  });
  // Greedy contiguous cut balanced by station count: walk the sorted cells
  // and close a shard once it holds its proportional share of the stations
  // (always leaving at least one cell per remaining shard).
  int total_stations = 0;
  for (const HotspotBssSpec& b : spec.bsss) total_stations += b.n_stations;
  std::vector<std::vector<int>> shards(static_cast<std::size_t>(num_shards));
  int shard = 0, taken = 0;
  for (int i = 0; i < n; ++i) {
    shards[static_cast<std::size_t>(shard)].push_back(order[i]);
    taken += spec.bsss[static_cast<std::size_t>(order[i])].n_stations;
    const int remaining_cells = n - i - 1;
    const int remaining_shards = num_shards - shard - 1;
    const bool quota_met =
        static_cast<long long>(taken) * num_shards >=
        static_cast<long long>(total_stations) * (shard + 1);
    if (remaining_shards > 0 &&
        (quota_met || remaining_cells == remaining_shards)) {
      ++shard;
      }
  }
  return shards;
}

ShardedSim::ShardedSim(const ShardedWorldSpec& spec, int num_shards,
                       bool threaded)
    : pool_(threaded && num_shards > 1 ? static_cast<unsigned>(num_shards)
                                       : 0u),
      assignment_(partition_bsss(spec, num_shards)) {
  try {
    for (const CrossFlowSpec& cf : spec.cross_flows) {
      G80211_CHECK(cf.latency > 0 && "cross-flow latency must be positive");
      G80211_CHECK(cf.src_bss >= 0 &&
                   cf.src_bss < static_cast<int>(spec.bsss.size()) &&
                   cf.dst_bss >= 0 &&
                   cf.dst_bss < static_cast<int>(spec.bsss.size()) &&
                   cf.dst_station >= 0 &&
                   cf.dst_station <
                       spec.bsss[static_cast<std::size_t>(cf.dst_bss)]
                           .n_stations &&
                   "cross-flow endpoints out of range");
    }
    // Lookahead: the conservative bound is the minimum one-way latency of
    // any wire — a partition-independent quantity, so epoch boundaries
    // (and with them all delivery orderings) do not depend on the shard
    // count. With no cross flows the whole run is one epoch.
    lookahead_ = spec.base.warmup + spec.base.measure;
    for (const CrossFlowSpec& cf : spec.cross_flows) {
      lookahead_ = std::min(lookahead_, cf.latency);
    }

    shards_.resize(assignment_.size());
    bss_.resize(spec.bsss.size());
    cross_.resize(spec.cross_flows.size());
    mailboxes_.resize(spec.cross_flows.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      shards_[s].bsss = assignment_[s];
      for (int b : assignment_[s]) {
        bss_[static_cast<std::size_t>(b)].shard = static_cast<int>(s);
      }
    }
    // Each shard's Sim is built on its pinned worker so every node, event
    // and packet it will ever own is born on the thread that runs it.
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      pool_.submit_to(
          static_cast<unsigned>(s),
          // pool_.wait() below fences every build_shard before `spec` dies.
          // NOLINTNEXTLINE(callback-capture): frame outlives the pool
          [this, &spec, s] { build_shard(spec, static_cast<int>(s)); });
    }
    pool_.wait();
    validate_partition();
  } catch (...) {
    teardown();
    throw;
  }
}

void ShardedSim::build_shard(const ShardedWorldSpec& spec, int s) {
  const std::vector<BssBases> bases = compute_bases(spec);
  Shard& shard = shards_[static_cast<std::size_t>(s)];
  shard.sim = std::make_unique<Sim>(spec.base);
  Sim& sim = *shard.sim;
  const std::uint64_t seed = spec.base.seed;

  // Build in ascending global index order (cells are independent, so any
  // order yields the same world; ascending keeps each Sim's id counters
  // monotone, which set_build_counters checks).
  std::vector<int> build_order = shard.bsss;
  std::sort(build_order.begin(), build_order.end());
  for (int b : build_order) {
    const HotspotBssSpec& cell = spec.bsss[static_cast<std::size_t>(b)];
    const BssBases& base = bases[static_cast<std::size_t>(b)];
    BssHandles& h = bss_[static_cast<std::size_t>(b)];
    sim.set_build_counters(base.node, base.flow, base.stagger);
    h.ap = &sim.add_node(
        cell.ap, Rng(stream_seed(seed, kNodeStream,
                                 static_cast<std::uint64_t>(base.node))));
    const SharedApLayout arc = shared_ap(cell.n_stations);
    for (int i = 0; i < cell.n_stations; ++i) {
      const Position pos{cell.ap.x + arc.clients[static_cast<std::size_t>(i)].x,
                         cell.ap.y + arc.clients[static_cast<std::size_t>(i)].y};
      h.stations.push_back(&sim.add_node(
          pos, Rng(stream_seed(seed, kNodeStream,
                               static_cast<std::uint64_t>(base.node + 1 + i)))));
    }
    for (int i = 0; i < cell.n_stations; ++i) {
      Sim::UdpFlow flow = sim.add_udp_flow(
          *h.ap, *h.stations[static_cast<std::size_t>(i)], cell.rate_mbps,
          cell.payload_bytes,
          Rng(stream_seed(seed, kFlowStream,
                          static_cast<std::uint64_t>(base.flow + i))));
      h.sinks.push_back(flow.sink);
    }
  }

  // Cross-flow halves owned by this shard. Flow ids and stagger slots
  // continue after every cell's, in spec order; both halves are built from
  // the spec alone so src and dst shards agree without communicating.
  int total_stations = 0;
  for (const HotspotBssSpec& cell : spec.bsss) {
    total_stations += cell.n_stations;
  }
  for (std::size_t c = 0; c < spec.cross_flows.size(); ++c) {
    const CrossFlowSpec& cf = spec.cross_flows[c];
    const int flow_id = 1 + total_stations + static_cast<int>(c);
    CrossHandles& h = cross_[c];
    const int src_shard = bss_[static_cast<std::size_t>(cf.src_bss)].shard;
    const int dst_shard = bss_[static_cast<std::size_t>(cf.dst_bss)].shard;
    if (dst_shard == s) {
      const BssHandles& dst = bss_[static_cast<std::size_t>(cf.dst_bss)];
      h.dst_shard = dst_shard;
      h.dst_ap = dst.ap;
      h.sink = &sim.add_udp_sink(
          *dst.stations[static_cast<std::size_t>(cf.dst_station)], flow_id,
          cf.payload_bytes);
    }
    if (src_shard == s) {
      const BssHandles& src = bss_[static_cast<std::size_t>(cf.src_bss)];
      CbrSource& source = sim.add_cbr_source(
          *src.ap, flow_id,
          bases[static_cast<std::size_t>(cf.dst_bss)].node + 1 + cf.dst_station,
          cf.rate_mbps, cf.payload_bytes,
          Rng(stream_seed(seed, kFlowStream,
                          static_cast<std::uint64_t>(flow_id))),
          milliseconds(total_stations + static_cast<int>(c)));
      // The wired side of the source AP: emissions enter the backhaul
      // mailbox instead of the air. EVERY cross flow routes through the
      // mailbox — even when both ends share a shard — so delivery order is
      // a function of the spec, never of the partition.
      Scheduler* sched = &sim.scheduler();
      EpochMailbox<RoutedPacket>* box = &mailboxes_[c];
      const Time latency = cf.latency;
      const int link = static_cast<int>(c);
      source.output = [sched, box, latency, link](PacketPtr p) {
        box->push(RoutedPacket{sched->now() + latency, link, *p});
      };
      h.source = &source;
    }
  }
}

void ShardedSim::validate_partition() const {
  // Wireless must not straddle the partition: if any node of shard a could
  // sense (or be sensed by) any node of shard b on a shared medium, the
  // split would erase real interference/deferral. Refuse loudly.
  for (std::size_t a = 0; a < shards_.size(); ++a) {
    for (std::size_t b = a + 1; b < shards_.size(); ++b) {
      G80211_CHECK(!shards_[a].sim->channel().may_interact(
                       shards_[b].sim->channel()) &&
                   "partition splits nodes within carrier-sense range; "
                   "wireless may not cross shards");
    }
  }
}

void ShardedSim::schedule_deliveries(int s, const std::vector<Delivery>& batch) {
  // Runs on shard s's pinned worker at the start of an epoch. The packet
  // is re-allocated from THIS thread's arena (it crossed by value) and the
  // event captures only {Node*, PacketPtr} — 16 bytes, well inside the
  // scheduler's in-place closure buffer.
  Sim& sim = *shards_[static_cast<std::size_t>(s)].sim;
  for (const Delivery& d : batch) {
    Node* ap = cross_[static_cast<std::size_t>(d.link)].dst_ap;
    G80211_CHECK(d.deliver_at >= sim.scheduler().now() &&
                 "boundary event arrived in this shard's past "
                 "(lookahead violated)");
    PacketPtr p = make_packet(d.packet);
    sim.scheduler().at(d.deliver_at, [ap, p = std::move(p)]() mutable {
      ap->send_packet(std::move(p));
    });
  }
}

std::vector<ShardedSim::Delivery> ShardedSim::drain_mailboxes() {
  std::vector<Delivery> out;
  for (std::size_t c = 0; c < mailboxes_.size(); ++c) {
    for (auto& stamped : mailboxes_[c].drain()) {
      out.push_back(Delivery{stamped.item.deliver_at, stamped.item.link,
                             stamped.seq, stamped.item.packet});
    }
  }
  // The deterministic merge: (time, link, per-link seq) is identical for
  // every shard count, so ties between links resolve the same way whether
  // the packets came out of one mailbox drain or four.
  std::sort(out.begin(), out.end(), [](const Delivery& a, const Delivery& b) {
    if (a.deliver_at != b.deliver_at) return a.deliver_at < b.deliver_at;
    if (a.link != b.link) return a.link < b.link;
    return a.seq < b.seq;
  });
  return out;
}

void ShardedSim::run() {
  G80211_CHECK(!ran_ && "ShardedSim::run() may only be called once");
  ran_ = true;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Sim* sim = shards_[s].sim.get();
    pool_.submit_to(static_cast<unsigned>(s), [sim] { sim->begin_run(); });
  }
  pool_.wait();

  const Time end = shards_[0].sim->end_time();
  std::vector<Delivery> pending;  // boundary events drained last barrier
  Time now = 0;
  while (now < end) {
    const Time horizon = std::min(now + lookahead_, end);
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      // One task per shard per epoch: inject this shard's deliveries,
      // then advance to the epoch horizon. Both run on the pinned worker.
      std::vector<Delivery> batch;
      for (const Delivery& d : pending) {
        if (cross_[static_cast<std::size_t>(d.link)].dst_shard ==
            static_cast<int>(s)) {
          batch.push_back(d);
        }
      }
      Sim* sim = shards_[s].sim.get();
      pool_.submit_to(
          static_cast<unsigned>(s),
          [this, s, horizon, sim, batch = std::move(batch)] {
            schedule_deliveries(static_cast<int>(s), batch);
            sim->advance_to(horizon);
          });
    }
    // The barrier: returns when every shard reached the horizon, with a
    // happens-before edge over everything the workers wrote — which is
    // what makes the lock-free mailbox drain below sound.
    pool_.wait();
    ++epochs_;
    pending = drain_mailboxes();
    now = horizon;
  }
  // Boundary events emitted in the final epoch would deliver past the end
  // of the run; they are dropped with the mailboxes at teardown.
}

std::vector<ShardedSim::FlowMetrics> ShardedSim::metrics() const {
  // Safe to read from the coordinator: the last pool_.wait() ordered every
  // shard's writes before this load, and nothing runs concurrently now.
  std::vector<FlowMetrics> out;
  int flow_id = 1;
  for (const BssHandles& h : bss_) {
    for (const UdpSink* sink : h.sinks) {
      out.push_back(FlowMetrics{flow_id++, sink->goodput_mbps(),
                                sink->packets(), sink->highest_seq()});
    }
  }
  for (const CrossHandles& h : cross_) {
    out.push_back(FlowMetrics{flow_id++, h.sink->goodput_mbps(),
                              h.sink->packets(), h.sink->highest_seq()});
  }
  return out;
}

std::uint64_t ShardedSim::events_executed() const {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) total += s.sim->scheduler().executed();
  return total;
}

std::uint64_t ShardedSim::cross_packets_routed() const {
  std::uint64_t total = 0;
  for (const EpochMailbox<RoutedPacket>& box : mailboxes_) {
    total += box.total_pushed();
  }
  return total;
}

void ShardedSim::teardown() {
  if (torn_down_) return;
  torn_down_ = true;
  // Each Sim must die on the worker that built it: teardown releases every
  // live packet (queued frames, in-flight TxRecords, pending events) back
  // to that thread's arena. submit_to + wait keeps the confinement.
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    Shard* shard = &shards_[s];
    if (shard->sim == nullptr) continue;
    pool_.submit_to(static_cast<unsigned>(s), [shard] { shard->sim.reset(); });
  }
  try {
    pool_.wait();
  } catch (...) {
    // Teardown runs on destructor/exception paths; a failure here must
    // not terminate. The pool's own destructor still drains cleanly.
  }
}

ShardedSim::~ShardedSim() { teardown(); }

}  // namespace g80211
