// One-stop simulation builder: owns the scheduler, channel, nodes, traffic
// agents, greedy policies and wired infrastructure for a scenario, wires
// them together, and runs warmup + measurement. Every run is a pure
// function of (configuration, seed).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/greedy/ack_spoofing.h"
#include "src/greedy/fake_ack.h"
#include "src/greedy/nav_inflation.h"
#include "src/net/node.h"
#include "src/net/wired_link.h"
#include "src/phy/channel.h"
#include "src/sim/scheduler.h"
#include "src/transport/cbr.h"
#include "src/transport/tcp_sender.h"
#include "src/transport/tcp_sink.h"
#include "src/transport/udp_sink.h"

namespace g80211 {

struct SimConfig {
  Standard standard = Standard::B80211;
  bool rts_cts = true;
  double default_ber = 0.0;
  double comm_range_m = 0.0;  // <= 0: unlimited
  double cs_range_m = 0.0;    // <= 0: same as comm range
  // Physical capture: <= 0 means every overlap is a collision — the
  // behaviour of the paper's default ns-2 experiments, where same-cell
  // stations have comparable powers. The ACK-spoofing scenarios
  // (Section IV-B) explicitly "consider capture effects" and set this to
  // 10 (ns-2's CPThresh) with a capture-safe topology so a victim's real
  // ACK always beats the attacker's spoof.
  double capture_threshold = 0.0;
  Time warmup = seconds(1);
  Time measure = seconds(10);
  std::uint64_t seed = 1;
  // Ready-queue implementation; both produce identical event order (see
  // scheduler.h). Exposed so benchmarks and equivalence tests can A/B.
  SchedulerBackend scheduler_backend = kDefaultSchedulerBackend;
};

class Sim {
 public:
  explicit Sim(const SimConfig& cfg);

  Scheduler& scheduler() { return sched_; }
  Channel& channel() { return channel_; }
  const WifiParams& params() const { return params_; }
  const SimConfig& config() const { return cfg_; }
  Rng fork_rng() { return rng_.fork(); }

  Node& add_node(Position pos);
  // Sharded-build variant: the node draws from `rng` instead of forking
  // this sim's root stream, so the node's whole RNG future is a function of
  // (global seed, its cell) and not of how many nodes other shards built
  // first. ShardedSim uses this to make N-shard worlds byte-identical to
  // the 1-shard world.
  Node& add_node(Position pos, Rng rng);
  // Index-based access; only valid while node ids are the default dense
  // 0..n-1 sequence (i.e. set_build_counters() was never used to re-base
  // ids — sharded builders keep their own registry instead).
  Node& node(int id) { return *nodes_.at(static_cast<std::size_t>(id)); }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // Pin the id/stagger counters the builder APIs consume next. A BSS built
  // at the same bases produces identical node ids, flow ids and flow start
  // times no matter which Sim (shard) it lands in — the identity
  // ShardedSim's determinism contract rests on. Counters only move
  // forward implicitly; re-basing is the caller's responsibility.
  void set_build_counters(int next_node_id, int next_flow_id,
                          int flows_started);

  // --- flows ---------------------------------------------------------------
  struct UdpFlow {
    int flow_id = 0;
    CbrSource* source = nullptr;
    UdpSink* sink = nullptr;
    double goodput_mbps() const { return sink->goodput_mbps(); }
  };
  // CBR/UDP from src to dst; default rate saturates both PHYs.
  UdpFlow add_udp_flow(Node& src, Node& dst, double rate_mbps = 12.0,
                       int payload_bytes = 1024);
  // Sharded-build variant: explicit source jitter stream (see
  // add_node(pos, rng)).
  UdpFlow add_udp_flow(Node& src, Node& dst, double rate_mbps,
                       int payload_bytes, Rng rng);

  // Piecewise flow assembly for flows whose endpoints live in different
  // Sims (the sharded engine's cross-shard wired flows): the source half
  // and the sink half are created in their own shards and stitched
  // together by the caller's routing/forwarding hooks. `start_at` is
  // explicit — cross-sim flows cannot share one Sim's stagger counter.
  CbrSource& add_cbr_source(Node& src, int flow_id, int dst_node,
                            double rate_mbps, int payload_bytes, Rng rng,
                            Time start_at);
  UdpSink& add_udp_sink(Node& dst, int flow_id, int payload_bytes);

  struct TcpFlow {
    int flow_id = 0;
    TcpSender* sender = nullptr;
    TcpSink* sink = nullptr;
    double goodput_mbps() const { return sink->goodput_mbps(); }
  };
  TcpFlow add_tcp_flow(Node& src, Node& dst,
                       TcpSender::Config cfg = TcpSender::Config{});

  // Remote sender behind a wired link (Fig 15/16): creates the host and the
  // TCP flow host -> dst relayed by `ap`.
  WiredHost& add_wired_host(Node& ap, Time one_way_latency);
  TcpFlow add_remote_tcp_flow(WiredHost& host, Node& ap, Node& dst,
                              TcpSender::Config cfg = TcpSender::Config{});

  // --- greedy policies (owned by the sim) ----------------------------------
  NavInflationPolicy& make_nav_inflator(Node& receiver, NavFrameMask mask,
                                        Time inflation, double gp = 1.0);
  AckSpoofingPolicy& make_ack_spoofer(Node& receiver, double gp = 1.0,
                                      std::set<int> victims = {});
  FakeAckPolicy& make_fake_acker(Node& receiver, double gp = 1.0);

  // Reserve a flow id (for probe streams etc.).
  int reserve_flow_id() { return next_flow_id_++; }

  // Run warmup + measurement. Sinks and TCP statistics reset at the end of
  // warmup, so goodput covers exactly the measurement window.
  void run();
  // Extend the run (callable after run()).
  void run_more(Time extra);

  // Sliced execution for the epoch-driven sharded engine: begin_run()
  // schedules the warmup reset (callable once, like run()), then
  // advance_to() moves the clock forward in lookahead-bounded slices.
  // Slicing is transparent: begin_run() + advance_to(end_time()) executes
  // the exact event sequence of run(), and so does any monotone sequence
  // of horizons ending at end_time() — the scheduler fires events in
  // (time, seq) order regardless of where run_until() pauses.
  void begin_run();
  void advance_to(Time t);
  Time end_time() const { return cfg_.warmup + cfg_.measure; }

 private:
  SimConfig cfg_;
  WifiParams params_;
  Scheduler sched_;
  Rng rng_;
  Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<CbrSource>> cbr_sources_;
  std::vector<std::unique_ptr<UdpSink>> udp_sinks_;
  std::vector<std::unique_ptr<TcpSender>> tcp_senders_;
  std::vector<std::unique_ptr<TcpSink>> tcp_sinks_;
  std::vector<std::unique_ptr<GreedyPolicy>> policies_;
  std::vector<std::unique_ptr<WiredLink>> wired_links_;
  std::vector<std::unique_ptr<WiredHost>> wired_hosts_;
  int next_flow_id_ = 1;
  int next_node_id_ = 0;
  int flows_started_ = 0;
  bool ran_ = false;
};

}  // namespace g80211
