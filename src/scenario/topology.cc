#include "src/scenario/topology.h"

#include <cmath>

namespace g80211 {

PairLayout pairs_in_range(int n_pairs) {
  // Pairs on parallel rows 9 m apart; within a pair, sender and receiver
  // are 2 m apart. Foreign-station distances are then >= 9 m > 3.2 * 2 m,
  // so a station's own peer always wins capture against foreign stations.
  PairLayout layout;
  for (int i = 0; i < n_pairs; ++i) {
    const double y = 9.0 * i;
    layout.senders.push_back({0.0, y});
    layout.receivers.push_back({2.0, y});
  }
  return layout;
}

SharedApLayout shared_ap(int n_clients) {
  SharedApLayout layout;
  layout.ap = {0.0, 0.0};
  constexpr double kPi = 3.14159265358979323846;
  const double radius = 2.0;
  for (int i = 0; i < n_clients; ++i) {
    const double angle = 2.0 * kPi * i / n_clients;
    layout.clients.push_back({radius * std::cos(angle), radius * std::sin(angle)});
  }
  return layout;
}

SharedApLayout spoof_shared_ap(int n_clients) {
  SharedApLayout layout;
  layout.ap = {0.0, 0.0};
  constexpr double kPi = 3.14159265358979323846;
  // Victims at 1.5 m, the greedy receiver at 6 m: Friis power ratio
  // (6/1.5)^2 = 16 > the 10x capture threshold.
  for (int i = 0; i + 1 < n_clients; ++i) {
    const double angle = kPi * i / std::max(1, n_clients - 1);
    layout.clients.push_back({1.5 * std::cos(angle), 1.5 * std::sin(angle)});
  }
  layout.clients.push_back({0.0, -6.0});
  return layout;
}

HiddenPairsLayout hidden_pairs() {
  HiddenPairsLayout layout;
  // Senders 200 m apart, receivers between them; 110 m ranges mean each
  // receiver hears both senders (95 m / 105 m) but the senders cannot
  // sense each other. The 105/95 power ratio (~1.5 with two-ray) is far
  // below the 10x capture threshold, so overlaps collide.
  layout.senders = {{0.0, 0.0}, {200.0, 0.0}};
  layout.receivers = {{95.0, 0.0}, {105.0, 0.0}};
  layout.comm_range_m = 110.0;
  layout.cs_range_m = 110.0;
  return layout;
}

DistanceSweepLayout distance_sweep(double separation_m) {
  DistanceSweepLayout layout;
  layout.s1 = {0.0, 0.0};
  layout.r1 = {5.0, 0.0};
  layout.s2 = {separation_m, 0.0};
  layout.r2 = {separation_m + 5.0, 0.0};
  return layout;
}

}  // namespace g80211
