// Conservative parallel discrete-event engine: one multi-BSS world sharded
// across cores.
//
// A ShardedWorldSpec describes several 802.11 hotspot cells (BSSs) plus
// optional wired backhaul flows between cells. ShardedSim partitions the
// cells spatially into shards, builds each shard as its own complete Sim
// (own Scheduler, EventPool, Channel, nodes and traffic agents), and runs
// them in lockstep epochs on a pinned ThreadPool:
//
//   epoch k:   every shard advances its clock to h_k = k * lookahead
//   barrier:   the coordinator drains the cross-shard mailboxes, merges
//              the boundary events deterministically, and hands each
//              shard its deliveries for epoch k+1
//
// The lookahead is the classic conservative (Chandy-Misra-Bryant) bound:
// the minimum one-way latency of any cross-shard wired link. A packet
// handed to the wire at time t <= h_k arrives at t + latency >= h_k, i.e.
// never inside an epoch the destination shard has already simulated, so
// barrier-drained delivery can never violate causality. Wireless never
// crosses shards at all: the constructor walks every cross-shard pair of
// channels and refuses (throws g80211::CheckFailure) any partition where a
// node of one shard could carrier-sense a node of another — splitting such
// a world would silently change the physics.
//
// Determinism contract: the metrics() vector is byte-identical for every
// shard count (1, 2, ..., #BSS) and for threaded vs inline execution.
// Three mechanisms carry the contract:
//   * every node and flow draws from an RNG stream derived from
//     (global seed, its global id) — not from a per-Sim fork sequence, so
//     streams do not depend on which shard built how many nodes first;
//   * node ids, flow ids and flow start staggers come from global per-BSS
//     bases (Sim::set_build_counters), so a BSS is built identically no
//     matter which Sim it lands in;
//   * cross-shard deliveries go through the mailbox/barrier machinery at
//     EVERY shard count (including 1), sorted by (deliver_at, link, seq) —
//     a shard-count-invariant key — before being rescheduled.
// A single shard run with no worker threads is therefore the bit-exact
// sequential reference (the G80211_JOBS=1 convention of the campaign
// runner), and N shards reproduce it exactly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/net/node.h"
#include "src/runner/thread_pool.h"
#include "src/scenario/scenario.h"
#include "src/sim/mailbox.h"
#include "src/transport/cbr.h"
#include "src/transport/udp_sink.h"

namespace g80211 {

// One hotspot cell: an AP at `ap` pushing saturated-or-not UDP downlink to
// `n_stations` stations on a 2 m arc around it (the shared_ap layout,
// translated to the cell's position).
struct HotspotBssSpec {
  Position ap;
  int n_stations = 4;
  double rate_mbps = 12.0;  // downlink CBR rate per station
  int payload_bytes = 1024;
};

// A wired backhaul flow between two cells: a CBR source on the wired side
// of the source cell's AP pushes UDP across a fixed-latency lossless pipe
// to the destination cell's AP, which relays it over the air to one of its
// stations. The latency is the flow's contribution to the engine's
// lookahead, so it must be strictly positive.
struct CrossFlowSpec {
  int src_bss = 0;
  int dst_bss = 0;
  int dst_station = 0;  // station index within dst_bss
  Time latency = milliseconds(2);
  double rate_mbps = 1.0;
  int payload_bytes = 1024;
};

struct ShardedWorldSpec {
  SimConfig base;  // per-shard SimConfig (ranges must isolate the cells)
  std::vector<HotspotBssSpec> bsss;
  std::vector<CrossFlowSpec> cross_flows;
};

// Spatial auto-partitioner: cells sorted by AP position (x, then y, then
// spec index) and cut into `num_shards` contiguous chunks balanced by
// station count. Returns shard -> list of BSS indices; deterministic.
std::vector<std::vector<int>> partition_bsss(const ShardedWorldSpec& spec,
                                             int num_shards);

class ShardedSim {
 public:
  // Builds the world across `num_shards` shards. With `threaded` (and more
  // than one shard) each shard is pinned 1:1 to a ThreadPool worker for
  // its whole lifetime — build, every epoch, teardown — which is what
  // keeps each Sim, its PHY state and its thread-local packet arena
  // confined to one thread. `threaded = false` runs every shard inline on
  // the calling thread with the identical epoch structure (the
  // determinism reference, and the G80211_JOBS=1 execution mode).
  // Throws g80211::CheckFailure if any cross-shard pair of nodes is
  // within carrier-sense range (see Channel::may_interact).
  ShardedSim(const ShardedWorldSpec& spec, int num_shards,
             bool threaded = true);
  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  // Runs warmup + measurement in lookahead-bounded epochs. Call once.
  void run();

  struct FlowMetrics {
    int flow_id = 0;
    double goodput_mbps = 0.0;
    std::int64_t packets = 0;
    std::int64_t highest_seq = -1;
  };
  // Flat metrics in (bss, station) order over every cell's downlink flows,
  // followed by the cross flows in spec order — an order independent of
  // the partition, so equal shard counts can be compared byte for byte.
  std::vector<FlowMetrics> metrics() const;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const std::vector<std::vector<int>>& assignment() const {
    return assignment_;
  }
  Time lookahead() const { return lookahead_; }
  std::uint64_t epochs_run() const { return epochs_; }
  // Events executed across all shard schedulers.
  std::uint64_t events_executed() const;
  // Packets that crossed a shard boundary through the mailboxes.
  std::uint64_t cross_packets_routed() const;

 private:
  // A boundary event: one packet handed to a backhaul wire, shipped by
  // VALUE (Packet's copy ctor copies payload fields only) because the
  // destination shard must re-allocate it from its own thread's arena.
  struct RoutedPacket {
    Time deliver_at = 0;
    int link = 0;  // cross-flow index
    Packet packet;
  };
  // A drained, globally ordered boundary event awaiting injection.
  struct Delivery {
    Time deliver_at = 0;
    int link = 0;
    std::uint64_t seq = 0;  // per-mailbox stamp
    Packet packet;
  };

  struct Shard {
    std::unique_ptr<Sim> sim;
    std::vector<int> bsss;  // global BSS indices, build order
  };
  struct BssHandles {
    int shard = 0;
    Node* ap = nullptr;
    std::vector<Node*> stations;
    std::vector<UdpSink*> sinks;  // downlink sinks, station order
  };
  struct CrossHandles {
    CbrSource* source = nullptr;  // lives in the source shard
    UdpSink* sink = nullptr;      // lives in the destination shard
    Node* dst_ap = nullptr;
    int dst_shard = 0;
  };

  void build_shard(const ShardedWorldSpec& spec, int s);
  void validate_partition() const;
  void schedule_deliveries(int s, const std::vector<Delivery>& batch);
  std::vector<Delivery> drain_mailboxes();
  void teardown();

  ThreadPool pool_;
  std::vector<Shard> shards_;
  std::vector<std::vector<int>> assignment_;
  std::vector<BssHandles> bss_;      // indexed by global BSS index
  std::vector<CrossHandles> cross_;  // indexed by cross-flow index
  // One SPSC mailbox per directed cross-shard link (cross-flow index):
  // produced by the source shard's worker inside an epoch, drained by the
  // coordinator at the barrier (see mailbox.h for the synchronization
  // argument).
  std::vector<EpochMailbox<RoutedPacket>> mailboxes_;
  Time lookahead_ = 0;
  std::uint64_t epochs_ = 0;
  bool ran_ = false;
  bool torn_down_ = false;
};

}  // namespace g80211
