// End-to-end reproduction of the paper's qualitative claims, one per
// misbehavior and scenario family. These are the "does the attack work the
// way Section V says" tests; the benches regenerate the full curves.
#include <gtest/gtest.h>

#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

struct TwoPair {
  Sim sim;
  Node *ns, *gs, *nr, *gr;
  explicit TwoPair(SimConfig cfg) : sim(cfg) {
    const auto l = pairs_in_range(2);
    ns = &sim.add_node(l.senders[0]);
    gs = &sim.add_node(l.senders[1]);
    nr = &sim.add_node(l.receivers[0]);
    gr = &sim.add_node(l.receivers[1]);
  }
};

SimConfig base_cfg(std::uint64_t seed = 11) {
  SimConfig cfg;
  cfg.measure = seconds(4);
  cfg.seed = seed;
  return cfg;
}

// --- Misbehavior 1: NAV inflation -----------------------------------------

TEST(NavInflationIntegration, SmallCtsInflationStarvesUdpCompetitor) {
  // Paper Fig 1: +0.6 ms CTS NAV completely grabs the medium.
  TwoPair t(base_cfg());
  auto normal = t.sim.add_udp_flow(*t.ns, *t.nr);
  auto greedy = t.sim.add_udp_flow(*t.gs, *t.gr);
  t.sim.make_nav_inflator(*t.gr, NavFrameMask::cts_only(), microseconds(600));
  t.sim.run();
  EXPECT_LT(normal.goodput_mbps(), 0.15);
  EXPECT_GT(greedy.goodput_mbps(), 3.0);
}

TEST(NavInflationIntegration, GainGrowsWithInflation) {
  // Paper Fig 1: larger CTS NAV increase -> larger goodput gain (the sweep
  // stays below the ~0.6 ms full-starvation point so growth is strict).
  double prev_gain = -1.0;
  for (const Time inflation : {microseconds(0), microseconds(200), microseconds(600)}) {
    TwoPair t(base_cfg());
    auto normal = t.sim.add_udp_flow(*t.ns, *t.nr);
    auto greedy = t.sim.add_udp_flow(*t.gs, *t.gr);
    if (inflation > 0) {
      t.sim.make_nav_inflator(*t.gr, NavFrameMask::cts_only(), inflation);
    }
    t.sim.run();
    const double gain = greedy.goodput_mbps() - normal.goodput_mbps();
    EXPECT_GT(gain, prev_gain);
    prev_gain = gain;
  }
}

TEST(NavInflationIntegration, VictimSenderCwGrowsGreedySenderStaysLow) {
  // Paper Fig 2: under partial starvation NS's average CW climbs (it sees
  // a growing fraction of collisions among the few frames it sends) while
  // GS's stays near cw_min.
  SimConfig cfg = base_cfg();
  cfg.measure = seconds(8);
  TwoPair t(cfg);
  auto n = t.sim.add_udp_flow(*t.ns, *t.nr);
  auto g = t.sim.add_udp_flow(*t.gs, *t.gr);
  t.sim.make_nav_inflator(*t.gr, NavFrameMask::ack_only(), microseconds(560));
  t.sim.run();
  EXPECT_LT(t.gs->mac().backoff().average_cw(), 38.0);
  EXPECT_GT(t.ns->mac().backoff().average_cw(),
            t.gs->mac().backoff().average_cw() + 4.0);
  (void)n;
  (void)g;
}

TEST(NavInflationIntegration, TcpGreedyReceiverWins) {
  // Paper Fig 4: TCP flows, greedy receiver inflating CTS NAV gains.
  TwoPair t(base_cfg());
  auto normal = t.sim.add_tcp_flow(*t.ns, *t.nr);
  auto greedy = t.sim.add_tcp_flow(*t.gs, *t.gr);
  t.sim.make_nav_inflator(*t.gr, NavFrameMask::cts_only(), milliseconds(10));
  t.sim.run();
  EXPECT_GT(greedy.goodput_mbps(), 2.0 * normal.goodput_mbps());
}

TEST(NavInflationIntegration, TcpAllFramesBeatsCtsOnly) {
  // Paper Fig 4(d): inflating NAV on all frames causes the largest damage.
  auto run = [](NavFrameMask mask) {
    TwoPair t(base_cfg());
    auto normal = t.sim.add_tcp_flow(*t.ns, *t.nr);
    auto greedy = t.sim.add_tcp_flow(*t.gs, *t.gr);
    t.sim.make_nav_inflator(*t.gr, mask, milliseconds(2));
    t.sim.run();
    return greedy.goodput_mbps() - normal.goodput_mbps();
  };
  EXPECT_GT(run(NavFrameMask::all()), run(NavFrameMask::cts_only()));
}

TEST(NavInflationIntegration, SharedSenderUdpHurtsBothFlows) {
  // Paper Fig 10(c): with one shared sender and UDP, inflation hurts both
  // flows — a larger CTS NAV just makes the sender fluctuate its CW and
  // idle; the greedy receiver does not gain over its honest baseline.
  auto run = [](bool attack) {
    Sim sim(base_cfg());
    const auto l = shared_ap(2);
    Node& ap = sim.add_node(l.ap);
    Node& nr = sim.add_node(l.clients[0]);
    Node& gr = sim.add_node(l.clients[1]);
    auto fn = sim.add_udp_flow(ap, nr, 6.0);
    auto fg = sim.add_udp_flow(ap, gr, 6.0);
    if (attack) sim.make_nav_inflator(gr, NavFrameMask::cts_only(), milliseconds(10));
    sim.run();
    return std::pair{fn.goodput_mbps(), fg.goodput_mbps()};
  };
  const auto [n_honest, g_honest] = run(false);
  const auto [n_attack, g_attack] = run(true);
  EXPECT_NEAR(n_honest, g_honest, 0.3 * (n_honest + g_honest))
      << "honest shared-AP flows split roughly evenly";
  EXPECT_LT(n_attack, n_honest);
  EXPECT_LT(g_attack, g_honest) << "the greedy receiver gains nothing here";
}

TEST(NavInflationIntegration, EightFlowsOneGreedyDominatesWithLargeNav) {
  // Paper Fig 9 mechanics at a small scale: a single 31 ms inflator among
  // several flows takes the medium.
  SimConfig cfg = base_cfg();
  cfg.measure = seconds(3);
  Sim sim(cfg);
  const auto l = pairs_in_range(4);
  std::vector<Sim::TcpFlow> flows;
  std::vector<Node*> receivers;
  for (int i = 0; i < 4; ++i) {
    Node& s = sim.add_node(l.senders[i]);
    Node& r = sim.add_node(l.receivers[i]);
    receivers.push_back(&r);
    flows.push_back(sim.add_tcp_flow(s, r));
  }
  sim.make_nav_inflator(*receivers[2], NavFrameMask::cts_only(), milliseconds(31));
  sim.run();
  double others = 0.0;
  for (int i = 0; i < 4; ++i) {
    if (i != 2) others += flows[i].goodput_mbps();
  }
  EXPECT_GT(flows[2].goodput_mbps(), 1.0);
  EXPECT_LT(others, flows[2].goodput_mbps() * 0.35);
}

// --- Misbehavior 2: ACK spoofing --------------------------------------------

TEST(AckSpoofingIntegration, GreedyWinsUnderModerateLoss) {
  // Paper Fig 11 at BER 2e-4.
  SimConfig cfg = base_cfg();
  cfg.default_ber = 2e-4;
  cfg.capture_threshold = 10.0;  // the paper's Section IV-B capture setup
  TwoPair t(cfg);
  auto normal = t.sim.add_tcp_flow(*t.ns, *t.nr);
  auto greedy = t.sim.add_tcp_flow(*t.gs, *t.gr);
  t.sim.make_ack_spoofer(*t.gr, 1.0, {t.nr->id()});
  t.sim.run();
  EXPECT_GT(greedy.goodput_mbps(), 3.0 * normal.goodput_mbps());
  EXPECT_GT(t.gr->mac().stats().spoofed_acks_sent, 0);
}

TEST(AckSpoofingIntegration, HarmlessWithoutLoss) {
  // With a clean channel the victim's own ACK always captures the spoof:
  // nothing changes.
  SimConfig cfg = base_cfg();
  cfg.capture_threshold = 10.0;
  TwoPair honest(cfg), attacked(cfg);
  auto hn = honest.sim.add_tcp_flow(*honest.ns, *honest.nr);
  auto hg = honest.sim.add_tcp_flow(*honest.gs, *honest.gr);
  honest.sim.run();
  auto an = attacked.sim.add_tcp_flow(*attacked.ns, *attacked.nr);
  auto ag = attacked.sim.add_tcp_flow(*attacked.gs, *attacked.gr);
  attacked.sim.make_ack_spoofer(*attacked.gr, 1.0, {attacked.nr->id()});
  attacked.sim.run();
  EXPECT_NEAR(an.goodput_mbps(), hn.goodput_mbps(),
              0.3 * hn.goodput_mbps() + 0.1);
  (void)hg;
  (void)ag;
}

TEST(AckSpoofingIntegration, BothGreedyLowersTotalGoodput) {
  // Paper Fig 13: mutual spoofing disables MAC retransmission for everyone.
  SimConfig cfg = base_cfg();
  cfg.default_ber = 2e-4;
  cfg.capture_threshold = 10.0;
  TwoPair honest(cfg), mutual(cfg);
  auto h1 = honest.sim.add_tcp_flow(*honest.ns, *honest.nr);
  auto h2 = honest.sim.add_tcp_flow(*honest.gs, *honest.gr);
  honest.sim.run();
  auto m1 = mutual.sim.add_tcp_flow(*mutual.ns, *mutual.nr);
  auto m2 = mutual.sim.add_tcp_flow(*mutual.gs, *mutual.gr);
  mutual.sim.make_ack_spoofer(*mutual.gr, 1.0, {mutual.nr->id()});
  mutual.sim.make_ack_spoofer(*mutual.nr, 1.0, {mutual.gr->id()});
  mutual.sim.run();
  EXPECT_LT(m1.goodput_mbps() + m2.goodput_mbps(),
            h1.goodput_mbps() + h2.goodput_mbps());
}

TEST(AckSpoofingIntegration, RemoteSendersAmplifyDamage) {
  // Paper Fig 15: wireline latency makes end-to-end recovery costlier, so
  // the victim's share degrades more than in the all-wireless case.
  auto victim_share = [](Time latency) {
    SimConfig cfg = base_cfg();
    cfg.default_ber = 2e-5;
    cfg.capture_threshold = 10.0;
    cfg.measure = seconds(6);
    Sim sim(cfg);
    const auto l = spoof_shared_ap(2);  // capture-safe: spoofing, not jamming
    Node& ap = sim.add_node(l.ap);
    Node& nr = sim.add_node(l.clients[0]);
    Node& gr = sim.add_node(l.clients[1]);
    WiredHost& h1 = sim.add_wired_host(ap, latency);
    WiredHost& h2 = sim.add_wired_host(ap, latency);
    auto fn = sim.add_remote_tcp_flow(h1, ap, nr);
    auto fg = sim.add_remote_tcp_flow(h2, ap, gr);
    sim.make_ack_spoofer(gr, 1.0, {nr.id()});
    sim.run();
    return std::pair{fn.goodput_mbps(), fg.goodput_mbps()};
  };
  const auto [n_fast, g_fast] = victim_share(milliseconds(2));
  EXPECT_GT(g_fast, n_fast) << "greedy receiver wins even at low latency";
}

// --- Misbehavior 3: fake ACKs ------------------------------------------------

SimConfig hidden_cfg(std::uint64_t seed = 13) {
  SimConfig cfg;
  cfg.measure = seconds(4);
  cfg.seed = seed;
  cfg.rts_cts = false;
  const auto l = hidden_pairs();
  cfg.comm_range_m = l.comm_range_m;
  cfg.cs_range_m = l.cs_range_m;
  return cfg;
}

TEST(FakeAckIntegration, GreedyWinsUnderHiddenTerminalCollisions) {
  // Paper Fig 18 / Table IV.
  Sim sim(hidden_cfg());
  const auto l = hidden_pairs();
  Node& s1 = sim.add_node(l.senders[0]);
  Node& s2 = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  auto f1 = sim.add_udp_flow(s1, r1);
  auto f2 = sim.add_udp_flow(s2, r2);
  sim.make_fake_acker(r2, 1.0);
  sim.run();
  EXPECT_GT(f2.goodput_mbps(), 2.0 * f1.goodput_mbps());
  // Table IV: the greedy flow's sender keeps a much smaller CW.
  EXPECT_LT(s2.mac().backoff().average_cw(),
            0.6 * s1.mac().backoff().average_cw());
}

TEST(FakeAckIntegration, BothGreedyBothSufferRelativeToSoleCheater) {
  // Paper Fig 18(b): when both receivers fake ACKs under traffic-induced
  // loss, each ends up far below what the sole cheater earned — faking is
  // only profitable against honest competition.
  Sim single(hidden_cfg()), mutual(hidden_cfg());
  const auto l = hidden_pairs();
  double sole_greedy = 0.0;
  {
    Node& s1 = single.add_node(l.senders[0]);
    Node& s2 = single.add_node(l.senders[1]);
    Node& r1 = single.add_node(l.receivers[0]);
    Node& r2 = single.add_node(l.receivers[1]);
    auto f1 = single.add_udp_flow(s1, r1);
    auto f2 = single.add_udp_flow(s2, r2);
    single.make_fake_acker(r2, 1.0);
    single.run();
    sole_greedy = f2.goodput_mbps();
    (void)f1;
  }
  {
    Node& s1 = mutual.add_node(l.senders[0]);
    Node& s2 = mutual.add_node(l.senders[1]);
    Node& r1 = mutual.add_node(l.receivers[0]);
    Node& r2 = mutual.add_node(l.receivers[1]);
    auto f1 = mutual.add_udp_flow(s1, r1);
    auto f2 = mutual.add_udp_flow(s2, r2);
    mutual.make_fake_acker(r1, 1.0);
    mutual.make_fake_acker(r2, 1.0);
    mutual.run();
    EXPECT_LT(f1.goodput_mbps(), 0.8 * sole_greedy);
    EXPECT_LT(f2.goodput_mbps(), 0.8 * sole_greedy);
  }
}

TEST(FakeAckIntegration, InherentLossFakingActsLikeLosslessReceiver) {
  // Paper Section V-C "different loss rates": under inherent (non-traffic)
  // loss, faking ACKs merely recovers the goodput a loss-free receiver
  // would have had.
  SimConfig cfg = base_cfg();
  cfg.rts_cts = false;
  cfg.measure = seconds(4);
  const double fer = 0.5;
  const double ber =
      ErrorModel::ber_for_fer(fer, ErrorModel::error_len(FrameType::kData, 1064));

  // Case A: greedy receiver with a lossy link, honest competitor lossless.
  TwoPair a(cfg);
  a.sim.channel().error_model().set_link_ber(a.gs->id(), a.gr->id(), ber);
  auto fa_n = a.sim.add_udp_flow(*a.ns, *a.nr);
  auto fa_g = a.sim.add_udp_flow(*a.gs, *a.gr);
  a.sim.make_fake_acker(*a.gr, 1.0);
  a.sim.run();

  // Case B: both honest, same loss asymmetry.
  TwoPair b(cfg);
  b.sim.channel().error_model().set_link_ber(b.gs->id(), b.gr->id(), ber);
  auto fb_n = b.sim.add_udp_flow(*b.ns, *b.nr);
  auto fb_g = b.sim.add_udp_flow(*b.gs, *b.gr);
  b.sim.run();

  // Faking raised the lossy flow's channel share back toward parity…
  EXPECT_GT(fa_g.goodput_mbps() + 0.05, fb_g.goodput_mbps());
  // …but (goodput counts only uncorrupted packets) it does not exceed the
  // competitor by much: it pretends to be loss-free, not super-powered.
  EXPECT_LT(fa_g.goodput_mbps(), fa_n.goodput_mbps() + fb_n.goodput_mbps());
}

}  // namespace
}  // namespace g80211
