// Streaming-metrics memory contract: peak heap usage of a city campaign is
// a function of the world size, never of the simulated duration. The
// acceptance check runs the same world for T and 10T simulated seconds and
// requires the 10T run's peak live allocation to stay within a few percent
// of the T run's — any per-window or per-sample accumulation would grow
// the long run by ~10x instead.
//
// This file is its own test binary (every tests/*.cc is), so it can
// replace the global allocator: operator new prepends a small header
// recording the block size and maintains live/peak counters.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>

#include "src/scenario/spec/world_builder.h"
#include "src/scenario/spec/world_spec.h"

namespace {

std::atomic<std::int64_t> g_live{0};
std::atomic<std::int64_t> g_peak{0};

void note_alloc(std::int64_t bytes) {
  const std::int64_t live = g_live.fetch_add(bytes) + bytes;
  std::int64_t peak = g_peak.load();
  while (live > peak && !g_peak.compare_exchange_weak(peak, live)) {
  }
}

// Header keeps the block size; sized to max_align_t so the returned
// pointer stays suitably aligned for every ordinary (non-overaligned)
// type. Overaligned allocations take the align_val_t overloads, which we
// do not replace — they use the default allocator and are not tracked,
// which is fine: the contract under test is about bulk simulation state.
constexpr std::size_t kHeader = alignof(std::max_align_t);

void* tracked_alloc(std::size_t size) {
  void* raw = std::malloc(size + kHeader);
  if (raw == nullptr) throw std::bad_alloc();
  *static_cast<std::size_t*>(raw) = size;
  note_alloc(static_cast<std::int64_t>(size));
  return static_cast<char*>(raw) + kHeader;
}

void tracked_free(void* p) noexcept {
  if (p == nullptr) return;
  void* raw = static_cast<char*>(p) - kHeader;
  g_live.fetch_sub(static_cast<std::int64_t>(*static_cast<std::size_t*>(raw)));
  std::free(raw);
}

}  // namespace

void* operator new(std::size_t size) { return tracked_alloc(size); }
void* operator new[](std::size_t size) { return tracked_alloc(size); }
void operator delete(void* p) noexcept { tracked_free(p); }
void operator delete[](void* p) noexcept { tracked_free(p); }
void operator delete(void* p, std::size_t) noexcept { tracked_free(p); }
void operator delete[](void* p, std::size_t) noexcept { tracked_free(p); }

namespace {

using namespace g80211;
using namespace g80211::spec;

// Every feature on (churn, roaming, web bursts, a greedy receiver, GRC) so
// the guard covers each subsystem's steady-state allocation behaviour.
std::string world_toml(double measure_s) {
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "[world]\n"
                "name = \"memcheck\"\n"
                "seed = 4\n"
                "warmup_s = 0.5\n"
                "measure_s = %.1f\n"
                "[aps]\n"
                "cols = 2\nrows = 1\npitch_m = 60.0\ngrc_coverage = 1.0\n"
                "[stations]\n"
                "per_ap = 3\nradius_m = 10.0\n"
                "[churn]\n"
                "fraction = 0.4\nmean_on_s = 0.5\nmean_off_s = 0.5\n"
                "[roaming]\n"
                "fraction = 0.3\nspeed_mps = 10.0\nhysteresis_m = 2.0\n"
                "[[traffic]]\n"
                "class = \"cbr\"\nrate_mbps = 1.0\n"
                "[[traffic]]\n"
                "class = \"web\"\nrate_mbps = 2.0\nburst_s = 0.5\nidle_s = 0.5\n"
                "[greedy]\n"
                "fraction = 0.2\n"
                "[metrics]\n"
                "window_s = 0.25\n",
                measure_s);
  return buf;
}

// Peak live-allocation delta (bytes above the pre-existing baseline) of
// building and running the world for `measure_s` simulated seconds.
std::int64_t campaign_peak_bytes(double measure_s) {
  const WorldSpec spec = parse_world_spec_text(world_toml(measure_s), "mem");
  const std::int64_t base = g_live.load();
  g_peak.store(base);
  std::int64_t windows = 0;
  {
    BuiltWorld world(spec);
    world.run([&](const BuiltWorld::WindowReport&) { ++windows; });
  }
  EXPECT_EQ(windows, static_cast<std::int64_t>(measure_s / 0.25));
  return g_peak.load() - base;
}

TEST(SpecMemory, PeakIsIndependentOfSimulatedDuration) {
  // Warm one throwaway run first so lazily-grown process-wide state
  // (arena chunks, event-pool slabs, stdio buffers) reaches steady state
  // and is not charged to either measured run.
  (void)campaign_peak_bytes(2.0);

  const std::int64_t short_run = campaign_peak_bytes(2.0);
  const std::int64_t long_run = campaign_peak_bytes(20.0);
  ASSERT_GT(short_run, 0);
  // 10x the simulated duration must not move peak memory: allow a small
  // constant-factor slack for allocator noise, nothing near a 10x trend.
  EXPECT_LE(long_run, short_run + short_run / 8 + (64 << 10))
      << "short " << short_run << " B, long " << long_run << " B";
}

}  // namespace
