// 802.11g ERP-OFDM and the 802.11b short-preamble option: timing,
// throughput ordering across the three PHYs, and an attack spot-check
// on g.
#include <gtest/gtest.h>

#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

TEST(WifiParams80211g, TimingConstants) {
  const WifiParams p = WifiParams::g54();
  EXPECT_EQ(p.slot, microseconds(20));  // long slot: b coexistence
  EXPECT_EQ(p.sifs, microseconds(10));
  EXPECT_EQ(p.difs, microseconds(50));
  EXPECT_EQ(p.plcp, microseconds(20));
  EXPECT_DOUBLE_EQ(p.data_rate_mbps, 54.0);
  EXPECT_EQ(p.cw_min, 15);
}

TEST(WifiParams80211g, OfdmSymbolQuantisation) {
  const WifiParams p = WifiParams::g54();
  // 54 Mbps: N_DBPS = 216. 1092 B data frame: 16+8736+6 = 8758 bits ->
  // 41 symbols = 164 us + 20 us preamble.
  EXPECT_EQ(p.data_tx_time(1064), microseconds(184));
  // Control frames at 6 Mbps as on 802.11a.
  EXPECT_EQ(p.ack_tx_time(), microseconds(44));
}

TEST(WifiParams80211b, ShortPreambleSavesPlcpTime) {
  const WifiParams lp = WifiParams::b11();
  const WifiParams sp = WifiParams::b11_short_preamble();
  EXPECT_EQ(lp.plcp - sp.plcp, microseconds(96));
  EXPECT_EQ(lp.data_tx_time(1064) - sp.data_tx_time(1064), microseconds(96));
  EXPECT_EQ(sp.slot, lp.slot) << "only the PLCP changes";
}

TEST(Standards, SaturationThroughputOrdering) {
  auto single_flow = [](Standard std_) {
    SimConfig cfg;
    cfg.standard = std_;
    cfg.measure = seconds(3);
    cfg.seed = 131;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(1);
    Node& s = sim.add_node(l.senders[0]);
    Node& r = sim.add_node(l.receivers[0]);
    auto f = sim.add_udp_flow(s, r, 40.0);
    sim.run();
    return f.goodput_mbps();
  };
  const double b = single_flow(Standard::B80211);
  const double a = single_flow(Standard::A80211);
  const double g = single_flow(Standard::G80211);
  EXPECT_GT(a, b) << "6 Mbps OFDM beats 11 Mbps DSSS (control overhead)";
  EXPECT_GT(g, 2.0 * a) << "54 Mbps data rate dominates";
  EXPECT_LT(g, 30.0) << "long-slot overhead caps g far below 54";
}

TEST(Standards, NavInflationStarvesOn80211gToo) {
  SimConfig cfg;
  cfg.standard = Standard::G80211;
  cfg.measure = seconds(3);
  cfg.seed = 132;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_udp_flow(ns, nr, 40.0);
  auto fg = sim.add_udp_flow(gs, gr, 40.0);
  // g's starvation threshold: CWmin(15) * 20 us = 300 us.
  sim.make_nav_inflator(gr, NavFrameMask::cts_only(), microseconds(320));
  sim.run();
  EXPECT_LT(fn.goodput_mbps(), 0.3);
  EXPECT_GT(fg.goodput_mbps(), 5.0);
}

TEST(Standards, AutoRateLadderOn80211g) {
  SimConfig cfg;
  cfg.standard = Standard::G80211;
  cfg.measure = seconds(3);
  cfg.seed = 133;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(1);
  Node& s = sim.add_node(l.senders[0]);
  Node& r = sim.add_node(l.receivers[0]);
  auto f = sim.add_udp_flow(s, r, 40.0);
  s.mac().enable_auto_rate(6.0);
  sim.channel().error_model().set_link_rate_limit(s.id(), r.id(), 24.0);
  sim.run();
  EXPECT_DOUBLE_EQ(s.mac().data_rate_to(r.id()), 24.0);
  EXPECT_GT(f.goodput_mbps(), 5.0);
}

}  // namespace
}  // namespace g80211
