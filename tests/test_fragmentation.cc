// MAC-level fragmentation: burst structure, NAV chaining, reassembly,
// per-fragment retransmission, and the interaction with the GRC NAV
// validator (the one legitimate case of a nonzero ACK NAV).
#include <gtest/gtest.h>

#include <vector>

#include "src/detect/nav_validator.h"
#include "src/net/node.h"
#include "src/phy/channel.h"
#include "src/sim/scheduler.h"

namespace g80211 {
namespace {

struct CountingSink : PacketSink {
  std::vector<PacketPtr> packets;
  void receive(const PacketPtr& p) override { packets.push_back(p); }
};

class FragTest : public ::testing::Test {
 protected:
  FragTest() : channel_(sched_, WifiParams::b11()) {}

  Node& add_node(Position pos) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(
        std::make_unique<Node>(sched_, channel_, id, pos, Rng(700 + id)));
    return *nodes_.back();
  }

  PacketPtr packet(int bytes, std::int64_t seq = 0) {
    auto p = make_packet();
    p->flow_id = 1;
    p->seq = seq;
    p->size_bytes = bytes;
    p->src_node = 0;
    p->dst_node = 1;
    return p;
  }

  Scheduler sched_;
  Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(FragTest, LargeMsduSplitsIntoBurst) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  Node& observer = add_node({5, 5});
  tx.mac().set_rts_cts(false);
  tx.mac().set_fragmentation_threshold(400);
  CountingSink sink;
  rx.register_sink(1, &sink);

  std::vector<Frame> data_frames;
  observer.mac().sniffer = [&](const Frame& f, const RxInfo&) {
    if (f.type == FrameType::kData) data_frames.push_back(f);
  };
  tx.send_packet(packet(1064));
  sched_.run_until(seconds(1));

  // 1064 bytes at a 400-byte threshold: fragments of 400/400/264.
  ASSERT_EQ(data_frames.size(), 3u);
  EXPECT_EQ(data_frames[0].frag_bytes, 400);
  EXPECT_EQ(data_frames[1].frag_bytes, 400);
  EXPECT_EQ(data_frames[2].frag_bytes, 264);
  EXPECT_TRUE(data_frames[0].more_frags);
  EXPECT_TRUE(data_frames[1].more_frags);
  EXPECT_FALSE(data_frames[2].more_frags);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(data_frames[i].frag_index, i);
  // Delivered exactly once, after the final fragment.
  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(rx.mac().stats().acks_sent, 3);
}

TEST_F(FragTest, SmallMsduIsNotFragmented) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  tx.mac().set_fragmentation_threshold(2000);
  CountingSink sink;
  rx.register_sink(1, &sink);
  tx.send_packet(packet(1064));
  sched_.run_until(seconds(1));
  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(tx.mac().stats().data_sent, 1);
}

TEST_F(FragTest, FragmentsAreSifsSeparated) {
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  Node& observer = add_node({5, 5});
  tx.mac().set_rts_cts(false);
  tx.mac().set_fragmentation_threshold(532);

  struct Obs {
    FrameType type;
    Time start, end;
  };
  std::vector<Obs> seen;
  observer.mac().sniffer = [&](const Frame& f, const RxInfo& i) {
    seen.push_back({f.type, i.start, i.end});
  };
  tx.send_packet(packet(1064));
  sched_.run_until(seconds(1));

  // DATA ACK DATA ACK, all SIFS-spaced: a contention-free burst.
  ASSERT_EQ(seen.size(), 4u);
  const WifiParams p = WifiParams::b11();
  EXPECT_EQ(seen[0].type, FrameType::kData);
  EXPECT_EQ(seen[1].type, FrameType::kAck);
  EXPECT_EQ(seen[2].type, FrameType::kData);
  EXPECT_EQ(seen[3].type, FrameType::kAck);
  for (int i = 1; i < 4; ++i) {
    EXPECT_EQ(seen[i].start - seen[i - 1].end, p.sifs) << "gap " << i;
  }
}

TEST_F(FragTest, NavChainsThroughTheBurst) {
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  Node& observer = add_node({5, 5});
  tx.mac().set_rts_cts(false);
  tx.mac().set_fragmentation_threshold(532);

  std::vector<Frame> frames;
  std::vector<RxInfo> infos;
  observer.mac().sniffer = [&](const Frame& f, const RxInfo& i) {
    frames.push_back(f);
    infos.push_back(i);
  };
  tx.send_packet(packet(1064));
  sched_.run_until(seconds(1));

  ASSERT_EQ(frames.size(), 4u);
  // The first DATA's Duration must cover everything until the final ACK
  // ends; the first ACK carries it onward; the final pair carry the
  // standard values.
  const Time final_ack_end = infos[3].end;
  EXPECT_GE(infos[0].end + frames[0].duration, final_ack_end);
  EXPECT_GE(infos[1].end + frames[1].duration, final_ack_end - microseconds(1));
  EXPECT_EQ(frames[2].duration, Durations::data(WifiParams::b11()));
  EXPECT_EQ(frames[3].duration, 0);
  // And the observer's NAV stayed busy across the whole burst.
  EXPECT_GT(observer.mac().stats().nav_updates, 0);
}

TEST_F(FragTest, LostFragmentIsRetransmittedNotTheWholeBurst) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  tx.mac().set_fragmentation_threshold(532);
  CountingSink sink;
  rx.register_sink(1, &sink);

  // Corrupt exactly one fragment: flip the link on for a window covering
  // the second fragment's first transmission.
  channel_.error_model().set_link_ber(0, 1, 0.0);
  int data_count = 0;
  rx.mac().sniffer = [&](const Frame& f, const RxInfo&) {
    if (f.type != FrameType::kData) return;
    ++data_count;
    if (data_count == 1) {
      channel_.error_model().set_link_ber(0, 1, 1.0);  // kill the next one
    } else {
      channel_.error_model().set_link_ber(0, 1, 0.0);
    }
  };
  tx.send_packet(packet(1064));
  sched_.run_until(seconds(1));

  ASSERT_EQ(sink.packets.size(), 1u) << "burst completes after the retry";
  const auto& st = tx.mac().stats();
  EXPECT_EQ(st.data_sent, 3);      // frag0, frag1 (lost), frag1 again
  EXPECT_EQ(st.data_retries, 1);
  EXPECT_EQ(st.ack_timeouts, 1);
  EXPECT_EQ(rx.mac().stats().rx_data_ok, 2);
}

TEST_F(FragTest, DuplicateFragmentFilteredByTuple) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  tx.mac().set_fragmentation_threshold(532);
  // The receiver's ACKs never arrive: every fragment retries.
  channel_.error_model().set_link_ber(1, 0, 1.0);
  CountingSink sink;
  rx.register_sink(1, &sink);
  tx.send_packet(packet(1064));
  sched_.run_until(seconds(2));

  EXPECT_GT(rx.mac().stats().rx_data_dup, 0);
  EXPECT_LE(sink.packets.size(), 1u) << "at most one delivery";
}

TEST_F(FragTest, WorksWithRtsCts) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_fragmentation_threshold(532);  // RTS/CTS stays on
  CountingSink sink;
  rx.register_sink(1, &sink);
  tx.send_packet(packet(1064));
  sched_.run_until(seconds(1));
  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(tx.mac().stats().rts_sent, 1) << "one RTS for the whole burst";
  EXPECT_EQ(tx.mac().stats().data_sent, 2);
}

TEST_F(FragTest, ValidatorNeedsFragmentationAwareness) {
  // Without assume_fragmentation, the paper's "ACK NAV must be 0" rule
  // fires on honest fragment ACKs; with it, honest bursts are clean while
  // inflated ACKs still get caught.
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  Node& strict_observer = add_node({5, 5});
  Node& aware_observer = add_node({0, 5});
  tx.mac().set_rts_cts(false);
  tx.mac().set_fragmentation_threshold(532);
  CountingSink sink;
  rx.register_sink(1, &sink);

  // A MAC's nav_filter is owned by a single validator, so each rule gets
  // its own observer station.
  NavValidator strict(sched_, WifiParams::b11());
  NavValidator aware(sched_, WifiParams::b11());
  aware.assume_fragmentation = true;
  strict.attach(strict_observer.mac());
  aware.attach(aware_observer.mac());

  for (int i = 0; i < 5; ++i) tx.send_packet(packet(1064, i));
  sched_.run_until(seconds(1));

  ASSERT_EQ(sink.packets.size(), 5u);
  EXPECT_GT(strict.detections(), 0) << "strict rule misfires on fragments";
  EXPECT_EQ(aware.detections(), 0) << "aware rule accepts honest bursts";
}

}  // namespace
}  // namespace g80211
