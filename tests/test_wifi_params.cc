// PHY timing: the classic 802.11b/a constants and frame airtimes every
// other layer depends on.
#include <gtest/gtest.h>

#include "src/mac/durations.h"
#include "src/phy/wifi_params.h"

namespace g80211 {
namespace {

TEST(WifiParams80211b, TimingConstants) {
  const WifiParams p = WifiParams::b11();
  EXPECT_EQ(p.slot, microseconds(20));
  EXPECT_EQ(p.sifs, microseconds(10));
  EXPECT_EQ(p.difs, microseconds(50));
  EXPECT_EQ(p.plcp, microseconds(192));
  EXPECT_EQ(p.cw_min, 31);
  EXPECT_EQ(p.cw_max, 1023);
}

TEST(WifiParams80211b, ClassicControlFrameAirtimes) {
  const WifiParams p = WifiParams::b11();
  // 192 us preamble + 14 B at 1 Mbps = 304 us (the canonical ACK time).
  EXPECT_EQ(p.ack_tx_time(), microseconds(304));
  EXPECT_EQ(p.cts_tx_time(), microseconds(304));
  // 192 + 20 B at 1 Mbps = 352 us.
  EXPECT_EQ(p.rts_tx_time(), microseconds(352));
}

TEST(WifiParams80211b, DataAirtime) {
  const WifiParams p = WifiParams::b11();
  // 1064-byte packet + 28 B MAC overhead at 11 Mbps + 192 us PLCP.
  const Time t = p.data_tx_time(1064);
  EXPECT_EQ(t, microseconds(192) + tx_time(8 * (1064 + 28), 11.0));
  EXPECT_GT(t, microseconds(900));
  EXPECT_LT(t, microseconds(1100));
}

TEST(WifiParams80211b, EifsFormula) {
  const WifiParams p = WifiParams::b11();
  EXPECT_EQ(p.eifs(), p.sifs + p.ack_tx_time() + p.difs);
  EXPECT_EQ(p.eifs(), microseconds(364));
}

TEST(WifiParams80211b, TimeoutsCoverResponse) {
  const WifiParams p = WifiParams::b11();
  EXPECT_GT(p.cts_timeout(), p.sifs + p.cts_tx_time());
  EXPECT_GT(p.ack_timeout(), p.sifs + p.ack_tx_time());
}

TEST(WifiParams80211a, TimingConstants) {
  const WifiParams p = WifiParams::a6();
  EXPECT_EQ(p.slot, microseconds(9));
  EXPECT_EQ(p.sifs, microseconds(16));
  EXPECT_EQ(p.difs, microseconds(34));
  EXPECT_EQ(p.plcp, microseconds(20));
  EXPECT_EQ(p.cw_min, 15);
}

TEST(WifiParams80211a, OfdmSymbolQuantisation) {
  const WifiParams p = WifiParams::a6();
  // ACK: 16 + 14*8 + 6 = 134 bits over 24 bits/symbol -> 6 symbols = 24 us,
  // plus 20 us preamble = 44 us (the standard's canonical value).
  EXPECT_EQ(p.ack_tx_time(), microseconds(44));
  // RTS: 16 + 160 + 6 = 182 bits -> 8 symbols = 32 us + 20 = 52 us.
  EXPECT_EQ(p.rts_tx_time(), microseconds(52));
}

TEST(WifiParams80211a, AirtimeIsMultipleOfSymbol) {
  const WifiParams p = WifiParams::a6();
  for (int bytes : {0, 1, 23, 100, 1024, 1500}) {
    const Time t = p.data_tx_time(bytes) - p.plcp;
    EXPECT_EQ(t % microseconds(4), 0) << "payload " << bytes;
  }
}

TEST(WifiParams, SameFrameFasterOn11aThan11bControl) {
  // 802.11a control frames are much faster (6 Mbps + short preamble vs
  // 1 Mbps + 192 us preamble) — the reason the paper finds NAV inflation
  // more damaging on 802.11a.
  EXPECT_LT(WifiParams::a6().ack_tx_time(), WifiParams::b11().ack_tx_time());
  EXPECT_LT(WifiParams::a6().rts_tx_time(), WifiParams::b11().rts_tx_time());
}

TEST(Durations, StandardExchangeArithmetic) {
  const WifiParams p = WifiParams::b11();
  const int pkt = 1064;
  const Time rts = Durations::rts(p, pkt);
  EXPECT_EQ(rts, 3 * p.sifs + p.cts_tx_time() + p.data_tx_time(pkt) + p.ack_tx_time());
  EXPECT_EQ(Durations::cts_from_rts(p, rts), rts - p.sifs - p.cts_tx_time());
  EXPECT_EQ(Durations::cts(p, pkt), Durations::cts_from_rts(p, rts));
  EXPECT_EQ(Durations::data(p), p.sifs + p.ack_tx_time());
  EXPECT_EQ(Durations::ack(), 0);
}

TEST(Durations, CtsFromRtsNeverNegative) {
  const WifiParams p = WifiParams::b11();
  EXPECT_EQ(Durations::cts_from_rts(p, 0), 0);
  EXPECT_EQ(Durations::cts_from_rts(p, microseconds(1)), 0);
}

TEST(Durations, MtuBoundsDominateRealExchanges) {
  for (const WifiParams& p : {WifiParams::b11(), WifiParams::a6()}) {
    EXPECT_GE(Durations::max_cts(p), Durations::cts(p, 1064));
    EXPECT_GE(Durations::max_rts(p), Durations::rts(p, 1064));
    // But the bound is finite and far below the NAV maximum.
    EXPECT_LT(Durations::max_rts(p), WifiParams::kMaxNav);
  }
}

TEST(Durations, MaxNavIs15BitMicroseconds) {
  EXPECT_EQ(WifiParams::kMaxNav, microseconds(32767));
}

}  // namespace
}  // namespace g80211
