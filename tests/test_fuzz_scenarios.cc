// Randomized scenario fuzzing: build pseudo-random hotspots (topology,
// transports, loss, attacks, detectors) from a seed and check the global
// invariants that must survive ANY configuration — no crashes, goodput
// conservation, determinism, and sane statistics.
#include <gtest/gtest.h>

#include "src/detect/grc.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

struct FuzzOutcome {
  std::vector<double> goodputs;
  double total = 0.0;
  std::int64_t nav_detections = 0;
};

FuzzOutcome run_fuzz(std::uint64_t seed) {
  Rng rng(seed * 2654435761ULL + 1);

  SimConfig cfg;
  cfg.standard = rng.chance(0.3) ? Standard::A80211 : Standard::B80211;
  cfg.rts_cts = rng.chance(0.7);
  cfg.capture_threshold = rng.chance(0.5) ? 10.0 : 0.0;
  cfg.default_ber = rng.chance(0.5) ? 0.0 : rng.uniform() * 6e-4;
  cfg.measure = seconds(2);
  cfg.seed = seed;
  Sim sim(cfg);

  const int n_pairs = static_cast<int>(rng.uniform_between(1, 5));
  const PairLayout layout = pairs_in_range(n_pairs);
  std::vector<Node*> senders, receivers;
  for (int i = 0; i < n_pairs; ++i) senders.push_back(&sim.add_node(layout.senders[i]));
  for (int i = 0; i < n_pairs; ++i) receivers.push_back(&sim.add_node(layout.receivers[i]));

  std::vector<Sim::TcpFlow> tcp_flows;
  std::vector<Sim::UdpFlow> udp_flows;
  std::vector<bool> is_tcp;
  for (int i = 0; i < n_pairs; ++i) {
    const bool tcp = rng.chance(0.5);
    is_tcp.push_back(tcp);
    if (tcp) {
      tcp_flows.push_back(sim.add_tcp_flow(*senders[i], *receivers[i]));
    } else {
      udp_flows.push_back(sim.add_udp_flow(*senders[i], *receivers[i]));
    }
    // Random per-sender quirks.
    if (rng.chance(0.2)) senders[i]->mac().set_fragmentation_threshold(
        static_cast<int>(rng.uniform_between(200, 800)));
    if (rng.chance(0.2)) senders[i]->mac().enable_auto_rate();
    if (rng.chance(0.1)) senders[i]->mac().set_backoff_cheat(0.25 + rng.uniform() * 0.75);
  }

  // Random misbehavior on a random receiver.
  const int victim_ix = static_cast<int>(rng.uniform_between(0, n_pairs - 1));
  switch (rng.uniform_between(0, 3)) {
    case 0:
      break;  // everyone honest
    case 1:
      sim.make_nav_inflator(*receivers[victim_ix],
                            rng.chance(0.5) ? NavFrameMask::cts_only()
                                            : NavFrameMask::all(),
                            microseconds(rng.uniform_between(50, 31000)),
                            0.25 + rng.uniform() * 0.75);
      break;
    case 2: {
      std::set<int> victims;
      for (int i = 0; i < n_pairs; ++i) {
        if (i != victim_ix) victims.insert(receivers[i]->id());
      }
      if (!victims.empty()) {
        sim.make_ack_spoofer(*receivers[victim_ix], 0.25 + rng.uniform() * 0.75,
                             victims);
      }
      break;
    }
    case 3:
      sim.make_fake_acker(*receivers[victim_ix], 0.25 + rng.uniform() * 0.75);
      break;
  }

  // Sometimes protect a random subset with GRC.
  Grc grc(sim.scheduler(), sim.params());
  if (rng.chance(0.5)) {
    for (int i = 0; i < n_pairs; ++i) {
      if (rng.chance(0.6)) grc.protect(senders[i]->mac());
    }
  }

  sim.run();

  FuzzOutcome out;
  std::size_t t = 0, u = 0;
  for (int i = 0; i < n_pairs; ++i) {
    const double g = is_tcp[i] ? tcp_flows[t++].goodput_mbps()
                               : udp_flows[u++].goodput_mbps();
    out.goodputs.push_back(g);
    out.total += g;
  }
  out.nav_detections = grc.nav_detections();
  return out;
}

class ScenarioFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioFuzz, InvariantsHoldAndRunsAreDeterministic) {
  const std::uint64_t seed = GetParam();
  const FuzzOutcome a = run_fuzz(seed);
  // Conservation: goodput can never exceed the PHY rate (54 covers both
  // standards; UDP payload efficiency keeps real numbers far lower).
  EXPECT_GE(a.total, 0.0);
  EXPECT_LT(a.total, 11.0) << "seed " << seed;
  for (const double g : a.goodputs) EXPECT_GE(g, 0.0);
  EXPECT_GE(a.nav_detections, 0);

  // Determinism: bit-identical on replay.
  const FuzzOutcome b = run_fuzz(seed);
  ASSERT_EQ(a.goodputs.size(), b.goodputs.size());
  for (std::size_t i = 0; i < a.goodputs.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.goodputs[i], b.goodputs[i]) << "seed " << seed;
  }
  EXPECT_EQ(a.nav_detections, b.nav_detections);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioFuzz,
                         ::testing::Range<std::uint64_t>(1, 25));

}  // namespace
}  // namespace g80211
