// Bianchi saturation model: analytic sanity and, most importantly,
// agreement with the simulator's honest saturated baseline — the
// credibility check behind every attack result in the reproduction.
#include <gtest/gtest.h>

#include "src/analysis/bianchi.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

TEST(Bianchi, FixedPointIsConsistent) {
  BianchiConfig cfg;
  cfg.n_stations = 4;
  const auto r = bianchi_saturation(WifiParams::b11(), cfg);
  EXPECT_GT(r.tau, 0.0);
  EXPECT_LT(r.tau, 1.0);
  EXPECT_GT(r.p, 0.0);
  EXPECT_LT(r.p, 1.0);
  // p must equal 1-(1-tau)^(n-1) at the fixed point.
  EXPECT_NEAR(r.p, 1.0 - std::pow(1.0 - r.tau, 3), 1e-6);
}

TEST(Bianchi, SingleStationNeverCollides) {
  BianchiConfig cfg;
  cfg.n_stations = 1;
  const auto r = bianchi_saturation(WifiParams::b11(), cfg);
  EXPECT_DOUBLE_EQ(r.p, 0.0);
  EXPECT_GT(r.throughput_mbps, 3.0);
}

TEST(Bianchi, CollisionProbabilityGrowsWithStations) {
  double prev = 0.0;
  for (int n : {2, 4, 8, 16}) {
    BianchiConfig cfg;
    cfg.n_stations = n;
    const auto r = bianchi_saturation(WifiParams::b11(), cfg);
    EXPECT_GT(r.p, prev);
    prev = r.p;
  }
}

TEST(Bianchi, RtsCtsCapsTheCollisionCost) {
  // RTS/CTS caps what a collision wastes (a 352 us RTS instead of a ~1 ms
  // data frame), so aggregate throughput degrades far more gently with n
  // than basic access — even though on 802.11b the 1 Mbps control frames
  // make RTS/CTS lose in absolute terms at these population sizes.
  auto at = [](int n, bool rts_cts) {
    BianchiConfig cfg;
    cfg.n_stations = n;
    cfg.rts_cts = rts_cts;
    return bianchi_saturation(WifiParams::b11(), cfg).throughput_mbps;
  };
  const double rts_degradation = at(16, true) / at(2, true);
  const double basic_degradation = at(16, false) / at(2, false);
  EXPECT_GT(rts_degradation, 0.9) << "RTS/CTS: almost flat from 2 to 16";
  EXPECT_LT(basic_degradation, rts_degradation)
      << "basic access pays whole data frames per collision";
}

class BianchiVsSim : public ::testing::TestWithParam<int> {};

TEST_P(BianchiVsSim, HonestSaturationMatchesModel) {
  const int n = GetParam();
  BianchiConfig cfg;
  cfg.n_stations = n;
  const auto model = bianchi_saturation(WifiParams::b11(), cfg);

  SimConfig sc;
  sc.measure = seconds(4);
  sc.seed = 61 + static_cast<std::uint64_t>(n);
  Sim sim(sc);
  const PairLayout l = pairs_in_range(n);
  std::vector<Sim::UdpFlow> flows;
  std::vector<Node*> senders;
  for (int i = 0; i < n; ++i) senders.push_back(&sim.add_node(l.senders[i]));
  std::vector<Node*> receivers;
  for (int i = 0; i < n; ++i) receivers.push_back(&sim.add_node(l.receivers[i]));
  for (int i = 0; i < n; ++i) {
    flows.push_back(sim.add_udp_flow(*senders[i], *receivers[i]));
  }
  sim.run();
  double total = 0.0;
  for (const auto& f : flows) total += f.goodput_mbps();

  // The simulator is not Bianchi's Markov chain (EIFS, timeout details,
  // freeze granularity differ) but the saturation throughput must agree
  // within ~12%.
  EXPECT_NEAR(total, model.throughput_mbps, 0.12 * model.throughput_mbps)
      << "n=" << n << " sim=" << total << " model=" << model.throughput_mbps;
}

INSTANTIATE_TEST_SUITE_P(Stations, BianchiVsSim, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace g80211
