// End-to-end evaluation of the Greedy Receiver Countermeasure (paper
// Section VIII): NAV validation restores fairness under inflation, the
// RSSI spoof detector recovers the victim's goodput, the cross-layer and
// fake-ACK detectors fire exactly when they should.
#include <gtest/gtest.h>

#include "src/detect/cross_layer_detector.h"
#include "src/detect/fake_ack_detector.h"
#include "src/detect/grc.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

SimConfig base_cfg(std::uint64_t seed = 21) {
  SimConfig cfg;
  cfg.measure = seconds(4);
  cfg.seed = seed;
  return cfg;
}

TEST(GrcNavIntegration, ValidatorNeutralisesCtsInflation) {
  // Fig 23 mechanics, all nodes in range: with GRC on every station, the
  // inflated NAV is replaced by the expected value and the flows share
  // fairly again.
  auto run = [](bool grc_on) {
    Sim sim(base_cfg());
    const auto l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_udp_flow(ns, nr);
    auto fg = sim.add_udp_flow(gs, gr);
    sim.make_nav_inflator(gr, NavFrameMask::cts_only(), milliseconds(10));
    Grc grc(sim.scheduler(), sim.params(), {.spoof_detection = false});
    if (grc_on) {
      for (Node* n : {&ns, &gs, &nr}) grc.protect(n->mac());
    }
    sim.run();
    return std::tuple{fn.goodput_mbps(), fg.goodput_mbps(), grc.nav_detections()};
  };
  const auto [n_off, g_off, det_off] = run(false);
  EXPECT_LT(n_off, 0.1) << "attack starves the victim without GRC";
  EXPECT_EQ(det_off, 0);
  const auto [n_on, g_on, det_on] = run(true);
  EXPECT_GT(n_on, 1.0) << "GRC restores the victim's share";
  EXPECT_NEAR(n_on, g_on, 0.35 * (n_on + g_on));
  EXPECT_GT(det_on, 100) << "every inflated CTS is detected";
}

TEST(GrcNavIntegration, ValidatorAttributesDetectionsToTheGreedyNode) {
  Sim sim(base_cfg());
  const auto l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_udp_flow(ns, nr);
  auto fg = sim.add_udp_flow(gs, gr);
  sim.make_nav_inflator(gr, NavFrameMask::cts_only(), milliseconds(10));
  NavValidator validator(sim.scheduler(), sim.params());
  validator.attach(ns.mac());
  sim.run();
  ASSERT_GT(validator.detections(), 0);
  for (const auto& [node, count] : validator.detections_by_node()) {
    EXPECT_EQ(node, gr.id()) << "only the greedy receiver is flagged";
    EXPECT_GT(count, 0);
  }
  (void)fn;
  (void)fg;
}

TEST(GrcNavIntegration, NoFalsePositivesOnHonestTraffic) {
  Sim sim(base_cfg());
  const auto l = pairs_in_range(2);
  Node& s1 = sim.add_node(l.senders[0]);
  Node& s2 = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  auto f1 = sim.add_tcp_flow(s1, r1);
  auto f2 = sim.add_udp_flow(s2, r2);
  Grc grc(sim.scheduler(), sim.params(), {.spoof_detection = false});
  for (Node* n : {&s1, &s2, &r1, &r2}) grc.protect(n->mac());
  sim.run();
  EXPECT_EQ(grc.nav_detections(), 0) << "honest Durations never flagged";
  EXPECT_GT(f1.goodput_mbps() + f2.goodput_mbps(), 1.5)
      << "GRC must not disturb honest traffic";
}

TEST(GrcNavIntegration, RtsDataInflationAlsoNeutralised) {
  // The TCP variant: GR inflates RTS+DATA when sending TCP ACKs; the
  // validator bounds RTS by the MTU exchange and DATA by SIFS+ACK.
  auto run = [](bool grc_on) {
    Sim sim(base_cfg());
    const auto l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_tcp_flow(ns, nr);
    auto fg = sim.add_tcp_flow(gs, gr);
    NavFrameMask mask;
    mask.rts = mask.data = true;
    sim.make_nav_inflator(gr, mask, milliseconds(31));
    Grc grc(sim.scheduler(), sim.params(), {.spoof_detection = false});
    if (grc_on) {
      for (Node* n : {&ns, &gs, &nr}) grc.protect(n->mac());
    }
    sim.run();
    return std::pair{fn.goodput_mbps(), fg.goodput_mbps()};
  };
  const auto [n_off, g_off] = run(false);
  const auto [n_on, g_on] = run(true);
  EXPECT_GT(n_on, 4.0 * std::max(n_off, 0.01)) << "victim recovers";
  (void)g_off;
  (void)g_on;
}

TEST(GrcSpoofIntegration, RssiDetectorRestoresVictimGoodput) {
  // Fig 24: with GRC, both flows track the no-attack goodput curves.
  auto run = [](bool attack, bool grc_on) {
    SimConfig cfg = base_cfg();
    cfg.default_ber = 2e-4;
    cfg.capture_threshold = 10.0;
    Sim sim(cfg);
    const auto l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_tcp_flow(ns, nr);
    auto fg = sim.add_tcp_flow(gs, gr);
    if (attack) sim.make_ack_spoofer(gr, 1.0, {nr.id()});
    SpoofDetector detector(1.0);
    if (grc_on) detector.attach(ns.mac());
    sim.run();
    return std::tuple{fn.goodput_mbps(), fg.goodput_mbps(),
                      detector.true_positives(), detector.false_positives()};
  };
  const auto [n_base, g_base, tp0, fp0] = run(false, false);
  const auto [n_att, g_att, tp1, fp1] = run(true, false);
  const auto [n_grc, g_grc, tp2, fp2] = run(true, true);
  EXPECT_LT(n_att, 0.5 * n_base) << "attack hurts without GRC";
  EXPECT_GT(n_grc, 0.6 * n_base) << "GRC recovers the victim";
  EXPECT_GT(tp2, 0) << "spoofed ACKs were flagged";
  // RSSI measurement noise gives a small false-positive rate at the 1 dB
  // threshold (paper Fig 22); each costs only a retransmission.
  EXPECT_LT(fp2, tp2) << "false positives stay well below true detections";
  (void)g_base;
  (void)g_att;
  (void)g_grc;
  (void)tp0;
  (void)fp0;
  (void)tp1;
  (void)fp1;
}

TEST(GrcSpoofIntegration, DetectorQuietOnHonestTraffic) {
  SimConfig cfg = base_cfg();
  cfg.default_ber = 2e-4;
  cfg.capture_threshold = 10.0;
  Sim sim(cfg);
  const auto l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_tcp_flow(ns, nr);
  auto fg = sim.add_tcp_flow(gs, gr);
  SpoofDetector d1(1.0), d2(1.0);
  d1.attach(ns.mac());
  d2.attach(gs.mac());
  sim.run();
  // Honest traffic: no spoofs exist, so every flag is a false positive.
  // Fig 22 predicts a small but nonzero rate at the 1 dB threshold.
  EXPECT_EQ(d1.true_positives() + d2.true_positives(), 0);
  EXPECT_GT(d1.true_negatives(), 100) << "plenty of honest ACKs inspected";
  const double fp_rate =
      static_cast<double>(d1.false_positives()) /
      static_cast<double>(d1.false_positives() + d1.true_negatives());
  EXPECT_LT(fp_rate, 0.06);
  (void)fn;
  (void)fg;
}

TEST(GrcCrossLayerIntegration, FlagsSpoofingOnMobileClients) {
  // The RSSI profile is useless for mobile clients; the cross-layer
  // detector correlates TCP retransmissions with MAC-acked segments.
  auto run = [](bool attack) {
    SimConfig cfg = base_cfg();
    cfg.default_ber = 2e-4;
    cfg.capture_threshold = 10.0;
    Sim sim(cfg);
    const auto l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_tcp_flow(ns, nr);
    auto fg = sim.add_tcp_flow(gs, gr);
    if (attack) sim.make_ack_spoofer(gr, 1.0, {nr.id()});
    auto detector = std::make_unique<CrossLayerDetector>(5);
    detector->attach(ns.mac(), *fn.sender);
    sim.run();
    (void)fg;
    return std::pair{detector->detected(),
                     detector->suspicious_retransmissions()};
  };
  const auto [detected_attack, count_attack] = run(true);
  EXPECT_TRUE(detected_attack);
  EXPECT_GT(count_attack, 5);
  const auto [detected_honest, count_honest] = run(false);
  EXPECT_FALSE(detected_honest);
  EXPECT_LE(count_honest, 2) << "an honest lossy link stays below threshold";
}

TEST(GrcFakeAckIntegration, ProbingExposesFakeAcks) {
  auto run = [](bool attack) {
    SimConfig cfg = base_cfg();
    cfg.rts_cts = false;
    cfg.measure = seconds(6);
    Sim sim(cfg);
    const auto l = pairs_in_range(1);
    Node& gs = sim.add_node(l.senders[0]);
    Node& gr = sim.add_node(l.receivers[0]);
    // A very lossy link: data FER ~0.5 toward the receiver. The offered
    // load stays below what the lossy link can carry so queue drops do not
    // pollute the application-loss estimate.
    sim.channel().error_model().set_link_ber(
        gs.id(), gr.id(),
        ErrorModel::ber_for_fer(0.5, ErrorModel::error_len(FrameType::kData, 1064)));
    auto f = sim.add_udp_flow(gs, gr, 1.0);
    if (attack) sim.make_fake_acker(gr, 1.0);
    FakeAckDetector::Config dc;
    dc.probe_payload_bytes = 512;  // probe FER ~0.3: a clear signal
    FakeAckDetector detector(sim.scheduler(), gs, gr.id(), sim.reserve_flow_id(), dc);
    detector.start(0);
    sim.run();
    (void)f;
    return std::tuple{detector.detected(), detector.application_loss(),
                      detector.mac_loss()};
  };
  const auto [det_attack, app_loss_attack, mac_loss_attack] = run(true);
  EXPECT_TRUE(det_attack);
  EXPECT_GT(app_loss_attack, 0.2) << "probes die silently under fake ACKs";
  EXPECT_LT(mac_loss_attack, 0.1) << "while the MAC sees almost no loss";
  const auto [det_honest, app_loss_honest, mac_loss_honest] = run(false);
  EXPECT_FALSE(det_honest);
  EXPECT_GT(mac_loss_honest, 0.25) << "honest MAC loss is visible";
  EXPECT_LT(app_loss_honest,
            std::pow(mac_loss_honest, 5) + 0.06);
}

TEST(GrcBundle, MidRunDeploymentRestoresFairness) {
  // The campus_timeline scenario as an assertion: attack at t=2s, GRC
  // rollout at t=5s — per-phase victim goodput must collapse and recover.
  SimConfig cfg;
  cfg.warmup = seconds(0);
  cfg.measure = seconds(8);
  cfg.seed = 23;
  Sim sim(cfg);
  const auto l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_udp_flow(ns, nr);
  auto fg = sim.add_udp_flow(gs, gr);
  sim.scheduler().at(seconds(2), [&] {
    sim.make_nav_inflator(gr, NavFrameMask::cts_only(), milliseconds(10));
  });
  Grc grc(sim.scheduler(), sim.params(), {.spoof_detection = false});
  sim.scheduler().at(seconds(5), [&] {
    for (Node* n : {&ns, &gs, &nr}) grc.protect(n->mac());
  });
  std::int64_t at2 = 0, at5 = 0;
  sim.scheduler().at(seconds(2), [&] { at2 = fn.sink->packets(); });
  sim.scheduler().at(seconds(5), [&] { at5 = fn.sink->packets(); });
  sim.run();

  const double before = static_cast<double>(at2) / 2.0;          // pkts/s
  const double during = static_cast<double>(at5 - at2) / 3.0;
  const double after = static_cast<double>(fn.sink->packets() - at5) / 3.0;
  EXPECT_LT(during, 0.1 * before) << "attack phase collapses the victim";
  EXPECT_GT(after, 0.7 * before) << "GRC rollout restores the victim";
  EXPECT_GT(grc.nav_detections(), 100);
  (void)fg;
}

TEST(GrcBundle, ProtectInstallsBothDetectors) {
  Sim sim(base_cfg());
  const auto l = pairs_in_range(1);
  Node& s = sim.add_node(l.senders[0]);
  Node& r = sim.add_node(l.receivers[0]);
  auto f = sim.add_udp_flow(s, r);
  Grc grc(sim.scheduler(), sim.params());
  grc.protect(s.mac());
  EXPECT_EQ(grc.nav_validators().size(), 1u);
  EXPECT_EQ(grc.spoof_detectors().size(), 1u);
  sim.run();
  EXPECT_EQ(grc.nav_detections(), 0);
  EXPECT_EQ(grc.spoof_detections(), 0);
  EXPECT_GT(f.goodput_mbps(), 3.0) << "protection is free for honest traffic";
}

}  // namespace
}  // namespace g80211
