// Cross-cutting integration sweeps: scenario families the benches sweep
// in full, pinned here at single operating points so regressions surface
// in seconds (shared-AP head-of-line blocking, spoofing with many pairs,
// fake-ACK scaling, fairness-index ranking of the attacks).
#include <gtest/gtest.h>

#include "src/analysis/stats.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

SimConfig base_cfg(std::uint64_t seed) {
  SimConfig cfg;
  cfg.measure = seconds(4);
  cfg.seed = seed;
  return cfg;
}

TEST(SharedApTcp, GreedyGainShrinksWithMoreClients) {
  // Fig 10(a) vs 10(b): head-of-line blocking dilutes the attack as the
  // AP serves more honest clients.
  auto relative_gain = [](int n_clients) {
    Sim sim(base_cfg(101));
    const auto l = shared_ap(n_clients);
    Node& ap = sim.add_node(l.ap);
    std::vector<Node*> clients;
    for (int i = 0; i < n_clients; ++i) clients.push_back(&sim.add_node(l.clients[i]));
    std::vector<Sim::TcpFlow> flows;
    for (int i = 0; i < n_clients; ++i) flows.push_back(sim.add_tcp_flow(ap, *clients[i]));
    sim.make_nav_inflator(*clients.back(), NavFrameMask::cts_only(), milliseconds(10));
    sim.run();
    double normal = 0.0;
    for (int i = 0; i + 1 < n_clients; ++i) normal += flows[i].goodput_mbps();
    normal /= (n_clients - 1);
    return flows.back().goodput_mbps() / std::max(normal, 1e-6);
  };
  const double gain2 = relative_gain(2);
  const double gain6 = relative_gain(6);
  EXPECT_GT(gain2, 1.5) << "two clients: clear gain";
  EXPECT_LT(gain6, gain2) << "six clients: diluted gain";
}

TEST(SpoofScaling, GreedyDominatesUnderBothApArrangements) {
  // Fig 14: the attacker wins decisively whether the victims share its AP
  // or have their own. (The paper additionally reports a *smaller* gap
  // under one shared AP; in our reproduction that contrast is muted —
  // at GP=100 the victims' TCP collapses so completely that head-of-line
  // coupling has little left to couple. See EXPERIMENTS.md.)
  const double ber = 2e-4;
  double shared_gap = 0.0, separate_gap = 0.0;
  {
    SimConfig cfg = base_cfg(102);
    cfg.default_ber = ber;
    cfg.capture_threshold = 10.0;
    Sim sim(cfg);
    const auto l = spoof_shared_ap(3);  // capture-safe: spoofing, not jamming
    Node& ap = sim.add_node(l.ap);
    Node& n1 = sim.add_node(l.clients[0]);
    Node& n2 = sim.add_node(l.clients[1]);
    Node& gr = sim.add_node(l.clients[2]);
    auto f1 = sim.add_tcp_flow(ap, n1);
    auto f2 = sim.add_tcp_flow(ap, n2);
    auto fg = sim.add_tcp_flow(ap, gr);
    sim.make_ack_spoofer(gr, 1.0, {n1.id(), n2.id()});
    sim.run();
    shared_gap = fg.goodput_mbps() - 0.5 * (f1.goodput_mbps() + f2.goodput_mbps());
  }
  {
    SimConfig cfg = base_cfg(103);
    cfg.default_ber = ber;
    cfg.capture_threshold = 10.0;
    Sim sim(cfg);
    const auto l = pairs_in_range(3);
    std::vector<Node*> senders, receivers;
    for (int i = 0; i < 3; ++i) senders.push_back(&sim.add_node(l.senders[i]));
    for (int i = 0; i < 3; ++i) receivers.push_back(&sim.add_node(l.receivers[i]));
    std::vector<Sim::TcpFlow> flows;
    for (int i = 0; i < 3; ++i) flows.push_back(sim.add_tcp_flow(*senders[i], *receivers[i]));
    sim.make_ack_spoofer(*receivers[2], 1.0,
                         {receivers[0]->id(), receivers[1]->id()});
    sim.run();
    separate_gap = flows[2].goodput_mbps() -
                   0.5 * (flows[0].goodput_mbps() + flows[1].goodput_mbps());
  }
  EXPECT_GT(shared_gap, 0.5) << "decisive win behind a shared AP";
  EXPECT_GT(separate_gap, 0.5) << "decisive win with separate APs";
  EXPECT_NEAR(separate_gap, shared_gap, 0.8 * std::max(separate_gap, shared_gap));
}

TEST(FakeAckScaling, RelativeGapSurvivesMorePairs) {
  // Fig 19: more competitors shrink everyone's share, but the greedy
  // receiver's RELATIVE advantage persists.
  auto gaps = [](int n_pairs) {
    SimConfig cfg = base_cfg(104);
    cfg.rts_cts = false;
    cfg.default_ber =
        ErrorModel::ber_for_fer(0.5, ErrorModel::error_len(FrameType::kData, 1064));
    Sim sim(cfg);
    const auto l = pairs_in_range(n_pairs);
    std::vector<Node*> senders, receivers;
    for (int i = 0; i < n_pairs; ++i) senders.push_back(&sim.add_node(l.senders[i]));
    for (int i = 0; i < n_pairs; ++i) receivers.push_back(&sim.add_node(l.receivers[i]));
    std::vector<Sim::UdpFlow> flows;
    for (int i = 0; i < n_pairs; ++i) {
      flows.push_back(sim.add_udp_flow(*senders[i], *receivers[i]));
    }
    sim.make_fake_acker(*receivers.back(), 1.0);
    sim.run();
    double normal = 0.0;
    for (int i = 0; i + 1 < n_pairs; ++i) normal += flows[i].goodput_mbps();
    normal /= (n_pairs - 1);
    const double greedy = flows.back().goodput_mbps();
    return std::pair{greedy - normal, greedy / std::max(normal, 1e-6)};
  };
  const auto [abs2, rel2] = gaps(2);
  const auto [abs6, rel6] = gaps(6);
  EXPECT_LT(abs6, abs2) << "absolute gap shrinks with competition";
  EXPECT_GT(rel6, 1.4) << "relative gap persists";
  (void)rel2;
}

TEST(FairnessRanking, AttacksOrderByJainIndex) {
  // The fairness index summarises attack severity: honest ~1, partial
  // cheating in between, full starvation ~0.5 (one of two flows holds
  // everything).
  auto fairness = [](Time inflation, double gp) {
    Sim sim(base_cfg(105));
    const auto l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_udp_flow(ns, nr);
    auto fg = sim.add_udp_flow(gs, gr);
    if (inflation > 0) {
      sim.make_nav_inflator(gr, NavFrameMask::cts_only(), inflation, gp);
    }
    sim.run();
    return jain_fairness({fn.goodput_mbps(), fg.goodput_mbps()});
  };
  const double honest = fairness(0, 0);
  const double partial = fairness(microseconds(300), 1.0);
  const double full = fairness(milliseconds(10), 1.0);
  EXPECT_GT(honest, 0.97);
  EXPECT_LT(partial, honest);
  EXPECT_GT(partial, full);
  EXPECT_NEAR(full, 0.5, 0.02);
}

TEST(ProtocolMix, TcpFlowSurvivesNextToSaturatedUdp) {
  // A saturated UDP flow must not starve a competing TCP flow outright —
  // DCF still gives the TCP sender and its receiver's ACK path airtime.
  Sim sim(base_cfg(106));
  const auto l = pairs_in_range(2);
  Node& s1 = sim.add_node(l.senders[0]);
  Node& s2 = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  auto udp = sim.add_udp_flow(s1, r1);
  auto tcp = sim.add_tcp_flow(s2, r2);
  sim.run();
  EXPECT_GT(tcp.goodput_mbps(), 0.4);
  EXPECT_GT(udp.goodput_mbps(), 1.0);
}

TEST(Standards, AttackShapesHoldOn80211a) {
  // Spot-check that a core misbehavior works identically on the OFDM PHY.
  SimConfig cfg = base_cfg(107);
  cfg.standard = Standard::A80211;
  Sim sim(cfg);
  const auto l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_udp_flow(ns, nr);
  auto fg = sim.add_udp_flow(gs, gr);
  sim.make_nav_inflator(gr, NavFrameMask::cts_only(), microseconds(600));
  sim.run();
  EXPECT_LT(fn.goodput_mbps(), 0.2);
  EXPECT_GT(fg.goodput_mbps(), 3.5);
}

}  // namespace
}  // namespace g80211
