// Synthetic RSSI measurement study (Figs 21/22 substrate).
#include <gtest/gtest.h>

#include "src/analysis/stats.h"
#include "src/rssi/rssi_trace.h"

namespace g80211 {
namespace {

RssiStudy make_study(std::uint64_t seed = 1) {
  RssiStudyConfig cfg;
  cfg.samples_per_link = 100;
  return RssiStudy(cfg, Rng(seed));
}

TEST(RssiStudy, LinkCountMatchesTopology) {
  const auto s = make_study();
  EXPECT_EQ(s.links(), 16 * 15);
}

TEST(RssiStudy, MostSamplesWithinOneDbOfMedian) {
  // The paper's Fig 21 headline: ~95% of RSSI samples within 1 dB of the
  // link median.
  const auto s = make_study();
  const auto cdf = empirical_cdf(s.deviations());
  const double within_1db = cdf_at(cdf, 1.0);
  EXPECT_GT(within_1db, 0.90);
  EXPECT_LT(within_1db, 1.0);
}

TEST(RssiStudy, DeviationsAreNonNegative) {
  const auto s = make_study();
  for (const double d : s.deviations()) ASSERT_GE(d, 0.0);
}

TEST(RssiStudy, FalsePositiveDecreasesWithThreshold) {
  const auto s = make_study();
  double prev = 1.0;
  for (double t : {0.0, 0.5, 1.0, 2.0, 5.0}) {
    const auto r = s.rates_at(t);
    EXPECT_LE(r.false_positive, prev + 1e-12);
    prev = r.false_positive;
  }
}

TEST(RssiStudy, FalseNegativeIncreasesWithThreshold) {
  const auto s = make_study();
  double prev = -1.0;
  for (double t : {0.0, 0.5, 1.0, 2.0, 5.0}) {
    const auto r = s.rates_at(t);
    EXPECT_GE(r.false_negative, prev - 1e-12);
    prev = r.false_negative;
  }
}

TEST(RssiStudy, OneDbThresholdBalancesErrors) {
  // Paper Fig 22: 1 dB achieves both low false positives and low false
  // negatives.
  const auto s = make_study();
  const auto r = s.rates_at(1.0);
  EXPECT_LT(r.false_positive, 0.10);
  EXPECT_LT(r.false_negative, 0.25);
}

TEST(RssiStudy, ExtremeThresholdsDegenerate) {
  const auto s = make_study();
  const auto r0 = s.rates_at(0.0);
  EXPECT_GT(r0.false_positive, 0.4) << "zero threshold flags nearly everything";
  const auto r100 = s.rates_at(100.0);
  EXPECT_DOUBLE_EQ(r100.false_positive, 0.0);
  EXPECT_DOUBLE_EQ(r100.false_negative, 1.0);
}

TEST(RssiStudy, DeterministicForSameSeed) {
  const auto a = make_study(7);
  const auto b = make_study(7);
  ASSERT_EQ(a.deviations().size(), b.deviations().size());
  for (std::size_t i = 0; i < a.deviations().size(); ++i) {
    ASSERT_DOUBLE_EQ(a.deviations()[i], b.deviations()[i]);
  }
  EXPECT_DOUBLE_EQ(a.rates_at(1.0).false_negative, b.rates_at(1.0).false_negative);
}

TEST(RssiStudy, RatesStableAcrossCalls) {
  const auto s = make_study();
  const auto r1 = s.rates_at(1.0);
  const auto r2 = s.rates_at(1.0);
  EXPECT_DOUBLE_EQ(r1.false_negative, r2.false_negative);
  EXPECT_DOUBLE_EQ(r1.false_positive, r2.false_positive);
}

}  // namespace
}  // namespace g80211
