// Composite greedy policy: chaining semantics and an end-to-end combined
// attack (NAV inflation + ACK spoofing at once) with GRC catching both.
#include <gtest/gtest.h>

#include "src/detect/grc.h"
#include "src/greedy/ack_spoofing.h"
#include "src/greedy/composite.h"
#include "src/greedy/fake_ack.h"
#include "src/greedy/nav_inflation.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

TEST(CompositePolicy, DurationAdjustmentsChain) {
  Rng rng(1);
  CompositePolicy combo;
  combo.emplace<NavInflationPolicy>(NavFrameMask::cts_only(), microseconds(100));
  combo.emplace<NavInflationPolicy>(NavFrameMask::cts_only(), microseconds(50));
  EXPECT_EQ(combo.adjust_duration(FrameType::kCts, microseconds(10), rng),
            microseconds(160));
  EXPECT_EQ(combo.adjust_duration(FrameType::kAck, microseconds(10), rng),
            microseconds(10));
  EXPECT_EQ(combo.size(), 2u);
}

TEST(CompositePolicy, BooleanHooksOr) {
  Rng rng(2);
  CompositePolicy combo;
  combo.emplace<AckSpoofingPolicy>(1.0, std::set<int>{7});
  combo.emplace<FakeAckPolicy>(1.0);

  Frame foreign;
  foreign.type = FrameType::kData;
  foreign.ra = 7;
  RxInfo clean;
  EXPECT_TRUE(combo.spoof_ack_for(foreign, clean, rng));
  foreign.ra = 8;
  EXPECT_FALSE(combo.spoof_ack_for(foreign, clean, rng));

  Frame own;
  own.type = FrameType::kData;
  own.ra = 1;
  RxInfo corrupted;
  corrupted.corrupted = true;
  corrupted.addresses_intact = true;
  EXPECT_TRUE(combo.fake_ack_for(own, corrupted, rng));
  EXPECT_FALSE(combo.fake_ack_for(own, clean, rng));
}

TEST(CompositePolicy, EmptyCompositeIsHonest) {
  Rng rng(3);
  CompositePolicy combo;
  EXPECT_EQ(combo.adjust_duration(FrameType::kCts, microseconds(5), rng),
            microseconds(5));
  Frame f;
  f.type = FrameType::kData;
  RxInfo i;
  EXPECT_FALSE(combo.spoof_ack_for(f, i, rng));
}

TEST(CompositePolicy, CombinedAttackEndToEnd) {
  // NAV inflation + ACK spoofing from the same receiver: the victim is
  // hit twice; GRC's two detectors each catch their half.
  auto run = [](bool attack, bool grc_on) {
    SimConfig cfg;
    cfg.measure = seconds(4);
    cfg.seed = 111;
    cfg.default_ber = 2e-4;
    cfg.capture_threshold = 10.0;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_tcp_flow(ns, nr);
    auto fg = sim.add_tcp_flow(gs, gr);
    CompositePolicy combo;
    if (attack) {
      combo.emplace<NavInflationPolicy>(NavFrameMask::cts_only(), milliseconds(5));
      combo.emplace<AckSpoofingPolicy>(1.0, std::set<int>{nr.id()});
      gr.mac().set_greedy_policy(&combo);
    }
    Grc grc(sim.scheduler(), sim.params());
    if (grc_on) {
      grc.protect(ns.mac());
      grc.protect(nr.mac());
    }
    sim.run();
    struct Out {
      double victim, greedy;
      std::int64_t nav_det, spoof_det;
    };
    return Out{fn.goodput_mbps(), fg.goodput_mbps(), grc.nav_detections(),
               grc.spoof_detections()};
  };

  const auto honest = run(false, false);
  const auto attacked = run(true, false);
  const auto defended = run(true, true);
  EXPECT_LT(attacked.victim, 0.25 * honest.victim) << "combined attack bites";
  EXPECT_GT(attacked.greedy, honest.greedy);
  EXPECT_GT(defended.victim, 2.0 * attacked.victim) << "GRC recovers much of it";
  EXPECT_GT(defended.nav_det, 0) << "inflations caught";
  EXPECT_GT(defended.spoof_det, 0) << "spoofs caught";
}

}  // namespace
}  // namespace g80211
