// Broadcast frames and the Bellardo-Savage CTS-jamming DoS baseline
// (reference [2] of the paper), including the paper's comparison claim:
// a greedy receiver starves competitors with tiny NAV inflations while a
// traffic-less DoS attacker must continuously inject large ones.
#include <gtest/gtest.h>

#include "src/detect/grc.h"
#include "src/greedy/cts_jammer.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

struct CountingSink : PacketSink {
  std::vector<PacketPtr> packets;
  void receive(const PacketPtr& p) override { packets.push_back(p); }
};

TEST(Broadcast, DeliveredToAllWithoutAcks) {
  Scheduler sched;
  Channel channel(sched, WifiParams::b11());
  Node tx(sched, channel, 0, {0, 0}, Rng(1));
  Node rx1(sched, channel, 1, {5, 0}, Rng(2));
  Node rx2(sched, channel, 2, {0, 5}, Rng(3));
  CountingSink s1, s2;
  rx1.register_sink(7, &s1);
  rx2.register_sink(7, &s2);

  auto p = make_packet();
  p->flow_id = 7;
  p->size_bytes = 200;
  p->src_node = 0;
  p->dst_node = kBroadcast;
  tx.mac().send(p, kBroadcast);
  sched.run_until(seconds(1));

  EXPECT_EQ(s1.packets.size(), 1u);
  EXPECT_EQ(s2.packets.size(), 1u);
  EXPECT_EQ(tx.mac().stats().rts_sent, 0) << "no RTS for broadcast";
  EXPECT_EQ(rx1.mac().stats().acks_sent, 0) << "no ACK for broadcast";
  EXPECT_EQ(tx.mac().stats().data_success, 1) << "done at transmit";
  EXPECT_EQ(tx.mac().stats().ack_timeouts, 0);
}

TEST(Broadcast, DurationIsZeroAndSetsNoNav) {
  Scheduler sched;
  Channel channel(sched, WifiParams::b11());
  Node tx(sched, channel, 0, {0, 0}, Rng(1));
  Node rx(sched, channel, 1, {5, 0}, Rng(2));

  Frame seen;
  rx.mac().sniffer = [&](const Frame& f, const RxInfo&) { seen = f; };
  auto p = make_packet();
  p->size_bytes = 200;
  p->dst_node = kBroadcast;
  tx.mac().send(p, kBroadcast);
  sched.run_until(seconds(1));

  EXPECT_EQ(seen.type, FrameType::kData);
  EXPECT_EQ(seen.ra, kBroadcast);
  EXPECT_EQ(seen.duration, 0);
  EXPECT_FALSE(rx.mac().nav().busy(sched.now()));
}

TEST(Broadcast, IsNeverFragmented) {
  Scheduler sched;
  Channel channel(sched, WifiParams::b11());
  Node tx(sched, channel, 0, {0, 0}, Rng(1));
  Node rx(sched, channel, 1, {5, 0}, Rng(2));
  tx.mac().set_fragmentation_threshold(200);

  int data_frames = 0;
  rx.mac().sniffer = [&](const Frame& f, const RxInfo&) {
    if (f.type == FrameType::kData) ++data_frames;
  };
  auto p = make_packet();
  p->size_bytes = 1064;
  p->dst_node = kBroadcast;
  tx.mac().send(p, kBroadcast);
  sched.run_until(seconds(1));
  EXPECT_EQ(data_frames, 1);
}

TEST(CtsJammerDos, MaxNavJammingShutsDownTheCell) {
  SimConfig cfg;
  cfg.measure = seconds(4);
  cfg.seed = 41;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& s1 = sim.add_node(l.senders[0]);
  Node& s2 = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  Node& attacker = sim.add_node({1, 4});
  auto f1 = sim.add_udp_flow(s1, r1);
  auto f2 = sim.add_udp_flow(s2, r2);
  CtsJammer jammer(sim.scheduler(), attacker);  // 32767 us NAV every 30 ms
  jammer.start(0);
  sim.run();

  EXPECT_LT(f1.goodput_mbps() + f2.goodput_mbps(), 0.1)
      << "everyone's virtual carrier sense is pinned";
  EXPECT_GT(jammer.cts_sent(), 50);
  EXPECT_LT(jammer.airtime_fraction(), 0.05)
      << "a trickle of frames suffices when each carries the max NAV";
}

TEST(CtsJammerDos, SmallNavJammingIsHarmless) {
  // The paper's contrast: the DoS needs LARGE NAV values. The 0.6 ms that
  // lets a greedy receiver starve competitors (because its sender fills
  // every reserved gap with fresh data) does nothing for a traffic-less
  // jammer at a 30 ms period.
  SimConfig cfg;
  cfg.measure = seconds(4);
  cfg.seed = 42;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& s1 = sim.add_node(l.senders[0]);
  Node& s2 = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  Node& attacker = sim.add_node({1, 4});
  auto f1 = sim.add_udp_flow(s1, r1);
  auto f2 = sim.add_udp_flow(s2, r2);
  CtsJammer::Config jc;
  jc.nav = microseconds(600);
  CtsJammer jammer(sim.scheduler(), attacker, jc);
  jammer.start(0);
  sim.run();
  EXPECT_GT(f1.goodput_mbps() + f2.goodput_mbps(), 3.0)
      << "0.6 ms NAVs every 30 ms cost the cell almost nothing";
}

TEST(CtsJammerDos, GrcNavValidationBlountsTheJammer) {
  auto total_goodput = [](bool grc_on) {
    SimConfig cfg;
    cfg.measure = seconds(4);
    cfg.seed = 43;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(2);
    Node& s1 = sim.add_node(l.senders[0]);
    Node& s2 = sim.add_node(l.senders[1]);
    Node& r1 = sim.add_node(l.receivers[0]);
    Node& r2 = sim.add_node(l.receivers[1]);
    Node& attacker = sim.add_node({1, 4});
    auto f1 = sim.add_udp_flow(s1, r1);
    auto f2 = sim.add_udp_flow(s2, r2);
    CtsJammer jammer(sim.scheduler(), attacker);
    jammer.start(0);
    Grc grc(sim.scheduler(), sim.params(), {.spoof_detection = false});
    if (grc_on) {
      for (Node* n : {&s1, &s2, &r1, &r2}) grc.protect(n->mac());
    }
    sim.run();
    return f1.goodput_mbps() + f2.goodput_mbps();
  };
  const double without = total_goodput(false);
  const double with = total_goodput(true);
  EXPECT_LT(without, 0.1);
  // GRC clamps each rogue CTS to the MTU-exchange bound (~1.5 ms instead
  // of 32.8 ms), recovering most of the cell's capacity.
  EXPECT_GT(with, 2.0);
}

}  // namespace
}  // namespace g80211
