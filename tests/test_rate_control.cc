// ARF rate adaptation: controller unit behaviour, convergence to the
// channel's rate cliff, and the paper's future-work conjectures about how
// auto-rate interacts with fake and spoofed ACKs.
#include <gtest/gtest.h>

#include "src/mac/rate_control.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

// --- Controller unit behaviour ----------------------------------------------

TEST(ArfController, StartsAtRequestedRung) {
  ArfRateController c({1.0, 2.0, 5.5, 11.0}, 2);
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 5.5);
}

TEST(ArfController, StartIndexIsClamped) {
  ArfRateController lo({1.0, 2.0}, -5);
  EXPECT_DOUBLE_EQ(lo.rate_mbps(), 1.0);
  ArfRateController hi({1.0, 2.0}, 99);
  EXPECT_DOUBLE_EQ(hi.rate_mbps(), 2.0);
}

TEST(ArfController, TenSuccessesStepUp) {
  ArfRateController c({1.0, 2.0, 5.5, 11.0}, 0);
  for (int i = 0; i < 9; ++i) c.on_success();
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 1.0);
  c.on_success();
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 2.0);
  EXPECT_EQ(c.ups(), 1);
}

TEST(ArfController, TwoFailuresStepDown) {
  ArfRateController c({1.0, 2.0, 5.5, 11.0}, 2);
  c.on_failure();
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 5.5) << "one failure tolerated";
  c.on_failure();
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 2.0);
  EXPECT_EQ(c.downs(), 1);
}

TEST(ArfController, SuccessClearsFailureStreak) {
  ArfRateController c({1.0, 2.0, 5.5}, 2);
  c.on_failure();
  c.on_success();
  c.on_failure();
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 5.5) << "streak was interrupted";
}

TEST(ArfController, FailedProbeFallsStraightBack) {
  ArfRateController c({1.0, 2.0, 5.5, 11.0}, 0);
  for (int i = 0; i < 10; ++i) c.on_success();  // step up to 2.0, probing
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 2.0);
  c.on_failure();  // first frame at the new rate fails
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 1.0) << "probe failure: immediate fallback";
}

TEST(ArfController, SaturatesAtLadderEnds) {
  ArfRateController c({1.0, 2.0}, 1);
  for (int i = 0; i < 30; ++i) c.on_success();
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 2.0);
  for (int i = 0; i < 30; ++i) c.on_failure();
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 1.0);
}

TEST(ArfController, OscillatesByProbingAtTheCliff) {
  // Channel supports 2.0 but not 5.5: ARF converges to 2.0 with occasional
  // probes up (each immediately knocked back down).
  ArfRateController c({1.0, 2.0, 5.5, 11.0}, 0);
  for (int round = 0; round < 100; ++round) {
    if (c.rate_mbps() <= 2.0) {
      c.on_success();
    } else {
      c.on_failure();
    }
  }
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 2.0);
  EXPECT_GT(c.ups(), 2);
  EXPECT_EQ(c.ups() - 1, c.downs());  // every probe got knocked back
}

// --- AARF -------------------------------------------------------------------

TEST(AarfController, FailedProbesDoublePatience) {
  ArfRateController c({1.0, 2.0, 5.5, 11.0}, 0, 10, 2, /*adaptive=*/true);
  EXPECT_EQ(c.current_up_threshold(), 10);
  for (int i = 0; i < 10; ++i) c.on_success();  // probe up to 2.0
  c.on_failure();                               // probe fails
  EXPECT_DOUBLE_EQ(c.rate_mbps(), 1.0);
  EXPECT_EQ(c.current_up_threshold(), 20);
  for (int i = 0; i < 20; ++i) c.on_success();
  c.on_failure();
  EXPECT_EQ(c.current_up_threshold(), 40);
  // Capped at 50.
  for (int i = 0; i < 40; ++i) c.on_success();
  c.on_failure();
  EXPECT_EQ(c.current_up_threshold(), 50);
}

TEST(AarfController, GenuineFailureResetsPatience) {
  ArfRateController c({1.0, 2.0, 5.5}, 1, 10, 2, true);
  for (int i = 0; i < 10; ++i) c.on_success();  // probe to 5.5
  c.on_failure();                               // probe fails -> patience 20
  EXPECT_EQ(c.current_up_threshold(), 20);
  // Two consecutive non-probe failures: a real channel drop.
  c.on_failure();
  c.on_failure();
  EXPECT_EQ(c.current_up_threshold(), 10) << "reset on a genuine downshift";
}

TEST(AarfController, ProbesLessOftenAtACliff) {
  auto probes_in = [](bool adaptive) {
    ArfRateController c({1.0, 2.0, 5.5, 11.0}, 0, 10, 2, adaptive);
    for (int round = 0; round < 600; ++round) {
      if (c.rate_mbps() <= 2.0) {
        c.on_success();
      } else {
        c.on_failure();
      }
    }
    return c.ups();
  };
  EXPECT_LT(probes_in(true), probes_in(false) / 2)
      << "AARF wastes far fewer frames probing a hard cliff";
}

TEST(AarfController, EquallyBlindToFakeAcks) {
  // The security point: fake ACKs make every probe "succeed", so AARF's
  // backoff logic never engages and it climbs the ladder exactly like ARF.
  for (const bool adaptive : {false, true}) {
    ArfRateController c({1.0, 2.0, 5.5, 11.0}, 0, 10, 2, adaptive);
    for (int i = 0; i < 40; ++i) c.on_success();  // all fake
    EXPECT_DOUBLE_EQ(c.rate_mbps(), 11.0) << "adaptive=" << adaptive;
  }
}

TEST(AarfMac, EnableAutoRateAdaptiveFlagPropagates) {
  SimConfig cfg;
  cfg.measure = seconds(2);
  cfg.seed = 141;
  cfg.rts_cts = false;
  Sim sim(cfg);
  const auto l = pairs_in_range(1);
  Node& s = sim.add_node(l.senders[0]);
  Node& r = sim.add_node(l.receivers[0]);
  auto f = sim.add_udp_flow(s, r);
  s.mac().enable_auto_rate(1.0, /*adaptive=*/true);
  sim.channel().error_model().set_link_rate_limit(s.id(), r.id(), 5.5);
  sim.run();
  const auto* ctrl = s.mac().rate_controller(r.id());
  ASSERT_NE(ctrl, nullptr);
  EXPECT_DOUBLE_EQ(s.mac().data_rate_to(r.id()), 5.5);
  EXPECT_GT(ctrl->current_up_threshold(), 10) << "probe failures backed off";
  EXPECT_GT(f.goodput_mbps(), 2.0);
}

// --- MAC integration ---------------------------------------------------------

TEST(AutoRateMac, FixedRateByDefault) {
  SimConfig cfg;
  cfg.measure = seconds(1);
  Sim sim(cfg);
  const auto l = pairs_in_range(1);
  Node& s = sim.add_node(l.senders[0]);
  Node& r = sim.add_node(l.receivers[0]);
  auto f = sim.add_udp_flow(s, r);
  sim.run();
  EXPECT_FALSE(s.mac().auto_rate());
  EXPECT_DOUBLE_EQ(s.mac().data_rate_to(r.id()), 11.0);
  EXPECT_EQ(s.mac().rate_controller(r.id()), nullptr);
  (void)f;
}

TEST(AutoRateMac, ConvergesToLinkCliff) {
  SimConfig cfg;
  cfg.measure = seconds(4);
  cfg.seed = 5;
  Sim sim(cfg);
  const auto l = pairs_in_range(1);
  Node& s = sim.add_node(l.senders[0]);
  Node& r = sim.add_node(l.receivers[0]);
  auto f = sim.add_udp_flow(s, r);
  s.mac().enable_auto_rate(/*start=*/1.0);
  // The channel only sustains 5.5 Mbps.
  sim.channel().error_model().set_link_rate_limit(s.id(), r.id(), 5.5);
  sim.run();
  EXPECT_DOUBLE_EQ(s.mac().data_rate_to(r.id()), 5.5);
  const auto* ctrl = s.mac().rate_controller(r.id());
  ASSERT_NE(ctrl, nullptr);
  EXPECT_GT(ctrl->ups(), 2) << "climbed from 1 Mbps and kept probing";
  EXPECT_GT(f.goodput_mbps(), 2.0);
}

TEST(AutoRateMac, CleanChannelReachesTopRate) {
  SimConfig cfg;
  cfg.measure = seconds(3);
  Sim sim(cfg);
  const auto l = pairs_in_range(1);
  Node& s = sim.add_node(l.senders[0]);
  Node& r = sim.add_node(l.receivers[0]);
  auto f = sim.add_udp_flow(s, r);
  s.mac().enable_auto_rate(1.0);
  sim.run();
  EXPECT_DOUBLE_EQ(s.mac().data_rate_to(r.id()), 11.0);
  EXPECT_GT(f.goodput_mbps(), 3.0);
}

TEST(AutoRateMac, RatesArePerDestination) {
  SimConfig cfg;
  cfg.measure = seconds(4);
  cfg.seed = 9;
  Sim sim(cfg);
  const auto l = shared_ap(2);
  Node& ap = sim.add_node(l.ap);
  Node& good = sim.add_node(l.clients[0]);
  Node& bad = sim.add_node(l.clients[1]);
  auto f1 = sim.add_udp_flow(ap, good, 4.0);
  auto f2 = sim.add_udp_flow(ap, bad, 4.0);
  ap.mac().enable_auto_rate(1.0);
  sim.channel().error_model().set_link_rate_limit(ap.id(), bad.id(), 2.0);
  sim.run();
  EXPECT_DOUBLE_EQ(ap.mac().data_rate_to(good.id()), 11.0);
  EXPECT_DOUBLE_EQ(ap.mac().data_rate_to(bad.id()), 2.0);
  (void)f1;
  (void)f2;
}

// --- The paper's future-work conjectures (Section IX) ------------------------

TEST(AutoRateMisbehavior, FakeAcksBackfireUnderAutoRate) {
  // "The damage of faking ACKs may reduce under autorate, since without
  // correct feedback the transmitter may not choose the best modulation
  // scheme": the fake ACKs hold GS above the cliff where nothing decodes.
  auto greedy_run = [](bool fake) {
    SimConfig cfg;
    cfg.measure = seconds(5);
    cfg.seed = 17;
    cfg.rts_cts = false;
    Sim sim(cfg);
    const auto l = pairs_in_range(1);
    Node& gs = sim.add_node(l.senders[0]);
    Node& gr = sim.add_node(l.receivers[0]);
    auto f = sim.add_udp_flow(gs, gr);
    gs.mac().enable_auto_rate(1.0);
    // The channel sustains 5.5 Mbps; 11 Mbps is a cliff (90% FER).
    sim.channel().error_model().set_link_rate_limit(gs.id(), gr.id(), 5.5);
    if (fake) sim.make_fake_acker(gr, 1.0);
    sim.run();
    const auto* ctrl = gs.mac().rate_controller(gr.id());
    return std::pair{f.goodput_mbps(), ctrl ? ctrl->ups() : 0};
  };
  const auto [honest_goodput, honest_ups] = greedy_run(false);
  const auto [faked_goodput, faked_ups] = greedy_run(true);
  // Honest ARF sits at the cliff, probing up and immediately falling back
  // (many up/down cycles); the fake-ACKed controller gets stuck above the
  // cliff for long stretches (few transitions), decoding almost nothing.
  EXPECT_GT(honest_ups, 4 * std::max<std::int64_t>(faked_ups, 1));
  EXPECT_LT(faked_goodput, 0.5 * honest_goodput)
      << "the cheater mostly receives corrupted frames it pretended to ACK";
}

TEST(AutoRateMisbehavior, SpoofedAcksBlindTheVictimsRateControl) {
  // "The damage of spoofing ACKs can increase with auto-rate": NS's
  // controller, fed spoofed ACKs, keeps the rate above what NR can decode,
  // so the victim loses even the residual goodput it kept at fixed rate.
  auto victim_goodput = [](bool attack) {
    SimConfig cfg;
    cfg.measure = seconds(5);
    cfg.seed = 19;
    cfg.rts_cts = false;
    cfg.capture_threshold = 10.0;
    Sim sim(cfg);
    const auto l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_udp_flow(ns, nr, 6.0);
    auto fg = sim.add_udp_flow(gs, gr, 6.0);
    ns.mac().enable_auto_rate(1.0);
    // NR's channel only decodes up to 5.5 Mbps; ARF must discover that.
    sim.channel().error_model().set_link_rate_limit(ns.id(), nr.id(), 5.5);
    if (attack) sim.make_ack_spoofer(gr, 1.0, {nr.id()});
    sim.run();
    (void)fg;
    return fn.goodput_mbps();
  };
  const double honest = victim_goodput(false);   // ARF settles at 5.5 Mbps
  const double blinded = victim_goodput(true);   // spoofs hide NR's losses
  EXPECT_GT(honest, 1.0) << "rate adaptation serves the honest victim well";
  EXPECT_LT(blinded, 0.5 * honest)
      << "spoofed ACKs deny the victim the benefit of rate adaptation";
}

}  // namespace
}  // namespace g80211
