// Transport layer: CBR pacing, UDP sink accounting, TCP sender/sink
// dynamics (slow start, fast retransmit, NewReno recovery, RTO backoff).
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/scheduler.h"
#include "src/transport/cbr.h"
#include "src/transport/tcp_sender.h"
#include "src/transport/tcp_sink.h"
#include "src/transport/udp_sink.h"

namespace g80211 {
namespace {

TEST(Cbr, PacesAtConfiguredRate) {
  Scheduler sched;
  CbrSource::Config cfg;
  cfg.payload_bytes = 1024;
  cfg.rate_mbps = 8.192;  // exactly 1000 packets/s
  CbrSource src(sched, cfg, 1, 0, 1);
  std::vector<PacketPtr> out;
  src.output = [&](PacketPtr p) { out.push_back(std::move(p)); };
  src.start(0);
  sched.run_until(seconds(1));
  EXPECT_NEAR(static_cast<double>(out.size()), 1000.0, 10.0);
  EXPECT_EQ(out[0]->size_bytes, 1024 + 40);
  EXPECT_EQ(out[5]->seq, 5);
}

TEST(Cbr, StopHaltsGeneration) {
  Scheduler sched;
  CbrSource::Config cfg;
  CbrSource src(sched, cfg, 1, 0, 1);
  int n = 0;
  src.output = [&](PacketPtr) { ++n; };
  src.start(0);
  src.stop(milliseconds(100));
  sched.run_until(seconds(1));
  const int at_100ms = n;
  sched.run_until(seconds(2));
  EXPECT_EQ(n, at_100ms);
  EXPECT_GT(n, 0);
}

TEST(UdpSink, CountsUniquePayloadAndGoodput) {
  Scheduler sched;
  UdpSink sink(sched, 1024);
  auto mk = [](std::int64_t seq) {
    auto p = make_packet();
    p->seq = seq;
    p->size_bytes = 1064;
    return p;
  };
  sink.receive(mk(0));
  sink.receive(mk(1));
  sink.receive(mk(1));  // transport-level duplicate
  sink.receive(mk(2));
  EXPECT_EQ(sink.packets(), 3);
  EXPECT_EQ(sink.duplicates(), 1);
  EXPECT_EQ(sink.payload_bytes_received(), 3 * 1024);
  sched.run_until(seconds(1));
  EXPECT_NEAR(sink.goodput_mbps(), 3 * 1024 * 8.0 / 1e6, 1e-9);
}

TEST(UdpSink, ResetStartsMeasurementWindow) {
  Scheduler sched;
  UdpSink sink(sched, 1024);
  auto p = make_packet();
  p->seq = 0;
  sink.receive(p);
  sched.run_until(seconds(1));
  sink.reset();
  EXPECT_EQ(sink.packets(), 0);
  EXPECT_DOUBLE_EQ(sink.goodput_mbps(), 0.0);
}

// --- A loopback harness for TCP: sender and sink joined by a configurable
// --- lossy, delayed pipe.
class TcpHarness {
 public:
  explicit TcpHarness(Time one_way = milliseconds(5),
                      TcpSender::Config cfg = TcpSender::Config{})
      : sender(sched, cfg, 1, 0, 1), sink(sched, 1, 1, 0, cfg.mss_bytes) {
    sender.output = [this, one_way](PacketPtr p) {
      if (drop_next_data > 0 && !p->tcp.is_ack) {
        --drop_next_data;
        ++dropped;
        return;
      }
      if (drop_seqs.count(p->tcp.seq) && !p->tcp.is_ack) {
        drop_seqs.erase(p->tcp.seq);
        ++dropped;
        return;
      }
      sched.after(one_way, [this, p] { sink.receive(p); });
    };
    sink.output = [this, one_way](PacketPtr p) {
      sched.after(one_way, [this, p] { sender.receive(p); });
    };
  }

  Scheduler sched;
  TcpSender sender;
  TcpSink sink;
  int drop_next_data = 0;
  std::set<std::int64_t> drop_seqs;
  int dropped = 0;
};

TEST(Tcp, LosslessDeliveryIsInOrderAndComplete) {
  TcpHarness h;
  h.sender.start(0);
  h.sched.run_until(seconds(2));
  EXPECT_EQ(h.sender.retransmissions(), 0);
  EXPECT_EQ(h.sender.timeouts(), 0);
  EXPECT_GT(h.sink.segments(), 1000);
  EXPECT_EQ(h.sink.next_expected(), h.sink.segments());
  EXPECT_EQ(h.sink.duplicates(), 0);
}

TEST(Tcp, SlowStartDoublesWindowPerRtt) {
  TcpHarness h(milliseconds(50));
  h.sender.start(0);
  // After ~3 RTTs of slow start from cwnd=2: roughly 2 -> 4 -> 8 -> 16.
  h.sched.run_until(milliseconds(320));
  EXPECT_GT(h.sender.cwnd(), 10.0);
  EXPECT_LT(h.sender.cwnd(), 40.0);
  EXPECT_EQ(h.sender.timeouts(), 0);
}

TEST(Tcp, SingleLossRecoversByFastRetransmit) {
  TcpHarness h;
  h.sender.start(0);
  h.sched.run_until(milliseconds(500));
  const auto timeouts_before = h.sender.timeouts();
  h.drop_next_data = 1;  // the next segment entering the pipe vanishes
  h.sched.run_until(seconds(2));
  EXPECT_EQ(h.sender.timeouts(), timeouts_before) << "no RTO for a single loss";
  EXPECT_GE(h.sender.retransmissions(), 1);
  EXPECT_EQ(h.sink.next_expected(), h.sink.segments());
}

TEST(Tcp, BurstLossRecoversViaNewRenoWithoutStall) {
  TcpHarness h;
  h.sender.start(0);
  h.sched.run_until(milliseconds(500));
  h.drop_next_data = 8;  // eight consecutive segments vanish
  const std::int64_t before = h.sink.segments();
  h.sched.run_until(seconds(3));
  // Recovery happened and the connection kept moving at a healthy rate.
  EXPECT_GE(h.sender.retransmissions(), 8);
  EXPECT_GT(h.sink.segments() - before, 2000) << "burst loss must not stall";
  EXPECT_EQ(h.sink.next_expected(), h.sink.segments());
}

TEST(Tcp, LossReducesCwnd) {
  TcpHarness h;
  h.sender.start(0);
  h.sched.run_until(milliseconds(500));
  const double before = h.sender.cwnd();
  h.drop_next_data = 1;
  h.sched.run_until(milliseconds(700));
  EXPECT_LT(h.sender.cwnd(), before);
}

TEST(Tcp, CompleteBlackoutBacksOffExponentially) {
  TcpHarness h;
  h.sender.start(0);
  h.sched.run_until(milliseconds(200));
  h.drop_next_data = 1000000;  // the pipe goes dark for data
  h.sched.run_until(seconds(10));
  EXPECT_GE(h.sender.timeouts(), 3);
  // RTO grew beyond its floor.
  EXPECT_GT(h.sender.rto(), milliseconds(400));
}

TEST(Tcp, RtoBackoffResetsOnNewAck) {
  TcpHarness h;
  h.sender.start(0);
  h.sched.run_until(milliseconds(200));
  h.drop_next_data = 50;
  h.sched.run_until(seconds(5));  // a few timeouts may occur
  const Time rto_after_recovery = h.sender.rto();
  // Once flowing again, the RTO must be back near its base.
  EXPECT_LT(rto_after_recovery, milliseconds(400));
  EXPECT_EQ(h.sink.next_expected(), h.sink.segments());
}

TEST(Tcp, AvgCwndIsTimeWeighted) {
  TcpHarness h;
  h.sender.start(0);
  h.sched.run_until(seconds(1));
  const double avg = h.sender.avg_cwnd();
  EXPECT_GT(avg, 1.0);
  EXPECT_LE(avg, 128.0);
  h.sender.reset_stats();
  h.sched.run_until(seconds(1) + milliseconds(1));
  // Right after a reset the average tracks the current window.
  EXPECT_NEAR(h.sender.avg_cwnd(), h.sender.cwnd(), h.sender.cwnd() * 0.5);
}

TEST(Tcp, MaxWindowCapsFlight) {
  TcpSender::Config cfg;
  cfg.max_window = 4;
  TcpHarness h(milliseconds(200), cfg);
  h.sender.start(0);
  h.sched.run_until(milliseconds(150));  // < 1 RTT: nothing acked yet
  EXPECT_LE(h.sender.segments_sent(), 4);
}

TEST(Tcp, SinkAcksCumulativelyThroughReordering) {
  Scheduler sched;
  TcpSink sink(sched, 1, 1, 0, 1024);
  std::vector<std::int64_t> acks;
  sink.output = [&](PacketPtr p) { acks.push_back(p->tcp.ack); };
  auto seg = [](std::int64_t seq) {
    auto p = make_packet();
    p->tcp.seq = seq;
    p->tcp.is_ack = false;
    p->size_bytes = 1064;
    return p;
  };
  sink.receive(seg(0));
  sink.receive(seg(2));  // hole at 1
  sink.receive(seg(3));
  sink.receive(seg(1));  // fills the hole
  ASSERT_EQ(acks.size(), 4u);
  EXPECT_EQ(acks[0], 1);
  EXPECT_EQ(acks[1], 1);  // dupack
  EXPECT_EQ(acks[2], 1);  // dupack
  EXPECT_EQ(acks[3], 4);  // cumulative jump
  EXPECT_EQ(sink.segments(), 4);
}

TEST(Tcp, SinkCountsDuplicateSegments) {
  Scheduler sched;
  TcpSink sink(sched, 1, 1, 0, 1024);
  sink.output = [](PacketPtr) {};
  auto seg = [](std::int64_t seq) {
    auto p = make_packet();
    p->tcp.seq = seq;
    p->size_bytes = 1064;
    return p;
  };
  sink.receive(seg(0));
  sink.receive(seg(0));
  EXPECT_EQ(sink.segments(), 1);
  EXPECT_EQ(sink.duplicates(), 1);
}

TEST(Tcp, SinkIgnoresAckPackets) {
  Scheduler sched;
  TcpSink sink(sched, 1, 1, 0, 1024);
  int emitted = 0;
  sink.output = [&](PacketPtr) { ++emitted; };
  auto p = make_packet();
  p->tcp.is_ack = true;
  sink.receive(p);
  EXPECT_EQ(emitted, 0);
  EXPECT_EQ(sink.segments(), 0);
}

TEST(Tcp, GoodputMatchesDeliveredPayload) {
  TcpHarness h;
  h.sender.start(0);
  h.sched.run_until(seconds(1));
  h.sink.reset();
  const std::int64_t before = h.sink.segments();
  h.sched.run_until(seconds(2));
  const double expect =
      static_cast<double>((h.sink.segments() - before) * 1024 * 8) / 1e6;
  EXPECT_NEAR(h.sink.goodput_mbps(), expect, 0.02 * expect + 0.01);
}

}  // namespace
}  // namespace g80211
