// Roaming under churn (net/mobility.h through the scenario-spec builder):
// a station walks between two BSSs while its downlink flow is active. The
// association handoff must re-point delivery at the new AP, the old AP
// must stop transmitting to the station (its queue is flushed; only the
// frame already in service may finish), and the whole world must be
// deterministic across G80211_JOBS / campaign thread counts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "src/mac/mac.h"
#include "src/net/queue.h"
#include "src/runner/campaign.h"
#include "src/scenario/spec/world_builder.h"
#include "src/scenario/spec/world_spec.h"

using namespace g80211;
using namespace g80211::spec;

namespace {

// Two APs 40 m apart; roamers walk at 10 m/s with 2 m hysteresis, so a
// full leg takes ~4 s and the crossover lands near the midpoint. Churn and
// web traffic stay on so the handoff happens in a busy, bursty cell.
const char* kRoamToml = R"(
[world]
name = "roamworld"
seed = 6
warmup_s = 0.5
measure_s = 6.0

[aps]
cols = 2
rows = 1
pitch_m = 40.0

[stations]
per_ap = 3
radius_m = 5.0

[churn]
fraction = 0.3
mean_on_s = 1.0
mean_off_s = 0.5

[roaming]
fraction = 0.9
speed_mps = 10.0
hysteresis_m = 2.0

[[traffic]]
class = "cbr"
weight = 1.0
rate_mbps = 1.0

[[traffic]]
class = "web"
weight = 1.0
rate_mbps = 2.0
burst_s = 0.5
idle_s = 0.5

[metrics]
window_s = 0.5
)";

WorldSpec roam_spec() { return parse_world_spec_text(kRoamToml, "roam"); }

TEST(Roaming, HandoffDeliversThroughTheNewApOnly) {
  const WorldSpec spec = roam_spec();
  BuiltWorld world(spec);

  // Pick the first planned roamer; the plan is a pure function of the spec.
  int roamer = -1;
  for (std::size_t s = 0; s < world.plan().stations.size(); ++s) {
    if (world.plan().stations[s].roams) {
      roamer = static_cast<int>(s);
      break;
    }
  }
  ASSERT_GE(roamer, 0) << "spec must plan at least one roaming station";
  const StationPlan& plan = world.plan().stations[static_cast<std::size_t>(roamer)];
  const int station_id = world.station_node(roamer).id();

  struct Handoff {
    int from = -1, to = -1;
    std::int64_t old_ap_attempts = 0;  // old AP's attempts at handoff time
    std::size_t old_ap_queued = 0;     // old AP's queue right after handoff
  };
  std::vector<Handoff> handoffs;
  world.on_handoff = [&](int station, int from, int to, Time) {
    if (station != roamer) return;
    Handoff h;
    h.from = from;
    h.to = to;
    h.old_ap_attempts = world.ap_node(from).mac().dest_counters(station_id).attempts;
    h.old_ap_queued = world.ap_node(from).mac().queue_size();
    handoffs.push_back(h);
  };

  world.run();

  ASSERT_FALSE(handoffs.empty()) << "the walk must cross the hysteresis point";
  // First handoff leaves the home AP for the planned target.
  EXPECT_EQ(handoffs.front().from, plan.ap);
  EXPECT_EQ(handoffs.front().to, plan.roam_target_ap);

  // After the final handoff, the serving AP keeps delivering...
  const Handoff& last = handoffs.back();
  const Mac::DestCounters& new_ap =
      world.ap_node(last.to).mac().dest_counters(station_id);
  EXPECT_GT(new_ap.successes, 0);

  // ...while the abandoned AP sends at most the one frame that was already
  // in service when its queue was flushed (plus its retries).
  const Mac::DestCounters& old_ap =
      world.ap_node(last.from).mac().dest_counters(station_id);
  EXPECT_LE(old_ap.attempts - last.old_ap_attempts, 8)
      << "old AP kept transmitting to the departed station";
}

TEST(Roaming, WorldIsDeterministicAcrossCampaignThreadCounts) {
  // The roaming world as a campaign job: N-thread campaign output must be
  // bit-identical to the 1-thread reference (the G80211_JOBS contract).
  const auto body = [](std::uint64_t seed) {
    WorldSpec spec = roam_spec();
    spec.seed = seed;
    spec.measure_s = 2.0;  // short: the campaign runs this 4x per sweep
    BuiltWorld world(spec);
    world.run();
    return std::vector<double>{world.summary().honest_mbps.mean(),
                               static_cast<double>(world.summary().handoffs),
                               world.summary().honest_mbps.p50()};
  };
  const auto sweep = [&](unsigned threads) {
    Campaign c("", {});
    c.add("a", 0.0, 6, 2, body);
    c.add("b", 1.0, 7, 2, body);
    return c.run(threads);
  };

  const std::vector<CampaignPoint> one = sweep(1);
  const std::vector<CampaignPoint> two = sweep(2);
  ASSERT_EQ(one.size(), two.size());
  std::int64_t total_handoffs = 0;
  for (std::size_t p = 0; p < one.size(); ++p) {
    ASSERT_EQ(one[p].median.size(), two[p].median.size());
    for (std::size_t m = 0; m < one[p].median.size(); ++m) {
      // Bitwise equality, not approximate: the determinism contract.
      EXPECT_EQ(one[p].median[m], two[p].median[m]);
      EXPECT_EQ(one[p].p25[m], two[p].p25[m]);
      EXPECT_EQ(one[p].p75[m], two[p].p75[m]);
    }
    total_handoffs += static_cast<std::int64_t>(one[p].median[1]);
  }
  EXPECT_GT(total_handoffs, 0) << "sweep must exercise actual handoffs";
}

TEST(Roaming, QueueEraseDestDropsOnlyThatDestination) {
  DropTailQueue q(8);
  const auto pkt = [] { return PacketPtr{}; };
  EXPECT_TRUE(q.push(pkt(), 1));
  EXPECT_TRUE(q.push(pkt(), 2));
  EXPECT_TRUE(q.push(pkt(), 1));
  EXPECT_TRUE(q.push(pkt(), 3));
  EXPECT_EQ(q.erase_dest(1), 2u);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.erase_dest(1), 0u);
  EXPECT_EQ(q.pop().second, 2);
  EXPECT_EQ(q.pop().second, 3);
  EXPECT_EQ(q.drops(), 0);  // erased packets are not congestion drops
}

}  // namespace
