// MAC building blocks in isolation: NAV update rule, backoff/CW state
// machine, duplicate detection.
#include <gtest/gtest.h>

#include "src/mac/backoff.h"
#include "src/mac/dedup.h"
#include "src/mac/nav.h"

namespace g80211 {
namespace {

// --- NAV -------------------------------------------------------------------

TEST(Nav, StartsIdle) {
  Nav nav;
  EXPECT_FALSE(nav.busy(0));
  EXPECT_EQ(nav.expiry(), 0);
}

TEST(Nav, UpdateSetsExpiry) {
  Nav nav;
  EXPECT_TRUE(nav.update(microseconds(100), microseconds(500)));
  EXPECT_TRUE(nav.busy(microseconds(300)));
  EXPECT_TRUE(nav.busy(microseconds(599)));
  EXPECT_FALSE(nav.busy(microseconds(600)));  // expiry is exclusive
}

TEST(Nav, OnlyLaterExpiryWins) {
  // The IEEE rule NAV inflation exploits: updates only apply when they
  // extend the reservation.
  Nav nav;
  EXPECT_TRUE(nav.update(0, microseconds(1000)));
  EXPECT_FALSE(nav.update(microseconds(100), microseconds(500)));  // 600 < 1000
  EXPECT_EQ(nav.expiry(), microseconds(1000));
  EXPECT_TRUE(nav.update(microseconds(100), microseconds(1500)));
  EXPECT_EQ(nav.expiry(), microseconds(1600));
}

TEST(Nav, ZeroDurationNeverBusies) {
  Nav nav;
  EXPECT_FALSE(nav.update(microseconds(50), 0));
  EXPECT_FALSE(nav.busy(microseconds(50)));
}

TEST(Nav, ResetClears) {
  Nav nav;
  nav.update(0, seconds(1));
  nav.reset();
  EXPECT_FALSE(nav.busy(1));
}

// --- Backoff ---------------------------------------------------------------

TEST(Backoff, StartsAtCwMin) {
  Backoff b(31, 1023);
  EXPECT_EQ(b.cw(), 31);
}

TEST(Backoff, DoublesOnFailureUpToMax) {
  Backoff b(31, 1023);
  const int expected[] = {63, 127, 255, 511, 1023, 1023, 1023};
  for (const int e : expected) {
    b.fail();
    EXPECT_EQ(b.cw(), e);
  }
}

TEST(Backoff, ResetReturnsToMin) {
  Backoff b(31, 1023);
  b.fail();
  b.fail();
  b.reset();
  EXPECT_EQ(b.cw(), 31);
}

TEST(Backoff, ClampedFailureKeepsWindow) {
  // The fake-ACK testbed-emulation knob: CW pinned at its current value.
  Backoff b(31, 1023);
  b.fail(/*clamped=*/true);
  EXPECT_EQ(b.cw(), 31);
  b.fail(false);
  b.fail(true);
  EXPECT_EQ(b.cw(), 63);
}

TEST(Backoff, DrawsWithinWindow) {
  Backoff b(31, 1023);
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const int slots = b.draw(rng);
    ASSERT_GE(slots, 0);
    ASSERT_LE(slots, 31);
  }
}

TEST(Backoff, AverageCwTracksDraws) {
  Backoff b(31, 1023);
  Rng rng(18);
  b.draw(rng);  // cw = 31
  b.fail();
  b.draw(rng);  // cw = 63
  EXPECT_DOUBLE_EQ(b.average_cw(), 47.0);
  EXPECT_EQ(b.draws(), 2);
}

TEST(Backoff, AverageCwBeforeAnyDrawIsCwMin) {
  Backoff b(15, 1023);
  EXPECT_DOUBLE_EQ(b.average_cw(), 15.0);
}

TEST(Backoff, HistogramRecordsWindowPerDraw) {
  Backoff b(31, 1023);
  Rng rng(19);
  b.draw(rng);
  b.draw(rng);
  b.fail();
  b.draw(rng);
  const auto& h = b.cw_histogram();
  EXPECT_EQ(h.at(31), 2);
  EXPECT_EQ(h.at(63), 1);
}

TEST(Backoff, DrawDistributionIsRoughlyUniform) {
  Backoff b(7, 1023);
  Rng rng(20);
  int counts[8] = {0};
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[b.draw(rng)];
  for (int v = 0; v <= 7; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / n, 1.0 / 8.0, 0.01) << v;
  }
}

// --- Dedup -----------------------------------------------------------------

TEST(Dedup, FreshFrameIsNotDuplicate) {
  DedupCache d;
  EXPECT_FALSE(d.is_duplicate(1, 10, false));
}

TEST(Dedup, RetryWithSameSeqIsDuplicate) {
  DedupCache d;
  EXPECT_FALSE(d.is_duplicate(1, 10, false));
  EXPECT_TRUE(d.is_duplicate(1, 10, true));
  EXPECT_TRUE(d.is_duplicate(1, 10, true));  // still duplicate
}

TEST(Dedup, RetryOfUnseenSeqIsNotDuplicate) {
  // A retry whose first transmission we missed must be delivered.
  DedupCache d;
  EXPECT_FALSE(d.is_duplicate(1, 10, true));
}

TEST(Dedup, NonRetryWithSameSeqIsNotDuplicate) {
  // Sequence numbers wrap in real 802.11; without the retry bit a repeat
  // seq is a new frame.
  DedupCache d;
  EXPECT_FALSE(d.is_duplicate(1, 10, false));
  EXPECT_FALSE(d.is_duplicate(1, 10, false));
}

TEST(Dedup, CacheIsPerTransmitter) {
  DedupCache d;
  EXPECT_FALSE(d.is_duplicate(1, 10, false));
  EXPECT_FALSE(d.is_duplicate(2, 10, true));  // different TA, unseen
}

TEST(Dedup, NewSeqReplacesCacheEntry) {
  DedupCache d;
  EXPECT_FALSE(d.is_duplicate(1, 10, false));
  EXPECT_FALSE(d.is_duplicate(1, 11, false));
  EXPECT_FALSE(d.is_duplicate(1, 10, true)) << "older seq fell out of cache";
}

}  // namespace
}  // namespace g80211
