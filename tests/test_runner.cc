// Campaign runner: determinism across thread counts, exception
// propagation, edge cases, metric export, and a two-Sims-on-two-threads
// smoke test guarding against shared-mutable-state regressions in the
// simulator core.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <regex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "src/runner/campaign.h"
#include "src/runner/metric_sink.h"
#include "src/runner/thread_pool.h"
#include "src/scenario/experiment.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"
#include "src/sim/rng.h"

namespace g80211 {
namespace {

// A cheap deterministic "simulation": a few RNG-driven metrics that depend
// on every bit of the seed and the per-job parameters.
std::vector<double> fake_metrics(std::uint64_t seed, double x, int n_metrics) {
  Rng rng(seed);
  std::vector<double> out;
  for (int m = 0; m < n_metrics; ++m) {
    out.push_back(x + rng.uniform() + 0.01 * rng.normal());
  }
  return out;
}

Campaign make_campaign(const std::string& figure, int points, int runs,
                       int n_metrics) {
  Campaign c(figure, {});
  for (int j = 0; j < points; ++j) {
    const double x = 0.5 * j;
    c.add(std::to_string(j), x, 1000 + static_cast<std::uint64_t>(10 * j), runs,
          [x, n_metrics](std::uint64_t seed) {
            return fake_metrics(seed, x, n_metrics);
          });
  }
  return c;
}

bool points_identical(const std::vector<CampaignPoint>& a,
                      const std::vector<CampaignPoint>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].label != b[i].label || a[i].x != b[i].x ||
        a[i].n_runs != b[i].n_runs || a[i].base_seed != b[i].base_seed ||
        a[i].median != b[i].median || a[i].p25 != b[i].p25 ||
        a[i].p75 != b[i].p75) {
      return false;
    }
  }
  return true;
}

TEST(ThreadPool, RunsAllTasksAcrossWorkers) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, InlineModeRunsOnCaller) {
  ThreadPool pool(0);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  pool.wait();
  EXPECT_EQ(ran_on, caller);
  EXPECT_EQ(pool.size(), 0u);
}

TEST(ThreadPool, WaitRethrowsEarliestSubmittedFailure) {
  ThreadPool pool(3);
  for (int i = 0; i < 20; ++i) {
    pool.submit([i] {
      if (i == 4 || i == 11) {
        throw std::runtime_error("task " + std::to_string(i) + " failed");
      }
    });
  }
  try {
    pool.wait();
    FAIL() << "expected wait() to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 4 failed");
  }
  pool.wait();  // error consumed; pool reusable
}

// The core determinism contract: aggregated output is bit-identical
// between 1 worker (the serial reference) and many, over several
// differently-shaped campaigns.
TEST(Campaign, DeterministicAcrossThreadCounts) {
  const struct {
    int points, runs, metrics;
  } shapes[] = {{5, 5, 3}, {9, 2, 1}, {1, 7, 4}};
  int i = 0;
  for (const auto& s : shapes) {
    const std::string fig;  // quiet campaigns: no export, no summary line
    auto serial = make_campaign(fig, s.points, s.runs, s.metrics).run(1);
    auto parallel8 = make_campaign(fig, s.points, s.runs, s.metrics).run(8);
    auto parallel3 = make_campaign(fig, s.points, s.runs, s.metrics).run(3);
    EXPECT_TRUE(points_identical(serial, parallel8)) << "shape " << i;
    EXPECT_TRUE(points_identical(serial, parallel3)) << "shape " << i;
    ++i;
  }
}

TEST(Campaign, PropagatesJobExceptions) {
  Campaign c("", {});
  c.add("ok", 0.0, 1, 3, [](std::uint64_t) { return std::vector<double>{1.0}; });
  c.add("boom", 1.0, 2, 3, [](std::uint64_t seed) -> std::vector<double> {
    if (seed == 3) throw std::runtime_error("seed 3 exploded");
    return {1.0};
  });
  try {
    c.run(4);
    FAIL() << "expected run() to rethrow the job failure";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "seed 3 exploded");
  }
}

TEST(Campaign, EmptyCampaignYieldsNoPoints) {
  Campaign c("", {});
  EXPECT_TRUE(c.run(4).empty());
  EXPECT_TRUE(c.run(1).empty());
}

TEST(Campaign, SingleJobSingleRun) {
  Campaign c("", {});
  c.add("only", 2.5, 42, 1,
        [](std::uint64_t seed) { return fake_metrics(seed, 2.5, 2); });
  const auto pts = c.run(4);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_EQ(pts[0].median, fake_metrics(42, 2.5, 2));
  EXPECT_EQ(pts[0].p25, pts[0].median);  // one sample: all quantiles equal
  EXPECT_EQ(pts[0].p75, pts[0].median);
}

TEST(Campaign, RejectsNonPositiveRuns) {
  Campaign c("", {});
  EXPECT_THROW(
      c.add("bad", 0.0, 1, 0,
            [](std::uint64_t) { return std::vector<double>{}; }),
      std::invalid_argument);
  EXPECT_THROW(
      c.add("bad", 0.0, 1, -2,
            [](std::uint64_t) { return std::vector<double>{}; }),
      std::invalid_argument);
  EXPECT_THROW(c.add("nobody", 0.0, 1, 1, nullptr), std::invalid_argument);
}

TEST(Campaign, RejectsInconsistentMetricSizes) {
  Campaign c("", {});
  c.add("ragged", 0.0, 10, 3, [](std::uint64_t seed) {
    return std::vector<double>(seed == 11 ? 2 : 3, 1.0);
  });
  EXPECT_THROW(c.run(1), std::runtime_error);
}

TEST(Campaign, RejectsMetricCountMismatchWithNames) {
  Campaign c("", {"a", "b"});
  c.add("short", 0.0, 1, 1,
        [](std::uint64_t) { return std::vector<double>{1.0}; });
  EXPECT_THROW(c.run(1), std::runtime_error);
}

TEST(MedianOverSeeds, ValidatesRunsInReleaseBuilds) {
  EXPECT_THROW(median_over_seeds(
                   0, 1, [](std::uint64_t) { return std::vector<double>{}; }),
               std::invalid_argument);
}

TEST(MedianOverSeeds, MatchesSerialReference) {
  // The campaign-backed implementation must reproduce the plain serial
  // median-of-seeds computation exactly.
  const auto fn = [](std::uint64_t seed) { return fake_metrics(seed, 1.0, 3); };
  const auto got = median_over_seeds(5, 77, fn);
  Campaign ref("", {});
  ref.add("", 0.0, 77, 5, fn);
  EXPECT_EQ(got, ref.run(1).at(0).median);
}

// Structured export: JSONL/CSV files appear under G80211_METRICS_DIR and
// every non-timing byte is identical between 1 and 8 workers.
TEST(MetricSink, ExportIsThreadCountInvariant) {
  const auto dir = std::filesystem::temp_directory_path() / "g80211_metrics_test";
  std::filesystem::remove_all(dir);
  ASSERT_EQ(setenv("G80211_METRICS_DIR", dir.c_str(), 1), 0);

  // wall_ms is the one documented timing field; everything else must be
  // byte-identical across thread counts. It is the "wall_ms":N JSON pair,
  // and the final ,N column before each CSV newline.
  const auto slurp_without_wall_ms = [&](const char* name) {
    std::ifstream in(dir / name);
    std::string all((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    EXPECT_FALSE(all.empty()) << name;
    all = std::regex_replace(all, std::regex(R"(\"wall_ms\":[0-9.]+)"), "");
    return std::regex_replace(all, std::regex(R"(,[0-9.]+\n)"), "\n");
  };

  Campaign c1("export_check", {"gp_a", "gp_b"});
  c1.add("p0", 0.0, 5, 3,
         [](std::uint64_t seed) { return fake_metrics(seed, 0.0, 2); });
  c1.add("p1", 1.0, 15, 3,
         [](std::uint64_t seed) { return fake_metrics(seed, 1.0, 2); });
  c1.run(1);
  const std::string jsonl_serial = slurp_without_wall_ms("export_check.jsonl");
  const std::string csv_serial = slurp_without_wall_ms("export_check.csv");

  Campaign c8("export_check", {"gp_a", "gp_b"});
  c8.add("p0", 0.0, 5, 3,
         [](std::uint64_t seed) { return fake_metrics(seed, 0.0, 2); });
  c8.add("p1", 1.0, 15, 3,
         [](std::uint64_t seed) { return fake_metrics(seed, 1.0, 2); });
  c8.run(8);
  EXPECT_EQ(slurp_without_wall_ms("export_check.jsonl"), jsonl_serial);
  EXPECT_EQ(slurp_without_wall_ms("export_check.csv"), csv_serial);

  EXPECT_NE(jsonl_serial.find("\"figure\":\"export_check\""), std::string::npos);
  EXPECT_NE(jsonl_serial.find("\"metric\":\"gp_b\""), std::string::npos);
  EXPECT_NE(csv_serial.find("figure,label,metric,median,p25,p75,n_runs,seed"),
            std::string::npos);

  ASSERT_EQ(unsetenv("G80211_METRICS_DIR"), 0);
  std::filesystem::remove_all(dir);
}

// CSV cells are RFC 4180-quoted uniformly: a label carrying commas and
// quotes must survive a round trip through a standard CSV reader with the
// column count intact (the header/row contract downstream tooling relies
// on).
TEST(MetricSink, CsvQuotingRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / "g80211_csv_test";
  std::filesystem::remove_all(dir);
  ASSERT_EQ(setenv("G80211_METRICS_DIR", dir.c_str(), 1), 0);

  MetricRow row;
  row.figure = "csv_quote_check";
  row.label = "rate=\"5,5\",greedy";  // commas and embedded quotes
  row.metric = "goodput,mbps";
  row.median = 1.5;
  row.p25 = 1.25;
  row.p75 = 1.75;
  row.n_runs = 5;
  row.seed = 100;
  {
    MetricSink sink("csv_quote_check");
    ASSERT_TRUE(sink.enabled());
    sink.write(row);
  }

  // Minimal RFC 4180 reader: split one line into cells, honouring quoted
  // cells with doubled embedded quotes.
  const auto split_csv = [](const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    bool quoted = false;
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      if (quoted) {
        if (c == '"' && i + 1 < line.size() && line[i + 1] == '"') {
          cell += '"';
          ++i;
        } else if (c == '"') {
          quoted = false;
        } else {
          cell += c;
        }
      } else if (c == '"') {
        quoted = true;
      } else if (c == ',') {
        cells.push_back(cell);
        cell.clear();
      } else {
        cell += c;
      }
    }
    cells.push_back(cell);
    return cells;
  };

  std::ifstream in(dir / "csv_quote_check.csv");
  std::string header, data;
  ASSERT_TRUE(std::getline(in, header));
  ASSERT_TRUE(std::getline(in, data));
  const auto header_cells = split_csv(header);
  const auto data_cells = split_csv(data);
  ASSERT_EQ(header_cells.size(), 9u);
  ASSERT_EQ(data_cells.size(), header_cells.size());
  EXPECT_EQ(data_cells[0], row.figure);
  EXPECT_EQ(data_cells[1], row.label);
  EXPECT_EQ(data_cells[2], row.metric);
  EXPECT_EQ(data_cells[6], "5");
  EXPECT_EQ(data_cells[7], "100");

  // The JSONL twin escapes the same label JSON-style.
  std::ifstream jin(dir / "csv_quote_check.jsonl");
  std::string jline;
  ASSERT_TRUE(std::getline(jin, jline));
  EXPECT_NE(jline.find("\"label\":\"rate=\\\"5,5\\\",greedy\""),
            std::string::npos);

  ASSERT_EQ(unsetenv("G80211_METRICS_DIR"), 0);
  std::filesystem::remove_all(dir);
}

TEST(MetricSink, DisabledWithoutEnvVar) {
  unsetenv("G80211_METRICS_DIR");
  MetricSink sink("nope");
  EXPECT_FALSE(sink.enabled());
  sink.write(MetricRow{});  // no-op, must not crash
}

TEST(JobCount, EnvOverride) {
  ASSERT_EQ(setenv("G80211_JOBS", "3", 1), 0);
  EXPECT_EQ(job_count(), 3u);
  ASSERT_EQ(setenv("G80211_JOBS", "0", 1), 0);  // invalid: fall back to hw
  EXPECT_GE(job_count(), 1u);
  ASSERT_EQ(unsetenv("G80211_JOBS"), 0);
  EXPECT_GE(job_count(), 1u);
}

// Two full Sims running concurrently on two threads must produce exactly
// the results they produce serially — the guard against any future
// shared-mutable-state creeping into the simulator core.
TEST(ParallelSims, TwoSimsOnTwoThreadsMatchSerial) {
  const auto run_scenario = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.measure = milliseconds(300);
    cfg.seed = seed;
    Sim sim(cfg);
    const PairLayout layout = pairs_in_range(2);
    Node& s0 = sim.add_node(layout.senders[0]);
    Node& s1 = sim.add_node(layout.senders[1]);
    Node& r0 = sim.add_node(layout.receivers[0]);
    Node& r1 = sim.add_node(layout.receivers[1]);
    auto f0 = sim.add_udp_flow(s0, r0);
    auto f1 = sim.add_udp_flow(s1, r1);
    sim.make_nav_inflator(r1, NavFrameMask::cts_only(), milliseconds(2));
    sim.run();
    return std::vector<double>{f0.goodput_mbps(), f1.goodput_mbps(),
                               static_cast<double>(sim.scheduler().executed())};
  };

  const auto ref7 = run_scenario(7);
  const auto ref8 = run_scenario(8);
  std::vector<double> par7, par8;
  {
    std::jthread t1([&] { par7 = run_scenario(7); });
    std::jthread t2([&] { par8 = run_scenario(8); });
  }
  EXPECT_EQ(par7, ref7);
  EXPECT_EQ(par8, ref8);
}

}  // namespace
}  // namespace g80211
