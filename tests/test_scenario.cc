// Scenario toolkit: topology geometry, Sim wiring, experiment helpers,
// determinism.
#include <gtest/gtest.h>

#include <cstdlib>

#include "src/scenario/experiment.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

TEST(Topology, PairsInRangeGeometry) {
  const auto l = pairs_in_range(4);
  ASSERT_EQ(l.senders.size(), 4u);
  ASSERT_EQ(l.receivers.size(), 4u);
  Propagation prop;
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(distance(l.senders[i], l.receivers[i]), 2.0);
    for (int j = 0; j < 4; ++j) {
      if (i == j) continue;
      // Capture safety: own peer at 2 m beats any foreign station by >10x.
      const double foreign = distance(l.senders[i], l.receivers[j]);
      EXPECT_GT(prop.rx_power_w(2.0) / prop.rx_power_w(foreign), 10.0);
    }
  }
}

TEST(Topology, SharedApClientsEquidistant) {
  const auto l = shared_ap(8);
  ASSERT_EQ(l.clients.size(), 8u);
  for (const auto& c : l.clients) {
    EXPECT_NEAR(distance(l.ap, c), 2.0, 1e-9);
  }
}

TEST(Topology, HiddenPairsAreActuallyHidden) {
  const auto l = hidden_pairs();
  const double sender_gap = distance(l.senders[0], l.senders[1]);
  EXPECT_GT(sender_gap, l.cs_range_m) << "senders must not sense each other";
  for (const auto& r : l.receivers) {
    EXPECT_LE(distance(l.senders[0], r), l.comm_range_m);
    EXPECT_LE(distance(l.senders[1], r), l.comm_range_m);
  }
}

TEST(Topology, DistanceSweepSeparation) {
  const auto l = distance_sweep(40.0);
  EXPECT_DOUBLE_EQ(l.s2.x - l.s1.x, 40.0);
  EXPECT_DOUBLE_EQ(l.comm_range_m, 55.0);
  EXPECT_DOUBLE_EQ(l.cs_range_m, 99.0);
}

TEST(Experiment, MedianOverSeedsIsElementwise) {
  const auto m = median_over_seeds(3, 10, [](std::uint64_t seed) {
    const double s = static_cast<double>(seed - 10);  // 0, 1, 2
    return std::vector<double>{s, 10.0 - s};
  });
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0], 1.0);
  EXPECT_DOUBLE_EQ(m[1], 9.0);
}

TEST(Experiment, QuickModeReadsEnvironment) {
  // The test harness sets G80211_QUICK=1.
  EXPECT_TRUE(quick_mode());
  EXPECT_EQ(default_runs(), 2);
  EXPECT_EQ(default_measure(), seconds(2));
}

TEST(SimBuilder, SameSeedGivesIdenticalGoodput) {
  auto run = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.measure = seconds(2);
    cfg.seed = seed;
    Sim sim(cfg);
    const auto l = pairs_in_range(2);
    Node& s1 = sim.add_node(l.senders[0]);
    Node& s2 = sim.add_node(l.senders[1]);
    Node& r1 = sim.add_node(l.receivers[0]);
    Node& r2 = sim.add_node(l.receivers[1]);
    auto f1 = sim.add_udp_flow(s1, r1);
    auto f2 = sim.add_udp_flow(s2, r2);
    sim.run();
    return std::pair{f1.goodput_mbps(), f2.goodput_mbps()};
  };
  const auto a = run(5);
  const auto b = run(5);
  const auto c = run(6);
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
  EXPECT_NE(a.first, c.first) << "different seed, different microdynamics";
}

TEST(SimBuilder, TcpFlowRoundTripsOverWireless) {
  SimConfig cfg;
  cfg.measure = seconds(2);
  Sim sim(cfg);
  const auto l = pairs_in_range(1);
  Node& s = sim.add_node(l.senders[0]);
  Node& r = sim.add_node(l.receivers[0]);
  auto f = sim.add_tcp_flow(s, r);
  sim.run();
  EXPECT_GT(f.goodput_mbps(), 1.5);
}

TEST(SimBuilder, RemoteTcpFlowTraversesWire) {
  SimConfig cfg;
  cfg.measure = seconds(3);
  Sim sim(cfg);
  const auto l = shared_ap(1);
  Node& ap = sim.add_node(l.ap);
  Node& client = sim.add_node(l.clients[0]);
  WiredHost& host = sim.add_wired_host(ap, milliseconds(20));
  auto f = sim.add_remote_tcp_flow(host, ap, client);
  sim.run();
  EXPECT_GT(f.goodput_mbps(), 0.5) << "remote sender must make progress";
}

TEST(SimBuilder, RunMoreExtendsTheClock) {
  SimConfig cfg;
  cfg.measure = seconds(1);
  Sim sim(cfg);
  const auto l = pairs_in_range(1);
  Node& s = sim.add_node(l.senders[0]);
  Node& r = sim.add_node(l.receivers[0]);
  auto f = sim.add_udp_flow(s, r);
  sim.run();
  const Time t1 = sim.scheduler().now();
  const std::int64_t p1 = f.sink->packets();
  sim.run_more(seconds(1));
  EXPECT_EQ(sim.scheduler().now(), t1 + seconds(1));
  EXPECT_GT(f.sink->packets(), p1);
}

TEST(SimBuilder, UdpDefaultRateSaturates) {
  SimConfig cfg;
  cfg.measure = seconds(2);
  Sim sim(cfg);
  const auto l = pairs_in_range(1);
  Node& s = sim.add_node(l.senders[0]);
  Node& r = sim.add_node(l.receivers[0]);
  auto f = sim.add_udp_flow(s, r);
  sim.run();
  // A single saturated 802.11b flow with RTS/CTS lands in 3-4 Mbps.
  EXPECT_GT(f.goodput_mbps(), 3.0);
  EXPECT_LT(f.goodput_mbps(), 4.5);
  EXPECT_GT(s.mac().stats().queue_drops, 0) << "offered load exceeds capacity";
}

TEST(SimBuilder, StandardSelectsPhy) {
  SimConfig cfg;
  cfg.standard = Standard::A80211;
  Sim sim(cfg);
  EXPECT_EQ(sim.params().slot, microseconds(9));
  EXPECT_DOUBLE_EQ(sim.params().data_rate_mbps, 6.0);
}

}  // namespace
}  // namespace g80211
