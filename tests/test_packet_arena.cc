// Packet arena: slab reuse, intrusive refcounting, payload-only cloning.
//
// Packets are the per-frame payload objects on the hottest path in the
// simulator; the arena (src/net/packet.h) recycles their storage through a
// freelist so steady-state traffic allocates nothing. These tests pin the
// lifetime rules: refcounts drive release, released slots are reused (and
// re-initialised), clones copy payload but never refcount/arena state, and
// the stats counters expose slab growth the way Scheduler::pool_slots()
// does for events. The ASan preset runs this suite too, which is the
// use-after-free guard for the freelist.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/net/packet.h"

namespace g80211 {
namespace {

TEST(PacketArena, MakePacketStartsWithOneRef) {
  PacketPtr p = make_packet();
  ASSERT_TRUE(p);
  EXPECT_EQ(p.use_count(), 1u);
  p->flow_id = 7;
  EXPECT_EQ(p->flow_id, 7);
}

TEST(PacketArena, CopyAndDropTrackRefcount) {
  PacketPtr a = make_packet();
  PacketPtr b = a;
  EXPECT_EQ(a.use_count(), 2u);
  EXPECT_EQ(a.get(), b.get());
  {
    PacketPtr c(b);
    EXPECT_EQ(a.use_count(), 3u);
  }
  EXPECT_EQ(a.use_count(), 2u);
  b.reset();
  EXPECT_FALSE(b);
  EXPECT_EQ(a.use_count(), 1u);
}

TEST(PacketArena, MoveStealsWithoutBumping) {
  PacketPtr a = make_packet();
  Packet* raw = a.get();
  PacketPtr b = std::move(a);
  EXPECT_FALSE(a);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(b.use_count(), 1u);
  a = std::move(b);
  EXPECT_EQ(a.get(), raw);
  EXPECT_EQ(a.use_count(), 1u);
}

TEST(PacketArena, SelfAssignmentIsSafe) {
  PacketPtr a = make_packet();
  a->uid = 42;
  PacketPtr& alias = a;
  a = alias;
  ASSERT_TRUE(a);
  EXPECT_EQ(a->uid, 42u);
  EXPECT_EQ(a.use_count(), 1u);
}

TEST(PacketArena, ReleasedSlotIsReusedAndReinitialised) {
  PacketArena& arena = packet_arena();
  const std::uint64_t allocs_before = arena.total_allocs();

  Packet* first = nullptr;
  {
    PacketPtr p = make_packet();
    first = p.get();
    p->flow_id = 99;
    p->seq = 1234;
    p->is_probe = true;
  }
  // The slot went back to the freelist; the next allocation reuses it and
  // must hand out a default-initialised payload, not ghost state.
  PacketPtr q = make_packet();
  EXPECT_EQ(q.get(), first) << "freelist should hand back the hot slot";
  EXPECT_EQ(q->flow_id, 0);
  EXPECT_EQ(q->seq, 0);
  EXPECT_FALSE(q->is_probe);
  EXPECT_EQ(arena.total_allocs(), allocs_before + 2);
}

TEST(PacketArena, SteadyStateChurnDoesNotGrowSlab) {
  PacketArena& arena = packet_arena();
  // Warm: allocate a burst to establish the high-water mark.
  std::vector<PacketPtr> burst;
  for (int i = 0; i < 64; ++i) burst.push_back(make_packet());
  const std::size_t slots = arena.slots();
  const std::size_t free_before = arena.free_slots();
  burst.clear();
  EXPECT_EQ(arena.free_slots(), free_before + 64);
  // Churn at depth <= 64: the slab must not grow.
  for (int round = 0; round < 1000; ++round) {
    PacketPtr a = make_packet();
    PacketPtr b = make_packet();
    PacketPtr c = a;
    a.reset();
    EXPECT_EQ(c.use_count(), 1u);
  }
  EXPECT_EQ(arena.slots(), slots) << "steady-state churn must reuse slots";
}

TEST(PacketArena, CloneCopiesPayloadNotIdentity) {
  PacketPtr orig = make_packet();
  orig->flow_id = 3;
  orig->uid = 77;
  orig->size_bytes = 1500;
  orig->tcp.seq = 1000;
  orig->probe_reply = true;
  PacketPtr held = orig;  // refcount 2 on the original

  PacketPtr clone = make_packet(*orig);
  ASSERT_TRUE(clone);
  EXPECT_NE(clone.get(), orig.get());
  // Payload matches...
  EXPECT_EQ(clone->flow_id, 3);
  EXPECT_EQ(clone->uid, 77u);
  EXPECT_EQ(clone->size_bytes, 1500);
  EXPECT_EQ(clone->tcp.seq, 1000u);
  EXPECT_TRUE(clone->probe_reply);
  // ...but identity does not: the clone has its own refcount.
  EXPECT_EQ(clone.use_count(), 1u);
  EXPECT_EQ(orig.use_count(), 2u);
  clone.reset();
  EXPECT_EQ(orig.use_count(), 2u);
}

TEST(PacketArena, PacketPayloadAssignmentPreservesTargetIdentity) {
  // Assigning one live packet's payload over another (Frame reuse does
  // this through TxRecord recycling) must not clobber the target's
  // refcount or arena binding.
  PacketPtr a = make_packet();
  PacketPtr a2 = a;
  PacketPtr b = make_packet();
  b->flow_id = 11;
  *a = *b;
  EXPECT_EQ(a->flow_id, 11);
  EXPECT_EQ(a.use_count(), 2u) << "payload assignment must not touch refs";
  a2.reset();
  EXPECT_EQ(a.use_count(), 1u);
}

TEST(PacketArena, ComparisonAndBoolSemantics) {
  PacketPtr null_ptr;
  EXPECT_FALSE(null_ptr);
  EXPECT_EQ(null_ptr, nullptr);
  PacketPtr p = make_packet();
  EXPECT_NE(p, nullptr);
  PacketPtr q = p;
  EXPECT_EQ(p, q);
  PacketPtr other = make_packet();
  EXPECT_NE(p, other);
}

TEST(PacketArena, DeepChurnAcrossChunkBoundary) {
  // More live packets than one 256-slot chunk: the slab chains chunks, all
  // pointers stay valid (chunked storage never reallocates), and release
  // order (LIFO here) round-trips through the freelist without loss.
  std::vector<PacketPtr> live;
  for (int i = 0; i < 1000; ++i) {
    live.push_back(make_packet());
    live.back()->uid = static_cast<std::uint64_t>(i);
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(live[static_cast<std::size_t>(i)]->uid,
              static_cast<std::uint64_t>(i));
  }
  PacketArena& arena = packet_arena();
  const std::size_t slots = arena.slots();
  live.clear();
  std::vector<PacketPtr> again;
  for (int i = 0; i < 1000; ++i) again.push_back(make_packet());
  EXPECT_EQ(arena.slots(), slots) << "refill must reuse the grown slab";
}

}  // namespace
}  // namespace g80211
