// Unit tests for the discrete-event kernel: ordering, cancellation,
// determinism, timers, the pooled event slab and its generation handles.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/sim/inplace_function.h"
#include "src/sim/scheduler.h"

namespace g80211 {
namespace {

// Every scheduler-facing test runs against both ready-queue backends: the
// 4-ary heap and the hierarchical timing wheel must be observationally
// identical (same dispatch order, same stats) — see scheduler.h.
class SchedulerSuite : public ::testing::TestWithParam<SchedulerBackend> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, SchedulerSuite,
    ::testing::Values(SchedulerBackend::kDaryHeap,
                      SchedulerBackend::kTimingWheel),
    [](const ::testing::TestParamInfo<SchedulerBackend>& info) {
      return info.param == SchedulerBackend::kDaryHeap ? "DaryHeap"
                                                       : "TimingWheel";
    });

TEST_P(SchedulerSuite, RunsEventsInTimeOrder) {
  Scheduler s{GetParam()};
  std::vector<int> order;
  s.at(microseconds(30), [&] { order.push_back(3); });
  s.at(microseconds(10), [&] { order.push_back(1); });
  s.at(microseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST_P(SchedulerSuite, TiesBreakInInsertionOrder) {
  Scheduler s{GetParam()};
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    s.at(microseconds(5), [&order, i] { order.push_back(i); });
  }
  s.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST_P(SchedulerSuite, NowAdvancesToEventTime) {
  Scheduler s{GetParam()};
  Time seen = -1;
  s.at(milliseconds(7), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, milliseconds(7));
  EXPECT_EQ(s.now(), milliseconds(7));
}

TEST_P(SchedulerSuite, RunUntilStopsAtHorizonAndAdvancesClock) {
  Scheduler s{GetParam()};
  int fired = 0;
  s.at(seconds(1), [&] { ++fired; });
  s.at(seconds(3), [&] { ++fired; });
  s.run_until(seconds(2));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), seconds(2));
  s.run_until(seconds(4));
  EXPECT_EQ(fired, 2);
}

TEST_P(SchedulerSuite, EventsScheduledDuringRunExecute) {
  Scheduler s{GetParam()};
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) s.after(microseconds(1), recurse);
  };
  s.after(microseconds(1), recurse);
  s.run();
  EXPECT_EQ(depth, 5);
}

TEST_P(SchedulerSuite, CancelPreventsExecution) {
  Scheduler s{GetParam()};
  bool ran = false;
  EventId id = s.at(microseconds(10), [&] { ran = true; });
  EXPECT_TRUE(id.pending());
  id.cancel();
  EXPECT_FALSE(id.pending());
  s.run();
  EXPECT_FALSE(ran);
}

TEST_P(SchedulerSuite, CancelAtSameTimestampBeforeDispatchWorks) {
  // An event at time T cancelling another event also at time T (scheduled
  // later in insertion order) must win — the MAC relies on this for
  // same-instant busy-edge vs timer races.
  Scheduler s{GetParam()};
  bool second_ran = false;
  EventId second;
  s.at(microseconds(5), [&] { second.cancel(); });
  second = s.at(microseconds(5), [&] { second_ran = true; });
  s.run();
  EXPECT_FALSE(second_ran);
}

TEST_P(SchedulerSuite, PendingReflectsFiredState) {
  Scheduler s{GetParam()};
  EventId id = s.at(microseconds(1), [] {});
  s.run();
  EXPECT_FALSE(id.pending());
}

TEST_P(SchedulerSuite, ExecutedCountsOnlyLiveEvents) {
  Scheduler s{GetParam()};
  EventId a = s.at(microseconds(1), [] {});
  s.at(microseconds(2), [] {});
  a.cancel();
  s.run();
  EXPECT_EQ(s.executed(), 1u);
}

TEST_P(SchedulerSuite, CancelAfterFireIsANoOp) {
  Scheduler s{GetParam()};
  int runs = 0;
  EventId id = s.at(microseconds(1), [&] { ++runs; });
  s.run();
  EXPECT_EQ(runs, 1);
  EXPECT_FALSE(id.pending());
  id.cancel();  // stale handle: must not disturb anything
  EXPECT_FALSE(id.pending());
  EXPECT_EQ(s.executed(), 1u);
  // The fired slot is reusable; the stale handle must not touch its new
  // occupant.
  bool ran = false;
  EventId fresh = s.at(microseconds(2), [&] { ran = true; });
  id.cancel();
  EXPECT_TRUE(fresh.pending());
  s.run();
  EXPECT_TRUE(ran);
}

TEST_P(SchedulerSuite, PendingAcrossGenerationReuseOfPooledSlot) {
  Scheduler s{GetParam()};
  EventId a = s.at(microseconds(1), [] {});
  a.cancel();  // frees the slot immediately
  EXPECT_FALSE(a.pending());
  // Only one slot was ever allocated, so b reuses a's slot at a fresh
  // generation.
  EventId b = s.at(microseconds(2), [] {});
  EXPECT_EQ(s.pool_slots(), 1u);
  EXPECT_FALSE(a.pending()) << "stale handle must not match the reused slot";
  EXPECT_TRUE(b.pending());
  a.cancel();  // stale cancel must not kill b
  EXPECT_TRUE(b.pending());
  s.run();
  EXPECT_FALSE(b.pending());
  EXPECT_EQ(s.executed(), 1u);
}

TEST_P(SchedulerSuite, CancelledPendingCountsTombstones) {
  Scheduler s{GetParam()};
  EventId a = s.at(microseconds(10), [] {});
  s.at(microseconds(20), [] {});
  EXPECT_EQ(s.cancelled_pending(), 0u);
  EXPECT_EQ(s.pending(), 2u);
  a.cancel();
  EXPECT_EQ(s.cancelled_pending(), 1u) << "tombstone stays queued until popped";
  EXPECT_EQ(s.queued(), 2u);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.cancelled_pending(), 0u);
  EXPECT_EQ(s.queued(), 0u);
}

TEST_P(SchedulerSuite, MassCancelStressDoesNotGrowPool) {
  Scheduler s{GetParam()};
  constexpr int kRounds = 50;
  constexpr std::size_t kBatch = 256;
  for (int round = 0; round < kRounds; ++round) {
    std::vector<EventId> ids;
    for (std::size_t i = 0; i < kBatch; ++i) {
      ids.push_back(s.after(microseconds(static_cast<Time>(i + 1)), [] {}));
    }
    EXPECT_EQ(s.pending(), kBatch);
    for (EventId& id : ids) id.cancel();
    EXPECT_EQ(s.pending(), 0u);
    EXPECT_EQ(s.cancelled_pending(), kBatch);
    // Slots are recycled at cancel time: the slab never exceeds the
    // high-water mark of concurrently pending events.
    EXPECT_LE(s.pool_slots(), kBatch);
    s.run();  // drains the tombstones without executing anything
    EXPECT_EQ(s.cancelled_pending(), 0u);
    EXPECT_EQ(s.queued(), 0u);
  }
  EXPECT_EQ(s.executed(), 0u);
  EXPECT_LE(s.pool_slots(), kBatch);
}

TEST_P(SchedulerSuite, GoldenEventOrderTrace) {
  // Golden trace locking in dispatch order across engine refactors:
  // same-time ties fire in insertion order, cancelled events (including a
  // same-instant cancel) drop out, and an event scheduled *during* the
  // current instant runs after everything already queued at that instant.
  Scheduler s{GetParam()};
  std::vector<std::string> trace;
  s.at(microseconds(20), [&] { trace.push_back("c1"); });
  s.at(microseconds(10), [&] {
    trace.push_back("a1");
    s.after(0, [&] { trace.push_back("a1-nested"); });
    s.at(microseconds(15), [&] { trace.push_back("b"); });
  });
  EventId dead = s.at(microseconds(10), [&] { trace.push_back("dead"); });
  s.at(microseconds(10), [&] { trace.push_back("a2"); });
  dead.cancel();
  s.at(microseconds(20), [&] { trace.push_back("c2"); });
  Timer t(s, [&] { trace.push_back("timer"); });
  t.start(microseconds(17));
  s.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"a1", "a2", "a1-nested", "b",
                                             "timer", "c1", "c2"}));
}

TEST_P(SchedulerSuite, CrossLevelTimesFireInOrder) {
  // Deadlines spanning every wheel level — sub-tick, level 0, the higher
  // windows, and far past the 2^42 ns span (overflow) — plus events
  // scheduled mid-run. The heap backend runs the same schedule, so this
  // also pins backend equivalence at coarse horizons.
  Scheduler s{GetParam()};
  std::vector<int> order;
  const Time times[] = {
      nanoseconds(1),   nanoseconds(900),  microseconds(2),
      microseconds(90), milliseconds(3),   milliseconds(40),
      seconds(2),       seconds(70),       seconds(3600),
      seconds(5400),  // ~90 min: beyond the wheel span, overflow heap
  };
  int tag = 0;
  for (Time t : times) {
    const int id = tag++;
    s.at(t, [&order, id] { order.push_back(id); });
  }
  // Same-time tie at an already-used slot plus a nested reschedule.
  s.at(milliseconds(3), [&] {
    order.push_back(100);
    s.after(seconds(30), [&] { order.push_back(101); });
  });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 100, 5, 6, 101, 7, 8, 9}));
}

TEST_P(SchedulerSuite, IdleGapThenLateEventFires) {
  // A lone far-future event forces the wheel to skip a long empty stretch
  // (cursor jumps, not tick-by-tick crawling).
  Scheduler s{GetParam()};
  Time fired_at = -1;
  s.at(seconds(7200), [&] { fired_at = s.now(); });
  s.run();
  EXPECT_EQ(fired_at, seconds(7200));
  EXPECT_EQ(s.now(), seconds(7200));
}

TEST_P(SchedulerSuite, CoarseWindowBoundaryDoesNotLeapfrogParkedEntry) {
  // Regression: B lands one full level-0 window ahead of the cursor (tick
  // delta exactly 256), parking it in a level-1 slot. A fires on the last
  // tick of the window and schedules a nested event one tick past B. The
  // cursor's step off the window edge must cascade the level-1 slot it
  // enters, or the nested tick-257 entry leapfrogs B (tick 256).
  Scheduler s{GetParam()};
  std::vector<int> order;
  s.at(nanoseconds(262000), [&] {  // tick 255
    order.push_back(0);
    s.at(nanoseconds(263415), [&] { order.push_back(2); });  // tick 257
  });
  s.at(nanoseconds(263000), [&] { order.push_back(1); });  // tick 256
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(SchedulerEquivalence, BackendsDispatchIdenticalOrder) {
  // Differential test: a pseudo-random schedule (bursty times from ns to
  // hours, nested re-scheduling, interleaved cancels) must dispatch in the
  // exact same order on both backends.
  auto run_backend = [](SchedulerBackend backend) {
    Scheduler s(backend);
    std::vector<std::pair<int, Time>> fired;
    std::uint64_t state = 0x2545F4914F6CDD1DULL;
    auto next = [&state] {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    std::vector<EventId> cancellable;
    for (int i = 0; i < 4000; ++i) {
      // Mix scales so every wheel level and the overflow heap see traffic.
      const std::uint64_t r = next();
      Time t = 0;
      switch (r % 4) {
        case 0: t = nanoseconds(static_cast<Time>(r % 2000)); break;
        case 1: t = microseconds(static_cast<Time>(r % 5000)); break;
        case 2: t = milliseconds(static_cast<Time>(r % 90000)); break;
        default: t = seconds(static_cast<Time>(r % 9000)); break;
      }
      const int id = i;
      EventId e = s.at(t, [&s, &fired, id, t] {
        fired.push_back({id, t});
        if (id % 7 == 0) {
          s.after(microseconds(static_cast<Time>(id) + 1),
                  [&fired, id] { fired.push_back({-id, 0}); });
        }
      });
      if (r % 5 == 0) cancellable.push_back(e);
    }
    for (std::size_t i = 0; i < cancellable.size(); i += 2) {
      cancellable[i].cancel();
    }
    s.run();
    return fired;
  };
  const auto heap = run_backend(SchedulerBackend::kDaryHeap);
  const auto wheel = run_backend(SchedulerBackend::kTimingWheel);
  ASSERT_EQ(heap.size(), wheel.size());
  EXPECT_EQ(heap, wheel);
}

TEST(InplaceFunction, MoveTransfersTheCallable) {
  int hits = 0;
  InplaceFunction<64> f([&hits] { ++hits; });
  InplaceFunction<64> g(std::move(f));
  EXPECT_FALSE(static_cast<bool>(f));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(g));
  g();
  EXPECT_EQ(hits, 1);
  InplaceFunction<64> h;
  h = std::move(g);
  h();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, DestroysCaptureExactlyOnce) {
  auto token = std::make_shared<int>(7);
  EXPECT_EQ(token.use_count(), 1);
  {
    InplaceFunction<64> f([token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
    InplaceFunction<64> g(std::move(f));
    EXPECT_EQ(token.use_count(), 2) << "move must not duplicate the capture";
    g.reset();
    EXPECT_EQ(token.use_count(), 1);
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST_P(SchedulerSuite, TimerStartCancelRestart) {
  Scheduler s{GetParam()};
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.start(microseconds(10));
  EXPECT_TRUE(t.pending());
  t.cancel();
  s.run();
  EXPECT_EQ(fired, 0);
  t.start(microseconds(10));
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST_P(SchedulerSuite, TimerRestartSupersedesPreviousDeadline) {
  Scheduler s{GetParam()};
  std::vector<Time> fire_times;
  Timer t(s, [&] { fire_times.push_back(s.now()); });
  t.start(microseconds(10));
  t.start(microseconds(50));  // replaces the earlier deadline
  s.run();
  ASSERT_EQ(fire_times.size(), 1u);
  EXPECT_EQ(fire_times[0], microseconds(50));
}

TEST_P(SchedulerSuite, TimerDestructionCancelsPendingEvent) {
  Scheduler s{GetParam()};
  int fired = 0;
  {
    Timer t(s, [&] { ++fired; });
    t.start(microseconds(5));
    EXPECT_TRUE(t.pending());
  }
  s.run();
  EXPECT_EQ(fired, 0) << "a destroyed timer's event must not fire";
}

TEST_P(SchedulerSuite, TimerStartAtAbsoluteTime) {
  Scheduler s{GetParam()};
  Time fired_at = -1;
  Timer t(s, [&] { fired_at = s.now(); });
  s.at(microseconds(5), [&] { t.start_at(microseconds(42)); });
  s.run();
  EXPECT_EQ(fired_at, microseconds(42));
}

TEST(TimeHelpers, ConversionsRoundTrip) {
  EXPECT_EQ(microseconds(1), nanoseconds(1000));
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(to_micros(microseconds(17)), 17.0);
  EXPECT_DOUBLE_EQ(to_millis(milliseconds(9)), 9.0);
}

TEST(TimeHelpers, TxTimeRoundsUp) {
  // 1 bit at 11 Mbps = 90.909... ns -> 91 ns.
  EXPECT_EQ(tx_time(1, 11.0), 91);
  // 8736 bits at 11 Mbps = 794181.8 ns -> 794182.
  EXPECT_EQ(tx_time(8736, 11.0), 794182);
  // Exact division does not round up: 1000 bits at 1 Mbps = 1 ms.
  EXPECT_EQ(tx_time(1000, 1.0), microseconds(1000));
}

}  // namespace
}  // namespace g80211
