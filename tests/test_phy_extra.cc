// Additional PHY/channel coverage: multi-frame overlaps, interference
// from carrier-sense-only neighbours, rate-dependent corruption, RSSI
// measurement noise, and OFDM airtimes across the full 802.11a ladder.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/stats.h"
#include "src/phy/channel.h"
#include "src/phy/phy.h"
#include "src/sim/scheduler.h"

namespace g80211 {
namespace {

struct RecordingListener : PhyListener {
  std::vector<std::pair<Frame, RxInfo>> received;
  int busy = 0, idle = 0;
  void on_rx_end(const Frame& f, const RxInfo& i) override {
    received.push_back({f, i});
  }
  void on_channel_busy() override { ++busy; }
  void on_channel_idle() override { ++idle; }
  void on_tx_end() override {}
};

class PhyExtraTest : public ::testing::Test {
 protected:
  PhyExtraTest() : channel_(sched_, WifiParams::b11()) {}
  Phy& add_phy(int id, Position pos, double noise_db = 0.0) {
    phys_.push_back(std::make_unique<Phy>(channel_, id, pos, Rng(40 + id)));
    listeners_.push_back(std::make_unique<RecordingListener>());
    phys_.back()->set_listener(listeners_.back().get());
    phys_.back()->rssi_noise_db = noise_db;
    phys_.back()->rssi_outlier_prob = 0.0;
    return *phys_.back();
  }
  RecordingListener& listener(std::size_t i) { return *listeners_[i]; }
  Frame data(int ta, int ra, double rate = 0.0) {
    Frame f;
    f.type = FrameType::kData;
    f.ta = ta;
    f.ra = ra;
    f.rate_mbps = rate;
    f.packet = make_packet();
    f.packet->size_bytes = 1064;
    return f;
  }
  Scheduler sched_;
  Channel channel_;
  std::vector<std::unique_ptr<Phy>> phys_;
  std::vector<std::unique_ptr<RecordingListener>> listeners_;
};

TEST_F(PhyExtraTest, ThreeWayOverlapCorruptsTheCurrentFrame) {
  Phy& a = add_phy(0, {0, 0});
  Phy& b = add_phy(1, {20, 0});
  Phy& c = add_phy(2, {10, 10});
  add_phy(3, {10, 0});
  a.transmit(data(0, 3), microseconds(600));
  sched_.at(microseconds(100), [&] { b.transmit(data(1, 3), microseconds(600)); });
  sched_.at(microseconds(200), [&] { c.transmit(data(2, 3), microseconds(600)); });
  sched_.run();
  auto& l = listener(3);
  ASSERT_EQ(l.received.size(), 1u);
  EXPECT_TRUE(l.received[0].second.corrupted);
  EXPECT_TRUE(l.received[0].second.collided);
  // Busy until the last of the three transmissions ends.
  EXPECT_EQ(l.busy, 1);
  EXPECT_EQ(l.idle, 1);
}

TEST_F(PhyExtraTest, CsOnlyNeighbourStillCorruptsReception) {
  // The interferer is outside communication range (no decode) but inside
  // carrier-sense range: its energy must still destroy an overlapping
  // reception of comparable power.
  channel_.set_ranges(50.0, 120.0);
  Phy& tx = add_phy(0, {0, 0});
  Phy& interferer = add_phy(1, {80, 40});  // ~89 m from the receiver: CS only
  add_phy(2, {40, 0});
  tx.transmit(data(0, 2), microseconds(600));
  sched_.at(microseconds(100), [&] {
    interferer.transmit(data(1, 99), microseconds(600));
  });
  sched_.run();
  auto& l = listener(2);
  ASSERT_EQ(l.received.size(), 1u);
  // tx at 40 m vs interferer at ~89 m: two-ray-ish ratio < 10x -> collision.
  EXPECT_TRUE(l.received[0].second.corrupted);
}

TEST_F(PhyExtraTest, RateAboveLinkLimitCorrupts) {
  channel_.error_model().set_link_rate_limit(0, 1, 5.5, /*excess_fer=*/1.0);
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  tx.transmit(data(0, 1, 11.0), microseconds(600));
  sched_.at(milliseconds(1), [&] { tx.transmit(data(0, 1, 5.5), microseconds(600)); });
  sched_.run();
  ASSERT_EQ(listener(1).received.size(), 2u);
  EXPECT_TRUE(listener(1).received[0].second.corrupted) << "above the cliff";
  EXPECT_FALSE(listener(1).received[1].second.corrupted) << "at the cliff";
}

TEST_F(PhyExtraTest, RateAtOrBelowLimitIsClean) {
  channel_.error_model().set_link_rate_limit(0, 1, 5.5, 1.0);
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  tx.transmit(data(0, 1, 5.5), microseconds(600));
  sched_.run();
  ASSERT_EQ(listener(1).received.size(), 1u);
  EXPECT_FALSE(listener(1).received[0].second.corrupted);
}

TEST_F(PhyExtraTest, RateExcessComposesWithBaseBer) {
  ErrorModel em;
  em.set_default_ber(2e-4);
  em.set_link_rate_limit(0, 1, 5.5, 0.5);
  const double base = em.frame_error_prob(0, 1, FrameType::kData, 1064, 5.5);
  const double high = em.frame_error_prob(0, 1, FrameType::kData, 1064, 11.0);
  EXPECT_NEAR(base, 0.2033, 0.01);
  EXPECT_NEAR(high, 1.0 - (1.0 - base) * 0.5, 1e-9);
  // Control frames are never rate-limited.
  EXPECT_NEAR(em.frame_error_prob(0, 1, FrameType::kAck, 0, 11.0), 7.519e-3,
              3e-4);
}

TEST_F(PhyExtraTest, RssiNoiseHasConfiguredSpread) {
  Phy& tx = add_phy(0, {0, 0});
  Phy& rx = add_phy(1, {10, 0}, /*noise_db=*/0.8);
  std::vector<double> samples;
  struct Collect : PhyListener {
    std::vector<double>* out;
    void on_rx_end(const Frame&, const RxInfo& i) override {
      out->push_back(i.rssi_dbm);
    }
    void on_channel_busy() override {}
    void on_channel_idle() override {}
    void on_tx_end() override {}
  } collect;
  collect.out = &samples;
  rx.set_listener(&collect);
  for (int i = 0; i < 400; ++i) {
    sched_.at(milliseconds(i), [&] { tx.transmit(data(0, 1), microseconds(100)); });
  }
  sched_.run();
  ASSERT_EQ(samples.size(), 400u);
  EXPECT_NEAR(stddev(samples), 0.8, 0.15);
  Propagation prop;
  EXPECT_NEAR(mean(samples), watts_to_dbm(prop.rx_power_w(10.0)), 0.2);
}

TEST(OfdmAirtimes, FullLadderIsSymbolQuantised) {
  WifiParams p = WifiParams::a6();
  double prev = 1e18;
  for (const double rate : p.rate_ladder()) {
    const Time t = p.data_tx_time_at(1064, rate);
    EXPECT_EQ((t - p.plcp) % microseconds(4), 0) << rate;
    EXPECT_LT(static_cast<double>(t), prev) << "faster rate, shorter frame";
    prev = static_cast<double>(t);
  }
  // Spot value: 54 Mbps, 1092 bytes: (16+8758*... ) — just bound-check.
  EXPECT_LT(p.data_tx_time_at(1064, 54.0), microseconds(200));
}

TEST(DsssAirtimes, LadderMonotone) {
  WifiParams p = WifiParams::b11();
  double prev = 1e18;
  for (const double rate : p.rate_ladder()) {
    const Time t = p.data_tx_time_at(1064, rate);
    EXPECT_LT(static_cast<double>(t), prev);
    prev = static_cast<double>(t);
  }
}

}  // namespace
}  // namespace g80211
