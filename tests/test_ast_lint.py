#!/usr/bin/env python3
"""Self-test for tools/analyze/g80211_ast.py (the AST contract analyzer).

Exercises the fixture mini-repos under tools/analyze/testdata/: the
good/ tree must scan clean (exit 0), each seeded file under bad/ must
fail (exit 1) with exactly the expected rule IDs, the stale/ tree must
die with a configuration error (exit 2), and the NOLINT escape hatch
must silence every rule. Runs standalone (python3 tests/test_ast_lint.py)
and is registered with ctest as `ast_selftest`; the full-repo scan also
runs as the separate `ast_repo` test.
"""

import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
AST = REPO / "tools" / "analyze" / "g80211_ast.py"
TESTDATA = REPO / "tools" / "analyze" / "testdata"

ALL_RULES = {
    "callback-capture",
    "hot-path-alloc",
    "nondet-unordered-iter",
    "nondet-pointer-key",
    "shard-isolation",
    "event-path-throw",
}

FAILURES = []


def run(args):
    return subprocess.run([sys.executable, str(AST)] + args,
                          capture_output=True, text=True)


def tree(name, extra=None):
    """Arguments scanning fixture tree `name` with its own database."""
    base = TESTDATA / name
    return ["--root", str(base), "-p", str(base / "build"),
            "--no-cache"] + (extra or [])


def rules_in(output):
    return set(re.findall(r"\[([a-z-]+)\]", output))


def check(name, cond, detail=""):
    if cond:
        print(f"  ok  {name}")
    else:
        print(f"FAIL  {name}: {detail}")
        FAILURES.append(name)


def main():
    # 1. The good tree is clean: safe captures, arena allocation, ordered
    # iteration, value-type mailbox payloads, noexcept callbacks.
    p = run(tree("good"))
    check("good tree exits 0", p.returncode == 0,
          f"exit={p.returncode}\n{p.stdout}{p.stderr}")

    # 2. Each seeded bad fixture fails with exactly the expected rules.
    per_file = {
        "src/sim/capture_ref.cc": {"callback-capture"},
        "src/sim/hot_alloc.cc": {"hot-path-alloc"},
        "src/sim/unordered_iter.cc": {"nondet-unordered-iter"},
        "src/sim/pointer_key.cc": {"nondet-pointer-key"},
        "src/scenario/sharded_state.cc": {"shard-isolation"},
        "src/sim/event_throw.cc": {"event-path-throw"},
    }
    for rel, expected in per_file.items():
        p = run(tree("bad") + [rel])
        got = rules_in(p.stdout)
        check(f"{rel} exits 1", p.returncode == 1,
              f"exit={p.returncode}\n{p.stdout}{p.stderr}")
        check(f"{rel} flags exactly {sorted(expected)}", got == expected,
              f"got {sorted(got)}\n{p.stdout}")

    # 3. A full bad-tree scan surfaces every rule at once, and the
    # iterator-loop / std::accumulate shapes of nondet-unordered-iter are
    # all caught (the regex lint only sees the range-for shape).
    p = run(tree("bad"))
    got = rules_in(p.stdout)
    check("bad tree exits 1", p.returncode == 1, f"exit={p.returncode}")
    check("bad tree covers all six rules", got == ALL_RULES,
          f"missing {sorted(ALL_RULES - got)}\n{p.stdout}")
    ui = [ln for ln in p.stdout.splitlines() if "nondet-unordered-iter" in ln]
    check("unordered_iter catches iterator loop + accumulate + range-for",
          len(ui) == 3, p.stdout)

    # 4. Findings carry stable path:line: [rule] shape (tooling greps it).
    check("output format is path:line: [rule]",
          all(re.match(r"^[\w/.-]+:\d+: \[[a-z-]+\] ", ln)
              for ln in p.stdout.splitlines()),
          p.stdout)

    # 5. Suppression: good/src/sim/suppressed.cc seeds real violations,
    # each silenced by an inline NOLINT(rule): reason — so it scans clean,
    # and stripping the NOLINT markers makes the findings come back.
    p = run(tree("good") + ["src/sim/suppressed.cc"])
    check("NOLINT-suppressed fixture exits 0", p.returncode == 0,
          f"exit={p.returncode}\n{p.stdout}{p.stderr}")
    src = (TESTDATA / "good" / "src" / "sim" / "suppressed.cc").read_text()
    stripped = re.sub(r"//\s*NOLINT(NEXTLINE)?\([^)]*\)[^\n]*", "", src)
    with tempfile.TemporaryDirectory() as td:
        tmp = Path(td) / "good"
        for rel in ("src/sim", "build"):
            (tmp / rel).mkdir(parents=True)
        (tmp / "src/sim/suppressed.cc").write_text(stripped)
        (tmp / "build/compile_commands.json").write_text(
            '[{"directory": "..", "file": "src/sim/suppressed.cc", '
            '"command": "c++ -c src/sim/suppressed.cc"}]')
        p = run(["--root", str(tmp), "-p", str(tmp / "build"), "--no-cache",
                 "src/sim/suppressed.cc"])
        check("stripping NOLINT resurfaces the findings",
              p.returncode == 1 and rules_in(p.stdout),
              f"exit={p.returncode}\n{p.stdout}{p.stderr}")

    # 6. Configuration errors are distinct from findings: exit 2.
    p = run(tree("stale"))
    check("stale compile_commands.json exits 2", p.returncode == 2,
          f"exit={p.returncode}\n{p.stderr}")
    check("stale error names the orphaned TU and the fix",
          "stale" in p.stderr and "cmake" in p.stderr, p.stderr)

    p = run(["--root", str(TESTDATA / "good"),
             "-p", str(TESTDATA / "good" / "no_such_build")])
    check("missing compile_commands.json exits 2", p.returncode == 2,
          f"exit={p.returncode}\n{p.stderr}")
    check("missing-db error says how to regenerate",
          "cmake" in p.stderr, p.stderr)

    p = run(tree("good") + ["no/such/path.cc"])
    check("unknown path exits 2", p.returncode == 2,
          f"exit={p.returncode}\n{p.stderr}")

    # 7. The libclang frontend is a declared seam: without the clang
    # Python bindings it must fail loudly, never silently degrade.
    p = run(tree("good") + ["--frontend", "libclang"])
    check("libclang frontend fails loudly (exit 2)", p.returncode == 2,
          f"exit={p.returncode}\n{p.stderr}")

    # 8. --list-rules enumerates exactly the contract set.
    p = run(["--list-rules"])
    check("--list-rules lists all six rules",
          p.returncode == 0 and set(p.stdout.split()) == ALL_RULES,
          p.stdout)

    # 9. The AST cache is transparent: a cold run and a warm run over the
    # bad tree produce byte-identical findings.
    with tempfile.TemporaryDirectory() as td:
        base = TESTDATA / "bad"
        args = ["--root", str(base), "-p", str(base / "build"),
                "--cache-dir", str(Path(td) / "cache")]
        cold = run(args)
        warm = run(args)
        check("cache round-trip is transparent",
              cold.returncode == warm.returncode == 1
              and cold.stdout == warm.stdout,
              f"cold:\n{cold.stdout}\nwarm:\n{warm.stdout}")

    # 10. The real repository scans clean (also registered as `ast_repo`).
    if (REPO / "build" / "compile_commands.json").is_file():
        p = run(["--root", str(REPO), "-p", str(REPO / "build")])
        check("repository scans clean", p.returncode == 0,
              f"exit={p.returncode}\n{p.stdout}{p.stderr}")
    else:
        print("  --  repository scan skipped (no build/compile_commands.json;"
              " covered by the ast_repo ctest)")

    if FAILURES:
        print(f"\n{len(FAILURES)} failing check(s): {FAILURES}")
        return 1
    print("\nall AST analyzer self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
