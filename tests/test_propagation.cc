// Propagation model: Friis/two-ray regimes, monotonicity, and the distance
// ratios the capture-sensitive scenarios rely on.
#include <gtest/gtest.h>

#include "src/phy/propagation.h"

namespace g80211 {
namespace {

TEST(Propagation, DistanceMath) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance({-2, 0}, {2, 0}), 4.0);
}

TEST(Propagation, PowerDecreasesWithDistance) {
  Propagation p;
  double prev = 1e9;
  for (double d : {1.0, 5.0, 20.0, 80.0, 90.0, 150.0, 400.0}) {
    const double rx = p.rx_power_w(d);
    EXPECT_LT(rx, prev) << "at distance " << d;
    EXPECT_GT(rx, 0.0);
    prev = rx;
  }
}

TEST(Propagation, FriisRegimeIsInverseSquare) {
  Propagation p;
  // Well below the crossover (~86 m with ns-2 defaults).
  const double r1 = p.rx_power_w(10.0);
  const double r2 = p.rx_power_w(20.0);
  EXPECT_NEAR(r1 / r2, 4.0, 1e-9);
}

TEST(Propagation, TwoRayRegimeIsInverseFourth) {
  Propagation p;
  const double r1 = p.rx_power_w(100.0);
  const double r2 = p.rx_power_w(200.0);
  EXPECT_NEAR(r1 / r2, 16.0, 1e-9);
}

TEST(Propagation, CrossoverIsContinuousEnough) {
  Propagation p;
  const double c = p.crossover_m();
  EXPECT_GT(c, 50.0);
  EXPECT_LT(c, 150.0);
  const double below = p.rx_power_w(c * 0.999);
  const double above = p.rx_power_w(c * 1.001);
  EXPECT_NEAR(below / above, 1.0, 0.02);
}

TEST(Propagation, CaptureSafeDistanceRatio) {
  // The pairs_in_range topology relies on: a peer at 2 m beats a foreign
  // station at >= 9 m by more than the 10x capture threshold (Friis: power
  // ratio = (9/2)^2 = 20.25).
  Propagation p;
  EXPECT_GT(p.rx_power_w(2.0) / p.rx_power_w(9.0), 10.0);
}

TEST(Propagation, HiddenTerminalDistancesDoNotCapture) {
  // hidden_pairs(): 95 m vs 105 m at a receiver — two-ray power ratio
  // (105/95)^4 ~ 1.5, far below 10x, so overlaps collide.
  Propagation p;
  const double ratio = p.rx_power_w(95.0) / p.rx_power_w(105.0);
  EXPECT_LT(ratio, 10.0);
  EXPECT_GT(ratio, 1.0);
}

TEST(Propagation, TinyDistanceIsClamped) {
  Propagation p;
  EXPECT_EQ(p.rx_power_w(0.0), p.rx_power_w(0.05));
}

TEST(Propagation, DbConversionsRoundTrip) {
  EXPECT_NEAR(watts_to_dbm(0.001), 0.0, 1e-12);  // 1 mW = 0 dBm
  EXPECT_NEAR(watts_to_dbm(1.0), 30.0, 1e-12);
  EXPECT_NEAR(dbm_to_watts(watts_to_dbm(0.02)), 0.02, 1e-12);
  EXPECT_NEAR(ratio_to_db(10.0), 10.0, 1e-12);
  EXPECT_NEAR(ratio_to_db(100.0), 20.0, 1e-12);
}

}  // namespace
}  // namespace g80211
