// DCF MAC behaviour: exchanges, retransmission, duplicate filtering, NAV
// deference, EIFS, emulation knobs, greedy hooks.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/greedy/ack_spoofing.h"
#include "src/greedy/fake_ack.h"
#include "src/greedy/nav_inflation.h"
#include "src/net/node.h"
#include "src/phy/channel.h"
#include "src/sim/scheduler.h"

namespace g80211 {
namespace {

struct CountingSink : PacketSink {
  std::vector<PacketPtr> packets;
  void receive(const PacketPtr& p) override { packets.push_back(p); }
};

class MacTest : public ::testing::Test {
 protected:
  MacTest() : channel_(sched_, WifiParams::b11()) {}

  Node& add_node(Position pos) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(
        std::make_unique<Node>(sched_, channel_, id, pos, Rng(900 + id)));
    return *nodes_.back();
  }

  PacketPtr packet(int flow, int src, int dst, int bytes = 1064,
                   std::int64_t seq = 0) {
    auto p = make_packet();
    p->flow_id = flow;
    p->seq = seq;
    p->size_bytes = bytes;
    p->src_node = src;
    p->dst_node = dst;
    return p;
  }

  Scheduler sched_;
  Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(MacTest, SingleDataDeliveryWithRtsCts) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  CountingSink sink;
  rx.register_sink(1, &sink);
  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(1));

  ASSERT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(tx.mac().stats().rts_sent, 1);
  EXPECT_EQ(rx.mac().stats().cts_sent, 1);
  EXPECT_EQ(tx.mac().stats().data_sent, 1);
  EXPECT_EQ(rx.mac().stats().acks_sent, 1);
  EXPECT_EQ(tx.mac().stats().data_success, 1);
  EXPECT_EQ(tx.mac().stats().ack_timeouts, 0);
}

TEST_F(MacTest, BasicAccessWithoutRtsCts) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  rx.mac().set_rts_cts(false);
  CountingSink sink;
  rx.register_sink(1, &sink);
  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(1));

  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(tx.mac().stats().rts_sent, 0);
  EXPECT_EQ(rx.mac().stats().cts_sent, 0);
  EXPECT_EQ(rx.mac().stats().acks_sent, 1);
}

TEST_F(MacTest, ExchangeTimingIsSifsSpaced) {
  // RTS -> SIFS -> CTS -> SIFS -> DATA -> SIFS -> ACK, captured by a
  // promiscuous observer.
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  Node& observer = add_node({5, 5});
  struct Obs {
    FrameType type;
    Time start;
  };
  std::vector<Obs> seen;
  observer.mac().sniffer = [&](const Frame& f, const RxInfo& i) {
    seen.push_back({f.type, i.start});
  };
  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(1));

  ASSERT_EQ(seen.size(), 4u);
  const WifiParams p = WifiParams::b11();
  EXPECT_EQ(seen[0].type, FrameType::kRts);
  EXPECT_EQ(seen[1].type, FrameType::kCts);
  EXPECT_EQ(seen[2].type, FrameType::kData);
  EXPECT_EQ(seen[3].type, FrameType::kAck);
  EXPECT_EQ(seen[1].start - seen[0].start, p.rts_tx_time() + p.sifs);
  EXPECT_EQ(seen[2].start - seen[1].start, p.cts_tx_time() + p.sifs);
  EXPECT_EQ(seen[3].start - seen[2].start, p.data_tx_time(1064) + p.sifs);
}

TEST_F(MacTest, HonestDurationFieldsFollowStandard) {
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  Node& observer = add_node({5, 5});
  std::vector<Frame> frames;
  observer.mac().sniffer = [&](const Frame& f, const RxInfo&) {
    frames.push_back(f);
  };
  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(1));

  ASSERT_EQ(frames.size(), 4u);
  const WifiParams p = WifiParams::b11();
  EXPECT_EQ(frames[0].duration, Durations::rts(p, 1064));
  EXPECT_EQ(frames[1].duration, Durations::cts(p, 1064));
  EXPECT_EQ(frames[2].duration, Durations::data(p));
  EXPECT_EQ(frames[3].duration, 0);
}

TEST_F(MacTest, RetransmitsUntilRetryLimitThenDrops) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  // DATA always corrupted on this link; control frames too, but the RTS
  // handshake is skipped for clarity.
  tx.mac().set_rts_cts(false);
  rx.mac().set_rts_cts(false);
  channel_.error_model().set_link_ber(0, 1, 1.0);
  CountingSink sink;
  rx.register_sink(1, &sink);

  bool done_acked = true;
  tx.mac().tx_done_cb = [&](const PacketPtr&, bool acked) { done_acked = acked; };
  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(2));

  const auto& st = tx.mac().stats();
  const int attempts = WifiParams::b11().long_retry_limit + 1;
  EXPECT_EQ(st.data_sent, attempts);
  EXPECT_EQ(st.data_retries, attempts - 1);
  EXPECT_EQ(st.ack_timeouts, attempts);
  EXPECT_EQ(st.data_dropped, 1);
  EXPECT_EQ(st.data_success, 0);
  EXPECT_FALSE(done_acked);
  EXPECT_TRUE(sink.packets.empty());
  // CW was doubled along the way and reset after the drop.
  EXPECT_GT(tx.mac().backoff().average_cw(), WifiParams::b11().cw_min);
  EXPECT_EQ(tx.mac().backoff().cw(), WifiParams::b11().cw_min);
}

TEST_F(MacTest, LostAckCausesDuplicateThatIsFilteredAtReceiver) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  rx.mac().set_rts_cts(false);
  // ACKs (rx -> tx) always corrupted: data arrives, MAC ACK never does.
  channel_.error_model().set_link_ber(1, 0, 1.0);
  CountingSink sink;
  rx.register_sink(1, &sink);
  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(2));

  EXPECT_EQ(sink.packets.size(), 1u) << "duplicates must not reach the app";
  const auto& rst = rx.mac().stats();
  EXPECT_EQ(rst.rx_data_ok, 1);
  EXPECT_EQ(rst.rx_data_dup, WifiParams::b11().long_retry_limit);
  EXPECT_EQ(tx.mac().stats().data_dropped, 1);
}

TEST_F(MacTest, CtsTimeoutUsesShortRetryLimit) {
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  channel_.error_model().set_link_ber(0, 1, 1.0);  // RTS never decodes
  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(2));

  const auto& st = tx.mac().stats();
  const int attempts = WifiParams::b11().short_retry_limit + 1;
  EXPECT_EQ(st.rts_sent, attempts);
  EXPECT_EQ(st.cts_timeouts, attempts);
  EXPECT_EQ(st.data_sent, 0);
  EXPECT_EQ(st.data_dropped, 1);
}

TEST_F(MacTest, NavSuppressesCtsResponse) {
  // A third station's CTS with a long duration sets the victim's NAV; an
  // RTS arriving inside that window gets no CTS (paper Fig 10 mechanics).
  // The jammer must be out of the RTS sender's range, or the sender's own
  // NAV would stop it from transmitting at all.
  channel_.set_ranges(31.0, 31.0);
  Node& tx = add_node({0, 0});
  Node& victim = add_node({5, 0});
  Node& other = add_node({5, 31});  // hears victim (31 m), not tx (31.4 m)

  Frame cts;
  cts.type = FrameType::kCts;
  cts.ra = 3;  // neither the victim nor tx: both would apply it to NAV
  cts.duration = milliseconds(20);
  sched_.at(microseconds(10), [&] {
    other.phy().transmit(cts, WifiParams::b11().cts_tx_time());
  });
  sched_.at(microseconds(500), [&] { tx.send_packet(packet(1, 0, 1)); });
  sched_.run_until(milliseconds(10));

  EXPECT_GT(victim.mac().stats().cts_suppressed_by_nav, 0);
  EXPECT_EQ(victim.mac().stats().cts_sent, 0);
  EXPECT_GT(tx.mac().stats().cts_timeouts, 0);
}

TEST_F(MacTest, NavDefersTransmissionUntilExpiry) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  Node& other = add_node({10, 0});

  const Time nav_dur = milliseconds(15);
  Frame cts;
  cts.type = FrameType::kCts;
  cts.ra = 3;
  cts.duration = nav_dur;
  sched_.at(0, [&] { other.phy().transmit(cts, WifiParams::b11().cts_tx_time()); });
  sched_.at(microseconds(400), [&] { tx.send_packet(packet(1, 0, 1)); });

  std::vector<Time> rts_times;
  rx.mac().sniffer = [&](const Frame& f, const RxInfo& i) {
    if (f.type == FrameType::kRts) rts_times.push_back(i.start);
  };
  sched_.run_until(milliseconds(30));

  ASSERT_FALSE(rts_times.empty());
  // The RTS may not start before the NAV set by the overheard CTS expires.
  const Time nav_expiry = WifiParams::b11().cts_tx_time() + nav_dur;
  EXPECT_GE(rts_times[0], nav_expiry);
}

TEST_F(MacTest, CorruptedFrameTriggersEifsDeference) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  rx.mac().set_rts_cts(false);

  // A junk frame that corrupts at tx (and rx), then tx wants to send.
  Node& junk_src = add_node({10, 0});
  channel_.error_model().set_link_ber(2, 0, 1.0);
  channel_.error_model().set_link_ber(2, 1, 1.0);

  Frame junk;
  junk.type = FrameType::kData;
  junk.ta = 2;
  junk.ra = 3;
  junk.packet = make_packet();
  junk.packet->size_bytes = 1064;
  const Time junk_air = WifiParams::b11().data_tx_time(1064);
  sched_.at(0, [&] { junk_src.phy().transmit(junk, junk_air); });
  sched_.at(microseconds(1), [&] { tx.send_packet(packet(1, 0, 1)); });

  std::vector<Time> data_times;
  rx.mac().sniffer = [&](const Frame& f, const RxInfo& i) {
    if (f.type == FrameType::kData && f.ta == 0) data_times.push_back(i.start);
  };
  sched_.run_until(milliseconds(50));

  ASSERT_FALSE(data_times.empty());
  EXPECT_GT(tx.mac().stats().rx_corrupted, 0);
  // First transmission must defer at least EIFS past the junk frame's end.
  EXPECT_GE(data_times[0], junk_air + WifiParams::b11().eifs());
}

TEST_F(MacTest, DisableRetransmissionsEmulationMovesOnAfterTimeout) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  rx.mac().set_rts_cts(false);
  channel_.error_model().set_link_ber(0, 1, 1.0);
  tx.mac().disable_retransmissions_to(1);

  tx.send_packet(packet(1, 0, 1, 1064, 0));
  tx.send_packet(packet(1, 0, 1, 1064, 1));
  sched_.run_until(seconds(1));

  const auto& st = tx.mac().stats();
  EXPECT_EQ(st.data_sent, 2);
  EXPECT_EQ(st.data_retries, 0) << "no retransmissions toward this dest";
  EXPECT_EQ(st.ack_timeouts, 2);
  // CW never grew: every draw happened at cw_min.
  EXPECT_DOUBLE_EQ(tx.mac().backoff().average_cw(), WifiParams::b11().cw_min);
}

TEST_F(MacTest, ClampCwEmulationFreezesWindow) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  rx.mac().set_rts_cts(false);
  channel_.error_model().set_link_ber(0, 1, 1.0);
  tx.mac().clamp_cw_to(1);

  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(1));

  EXPECT_GT(tx.mac().stats().ack_timeouts, 0);
  EXPECT_DOUBLE_EQ(tx.mac().backoff().average_cw(), WifiParams::b11().cw_min);
}

TEST_F(MacTest, QueueOverflowDropsAtTail) {
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  for (int i = 0; i < 60; ++i) tx.send_packet(packet(1, 0, 1, 1064, i));
  // Queue limit is 50: one in service + 50 queued; the rest dropped.
  EXPECT_EQ(tx.mac().stats().queue_drops, 60 - 51);
}

TEST_F(MacTest, PerDestCountersTrackRetries) {
  Node& tx = add_node({0, 0});
  Node& rx1 = add_node({5, 0});
  Node& rx2 = add_node({0, 5});
  tx.mac().set_rts_cts(false);
  for (Node* n : {&rx1, &rx2}) n->mac().set_rts_cts(false);
  // Half of frames to rx1 corrupt; rx2 clean. 40 packets total fit the
  // 50-packet interface queue without tail drops.
  channel_.error_model().set_link_ber(
      0, 1, ErrorModel::ber_for_fer(0.5, ErrorModel::error_len(FrameType::kData, 1064)));
  for (int i = 0; i < 20; ++i) {
    tx.send_packet(packet(1, 0, 1, 1064, i));
    tx.send_packet(packet(2, 0, 2, 1064, i));
  }
  sched_.run_until(seconds(5));

  const auto& c1 = tx.mac().dest_counters(1);
  const auto& c2 = tx.mac().dest_counters(2);
  EXPECT_GT(c1.retry_fraction(), 0.25);
  EXPECT_DOUBLE_EQ(c2.retry_fraction(), 0.0);
  EXPECT_EQ(c2.successes, 20);
  EXPECT_EQ(tx.mac().dest_counters(99).attempts, 0);  // unknown dest: empty
}

TEST_F(MacTest, GreedyNavInflationAppearsOnAirAndClampsAtMax) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  Node& observer = add_node({5, 5});
  NavInflationPolicy policy(NavFrameMask::cts_only(), seconds(10));  // silly big
  rx.mac().set_greedy_policy(&policy);

  std::vector<Frame> ctss;
  observer.mac().sniffer = [&](const Frame& f, const RxInfo&) {
    if (f.type == FrameType::kCts) ctss.push_back(f);
  };
  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(1));

  ASSERT_EQ(ctss.size(), 1u);
  EXPECT_EQ(ctss[0].duration, WifiParams::kMaxNav) << "clamped to 32767 us";
  EXPECT_EQ(policy.inflations_applied(), 1);
}

TEST_F(MacTest, SpoofedAckSuppressesRetransmission) {
  // NS -> NR is fully corrupted, but GR (promiscuous, clean link from NS)
  // spoofs NR's ACK: NS believes delivery succeeded, no retries happen.
  Node& ns = add_node({0, 0});
  Node& nr = add_node({2, 0});
  Node& gr = add_node({9, 0});
  for (Node* n : {&ns, &nr, &gr}) n->mac().set_rts_cts(false);
  channel_.error_model().set_link_ber(0, 1, 1.0);
  AckSpoofingPolicy policy(1.0, {nr.id()});
  gr.mac().set_greedy_policy(&policy);

  ns.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(1));

  const auto& st = ns.mac().stats();
  EXPECT_EQ(st.data_sent, 1);
  EXPECT_EQ(st.data_success, 1) << "the spoofed ACK was accepted";
  EXPECT_EQ(st.ack_timeouts, 0);
  EXPECT_EQ(gr.mac().stats().spoofed_acks_sent, 1);
  EXPECT_EQ(nr.mac().stats().rx_data_ok, 0) << "yet NR never got the data";
}

TEST_F(MacTest, VictimAckCapturesOverSpoofedAck) {
  // When NR *does* receive the data, its ACK (2 m) captures GR's spoof
  // (9 m) at NS — delivery proceeds normally, no jamming.
  Node& ns = add_node({0, 0});
  Node& nr = add_node({2, 0});
  Node& gr = add_node({9, 0});
  for (Node* n : {&ns, &nr, &gr}) n->mac().set_rts_cts(false);
  AckSpoofingPolicy policy(1.0, {nr.id()});
  gr.mac().set_greedy_policy(&policy);
  CountingSink sink;
  nr.register_sink(1, &sink);

  ns.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(1));

  EXPECT_EQ(sink.packets.size(), 1u);
  EXPECT_EQ(ns.mac().stats().data_success, 1);
  EXPECT_EQ(gr.mac().stats().spoofed_acks_sent, 1);
  EXPECT_EQ(ns.mac().stats().ack_timeouts, 0);
}

TEST_F(MacTest, FakeAckPreventsBackoffGrowth) {
  Node& gs = add_node({0, 0});
  Node& gr = add_node({5, 0});
  for (Node* n : {&gs, &gr}) n->mac().set_rts_cts(false);
  // ~90% corrupted frames; addresses usually survive.
  channel_.error_model().set_link_ber(
      0, 1, ErrorModel::ber_for_fer(0.9, ErrorModel::error_len(FrameType::kData, 1064)));
  FakeAckPolicy policy(1.0);
  gr.mac().set_greedy_policy(&policy);

  for (int i = 0; i < 50; ++i) gs.send_packet(packet(1, 0, 1, 1064, i));
  sched_.run_until(seconds(5));

  EXPECT_GT(gr.mac().stats().fake_acks_sent, 20);
  // Fake ACKs were accepted as successes despite corruption.
  EXPECT_GT(gs.mac().stats().data_success, 40);
  // The contention window never left cw_min for those "successes".
  EXPECT_LT(gs.mac().backoff().average_cw(), WifiParams::b11().cw_min * 1.5);
}

TEST_F(MacTest, AckFilterForcesRetransmission) {
  // GRC recovery path: a sender whose ack_filter rejects everything keeps
  // retransmitting and finally drops.
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  rx.mac().set_rts_cts(false);
  tx.mac().ack_filter = [](const Frame&, const RxInfo&, int) { return true; };

  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(2));

  const auto& st = tx.mac().stats();
  EXPECT_EQ(st.acks_ignored, WifiParams::b11().long_retry_limit + 1);
  EXPECT_EQ(st.data_dropped, 1);
  EXPECT_EQ(st.data_success, 0);
}

TEST_F(MacTest, NavFilterRewritesNavUpdate) {
  // A nav_filter that zeroes every duration means overheard frames never
  // block this station.
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  Node& bystander = add_node({10, 0});
  bystander.mac().nav_filter = [](const Frame&, const RxInfo&) -> Time { return 0; };

  tx.send_packet(packet(1, 0, 1));
  sched_.run_until(seconds(1));

  EXPECT_EQ(bystander.mac().stats().nav_updates, 0);
  EXPECT_FALSE(bystander.mac().nav().busy(sched_.now()));
}

TEST_F(MacTest, SaturatedPairSustainsThroughput) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  CountingSink sink;
  rx.register_sink(1, &sink);
  // Keep the queue fed.
  int seq = 0;
  std::function<void()> feed = [&] {
    while (tx.mac().queue_size() < 10) tx.send_packet(packet(1, 0, 1, 1064, seq++));
    sched_.after(milliseconds(10), feed);
  };
  sched_.at(0, feed);
  sched_.run_until(seconds(1));

  // 802.11b RTS/CTS + 1064 B at 11 Mbps: one exchange ~2.4 ms -> ~400/s.
  EXPECT_GT(sink.packets.size(), 300u);
  EXPECT_LT(sink.packets.size(), 520u);
}

}  // namespace
}  // namespace g80211
