// The conservative parallel engine's contracts:
//  * metrics are byte-identical for every shard count and for inline vs
//    threaded execution (the determinism contract in sharded.h);
//  * partitions that would split carrier-sense neighborhoods are refused;
//  * cross-shard backhaul flows deliver through the epoch mailboxes at
//    every shard count;
//  * the auto-partitioner is deterministic, contiguous and balanced.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "src/scenario/sharded.h"
#include "src/sim/check.h"
#include "src/sim/mailbox.h"

namespace g80211 {
namespace {

// Cells far apart with finite ranges: no cross-cell wireless interaction,
// which is exactly the world the engine may legally shard.
ShardedWorldSpec separated_world(int n_bss, int n_stations,
                                 bool cross_flows = false) {
  ShardedWorldSpec spec;
  spec.base.comm_range_m = 30.0;
  spec.base.cs_range_m = 60.0;
  spec.base.warmup = milliseconds(50);
  spec.base.measure = milliseconds(200);
  spec.base.seed = 7;
  for (int b = 0; b < n_bss; ++b) {
    HotspotBssSpec cell;
    cell.ap = Position{500.0 * b, 0.0};
    cell.n_stations = n_stations;
    cell.rate_mbps = 2.0;
    spec.bsss.push_back(cell);
  }
  if (cross_flows) {
    for (int b = 0; b < n_bss; ++b) {
      CrossFlowSpec cf;
      cf.src_bss = b;
      cf.dst_bss = (b + 1) % n_bss;
      cf.dst_station = b % n_stations;
      cf.latency = milliseconds(2);
      cf.rate_mbps = 0.5;
      spec.cross_flows.push_back(cf);
    }
  }
  return spec;
}

bool identical(const std::vector<ShardedSim::FlowMetrics>& a,
               const std::vector<ShardedSim::FlowMetrics>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].flow_id != b[i].flow_id) return false;
    // Bitwise double comparison: the contract is byte identity, not
    // approximate equality.
    if (a[i].goodput_mbps != b[i].goodput_mbps) return false;
    if (a[i].packets != b[i].packets) return false;
    if (a[i].highest_seq != b[i].highest_seq) return false;
  }
  return true;
}

std::vector<ShardedSim::FlowMetrics> run_world(const ShardedWorldSpec& spec,
                                               int shards, bool threaded) {
  ShardedSim sim(spec, shards, threaded);
  sim.run();
  return sim.metrics();
}

TEST(ShardedSim, TwoShardsByteIdenticalToOne) {
  const ShardedWorldSpec spec = separated_world(2, 3);
  const auto one = run_world(spec, 1, /*threaded=*/false);
  const auto two = run_world(spec, 2, /*threaded=*/true);
  ASSERT_EQ(one.size(), 6u);
  EXPECT_GT(one[0].packets, 0);
  EXPECT_TRUE(identical(one, two));
}

TEST(ShardedSim, FourShardGridByteIdenticalToOne) {
  ShardedWorldSpec spec = separated_world(4, 2);
  // 2x2 grid rather than a line, so the spatial sort is exercised in both
  // coordinates.
  spec.bsss[1].ap = Position{0.0, 500.0};
  spec.bsss[3].ap = Position{500.0, 500.0};
  const auto one = run_world(spec, 1, /*threaded=*/false);
  const auto four = run_world(spec, 4, /*threaded=*/true);
  ASSERT_EQ(one.size(), 8u);
  EXPECT_TRUE(identical(one, four));
}

TEST(ShardedSim, CrossShardBackhaulByteIdenticalAndDelivers) {
  const ShardedWorldSpec spec = separated_world(2, 2, /*cross_flows=*/true);
  ShardedSim one(spec, 1, /*threaded=*/false);
  one.run();
  ShardedSim two(spec, 2, /*threaded=*/true);
  two.run();
  const auto m1 = one.metrics();
  const auto m2 = two.metrics();
  ASSERT_EQ(m1.size(), 6u);  // 4 downlink + 2 cross flows
  // The backhaul actually carried traffic, and the cross-flow sinks saw it.
  EXPECT_GT(two.cross_packets_routed(), 0u);
  EXPECT_EQ(one.cross_packets_routed(), two.cross_packets_routed());
  EXPECT_GT(m1[4].packets, 0);
  EXPECT_GT(m1[5].packets, 0);
  EXPECT_TRUE(identical(m1, m2));
  // Lookahead is the minimum wire latency; epochs tile warmup + measure.
  EXPECT_EQ(two.lookahead(), milliseconds(2));
  EXPECT_EQ(two.epochs_run(), 125u);  // 250 ms / 2 ms
  EXPECT_EQ(one.epochs_run(), two.epochs_run());
}

TEST(ShardedSim, InlineAndThreadedExecutionsAreIdentical) {
  const ShardedWorldSpec spec = separated_world(2, 2, /*cross_flows=*/true);
  const auto inline_run = run_world(spec, 2, /*threaded=*/false);
  const auto threaded_run = run_world(spec, 2, /*threaded=*/true);
  EXPECT_TRUE(identical(inline_run, threaded_run));
}

TEST(ShardedSim, RefusesPartitionWithinCarrierSenseRange) {
  // Unlimited ranges: every cross-shard pair interacts, so any split of
  // two cells must be refused.
  ShardedWorldSpec spec = separated_world(2, 2);
  spec.base.comm_range_m = 0.0;
  spec.base.cs_range_m = 0.0;
  EXPECT_THROW(ShardedSim(spec, 2), CheckFailure);
  // Finite ranges but cells closer than the carrier-sense range: the
  // 60 m CS disc spans the 50 m gap, so splitting would erase deferral.
  ShardedWorldSpec close = separated_world(2, 2);
  close.bsss[1].ap = Position{50.0, 0.0};
  EXPECT_THROW(ShardedSim(close, 2), CheckFailure);
  // The same worlds are fine as a single shard (nothing crosses).
  EXPECT_NO_THROW(ShardedSim(close, 1));
}

TEST(ShardedSim, RejectsNonPositiveCrossFlowLatency) {
  ShardedWorldSpec spec = separated_world(2, 2, /*cross_flows=*/true);
  spec.cross_flows[0].latency = 0;
  EXPECT_THROW(ShardedSim(spec, 2), CheckFailure);
}

TEST(PartitionBsss, SortsSpatiallyAndBalancesStations) {
  ShardedWorldSpec spec;
  spec.bsss.push_back({Position{300.0, 0.0}, 2});
  spec.bsss.push_back({Position{0.0, 0.0}, 2});
  spec.bsss.push_back({Position{600.0, 0.0}, 2});
  spec.bsss.push_back({Position{900.0, 0.0}, 2});
  const auto two = partition_bsss(spec, 2);
  ASSERT_EQ(two.size(), 2u);
  // Sorted by x: cells 1, 0 | 2, 3 — contiguous chunks, 2 cells each.
  EXPECT_EQ(two[0], (std::vector<int>{1, 0}));
  EXPECT_EQ(two[1], (std::vector<int>{2, 3}));
  // One shard per cell at the maximum shard count.
  const auto four = partition_bsss(spec, 4);
  for (const auto& shard : four) EXPECT_EQ(shard.size(), 1u);
  // Uneven station counts: the heavy cell does not drag a neighbour in.
  spec.bsss[1].n_stations = 6;
  const auto uneven = partition_bsss(spec, 2);
  EXPECT_EQ(uneven[0], (std::vector<int>{1}));
  EXPECT_EQ(uneven[1], (std::vector<int>{0, 2, 3}));
  EXPECT_THROW(partition_bsss(spec, 5), CheckFailure);
  EXPECT_THROW(partition_bsss(spec, 0), CheckFailure);
}

TEST(EpochMailbox, StampsPreservesOrderAndDrainsEmpty) {
  EpochMailbox<int> box;
  EXPECT_TRUE(box.empty());
  box.push(10);
  box.push(20);
  EXPECT_EQ(box.size(), 2u);
  auto items = box.drain();
  ASSERT_EQ(items.size(), 2u);
  EXPECT_EQ(items[0].seq, 0u);
  EXPECT_EQ(items[0].item, 10);
  EXPECT_EQ(items[1].seq, 1u);
  EXPECT_EQ(items[1].item, 20);
  EXPECT_TRUE(box.empty());
  // Stamps keep counting across epochs, so merge keys stay unique.
  box.push(30);
  auto next = box.drain();
  ASSERT_EQ(next.size(), 1u);
  EXPECT_EQ(next[0].seq, 2u);
  EXPECT_EQ(box.total_pushed(), 3u);
}

}  // namespace
}  // namespace g80211
