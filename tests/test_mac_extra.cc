// Additional MAC coverage: feature interactions (fragmentation x
// auto-rate, fragmentation x RTS retries, broadcast under contention),
// EIFS clearing, hook chaining, and greedy combinations.
#include <gtest/gtest.h>

#include "src/greedy/nav_inflation.h"
#include "src/net/node.h"
#include "src/phy/channel.h"
#include "src/sim/scheduler.h"

namespace g80211 {
namespace {

struct CountingSink : PacketSink {
  std::vector<PacketPtr> packets;
  void receive(const PacketPtr& p) override { packets.push_back(p); }
};

class MacExtraTest : public ::testing::Test {
 protected:
  MacExtraTest() : channel_(sched_, WifiParams::b11()) {}
  Node& add_node(Position pos) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(
        std::make_unique<Node>(sched_, channel_, id, pos, Rng(600 + id)));
    return *nodes_.back();
  }
  PacketPtr packet(int flow, int dst, int bytes = 1064, std::int64_t seq = 0) {
    auto p = make_packet();
    p->flow_id = flow;
    p->seq = seq;
    p->size_bytes = bytes;
    p->dst_node = dst;
    return p;
  }
  Scheduler sched_;
  Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(MacExtraTest, FragmentsUseTheAdaptedRate) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  tx.mac().set_fragmentation_threshold(532);
  tx.mac().enable_auto_rate(5.5);
  CountingSink sink;
  rx.register_sink(1, &sink);

  std::vector<double> rates;
  rx.mac().sniffer = [&](const Frame& f, const RxInfo&) {
    if (f.type == FrameType::kData) rates.push_back(f.rate_mbps);
  };
  tx.send_packet(packet(1, 1));
  sched_.run_until(seconds(1));
  ASSERT_EQ(sink.packets.size(), 1u);
  ASSERT_EQ(rates.size(), 2u);
  EXPECT_DOUBLE_EQ(rates[0], 5.5);
  EXPECT_DOUBLE_EQ(rates[1], 5.5);
}

TEST_F(MacExtraTest, AutoRateClimbsAcrossFragBursts) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_rts_cts(false);
  tx.mac().set_fragmentation_threshold(532);
  tx.mac().enable_auto_rate(1.0);
  CountingSink sink;
  rx.register_sink(1, &sink);
  for (int i = 0; i < 30; ++i) tx.send_packet(packet(1, 1, 1064, i));
  sched_.run_until(seconds(3));
  EXPECT_EQ(sink.packets.size(), 30u);
  // Every fragment ACK counts as an ARF success: 60 successes climb the
  // whole 1 -> 11 ladder.
  EXPECT_DOUBLE_EQ(tx.mac().data_rate_to(rx.id()), 11.0);
}

TEST_F(MacExtraTest, MidBurstRetryReissuesRts) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  tx.mac().set_fragmentation_threshold(532);  // RTS/CTS on
  CountingSink sink;
  rx.register_sink(1, &sink);

  int data_seen = 0;
  rx.mac().sniffer = [&](const Frame& f, const RxInfo&) {
    if (f.type != FrameType::kData) return;
    ++data_seen;
    channel_.error_model().set_link_ber(0, 1, data_seen == 1 ? 1.0 : 0.0);
  };
  tx.send_packet(packet(1, 1));
  sched_.run_until(seconds(1));

  ASSERT_EQ(sink.packets.size(), 1u);
  // Initial RTS + one more for the retried second fragment.
  EXPECT_EQ(tx.mac().stats().rts_sent, 2);
  EXPECT_EQ(tx.mac().stats().data_retries, 1);
}

TEST_F(MacExtraTest, BroadcastContendsAndCollidesWithoutRecovery) {
  // Two broadcasters with synchronized queues: any collision is final
  // (no ACK, no retry), and both complete immediately.
  Node& a = add_node({0, 0});
  Node& b = add_node({20, 0});
  add_node({10, 0});
  for (int i = 0; i < 20; ++i) {
    a.send_packet(packet(1, kBroadcast, 500, i));
    b.send_packet(packet(2, kBroadcast, 500, i));
  }
  sched_.run_until(seconds(2));
  EXPECT_EQ(a.mac().stats().data_success, 20);
  EXPECT_EQ(b.mac().stats().data_success, 20);
  EXPECT_EQ(a.mac().stats().data_retries, 0);
  EXPECT_EQ(b.mac().stats().data_retries, 0);
}

TEST_F(MacExtraTest, EifsClearedByCorrectReception) {
  // tx hears a corrupted frame (arming EIFS) and then a clean one (which
  // per the standard ends the EIFS condition); its next deference must be
  // plain DIFS + backoff, not EIFS-based.
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  Node& other = add_node({10, 0});
  tx.mac().set_rts_cts(false);
  channel_.error_model().set_link_ber(2, 0, 1.0);  // other -> tx corrupts

  auto inject = [&](Node& from, int ta) {
    Frame f;
    f.type = FrameType::kData;
    f.ta = ta;
    f.ra = 3;  // addressed elsewhere: pure overhearing at tx
    f.packet = make_packet();
    f.packet->size_bytes = 200;
    from.phy().transmit(f, WifiParams::b11().data_tx_time(200));
  };
  const Time air = WifiParams::b11().data_tx_time(200);
  sched_.at(0, [&] { inject(other, 2); });                 // corrupted at tx
  const Time clean_start = air + microseconds(500);
  sched_.at(clean_start, [&] { inject(rx, 1); });          // clean at tx
  const Time clean_end = clean_start + air;
  sched_.at(clean_start + microseconds(10), [&] { tx.send_packet(packet(1, 1, 200)); });

  std::vector<Time> tx_starts;
  rx.mac().sniffer = [&](const Frame& f, const RxInfo& i) {
    if (f.type == FrameType::kData && f.ta == 0) tx_starts.push_back(i.start);
  };
  sched_.run_until(seconds(1));
  ASSERT_EQ(tx_starts.size(), 1u);
  EXPECT_GT(tx.mac().stats().rx_corrupted, 0);
  const Time gap = tx_starts[0] - clean_end;
  EXPECT_GE(gap, WifiParams::b11().difs);
  EXPECT_LT(gap, WifiParams::b11().eifs() + 31 * WifiParams::b11().slot)
      << "EIFS penalty must have been cleared by the clean reception";
}

TEST_F(MacExtraTest, SnifferChainSeesEveryFrameOnce) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  CountingSink sink;
  rx.register_sink(1, &sink);
  int first = 0, second = 0;
  rx.mac().sniffer = [&](const Frame&, const RxInfo&) { ++first; };
  auto prev = std::move(rx.mac().sniffer);
  rx.mac().sniffer = [&, prev = std::move(prev)](const Frame& f, const RxInfo& i) {
    prev(f, i);
    ++second;
  };
  tx.send_packet(packet(1, 1));
  sched_.run_until(seconds(1));
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, 2) << "RTS + DATA (own CTS/ACK are not sniffed)";
}

TEST_F(MacExtraTest, GreedyPolicyAppliesToFragmentAcks) {
  // A greedy receiver inflating ACK NAVs keeps doing so inside fragment
  // bursts — every fragment ACK carries the inflation.
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  Node& observer = add_node({5, 5});
  tx.mac().set_rts_cts(false);
  tx.mac().set_fragmentation_threshold(532);
  NavInflationPolicy policy(NavFrameMask::ack_only(), milliseconds(3));
  rx.mac().set_greedy_policy(&policy);

  std::vector<Time> ack_durs;
  observer.mac().sniffer = [&](const Frame& f, const RxInfo&) {
    if (f.type == FrameType::kAck) ack_durs.push_back(f.duration);
  };
  tx.send_packet(packet(1, 1));
  sched_.run_until(seconds(1));
  ASSERT_EQ(ack_durs.size(), 2u);
  for (const Time d : ack_durs) EXPECT_GE(d, milliseconds(3));
  EXPECT_EQ(policy.inflations_applied(), 2);
}

TEST_F(MacExtraTest, QueueServesManyDestinationsInOrder) {
  Node& tx = add_node({0, 0});
  Node& r1 = add_node({5, 0});
  Node& r2 = add_node({0, 5});
  tx.mac().set_rts_cts(false);
  CountingSink s1, s2;
  r1.register_sink(1, &s1);
  r2.register_sink(2, &s2);
  for (int i = 0; i < 10; ++i) {
    tx.send_packet(packet(1, 1, 500, i));
    tx.send_packet(packet(2, 2, 500, i));
  }
  sched_.run_until(seconds(2));
  ASSERT_EQ(s1.packets.size(), 10u);
  ASSERT_EQ(s2.packets.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(s1.packets[static_cast<std::size_t>(i)]->seq, i);
    EXPECT_EQ(s2.packets[static_cast<std::size_t>(i)]->seq, i);
  }
}

}  // namespace
}  // namespace g80211
