// Error model: Table III calibration, per-link overrides, address-survival
// arithmetic, and the Table I corruption study.
#include <gtest/gtest.h>

#include <cmath>

#include "src/phy/error_model.h"

namespace g80211 {
namespace {

TEST(ErrorModel, EffectiveLengthsMatchPaperCalibration) {
  EXPECT_EQ(ErrorModel::error_len(FrameType::kAck, 0), 38);
  EXPECT_EQ(ErrorModel::error_len(FrameType::kCts, 0), 38);
  EXPECT_EQ(ErrorModel::error_len(FrameType::kRts, 0), 44);
  EXPECT_EQ(ErrorModel::error_len(FrameType::kData, 40), 112);     // TCP ACK
  EXPECT_EQ(ErrorModel::error_len(FrameType::kData, 1064), 1136);  // TCP DATA
}

// The paper's Table III, reproduced to its printed precision. The ACK/CTS
// cell at BER 3.2e-4 is a typo in the paper: it implies an error length of
// 35 while every other cell of the column implies exactly 38 (the printed
// 1.121e-2 is presumably a transposition of the correct 1.211e-2), so that
// single cell is checked against the consistent value.
TEST(ErrorModel, Table3ValuesReproduce) {
  const struct {
    double ber;
    double ack_cts, rts, tcp_ack, tcp_data;
  } rows[] = {
      {1e-5, 3.799e-4, 4.399e-4, 1.119e-3, 1.130e-2},
      {2e-4, 7.519e-3, 8.762e-3, 2.235e-2, 2.033e-1},
      {3.2e-4, 1.211e-2, 1.398e-2, 3.521e-2, 3.048e-1},  // see note above
      {4.4e-4, 1.658e-2, 1.918e-2, 4.810e-2, 3.934e-1},
      {8e-4, 2.995e-2, 3.460e-2, 8.574e-2, 5.971e-1},
  };
  for (const auto& r : rows) {
    EXPECT_NEAR(ErrorModel::fer(r.ber, 38), r.ack_cts, r.ack_cts * 0.02) << r.ber;
    EXPECT_NEAR(ErrorModel::fer(r.ber, 44), r.rts, r.rts * 0.02) << r.ber;
    EXPECT_NEAR(ErrorModel::fer(r.ber, 112), r.tcp_ack, r.tcp_ack * 0.02) << r.ber;
    EXPECT_NEAR(ErrorModel::fer(r.ber, 1136), r.tcp_data, r.tcp_data * 0.02) << r.ber;
  }
}

TEST(ErrorModel, FerEdgeCases) {
  EXPECT_DOUBLE_EQ(ErrorModel::fer(0.0, 1000), 0.0);
  EXPECT_DOUBLE_EQ(ErrorModel::fer(1.0, 1), 1.0);
  EXPECT_DOUBLE_EQ(ErrorModel::fer(-1.0, 100), 0.0);
}

TEST(ErrorModel, FerMonotoneInBerAndLength) {
  double prev = 0.0;
  for (double ber : {1e-5, 1e-4, 1e-3, 1e-2}) {
    const double f = ErrorModel::fer(ber, 500);
    EXPECT_GT(f, prev);
    prev = f;
  }
  prev = 0.0;
  for (int len : {10, 100, 1000, 10000}) {
    const double f = ErrorModel::fer(1e-4, len);
    EXPECT_GT(f, prev);
    prev = f;
  }
}

TEST(ErrorModel, BerForFerInverts) {
  for (double target : {0.01, 0.2, 0.5, 0.8}) {
    const double ber = ErrorModel::ber_for_fer(target, 1136);
    EXPECT_NEAR(ErrorModel::fer(ber, 1136), target, 1e-12);
  }
  EXPECT_DOUBLE_EQ(ErrorModel::ber_for_fer(0.0, 100), 0.0);
}

TEST(ErrorModel, LinkOverridesAreDirected) {
  ErrorModel em;
  em.set_default_ber(1e-4);
  em.set_link_ber(1, 2, 5e-3);
  EXPECT_DOUBLE_EQ(em.ber(1, 2), 5e-3);
  EXPECT_DOUBLE_EQ(em.ber(2, 1), 1e-4);  // reverse direction: default
  EXPECT_DOUBLE_EQ(em.ber(3, 4), 1e-4);
}

TEST(ErrorModel, FrameErrorProbUsesLinkAndType) {
  ErrorModel em;
  em.set_link_ber(0, 1, 2e-4);
  const double data = em.frame_error_prob(0, 1, FrameType::kData, 1064);
  const double ack = em.frame_error_prob(0, 1, FrameType::kAck, 0);
  EXPECT_NEAR(data, 0.2033, 0.005);
  EXPECT_NEAR(ack, 7.519e-3, 2e-4);
  EXPECT_DOUBLE_EQ(em.frame_error_prob(1, 0, FrameType::kData, 1064), 0.0);
}

// The per-(link, length) FER memo must never serve a value computed under
// an old BER landscape: after every setter, frame_error_prob must agree
// bit-for-bit with a freshly constructed model holding the same config.
TEST(ErrorModel, SetLinkBerAfterUseInvalidatesMemo) {
  ErrorModel em;
  em.set_link_ber(0, 1, 2e-4);
  // Prime the memo for several lengths on both an overridden and a
  // default-BER link.
  (void)em.frame_error_prob(0, 1, FrameType::kData, 1064);
  (void)em.frame_error_prob(0, 1, FrameType::kAck, 0);
  (void)em.frame_error_prob(1, 0, FrameType::kData, 1064);

  em.set_link_ber(0, 1, 8e-4);
  em.set_link_ber(1, 0, 1e-5);

  ErrorModel fresh;
  fresh.set_link_ber(0, 1, 8e-4);
  fresh.set_link_ber(1, 0, 1e-5);
  for (FrameType t : {FrameType::kData, FrameType::kAck, FrameType::kRts}) {
    EXPECT_EQ(em.frame_error_prob(0, 1, t, 1064),
              fresh.frame_error_prob(0, 1, t, 1064));
    EXPECT_EQ(em.frame_error_prob(1, 0, t, 1064),
              fresh.frame_error_prob(1, 0, t, 1064));
  }
}

TEST(ErrorModel, SetDefaultBerAfterUseInvalidatesMemo) {
  ErrorModel em;
  em.set_default_ber(1e-5);
  (void)em.frame_error_prob(2, 3, FrameType::kData, 1064);
  em.set_default_ber(2e-4);
  ErrorModel fresh;
  fresh.set_default_ber(2e-4);
  EXPECT_EQ(em.frame_error_prob(2, 3, FrameType::kData, 1064),
            fresh.frame_error_prob(2, 3, FrameType::kData, 1064));
}

TEST(ErrorModel, SetRateLimitAfterUseInvalidatesMemo) {
  ErrorModel em;
  em.set_link_ber(0, 1, 1e-5);
  const double before = em.frame_error_prob(0, 1, FrameType::kData, 1064, 11.0);
  // A rate limit below the frame's rate must raise the corruption
  // probability on the very next query, despite the primed memo.
  em.set_link_rate_limit(0, 1, 5.5, 0.9);
  const double after = em.frame_error_prob(0, 1, FrameType::kData, 1064, 11.0);
  EXPECT_GT(after, 0.9);
  EXPECT_GT(after, before);
  // At or below the limit the BER-only probability is restored exactly.
  EXPECT_EQ(em.frame_error_prob(0, 1, FrameType::kData, 1064, 5.5), before);
}

// Ids at or above kMaxDenseId take the overflow-map path; overrides and
// memo invalidation must behave identically there.
TEST(ErrorModel, OverflowIdsMatchDensePathBehaviour) {
  const int big = ErrorModel::kMaxDenseId + 976;
  ErrorModel em;
  em.set_default_ber(1e-5);
  em.set_link_ber(0, big, 2e-4);
  EXPECT_DOUBLE_EQ(em.ber(0, big), 2e-4);
  EXPECT_DOUBLE_EQ(em.ber(big, 0), 1e-5);  // reverse direction: default

  ErrorModel dense;
  dense.set_default_ber(1e-5);
  dense.set_link_ber(0, 1, 2e-4);
  EXPECT_EQ(em.frame_error_prob(0, big, FrameType::kData, 1064),
            dense.frame_error_prob(0, 1, FrameType::kData, 1064));

  // Memo invalidation on the overflow path.
  em.set_link_ber(0, big, 8e-4);
  dense.set_link_ber(0, 1, 8e-4);
  EXPECT_EQ(em.frame_error_prob(0, big, FrameType::kData, 1064),
            dense.frame_error_prob(0, 1, FrameType::kData, 1064));
}

TEST(ErrorModel, AddrIntactGivenCorruptBehaves) {
  // Large frames: corruption almost surely lies outside the 12 address
  // bytes, so survival is near 1.
  EXPECT_GT(ErrorModel::addr_intact_given_corrupt(1e-4, 1136), 0.95);
  // As the frame shrinks toward just the addresses, survival falls.
  const double small = ErrorModel::addr_intact_given_corrupt(1e-2, 14);
  const double large = ErrorModel::addr_intact_given_corrupt(1e-2, 1136);
  EXPECT_LT(small, large);
  // Degenerate inputs.
  EXPECT_DOUBLE_EQ(ErrorModel::addr_intact_given_corrupt(0.0, 100), 1.0);
}

TEST(ErrorModel, CorruptionStudyMatchesTable1Shape) {
  // Table I, 802.11b row: 65536 frames, ~2% corrupted, 98.8% of corrupted
  // keep the destination, 94.9% of those keep the source too.
  Rng rng(42);
  const auto b = ErrorModel::corruption_study(rng, 2.5e-6, 1064, 65536);
  EXPECT_EQ(b.received, 65536);
  EXPECT_GT(b.corrupted, 800);
  EXPECT_LT(b.corrupted, 2500);
  const double dest_frac =
      static_cast<double>(b.corrupted_correct_dest) / static_cast<double>(b.corrupted);
  const double src_dest_frac = static_cast<double>(b.corrupted_correct_src_dest) /
                               static_cast<double>(b.corrupted_correct_dest);
  EXPECT_GT(dest_frac, 0.95);
  EXPECT_GT(src_dest_frac, 0.95);
}

TEST(ErrorModel, CorruptionStudyHighLossStillPreservesMostAddresses) {
  // Table I, 802.11a row: ~32% corrupted; 84% keep dest, 91% of those keep
  // src — address survival drops but stays dominant.
  Rng rng(43);
  const auto a = ErrorModel::corruption_study(rng, 4.5e-5, 1064, 23068);
  const double corrupted_frac =
      static_cast<double>(a.corrupted) / static_cast<double>(a.received);
  EXPECT_GT(corrupted_frac, 0.2);
  EXPECT_LT(corrupted_frac, 0.45);
  const double dest_frac =
      static_cast<double>(a.corrupted_correct_dest) / static_cast<double>(a.corrupted);
  EXPECT_GT(dest_frac, 0.75);
  EXPECT_LT(dest_frac, 1.0);
}

TEST(ErrorModel, CorruptionStudyInvariants) {
  Rng rng(44);
  const auto r = ErrorModel::corruption_study(rng, 1e-5, 256, 2000);
  EXPECT_LE(r.corrupted, r.received);
  EXPECT_LE(r.corrupted_correct_dest, r.corrupted);
  EXPECT_LE(r.corrupted_correct_src_dest, r.corrupted_correct_dest);
}

}  // namespace
}  // namespace g80211
