// Golden-output guard for the Fig 1 scenario.
//
// Runs a fixed-seed slice of the Fig 1 sweep (two UDP pairs, CTS NAV
// inflation on the second receiver) and hashes the exact bit patterns of
// the resulting metric vector. The committed hash pins the simulator's
// output bit-for-bit: any change to event ordering, RNG draw sequence, or
// floating-point arithmetic anywhere in the stack — including "pure"
// performance work like the PHY link-state caches or the scheduler's heap
// — flips the hash and fails loudly here instead of silently shifting the
// paper's figures.
//
// The config is fully explicit (warmup/measure set here, not via
// base_config), so the result is independent of the G80211_QUICK
// environment that ctest sets.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <vector>

#include "bench/common.h"
#include "src/greedy/nav_inflation.h"
#include "src/scenario/scenario.h"

namespace g80211 {
namespace {

std::uint64_t fnv1a_bits(const std::vector<double>& values) {
  std::uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (const double d : values) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(d));
    std::memcpy(&bits, &d, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xffu;
      h *= 1099511628211ULL;  // FNV prime
    }
  }
  return h;
}

std::vector<double> fig1_metric_vector(SchedulerBackend backend,
                                       bool record_capture) {
  std::vector<double> metrics;
  for (const Time inflation :
       {microseconds(0), microseconds(600), milliseconds(2)}) {
    bench::PairsSpec spec;
    spec.tcp = false;
    spec.udp_rate_mbps = 12.0;
    spec.cfg.standard = Standard::B80211;
    spec.cfg.rts_cts = true;
    spec.cfg.warmup = milliseconds(500);
    spec.cfg.measure = seconds(2);
    spec.cfg.scheduler_backend = backend;
    if (inflation == 0 && record_capture) {
      spec.capture_stem = "capture_test_artifacts/golden_fig1";
    }
    spec.customize = [inflation](Sim& sim, std::vector<Node*>&,
                                 std::vector<Node*>& rx) {
      if (inflation > 0) {
        sim.make_nav_inflator(*rx[1], NavFrameMask::cts_only(), inflation);
      }
    };
    for (const std::uint64_t seed : {std::uint64_t{100}, std::uint64_t{101}}) {
      const bench::PairsResult r = bench::run_pairs(spec, seed);
      metrics.insert(metrics.end(), r.goodput_mbps.begin(),
                     r.goodput_mbps.end());
      metrics.insert(metrics.end(), r.sender_avg_cw.begin(),
                     r.sender_avg_cw.end());
      metrics.insert(metrics.end(), r.rts_sent.begin(), r.rts_sent.end());
    }
  }

  return metrics;
}

// Recorded from the current engine. A mismatch means simulation output
// changed; if the change is intended (a modelling fix, not a perf
// refactor), re-record this constant and say so in the commit message.
constexpr std::uint64_t kGolden = 0x045ffda2b5fd0c2fULL;

void expect_golden(const std::vector<double>& metrics) {
  const std::uint64_t h = fnv1a_bits(metrics);
  if (h != kGolden) {
    std::printf("golden metric vector (%zu doubles):\n", metrics.size());
    for (const double d : metrics) std::printf("  %.17g\n", d);
    std::printf("hash: 0x%016llx\n",
                static_cast<unsigned long long>(h));
  }
  EXPECT_EQ(h, kGolden)
      << "fig1 metric vector changed bit-for-bit; see stdout for values";
}

TEST(GoldenFig1, MetricVectorBitIdentical) {
  // Record a capture during the first sweep point (both seeds). The hash
  // must not move: attaching a capture draws no randomness and must leave
  // the simulated run bit-identical. The files double as CI artifacts —
  // the workflow uploads capture_test_artifacts/ when this test (or the
  // capture suite) fails, so a red run ships its evidence.
  std::filesystem::create_directories("capture_test_artifacts");
  expect_golden(
      fig1_metric_vector(kDefaultSchedulerBackend, /*record_capture=*/true));
}

TEST(GoldenFig1, MetricVectorBitIdenticalOnBothSchedulerBackends) {
  // The ready-queue backend is pure mechanics: heap or wheel, the engine
  // must dispatch the identical event sequence and therefore reproduce the
  // identical metric bits.
  expect_golden(fig1_metric_vector(SchedulerBackend::kDaryHeap,
                                   /*record_capture=*/false));
  expect_golden(fig1_metric_vector(SchedulerBackend::kTimingWheel,
                                   /*record_capture=*/false));
}

}  // namespace
}  // namespace g80211
