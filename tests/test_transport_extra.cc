// Additional transport coverage: RTT estimation details, window caps
// under loss, TCP interactions with the wireless MAC, and remote-sender
// behaviours over the wired substrate.
#include <gtest/gtest.h>

#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"
#include "src/transport/tcp_sender.h"
#include "src/transport/tcp_sink.h"

namespace g80211 {
namespace {

// Reuse the lossy-pipe harness shape from test_transport.cc.
class Pipe {
 public:
  explicit Pipe(Time one_way, TcpSender::Config cfg = TcpSender::Config{})
      : sender(sched, cfg, 1, 0, 1), sink(sched, 1, 1, 0, cfg.mss_bytes) {
    sender.output = [this, one_way](PacketPtr p) {
      if (drop_all_data && !p->tcp.is_ack) return;
      sched.after(one_way, [this, p] { sink.receive(p); });
    };
    sink.output = [this, one_way](PacketPtr p) {
      sched.after(one_way, [this, p] { sender.receive(p); });
    };
  }
  Scheduler sched;
  TcpSender sender;
  TcpSink sink;
  bool drop_all_data = false;
};

TEST(TcpRtt, RtoTracksPathDelay) {
  // With a 50 ms one-way pipe, RTT = 100 ms; the smoothed RTO must settle
  // between the RTT and a few RTTs (given near-zero variance, near the
  // 200 ms floor after SRTT converges).
  Pipe p(milliseconds(50));
  p.sender.start(0);
  p.sched.run_until(seconds(3));
  EXPECT_GE(p.sender.rto(), milliseconds(100));
  EXPECT_LE(p.sender.rto(), milliseconds(400));
}

TEST(TcpRtt, MinRtoFloorsShortPaths) {
  TcpSender::Config cfg;
  cfg.min_rto = milliseconds(150);
  Pipe p(microseconds(200), cfg);
  p.sender.start(0);
  p.sched.run_until(seconds(1));
  EXPECT_GE(p.sender.rto(), milliseconds(150));
}

TEST(TcpWindow, FlightNeverExceedsMaxWindow) {
  TcpSender::Config cfg;
  cfg.max_window = 8;
  Pipe p(milliseconds(30), cfg);
  p.sender.start(0);
  // Check the in-flight bound continuously for a while.
  for (int t = 1; t <= 40; ++t) {
    p.sched.run_until(milliseconds(25 * t));
    const std::int64_t flight =
        p.sender.segments_sent() -
        p.sender.retransmissions() - p.sink.segments();
    EXPECT_LE(flight, 8 + 1) << "at t=" << t;
  }
}

TEST(TcpBlackout, SenderStopsTransmittingForever) {
  Pipe p(milliseconds(5));
  p.sender.start(0);
  p.sched.run_until(milliseconds(500));
  p.drop_all_data = true;
  p.sched.run_until(seconds(20));
  const auto sent_at_20s = p.sender.segments_sent();
  p.sched.run_until(seconds(40));
  // Only RTO probes trickle out, with exponentially growing gaps.
  EXPECT_LE(p.sender.segments_sent() - sent_at_20s, 4);
  EXPECT_GE(p.sender.timeouts(), 4);
}

TEST(TcpOverWireless, AckPathLossDoesNotDeadlock) {
  // The reverse (TCP-ACK) path is very lossy at the MAC; TCP must still
  // make progress thanks to MAC retransmissions and cumulative ACKs.
  SimConfig cfg;
  cfg.measure = seconds(4);
  cfg.seed = 91;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(1);
  Node& s = sim.add_node(l.senders[0]);
  Node& r = sim.add_node(l.receivers[0]);
  auto f = sim.add_tcp_flow(s, r);
  // TCP ACK data frames r -> s corrupt 60% of the time.
  sim.channel().error_model().set_link_ber(
      r.id(), s.id(),
      ErrorModel::ber_for_fer(0.6, ErrorModel::error_len(FrameType::kData, 40)));
  sim.run();
  EXPECT_GT(f.goodput_mbps(), 0.5);
}

TEST(TcpOverWireless, TwoFlowsConvergeToSimilarCwnd) {
  SimConfig cfg;
  cfg.measure = seconds(6);
  cfg.seed = 92;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& s1 = sim.add_node(l.senders[0]);
  Node& s2 = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  auto f1 = sim.add_tcp_flow(s1, r1);
  auto f2 = sim.add_tcp_flow(s2, r2);
  sim.run();
  const double c1 = f1.sender->avg_cwnd();
  const double c2 = f2.sender->avg_cwnd();
  EXPECT_NEAR(c1, c2, 0.5 * (c1 + c2)) << c1 << " vs " << c2;
  // Table II scale: two-sender honest cwnd sits in the tens.
  EXPECT_GT(c1 + c2, 30.0);
}

TEST(RemoteTcp, ThroughputFallsWithWiredLatency) {
  auto goodput_at = [](Time latency) {
    SimConfig cfg;
    cfg.measure = std::max<Time>(seconds(6), 40 * latency);
    cfg.seed = 93;
    Sim sim(cfg);
    const auto l = shared_ap(1);
    Node& ap = sim.add_node(l.ap);
    Node& client = sim.add_node(l.clients[0]);
    WiredHost& host = sim.add_wired_host(ap, latency);
    auto f = sim.add_remote_tcp_flow(host, ap, client);
    sim.run();
    return f.goodput_mbps();
  };
  const double fast = goodput_at(milliseconds(5));
  const double slow = goodput_at(milliseconds(300));
  EXPECT_GT(fast, 1.5);
  EXPECT_LT(slow, fast) << "600 ms RTT with a 128-segment window caps rate";
}

TEST(RemoteTcp, WindowLimitedThroughputMatchesBandwidthDelay) {
  // At 300 ms one-way the pipe is window-limited:
  // 128 segments * 1024 B / 0.6 s RTT ~ 1.7 Mbps ceiling.
  SimConfig cfg;
  cfg.measure = seconds(20);
  cfg.seed = 94;
  Sim sim(cfg);
  const auto l = shared_ap(1);
  Node& ap = sim.add_node(l.ap);
  Node& client = sim.add_node(l.clients[0]);
  WiredHost& host = sim.add_wired_host(ap, milliseconds(300));
  auto f = sim.add_remote_tcp_flow(host, ap, client);
  sim.run();
  const double ceiling = 128.0 * 1024.0 * 8.0 / 0.6 / 1e6;
  EXPECT_LT(f.goodput_mbps(), ceiling * 1.1);
  EXPECT_GT(f.goodput_mbps(), ceiling * 0.5);
}

}  // namespace
}  // namespace g80211
