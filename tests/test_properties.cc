// Property-based / parameterized sweeps (gtest TEST_P): invariants that
// must hold across whole parameter grids, not just single points.
#include <gtest/gtest.h>

#include <string>

#include "src/analysis/nav_model.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

// --- Conservation: no configuration may create goodput from nothing -------

struct ConservationParam {
  Standard standard;
  bool rts_cts;
  Time inflation;
  double ber;
  std::uint64_t seed;
};

class GoodputConservation : public ::testing::TestWithParam<ConservationParam> {};

TEST_P(GoodputConservation, TotalBelowPhyRateAndNonNegative) {
  const auto p = GetParam();
  SimConfig cfg;
  cfg.standard = p.standard;
  cfg.rts_cts = p.rts_cts;
  cfg.default_ber = p.ber;
  cfg.measure = seconds(2);
  cfg.seed = p.seed;
  Sim sim(cfg);
  const auto l = pairs_in_range(2);
  Node& s1 = sim.add_node(l.senders[0]);
  Node& s2 = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  auto f1 = sim.add_udp_flow(s1, r1);
  auto f2 = sim.add_udp_flow(s2, r2);
  if (p.inflation > 0) {
    sim.make_nav_inflator(r2, NavFrameMask::cts_only(), p.inflation);
  }
  sim.run();
  const double total = f1.goodput_mbps() + f2.goodput_mbps();
  EXPECT_GE(f1.goodput_mbps(), 0.0);
  EXPECT_GE(f2.goodput_mbps(), 0.0);
  EXPECT_LT(total, sim.params().data_rate_mbps)
      << "goodput cannot exceed the PHY rate";
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GoodputConservation,
    ::testing::Values(
        ConservationParam{Standard::B80211, true, 0, 0.0, 1},
        ConservationParam{Standard::B80211, true, microseconds(300), 0.0, 2},
        ConservationParam{Standard::B80211, true, milliseconds(31), 0.0, 3},
        ConservationParam{Standard::B80211, false, microseconds(600), 0.0, 4},
        ConservationParam{Standard::B80211, true, milliseconds(5), 2e-4, 5},
        ConservationParam{Standard::A80211, true, 0, 0.0, 6},
        ConservationParam{Standard::A80211, true, milliseconds(2), 0.0, 7},
        ConservationParam{Standard::A80211, false, milliseconds(10), 1e-4, 8}));

// --- Greedy percentage: more cheating never helps the victim ---------------

class GreedyPercentageSweep : public ::testing::TestWithParam<double> {};

TEST_P(GreedyPercentageSweep, VictimNeverGainsFromMoreCheating) {
  const double gp = GetParam();
  auto victim_goodput = [](double greedy_pct) {
    SimConfig cfg;
    cfg.measure = seconds(3);
    cfg.seed = 31;
    Sim sim(cfg);
    const auto l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_udp_flow(ns, nr);
    auto fg = sim.add_udp_flow(gs, gr);
    if (greedy_pct > 0) {
      sim.make_nav_inflator(gr, NavFrameMask::cts_only(), milliseconds(5),
                            greedy_pct);
    }
    sim.run();
    (void)fg;
    return fn.goodput_mbps();
  };
  // Compare against the honest baseline with generous noise margin.
  const double honest = victim_goodput(0.0);
  const double cheated = victim_goodput(gp);
  EXPECT_LT(cheated, honest * 1.05 + 0.05);
  if (gp >= 0.5) {
    EXPECT_LT(cheated, honest * 0.6) << "heavy cheating clearly hurts";
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, GreedyPercentageSweep,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 1.0));

// --- Eq (1)/(2) model tracks the simulator across the inflation sweep ------

class NavModelAgreement : public ::testing::TestWithParam<int> {};

TEST_P(NavModelAgreement, ModelRatioMatchesMeasuredRtsRatio) {
  const int v_slots = GetParam();
  SimConfig cfg;
  cfg.measure = seconds(6);
  cfg.seed = 41;
  Sim sim(cfg);
  const auto l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_udp_flow(ns, nr);
  auto fg = sim.add_udp_flow(gs, gr);
  if (v_slots > 0) {
    sim.make_nav_inflator(gr, NavFrameMask::cts_only(),
                          v_slots * sim.params().slot);
  }
  sim.run();

  const auto probs = nav_inflation_send_prob(
      normalize_histogram(gs.mac().backoff().cw_histogram()),
      normalize_histogram(ns.mac().backoff().cw_histogram()), v_slots);
  const double measured_ratio =
      static_cast<double>(gs.mac().stats().rts_sent) /
      static_cast<double>(gs.mac().stats().rts_sent + ns.mac().stats().rts_sent);
  EXPECT_NEAR(probs.gs_ratio(), measured_ratio, 0.12)
      << "v=" << v_slots << " model=" << probs.gs_ratio()
      << " measured=" << measured_ratio;
  (void)fn;
  (void)fg;
}

INSTANTIATE_TEST_SUITE_P(Sweep, NavModelAgreement,
                         ::testing::Values(0, 4, 8, 12, 16, 20, 24, 28));

// --- Determinism across the scenario space ---------------------------------

struct DeterminismParam {
  std::string name;
  int mode;  // 0 nav, 1 spoof, 2 fake
};

class Determinism : public ::testing::TestWithParam<DeterminismParam> {};

TEST_P(Determinism, SameSeedSameResult) {
  auto run = [&](std::uint64_t seed) {
    const int mode = GetParam().mode;
    SimConfig cfg;
    cfg.measure = seconds(2);
    cfg.seed = seed;
    if (mode == 2) {
      cfg.rts_cts = false;
      const auto h = hidden_pairs();
      cfg.comm_range_m = h.comm_range_m;
      cfg.cs_range_m = h.cs_range_m;
    }
    if (mode == 1) {
      cfg.default_ber = 2e-4;
      cfg.capture_threshold = 10.0;
    }
    Sim sim(cfg);
    const auto l = mode == 2 ? PairLayout{hidden_pairs().senders,
                                          hidden_pairs().receivers}
                             : pairs_in_range(2);
    Node& s1 = sim.add_node(l.senders[0]);
    Node& s2 = sim.add_node(l.senders[1]);
    Node& r1 = sim.add_node(l.receivers[0]);
    Node& r2 = sim.add_node(l.receivers[1]);
    double g1 = 0, g2 = 0;
    if (mode == 1) {
      auto f1 = sim.add_tcp_flow(s1, r1);
      auto f2 = sim.add_tcp_flow(s2, r2);
      sim.make_ack_spoofer(r2, 1.0, {r1.id()});
      sim.run();
      g1 = f1.goodput_mbps();
      g2 = f2.goodput_mbps();
    } else {
      auto f1 = sim.add_udp_flow(s1, r1);
      auto f2 = sim.add_udp_flow(s2, r2);
      if (mode == 0) {
        sim.make_nav_inflator(r2, NavFrameMask::cts_only(), milliseconds(1));
      } else {
        sim.make_fake_acker(r2, 1.0);
      }
      sim.run();
      g1 = f1.goodput_mbps();
      g2 = f2.goodput_mbps();
    }
    return std::pair{g1, g2};
  };
  const auto a = run(77);
  const auto b = run(77);
  EXPECT_DOUBLE_EQ(a.first, b.first);
  EXPECT_DOUBLE_EQ(a.second, b.second);
}

INSTANTIATE_TEST_SUITE_P(Modes, Determinism,
                         ::testing::Values(DeterminismParam{"nav", 0},
                                           DeterminismParam{"spoof", 1},
                                           DeterminismParam{"fake", 2}),
                         [](const auto& info) { return info.param.name; });

// --- Error model: FER is a proper probability over the whole grid ----------

struct FerParam {
  FrameType type;
  int packet_bytes;
};

class FerGrid : public ::testing::TestWithParam<FerParam> {};

TEST_P(FerGrid, MonotoneProbabilityInBer) {
  const auto p = GetParam();
  const int len = ErrorModel::error_len(p.type, p.packet_bytes);
  double prev = -1.0;
  for (double ber = 0.0; ber <= 2e-3; ber += 1e-4) {
    const double f = ErrorModel::fer(ber, len);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, FerGrid,
                         ::testing::Values(FerParam{FrameType::kAck, 0},
                                           FerParam{FrameType::kCts, 0},
                                           FerParam{FrameType::kRts, 0},
                                           FerParam{FrameType::kData, 40},
                                           FerParam{FrameType::kData, 1064},
                                           FerParam{FrameType::kData, 1540}));

// --- Spoofing never hurts the attacker across the loss sweep ---------------

class SpoofBerSweep : public ::testing::TestWithParam<double> {};

TEST_P(SpoofBerSweep, GreedyReceiverNeverWorseOffThanVictim) {
  const double ber = GetParam();
  SimConfig cfg;
  cfg.measure = seconds(3);
  cfg.seed = 51;
  cfg.default_ber = ber;
  cfg.capture_threshold = 10.0;
  Sim sim(cfg);
  const auto l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_tcp_flow(ns, nr);
  auto fg = sim.add_tcp_flow(gs, gr);
  sim.make_ack_spoofer(gr, 1.0, {nr.id()});
  sim.run();
  EXPECT_GE(fg.goodput_mbps() + 0.05, fn.goodput_mbps())
      << "spoofing at BER " << ber;
}

INSTANTIATE_TEST_SUITE_P(Sweep, SpoofBerSweep,
                         ::testing::Values(1e-5, 1e-4, 2e-4, 4e-4, 8e-4));

}  // namespace
}  // namespace g80211
