// Additional detection-module coverage: context expiry in the NAV
// validator, observe-only spoof detection, detector bundles over many
// stations, and locator behaviour with learned profiles.
#include <gtest/gtest.h>

#include "src/detect/grc.h"
#include "src/detect/locator.h"
#include "src/greedy/ack_spoofing.h"
#include "src/detect/nav_validator.h"
#include "src/detect/spoof_detector.h"
#include "src/mac/durations.h"
#include "src/net/node.h"
#include "src/phy/channel.h"

namespace g80211 {
namespace {

class DetectExtraTest : public ::testing::Test {
 protected:
  DetectExtraTest() : channel_(sched_, WifiParams::b11()), params_(WifiParams::b11()) {}
  Node& add_node(Position pos) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(
        std::make_unique<Node>(sched_, channel_, id, pos, Rng(500 + id)));
    return *nodes_.back();
  }
  Scheduler sched_;
  Channel channel_;
  WifiParams params_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(DetectExtraTest, StaleRtsContextFallsBackToMtuBound) {
  NavValidator v(sched_, params_);
  // Hear an RTS now…
  Frame rts;
  rts.type = FrameType::kRts;
  rts.ta = 5;
  rts.ra = 6;
  rts.duration = Durations::rts(params_, 1064);
  RxInfo info;
  // (observe() is private; exercise through attach on a scratch MAC.)
  Node& observer = add_node({0, 0});
  v.attach(observer.mac());
  observer.mac().sniffer(rts, info);

  Frame cts;
  cts.type = FrameType::kCts;
  cts.ra = 5;
  cts.duration = milliseconds(20);
  // Within the response window: exact expectation from the RTS.
  EXPECT_EQ(v.expected_duration(cts), Durations::cts_from_rts(params_, rts.duration));
  // Far in the future the context is stale: MTU bound applies.
  sched_.at(seconds(1), [&] {
    EXPECT_EQ(v.expected_duration(cts), Durations::max_cts(params_));
  });
  sched_.run();
}

TEST_F(DetectExtraTest, ObserveOnlySpoofDetectorAcceptsEverything) {
  Node& tx = add_node({0, 0});
  Node& rx = add_node({2, 0});
  Node& gr = add_node({9, 0});
  for (auto* n : {&tx, &rx, &gr}) n->mac().set_rts_cts(false);
  channel_.error_model().set_link_ber(0, 1, 1.0);  // victim never receives
  AckSpoofingPolicy policy(1.0, {rx.id()});
  gr.mac().set_greedy_policy(&policy);

  SpoofDetector detector(1.0);
  detector.recovery_enabled = false;
  detector.attach(tx.mac());
  // Teach the detector rx's profile via a direct sample (rx sends nothing
  // in this scenario).
  Propagation prop;
  for (int i = 0; i < 8; ++i) {
    detector.monitor().add_sample(rx.id(), watts_to_dbm(prop.rx_power_w(2.0)));
  }

  auto p = make_packet();
  p->flow_id = 1;
  p->size_bytes = 1064;
  p->dst_node = rx.id();
  tx.send_packet(p);
  sched_.run_until(seconds(1));

  EXPECT_GT(detector.true_positives(), 0) << "spoof classified";
  EXPECT_EQ(tx.mac().stats().acks_ignored, 0) << "but never rejected";
  EXPECT_EQ(tx.mac().stats().data_success, 1) << "the spoof still worked";
}

TEST_F(DetectExtraTest, GrcAggregatesAcrossProtectedStations) {
  Node& s1 = add_node({0, 0});
  Node& s2 = add_node({0, 9});
  Node& r1 = add_node({2, 0});
  Node& r2 = add_node({2, 9});
  Grc grc(sched_, params_);
  for (Node* n : {&s1, &s2, &r1}) grc.protect(n->mac());
  EXPECT_EQ(grc.nav_validators().size(), 3u);
  EXPECT_EQ(grc.spoof_detectors().size(), 3u);

  // One inflated CTS heard by all three protected stations counts thrice.
  Frame cts;
  cts.type = FrameType::kCts;
  cts.ra = 7;
  cts.duration = milliseconds(25);
  r2.phy().transmit(cts, params_.cts_tx_time());
  sched_.run();
  EXPECT_EQ(grc.nav_detections(), 3);
  EXPECT_EQ(grc.spoof_detections(), 0);
}

TEST_F(DetectExtraTest, LocatorLearnsOnlyFromAddressedFrames) {
  Node& observer = add_node({0, 0});
  Node& talker = add_node({5, 0});
  GreedyLocator locator(0.5);
  locator.attach(observer.mac());

  // A CTS (no TA) must not create a profile.
  Frame cts;
  cts.type = FrameType::kCts;
  cts.ra = 9;
  cts.duration = 0;
  talker.phy().transmit(cts, params_.cts_tx_time());
  sched_.run();
  EXPECT_FALSE(locator.locate(-60.0).has_value());

  // A DATA frame with a TA does.
  Frame data;
  data.type = FrameType::kData;
  data.ta = talker.id();
  data.ra = 9;
  data.packet = make_packet();
  data.packet->size_bytes = 200;
  sched_.at(milliseconds(1), [&] {
    talker.phy().transmit(data, params_.data_tx_time(200));
  });
  sched_.run();
  Propagation prop;
  const double at_talker = watts_to_dbm(prop.rx_power_w(5.0));
  const auto who = locator.locate(at_talker);
  ASSERT_TRUE(who.has_value());
  EXPECT_EQ(*who, talker.id());
}

TEST_F(DetectExtraTest, LocatorMarginSuppressesNearTies) {
  GreedyLocator locator(2.0);
  Node& observer = add_node({0, 0});
  locator.attach(observer.mac());
  Node& a = add_node({5, 0});
  Node& b = add_node({5.2, 0});
  for (Node* n : {&a, &b}) {
    sched_.after(milliseconds(n->id()), [this, n] {
      Frame data;
      data.type = FrameType::kData;
      data.ta = n->id();
      data.ra = 9;
      data.packet = make_packet();
      data.packet->size_bytes = 200;
      n->phy().transmit(data, params_.data_tx_time(200));
    });
  }
  sched_.run();
  // 5.0 m vs 5.2 m differ by ~0.3 dB << the 2 dB margin: ambiguous.
  Propagation prop;
  EXPECT_FALSE(locator.locate(watts_to_dbm(prop.rx_power_w(5.1))).has_value());
  locator.accuse(watts_to_dbm(prop.rx_power_w(5.1)));
  EXPECT_FALSE(locator.prime_suspect().has_value());
}

}  // namespace
}  // namespace g80211
