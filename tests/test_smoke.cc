// End-to-end smoke: two honest saturated UDP pairs share the medium
// roughly fairly, and the whole stack (scheduler, channel, PHY, DCF MAC,
// CBR/UDP) holds together.
#include <gtest/gtest.h>

#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

TEST(Smoke, TwoHonestUdpPairsShareFairly) {
  SimConfig cfg;
  cfg.measure = seconds(3);
  cfg.seed = 7;
  Sim sim(cfg);
  const PairLayout layout = pairs_in_range(2);
  Node& s1 = sim.add_node(layout.senders[0]);
  Node& s2 = sim.add_node(layout.senders[1]);
  Node& r1 = sim.add_node(layout.receivers[0]);
  Node& r2 = sim.add_node(layout.receivers[1]);
  auto f1 = sim.add_udp_flow(s1, r1);
  auto f2 = sim.add_udp_flow(s2, r2);
  sim.run();

  const double g1 = f1.goodput_mbps();
  const double g2 = f2.goodput_mbps();
  // 802.11b with RTS/CTS at 11 Mbps carries roughly 2.5-4.5 Mbps of
  // 1024-byte payloads in total.
  EXPECT_GT(g1 + g2, 2.0) << "total goodput implausibly low";
  EXPECT_LT(g1 + g2, 7.0) << "total goodput above channel capacity";
  EXPECT_NEAR(g1, g2, 0.35 * (g1 + g2)) << "honest flows should share fairly";
}

}  // namespace
}  // namespace g80211
