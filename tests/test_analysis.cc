// Analysis toolkit: summary statistics, CDFs, Table III helper, and the
// Eq. (1)/(2) NAV-inflation send-probability model.
#include <gtest/gtest.h>

#include <cmath>

#include "src/analysis/fer.h"
#include "src/analysis/nav_model.h"
#include "src/analysis/stats.h"

namespace g80211 {
namespace {

TEST(Stats, MeanMedianBasics) {
  EXPECT_DOUBLE_EQ(mean({1, 2, 3, 4}), 2.5);
  EXPECT_DOUBLE_EQ(median({5, 1, 9}), 5.0);
  EXPECT_DOUBLE_EQ(median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(median({}), 0.0);
  EXPECT_DOUBLE_EQ(median({7}), 7.0);
}

TEST(Stats, MedianIsRobustToOutliers) {
  EXPECT_DOUBLE_EQ(median({1, 2, 3, 4, 1000}), 3.0);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> v{0, 10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(v, 0), 0.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 12.5), 5.0);
}

TEST(Stats, StddevMatchesHandComputation) {
  EXPECT_NEAR(stddev({2, 4, 4, 4, 5, 5, 7, 9}), 2.138, 0.001);
  EXPECT_DOUBLE_EQ(stddev({5}), 0.0);
}

TEST(Stats, EmpiricalCdfIsMonotoneAndComplete) {
  const auto cdf = empirical_cdf({3, 1, 2, 2, 5});
  ASSERT_EQ(cdf.size(), 4u);  // distinct values: 1 2 3 5
  EXPECT_DOUBLE_EQ(cdf.front().x, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GT(cdf[i].x, cdf[i - 1].x);
    EXPECT_GT(cdf[i].fraction, cdf[i - 1].fraction);
  }
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 2.0), 0.6);   // 3 of 5 samples <= 2
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf_at(cdf, 99.0), 1.0);
}

TEST(FerTable, RowsMatchErrorModel) {
  const auto rows = table3();
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_DOUBLE_EQ(rows[0].ber, 1e-5);
  EXPECT_NEAR(rows[0].tcp_data, 1.130e-2, 1e-4);
  EXPECT_NEAR(rows[4].tcp_data, 5.971e-1, 1e-3);
  for (const auto& r : rows) {
    EXPECT_LT(r.ack_cts, r.rts);
    EXPECT_LT(r.rts, r.tcp_ack);
    EXPECT_LT(r.tcp_ack, r.tcp_data);
  }
}

TEST(NavModel, NormalizeHistogram) {
  std::map<int, std::int64_t> h{{31, 3}, {63, 1}};
  const auto d = normalize_histogram(h);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].first, 31);
  EXPECT_DOUBLE_EQ(d[0].second, 0.75);
  EXPECT_DOUBLE_EQ(d[1].second, 0.25);
  EXPECT_TRUE(normalize_histogram({}).empty());
}

TEST(NavModel, NoInflationIsSymmetric) {
  const CwDistribution cw{{31, 1.0}};
  const auto p = nav_inflation_send_prob(cw, cw, 0);
  EXPECT_NEAR(p.gs, p.ns, 1e-12);
  EXPECT_NEAR(p.gs_ratio(), 0.5, 1e-12);
}

TEST(NavModel, SendProbabilityMonotoneInInflation) {
  const CwDistribution cw{{31, 1.0}};
  double prev_ratio = 0.0;
  for (int v : {0, 2, 5, 10, 20, 30}) {
    const auto p = nav_inflation_send_prob(cw, cw, v);
    EXPECT_GE(p.gs_ratio(), prev_ratio);
    prev_ratio = p.gs_ratio();
  }
}

TEST(NavModel, LargeInflationGivesGsEverything) {
  const CwDistribution cw{{31, 1.0}};
  const auto p = nav_inflation_send_prob(cw, cw, 33);
  EXPECT_NEAR(p.gs, 1.0, 1e-12) << "GS always wins when v exceeds CW";
  EXPECT_NEAR(p.ns, 0.0, 1e-12);
  EXPECT_NEAR(p.gs_ratio(), 1.0, 1e-12);
}

TEST(NavModel, HandComputedSmallCase) {
  // CW = 1 for both: B in {0, 1} uniformly. v = 0:
  // Pr[B_GS <= B_NS + 1] = 1 (every combination satisfies it).
  const CwDistribution cw{{1, 1.0}};
  const auto p = nav_inflation_send_prob(cw, cw, 0);
  EXPECT_NEAR(p.gs, 1.0, 1e-12);
  EXPECT_NEAR(p.ns, 1.0, 1e-12);
}

TEST(NavModel, VictimLargerCwLowersItsShare) {
  const CwDistribution gs{{31, 1.0}};
  const CwDistribution ns_small{{31, 1.0}};
  const CwDistribution ns_large{{255, 1.0}};
  const auto fair = nav_inflation_send_prob(gs, ns_small, 0);
  const auto skewed = nav_inflation_send_prob(gs, ns_large, 0);
  EXPECT_GT(skewed.gs_ratio(), fair.gs_ratio());
}

TEST(NavModel, MixedDistributionsAreConvexCombinations) {
  const CwDistribution gs{{31, 1.0}};
  const CwDistribution pure_a{{31, 1.0}};
  const CwDistribution pure_b{{63, 1.0}};
  const CwDistribution mixed{{31, 0.5}, {63, 0.5}};
  const auto pa = nav_inflation_send_prob(gs, pure_a, 5);
  const auto pb = nav_inflation_send_prob(gs, pure_b, 5);
  const auto pm = nav_inflation_send_prob(gs, mixed, 5);
  EXPECT_NEAR(pm.gs, 0.5 * (pa.gs + pb.gs), 1e-12);
  EXPECT_NEAR(pm.ns, 0.5 * (pa.ns + pb.ns), 1e-12);
}

TEST(NavModel, StarvationThresholdMatchesStandards) {
  // CWmin slots: 31*20us on 802.11b, 15*9us on 802.11a — the closed-form
  // version of Fig 1's "+0.6 ms completely grabs the medium".
  EXPECT_EQ(nav_starvation_threshold(WifiParams::b11()), microseconds(620));
  EXPECT_EQ(nav_starvation_threshold(WifiParams::a6()), microseconds(135));
  // Consistency with the probabilistic model: at the threshold GS wins
  // every round.
  const CwDistribution cw{{31, 1.0}};
  const auto p = nav_inflation_send_prob(cw, cw, 31);
  EXPECT_NEAR(p.gs, 1.0, 1e-12);
}

TEST(NavModel, EmptyDistributionsReturnZero) {
  const auto p = nav_inflation_send_prob({}, {{31, 1.0}}, 5);
  EXPECT_DOUBLE_EQ(p.gs, 0.0);
  EXPECT_DOUBLE_EQ(p.gs_ratio(), 0.0);
}

}  // namespace
}  // namespace g80211
