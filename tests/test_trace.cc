// Frame tracer and the fairness statistics added for the evaluation
// tooling.
#include <gtest/gtest.h>

#include <sstream>

#include "src/analysis/stats.h"
#include "src/mac/frame_tracer.h"
#include "src/net/node.h"
#include "src/phy/channel.h"

namespace g80211 {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  TraceTest() : channel_(sched_, WifiParams::b11()) {}
  Node& add_node(Position pos) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(
        std::make_unique<Node>(sched_, channel_, id, pos, Rng(800 + id)));
    return *nodes_.back();
  }
  PacketPtr packet() {
    auto p = make_packet();
    p->flow_id = 1;
    p->size_bytes = 1064;
    p->src_node = 0;
    p->dst_node = 1;
    return p;
  }
  Scheduler sched_;
  Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(TraceTest, CapturesFullExchange) {
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  Node& observer = add_node({5, 5});
  FrameTracer tracer;
  tracer.attach(observer.mac());
  tx.send_packet(packet());
  sched_.run_until(seconds(1));

  ASSERT_EQ(tracer.size(), 4u);  // RTS CTS DATA ACK
  EXPECT_EQ(tracer.records()[0].type, FrameType::kRts);
  EXPECT_EQ(tracer.records()[0].ta, 0);
  EXPECT_EQ(tracer.records()[3].type, FrameType::kAck);
  EXPECT_FALSE(tracer.records()[0].corrupted);
  EXPECT_LT(tracer.records()[0].end, tracer.records()[1].start);
}

TEST_F(TraceTest, RingBufferCapsMemory) {
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  Node& observer = add_node({5, 5});
  FrameTracer tracer(6);
  tracer.attach(observer.mac());
  for (int i = 0; i < 5; ++i) tx.send_packet(packet());
  sched_.run_until(seconds(1));
  EXPECT_EQ(tracer.size(), 6u) << "capped at capacity";
  // The oldest retained record is no longer the first RTS.
  EXPECT_GT(tracer.records().front().start, 0);
}

TEST_F(TraceTest, LiveSinkAndCount) {
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  Node& observer = add_node({5, 5});
  FrameTracer tracer;
  tracer.attach(observer.mac());
  int live = 0;
  tracer.on_record = [&](const TraceRecord&) { ++live; };
  tx.send_packet(packet());
  tx.send_packet(packet());
  sched_.run_until(seconds(1));
  EXPECT_EQ(live, 8);
  EXPECT_EQ(tracer.count([](const TraceRecord& r) {
    return r.type == FrameType::kData;
  }), 2);
}

TEST_F(TraceTest, DumpAndToStringContainEssentials) {
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  Node& observer = add_node({5, 5});
  FrameTracer tracer;
  tracer.attach(observer.mac());
  tx.send_packet(packet());
  sched_.run_until(seconds(1));

  std::ostringstream os;
  tracer.dump(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("RTS"), std::string::npos);
  EXPECT_NE(out.find("ACK"), std::string::npos);
  EXPECT_NE(out.find("dur="), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST_F(TraceTest, MarksCorruptedFrames) {
  Node& tx = add_node({0, 0});
  add_node({5, 0});
  Node& observer = add_node({5, 5});
  tx.mac().set_rts_cts(false);
  channel_.error_model().set_link_ber(0, 2, 1.0);  // corrupt at the observer
  FrameTracer tracer;
  tracer.attach(observer.mac());
  tx.send_packet(packet());
  sched_.run_until(seconds(1));
  EXPECT_GT(tracer.count([](const TraceRecord& r) { return r.corrupted; }), 0);
  std::ostringstream os;
  tracer.dump(os);
  EXPECT_NE(os.str().find("CORRUPT"), std::string::npos);
}

TEST(JainFairness, KnownValues) {
  EXPECT_DOUBLE_EQ(jain_fairness({1, 1, 1, 1}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({1, 0, 0, 0}), 0.25);
  EXPECT_NEAR(jain_fairness({4, 1}), 25.0 / 34.0, 1e-12);
  EXPECT_DOUBLE_EQ(jain_fairness({}), 0.0);
  EXPECT_DOUBLE_EQ(jain_fairness({0, 0}), 1.0);
  EXPECT_DOUBLE_EQ(jain_fairness({5}), 1.0);
}

TEST(JainFairness, ScaleInvariant) {
  EXPECT_NEAR(jain_fairness({1, 2, 3}), jain_fairness({10, 20, 30}), 1e-12);
}

}  // namespace
}  // namespace g80211
