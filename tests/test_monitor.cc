// Streaming monitor: the headline guarantee that a monitor run over a
// complete capture produces exactly the verdicts replay_capture() computes
// on the parsed file (one detector implementation, two front-ends), plus
// the streaming semantics batch replay does not have — exactly-once
// delivery from a growing journal, window/alert emission, shard-count
// invariance, and the skip statistics surfaced through the tail reader.
//
// All tests run against the committed golden capture fixture
// (tests/data/golden_capture.{jsonl,pcap}): seed-7 NAV-inflation scenario,
// station 3 inflating CTS NAVs by 31 ms, vantage station 0.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "src/capture/capture_reader.h"
#include "src/capture/capture_stream.h"
#include "src/capture/replay.h"
#include "src/monitor/driver.h"
#include "src/monitor/engine.h"
#include "src/monitor/frame_batch.h"

namespace g80211 {
namespace {

#ifndef G80211_TEST_DATA_DIR
#define G80211_TEST_DATA_DIR "tests/data"
#endif

std::string golden_jsonl() {
  return std::string(G80211_TEST_DATA_DIR) + "/golden_capture.jsonl";
}
std::string golden_pcap() {
  return std::string(G80211_TEST_DATA_DIR) + "/golden_capture.pcap";
}

// Scratch files go under the system temp dir (unique per process), never
// the working directory — running the binary from a source checkout must
// not litter the tree.
std::string artifact(const char* name) {
  static const std::filesystem::path dir = [] {
    std::filesystem::path d =
        std::filesystem::temp_directory_path() /
        ("g80211_monitor_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(d);
    return d;
  }();
  return (dir / name).string();
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void append(const std::string& path, const std::uint8_t* data,
            std::size_t len) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(reinterpret_cast<const char*>(data), static_cast<std::streamsize>(len));
}

}  // namespace

// --- monitor vs. replay -------------------------------------------------------

TEST(FrameBatch, RowRoundTripsEveryField) {
  const Capture cap = read_capture(golden_jsonl());
  ASSERT_GT(cap.frames.size(), 100u);
  FrameBatch batch;
  for (const CapturedFrame& f : cap.frames) batch.push(f);
  ASSERT_EQ(batch.size(), cap.frames.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.row(i), cap.frames[i]) << "row " << i;
    EXPECT_EQ(batch.event_time(i), cap.frames[i].event_time());
  }
}

TEST(StreamMonitor, MatchesReplayOnTheGoldenFixture) {
  const Capture cap = read_capture(golden_jsonl());
  ASSERT_TRUE(cap.has_params);

  FrameBatch batch;
  for (const CapturedFrame& f : cap.frames) batch.push(f);

  MonitorConfig cfg;
  cfg.window = milliseconds(10);
  StreamMonitor monitor(cap.params, cap.owner, cfg);
  monitor.process(batch);
  monitor.finalize(cap.end_time);

  // The whole point: the streaming front-end ends with exactly the verdicts
  // the one-shot replay computes — every counter, every per-subject vector.
  const ReplayResult offline = replay_capture(cap);
  EXPECT_EQ(monitor.verdicts(cap.end_time), offline);
  EXPECT_EQ(monitor.frames(), static_cast<std::int64_t>(cap.frames.size()));

  // And the fixture's attack is visible in the stream output: station 3's
  // NAV inflation raises exactly one alert (edge-triggered), while every
  // window reports the cumulative count (level-triggered).
  const std::vector<Alert> alerts = monitor.drain_alerts();
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, Alert::Kind::kNavInflation);
  EXPECT_EQ(alerts[0].subject, 3);
  EXPECT_GT(alerts[0].evidence, 0);
  EXPECT_GT(offline.nav_detections, 0);
}

TEST(StreamMonitor, WindowSemantics) {
  const Capture cap = read_capture(golden_jsonl());
  MonitorConfig cfg;
  cfg.window = milliseconds(10);
  StreamMonitor monitor(cap.params, cap.owner, cfg);
  for (const CapturedFrame& f : cap.frames) monitor.step(f);
  monitor.finalize(cap.end_time);

  const std::vector<WindowRecord> windows = monitor.drain_windows();
  ASSERT_GT(windows.size(), 2u);

  std::int64_t total = 0;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    const WindowRecord& w = windows[i];
    // Windows are aligned to multiples of the window length; only the
    // trailing partial window (closed at the horizon) may end off-grid.
    EXPECT_EQ(w.start % cfg.window, 0);
    if (i + 1 < windows.size()) {
      EXPECT_EQ(w.end, w.start + cfg.window);
      // Counters are cumulative: never decreasing across windows.
      EXPECT_LE(w.nav_detections, windows[i + 1].nav_detections);
    } else {
      EXPECT_EQ(w.end, cap.end_time);
    }
    if (i > 0) {
      EXPECT_GE(w.start, windows[i - 1].end);
    }
    EXPECT_GT(w.frames, 0) << "empty windows must close silently";
    total += w.frames;
  }
  EXPECT_EQ(total, static_cast<std::int64_t>(cap.frames.size()));
  // The final window carries the final cumulative verdict.
  const ReplayResult offline = replay_capture(cap);
  EXPECT_EQ(windows.back().nav_detections, offline.nav_detections);
}

// --- tailing a growing journal ------------------------------------------------

TEST(CaptureStream, DeliversAChunkedJournalExactlyOnce) {
  // Re-write the golden journal a few dozen bytes at a time — every append
  // ends mid-line or mid-record — polling after each append. Every record
  // must come out exactly once, in order, identical to the one-shot reader.
  const std::vector<std::uint8_t> bytes = slurp(golden_jsonl());
  const Capture expect = read_capture(golden_jsonl());

  const std::string path = artifact("chunked.jsonl");
  std::filesystem::remove(path);
  { std::ofstream touch(path, std::ios::binary | std::ios::trunc); }

  CaptureStreamReader reader(path);
  std::vector<CapturedFrame> frames;
  EXPECT_EQ(reader.poll(frames), 0u);  // empty file: wait, don't fail
  EXPECT_FALSE(reader.header_ready());

  const std::size_t chunk = 37;
  for (std::size_t off = 0; off < bytes.size(); off += chunk) {
    const std::size_t n = std::min(chunk, bytes.size() - off);
    append(path, bytes.data() + off, n);
    reader.poll(frames);
  }

  EXPECT_TRUE(reader.header_ready());
  EXPECT_TRUE(reader.has_params());
  EXPECT_TRUE(reader.finished());
  EXPECT_EQ(reader.owner(), expect.owner);
  EXPECT_EQ(reader.end_time(), expect.end_time);
  EXPECT_EQ(reader.pending_bytes(), 0u);
  EXPECT_EQ(frames, expect.frames);
}

TEST(CaptureStream, SurfacesPcapSkipStatistics) {
  // Same doctored fixture as the one-shot reader test: first record's Frame
  // Control byte turned into a beacon. The tail reader reports the same
  // count and the same absolute offset of the skipped record.
  std::vector<std::uint8_t> bytes = slurp(golden_pcap());
  ASSERT_GT(bytes.size(), 52u);
  bytes[24 + 16 + 11] = 0x80;

  const std::string path = artifact("skip.pcap");
  std::filesystem::remove(path);
  { std::ofstream touch(path, std::ios::binary | std::ios::trunc); }
  CaptureStreamReader reader(path);
  std::vector<CapturedFrame> frames;
  append(path, bytes.data(), bytes.size());
  reader.poll(frames);

  EXPECT_TRUE(reader.header_ready());
  EXPECT_FALSE(reader.has_params());
  EXPECT_FALSE(reader.finished());  // pcap has no footer
  EXPECT_EQ(reader.skipped_unknown(), 1);
  EXPECT_EQ(reader.first_skipped_offset(), 24);
  EXPECT_EQ(frames.size(), read_capture(golden_pcap()).frames.size() - 1);
}

// --- the multi-stream driver --------------------------------------------------

TEST(MonitorDriver, MatchesReplayAndIsShardCountInvariant) {
  const Capture cap = read_capture(golden_jsonl());
  const ReplayResult offline = replay_capture(cap);
  const std::vector<std::string> paths = {golden_jsonl(), golden_jsonl(),
                                          golden_jsonl()};

  auto run = [&](int shards) {
    MonitorOptions opts;
    opts.config.window = milliseconds(25);
    opts.shards = shards;
    MonitorDriver driver(opts, paths);
    driver.drain();
    return std::tuple{driver.verdicts(0), driver.verdicts(1),
                      driver.verdicts(2), driver.drain_windows(),
                      driver.drain_alerts()};
  };

  const auto one = run(1);
  const auto three = run(3);

  // Stream pinning makes the result bit-identical for any shard count...
  EXPECT_EQ(std::get<0>(one), std::get<0>(three));
  EXPECT_EQ(std::get<3>(one).size(), std::get<3>(three).size());
  for (std::size_t i = 0; i < std::get<3>(one).size(); ++i) {
    EXPECT_EQ(std::get<3>(one)[i].stream, std::get<3>(three)[i].stream);
    EXPECT_EQ(std::get<3>(one)[i].window, std::get<3>(three)[i].window);
  }
  ASSERT_EQ(std::get<4>(one).size(), std::get<4>(three).size());
  for (std::size_t i = 0; i < std::get<4>(one).size(); ++i) {
    EXPECT_EQ(std::get<4>(one)[i].stream, std::get<4>(three)[i].stream);
    EXPECT_EQ(std::get<4>(one)[i].alert, std::get<4>(three)[i].alert);
  }
  // ...and every stream independently reproduces the one-shot replay.
  EXPECT_EQ(std::get<0>(one), offline);
  EXPECT_EQ(std::get<1>(one), offline);
  EXPECT_EQ(std::get<2>(one), offline);
  // One nav-inflation alert per stream, merged in (time, stream) order.
  ASSERT_EQ(std::get<4>(one).size(), 3u);
  for (int s = 0; s < 3; ++s) {
    EXPECT_EQ(std::get<4>(one)[static_cast<std::size_t>(s)].stream, s);
    EXPECT_EQ(std::get<4>(one)[static_cast<std::size_t>(s)].alert.subject, 3);
  }
}

TEST(MonitorDriver, FollowsAGrowingJournalToTheFooter) {
  // Follow mode without the sleeps: write the journal in three slices with
  // a driver pass after each. The driver must report unfinished (and
  // consume what is there) until the footer lands, then finalize to the
  // same verdicts as batch replay.
  const std::vector<std::uint8_t> bytes = slurp(golden_jsonl());
  const std::string path = artifact("follow.jsonl");
  std::filesystem::remove(path);
  { std::ofstream touch(path, std::ios::binary | std::ios::trunc); }

  MonitorOptions opts;
  opts.config.window = milliseconds(10);
  MonitorDriver driver(opts, {path});

  const std::size_t third = bytes.size() / 3;
  append(path, bytes.data(), third);
  driver.pass();
  EXPECT_FALSE(driver.finished());
  EXPECT_GT(driver.status(0).frames, 0);

  append(path, bytes.data() + third, third);
  driver.pass();
  EXPECT_FALSE(driver.finished());

  append(path, bytes.data() + 2 * third, bytes.size() - 2 * third);
  while (driver.pass() > 0) {
  }
  EXPECT_TRUE(driver.finished());
  driver.finalize();

  const Capture cap = read_capture(golden_jsonl());
  EXPECT_EQ(driver.status(0).frames, static_cast<std::int64_t>(cap.frames.size()));
  EXPECT_EQ(driver.status(0).end_time, cap.end_time);
  EXPECT_EQ(driver.verdicts(0), replay_capture(cap));
}

TEST(MonitorDriver, RejectsPcapAndTruncatedInput) {
  // pcap drops the ticks and ground truth the detectors need: the driver
  // refuses it as soon as the magic bytes are read, naming the format it
  // does accept.
  {
    MonitorDriver driver(MonitorOptions{}, {golden_pcap()});
    try {
      driver.drain();
      FAIL() << "pcap input must be rejected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("JSONL"), std::string::npos)
          << e.what();
    }
  }
  // A journal that ends without its footer is a truncated capture.
  {
    const std::vector<std::uint8_t> bytes = slurp(golden_jsonl());
    const std::string path = artifact("truncated.jsonl");
    std::filesystem::remove(path);
    { std::ofstream touch(path, std::ios::binary | std::ios::trunc); }
    append(path, bytes.data(), bytes.size() / 2);
    MonitorDriver driver(MonitorOptions{}, {path});
    EXPECT_THROW(driver.drain(), std::runtime_error);
  }
}

TEST(MonitorDriver, RejectsAGrowingPcapOnTheFirstPass) {
  // Follow-mode regression: a pcap being tailed used to park the driver in
  // the poll loop forever — the reader never reached header_ready (so the
  // old params check never fired) and pcap never finishes. The magic bytes
  // alone, with the file header still unwritten, must now fail the very
  // first pass with the "requires JSONL journals" error instead of
  // consuming nothing silently.
  const std::vector<std::uint8_t> bytes = slurp(golden_pcap());
  ASSERT_GT(bytes.size(), 12u);
  const std::string path = artifact("partial.pcap");
  std::filesystem::remove(path);
  { std::ofstream touch(path, std::ios::binary | std::ios::trunc); }
  append(path, bytes.data(), 12);  // magic + a few header bytes, no records

  MonitorDriver driver(MonitorOptions{}, {path});
  try {
    driver.pass();
    FAIL() << "partial pcap must be rejected on the first pass";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("requires JSONL journals"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace g80211
