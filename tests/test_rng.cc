// Deterministic RNG: reproducibility, distribution sanity, fork
// independence.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/sim/rng.h"

namespace g80211 {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(7);
  Rng child = a.fork();
  Rng a2(7);
  Rng child2 = a2.fork();
  // Deterministic: forking the same parent state gives the same child.
  for (int i = 0; i < 100; ++i) EXPECT_EQ(child.next_u64(), child2.next_u64());
  // And parent/child streams do not track each other.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformIntCoversFullRangeInclusive) {
  Rng r(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t v = r.uniform_int(7);
    ASSERT_GE(v, 0);
    ASSERT_LE(v, 7);
    saw_lo |= (v == 0);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntZeroIsAlwaysZero) {
  Rng r(5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(0), 0);
}

TEST(Rng, UniformIntMeanMatches) {
  Rng r(11);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(r.uniform_int(31));
  EXPECT_NEAR(sum / n, 15.5, 0.1);
}

TEST(Rng, UniformBetweenRespectsBounds) {
  Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = r.uniform_between(-5, 5);
    ASSERT_GE(v, -5);
    ASSERT_LE(v, 5);
  }
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatchesProbability) {
  Rng r(6);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng r(8);
  const int n = 100000;
  double sum = 0, sq = 0;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal(2.0, 3.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng r(10);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

}  // namespace
}  // namespace g80211
