// Capture subsystem: pcap/JSONL round trips, strict-parser rejection of
// corrupt files, the committed golden fixture, and the headline guarantee
// of src/capture/replay.h — offline replay of a recorded run reproduces
// the live GRC detector verdicts exactly (same flagged stations, same
// counts) for NAV inflation, ACK spoofing, and fake-ACK misbehavior.
//
// All capture files are written under capture_test_artifacts/ in the test
// working directory; CI uploads that directory when the suite fails, so a
// red run ships the capture that broke it. Set G80211_REGEN_GOLDEN=1 to
// rewrite the committed fixtures in G80211_TEST_DATA_DIR instead of
// comparing against them (do this only for an intended format change, and
// say so in the commit message).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/capture/capture_reader.h"
#include "src/capture/capture_writer.h"
#include "src/capture/replay.h"
#include "src/detect/backoff_monitor.h"
#include "src/detect/cross_layer_detector.h"
#include "src/detect/fake_ack_detector.h"
#include "src/detect/nav_validator.h"
#include "src/detect/spoof_detector.h"
#include "src/greedy/nav_inflation.h"
#include "src/phy/error_model.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

std::string artifact_stem(const char* name) {
  std::filesystem::create_directories("capture_test_artifacts");
  return std::string("capture_test_artifacts/") + name;
}

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

std::string slurp_text(const std::string& path) {
  const auto bytes = slurp(path);
  return std::string(bytes.begin(), bytes.end());
}

void spit(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

// Re-serialise a parsed capture with the writers' pure serialisation
// primitives (what CaptureWriter streams, byte for byte).
std::vector<std::uint8_t> reserialize_pcap(const Capture& cap) {
  std::vector<std::uint8_t> out = PcapWriter::serialize_header();
  for (const CapturedFrame& f : cap.frames) {
    const auto rec = PcapWriter::serialize_record(f);
    out.insert(out.end(), rec.begin(), rec.end());
  }
  return out;
}

std::string reserialize_jsonl(const Capture& cap) {
  std::string out = JsonlWriter::header_line(cap.owner, cap.params) + "\n";
  for (const CapturedFrame& f : cap.frames) {
    out += JsonlWriter::frame_line(f) + "\n";
  }
  out += JsonlWriter::footer_line(cap.end_time) + "\n";
  return out;
}

// --- fixed scenarios ----------------------------------------------------------
//
// Each returns with the capture files written and closed; configs are fully
// explicit so G80211_QUICK (set by ctest) has no effect.

struct NavLive {
  std::int64_t validated = 0;
  std::int64_t detections = 0;
  std::map<int, std::int64_t> by_node;
};

// Two UDP pairs, the second receiver inflating its CTS NAV by 31 ms
// (grc_defense scenario 1). Vantage and NAV validator: the victim sender.
NavLive run_nav_scenario(const std::string& stem, std::uint64_t seed,
                         Time measure, bool with_validator) {
  SimConfig cfg;
  cfg.warmup = milliseconds(10);
  cfg.measure = measure;
  cfg.seed = seed;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  sim.add_udp_flow(ns, nr);
  sim.add_udp_flow(gs, gr);
  sim.make_nav_inflator(gr, NavFrameMask::cts_only(), milliseconds(31));

  CaptureWriter capture(sim.scheduler(), stem);
  capture.attach(ns.mac());
  NavValidator validator(sim.scheduler(), sim.params());
  if (with_validator) validator.attach(ns.mac());

  sim.run();
  capture.close();
  return NavLive{validator.frames_validated(), validator.detections(),
                 validator.detections_by_node()};
}

}  // namespace

// --- round trips --------------------------------------------------------------

TEST(CaptureRoundTrip, PcapByteExact) {
  const std::string stem = artifact_stem("roundtrip");
  run_nav_scenario(stem, 21, milliseconds(200), false);

  const std::vector<std::uint8_t> original = slurp(stem + ".pcap");
  const Capture cap = read_pcap(stem + ".pcap");
  ASSERT_GT(cap.frames.size(), 100u);
  EXPECT_EQ(cap.skipped_unknown, 0);
  EXPECT_FALSE(cap.has_params);

  // Parse -> serialise reproduces the file byte for byte...
  EXPECT_EQ(reserialize_pcap(cap), original);
  // ...and the reparse of the reserialisation is the same frame list
  // (serialisation is a fixed point after one quantisation).
  EXPECT_EQ(parse_pcap(reserialize_pcap(cap)).frames, cap.frames);
}

TEST(CaptureRoundTrip, JsonlByteExact) {
  const std::string stem = artifact_stem("roundtrip");
  run_nav_scenario(stem, 21, milliseconds(200), false);

  const std::string original = slurp_text(stem + ".jsonl");
  const Capture cap = read_jsonl(stem + ".jsonl");
  ASSERT_GT(cap.frames.size(), 100u);
  ASSERT_TRUE(cap.has_params);
  EXPECT_EQ(cap.owner, 0);  // first node added = the victim sender
  EXPECT_EQ(cap.params.slot, WifiParams::b11().slot);

  EXPECT_EQ(reserialize_jsonl(cap), original);
  const Capture again = parse_jsonl(reserialize_jsonl(cap));
  EXPECT_EQ(again.frames, cap.frames);
  EXPECT_EQ(again.owner, cap.owner);
  EXPECT_EQ(again.end_time, cap.end_time);

  // The journal carries both sides of the vantage: transmissions and
  // receptions, with exact edges.
  bool saw_tx = false, saw_rx = false;
  for (const CapturedFrame& f : cap.frames) {
    (f.tx ? saw_tx : saw_rx) = true;
    EXPECT_GE(f.end, f.start);
  }
  EXPECT_TRUE(saw_tx);
  EXPECT_TRUE(saw_rx);
}

// --- strict parsing -----------------------------------------------------------

TEST(CaptureReader, RejectsCorruptFiles) {
  const std::string stem = artifact_stem("corrupt");
  run_nav_scenario(stem, 22, milliseconds(50), false);

  const std::vector<std::uint8_t> pcap = slurp(stem + ".pcap");
  const std::string jsonl = slurp_text(stem + ".jsonl");
  ASSERT_GT(pcap.size(), 80u);

  // pcap: wrong magic.
  {
    std::vector<std::uint8_t> bad = pcap;
    bad[0] ^= 0xff;
    EXPECT_THROW(parse_pcap(bad), std::runtime_error);
  }
  // pcap: truncated mid-record.
  {
    std::vector<std::uint8_t> bad(pcap.begin(), pcap.begin() + 50);
    EXPECT_THROW(parse_pcap(bad), std::runtime_error);
  }
  // pcap: an address outside the simulator's OUI scheme. The first
  // record's addr1 starts after the record header (16), radiotap (11),
  // FC (2) and Duration (2).
  {
    std::vector<std::uint8_t> bad = pcap;
    bad[24 + 16 + 11 + 4] = 0xaa;
    EXPECT_THROW(parse_pcap(bad), std::runtime_error);
  }
  // jsonl: missing footer = truncated capture.
  {
    const std::size_t cut = jsonl.rfind("{\"" + std::string(kJsonlFooterKey));
    ASSERT_NE(cut, std::string::npos);
    EXPECT_THROW(parse_jsonl(jsonl.substr(0, cut)), std::runtime_error);
  }
  // jsonl: a line that is not JSON.
  {
    std::string bad = jsonl;
    bad.insert(bad.find('\n') + 1, "not json\n");
    EXPECT_THROW(parse_jsonl(bad), std::runtime_error);
  }
  // jsonl: file that never was a capture.
  EXPECT_THROW(parse_jsonl("{\"foo\":1}\n"), std::runtime_error);
  EXPECT_THROW(parse_jsonl(""), std::runtime_error);
}

TEST(CaptureReader, SkipsUnknownPcapRecords) {
  const std::string stem = artifact_stem("unknown");
  run_nav_scenario(stem, 23, milliseconds(50), false);

  std::vector<std::uint8_t> bytes = slurp(stem + ".pcap");
  const Capture clean = parse_pcap(bytes);
  ASSERT_GT(clean.frames.size(), 10u);
  EXPECT_EQ(clean.first_skipped_offset, -1);

  // Rewrite the first record's Frame Control byte to a management frame
  // (a beacon): unknown to the parser, skipped and counted, not fatal.
  bytes[24 + 16 + 11] = 0x80;
  const Capture cap = parse_pcap(bytes);
  EXPECT_EQ(cap.skipped_unknown, 1);
  EXPECT_EQ(cap.frames.size(), clean.frames.size() - 1);
  // The skip statistics point at the record, not the bad byte: the first
  // record header starts right after the 24-byte pcap file header.
  EXPECT_EQ(cap.first_skipped_offset, 24);
}

TEST(CaptureReader, DispatchesByContent) {
  const std::string stem = artifact_stem("dispatch");
  run_nav_scenario(stem, 24, milliseconds(50), false);
  EXPECT_FALSE(read_capture(stem + ".pcap").has_params);
  EXPECT_TRUE(read_capture(stem + ".jsonl").has_params);
}

TEST(Replay, RequiresTheJsonlJournal) {
  const std::string stem = artifact_stem("dispatch");
  run_nav_scenario(stem, 24, milliseconds(50), false);
  const Capture pcap = read_pcap(stem + ".pcap");
  EXPECT_THROW(replay_capture(pcap), std::runtime_error);
}

// --- live vs replay equivalence ----------------------------------------------

TEST(Replay, MatchesLiveNavValidatorVerdicts) {
  const std::string stem = artifact_stem("equiv_nav");
  const NavLive live = run_nav_scenario(stem, 11, seconds(1), true);
  ASSERT_GT(live.validated, 0);
  ASSERT_GT(live.detections, 0) << "scenario must exercise the attack";

  const ReplayResult offline = replay_capture(read_jsonl(stem + ".jsonl"));
  EXPECT_EQ(offline.nav_validated, live.validated);
  EXPECT_EQ(offline.nav_detections, live.detections);
  EXPECT_EQ(offline.nav_detections_by_node, live.by_node);
}

TEST(Replay, MatchesLiveSpoofDetectorVerdicts) {
  // grc_defense scenario 2: two TCP pairs, the far receiver spoofing MAC
  // ACKs for the victim flow, channel lossy enough that spoofs matter.
  SimConfig cfg;
  cfg.warmup = milliseconds(10);
  cfg.measure = seconds(2);
  cfg.seed = 11;
  cfg.default_ber = 2e-4;
  cfg.capture_threshold = 10.0;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  sim.add_tcp_flow(ns, nr);
  sim.add_tcp_flow(gs, gr);
  sim.make_ack_spoofer(gr, 1.0, {nr.id()});

  const std::string stem = artifact_stem("equiv_spoof");
  CaptureWriter capture(sim.scheduler(), stem);
  capture.attach(ns.mac());
  SpoofDetector detector(1.0);
  detector.attach(ns.mac());

  sim.run();
  capture.close();
  const std::int64_t live_checked = detector.true_positives() +
                                    detector.false_positives() +
                                    detector.true_negatives() +
                                    detector.false_negatives();
  ASSERT_GT(live_checked, 0);
  ASSERT_GT(detector.flagged(), 0) << "scenario must exercise the attack";

  const ReplayResult offline = replay_capture(read_jsonl(stem + ".jsonl"));
  EXPECT_EQ(offline.acks_checked, live_checked);
  EXPECT_EQ(offline.spoof_tp, detector.true_positives());
  EXPECT_EQ(offline.spoof_fp, detector.false_positives());
  EXPECT_EQ(offline.spoof_tn, detector.true_negatives());
  EXPECT_EQ(offline.spoof_fn, detector.false_negatives());
  EXPECT_EQ(offline.spoof_flagged(), detector.flagged());
  EXPECT_EQ(offline.acks_ignored,
            static_cast<std::int64_t>(ns.mac().stats().acks_ignored));

  // The learned physical-layer profiles match too: same peers, same sample
  // counts, same sliding-window medians (the journal carries the measured
  // RSSI of every reception, so the offline monitor sees the identical
  // sample sequence).
  const RssiMonitor& live_mon = detector.monitor();
  std::vector<RssiProfile> live_rssi;
  for (const int peer : live_mon.peers()) {
    live_rssi.push_back(
        RssiProfile{peer, static_cast<std::int64_t>(live_mon.samples(peer)),
                    live_mon.median(peer).value_or(0.0)});
  }
  ASSERT_FALSE(live_rssi.empty());
  EXPECT_EQ(offline.rssi, live_rssi);
}

TEST(Replay, MatchesLiveBackoffMonitorVerdicts) {
  // The DOMINO baseline from a bystander vantage: two saturated UDP pairs,
  // the second sender backing off a tenth of what it should. The capture
  // and the live monitor both ride receiver 1's MAC, so replay sees the
  // exact busy/idle history the live channel_observer fed.
  SimConfig cfg;
  cfg.warmup = milliseconds(10);
  cfg.measure = seconds(2);
  cfg.seed = 26;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& honest_s = sim.add_node(l.senders[0]);
  Node& greedy_s = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  sim.add_udp_flow(honest_s, r1);
  sim.add_udp_flow(greedy_s, r2);
  greedy_s.mac().set_backoff_cheat(0.1);

  const std::string stem = artifact_stem("equiv_backoff");
  CaptureWriter capture(sim.scheduler(), stem);
  capture.attach(r1.mac());
  BackoffMonitor monitor(sim.scheduler(), sim.params());
  monitor.attach(r1.mac());

  sim.run();
  capture.close();
  ASSERT_GT(monitor.samples(greedy_s.id()), 20);
  ASSERT_TRUE(monitor.flagged(greedy_s.id())) << "scenario must exercise the attack";

  std::vector<BackoffVerdict> live;
  for (const int s : monitor.stations()) {
    live.push_back(BackoffVerdict{s, monitor.observed_backoff(s),
                                  monitor.samples(s), monitor.tx_share(s),
                                  monitor.flagged(s)});
  }

  const ReplayResult offline = replay_capture(read_jsonl(stem + ".jsonl"));
  EXPECT_EQ(offline.backoff, live);
}

TEST(Replay, MatchesLiveCrossLayerVerdicts) {
  // The mobile-client fallback: no RSSI profile, so the victim sender
  // correlates layers instead — TCP retransmissions of segments its MAC
  // says were delivered betray the ACK spoofer. Same scenario as the RSSI
  // test but with no ACK filter installed (live or offline): every spoofed
  // ACK closes the exchange, so the spoofed segments really do get TCP
  // retransmitted later.
  SimConfig cfg;
  cfg.warmup = milliseconds(10);
  cfg.measure = seconds(2);
  cfg.seed = 11;
  cfg.default_ber = 2e-4;
  cfg.capture_threshold = 10.0;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  const Sim::TcpFlow victim = sim.add_tcp_flow(ns, nr);
  sim.add_tcp_flow(gs, gr);
  sim.make_ack_spoofer(gr, 1.0, {nr.id()});

  const std::string stem = artifact_stem("equiv_xlayer");
  CaptureWriter capture(sim.scheduler(), stem);
  capture.attach(ns.mac());
  CrossLayerDetector detector;
  detector.attach(ns.mac(), *victim.sender);

  sim.run();
  capture.close();
  ASSERT_GT(detector.suspicious_retransmissions(), 0)
      << "scenario must exercise the attack";

  ReplayOptions opts;
  opts.spoof = false;  // mirror the live run: no ACK filter installed
  const ReplayResult offline = replay_capture(read_jsonl(stem + ".jsonl"), opts);
  ASSERT_EQ(offline.cross_layer.size(), 1u);
  const CrossLayerVerdict& v = offline.cross_layer[0];
  EXPECT_EQ(v.flow_id, victim.flow_id);
  EXPECT_EQ(v.mac_acked, detector.mac_acked_segments());
  EXPECT_EQ(v.suspicious, detector.suspicious_retransmissions());
  EXPECT_EQ(v.detected, detector.detected());
}

TEST(Replay, MatchesLiveFakeAckVerdict) {
  // grc_defense scenario 3: one UDP pair over a 50% FER link, the receiver
  // faking ACKs for frames it could not decode; the sender probes.
  SimConfig cfg;
  cfg.warmup = milliseconds(10);
  cfg.measure = seconds(4);
  cfg.seed = 11;
  cfg.rts_cts = false;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(1);
  Node& gs = sim.add_node(l.senders[0]);
  Node& gr = sim.add_node(l.receivers[0]);
  sim.channel().error_model().set_link_ber(
      gs.id(), gr.id(),
      ErrorModel::ber_for_fer(0.5, ErrorModel::error_len(FrameType::kData, 1064)));
  sim.add_udp_flow(gs, gr, 1.0);
  sim.make_fake_acker(gr, 1.0);

  const std::string stem = artifact_stem("equiv_fakeack");
  CaptureWriter capture(sim.scheduler(), stem);
  capture.attach(gs.mac());
  FakeAckDetector::Config dc;
  dc.probe_payload_bytes = 512;
  FakeAckDetector detector(sim.scheduler(), gs, gr.id(), sim.reserve_flow_id(),
                           dc);
  detector.start(0);

  sim.run();
  capture.close();
  ASSERT_TRUE(detector.detected()) << "scenario must exercise the attack";

  const ReplayResult offline = replay_capture(read_jsonl(stem + ".jsonl"));
  ASSERT_EQ(offline.fake_ack.size(), 1u);
  const FakeAckVerdict& v = offline.fake_ack[0];
  EXPECT_EQ(v.dest, gr.id());
  EXPECT_EQ(v.probes_seen, detector.probes_sent());
  EXPECT_EQ(v.mac_loss, detector.mac_loss());
  EXPECT_EQ(v.application_loss, detector.application_loss());
  EXPECT_EQ(v.expected_app_loss, detector.expected_app_loss());
  EXPECT_EQ(v.detected, detector.detected());
}

TEST(Replay, HonestRunRaisesNoVerdicts) {
  // Same topology as the NAV scenario but with everyone honest: replay
  // must validate plenty of frames and flag none.
  SimConfig cfg;
  cfg.warmup = milliseconds(10);
  cfg.measure = seconds(1);
  cfg.seed = 12;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  sim.add_udp_flow(ns, nr);
  sim.add_udp_flow(gs, gr);
  (void)gs;
  (void)gr;

  const std::string stem = artifact_stem("honest");
  CaptureWriter capture(sim.scheduler(), stem);
  capture.attach(ns.mac());
  sim.run();
  capture.close();

  const ReplayResult offline = replay_capture(read_jsonl(stem + ".jsonl"));
  EXPECT_GT(offline.nav_validated, 0);
  EXPECT_EQ(offline.nav_detections, 0);
  for (const FakeAckVerdict& v : offline.fake_ack) EXPECT_FALSE(v.detected);
}

// --- golden fixture -----------------------------------------------------------

#ifndef G80211_TEST_DATA_DIR
#define G80211_TEST_DATA_DIR "tests/data"
#endif

TEST(CaptureGolden, CommittedFixtureIsBitStable) {
  // Regenerate the fixture scenario and compare byte-for-byte against the
  // committed files: any drift in the capture byte format (or in the
  // simulation it records) fails here. With G80211_REGEN_GOLDEN=1 the
  // fixtures are rewritten instead (for intended format changes only).
  const std::string stem = artifact_stem("golden_regen");
  run_nav_scenario(stem, 7, milliseconds(100), false);

  const std::string data_dir = G80211_TEST_DATA_DIR;
  const std::string golden_pcap = data_dir + "/golden_capture.pcap";
  const std::string golden_jsonl = data_dir + "/golden_capture.jsonl";

  if (const char* regen = std::getenv("G80211_REGEN_GOLDEN");
      regen && std::string(regen) == "1") {
    std::filesystem::create_directories(data_dir);
    spit(golden_pcap, slurp(stem + ".pcap"));
    spit(golden_jsonl, slurp(stem + ".jsonl"));
    GTEST_SKIP() << "golden capture fixtures regenerated";
  }

  EXPECT_EQ(slurp(stem + ".pcap"), slurp(golden_pcap))
      << "capture pcap byte format drifted from the committed fixture";
  EXPECT_EQ(slurp_text(stem + ".jsonl"), slurp_text(golden_jsonl))
      << "capture jsonl format drifted from the committed fixture";

  // The committed fixture itself must parse and replay: the journal
  // records the 31 ms CTS inflation attack, so offline detection flags
  // the greedy receiver (station 3) without any live simulation.
  const Capture cap = read_capture(golden_jsonl);
  const ReplayResult res = replay_capture(cap);
  EXPECT_GT(res.nav_validated, 0);
  EXPECT_GT(res.nav_detections, 0);
  ASSERT_EQ(res.nav_detections_by_node.size(), 1u);
  EXPECT_EQ(res.nav_detections_by_node.begin()->first, 3);

  const Capture pc = read_capture(golden_pcap);
  EXPECT_EQ(pc.frames.size(), cap.frames.size());
  EXPECT_EQ(pc.skipped_unknown, 0);
}

}  // namespace g80211
