// Sender-side misbehavior baseline and its detection: the backoff cheat
// (Kyasanur & Vaidya-style greedy sender), the DOMINO-style backoff
// monitor, and the RSSI-based greedy-node locator from the paper's
// Section VII-A.
#include <gtest/gtest.h>

#include "src/detect/backoff_monitor.h"
#include "src/detect/locator.h"
#include "src/detect/nav_validator.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

SimConfig cfg_for(std::uint64_t seed) {
  SimConfig cfg;
  cfg.measure = seconds(5);
  cfg.seed = seed;
  return cfg;
}

TEST(GreedySender, BackoffCheatStealsBandwidth) {
  // The classic greedy-sender result: halving the effective backoff window
  // wins a disproportionate share of a saturated channel.
  Sim sim(cfg_for(23));
  const auto l = pairs_in_range(2);
  Node& honest_s = sim.add_node(l.senders[0]);
  Node& greedy_s = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  auto f1 = sim.add_udp_flow(honest_s, r1);
  auto f2 = sim.add_udp_flow(greedy_s, r2);
  greedy_s.mac().set_backoff_cheat(0.1);
  sim.run();
  EXPECT_GT(f2.goodput_mbps(), 1.8 * f1.goodput_mbps());
}

TEST(GreedySender, HonestCheatFactorIsNeutral) {
  auto split = [](double cheat) {
    Sim sim(cfg_for(24));
    const auto l = pairs_in_range(2);
    Node& s1 = sim.add_node(l.senders[0]);
    Node& s2 = sim.add_node(l.senders[1]);
    Node& r1 = sim.add_node(l.receivers[0]);
    Node& r2 = sim.add_node(l.receivers[1]);
    auto f1 = sim.add_udp_flow(s1, r1);
    auto f2 = sim.add_udp_flow(s2, r2);
    s2.mac().set_backoff_cheat(cheat);
    sim.run();
    return std::pair{f1.goodput_mbps(), f2.goodput_mbps()};
  };
  const auto [a1, a2] = split(1.0);
  EXPECT_NEAR(a1, a2, 0.3 * (a1 + a2));
}

TEST(BackoffMonitor, MeasuresHonestBackoffNearNominal) {
  Sim sim(cfg_for(25));
  const auto l = pairs_in_range(2);
  Node& s1 = sim.add_node(l.senders[0]);
  Node& s2 = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  auto f1 = sim.add_udp_flow(s1, r1);
  auto f2 = sim.add_udp_flow(s2, r2);
  // Observe from a bystander position: receiver 1's MAC.
  BackoffMonitor monitor(sim.scheduler(), sim.params());
  monitor.attach(r1.mac());
  sim.run();
  // Nominal mean backoff at CWmin=31 is 15.5 slots; freeze/resume and CW
  // growth shift the observation, but it must be in that region.
  EXPECT_GT(monitor.samples(s1.id()), 50);
  EXPECT_GT(monitor.observed_backoff(s1.id()), 6.0);
  EXPECT_FALSE(monitor.flagged(s1.id()));
  EXPECT_FALSE(monitor.flagged(s2.id()));
  (void)f1;
  (void)f2;
}

TEST(BackoffMonitor, FlagsBackoffCheater) {
  Sim sim(cfg_for(26));
  const auto l = pairs_in_range(2);
  Node& honest_s = sim.add_node(l.senders[0]);
  Node& greedy_s = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  auto f1 = sim.add_udp_flow(honest_s, r1);
  auto f2 = sim.add_udp_flow(greedy_s, r2);
  greedy_s.mac().set_backoff_cheat(0.1);
  BackoffMonitor monitor(sim.scheduler(), sim.params());
  monitor.attach(r1.mac());
  sim.run();
  EXPECT_TRUE(monitor.flagged(greedy_s.id()));
  EXPECT_FALSE(monitor.flagged(honest_s.id()));
  const auto cheaters = monitor.cheaters();
  ASSERT_EQ(cheaters.size(), 1u);
  EXPECT_EQ(cheaters[0], greedy_s.id());
  (void)f1;
  (void)f2;
}

TEST(BackoffMonitor, StarvedHonestStationIsNotFlagged) {
  // Under a dominant cheater, the honest station only transmits when its
  // residual counter is tiny, so its per-access gaps look as small as the
  // cheater's. The transmission-share condition must keep it clean.
  Sim sim(cfg_for(28));
  const auto l = pairs_in_range(2);
  Node& honest_s = sim.add_node(l.senders[0]);
  Node& greedy_s = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  auto f1 = sim.add_udp_flow(honest_s, r1);
  auto f2 = sim.add_udp_flow(greedy_s, r2);
  greedy_s.mac().set_backoff_cheat(0.25);
  BackoffMonitor monitor(sim.scheduler(), sim.params());
  monitor.attach(r1.mac());
  sim.run();
  EXPECT_TRUE(monitor.flagged(greedy_s.id()));
  EXPECT_FALSE(monitor.flagged(honest_s.id()))
      << "observed backoff " << monitor.observed_backoff(honest_s.id())
      << " share " << monitor.tx_share(honest_s.id());
  EXPECT_GT(monitor.tx_share(greedy_s.id()), 0.65);
  (void)f1;
  (void)f2;
}

TEST(BackoffMonitor, UnknownStationIsNotFlagged) {
  Scheduler sched;
  BackoffMonitor monitor(sched, WifiParams::b11());
  EXPECT_FALSE(monitor.flagged(42));
  EXPECT_EQ(monitor.samples(42), 0);
  EXPECT_LT(monitor.observed_backoff(42), 0.0);
}

TEST(GreedyLocator, AttributesInflatedNavToTheRightStation) {
  // NAV validator detects inflated CTS frames (which carry no transmitter
  // address); the locator pins them on the greedy receiver by RSSI.
  Sim sim(cfg_for(27));
  const auto l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  // RSSI attribution needs the candidates to have separable power levels
  // at the observer; this bystander sits 2 m from GR and 2.8 m from GS
  // (a 3 dB gap), the kind of vantage point an AP operator would pick.
  Node& observer = sim.add_node({2, 7});
  auto fn = sim.add_udp_flow(ns, nr);
  auto fg = sim.add_tcp_flow(gs, gr);  // TCP: GR also sends DATA (profiles)
  sim.make_nav_inflator(gr, NavFrameMask::cts_only(), milliseconds(10));

  GreedyLocator locator(0.5);
  locator.attach(observer.mac());
  NavValidator validator(sim.scheduler(), sim.params());
  validator.attach(observer.mac());
  // On every sniffed CTS that the validator would clamp, accuse by RSSI.
  auto prev = std::move(observer.mac().sniffer);
  observer.mac().sniffer = [&](const Frame& f, const RxInfo& info) {
    if (prev) prev(f, info);
    if (!info.corrupted && f.type == FrameType::kCts &&
        f.duration > validator.expected_duration(f) + microseconds(2)) {
      locator.accuse(info.rssi_dbm);
    }
  };
  sim.run();

  ASSERT_TRUE(locator.prime_suspect().has_value());
  EXPECT_EQ(*locator.prime_suspect(), gr.id());
  // The honest stations are essentially never accused.
  const auto& acc = locator.accusations();
  std::int64_t others = 0;
  for (const auto& [station, n] : acc) {
    if (station != gr.id()) others += n;
  }
  EXPECT_GT(acc.at(gr.id()), 10 * std::max<std::int64_t>(others, 1));
  (void)fn;
  (void)fg;
}

TEST(GreedyLocator, AmbiguousRssiYieldsNoAttribution) {
  GreedyLocator locator(1.0);
  // Two stations with near-identical profiles.
  for (int i = 0; i < 10; ++i) {
    locator.monitor().add_sample(1, -50.0);
    locator.monitor().add_sample(2, -50.3);
  }
  // locate() needs `known_` filled via attach(); exercise the public
  // monitor-based path instead through accuse-free locate on empty known:
  EXPECT_FALSE(locator.locate(-50.1).has_value())
      << "no learned stations -> no attribution";
}

}  // namespace
}  // namespace g80211
