// Detection modules in isolation: RSSI monitor, spoof detector decision
// rule, NAV validator expectations, cross-layer detector, fake-ACK
// detector arithmetic.
#include <gtest/gtest.h>

#include "src/detect/cross_layer_detector.h"
#include "src/detect/fake_ack_detector.h"
#include "src/detect/nav_validator.h"
#include "src/detect/rssi_monitor.h"
#include "src/detect/spoof_detector.h"
#include "src/mac/durations.h"

namespace g80211 {
namespace {

TEST(RssiMonitor, NoSamplesNoMedian) {
  RssiMonitor m;
  EXPECT_FALSE(m.median(1).has_value());
  EXPECT_EQ(m.samples(1), 0u);
}

TEST(RssiMonitor, MedianOfOddAndEvenCounts) {
  RssiMonitor m;
  m.add_sample(1, -50.0);
  EXPECT_DOUBLE_EQ(*m.median(1), -50.0);
  m.add_sample(1, -60.0);
  m.add_sample(1, -40.0);
  EXPECT_DOUBLE_EQ(*m.median(1), -50.0);
}

TEST(RssiMonitor, PerPeerIsolation) {
  RssiMonitor m;
  m.add_sample(1, -50.0);
  m.add_sample(2, -80.0);
  EXPECT_DOUBLE_EQ(*m.median(1), -50.0);
  EXPECT_DOUBLE_EQ(*m.median(2), -80.0);
}

TEST(RssiMonitor, SlidingWindowForgetsOldSamples) {
  RssiMonitor m(4);
  for (int i = 0; i < 4; ++i) m.add_sample(1, -80.0);
  for (int i = 0; i < 4; ++i) m.add_sample(1, -50.0);
  EXPECT_DOUBLE_EQ(*m.median(1), -50.0) << "old -80 samples aged out";
  EXPECT_EQ(m.samples(1), 4u);
}

TEST(RssiMonitor, RobustToOutliers) {
  RssiMonitor m;
  for (int i = 0; i < 20; ++i) m.add_sample(1, -50.0 + 0.1 * (i % 3));
  m.add_sample(1, -20.0);  // single multipath spike
  EXPECT_NEAR(*m.median(1), -50.0, 0.2);
}

TEST(SpoofDetector, AcceptsWithoutProfile) {
  SpoofDetector d(1.0);
  EXPECT_FALSE(d.should_ignore(1, -55.0));
}

TEST(SpoofDetector, FlagsBeyondThresholdOnly) {
  SpoofDetector d(1.0);
  for (int i = 0; i < 10; ++i) d.monitor().add_sample(1, -50.0);
  EXPECT_FALSE(d.should_ignore(1, -50.5));
  EXPECT_FALSE(d.should_ignore(1, -49.2));
  EXPECT_TRUE(d.should_ignore(1, -53.0));
  EXPECT_TRUE(d.should_ignore(1, -47.0));
}

TEST(SpoofDetector, ThresholdIsConfigurable) {
  SpoofDetector strict(0.2), loose(5.0);
  for (int i = 0; i < 5; ++i) {
    strict.monitor().add_sample(1, -50.0);
    loose.monitor().add_sample(1, -50.0);
  }
  EXPECT_TRUE(strict.should_ignore(1, -50.5));
  EXPECT_FALSE(loose.should_ignore(1, -53.0));
}

// --- NavValidator expectations (standalone; attach() paths are covered by
// --- the integration tests).
class NavValidatorTest : public ::testing::Test {
 protected:
  NavValidatorTest() : params_(WifiParams::b11()), validator_(sched_, params_) {}
  Scheduler sched_;
  WifiParams params_;
  NavValidator validator_;
};

TEST_F(NavValidatorTest, AckNavMustBeZero) {
  Frame ack;
  ack.type = FrameType::kAck;
  ack.duration = milliseconds(30);
  EXPECT_EQ(validator_.expected_duration(ack), 0);
}

TEST_F(NavValidatorTest, DataNavClampsToSifsPlusAck) {
  Frame data;
  data.type = FrameType::kData;
  data.duration = milliseconds(30);
  EXPECT_EQ(validator_.expected_duration(data), Durations::data(params_));
  data.duration = microseconds(5);  // honest small value passes through
  EXPECT_EQ(validator_.expected_duration(data), microseconds(5));
}

TEST_F(NavValidatorTest, RtsClampsToMtuBound) {
  Frame rts;
  rts.type = FrameType::kRts;
  rts.duration = WifiParams::kMaxNav;
  EXPECT_EQ(validator_.expected_duration(rts), Durations::max_rts(params_));
}

TEST_F(NavValidatorTest, CtsWithoutContextUsesMtuBound) {
  Frame cts;
  cts.type = FrameType::kCts;
  cts.ra = 5;
  cts.duration = milliseconds(30);
  EXPECT_EQ(validator_.expected_duration(cts), Durations::max_cts(params_));
}

TEST_F(NavValidatorTest, HonestCtsWithoutContextPassesThrough) {
  Frame cts;
  cts.type = FrameType::kCts;
  cts.ra = 5;
  cts.duration = Durations::cts(params_, 1064);
  EXPECT_EQ(validator_.expected_duration(cts), cts.duration)
      << "honest value is below the bound and must be preserved";
}

TEST(CrossLayerDetector, CountsOnlyMacAckedRetransmissions) {
  Scheduler sched;
  Channel channel(sched, WifiParams::b11());
  Phy phy(channel, 0, {0, 0}, Rng(1));
  Mac mac(sched, phy, WifiParams::b11(), Rng(2));
  TcpSender tcp(sched, {}, /*flow=*/9, 0, 1);
  CrossLayerDetector det(3);
  det.attach(mac, tcp);

  // Simulate MAC acks via the tap the detector chained onto.
  auto seg = [](std::int64_t seq, int flow) {
    auto p = make_packet();
    p->flow_id = flow;
    p->tcp.seq = seq;
    return p;
  };
  mac.tx_done_cb(seg(1, 9), true);
  mac.tx_done_cb(seg(2, 9), true);
  mac.tx_done_cb(seg(3, 9), false);   // not MAC-acked
  mac.tx_done_cb(seg(4, 77), true);   // different flow
  EXPECT_EQ(det.mac_acked_segments(), 2);

  tcp.on_retransmit(1);  // suspicious: MAC said delivered
  tcp.on_retransmit(3);  // fine: MAC loss
  tcp.on_retransmit(2);  // suspicious
  EXPECT_EQ(det.suspicious_retransmissions(), 2);
  EXPECT_FALSE(det.detected());
  tcp.on_retransmit(1);
  EXPECT_TRUE(det.detected());
}

TEST(FakeAckDetectorMath, ExpectedAppLossFollowsPowerLaw) {
  Scheduler sched;
  Channel channel(sched, WifiParams::b11());
  Node sender(sched, channel, 0, {0, 0}, Rng(3));
  FakeAckDetector det(sched, sender, 1, 99);
  // No traffic yet: losses are zero and nothing is detected.
  EXPECT_DOUBLE_EQ(det.mac_loss(), 0.0);
  EXPECT_DOUBLE_EQ(det.application_loss(), 0.0);
  EXPECT_FALSE(det.detected());
}

}  // namespace
}  // namespace g80211
