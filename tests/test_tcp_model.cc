// PFTK model: analytic sanity, and agreement with the simulator for the
// spoofing victim (whose TCP sees the raw frame error rate) vs the honest
// flow (whose MAC hides all but consecutive losses).
#include <gtest/gtest.h>

#include "src/analysis/tcp_model.h"
#include "src/phy/error_model.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

TEST(PftkModel, MonotoneDecreasingInLoss) {
  PftkConfig cfg;
  double prev = 1e18;
  for (double p : {0.0, 0.001, 0.01, 0.05, 0.1, 0.3, 0.6}) {
    const double thr = pftk_throughput_mbps(cfg, p);
    EXPECT_GT(thr, 0.0);
    EXPECT_LE(thr, prev) << p;
    prev = thr;
  }
}

TEST(PftkModel, LossFreeIsWindowLimited) {
  PftkConfig cfg;
  cfg.max_window = 10;
  cfg.rtt = milliseconds(100);
  // 10 * 1024 B / 100 ms = 0.82 Mbps.
  EXPECT_NEAR(pftk_throughput_mbps(cfg, 0.0), 0.819, 0.01);
  EXPECT_LE(pftk_throughput_mbps(cfg, 1e-6), 0.82);
}

TEST(PftkModel, SqrtRegimeScaling) {
  // In the fast-retransmit regime, halving p scales throughput by sqrt(2).
  PftkConfig cfg;
  cfg.rto = milliseconds(0);  // isolate the sqrt term
  const double a = pftk_throughput_mbps(cfg, 0.01);
  const double b = pftk_throughput_mbps(cfg, 0.005);
  EXPECT_NEAR(b / a, std::sqrt(2.0), 0.01);
}

TEST(PftkModel, ExplainsSpoofingDamageOrderOfMagnitude) {
  // Simulate the Fig 11 operating point and compare victim goodput with
  // PFTK at p = raw data FER (spoofing exposes every frame loss to TCP).
  const double ber = 2e-4;
  SimConfig cfg;
  cfg.measure = seconds(8);
  cfg.seed = 121;
  cfg.default_ber = ber;
  cfg.capture_threshold = 10.0;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_tcp_flow(ns, nr);
  auto fg = sim.add_tcp_flow(gs, gr);
  sim.make_ack_spoofer(gr, 1.0, {nr.id()});
  sim.run();

  const double p = ErrorModel::fer(ber, ErrorModel::error_len(FrameType::kData, 1064));
  PftkConfig model;
  // RTT under contention with the greedy flow: a couple of MAC exchanges.
  model.rtt = milliseconds(8);
  const double predicted = pftk_throughput_mbps(model, p);
  const double measured = fn.goodput_mbps();
  EXPECT_GT(measured, predicted / 3.0);
  EXPECT_LT(measured, predicted * 3.0)
      << "PFTK(p=FER=" << p << ") = " << predicted << " vs sim " << measured;
  // And the honest flow (MAC hides losses) does far better than PFTK at p.
  EXPECT_GT(fg.goodput_mbps(), 2.0 * predicted);
}

}  // namespace
}  // namespace g80211
