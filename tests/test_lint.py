#!/usr/bin/env python3
"""Self-test for tools/lint/g80211_lint.py.

Exercises the fixture tree under tools/lint/testdata/: the good/ tree
must scan clean (exit 0), each seeded file under bad/ must fail (exit 1)
with exactly the expected rule IDs, and a broken configuration must exit
2. Runs standalone (python3 tests/test_lint.py) and is registered with
ctest as `lint_selftest`.
"""

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
LINT = REPO / "tools" / "lint" / "g80211_lint.py"
TESTDATA = REPO / "tools" / "lint" / "testdata"
DEPS = TESTDATA / "deps.toml"

FAILURES = []


def run(args):
    return subprocess.run([sys.executable, str(LINT)] + args,
                          capture_output=True, text=True)


def rules_in(output):
    return set(re.findall(r"\[([a-z-]+)\]", output))


def check(name, cond, detail=""):
    if cond:
        print(f"  ok  {name}")
    else:
        print(f"FAIL  {name}: {detail}")
        FAILURES.append(name)


def main():
    # 1. The good tree is clean, self-containedness included.
    p = run(["--root", str(TESTDATA / "good"), "--deps", str(DEPS)])
    check("good tree exits 0", p.returncode == 0,
          f"exit={p.returncode}\n{p.stdout}{p.stderr}")

    # 2. Each seeded bad fixture fails with exactly the expected rules.
    per_file = {
        "src/sim/layering_violation.h": {"layering"},
        "src/sim/monitor_dependency.h": {"layering"},
        "src/mac/nested_dependency.h": {"layering"},
        "src/sim/relative_include.cc": {"layering"},
        "src/sim/random.cc": {"nondet-random"},
        "src/sim/wallclock.cc": {"nondet-wallclock"},
        "src/sim/steadyclock.cc": {"nondet-steadyclock"},
        "src/sim/unordered_iter.cc": {"nondet-unordered-iter"},
        "src/sim/unordered_iter_it.cc": {"nondet-unordered-iter"},
        "src/sim/bare_assert.cc": {"bare-assert"},
        "src/sim/packet_heap.cc": {"packet-arena"},
        "src/sim/guarded.h": {"pragma-once"},
        "src/sim/include_order.cc": {"include-order"},
    }
    for rel, expected in per_file.items():
        p = run(["--root", str(TESTDATA / "bad"), "--deps", str(DEPS),
                 "--no-self-contained", rel])
        got = rules_in(p.stdout)
        check(f"{rel} exits 1", p.returncode == 1,
              f"exit={p.returncode}\n{p.stdout}{p.stderr}")
        check(f"{rel} flags exactly {sorted(expected)}", got == expected,
              f"got {sorted(got)}\n{p.stdout}")

    # 2b. Nested layers resolve by longest prefix: a file *inside*
    # mac/ext may use its parent layer and scans clean.
    p = run(["--root", str(TESTDATA / "bad"), "--deps", str(DEPS),
             "--no-self-contained", "src/mac/ext/stub.h"])
    check("mac/ext/stub.h (nested layer) scans clean", p.returncode == 0,
          f"exit={p.returncode}\n{p.stdout}{p.stderr}")

    # 3. The compiler-backed rule, on its own fixture.
    p = run(["--root", str(TESTDATA / "bad"), "--deps", str(DEPS),
             "src/sim/not_self_contained.h"])
    check("not_self_contained.h exits 1", p.returncode == 1,
          f"exit={p.returncode}\n{p.stdout}{p.stderr}")
    check("not_self_contained.h flags self-contained",
          "self-contained" in rules_in(p.stdout), p.stdout)

    # 4. Violation counts per fixture line up (multi-hit files report
    # every banned symbol, not just the first).
    p = run(["--root", str(TESTDATA / "bad"), "--deps", str(DEPS),
             "--no-self-contained", "src/sim/random.cc"])
    check("random.cc reports 3 findings",
          len(p.stdout.strip().splitlines()) == 3, p.stdout)

    # 5. A full bad-tree scan surfaces every rule at once.
    p = run(["--root", str(TESTDATA / "bad"), "--deps", str(DEPS)])
    expected_all = set().union(*per_file.values()) | {"self-contained"}
    got = rules_in(p.stdout)
    check("bad tree exits 1", p.returncode == 1, f"exit={p.returncode}")
    check("bad tree covers all rules", expected_all <= got,
          f"missing {sorted(expected_all - got)}\n{p.stdout}")

    # 6. Findings carry stable file:line: [rule] shape (tooling greps it).
    check("output format is path:line: [rule]",
          all(re.match(r"^[\w/.-]+:\d+: \[[a-z-]+\] ", ln)
              for ln in p.stdout.splitlines() if not ln.startswith("g80211")),
          p.stdout)

    # 7. Config errors are distinct from findings: exit 2.
    p = run(["--root", str(TESTDATA / "good"),
             "--deps", str(TESTDATA / "no_such_deps.toml")])
    check("missing deps.toml exits 2", p.returncode == 2,
          f"exit={p.returncode}\n{p.stderr}")
    p = run(["--root", str(TESTDATA / "good"), "--deps", str(DEPS),
             "no/such/dir"])
    check("unknown path exits 2", p.returncode == 2,
          f"exit={p.returncode}\n{p.stderr}")

    # 8. The real repository scans clean (fast rules only here; the full
    # scan with self-containedness runs as the separate `lint_repo` test).
    p = run(["--root", str(REPO), "--no-self-contained"])
    check("repository scans clean", p.returncode == 0,
          f"exit={p.returncode}\n{p.stdout}{p.stderr}")

    if FAILURES:
        print(f"\n{len(FAILURES)} failing check(s): {FAILURES}")
        return 1
    print("\nall lint self-tests passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
