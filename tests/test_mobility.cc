// Mobility models and the detection trade-off they expose (paper Section
// VII-B): RSSI profiling degrades on mobile clients; the cross-layer
// detector does not care.
#include <gtest/gtest.h>

#include "src/detect/cross_layer_detector.h"
#include "src/detect/spoof_detector.h"
#include "src/net/mobility.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

TEST(LinearMobility, MovesAtConfiguredVelocity) {
  Scheduler sched;
  Channel channel(sched, WifiParams::b11());
  Phy phy(channel, 0, {0, 0}, Rng(1));
  LinearMobility m(sched, phy, 3.0, -1.0);
  m.start(0);
  sched.run_until(seconds(2));
  EXPECT_NEAR(phy.position().x, 6.0, 0.2);
  EXPECT_NEAR(phy.position().y, -2.0, 0.1);
  m.stop();
  sched.run_until(seconds(3));
  EXPECT_NEAR(phy.position().x, 6.0, 0.2) << "stop() halts the walk";
}

TEST(WaypointMobility, VisitsWaypointsInOrder) {
  Scheduler sched;
  Channel channel(sched, WifiParams::b11());
  Phy phy(channel, 0, {0, 0}, Rng(1));
  WaypointMobility m(sched, phy, {{10, 0}, {10, 10}}, 5.0);
  m.start(0);
  sched.run_until(seconds(1));
  EXPECT_EQ(m.current_target(), 0u);
  EXPECT_NEAR(phy.position().x, 5.0, 0.3);
  sched.run_until(seconds(3));
  EXPECT_EQ(m.current_target(), 1u);
  sched.run_until(seconds(5));
  EXPECT_TRUE(m.finished());
  EXPECT_NEAR(phy.position().x, 10.0, 0.1);
  EXPECT_NEAR(phy.position().y, 10.0, 0.1);
}

TEST(Mobility, WalkingOutOfRangeKillsTheFlow) {
  SimConfig cfg;
  cfg.comm_range_m = 55.0;
  cfg.cs_range_m = 99.0;
  cfg.warmup = seconds(0);
  cfg.measure = seconds(8);
  cfg.seed = 81;
  Sim sim(cfg);
  Node& ap = sim.add_node({0, 0});
  Node& client = sim.add_node({10, 0});
  auto f = sim.add_udp_flow(ap, client, 2.0);
  // Walk away at 10 m/s: leaves the 55 m range around t = 4.5 s.
  LinearMobility walk(sim.scheduler(), client.phy(), 10.0, 0.0);
  walk.start(0);
  const std::int64_t mid_mark = 3;  // seconds
  std::int64_t packets_at_mid = 0;
  sim.scheduler().at(seconds(mid_mark), [&] { packets_at_mid = f.sink->packets(); });
  sim.run();
  EXPECT_GT(packets_at_mid, 100) << "flow alive while in range";
  const std::int64_t after = f.sink->packets() - packets_at_mid;
  EXPECT_LT(after, packets_at_mid) << "flow dies once out of range";
}

TEST(Mobility, RssiProfilingDegradesOnMobileClients) {
  // A victim walking across the cell sweeps >10 dB of RSSI; a 1 dB
  // threshold against a windowed median then rejects a meaningful share
  // of its honest ACKs — exactly the failure mode the paper assigns to
  // the cross-layer detector.
  SimConfig cfg;
  cfg.measure = seconds(8);
  cfg.seed = 82;
  Sim sim(cfg);
  Node& ns = sim.add_node({0, 0});
  Node& nr = sim.add_node({2, 0});
  auto f = sim.add_tcp_flow(ns, nr);
  SpoofDetector detector(1.0);
  detector.attach(ns.mac());
  LinearMobility walk(sim.scheduler(), nr.phy(), 4.0, 0.0);  // 2 m -> 34 m
  walk.start(0);
  sim.run();

  const double fp_rate =
      static_cast<double>(detector.false_positives()) /
      static_cast<double>(detector.false_positives() + detector.true_negatives() + 1);
  EXPECT_GT(fp_rate, 0.05) << "mobility breaks the stationary-RSSI premise";
  (void)f;
}

TEST(Mobility, CrossLayerDetectorUnfazedByMobility) {
  auto run = [](bool attack) {
    SimConfig cfg;
    cfg.measure = seconds(8);
    cfg.seed = 83;
    cfg.default_ber = 2e-4;
    cfg.capture_threshold = 10.0;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_tcp_flow(ns, nr);
    auto fg = sim.add_tcp_flow(gs, gr);
    if (attack) sim.make_ack_spoofer(gr, 1.0, {nr.id()});
    // The victim wanders within range: RSSI unstable the whole run.
    WaypointMobility walk(sim.scheduler(), nr.phy(),
                          {{20, 0}, {2, 8}, {15, 4}}, 3.0);
    walk.start(0);
    CrossLayerDetector detector(5);
    detector.attach(ns.mac(), *fn.sender);
    sim.run();
    (void)fg;
    return detector.detected();
  };
  EXPECT_TRUE(run(true)) << "spoofing caught despite mobility";
  EXPECT_FALSE(run(false)) << "honest mobile client stays clean";
}

}  // namespace
}  // namespace g80211
