// Greedy-policy units: frame masks, greedy-percentage gating, victim
// filters, corruption preconditions.
#include <gtest/gtest.h>

#include "src/greedy/ack_spoofing.h"
#include "src/greedy/fake_ack.h"
#include "src/greedy/nav_inflation.h"

namespace g80211 {
namespace {

Frame data_to(int ra, bool corrupted_irrelevant = false) {
  (void)corrupted_irrelevant;
  Frame f;
  f.type = FrameType::kData;
  f.ta = 0;
  f.ra = ra;
  return f;
}

RxInfo info(bool corrupted) {
  RxInfo i;
  i.corrupted = corrupted;
  i.addresses_intact = true;
  return i;
}

TEST(NavInflation, OnlyMaskedFrameTypesInflate) {
  Rng rng(1);
  NavInflationPolicy p(NavFrameMask::cts_only(), milliseconds(10));
  EXPECT_EQ(p.adjust_duration(FrameType::kCts, microseconds(100), rng),
            microseconds(100) + milliseconds(10));
  EXPECT_EQ(p.adjust_duration(FrameType::kAck, microseconds(100), rng),
            microseconds(100));
  EXPECT_EQ(p.adjust_duration(FrameType::kRts, microseconds(100), rng),
            microseconds(100));
  EXPECT_EQ(p.adjust_duration(FrameType::kData, microseconds(100), rng),
            microseconds(100));
}

TEST(NavInflation, AllMaskCoversEveryType) {
  Rng rng(1);
  NavInflationPolicy p(NavFrameMask::all(), microseconds(500));
  for (FrameType t : {FrameType::kCts, FrameType::kAck, FrameType::kRts,
                      FrameType::kData}) {
    EXPECT_EQ(p.adjust_duration(t, 0, rng), microseconds(500));
  }
  EXPECT_EQ(p.inflations_applied(), 4);
}

TEST(NavInflation, RtsAndCtsMask) {
  Rng rng(1);
  NavInflationPolicy p(NavFrameMask::rts_and_cts(), microseconds(500));
  EXPECT_GT(p.adjust_duration(FrameType::kRts, 0, rng), 0);
  EXPECT_GT(p.adjust_duration(FrameType::kCts, 0, rng), 0);
  EXPECT_EQ(p.adjust_duration(FrameType::kAck, 0, rng), 0);
}

TEST(NavInflation, GreedyPercentageGatesProbabilistically) {
  Rng rng(2);
  NavInflationPolicy p(NavFrameMask::ack_only(), microseconds(100), 0.3);
  int inflated = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.adjust_duration(FrameType::kAck, 0, rng) > 0) ++inflated;
  }
  EXPECT_NEAR(static_cast<double>(inflated) / n, 0.3, 0.02);
  EXPECT_EQ(p.inflations_applied(), inflated);
}

TEST(NavInflation, ZeroInflationIsIdentity) {
  Rng rng(3);
  NavInflationPolicy p(NavFrameMask::all(), 0);
  EXPECT_EQ(p.adjust_duration(FrameType::kCts, microseconds(42), rng),
            microseconds(42));
  EXPECT_EQ(p.inflations_applied(), 0);
}

TEST(AckSpoofing, SpoofsForeignDataOnly) {
  Rng rng(4);
  AckSpoofingPolicy p(1.0);
  EXPECT_TRUE(p.spoof_ack_for(data_to(7), info(false), rng));
  Frame rts = data_to(7);
  rts.type = FrameType::kRts;
  EXPECT_FALSE(p.spoof_ack_for(rts, info(false), rng));
}

TEST(AckSpoofing, VictimFilterRestrictsTargets) {
  Rng rng(5);
  AckSpoofingPolicy p(1.0, {7});
  EXPECT_TRUE(p.spoof_ack_for(data_to(7), info(false), rng));
  EXPECT_FALSE(p.spoof_ack_for(data_to(8), info(false), rng));
}

TEST(AckSpoofing, EmptyVictimSetSpoofsEveryone) {
  Rng rng(6);
  AckSpoofingPolicy p(1.0);
  EXPECT_TRUE(p.spoof_ack_for(data_to(7), info(false), rng));
  EXPECT_TRUE(p.spoof_ack_for(data_to(8), info(false), rng));
}

TEST(AckSpoofing, CorruptedSniffRespectsFlag) {
  Rng rng(7);
  AckSpoofingPolicy p(1.0);
  EXPECT_TRUE(p.spoof_ack_for(data_to(7), info(true), rng))
      << "spoofs corrupted sniffs by default (attacker can't know)";
  p.spoof_on_corrupted = false;
  EXPECT_FALSE(p.spoof_ack_for(data_to(7), info(true), rng));
  EXPECT_TRUE(p.spoof_ack_for(data_to(7), info(false), rng));
}

TEST(AckSpoofing, GreedyPercentageGates) {
  Rng rng(8);
  AckSpoofingPolicy p(0.2);
  int spoofed = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.spoof_ack_for(data_to(7), info(false), rng)) ++spoofed;
  }
  EXPECT_NEAR(static_cast<double>(spoofed) / n, 0.2, 0.02);
  EXPECT_EQ(p.spoof_decisions(), spoofed);
}

TEST(FakeAck, OnlyAcksCorruptedData) {
  Rng rng(9);
  FakeAckPolicy p(1.0);
  EXPECT_TRUE(p.fake_ack_for(data_to(1), info(true), rng));
  EXPECT_FALSE(p.fake_ack_for(data_to(1), info(false), rng))
      << "uncorrupted frames are ACKed by the honest path";
  Frame rts = data_to(1);
  rts.type = FrameType::kRts;
  EXPECT_FALSE(p.fake_ack_for(rts, info(true), rng));
}

TEST(FakeAck, GreedyPercentageGates) {
  Rng rng(10);
  FakeAckPolicy p(0.5);
  int faked = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.fake_ack_for(data_to(1), info(true), rng)) ++faked;
  }
  EXPECT_NEAR(static_cast<double>(faked) / n, 0.5, 0.02);
  EXPECT_EQ(p.fakes(), faked);
}

TEST(GreedyPolicyBase, DefaultsAreHonest) {
  Rng rng(11);
  GreedyPolicy honest;
  EXPECT_EQ(honest.adjust_duration(FrameType::kCts, microseconds(5), rng),
            microseconds(5));
  EXPECT_FALSE(honest.spoof_ack_for(data_to(1), info(false), rng));
  EXPECT_FALSE(honest.fake_ack_for(data_to(1), info(true), rng));
}

}  // namespace
}  // namespace g80211
