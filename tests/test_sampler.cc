// Goodput time-series sampler: interval accounting and the attack-onset
// view it exists for.
#include <gtest/gtest.h>

#include "src/analysis/sampler.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211 {
namespace {

TEST(GoodputSampler, ConvertsByteDeltasToMbps) {
  Scheduler sched;
  std::int64_t bytes = 0;
  GoodputSampler sampler(sched, milliseconds(100), [&] { return bytes; });
  sampler.start(0);
  // 12500 bytes per 100 ms = 1 Mbps.
  for (int i = 1; i <= 5; ++i) {
    sched.at(milliseconds(100 * i) - microseconds(1), [&] { bytes += 12500; });
  }
  sched.run_until(milliseconds(550));
  ASSERT_EQ(sampler.series_mbps().size(), 5u);
  for (const double v : sampler.series_mbps()) EXPECT_NEAR(v, 1.0, 1e-9);
}

TEST(GoodputSampler, IdleIntervalsAreZero) {
  Scheduler sched;
  std::int64_t bytes = 0;
  GoodputSampler sampler(sched, milliseconds(50), [&] { return bytes; });
  sampler.start(0);
  sched.run_until(milliseconds(220));
  ASSERT_GE(sampler.series_mbps().size(), 4u);
  for (const double v : sampler.series_mbps()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(GoodputSampler, ShowsAttackOnsetInTheTimeline) {
  // The victim's per-interval goodput collapses when the greedy receiver's
  // inflation begins mid-run.
  SimConfig cfg;
  cfg.warmup = seconds(0);
  cfg.measure = seconds(6);
  cfg.seed = 71;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_udp_flow(ns, nr);
  auto fg = sim.add_udp_flow(gs, gr);
  GoodputSampler sampler(sim.scheduler(), milliseconds(500), [&] {
    return fn.sink->payload_bytes_received();
  });
  sampler.start(0);
  // Attack switches on at t = 3 s.
  sim.scheduler().at(seconds(3), [&] {
    sim.make_nav_inflator(gr, NavFrameMask::cts_only(), milliseconds(10));
  });
  sim.run();

  const auto& s = sampler.series_mbps();
  ASSERT_GE(s.size(), 11u);
  const double before = (s[2] + s[3] + s[4]) / 3.0;   // 1.0-2.5 s
  const double after = (s[8] + s[9] + s[10]) / 3.0;   // 4.0-5.5 s
  EXPECT_GT(before, 1.0);
  EXPECT_LT(after, 0.2 * before) << "the onset is visible in the series";
  (void)fg;
}

}  // namespace
}  // namespace g80211
