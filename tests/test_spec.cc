// Scenario-spec subsystem: parser front-ends, schema validation with
// line-anchored errors, describe() round-trip losslessness, deterministic
// world planning, the sharded-subset compile (byte-identical at any shard
// count, reusing the PR 8 equality contract), streaming statistics, and
// the MetricSink window path.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/runner/metric_sink.h"
#include "src/runner/stream_stats.h"
#include "src/scenario/sharded.h"
#include "src/scenario/spec/parser.h"
#include "src/scenario/spec/world_builder.h"
#include "src/scenario/spec/world_spec.h"

using namespace g80211;
using namespace g80211::spec;

namespace {

// A spec exercising every section and all three traffic classes; durations
// kept tiny so BuiltWorld-based tests stay fast.
const char* kFullToml = R"(# full-feature fixture
[world]
name = "fixture"
standard = "b"
rts_cts = true
seed = 42
warmup_s = 0.25
measure_s = 1.0
comm_range_m = 55.0
cs_range_m = 99.0

[aps]
cols = 2
rows = 2
pitch_m = 60.0
grc_coverage = 0.5

[stations]
per_ap = 3
radius_m = 15.0

[churn]
fraction = 0.3
mean_on_s = 0.5
mean_off_s = 0.25

[roaming]
fraction = 0.25
speed_mps = 2.0
hysteresis_m = 4.0

[[traffic]]
class = "cbr"
weight = 1.0
rate_mbps = 1.0
payload_bytes = 512

[[traffic]]
class = "web"
weight = 2.0
rate_mbps = 2.0
burst_s = 0.5
idle_s = 0.5

[[traffic]]
class = "tcp"
weight = 1.0

[greedy]
fraction = 0.3
nav_inflation = 1.0
ack_spoofing = 1.0
fake_ack = 1.0
nav_inflation_ms = 10.0
gp = 0.9

[metrics]
window_s = 0.25
ring_m = 25.0
)";

WorldSpec full_spec() { return parse_world_spec_text(kFullToml, "fixture"); }

int expect_line(const std::string& toml, const std::string& needle) {
  try {
    (void)parse_world_spec_text(toml, "t");
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
    return e.line();
  }
  ADD_FAILURE() << "expected SpecError containing: " << needle;
  return -1;
}

// --- parser ----------------------------------------------------------------

TEST(SpecParser, ParsesTheFullTomlFixture) {
  const WorldSpec s = full_spec();
  EXPECT_EQ(s.name, "fixture");
  EXPECT_EQ(s.seed, 42u);
  EXPECT_EQ(s.num_aps(), 4);
  EXPECT_EQ(s.num_stations(), 12);
  EXPECT_EQ(s.traffic.size(), 3u);
  EXPECT_EQ(s.traffic[1].cls, TrafficClass::kWeb);
  EXPECT_DOUBLE_EQ(s.traffic[1].weight, 2.0);
  EXPECT_DOUBLE_EQ(s.grc_coverage, 0.5);
  EXPECT_DOUBLE_EQ(s.gp, 0.9);
}

TEST(SpecParser, JsonAndTomlProduceTheSameSpec) {
  // Same world as a JSON document (format sniffed from the '{').
  const char* json = R"({
    "world": {"name": "j", "seed": 9, "warmup_s": 0.5, "measure_s": 1.0},
    "aps": {"positions": [[0, 0], [80, 0]], "grc_coverage": 1.0},
    "stations": {"per_ap": 2},
    "traffic": [{"class": "cbr", "rate_mbps": 3.0}]
  })";
  const WorldSpec s = parse_world_spec_text(json, "j.json");
  EXPECT_EQ(s.name, "j");
  EXPECT_EQ(s.num_aps(), 2);
  EXPECT_DOUBLE_EQ(s.positions[1].x, 80.0);
  EXPECT_DOUBLE_EQ(s.grc_coverage, 1.0);

  const char* toml = R"(
[world]
name = "j"
seed = 9
warmup_s = 0.5
measure_s = 1.0

[aps]
positions = [[0.0, 0.0], [80.0, 0.0]]
grc_coverage = 1.0

[stations]
per_ap = 2

[[traffic]]
class = "cbr"
rate_mbps = 3.0
)";
  EXPECT_TRUE(parse_world_spec_text(toml, "j.toml") == s);
}

TEST(SpecParser, TomlNumbersCommentsAndEscapes) {
  const Value v = parse_toml(
      "a = 1_000\n"
      "b = -2.5e-1  # trailing comment\n"
      "c = \"q\\\"uo\\\\te\\n\"\n"
      "d = [1, [2, 3],\n     4]\n"
      "e = true\n",
      "t");
  EXPECT_EQ(v.table.at("a").i, 1000);
  EXPECT_DOUBLE_EQ(v.table.at("b").f, -0.25);
  EXPECT_EQ(v.table.at("c").s, "q\"uo\\te\n");
  EXPECT_EQ(v.table.at("d").array.size(), 3u);
  EXPECT_EQ(v.table.at("d").array[1].array[1].i, 3);
  EXPECT_TRUE(v.table.at("e").b);
}

TEST(SpecParser, RejectsMalformedDocumentsWithLineNumbers) {
  EXPECT_THROW(parse_toml("a = \n", "t"), SpecError);
  EXPECT_THROW(parse_toml("a = 1 b = 2\n", "t"), SpecError);
  EXPECT_THROW(parse_toml("[t]\n[t]\n", "t"), SpecError);
  EXPECT_THROW(parse_toml("a = 1\na = 2\n", "t"), SpecError);
  EXPECT_THROW(parse_json("{\"a\": null}", "t"), SpecError);
  EXPECT_THROW(parse_json("{\"a\": 1} x", "t"), SpecError);
  try {
    parse_toml("ok = 1\nbad = !\n", "file.toml");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.line(), 2);
    EXPECT_NE(std::string(e.what()).find("file.toml:2:"), std::string::npos);
  }
}

// --- schema validation -----------------------------------------------------

TEST(SpecSchema, ErrorsAreLineAnchored) {
  // Unknown key: anchored to the key's own line.
  EXPECT_EQ(expect_line("[world]\nname = \"x\"\nwarmupt_s = 1.0\n"
                        "[aps]\ncols = 1\nrows = 1\npitch_m = 10.0\n"
                        "[[traffic]]\nclass = \"cbr\"\n",
                        "unknown key 'warmupt_s'"),
            3);
  // Unknown section: anchored to the section header.
  EXPECT_EQ(expect_line("[world]\nname = \"x\"\n[stationz]\nper_ap = 1\n",
                        "unknown section [stationz]"),
            3);
  // Type error.
  expect_line("[world]\nseed = \"one\"\n", "seed must be an integer");
  // Constraint errors.
  expect_line("[world]\ncs_range_m = 10.0\ncomm_range_m = 20.0\n",
              "cs_range_m must be >= comm_range_m");
  expect_line("[aps]\ncols = 2\nrows = 2\npitch_m = 10.0\n"
              "positions = [[0.0, 0.0]]\n",
              "positions excludes cols/rows/pitch_m");
  expect_line("[aps]\ncols = 2\nrows = 2\n", "grid needs pitch_m > 0");
  expect_line("[world]\nname = \"x\"\n", "needs cols > 0 and rows > 0");
  expect_line("[aps]\ncols = 1\nrows = 1\npitch_m = 5.0\n"
              "[[traffic]]\nclass = \"cbr\"\n"
              "[greedy]\nfraction = 0.5\nnav_inflation = 0.0\n",
              "misbehavior mix must have positive total weight");
  expect_line("[aps]\ncols = 1\nrows = 1\npitch_m = 5.0\n"
              "[[traffic]]\nclass = \"cbr\"\n"
              "[greedy]\ngp = 1.5\n",
              "gp must be in (0, 1]");
  expect_line("[aps]\ncols = 1\nrows = 1\npitch_m = 5.0\n"
              "[churn]\nfraction = 1.5\n",
              "fraction must be a number in [0, 1]");
  // Missing traffic.
  expect_line("[aps]\ncols = 1\nrows = 1\npitch_m = 5.0\n",
              "needs at least one [[traffic]] class");
}

TEST(SpecSchema, DescribeRoundTripIsLossless) {
  const WorldSpec s = full_spec();
  const std::string canon = describe(s);
  const WorldSpec again = parse_world_spec_text(canon, "canon");
  EXPECT_TRUE(again == s);
  // And describe() is a fixed point: canonical text re-describes to itself.
  EXPECT_EQ(describe(again), canon);

  // Explicit positions and irrational-ish floats survive the %.17g cycle.
  WorldSpec p = s;
  p.positions = {{0.1, 0.2}, {1.0 / 3.0, 60.0}};
  p.grid_cols = p.grid_rows = 0;
  p.pitch_m = 0.0;
  p.window_s = 0.1;  // not exactly representable
  const WorldSpec q = parse_world_spec_text(describe(p), "canon2");
  EXPECT_TRUE(q == p);
}

// --- planning --------------------------------------------------------------

TEST(SpecPlan, IsAPureFunctionOfTheSpec) {
  const WorldSpec s = full_spec();
  const WorldPlan a = plan_world(s);
  const WorldPlan b = plan_world(s);
  ASSERT_EQ(a.stations.size(), b.stations.size());
  ASSERT_EQ(a.stations.size(), 12u);
  for (std::size_t i = 0; i < a.stations.size(); ++i) {
    EXPECT_EQ(a.stations[i].greedy, b.stations[i].greedy);
    EXPECT_EQ(a.stations[i].traffic, b.stations[i].traffic);
    EXPECT_EQ(a.stations[i].roams, b.stations[i].roams);
    EXPECT_EQ(a.stations[i].churns, b.stations[i].churns);
    EXPECT_EQ(a.stations[i].ring, b.stations[i].ring);
    EXPECT_DOUBLE_EQ(a.stations[i].pos.x, b.stations[i].pos.x);
  }
  EXPECT_EQ(a.num_rings, b.num_rings);
}

TEST(SpecPlan, RolePrecedenceAndRings) {
  // Large population so every role appears.
  WorldSpec s = full_spec();
  s.grid_cols = s.grid_rows = 4;
  s.per_ap = 8;
  const WorldPlan plan = plan_world(s);
  ASSERT_EQ(plan.stations.size(), 128u);
  int greedy = 0, roam = 0, churn = 0, tcp = 0;
  for (const StationPlan& st : plan.stations) {
    const bool is_tcp = s.traffic[static_cast<std::size_t>(st.traffic)].cls ==
                        TrafficClass::kTcp;
    tcp += is_tcp ? 1 : 0;
    if (st.greedy) {
      ++greedy;
      EXPECT_FALSE(st.roams);   // greedy stations camp
      EXPECT_FALSE(st.churns);
      EXPECT_EQ(st.ring, -1);   // rings hold honest stations only
    } else {
      EXPECT_GE(st.ring, 0);
      EXPECT_LT(st.ring, plan.num_rings);
    }
    if (is_tcp) {
      EXPECT_FALSE(st.roams);   // the long-download anchor population
      EXPECT_FALSE(st.churns);
    }
    if (st.roams) {
      ++roam;
      EXPECT_FALSE(st.churns);  // the walk is the session
      EXPECT_GE(st.roam_target_ap, 0);
      EXPECT_NE(st.roam_target_ap, st.ap);
    }
    churn += st.churns ? 1 : 0;
  }
  // Fractions are hash-thresholded per station: expect them in the right
  // ballpark (binomial, n >= 89 per eligible pool).
  EXPECT_NEAR(greedy / 128.0, s.greedy_fraction, 0.15);
  EXPECT_GT(roam, 0);
  EXPECT_GT(churn, 0);
  EXPECT_GT(tcp, 0);
  EXPECT_GT(plan.num_rings, 1);
}

TEST(SpecPlan, GrcCoverageIsExactAtTheExtremes) {
  WorldSpec s = full_spec();
  s.grc_coverage = 0.0;
  for (bool g : plan_world(s).grc) EXPECT_FALSE(g);
  s.grc_coverage = 1.0;
  for (bool g : plan_world(s).grc) EXPECT_TRUE(g);
}

// --- sharded compile -------------------------------------------------------

WorldSpec sharded_spec() {
  return parse_world_spec_text(R"(
[world]
name = "shardable"
seed = 11
warmup_s = 0.25
measure_s = 0.5

[aps]
cols = 4
rows = 1
pitch_m = 250.0

[stations]
per_ap = 3

[[traffic]]
class = "cbr"
rate_mbps = 4.0
payload_bytes = 768
)",
                               "shardable");
}

bool identical(const std::vector<ShardedSim::FlowMetrics>& a,
               const std::vector<ShardedSim::FlowMetrics>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bitwise doubles: the contract is byte identity (PR 8).
    if (a[i].flow_id != b[i].flow_id ||
        a[i].goodput_mbps != b[i].goodput_mbps ||
        a[i].packets != b[i].packets || a[i].highest_seq != b[i].highest_seq) {
      return false;
    }
  }
  return true;
}

TEST(SpecSharded, OneAndNShardsAreByteIdentical) {
  const ShardedWorldSpec world = to_sharded(sharded_spec());
  ASSERT_EQ(world.bsss.size(), 4u);
  EXPECT_EQ(world.bsss[1].n_stations, 3);
  EXPECT_EQ(world.bsss[1].payload_bytes, 768);

  ShardedSim one(world, 1, /*threaded=*/false);
  one.run();
  ShardedSim two(world, 2);
  two.run();
  ShardedSim four(world, 4);
  four.run();
  const auto m1 = one.metrics();
  ASSERT_FALSE(m1.empty());
  EXPECT_GT(m1[0].packets, 0);
  EXPECT_TRUE(identical(m1, two.metrics()));
  EXPECT_TRUE(identical(m1, four.metrics()));
}

TEST(SpecSharded, RejectsSpecsOutsideTheSubsetByName) {
  const auto rejects = [](void (*mutate)(WorldSpec&), const char* needle) {
    WorldSpec s = sharded_spec();
    mutate(s);
    try {
      (void)to_sharded(s);
      ADD_FAILURE() << "expected rejection: " << needle;
    } catch (const SpecError& e) {
      EXPECT_NE(std::string(e.what()).find("not sharded-representable"),
                std::string::npos);
      EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
          << e.what();
    }
  };
  rejects([](WorldSpec& s) { s.churn_fraction = 0.5; }, "[churn]");
  rejects([](WorldSpec& s) { s.roam_fraction = 0.5; }, "[roaming]");
  rejects([](WorldSpec& s) { s.greedy_fraction = 0.5; }, "[greedy]");
  rejects([](WorldSpec& s) { s.grc_coverage = 0.5; }, "grc_coverage");
  rejects([](WorldSpec& s) { s.radius_m = 10.0; }, "radius_m");
  rejects([](WorldSpec& s) { s.traffic.push_back(TrafficSpec{}); },
          "single cbr");
}

// --- built world -----------------------------------------------------------

TEST(SpecBuiltWorld, RunsWindowedWithConsistentSummary) {
  const WorldSpec s = full_spec();
  BuiltWorld world(s);
  int windows = 0;
  double last_end = s.warmup_s;
  world.run([&](const BuiltWorld::WindowReport& rep) {
    EXPECT_EQ(rep.index, windows);
    EXPECT_DOUBLE_EQ(rep.t_start_s, last_end);
    EXPECT_GT(rep.t_end_s, rep.t_start_s);
    EXPECT_EQ(rep.rings.size(), static_cast<std::size_t>(world.num_rings()));
    last_end = rep.t_end_s;
    ++windows;
  });
  // measure_s = 1.0 in window_s = 0.25 slices.
  EXPECT_EQ(windows, 4);
  EXPECT_EQ(world.summary().windows, 4);
  EXPECT_DOUBLE_EQ(last_end, s.warmup_s + s.measure_s);
  EXPECT_GT(world.summary().honest_mbps.mean(), 0.0);
}

TEST(SpecBuiltWorld, GreedyReceiversDepressNeighbours) {
  // One 5-station cell, one NAV inflator: honest goodput must drop vs the
  // greedy-free world (the paper's core effect, through the spec path).
  const char* base = R"(
[world]
name = "cell"
seed = 2
warmup_s = 0.5
measure_s = 1.5

[aps]
cols = 1
rows = 1
pitch_m = 1.0

[stations]
per_ap = 5

[[traffic]]
class = "cbr"
rate_mbps = 6.0

[greedy]
fraction = %F
nav_inflation = 1.0
nav_inflation_ms = 31.0
)";
  const auto run_with = [&](const char* frac) {
    std::string toml(base);
    toml.replace(toml.find("%F"), 2, frac);
    BuiltWorld world(parse_world_spec_text(toml, "cell"));
    world.run();
    return world.summary().honest_mbps.mean();
  };
  const double honest_clean = run_with("0.0");
  const double honest_attacked = run_with("0.3");
  EXPECT_GT(honest_clean, 0.0);
  EXPECT_LT(honest_attacked, 0.8 * honest_clean);
}

// --- metric sink window path -----------------------------------------------

TEST(SpecMetricSink, StreamsWindowRowsToWindowFiles) {
  const std::string dir =
      ::testing::TempDir() + "/spec_sink_" + std::to_string(::getpid());
  ASSERT_EQ(setenv("G80211_METRICS_DIR", dir.c_str(), 1), 0);
  {
    MetricSink sink("cityx");
    ASSERT_TRUE(sink.enabled());
    WindowRow row;
    row.figure = "cityx";
    row.label = "ring0";
    row.metric = "goodput_mbps";
    row.t_start_s = 1.0;
    row.t_end_s = 2.0;
    row.count = 3;
    row.mean = 0.5;
    row.p25 = 0.25;
    row.p50 = 0.5;
    row.p75 = 0.75;
    sink.write(row);
    row.label = "ring1";
    row.t_start_s = 2.0;
    row.t_end_s = 3.0;
    sink.write(row);
  }
  ASSERT_EQ(unsetenv("G80211_METRICS_DIR"), 0);

  std::ifstream jsonl(dir + "/cityx.windows.jsonl");
  ASSERT_TRUE(jsonl.good());
  std::string line;
  int lines = 0;
  while (std::getline(jsonl, line)) {
    ++lines;
    EXPECT_NE(line.find("\"figure\":\"cityx\""), std::string::npos);
    EXPECT_NE(line.find("\"count\":3"), std::string::npos);
  }
  EXPECT_EQ(lines, 2);

  std::ifstream csv(dir + "/cityx.windows.csv");
  ASSERT_TRUE(csv.good());
  std::getline(csv, line);
  EXPECT_EQ(line, "figure,label,metric,t_start_s,t_end_s,count,mean,p25,p50,p75");
  std::getline(csv, line);
  EXPECT_NE(line.find("ring0"), std::string::npos);
}

// --- streaming statistics --------------------------------------------------

TEST(StreamStats, P2TracksKnownQuantiles) {
  // Exact for <= 5 samples.
  P2Quantile median(0.5);
  for (double x : {5.0, 1.0, 3.0}) median.add(x);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);

  // Uniform ramp 1..1000 (already sorted is the estimator's easy case;
  // interleave to exercise the parabolic updates).
  P2Quantile q25(0.25), q75(0.75);
  for (int i = 0; i < 1000; ++i) {
    const double x = static_cast<double>((i * 617) % 1000) + 1.0;
    q25.add(x);
    q75.add(x);
  }
  EXPECT_NEAR(q25.value(), 250.0, 25.0);
  EXPECT_NEAR(q75.value(), 750.0, 25.0);
}

TEST(StreamStats, StreamingStatSummarizesAndResets) {
  StreamingStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_EQ(s.count(), 100);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.p50(), 50.5, 5.0);
  s.reset();
  EXPECT_EQ(s.count(), 0);
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
  EXPECT_DOUBLE_EQ(s.p50(), 7.0);
}

}  // namespace
