// IEEE 802.11 9.2.5.4 NAV-reset rule (optional; off by default because the
// paper's ns-2 substrate lacks it): a station that armed its NAV from an
// RTS releases it when the reserved exchange evidently never happened.
#include <gtest/gtest.h>

#include "src/net/node.h"
#include "src/phy/channel.h"
#include "src/sim/scheduler.h"

namespace g80211 {
namespace {

class NavResetTest : public ::testing::Test {
 protected:
  NavResetTest() : channel_(sched_, WifiParams::b11()), params_(WifiParams::b11()) {}
  Node& add_node(Position pos) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(
        std::make_unique<Node>(sched_, channel_, id, pos, Rng(900 + id)));
    return *nodes_.back();
  }
  void inject_rts(Node& from, int ta, int ra, Time duration) {
    Frame rts;
    rts.type = FrameType::kRts;
    rts.ta = ta;
    rts.ra = ra;
    rts.duration = duration;
    from.phy().transmit(rts, params_.rts_tx_time());
  }
  Scheduler sched_;
  Channel channel_;
  WifiParams params_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(NavResetTest, DisabledByDefaultNavRunsFullTerm) {
  Node& jammer = add_node({0, 0});
  Node& victim = add_node({5, 0});
  inject_rts(jammer, 0, 99, milliseconds(20));  // RTS to nobody
  sched_.run_until(milliseconds(5));
  EXPECT_TRUE(victim.mac().nav().busy(sched_.now()))
      << "ns-2 semantics: a dead RTS reservation still holds";
  sched_.run_until(milliseconds(25));
  EXPECT_FALSE(victim.mac().nav().busy(sched_.now()));
}

TEST_F(NavResetTest, EnabledReleasesDeadReservation) {
  Node& jammer = add_node({0, 0});
  Node& victim = add_node({5, 0});
  victim.mac().set_nav_rts_reset(true);
  inject_rts(jammer, 0, 99, milliseconds(20));
  // Reset probe fires 2*SIFS + T_CTS + 2 slots after the RTS ends: ~364 us.
  sched_.run_until(params_.rts_tx_time() + microseconds(300));
  EXPECT_TRUE(victim.mac().nav().busy(sched_.now()));
  sched_.run_until(params_.rts_tx_time() + microseconds(400));
  EXPECT_FALSE(victim.mac().nav().busy(sched_.now()))
      << "no CTS followed: the reservation is released";
}

TEST_F(NavResetTest, LiveExchangeIsNotReset) {
  // A real exchange: the CTS (and data) keep the medium busy through the
  // probe window, so the NAV holds.
  Node& tx = add_node({0, 0});
  Node& rx = add_node({5, 0});
  Node& bystander = add_node({5, 5});
  bystander.mac().set_nav_rts_reset(true);

  auto p = make_packet();
  p->flow_id = 1;
  p->size_bytes = 1064;
  p->dst_node = rx.id();
  tx.send_packet(p);

  // Sample the bystander's NAV right after the CTS should have started.
  bool nav_held_mid_exchange = false;
  bool delivered = false;
  sched_.at(milliseconds(2), [&] {
    nav_held_mid_exchange = bystander.mac().nav().busy(sched_.now());
  });
  sched_.run_until(milliseconds(50));
  delivered = rx.mac().stats().rx_data_ok == 1;
  EXPECT_TRUE(delivered);
  EXPECT_TRUE(nav_held_mid_exchange)
      << "the probe must not fire while the exchange is alive";
}

TEST_F(NavResetTest, MitigatesDeadRtsReservationsUnderInflation) {
  // An RTS-NAV inflater whose exchanges die (its peer is deaf) holds the
  // medium hostage under ns-2 semantics; the reset rule reclaims it.
  auto victim_goodput = [&](bool reset_on) {
    Scheduler sched;
    Channel channel(sched, WifiParams::b11());
    Node tx(sched, channel, 0, {0, 0}, Rng(1));
    Node rx(sched, channel, 1, {2, 0}, Rng(2));
    Node jammer(sched, channel, 2, {5, 5}, Rng(3));
    if (reset_on) {
      tx.mac().set_nav_rts_reset(true);
      rx.mac().set_nav_rts_reset(true);
    }
    // Dead inflated RTS every 25 ms.
    Frame rts;
    rts.type = FrameType::kRts;
    rts.ta = 2;
    rts.ra = 99;
    rts.duration = milliseconds(20);
    std::function<void()> jam = [&] {
      if (!jammer.phy().transmitting()) {
        jammer.phy().transmit(rts, WifiParams::b11().rts_tx_time());
      }
      sched.after(milliseconds(25), jam);
    };
    sched.at(0, jam);
    // Saturated data from tx to rx.
    int delivered = 0;
    struct Sink : PacketSink {
      int* n;
      void receive(const PacketPtr&) override { ++*n; }
    } sink;
    sink.n = &delivered;
    rx.register_sink(1, &sink);
    std::int64_t seq = 0;
    std::function<void()> feed = [&] {
      while (tx.mac().queue_size() < 5) {
        auto p = make_packet();
        p->flow_id = 1;
        p->size_bytes = 1064;
        p->dst_node = 1;
        p->seq = seq++;
        tx.send_packet(p);
      }
      sched.after(milliseconds(5), feed);
    };
    sched.at(0, feed);
    sched.run_until(seconds(2));
    return delivered;
  };
  const int without = victim_goodput(false);
  const int with = victim_goodput(true);
  // Under saturation most dead RTSs collide with ongoing frames and never
  // arm a NAV; the reset rule reclaims the ones that land in idle gaps
  // (each worth a 20 ms reservation) — a solid double-digit gain.
  EXPECT_GT(with, 1.1 * without)
      << "reset rule reclaims the airtime dead RTS reservations stole";
}

}  // namespace
}  // namespace g80211
