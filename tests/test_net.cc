// Network layer: drop-tail queue, node demux/routing/echo, wired links.
#include <gtest/gtest.h>

#include "src/net/node.h"
#include "src/net/queue.h"
#include "src/net/wired_link.h"
#include "src/phy/channel.h"

namespace g80211 {
namespace {

TEST(DropTailQueue, FifoOrder) {
  DropTailQueue q(10);
  for (int i = 0; i < 3; ++i) {
    auto p = make_packet();
    p->seq = i;
    EXPECT_TRUE(q.push(p, i + 100));
  }
  EXPECT_EQ(q.size(), 3u);
  auto [p0, d0] = q.pop();
  EXPECT_EQ(p0->seq, 0);
  EXPECT_EQ(d0, 100);
  auto [p1, d1] = q.pop();
  EXPECT_EQ(p1->seq, 1);
  EXPECT_EQ(d1, 101);
}

TEST(DropTailQueue, DropsAtLimit) {
  DropTailQueue q(2);
  EXPECT_TRUE(q.push(make_packet(), 0));
  EXPECT_TRUE(q.push(make_packet(), 0));
  EXPECT_FALSE(q.push(make_packet(), 0));
  EXPECT_EQ(q.drops(), 1);
  q.pop();
  EXPECT_TRUE(q.push(make_packet(), 0)) << "space freed";
}

struct CollectSink : PacketSink {
  std::vector<PacketPtr> got;
  void receive(const PacketPtr& p) override { got.push_back(p); }
};

class NetTest : public ::testing::Test {
 protected:
  NetTest() : channel_(sched_, WifiParams::b11()) {}
  Node& add_node(Position pos) {
    const int id = static_cast<int>(nodes_.size());
    nodes_.push_back(
        std::make_unique<Node>(sched_, channel_, id, pos, Rng(50 + id)));
    return *nodes_.back();
  }
  Scheduler sched_;
  Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(NetTest, FlowDemuxReachesRegisteredSink) {
  Node& a = add_node({0, 0});
  Node& b = add_node({5, 0});
  CollectSink sink1, sink2;
  b.register_sink(1, &sink1);
  b.register_sink(2, &sink2);

  auto p = make_packet();
  p->flow_id = 2;
  p->dst_node = b.id();
  p->src_node = a.id();
  p->size_bytes = 500;
  a.send_packet(p);
  sched_.run_until(seconds(1));
  EXPECT_TRUE(sink1.got.empty());
  ASSERT_EQ(sink2.got.size(), 1u);
}

TEST_F(NetTest, RouteOverridesMacNextHop) {
  Node& a = add_node({0, 0});
  Node& relay = add_node({5, 0});
  add_node({10, 0});
  a.set_route(/*dst_node=*/2, /*next_hop_mac=*/relay.id());

  auto p = make_packet();
  p->flow_id = 1;
  p->dst_node = 2;
  p->src_node = 0;
  p->size_bytes = 500;
  a.send_packet(p);
  sched_.run_until(seconds(1));
  // The relay's MAC accepted the frame (addressed to it), found no
  // forwarder, and dropped it at the network layer.
  EXPECT_EQ(relay.mac().stats().rx_data_ok, 1);
}

TEST_F(NetTest, ProbeEchoOnlyForCleanDelivery) {
  Node& a = add_node({0, 0});
  Node& b = add_node({5, 0});
  CollectSink probe_sink;
  a.register_sink(9, &probe_sink);

  auto probe = make_packet();
  probe->flow_id = 9;
  probe->is_probe = true;
  probe->src_node = 0;
  probe->dst_node = 1;
  probe->size_bytes = 104;
  a.send_packet(probe);
  sched_.run_until(seconds(1));
  ASSERT_EQ(probe_sink.got.size(), 1u);
  EXPECT_TRUE(probe_sink.got[0]->probe_reply);
  EXPECT_EQ(b.probes_echoed(), 1);
}

TEST_F(NetTest, WiredHostRoundTrip) {
  Node& ap = add_node({0, 0});
  Node& client = add_node({5, 0});
  WiredLink link(sched_, milliseconds(10));
  WiredHost host(99, link, ap);
  client.set_route(99, ap.id());

  // Host -> client.
  CollectSink client_sink;
  client.register_sink(4, &client_sink);
  auto down = make_packet();
  down->flow_id = 4;
  down->src_node = 99;
  down->dst_node = client.id();
  down->size_bytes = 1064;
  Time sent_at = 0;
  host.send_packet(down);
  sched_.run_until(seconds(1));
  ASSERT_EQ(client_sink.got.size(), 1u);

  // Client -> host (via the AP forwarder installed by WiredHost).
  CollectSink host_sink;
  host.register_sink(4, &host_sink);
  auto up = make_packet();
  up->flow_id = 4;
  up->src_node = client.id();
  up->dst_node = 99;
  up->size_bytes = 40;
  client.send_packet(up);
  sched_.run_until(seconds(2));
  ASSERT_EQ(host_sink.got.size(), 1u);
  (void)sent_at;
}

TEST_F(NetTest, WiredLatencyDelaysDelivery) {
  Node& ap = add_node({0, 0});
  WiredLink link(sched_, milliseconds(25));
  Time delivered_at = -1;
  auto p = make_packet();
  link.transfer(p, [&](PacketPtr) { delivered_at = sched_.now(); });
  sched_.run();
  EXPECT_EQ(delivered_at, milliseconds(25));
  (void)ap;
}

}  // namespace
}  // namespace g80211
