// Channel + PHY: carrier-sense edges, reception, capture, collisions,
// range semantics, half-duplex behaviour, BER corruption delivery.
#include <gtest/gtest.h>

#include <vector>

#include "src/phy/channel.h"
#include "src/phy/phy.h"
#include "src/sim/scheduler.h"

namespace g80211 {
namespace {

struct RecordingListener : PhyListener {
  struct Rx {
    Frame frame;
    RxInfo info;
  };
  std::vector<Rx> received;
  int busy_edges = 0;
  int idle_edges = 0;
  int tx_ends = 0;

  void on_rx_end(const Frame& f, const RxInfo& i) override {
    received.push_back({f, i});
  }
  void on_channel_busy() override { ++busy_edges; }
  void on_channel_idle() override { ++idle_edges; }
  void on_tx_end() override { ++tx_ends; }
};

class PhyChannelTest : public ::testing::Test {
 protected:
  PhyChannelTest() : channel_(sched_, WifiParams::b11()) {}

  Phy& add_phy(int id, Position pos) {
    phys_.push_back(std::make_unique<Phy>(channel_, id, pos, Rng(100 + id)));
    listeners_.push_back(std::make_unique<RecordingListener>());
    phys_.back()->set_listener(listeners_.back().get());
    // Disable RSSI measurement noise for exact assertions.
    phys_.back()->rssi_noise_db = 0.0;
    phys_.back()->rssi_outlier_prob = 0.0;
    return *phys_.back();
  }
  RecordingListener& listener(std::size_t i) { return *listeners_[i]; }

  Frame data_frame(int ta, int ra) {
    Frame f;
    f.type = FrameType::kData;
    f.ta = ta;
    f.ra = ra;
    f.packet = make_packet();
    f.packet->size_bytes = 1064;
    return f;
  }

  Scheduler sched_;
  Channel channel_;
  std::vector<std::unique_ptr<Phy>> phys_;
  std::vector<std::unique_ptr<RecordingListener>> listeners_;
};

TEST_F(PhyChannelTest, CleanReceptionDeliversUncorrupted) {
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  tx.transmit(data_frame(0, 1), microseconds(500));
  sched_.run();
  auto& l = listener(1);
  ASSERT_EQ(l.received.size(), 1u);
  EXPECT_FALSE(l.received[0].info.corrupted);
  EXPECT_EQ(l.received[0].frame.ta, 0);
  EXPECT_EQ(l.received[0].frame.true_tx, 0);
  EXPECT_EQ(l.received[0].info.end - l.received[0].info.start, microseconds(500));
}

TEST_F(PhyChannelTest, BusyIdleEdgesFireOnceEach) {
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  tx.transmit(data_frame(0, 1), microseconds(500));
  sched_.run();
  EXPECT_EQ(listener(1).busy_edges, 1);
  EXPECT_EQ(listener(1).idle_edges, 1);
  // The transmitter sees its own busy period and tx_end.
  EXPECT_EQ(listener(0).busy_edges, 1);
  EXPECT_EQ(listener(0).idle_edges, 1);
  EXPECT_EQ(listener(0).tx_ends, 1);
}

TEST_F(PhyChannelTest, PromiscuousDeliveryRegardlessOfAddressing) {
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  add_phy(2, {6, 0});
  tx.transmit(data_frame(0, 1), microseconds(500));
  sched_.run();
  EXPECT_EQ(listener(1).received.size(), 1u);
  EXPECT_EQ(listener(2).received.size(), 1u);  // sniffed someone else's frame
}

TEST_F(PhyChannelTest, OutOfCommRangeNotDelivered) {
  channel_.set_ranges(50.0, 100.0);
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {70, 0});   // CS range only
  add_phy(2, {150, 0});  // out of everything
  tx.transmit(data_frame(0, 1), microseconds(500));
  sched_.run();
  EXPECT_TRUE(listener(1).received.empty());
  EXPECT_EQ(listener(1).busy_edges, 1);  // still senses the energy
  EXPECT_TRUE(listener(2).received.empty());
  EXPECT_EQ(listener(2).busy_edges, 0);
}

TEST_F(PhyChannelTest, CsRangeDefaultsToCommRange) {
  channel_.set_ranges(50.0, 0.0);
  EXPECT_DOUBLE_EQ(channel_.cs_range_m(), 50.0);
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {60, 0});
  tx.transmit(data_frame(0, 1), microseconds(500));
  sched_.run();
  EXPECT_EQ(listener(1).busy_edges, 0);
}

TEST_F(PhyChannelTest, OverlappingComparablePowersCollide) {
  // Two transmitters equidistant from the receiver: power ratio 1 << 10.
  Phy& a = add_phy(0, {0, 0});
  Phy& b = add_phy(1, {20, 0});
  add_phy(2, {10, 0});
  a.transmit(data_frame(0, 2), microseconds(500));
  sched_.at(microseconds(100), [&] {
    b.transmit(data_frame(1, 2), microseconds(500));
  });
  sched_.run();
  auto& l = listener(2);
  ASSERT_EQ(l.received.size(), 1u);  // only the first is tracked as current
  EXPECT_TRUE(l.received[0].info.corrupted);
  EXPECT_TRUE(l.received[0].info.collided);
}

TEST_F(PhyChannelTest, StrongFirstFrameSurvivesWeakInterferer) {
  Phy& strong = add_phy(0, {9, 0});   // 1 m from receiver
  Phy& weak = add_phy(1, {60, 0});    // 50 m away: Friis ratio 2500 >> 10
  add_phy(2, {10, 0});
  strong.transmit(data_frame(0, 2), microseconds(500));
  sched_.at(microseconds(100), [&] {
    weak.transmit(data_frame(1, 2), microseconds(500));
  });
  sched_.run();
  auto& l = listener(2);
  ASSERT_EQ(l.received.size(), 1u);
  EXPECT_FALSE(l.received[0].info.corrupted) << "capture should save the frame";
  EXPECT_EQ(l.received[0].frame.true_tx, 0);
}

TEST_F(PhyChannelTest, StrongLateFrameCapturesReceiver) {
  Phy& weak = add_phy(0, {60, 0});
  Phy& strong = add_phy(1, {9, 0});
  add_phy(2, {10, 0});
  weak.transmit(data_frame(0, 2), microseconds(500));
  sched_.at(microseconds(100), [&] {
    strong.transmit(data_frame(1, 2), microseconds(300));
  });
  sched_.run();
  auto& l = listener(2);
  ASSERT_EQ(l.received.size(), 1u);
  EXPECT_EQ(l.received[0].frame.true_tx, 1) << "stronger frame captures";
  EXPECT_FALSE(l.received[0].info.corrupted);
}

TEST_F(PhyChannelTest, CaptureDisabledMakesEveryOverlapCollide) {
  channel_.capture_threshold = 0.0;  // ablation knob
  Phy& strong = add_phy(0, {9, 0});
  Phy& weak = add_phy(1, {60, 0});
  add_phy(2, {10, 0});
  strong.transmit(data_frame(0, 2), microseconds(500));
  sched_.at(microseconds(100), [&] {
    weak.transmit(data_frame(1, 2), microseconds(300));
  });
  sched_.run();
  auto& l = listener(2);
  ASSERT_EQ(l.received.size(), 1u);
  EXPECT_TRUE(l.received[0].info.corrupted);
}

TEST_F(PhyChannelTest, SimultaneousAcksResolveByCapture) {
  // The spoofed-ACK situation: two ACKs start at the same instant; the
  // closer transmitter wins at the receiver.
  Phy& near = add_phy(0, {2, 0});
  Phy& far = add_phy(1, {30, 0});
  add_phy(2, {0, 0});
  Frame ack;
  ack.type = FrameType::kAck;
  ack.ra = 2;
  const Time t = microseconds(50);
  sched_.at(t, [&] { near.transmit(ack, microseconds(304)); });
  sched_.at(t, [&] { far.transmit(ack, microseconds(304)); });
  sched_.run();
  auto& l = listener(2);
  ASSERT_EQ(l.received.size(), 1u);
  EXPECT_EQ(l.received[0].frame.true_tx, 0);
  EXPECT_FALSE(l.received[0].info.corrupted);
}

TEST_F(PhyChannelTest, TransmitterMissesFramesWhileTransmitting) {
  Phy& a = add_phy(0, {0, 0});
  Phy& b = add_phy(1, {10, 0});
  a.transmit(data_frame(0, 1), microseconds(500));
  sched_.at(microseconds(10), [&] {
    b.transmit(data_frame(1, 0), microseconds(100));
  });
  sched_.run();
  EXPECT_TRUE(listener(0).received.empty()) << "half duplex: tx cannot rx";
}

TEST_F(PhyChannelTest, TransmitAbortsInProgressReception) {
  Phy& a = add_phy(0, {0, 0});
  Phy& b = add_phy(1, {10, 0});
  a.transmit(data_frame(0, 1), microseconds(500));
  sched_.at(microseconds(50), [&] {
    b.transmit(data_frame(1, 0), microseconds(100));
  });
  sched_.run();
  EXPECT_TRUE(listener(1).received.empty()) << "own tx stomped the rx";
}

TEST_F(PhyChannelTest, BerCorruptionIsDeliveredAsCorrupted) {
  channel_.error_model().set_default_ber(1.0);  // every frame corrupts
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  tx.transmit(data_frame(0, 1), microseconds(500));
  sched_.run();
  auto& l = listener(1);
  ASSERT_EQ(l.received.size(), 1u);
  EXPECT_TRUE(l.received[0].info.corrupted);
  EXPECT_FALSE(l.received[0].info.collided);
}

TEST_F(PhyChannelTest, PerLinkBerOnlyAffectsThatLink) {
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  add_phy(2, {6, 0});
  channel_.error_model().set_link_ber(0, 1, 1.0);
  tx.transmit(data_frame(0, 1), microseconds(500));
  sched_.run();
  EXPECT_TRUE(listener(1).received[0].info.corrupted);
  EXPECT_FALSE(listener(2).received[0].info.corrupted);
}

TEST_F(PhyChannelTest, RssiReflectsDistanceOrdering) {
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  add_phy(2, {50, 0});
  tx.transmit(data_frame(0, 1), microseconds(500));
  sched_.run();
  ASSERT_EQ(listener(1).received.size(), 1u);
  ASSERT_EQ(listener(2).received.size(), 1u);
  EXPECT_GT(listener(1).received[0].info.rssi_dbm,
            listener(2).received[0].info.rssi_dbm);
  // Noise-free RSSI equals the true received power in dBm.
  EXPECT_NEAR(listener(1).received[0].info.rssi_dbm,
              watts_to_dbm(listener(1).received[0].info.rss_w), 1e-9);
}

TEST_F(PhyChannelTest, InterferenceSumSurvivesOverlapChurn) {
  // Three comparable-power frames pile up and drain one by one; the
  // receiver's running interference sum must flag the pile-up as a
  // collision and then read exactly zero again, so a later lone frame
  // decodes cleanly (a stale positive residue would mark it collided).
  Phy& a = add_phy(0, {0, 0});
  Phy& b = add_phy(1, {20, 0});
  Phy& c = add_phy(2, {10, 11});
  add_phy(3, {10, 0});
  a.transmit(data_frame(0, 3), microseconds(500));
  sched_.at(microseconds(100), [&] {
    b.transmit(data_frame(1, 3), microseconds(500));
  });
  sched_.at(microseconds(200), [&] {
    c.transmit(data_frame(2, 3), microseconds(500));
  });
  sched_.at(milliseconds(2), [&] {
    a.transmit(data_frame(0, 3), microseconds(500));
  });
  sched_.run();
  auto& l = listener(3);
  ASSERT_EQ(l.received.size(), 2u);
  EXPECT_TRUE(l.received[0].info.collided) << "triple overlap must collide";
  EXPECT_FALSE(l.received[1].info.corrupted)
      << "clean frame after the channel drained must decode";
  EXPECT_EQ(l.received[1].frame.true_tx, 0);
}

TEST_F(PhyChannelTest, LinkTableServedFromCacheUntilTopologyChanges) {
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  const auto& warm = channel_.neighbors_of(&tx);
  ASSERT_EQ(warm.size(), 1u);
  const std::uint64_t rebuilds = channel_.link_tables_rebuilt();
  // Repeated queries and repeated transmissions reuse the table.
  channel_.neighbors_of(&tx);
  tx.transmit(data_frame(0, 1), microseconds(200));
  sched_.run();
  EXPECT_EQ(channel_.link_tables_rebuilt(), rebuilds);
  // A no-op move (zero-velocity mobility tick) must keep the cache warm.
  tx.set_position({0, 0});
  channel_.neighbors_of(&tx);
  EXPECT_EQ(channel_.link_tables_rebuilt(), rebuilds);
}

TEST_F(PhyChannelTest, MovedNodeMatchesFreshlyBuiltChannel) {
  channel_.set_ranges(50.0, 100.0);
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {10, 0});
  Phy& roamer = add_phy(2, {200, 0});  // out of sensing range entirely
  ASSERT_EQ(channel_.neighbors_of(&tx).size(), 1u);  // warm the cache
  const std::uint64_t rebuilds = channel_.link_tables_rebuilt();

  // Mid-simulation move into decode range must invalidate the warm table.
  roamer.set_position({20, 0});
  const auto& cached = channel_.neighbors_of(&tx);
  EXPECT_EQ(channel_.link_tables_rebuilt(), rebuilds + 1);

  // The rebuilt table must be indistinguishable from a channel built from
  // scratch at the post-move positions: same membership, same order, same
  // rx power bits, same decodability.
  Scheduler sched2;
  Channel chan2(sched2, WifiParams::b11());
  chan2.set_ranges(50.0, 100.0);
  Phy t2(chan2, 0, {0, 0}, Rng(100));
  Phy n2(chan2, 1, {10, 0}, Rng(101));
  Phy r2(chan2, 2, {20, 0}, Rng(102));
  const auto& fresh = chan2.neighbors_of(&t2);
  ASSERT_EQ(cached.size(), fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    EXPECT_EQ(cached.rx[i]->id(), fresh.rx[i]->id());
    EXPECT_EQ(cached.power_w[i], fresh.power_w[i]);
    EXPECT_EQ(cached.power_dbm[i], fresh.power_dbm[i]);
    EXPECT_EQ(cached.decodable[i], fresh.decodable[i]);
  }

  // And the full delivery path agrees: the roamer now receives.
  tx.transmit(data_frame(0, 1), microseconds(500));
  sched_.run();
  ASSERT_EQ(listener(2).received.size(), 1u);
  EXPECT_FALSE(listener(2).received[0].info.corrupted);
}

TEST_F(PhyChannelTest, MovedOutOfRangeNodeLeavesSensedSet) {
  channel_.set_ranges(50.0, 100.0);
  Phy& tx = add_phy(0, {0, 0});
  Phy& leaver = add_phy(1, {10, 0});
  ASSERT_EQ(channel_.neighbors_of(&tx).size(), 1u);
  leaver.set_position({500, 0});
  EXPECT_TRUE(channel_.neighbors_of(&tx).empty());
  tx.transmit(data_frame(0, 1), microseconds(500));
  sched_.run();
  EXPECT_TRUE(listener(1).received.empty());
  EXPECT_EQ(listener(1).busy_edges, 0);
}

TEST_F(PhyChannelTest, PropagationChangeInvalidatesCachedRxPower) {
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  const double before = channel_.neighbors_of(&tx).power_w[0];
  channel_.propagation().set_tx_power_w(channel_.propagation().tx_power_w() * 2.0);
  const double after = channel_.neighbors_of(&tx).power_w[0];
  EXPECT_EQ(after, 2.0 * before) << "cached rx power must track tx power";
}

// The SoA fan-out sweep must be bit-identical to the reference scalar walk
// (per-frame distance/propagation math, no link tables): same deliveries in
// the same order, same RSSI bits, same corruption verdicts, same carrier
// edges. Mixed topology — in comm range, interference-band only, and out of
// sensing range — with overlapping transmissions to exercise the capture
// rule, and RSSI noise left on so RNG draw sequences are compared too.
TEST(ChannelFanoutIdentity, SoaMatchesScalarOnMixedTopology) {
  struct World {
    Scheduler sched;
    Channel channel{sched, WifiParams::b11()};
    std::vector<std::unique_ptr<Phy>> phys;
    std::vector<std::unique_ptr<RecordingListener>> listeners;

    explicit World(bool scalar) {
      channel.use_scalar_fanout = scalar;
      channel.set_ranges(50.0, 100.0);
      const Position pos[] = {{0, 0},  {10, 0},  {30, 0},
                              {70, 0},  // interference band: sensed only
                              {150, 0},  // out of sensing range entirely
                              {40, 30}};
      for (int id = 0; id < 6; ++id) {
        phys.push_back(
            std::make_unique<Phy>(channel, id, pos[id], Rng(100 + id)));
        listeners.push_back(std::make_unique<RecordingListener>());
        phys.back()->set_listener(listeners.back().get());
      }
    }

    void run() {
      auto frame = [](int ta, int ra) {
        Frame f;
        f.type = FrameType::kData;
        f.ta = ta;
        f.ra = ra;
        f.packet = make_packet();
        f.packet->size_bytes = 1064;
        return f;
      };
      phys[0]->transmit(frame(0, 1), microseconds(400));
      // Overlaps node 0's frame: capture/collision logic runs at every
      // receiver that hears both.
      sched.at(microseconds(100),
               [&] { phys[2]->transmit(frame(2, 5), microseconds(400)); });
      // Hidden-ish late joiner, partially overlapping node 2's frame.
      sched.at(microseconds(450),
               [&] { phys[5]->transmit(frame(5, 0), microseconds(300)); });
      // Clean back-to-back frame once the air is quiet again.
      sched.at(microseconds(900),
               [&] { phys[1]->transmit(frame(1, 0), microseconds(200)); });
      sched.run();
    }
  };

  World soa(/*scalar=*/false);
  World ref(/*scalar=*/true);
  soa.run();
  ref.run();

  for (std::size_t n = 0; n < soa.listeners.size(); ++n) {
    const RecordingListener& a = *soa.listeners[n];
    const RecordingListener& b = *ref.listeners[n];
    SCOPED_TRACE("node " + std::to_string(n));
    EXPECT_EQ(a.busy_edges, b.busy_edges);
    EXPECT_EQ(a.idle_edges, b.idle_edges);
    EXPECT_EQ(a.tx_ends, b.tx_ends);
    ASSERT_EQ(a.received.size(), b.received.size());
    for (std::size_t i = 0; i < a.received.size(); ++i) {
      SCOPED_TRACE("rx " + std::to_string(i));
      EXPECT_EQ(a.received[i].frame.true_tx, b.received[i].frame.true_tx);
      EXPECT_EQ(a.received[i].frame.ta, b.received[i].frame.ta);
      EXPECT_EQ(a.received[i].info.rss_w, b.received[i].info.rss_w);
      EXPECT_EQ(a.received[i].info.rssi_dbm, b.received[i].info.rssi_dbm);
      EXPECT_EQ(a.received[i].info.corrupted, b.received[i].info.corrupted);
      EXPECT_EQ(a.received[i].info.collided, b.received[i].info.collided);
      EXPECT_EQ(a.received[i].info.start, b.received[i].info.start);
      EXPECT_EQ(a.received[i].info.end, b.received[i].info.end);
    }
  }
  // The reference walk must not have touched the link-table cache.
  EXPECT_EQ(ref.channel.link_tables_rebuilt(), 0u);
  EXPECT_GT(soa.channel.link_tables_rebuilt(), 0u);
}

TEST_F(PhyChannelTest, BackToBackTransmissionsBothDelivered) {
  Phy& tx = add_phy(0, {0, 0});
  add_phy(1, {5, 0});
  tx.transmit(data_frame(0, 1), microseconds(200));
  sched_.at(microseconds(300), [&] {
    tx.transmit(data_frame(0, 1), microseconds(200));
  });
  sched_.run();
  EXPECT_EQ(listener(1).received.size(), 2u);
  EXPECT_EQ(listener(1).busy_edges, 2);
  EXPECT_EQ(listener(1).idle_edges, 2);
}

}  // namespace
}  // namespace g80211
