// Command-line experiment driver: assemble a hotspot scenario from flags,
// run it, and print per-flow goodput, fairness, and detection results.
//
//   $ ./build/examples/simulate --help
//   $ ./build/examples/simulate --attack nav --inflation-us 600
//   $ ./build/examples/simulate --attack spoof --ber 2e-4 --tcp --grc
//   $ ./build/examples/simulate --attack fake --hidden --gp 50
//   $ ./build/examples/simulate --pairs 4 --tcp --seconds 20 --trace 12
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "src/analysis/stats.h"
#include "src/detect/grc.h"
#include "src/mac/frame_tracer.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

using namespace g80211;

namespace {

struct Options {
  int pairs = 2;
  bool tcp = false;
  bool rts_cts = true;
  bool hidden = false;
  bool a80211 = false;
  bool g80211_ = false;
  int frag = 0;
  bool grc = false;
  bool auto_rate = false;
  double ber = 0.0;
  double gp = 100.0;
  std::string attack = "none";  // none | nav | spoof | fake | sender
  double inflation_us = 10000.0;
  double seconds_ = 10.0;
  std::uint64_t seed = 1;
  int trace = 0;  // print the first N sniffed frames
};

void usage() {
  std::printf(
      "simulate — greedy-receiver hotspot scenarios from the command line\n\n"
      "  --pairs N          sender/receiver pairs (default 2)\n"
      "  --tcp | --udp      transport (default UDP)\n"
      "  --no-rtscts        disable RTS/CTS\n"
      "  --hidden           hidden-terminal topology (2 pairs, no RTS/CTS)\n"
      "  --80211a           802.11a at 6 Mbps (default 802.11b at 11)\n"
      "  --80211g           802.11g at 54 Mbps\n"
      "  --frag N           fragmentation threshold in bytes (0 = off)\n"
      "  --ber X            channel bit error rate (paper scale)\n"
      "  --attack KIND      none | nav | spoof | fake | sender\n"
      "  --inflation-us X   NAV inflation for --attack nav (default 10000)\n"
      "  --gp X             greedy percentage 0-100 (default 100)\n"
      "  --grc              attach the GRC detectors to honest stations\n"
      "  --autorate         enable ARF rate adaptation on the senders\n"
      "  --seconds X        measurement window (default 10)\n"
      "  --seed N           RNG seed (default 1)\n"
      "  --trace N          print the first N frames seen by an observer\n");
}

bool parse(int argc, char** argv, Options& o) {
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&](double& out) {
      if (i + 1 >= argc) return false;
      out = std::atof(argv[++i]);
      return true;
    };
    if (a == "--help" || a == "-h") return false;
    if (a == "--tcp") {
      o.tcp = true;
    } else if (a == "--udp") {
      o.tcp = false;
    } else if (a == "--no-rtscts") {
      o.rts_cts = false;
    } else if (a == "--hidden") {
      o.hidden = true;
    } else if (a == "--80211a") {
      o.a80211 = true;
    } else if (a == "--80211g") {
      o.g80211_ = true;
    } else if (a == "--frag") {
      double v;
      if (!next(v)) return false;
      o.frag = static_cast<int>(v);
    } else if (a == "--grc") {
      o.grc = true;
    } else if (a == "--autorate") {
      o.auto_rate = true;
    } else if (a == "--attack" && i + 1 < argc) {
      o.attack = argv[++i];
    } else if (a == "--pairs") {
      double v;
      if (!next(v)) return false;
      o.pairs = static_cast<int>(v);
    } else if (a == "--ber") {
      if (!next(o.ber)) return false;
    } else if (a == "--gp") {
      if (!next(o.gp)) return false;
    } else if (a == "--inflation-us") {
      if (!next(o.inflation_us)) return false;
    } else if (a == "--seconds") {
      if (!next(o.seconds_)) return false;
    } else if (a == "--seed") {
      double v;
      if (!next(v)) return false;
      o.seed = static_cast<std::uint64_t>(v);
    } else if (a == "--trace") {
      double v;
      if (!next(v)) return false;
      o.trace = static_cast<int>(v);
    } else {
      std::printf("unknown flag: %s\n\n", a.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options o;
  if (!parse(argc, argv, o)) {
    usage();
    return 1;
  }
  if (o.hidden) {
    o.pairs = 2;
    o.rts_cts = false;
  }

  SimConfig cfg;
  cfg.standard = o.g80211_ ? Standard::G80211
                           : (o.a80211 ? Standard::A80211 : Standard::B80211);
  cfg.rts_cts = o.rts_cts;
  cfg.default_ber = o.ber;
  cfg.measure = static_cast<Time>(o.seconds_ * 1e9);
  cfg.seed = o.seed;
  if (o.attack == "spoof") cfg.capture_threshold = 10.0;

  PairLayout layout;
  if (o.hidden) {
    const auto h = hidden_pairs();
    layout.senders = h.senders;
    layout.receivers = h.receivers;
    cfg.comm_range_m = h.comm_range_m;
    cfg.cs_range_m = h.cs_range_m;
  } else {
    layout = pairs_in_range(o.pairs);
  }

  Sim sim(cfg);
  std::vector<Node*> senders, receivers;
  for (int i = 0; i < o.pairs; ++i) senders.push_back(&sim.add_node(layout.senders[i]));
  for (int i = 0; i < o.pairs; ++i) receivers.push_back(&sim.add_node(layout.receivers[i]));

  std::vector<Sim::TcpFlow> tcp_flows;
  std::vector<Sim::UdpFlow> udp_flows;
  for (int i = 0; i < o.pairs; ++i) {
    if (o.tcp) {
      tcp_flows.push_back(sim.add_tcp_flow(*senders[i], *receivers[i]));
    } else {
      udp_flows.push_back(sim.add_udp_flow(*senders[i], *receivers[i]));
    }
    if (o.auto_rate) senders[i]->mac().enable_auto_rate();
    if (o.frag > 0) senders[i]->mac().set_fragmentation_threshold(o.frag);
  }

  // The last pair's receiver (or sender) misbehaves.
  Node* gr = receivers.back();
  const double gp = o.gp / 100.0;
  if (o.attack == "nav") {
    sim.make_nav_inflator(*gr, NavFrameMask::cts_only(),
                          static_cast<Time>(o.inflation_us * 1000.0), gp);
  } else if (o.attack == "spoof") {
    std::set<int> victims;
    for (int i = 0; i + 1 < o.pairs; ++i) victims.insert(receivers[i]->id());
    sim.make_ack_spoofer(*gr, gp, victims);
  } else if (o.attack == "fake") {
    sim.make_fake_acker(*gr, gp);
  } else if (o.attack == "sender") {
    senders.back()->mac().set_backoff_cheat(0.25);
  } else if (o.attack != "none") {
    std::printf("unknown attack: %s\n", o.attack.c_str());
    return 1;
  }

  Grc grc(sim.scheduler(), sim.params());
  if (o.grc) {
    for (int i = 0; i + 1 < o.pairs; ++i) {
      grc.protect(senders[i]->mac());
      grc.protect(receivers[i]->mac());
    }
  }

  FrameTracer tracer(static_cast<std::size_t>(o.trace > 0 ? o.trace : 1));
  int printed = 0;
  if (o.trace > 0) {
    tracer.attach(receivers[0]->mac());
    tracer.on_record = [&](const TraceRecord& r) {
      if (printed++ < o.trace) std::printf("%s\n", r.to_string().c_str());
    };
  }

  sim.run();

  std::printf("\n%-6s %-10s %12s\n", "flow", "role", "goodput_mbps");
  std::vector<double> goodputs;
  for (int i = 0; i < o.pairs; ++i) {
    const double g =
        o.tcp ? tcp_flows[i].goodput_mbps() : udp_flows[i].goodput_mbps();
    goodputs.push_back(g);
    const bool is_greedy = o.attack != "none" && i == o.pairs - 1;
    std::printf("%-6d %-10s %12.3f\n", i, is_greedy ? "greedy" : "normal", g);
  }
  std::printf("\nJain fairness index: %.3f\n", jain_fairness(goodputs));
  if (o.grc) {
    std::printf("GRC: %lld inflated NAVs corrected, %lld spoofed ACKs rejected\n",
                static_cast<long long>(grc.nav_detections()),
                static_cast<long long>(grc.spoof_detections()));
  }
  return 0;
}
