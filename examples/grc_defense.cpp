// Demo: the Greedy Receiver Countermeasure (GRC) end to end.
//
//   $ ./build/examples/grc_defense
//
// Shows, for each misbehavior, the victim's goodput in three worlds:
// honest, under attack, and under attack with the matching GRC detector
// attached — plus what the detectors actually reported.
#include <cstdio>

#include "src/detect/fake_ack_detector.h"
#include "src/detect/grc.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

using namespace g80211;

namespace {

void nav_defense() {
  std::printf("1) NAV validation vs a 31 ms CTS inflator (UDP)\n");
  for (const int mode : {0, 1, 2}) {  // honest, attack, attack+GRC
    SimConfig cfg;
    cfg.measure = seconds(5);
    cfg.seed = 11;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_udp_flow(ns, nr);
    auto fg = sim.add_udp_flow(gs, gr);
    if (mode >= 1) sim.make_nav_inflator(gr, NavFrameMask::cts_only(), milliseconds(31));
    Grc grc(sim.scheduler(), sim.params(), {.spoof_detection = false});
    if (mode == 2) {
      for (Node* n : {&ns, &gs, &nr}) grc.protect(n->mac());
    }
    sim.run();
    static const char* kLabel[] = {"honest    ", "attack    ", "attack+GRC"};
    std::printf("   %s: victim %.3f | greedy %.3f Mbps", kLabel[mode],
                fn.goodput_mbps(), fg.goodput_mbps());
    if (mode == 2) {
      std::printf("  [%lld inflated NAVs detected & corrected]",
                  static_cast<long long>(grc.nav_detections()));
    }
    std::printf("\n");
  }
}

void spoof_defense() {
  std::printf("\n2) RSSI profiling vs an ACK spoofer (TCP, BER=2e-4)\n");
  for (const int mode : {0, 1, 2}) {
    SimConfig cfg;
    cfg.measure = seconds(5);
    cfg.seed = 11;
    cfg.default_ber = 2e-4;
    cfg.capture_threshold = 10.0;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_tcp_flow(ns, nr);
    auto fg = sim.add_tcp_flow(gs, gr);
    if (mode >= 1) sim.make_ack_spoofer(gr, 1.0, {nr.id()});
    SpoofDetector detector(1.0);
    if (mode == 2) detector.attach(ns.mac());
    sim.run();
    static const char* kLabel[] = {"honest    ", "attack    ", "attack+GRC"};
    std::printf("   %s: victim %.3f | greedy %.3f Mbps", kLabel[mode],
                fn.goodput_mbps(), fg.goodput_mbps());
    if (mode == 2) {
      std::printf("  [spoofs caught: %lld, honest ACKs kept: %lld]",
                  static_cast<long long>(detector.true_positives()),
                  static_cast<long long>(detector.true_negatives()));
    }
    std::printf("\n");
  }
}

void fake_ack_defense() {
  std::printf("\n3) Ping probing vs a fake-ACKer (UDP, lossy link)\n");
  for (const bool attack : {false, true}) {
    SimConfig cfg;
    cfg.measure = seconds(6);
    cfg.seed = 11;
    cfg.rts_cts = false;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(1);
    Node& gs = sim.add_node(l.senders[0]);
    Node& gr = sim.add_node(l.receivers[0]);
    sim.channel().error_model().set_link_ber(
        gs.id(), gr.id(),
        ErrorModel::ber_for_fer(0.5, ErrorModel::error_len(FrameType::kData, 1064)));
    auto f = sim.add_udp_flow(gs, gr, 1.0);
    if (attack) sim.make_fake_acker(gr, 1.0);
    FakeAckDetector::Config dc;
    dc.probe_payload_bytes = 512;
    FakeAckDetector detector(sim.scheduler(), gs, gr.id(), sim.reserve_flow_id(), dc);
    detector.start(0);
    sim.run();
    std::printf("   %s: app loss %.2f vs MAC loss %.2f -> %s\n",
                attack ? "attack" : "honest", detector.application_loss(),
                detector.mac_loss(),
                detector.detected() ? "FAKE ACKS DETECTED" : "looks honest");
    (void)f;
  }
}

}  // namespace

int main() {
  std::printf("Greedy Receiver Countermeasure (GRC) demo\n\n");
  nav_defense();
  spoof_defense();
  fake_ack_defense();
  return 0;
}
