// Demo: all three greedy-receiver misbehaviors from the paper, each in its
// natural habitat, printed side by side with the honest baseline.
//
//   $ ./build/examples/hotspot_attacks
//
// 1. NAV inflation     — UDP, two competing AP->client flows.
// 2. ACK spoofing      — TCP over a lossy channel, promiscuous attacker.
// 3. Fake ACKs         — UDP under hidden-terminal collisions.
#include <cstdio>

#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

using namespace g80211;

namespace {

void nav_inflation_demo() {
  std::printf("1) NAV inflation (UDP, 802.11b, GR inflates CTS NAV by 10 ms)\n");
  for (const bool attack : {false, true}) {
    SimConfig cfg;
    cfg.measure = seconds(5);
    cfg.seed = 7;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_udp_flow(ns, nr);
    auto fg = sim.add_udp_flow(gs, gr);
    if (attack) {
      auto& policy = sim.make_nav_inflator(gr, NavFrameMask::cts_only(),
                                           milliseconds(10));
      sim.run();
      std::printf("   attack : normal %.3f Mbps | greedy %.3f Mbps "
                  "(%lld CTS frames inflated)\n",
                  fn.goodput_mbps(), fg.goodput_mbps(),
                  static_cast<long long>(policy.inflations_applied()));
    } else {
      sim.run();
      std::printf("   honest : normal %.3f Mbps | greedy %.3f Mbps\n",
                  fn.goodput_mbps(), fg.goodput_mbps());
    }
  }
}

void ack_spoofing_demo() {
  std::printf("\n2) ACK spoofing (TCP, BER=2e-4, GR answers for NR)\n");
  for (const bool attack : {false, true}) {
    SimConfig cfg;
    cfg.measure = seconds(5);
    cfg.seed = 7;
    cfg.default_ber = 2e-4;
    cfg.capture_threshold = 10.0;  // real ACKs beat spoofs when both exist
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto fn = sim.add_tcp_flow(ns, nr);
    auto fg = sim.add_tcp_flow(gs, gr);
    if (attack) sim.make_ack_spoofer(gr, 1.0, {nr.id()});
    sim.run();
    std::printf("   %s : victim %.3f Mbps | greedy %.3f Mbps"
                " (victim TCP timeouts: %lld)\n",
                attack ? "attack" : "honest", fn.goodput_mbps(),
                fg.goodput_mbps(),
                static_cast<long long>(fn.sender->timeouts()));
  }
}

void fake_ack_demo() {
  std::printf("\n3) Fake ACKs (UDP, hidden terminals, GR ACKs corrupted frames)\n");
  for (const bool attack : {false, true}) {
    const HiddenPairsLayout l = hidden_pairs();
    SimConfig cfg;
    cfg.measure = seconds(5);
    cfg.seed = 7;
    cfg.rts_cts = false;
    cfg.comm_range_m = l.comm_range_m;
    cfg.cs_range_m = l.cs_range_m;
    Sim sim(cfg);
    Node& s1 = sim.add_node(l.senders[0]);
    Node& s2 = sim.add_node(l.senders[1]);
    Node& r1 = sim.add_node(l.receivers[0]);
    Node& r2 = sim.add_node(l.receivers[1]);
    auto f1 = sim.add_udp_flow(s1, r1);
    auto f2 = sim.add_udp_flow(s2, r2);
    if (attack) sim.make_fake_acker(r2, 1.0);
    sim.run();
    std::printf("   %s : normal %.3f Mbps | greedy %.3f Mbps"
                " (sender CWs: %.0f vs %.0f)\n",
                attack ? "attack" : "honest", f1.goodput_mbps(),
                f2.goodput_mbps(), s1.mac().backoff().average_cw(),
                s2.mac().backoff().average_cw());
  }
}

}  // namespace

int main() {
  std::printf("Greedy receivers in IEEE 802.11 hotspots — the three attacks\n\n");
  nav_inflation_demo();
  ack_spoofing_demo();
  fake_ack_demo();
  std::printf("\nRun the binaries under build/bench/ to regenerate every "
              "figure and table of the paper.\n");
  return 0;
}
