// Tour of the library's extensions beyond the paper's core evaluation:
// ARF auto-rate under attack (the paper's future work), fragmentation and
// fragmentation-aware NAV validation, the greedy-sender baseline with
// DOMINO-style detection, and frame-level tracing.
//
//   $ ./build/examples/extensions_tour
#include <cstdio>

#include "src/analysis/stats.h"
#include "src/detect/backoff_monitor.h"
#include "src/detect/nav_validator.h"
#include "src/mac/frame_tracer.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

using namespace g80211;

namespace {

void autorate_tour() {
  std::printf("1) ARF auto-rate vs fake ACKs (channel cliff at 5.5 Mbps)\n");
  for (const bool fake : {false, true}) {
    SimConfig cfg;
    cfg.measure = seconds(5);
    cfg.seed = 31;
    cfg.rts_cts = false;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(1);
    Node& gs = sim.add_node(l.senders[0]);
    Node& gr = sim.add_node(l.receivers[0]);
    auto f = sim.add_udp_flow(gs, gr);
    gs.mac().enable_auto_rate(1.0);
    sim.channel().error_model().set_link_rate_limit(gs.id(), gr.id(), 5.5);
    if (fake) sim.make_fake_acker(gr, 1.0);
    sim.run();
    std::printf("   %s: %.3f Mbps, final rate %.1f Mbps\n",
                fake ? "fake ACKs" : "honest   ", f.goodput_mbps(),
                gs.mac().data_rate_to(gr.id()));
  }
  std::printf("   Lying to ARF costs the liar most of its own goodput.\n\n");
}

void fragmentation_tour() {
  std::printf("2) Fragment burst, traced at a bystander:\n");
  SimConfig cfg;
  cfg.measure = seconds(1);
  cfg.rts_cts = false;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(1);
  Node& tx = sim.add_node(l.senders[0]);
  Node& rx = sim.add_node(l.receivers[0]);
  Node& bystander = sim.add_node({5, 5});
  tx.mac().set_fragmentation_threshold(400);
  FrameTracer tracer(8);
  tracer.attach(bystander.mac());
  auto f = sim.add_udp_flow(tx, rx, 0.5);
  sim.run();
  int shown = 0;
  for (const auto& r : tracer.records()) {
    if (shown++ >= 6) break;
    std::printf("   %s\n", r.to_string().c_str());
  }
  std::printf("   Nonzero ACK NAVs above are honest: they chain the burst.\n\n");
  (void)f;
  (void)rx;
}

void greedy_sender_tour() {
  std::printf("3) Greedy sender (backoff/4) vs DOMINO-style monitor\n");
  SimConfig cfg;
  cfg.measure = seconds(5);
  cfg.seed = 33;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& honest_s = sim.add_node(l.senders[0]);
  Node& greedy_s = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  auto f1 = sim.add_udp_flow(honest_s, r1);
  auto f2 = sim.add_udp_flow(greedy_s, r2);
  greedy_s.mac().set_backoff_cheat(0.25);
  BackoffMonitor monitor(sim.scheduler(), sim.params());
  monitor.attach(r1.mac());
  sim.run();
  std::printf("   honest %.3f | greedy %.3f Mbps (Jain fairness %.2f)\n",
              f1.goodput_mbps(), f2.goodput_mbps(),
              jain_fairness({f1.goodput_mbps(), f2.goodput_mbps()}));
  std::printf("   observed backoffs: honest %.1f slots, greedy %.1f slots -> %s\n\n",
              monitor.observed_backoff(honest_s.id()),
              monitor.observed_backoff(greedy_s.id()),
              monitor.flagged(greedy_s.id()) ? "FLAGGED" : "missed");
}

}  // namespace

int main() {
  std::printf("greedy80211 extensions tour\n\n");
  autorate_tour();
  fragmentation_tour();
  greedy_sender_tour();
  return 0;
}
