// Quickstart: build a two-pair 802.11b hotspot, make one receiver greedy
// (CTS NAV inflation), and watch it starve the honest flow.
//
//   $ ./build/examples/quickstart
//
// This is the paper's headline scenario (Fig 1) in ~40 lines.
#include <cstdio>

#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

using namespace g80211;

namespace {

// Goodput of the two flows when the second receiver inflates its CTS NAV
// by `inflation`.
void run_case(Time inflation) {
  SimConfig cfg;
  cfg.standard = Standard::B80211;
  cfg.rts_cts = true;
  cfg.measure = seconds(5);
  cfg.seed = 42;

  Sim sim(cfg);
  const PairLayout layout = pairs_in_range(2);
  Node& ns = sim.add_node(layout.senders[0]);    // normal sender (AP 1)
  Node& gs = sim.add_node(layout.senders[1]);    // greedy receiver's sender (AP 2)
  Node& nr = sim.add_node(layout.receivers[0]);  // normal receiver
  Node& gr = sim.add_node(layout.receivers[1]);  // greedy receiver

  auto normal = sim.add_udp_flow(ns, nr);
  auto greedy = sim.add_udp_flow(gs, gr);

  if (inflation > 0) {
    sim.make_nav_inflator(gr, NavFrameMask::cts_only(), inflation);
  }

  sim.run();
  std::printf("  CTS NAV +%5.1f ms : normal %.3f Mbps | greedy %.3f Mbps\n",
              to_millis(inflation), normal.goodput_mbps(), greedy.goodput_mbps());
}

}  // namespace

int main() {
  std::printf("Greedy receiver via CTS NAV inflation (2 UDP flows, 802.11b):\n");
  for (const Time inflation :
       {microseconds(0), microseconds(200), microseconds(600), milliseconds(2),
        milliseconds(10), milliseconds(31)}) {
    run_case(inflation);
  }
  std::printf(
      "\nEven a sub-millisecond inflation lets the greedy receiver's flow\n"
      "dominate; see bench/ for the full reproduction of every figure.\n");
  return 0;
}
