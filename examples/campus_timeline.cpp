// A narrative scenario: a small campus hotspot with mixed TCP/UDP
// clients, where a greedy receiver switches its misbehavior on mid-run
// and the operator deploys GRC halfway through the attack. Per-second
// goodput timelines make the attack onset and the recovery visible.
//
//   $ ./build/examples/campus_timeline
#include <cstdio>

#include "src/analysis/sampler.h"
#include "src/analysis/stats.h"
#include "src/detect/grc.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

using namespace g80211;

int main() {
  SimConfig cfg;
  cfg.warmup = seconds(0);
  cfg.measure = seconds(18);
  cfg.seed = 2026;
  Sim sim(cfg);

  // Three AP->client pairs: a TCP bulk download, a UDP stream, and the
  // soon-to-be-greedy client's UDP download.
  const PairLayout l = pairs_in_range(3);
  Node& ap1 = sim.add_node(l.senders[0]);
  Node& ap2 = sim.add_node(l.senders[1]);
  Node& ap3 = sim.add_node(l.senders[2]);
  Node& alice = sim.add_node(l.receivers[0]);   // TCP
  Node& bob = sim.add_node(l.receivers[1]);     // UDP stream
  Node& mallory = sim.add_node(l.receivers[2]); // greedy-to-be

  auto tcp = sim.add_tcp_flow(ap1, alice);
  auto stream = sim.add_udp_flow(ap2, bob, 4.0);
  auto greedy = sim.add_udp_flow(ap3, mallory);

  GoodputSampler alice_s(sim.scheduler(), seconds(1), [&] {
    return static_cast<std::int64_t>(tcp.sink->segments() * 1024);
  });
  GoodputSampler bob_s(sim.scheduler(), seconds(1), [&] {
    return stream.sink->payload_bytes_received();
  });
  GoodputSampler mallory_s(sim.scheduler(), seconds(1), [&] {
    return greedy.sink->payload_bytes_received();
  });
  alice_s.start(0);
  bob_s.start(0);
  mallory_s.start(0);

  // t = 6 s: Mallory turns greedy (10 ms CTS NAV inflation).
  sim.scheduler().at(seconds(6), [&] {
    sim.make_nav_inflator(mallory, NavFrameMask::cts_only(), milliseconds(10));
  });
  // t = 12 s: the operator rolls out GRC on the honest stations.
  Grc grc(sim.scheduler(), sim.params(), {.spoof_detection = false});
  sim.scheduler().at(seconds(12), [&] {
    for (Node* n : {&ap1, &ap2, &ap3, &alice, &bob}) grc.protect(n->mac());
  });

  sim.run();

  std::printf("Campus hotspot timeline (Mbps per second)\n");
  std::printf("t=6s: Mallory begins inflating CTS NAVs; t=12s: GRC deployed\n\n");
  std::printf("%4s %8s %8s %9s %10s\n", "sec", "alice", "bob", "mallory",
              "fairness");
  const auto& a = alice_s.series_mbps();
  const auto& b = bob_s.series_mbps();
  const auto& m = mallory_s.series_mbps();
  const std::size_t n = std::min({a.size(), b.size(), m.size()});
  for (std::size_t i = 0; i < n; ++i) {
    const char* phase = i < 6 ? "" : (i < 12 ? "  << attack" : "  << GRC");
    std::printf("%4zu %8.2f %8.2f %9.2f %10.2f%s\n", i + 1, a[i], b[i], m[i],
                jain_fairness({a[i], b[i], m[i]}), phase);
  }
  std::printf("\nGRC corrected %lld inflated NAVs after deployment.\n",
              static_cast<long long>(grc.nav_detections()));
  return 0;
}
