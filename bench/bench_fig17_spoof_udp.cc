// Fig 17: ACK spoofing against UDP — one AP sends CBR traffic to a normal
// and a greedy receiver; GR spoofs NR's MAC ACKs. Disabling the victim's
// MAC retransmissions shifts service time toward GR, but without TCP
// congestion control to exploit the gain is milder than in Fig 11.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Fig 17: UDP spoofing, 1 AP -> {NR, GR}, loss sweep (802.11b)\n");
  TableWriter table({"ber", "noGR_R1", "noGR_R2", "wGR_NR", "wGR_GR"});
  table.print_header();

  double gap_at_44 = 0.0;
  for (const double ber : {0.0, 1e-5, 1e-4, 2e-4, 4.4e-4, 8e-4}) {
    std::vector<double> rows;
    for (const bool attack : {false, true}) {
      SharedApSpec spec;
      spec.n_clients = 2;
      spec.spoof_layout = true;
      spec.tcp = false;
      spec.udp_rate_mbps = 6.0;
      spec.cfg = base_config();
      spec.cfg.default_ber = ber;
      spec.cfg.capture_threshold = 10.0;
      spec.customize = [&](Sim& sim, Node&, std::vector<Node*>& clients) {
        if (attack) sim.make_ack_spoofer(*clients[1], 1.0, {clients[0]->id()});
      };
      const auto med = median_shared_ap_goodputs(spec, default_runs(), 1800);
      rows.push_back(med[0]);
      rows.push_back(med[1]);
    }
    table.print_row({ber, rows[0], rows[1], rows[2], rows[3]});
    if (ber == 4.4e-4) gap_at_44 = rows[3] - rows[2];
  }
  std::printf("\n");
  state.counters["greedy_gap_at_4.4e-4"] = gap_at_44;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig17/SpoofUdp", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
