// Fig 15: both TCP senders sit behind a wired link of varying one-way
// latency (2-400 ms); wireless BER=2e-5; the greedy receiver spoofs the
// victim's MAC ACKs. The paper's shape: wireline latency makes end-to-end
// recovery costlier, widening the gap up to ~200 ms, beyond which the
// attacker's own ACK-clocked throughput also sags.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Fig 15: remote TCP senders, wired latency sweep (802.11b)\n");
  TableWriter table({"latency_ms", "noGR_R1", "noGR_R2", "wGR_NR", "wGR_GR"});
  table.print_header();

  double gap_200ms = 0.0;
  for (const Time latency :
       {milliseconds(2), milliseconds(10), milliseconds(50), milliseconds(100),
        milliseconds(200), milliseconds(400)}) {
    std::vector<double> rows;
    for (const bool attack : {false, true}) {
      RemoteSpec spec;
      spec.wired_latency = latency;
      spec.cfg = base_config();
      spec.cfg.default_ber = 2e-5;
      spec.cfg.capture_threshold = 10.0;
      // Longer pipes need longer runs to converge.
      spec.cfg.measure = std::max<Time>(default_measure(), 100 * latency);
      spec.customize = [&](Sim& sim, Node&, std::vector<Node*>& clients) {
        if (attack) sim.make_ack_spoofer(*clients[1], 1.0, {clients[0]->id()});
      };
      const auto med = median_over_seeds(
          default_runs(), 1600, [&](std::uint64_t s) { return run_remote(spec, s); });
      rows.push_back(med[0]);
      rows.push_back(med[1]);
    }
    table.print_row({to_millis(latency), rows[0], rows[1], rows[2], rows[3]});
    if (latency == milliseconds(200)) gap_200ms = rows[3] - rows[2];
  }
  std::printf("\n");
  state.counters["greedy_gap_at_200ms"] = gap_200ms;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig15/RemoteSenders", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
