// Hardware-counter attribution for the performance benchmarks.
//
// Wraps perf_event_open(2) so bench_ext_simperf can report *why* a number
// moved, not just that it did: cycles/event, instructions/event and the
// branch-miss rate localise a regression to "more work per event" vs
// "same work, worse IPC" vs "mispredicted control flow", which wall-clock
// alone cannot distinguish.
//
// Availability is per counter and strictly best-effort: VMs and locked-down
// kernels (perf_event_paranoid, seccomp) routinely refuse the hardware
// events. Each counter opens independently; whatever fails is simply
// absent and hw_available() reports false, while the software task-clock
// counter (no PMU needed) still works almost everywhere, so the report
// stays useful. Consumers must treat missing counters as "unavailable",
// never as zero — compare_simperf.py skips cycle checks when the baseline
// or candidate lacks them.
//
// Not part of the simulator proper (bench/ only): the engine itself must
// never read host performance state.
#pragma once

#include <cstdint>

namespace g80211::bench {

class PerfCounters {
 public:
  // Opens the counters for the calling thread (inherited by children:
  // disabled — benchmarks here are single-threaded).
  PerfCounters();
  ~PerfCounters();
  PerfCounters(const PerfCounters&) = delete;
  PerfCounters& operator=(const PerfCounters&) = delete;

  // Reset and enable every open counter.
  void start();
  // Disable and fold the elapsed counts into the running totals.
  void stop();

  // True when all four hardware counters (cycles, instructions, branches,
  // branch misses) are live.
  bool hw_available() const;
  // True when the software task-clock counter is live.
  bool task_clock_available() const;

  // Accumulated totals across every start()/stop() interval. Zero when the
  // corresponding counter is unavailable — gate on the availability
  // accessors before deriving rates.
  std::uint64_t cycles() const { return cycles_.total; }
  std::uint64_t instructions() const { return instructions_.total; }
  std::uint64_t branches() const { return branches_.total; }
  std::uint64_t branch_misses() const { return branch_misses_.total; }
  std::uint64_t task_clock_ns() const { return task_clock_.total; }

 private:
  struct Counter {
    int fd = -1;
    std::uint64_t total = 0;
  };

  void read_into_totals();

  Counter cycles_;
  Counter instructions_;
  Counter branches_;
  Counter branch_misses_;
  Counter task_clock_;
};

}  // namespace g80211::bench
