// Fig 6: 8 TCP flows, one of which has a greedy receiver with an
// increasing CTS NAV (802.11b). The greedy flow's gain comes at the
// expense of the 7 normal flows; ~10 ms of inflation dominates the medium.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Fig 6: 8 TCP flows, one greedy receiver, CTS NAV sweep (802.11b)\n");
  TableWriter table({"nav_inc_ms", "greedy_mbps", "avg_normal", "sum_normal"});
  table.print_header();

  double greedy_at_10ms = 0.0;
  for (const Time inflation :
       {microseconds(0), milliseconds(1), milliseconds(2), milliseconds(5),
        milliseconds(10), milliseconds(31)}) {
    PairsSpec spec;
    spec.n_pairs = 8;
    spec.tcp = true;
    spec.cfg = base_config();
    spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
      if (inflation > 0) {
        sim.make_nav_inflator(*rx[3], NavFrameMask::cts_only(), inflation);
      }
    };
    const auto med = median_pair_goodputs(spec, default_runs(), 600);
    double sum_normal = 0.0;
    for (int i = 0; i < 8; ++i) {
      if (i != 3) sum_normal += med[i];
    }
    table.print_row({to_millis(inflation), med[3], sum_normal / 7.0, sum_normal});
    if (inflation == milliseconds(10)) greedy_at_10ms = med[3];
  }
  std::printf("\n");
  state.counters["greedy_mbps_at_10ms"] = greedy_at_10ms;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig6/EightTcpFlows", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
